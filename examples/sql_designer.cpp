// SQL-first usage: everything — schema statistics aside — is stated as
// SQL text, the way a warehouse administrator would drive the library.
// Also demonstrates error handling for malformed queries.
#include <iostream>

#include "src/common/error.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/paper_example.hpp"

int main() {
  using namespace mvd;

  WarehouseDesigner designer(make_paper_catalog(),
                             [] {
                               DesignerOptions o;
                               o.cost = paper_cost_config();
                               o.algorithm =
                                   DesignerOptions::Algorithm::kExhaustive;
                               return o;
                             }());

  struct Registered {
    const char* name;
    double fq;
    const char* sql;
  } workload[] = {
      {"top_products", 10.0,
       "SELECT Product.name FROM Product, Division "
       "WHERE Division.city = 'LA' AND Product.Did = Division.Did"},
      {"la_parts", 0.5,
       "SELECT Part.name FROM Product, Part, Division "
       "WHERE Division.city = 'LA' AND Product.Did = Division.Did "
       "AND Part.Pid = Product.Pid"},
      {"recent_la_sales", 0.8,
       "SELECT Customer.name, Product.name, quantity "
       "FROM Product, Division, Order, Customer "
       "WHERE Division.city = 'LA' AND Product.Did = Division.Did "
       "AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid "
       "AND date > DATE '1996-07-01'"},
      {"bulk_buyers", 5.0,
       "SELECT Customer.city, date FROM Order, Customer "
       "WHERE quantity > 100 AND Order.Cid = Customer.Cid"},
  };
  for (const Registered& r : workload) {
    designer.add_query(r.name, r.fq, r.sql);
    std::cout << "registered " << r.name << " (fq " << r.fq << ")\n";
  }

  // Malformed SQL is rejected with a useful message, not a crash.
  for (const char* bad :
       {"SELECT FROM Product",                         // missing list
        "SELECT name FROM Nowhere",                    // unknown relation
        "SELECT bogus FROM Product",                   // unknown column
        "SELECT name FROM Product WHERE name >"}) {    // truncated
    try {
      designer.add_query("bad", 1.0, bad);
      std::cout << "UNEXPECTED: accepted \"" << bad << "\"\n";
    } catch (const Error& e) {
      std::cout << "rejected as expected: " << e.what() << '\n';
    }
  }

  const DesignResult design = designer.design();
  std::cout << '\n' << designer.report(design);

  std::cout << "\nGraphviz of the winning MVPP (pipe into `dot -Tsvg`):\n"
            << design.graph().to_dot();
  return 0;
}
