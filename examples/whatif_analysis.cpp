// What-if analysis: how the right set of views shifts as the workload
// changes. Uses the Figure 3 MVPP and the set_frequency() what-if API to
// explore (a) a reporting-heavy month (query frequencies x20), (b) a
// reconciliation month (every member database updated daily), and (c)
// retiring Q4. Also prices a few hand-picked candidate sets for each.
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

namespace {

void show(const std::string& title, const MvppGraph& g) {
  const MvppEvaluator eval(g);
  std::cout << "=== " << title << " ===\n";
  TextTable t({"strategy", "views", "query", "maintenance", "total"},
              {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight,
               Align::kRight});
  auto row = [&](const SelectionResult& r) {
    t.add_row({r.algorithm, to_string(g, r.materialized),
               format_blocks(r.costs.query_processing),
               format_blocks(r.costs.maintenance),
               format_blocks(r.costs.total())});
  };
  row(select_nothing(eval));
  row(select_all_query_results(eval));
  row(yang_heuristic(eval));
  row(exhaustive_optimal(eval));
  std::cout << t.render() << '\n';
}

}  // namespace

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());

  MvppGraph g = build_figure3_mvpp(model);
  show("baseline (fq = 10 / 0.5 / 0.8 / 5, fu = 1)", g);

  // (a) Reporting season: analysts hammer the warehouse.
  for (NodeId q : g.query_ids()) {
    g.set_frequency(q, g.node(q).frequency * 20);
  }
  show("reporting season: query frequencies x20", g);
  for (NodeId q : g.query_ids()) {
    g.set_frequency(q, g.node(q).frequency / 20);
  }

  // (b) Reconciliation: every member database updated 30x per period.
  for (NodeId b : g.base_ids()) g.set_frequency(b, 30);
  show("reconciliation: base updates x30", g);
  for (NodeId b : g.base_ids()) g.set_frequency(b, 1);

  // (c) Q4 retired (fq -> 0): tmp4's audience halves.
  g.set_frequency(g.find_by_name("Q4"), 0);
  show("Q4 retired", g);
  g.set_frequency(g.find_by_name("Q4"), 5);

  // Custom pricing of hand-picked sets under the baseline.
  const MvppEvaluator eval(g);
  std::cout << "hand-picked sets under the baseline:\n";
  for (const std::vector<const char*>& names :
       {std::vector<const char*>{"tmp2"}, {"tmp4"}, {"tmp2", "tmp4"},
        {"tmp2", "tmp4", "result1", "result4"}, {"tmp3", "tmp6"}}) {
    MaterializedSet m;
    for (const char* n : names) m.insert(g.find_by_name(n));
    std::cout << "  " << to_string(g, m) << ": "
              << format_blocks(eval.total_cost(m)) << '\n';
  }
  return 0;
}
