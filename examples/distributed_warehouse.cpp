// Distributed warehouse example: member databases live at two operational
// sites, analysts query from headquarters. Compares the site-oblivious
// design with the communication-aware design as link costs grow, and
// prints where each chosen view is computed and stored.
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/units.hpp"
#include "src/distributed/distributed_evaluator.hpp"
#include "src/mvpp/builder.hpp"
#include "src/workload/paper_example.hpp"

int main() {
  using namespace mvd;

  const PaperExample example = make_paper_example();
  const CostModel model(example.catalog, paper_cost_config());
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);

  // Build the candidate MVPPs once; design against different topologies.
  const std::vector<MvppBuildResult> candidates =
      builder.build_all_rotations(example.queries);

  SiteTopology topo({"hq", "sales", "manufacturing"},
                    /*default_transfer=*/200.0);
  topo.set_link_cost("sales", "manufacturing", 400.0);  // slow WAN hop
  topo.place_relation("Order", "sales");
  topo.place_relation("Customer", "sales");
  topo.place_relation("Product", "manufacturing");
  topo.place_relation("Division", "manufacturing");
  topo.place_relation("Part", "manufacturing");
  for (const QuerySpec& q : example.queries) topo.place_query(q.name(), "hq");

  // Select views on every candidate MVPP under the distributed model.
  std::size_t best_index = 0;
  SelectionResult best;
  double best_cost = -1;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const DistributedMvppEvaluator eval(candidates[i].graph, topo);
    SelectionResult sel = greedy_incremental(eval);
    if (best_cost < 0 || sel.costs.total() < best_cost) {
      best_cost = sel.costs.total();
      best_index = i;
      best = std::move(sel);
    }
  }

  const MvppGraph& g = candidates[best_index].graph;
  const DistributedMvppEvaluator eval(g, topo);
  std::cout << "chosen MVPP: rotation " << best_index << " (merge order "
            << join(candidates[best_index].merge_order, " ") << ")\n";
  std::cout << "materialize " << to_string(g, best.materialized) << '\n';
  std::cout << "distributed total: " << format_blocks(best.costs.total())
            << " (query " << format_blocks(best.costs.query_processing)
            << " + maintenance " << format_blocks(best.costs.maintenance)
            << ")\n\n";

  std::cout << "view placement (computed at / stored at):\n";
  for (NodeId v : best.materialized) {
    std::cout << "  " << g.node(v).name << ": " << eval.site_of(v) << " / "
              << eval.storage_site_of(v) << "  ("
              << format_blocks(g.node(v).blocks) << " blocks)\n";
  }

  // Contrast with the site-oblivious design evaluated distributedly.
  const MvppEvaluator oblivious(g);
  const MaterializedSet oblivious_set = greedy_incremental(oblivious).materialized;
  std::cout << "\nsite-oblivious choice " << to_string(g, oblivious_set)
            << " would cost " << format_blocks(eval.total_cost(oblivious_set))
            << " under the same topology ("
            << format_fixed(
                   100.0 * (eval.total_cost(oblivious_set) - best.costs.total()) /
                       eval.total_cost(oblivious_set),
                   1)
            << "% worse than the aware design)\n";
  return 0;
}
