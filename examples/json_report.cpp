// Machine-readable output: run the design on the paper example and emit
// the full JSON report (selection + per-query/per-view detail + graph) —
// the artifact a dashboard or CI check would consume.
#include <iostream>

#include "src/mvpp/serialize.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/paper_example.hpp"

int main() {
  using namespace mvd;

  WarehouseDesigner designer(make_paper_catalog(), [] {
    DesignerOptions o;
    o.cost = paper_cost_config();
    return o;
  }());
  for (const QuerySpec& q : make_paper_example().queries) {
    designer.add_query(q);
  }
  const DesignResult design = designer.design();

  const MvppEvaluator eval(design.graph());
  const Json report = design_report_json(eval, design.selection);
  std::cout << report.dump(2) << '\n';
  return 0;
}
