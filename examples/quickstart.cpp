// Quickstart: design materialized views for the paper's running example.
//
// Registers the Table 1 catalog, states the four warehouse queries in SQL,
// generates the candidate MVPPs (Figure 4), selects views with the
// Figure 9 heuristic, and prints the winning plan with its costs.
#include <iostream>

#include "src/common/units.hpp"
#include "src/mvpp/builder.hpp"
#include "src/workload/paper_example.hpp"

int main() {
  using namespace mvd;

  // 1. Catalog + queries (see src/workload/paper_example.cpp for the SQL).
  PaperExample example = make_paper_example();

  // 2. Cost model and optimizer.
  CostModel cost_model(example.catalog, paper_cost_config());
  Optimizer optimizer(cost_model);

  // 3. Generate one MVPP per rotation of the merge order.
  MvppBuilder builder(optimizer);
  std::vector<MvppBuildResult> candidates =
      builder.build_all_rotations(example.queries);
  std::cout << "generated " << candidates.size() << " candidate MVPPs\n\n";

  // 4. Select views on each candidate, keep the best.
  MvppChoice best = choose_best_mvpp(candidates);
  const MvppGraph& graph = candidates[best.index].graph;

  std::cout << "winning MVPP (merge order ";
  for (const std::string& q : candidates[best.index].merge_order) {
    std::cout << q << ' ';
  }
  std::cout << "):\n" << graph.to_text() << '\n';

  std::cout << "materialize " << to_string(graph, best.selection.materialized)
            << '\n'
            << "  query processing: "
            << format_blocks(best.selection.costs.query_processing)
            << " block accesses per period\n"
            << "  view maintenance: "
            << format_blocks(best.selection.costs.maintenance)
            << " block accesses per period\n"
            << "  total:            "
            << format_blocks(best.selection.costs.total()) << '\n';

  std::cout << "\ndecision trace:\n";
  for (const std::string& line : best.selection.trace) {
    std::cout << "  " << line << '\n';
  }
  return 0;
}
