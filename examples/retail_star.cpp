// Retail star-schema walkthrough: generate a synthetic retail warehouse
// (fact table + dimensions), design views, deploy them over real data,
// answer the workload from the deployed warehouse and verify against
// from-scratch evaluation, then apply update batches and refresh.
#include <iostream>

#include "src/common/random.hpp"
#include "src/common/units.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/generator.hpp"

int main() {
  using namespace mvd;

  // 1. A populated retail warehouse: Fact(sales) x 4 dimensions.
  StarSchemaOptions schema;
  schema.dimensions = 4;
  schema.fact_rows = 20'000;
  schema.dimension_rows = 500;
  schema.categories = 10;
  Database db = populate_star_database(schema, 2026);
  std::cout << "populated " << db.table("Fact").row_count()
            << " fact rows across " << schema.dimensions << " dimensions\n";

  // 2. Catalog statistics computed from the actual data.
  Catalog catalog = catalog_from_database(db, schema.blocking_factor);

  // 3. A skewed query workload (Zipf frequencies).
  WarehouseDesigner designer(std::move(catalog));
  StarQueryOptions qopts;
  qopts.count = 6;
  qopts.max_dimensions = 3;
  qopts.seed = 42;
  for (QuerySpec& q : generate_star_queries(designer.catalog(), schema, qopts)) {
    std::cout << "  " << q.to_string() << '\n';
    designer.add_query(std::move(q));
  }

  // 4. Design and report.
  const DesignResult design = designer.design();
  std::cout << '\n' << designer.report(design) << '\n';

  // 5. Deploy the chosen views and answer the workload from them.
  designer.deploy(design, db);
  const Executor scratch_exec(db);
  for (const QuerySpec& q : designer.queries()) {
    ExecStats with_views;
    const Table answer = designer.answer(design, q.name(), db, &with_views);
    ExecStats from_scratch;
    const Table expected =
        scratch_exec.run(canonical_plan(designer.catalog(), q), &from_scratch);
    std::cout << q.name() << ": " << answer.row_count() << " rows, "
              << format_blocks(with_views.blocks_read)
              << " blocks via views vs "
              << format_blocks(from_scratch.blocks_read) << " from scratch ("
              << (same_bag(answer, expected) ? "answers match"
                                             : "ANSWERS DIFFER!")
              << ")\n";
  }

  // 6. A day of updates, then refresh.
  Rng rng(7);
  std::size_t touched = 0;
  for (const std::string& table : {"Fact", "Dim0", "Dim2"}) {
    touched += apply_update_batch(db, table, {}, rng);
  }
  designer.refresh(design, db);
  std::cout << "\napplied " << touched
            << " row updates and refreshed the views; re-checking Q1: ";
  const Table after = designer.answer(design, "Q1", db);
  const Table expected = Executor(db).run(
      canonical_plan(designer.catalog(), designer.queries().front()));
  std::cout << (same_bag(after, expected) ? "consistent" : "INCONSISTENT")
            << '\n';
  return 0;
}
