// mvlint — static analysis for MVPPs, plans and selection results.
//
//   mvlint                      lint the paper's Figure 3 example
//   mvlint --rotations          lint all k rotation MVPPs of the paper
//                               workload (each with a heuristic selection)
//   mvlint --input FILE         lint a serialized MVPP (to_json output;
//                               relations resolved via the paper catalog)
//   mvlint --json               emit the report as JSON
//   mvlint --level LVL          only report findings at LVL or above
//                               (error|warn|info; default info)
//   mvlint --list-rules         print the registered rules and exit
//   mvlint --selftest           run the mutation self-test and exit
//
// Exit status: 0 clean (no error-severity findings), 1 when errors (or a
// self-test failure) are found, 2 on usage or load problems.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/text_table.hpp"
#include "src/lint/lint.hpp"
#include "src/lint/mutate.hpp"
#include "src/mvpp/builder.hpp"
#include "src/mvpp/serialize.hpp"
#include "src/workload/paper_example.hpp"

namespace {

using namespace mvd;

int usage(const std::string& problem) {
  std::cerr << "mvlint: " << problem << "\n"
            << "usage: mvlint [--paper | --rotations | --input FILE]\n"
            << "              [--json] [--level error|warn|info]\n"
            << "              [--list-rules] [--selftest]\n";
  return 2;
}

void list_rules() {
  TextTable table({"rule", "phase", "severity", "summary"});
  const char* phase_names[] = {"structure", "annotation", "schema",
                               "selection"};
  for (const LintRule& rule : LintRegistry::builtin().rules()) {
    table.add_row({rule.id, phase_names[static_cast<int>(rule.phase)],
                   to_string(rule.severity), rule.summary});
  }
  std::cout << table.render();
}

/// Run every catalog mutation against the clean Figure 3 MVPP and demand
/// that exactly the expected rule fires. Returns the number of failures.
int selftest() {
  const Catalog catalog = make_paper_catalog();
  const CostModel cost_model(catalog, paper_cost_config());
  const MvppGraph clean = build_figure3_mvpp(cost_model);

  std::set<std::string> covered;
  int failures = 0;
  for (const GraphMutation& mutation : builtin_mutations()) {
    covered.insert(mutation.expected_rule);
    std::string verdict;
    try {
      const MutationOutcome outcome = mutation.apply(clean, cost_model);
      const LintReport report =
          LintRegistry::builtin().run(outcome.context());
      const std::set<std::string> fired = report.fired_rules();
      if (fired == std::set<std::string>{mutation.expected_rule}) {
        verdict = "ok";
      } else {
        verdict = "FAIL: fired {";
        for (const std::string& rule : fired) verdict += " " + rule;
        verdict += " }, expected { " + mutation.expected_rule + " }";
      }
    } catch (const Error& e) {
      verdict = std::string("FAIL: ") + e.what();
    }
    if (verdict != "ok") ++failures;
    std::cout << mutation.name << " -> " << mutation.expected_rule << ": "
              << verdict << "\n";
  }
  for (const LintRule& rule : LintRegistry::builtin().rules()) {
    if (!covered.count(rule.id)) {
      ++failures;
      std::cout << "NO MUTATION covers rule " << rule.id << "\n";
    }
  }
  std::cout << (failures == 0 ? "self-test passed"
                              : "self-test FAILED (" +
                                    std::to_string(failures) + " problems)")
            << "\n";
  return failures;
}

LintReport lint_paper_example() {
  const Catalog catalog = make_paper_catalog();
  const CostModel cost_model(catalog, paper_cost_config());
  const MvppGraph graph = build_figure3_mvpp(cost_model);
  const MvppEvaluator eval(graph);
  const SelectionResult selection = yang_heuristic(eval);
  return lint_selection(eval, selection, std::nullopt, &cost_model);
}

LintReport lint_rotations() {
  const PaperExample example = make_paper_example();
  const CostModel cost_model(example.catalog, paper_cost_config());
  const Optimizer optimizer(cost_model);
  const MvppBuilder builder(optimizer);
  LintReport merged;
  for (const MvppBuildResult& candidate :
       builder.build_all_rotations(example.queries)) {
    const MvppEvaluator eval(candidate.graph);
    const SelectionResult selection = yang_heuristic(eval);
    merged.merge(lint_selection(eval, selection, std::nullopt, &cost_model));
  }
  return merged;
}

LintReport lint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  // Accept both a bare to_json(graph) document and a full design report
  // (which nests the graph under "graph").
  const Json& graph_doc =
      doc.kind() == Json::Kind::kObject && !doc.contains("nodes") &&
              doc.contains("graph")
          ? doc.at("graph")
          : doc;
  const Catalog catalog = make_paper_catalog();
  const MvppGraph graph = mvpp_from_json(graph_doc, catalog);
  return lint_graph(graph);
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kPaper, kRotations, kInput };
  Mode mode = Mode::kPaper;
  std::string input_path;
  bool as_json = false;
  Severity level = Severity::kInfo;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--paper") {
      mode = Mode::kPaper;
    } else if (arg == "--rotations") {
      mode = Mode::kRotations;
    } else if (arg == "--input") {
      if (i + 1 >= args.size()) return usage("--input needs a file path");
      mode = Mode::kInput;
      input_path = args[++i];
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--level") {
      if (i + 1 >= args.size()) return usage("--level needs a severity");
      try {
        level = severity_from_string(args[++i]);
      } catch (const Error& e) {
        return usage(e.what());
      }
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else if (arg == "--selftest") {
      return selftest() == 0 ? 0 : 1;
    } else {
      return usage("unknown argument '" + arg + "'");
    }
  }

  try {
    LintReport report;
    switch (mode) {
      case Mode::kPaper: report = lint_paper_example(); break;
      case Mode::kRotations: report = lint_rotations(); break;
      case Mode::kInput: report = lint_file(input_path); break;
    }
    const LintReport visible = report.filtered(level);
    if (as_json) {
      std::cout << visible.to_json().dump(2) << "\n";
    } else {
      std::cout << visible.render_text();
    }
    return report.has_errors() ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "mvlint: " << e.what() << "\n";
    return 2;
  }
}
