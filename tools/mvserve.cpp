// mvserve — the serving front door over a designed warehouse.
//
// Deploys the paper workload's materialized set over a populated
// database, then answers SQL by rewriting onto the cheapest covering
// view (falling back to base tables when no view qualifies).
//
//   mvserve                     demo: serve the four workload queries and
//                               a few ad-hoc variants, then an
//                               ingest/refresh cycle with view statuses
//   mvserve --sql "SELECT ..."  serve one query and print the result
//   mvserve --base              with --sql: force the base-table path
//   mvserve --scale S           database scale (default 0.02)
//   mvserve --repl              one query per stdin line until EOF
//   mvserve --selftest          covered queries must rewrite, uncovered
//                               and near-miss ones must refuse, and every
//                               answer must equal the base-table answer
//
// Exit status: 0 ok, 1 self-test failure or serve error, 2 usage.
#include <iostream>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/exec/executor.hpp"
#include "src/serve/server.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/paper_example.hpp"

namespace {

using namespace mvd;

int usage(const std::string& problem) {
  std::cerr << "mvserve: " << problem << "\n"
            << "usage: mvserve [--sql QUERY] [--base] [--scale S]\n"
            << "               [--repl] [--selftest]\n";
  return 2;
}

/// The paper warehouse with every workload query's result node
/// materialized — each registered query has a covering view.
MvServer make_server(double scale) {
  DesignerOptions options;
  options.cost = paper_cost_config();
  WarehouseDesigner designer(make_paper_catalog(), options);
  const PaperExample example = make_paper_example();
  for (const QuerySpec& q : example.queries) designer.add_query(q);
  DesignResult design = designer.design();
  const MvppGraph& g = design.graph();
  for (const NodeId q : g.query_ids()) {
    design.selection.materialized.insert(g.node(q).children[0]);
  }
  return MvServer(example.catalog, design,
                  populate_paper_database(scale));
}

void print_route(const ServeResult& r) {
  if (r.rewritten) {
    std::cout << "  route: view " << r.view;
  } else {
    std::cout << "  route: base tables"
              << (r.refusal.empty() ? "" : " (" + r.refusal + ")");
  }
  std::cout << "  rows: " << r.table.row_count() << "  epoch: " << r.epoch
            << "  latency: " << r.latency_ms << " ms\n";
}

int serve_one(MvServer& server, const std::string& sql, ServePath path) {
  try {
    const ServeResult r = server.serve(sql, path);
    std::cout << r.table.preview() << "\n";
    print_route(r);
    return 0;
  } catch (const Error& e) {
    std::cerr << "mvserve: " << e.what() << "\n";
    return 1;
  }
}

int repl(MvServer& server) {
  std::string line;
  int status = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    status = serve_one(server, line, ServePath::kAuto) == 0 ? status : 1;
  }
  return status;
}

// ---- self-test -------------------------------------------------------------

struct ServeCase {
  std::string name;
  std::string sql;
  bool expect_rewrite;
};

int selftest() {
  MvServer server = make_server(0.02);
  const std::vector<ServeCase> cases = {
      // The four registered queries: each has its own materialized result.
      {"q1-exact",
       "SELECT Product.name FROM Product, Division "
       "WHERE Product.Did = Division.Did AND city = 'LA'",
       true},
      {"q4-exact",
       "SELECT Customer.city, date FROM Order, Customer "
       "WHERE quantity > 100 AND Order.Cid = Customer.Cid",
       true},
      // Residual compensation: strictly narrower over stored columns.
      {"q4-residual",
       "SELECT Customer.city, date FROM Order, Customer "
       "WHERE quantity > 100 AND date > DATE '1996-07-01' "
       "AND Order.Cid = Customer.Cid",
       true},
      // Near miss: quantity > 99 admits a row the view discarded.
      {"q4-near-miss",
       "SELECT Customer.city, date FROM Order, Customer "
       "WHERE quantity > 99 AND Order.Cid = Customer.Cid",
       false},
      // No deployed view touches Division alone.
      {"uncovered", "SELECT name FROM Division WHERE city = 'LA'", false},
  };

  int failures = 0;
  for (const ServeCase& c : cases) {
    std::string verdict = "ok";
    try {
      const auto snap = server.snapshot();
      const ServeResult hit =
          server.serve_on(snap, parse_adhoc(server.catalog(), c.sql));
      const ServeResult base = server.serve_on(
          snap, parse_adhoc(server.catalog(), c.sql), ServePath::kBaseOnly);
      if (hit.rewritten != c.expect_rewrite) {
        verdict = c.expect_rewrite
                      ? "FAIL: expected a rewrite, got fallback (" +
                            hit.refusal + ")"
                      : "FAIL: wrongly rewritten onto " + hit.view;
      } else if (!same_bag(hit.table, base.table)) {
        verdict = "FAIL: rewritten answer differs from the base answer";
      }
    } catch (const Error& e) {
      verdict = std::string("FAIL: ") + e.what();
    }
    if (verdict != "ok") ++failures;
    std::cout << c.name << ": " << verdict << "\n";
  }
  std::cout << (failures == 0
                    ? "self-test passed"
                    : "self-test FAILED (" + std::to_string(failures) +
                          " problems)")
            << "\n";
  return failures;
}

// ---- demo ------------------------------------------------------------------

int demo(MvServer& server) {
  std::cout << "== workload queries\n";
  const PaperExample example = make_paper_example();
  for (const QuerySpec& q : example.queries) {
    std::cout << q.name() << ": " << q.to_sql() << "\n";
    print_route(server.serve(q));
  }

  std::cout << "\n== ad-hoc variants\n";
  const std::vector<std::string> adhoc = {
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND date > DATE '1996-07-01' "
      "AND Order.Cid = Customer.Cid",
      "SELECT name FROM Division WHERE city = 'LA'",
  };
  for (const std::string& sql : adhoc) {
    std::cout << sql << "\n";
    print_route(server.serve(sql));
  }

  std::cout << "\n== ingest + refresh\n";
  Rng rng(7);
  UpdateStreamOptions updates;
  server.ingest("Order", updates, rng);
  std::cout << "after ingest(Order): epoch " << server.epoch() << "\n";
  const QuerySpec& q4 = example.queries.back();
  ServeResult stale = server.serve(q4);
  std::cout << q4.name() << " while stale:\n";
  print_route(stale);
  server.refresh();
  std::cout << "after refresh: epoch " << server.epoch() << "\n";
  ServeResult fresh = server.serve(q4);
  print_route(fresh);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sql;
  bool base_only = false;
  bool run_repl = false;
  double scale = 0.02;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--sql") {
      if (i + 1 >= args.size()) return usage("--sql needs a query");
      sql = args[++i];
    } else if (arg == "--base") {
      base_only = true;
    } else if (arg == "--scale") {
      if (i + 1 >= args.size()) return usage("--scale needs a number");
      try {
        scale = std::stod(args[++i]);
      } catch (const std::exception&) {
        return usage("bad --scale value");
      }
    } else if (arg == "--repl") {
      run_repl = true;
    } else if (arg == "--selftest") {
      return selftest() == 0 ? 0 : 1;
    } else {
      return usage("unknown argument '" + arg + "'");
    }
  }

  try {
    MvServer server = make_server(scale);
    if (!sql.empty()) {
      return serve_one(server, sql,
                       base_only ? ServePath::kBaseOnly : ServePath::kAuto);
    }
    if (run_repl) return repl(server);
    return demo(server);
  } catch (const std::exception& e) {
    std::cerr << "mvserve: " << e.what() << "\n";
    return 2;
  }
}
