// mvcheck — static plan analysis: schema/type checking, predicate
// implication, fusability prediction and self-maintainability
// certification, all before any engine touches data.
//
//   mvcheck                     check the paper workload's optimized plans
//   mvcheck --paper             same (explicit)
//   mvcheck --json              emit the reports as JSON
//   mvcheck --level LVL         only show findings at LVL or above
//                               (error|warn|info; default info)
//   mvcheck --selftest          corrupted-plan mutation coverage: every
//                               rule must fire on exactly the plan defect
//                               built to trigger it, and nothing else
//
// Exit status: 0 clean (no error-severity findings), 1 when errors (or a
// self-test failure) are found, 2 on usage or load problems.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/algebra/aggregate.hpp"
#include "src/check/check.hpp"
#include "src/common/error.hpp"
#include "src/cost/cost_model.hpp"
#include "src/optimizer/optimizer.hpp"
#include "src/storage/database.hpp"
#include "src/workload/paper_example.hpp"

namespace {

using namespace mvd;

int usage(const std::string& problem) {
  std::cerr << "mvcheck: " << problem << "\n"
            << "usage: mvcheck [--paper] [--json]\n"
            << "               [--level error|warn|info] [--selftest]\n";
  return 2;
}

// ---- self-test -------------------------------------------------------------

/// One deliberately corrupted plan and the single rule it must trip.
struct PlanMutation {
  std::string name;
  std::string expected_rule;
  PlanPtr plan;
  std::shared_ptr<Database> database;  // optional grounding
};

Schema test_schema() {
  return Schema({Attribute{"id", ValueType::kInt64, "T"},
                 Attribute{"name", ValueType::kString, "T"},
                 Attribute{"qty", ValueType::kInt64, "T"}});
}

PlanPtr test_scan() { return std::make_shared<ScanOp>("T", test_schema()); }

std::vector<PlanMutation> builtin_plan_mutations() {
  std::vector<PlanMutation> out;
  const PlanPtr scan = test_scan();

  // Every constructor below is the *raw* operator constructor: the make_*
  // factories bind eagerly and would reject these plans up front, which
  // is exactly the hole mvcheck closes for hand-assembled plans.
  out.push_back({"predicate-unknown-column", "check/column-resolve",
                 std::make_shared<SelectOp>(scan,
                                            gt(col("missing"), lit_i64(5))),
                 nullptr});
  {
    // A projection referencing a column the projection below dropped.
    PlanPtr keep_id = make_project(scan, {"id"});
    Schema recorded({Attribute{"qty", ValueType::kInt64, "T"}});
    out.push_back({"projection-of-dropped-column", "check/projection-resolve",
                   std::make_shared<ProjectOp>(std::move(keep_id),
                                               std::move(recorded),
                                               std::vector<std::string>{"qty"}),
                   nullptr});
  }
  out.push_back({"string-vs-int-comparison", "check/type-mismatch",
                 std::make_shared<SelectOp>(scan, gt(col("name"), lit_i64(5))),
                 nullptr});
  out.push_back({"non-bool-predicate", "check/predicate-type",
                 std::make_shared<SelectOp>(scan, col("qty")), nullptr});
  out.push_back({"contradictory-range", "check/contradiction",
                 std::make_shared<SelectOp>(
                     scan, conj({gt(col("id"), lit_i64(5)),
                                 lt(col("id"), lit_i64(3))})),
                 nullptr});
  out.push_back({"always-true-predicate", "check/tautology",
                 std::make_shared<SelectOp>(scan, lit(Value::boolean(true))),
                 nullptr});
  {
    PlanPtr inner = make_select(scan, gt(col("id"), lit_i64(5)));
    out.push_back({"conjunct-repeated-above", "check/redundant-conjunct",
                   std::make_shared<SelectOp>(std::move(inner),
                                              gt(col("id"), lit_i64(5))),
                   nullptr});
  }
  {
    Schema agg_schema({Attribute{"name", ValueType::kString, "T"},
                       Attribute{"s", ValueType::kDouble, ""}});
    out.push_back(
        {"sum-over-string", "check/agg-input",
         std::make_shared<AggregateOp>(
             scan, std::move(agg_schema), std::vector<std::string>{"T.name"},
             std::vector<AggSpec>{{AggFn::kSum, "T.name", "s"}}),
         nullptr});
  }
  {
    Schema agg_schema({Attribute{"missing", ValueType::kInt64, ""},
                       Attribute{"n", ValueType::kInt64, ""}});
    out.push_back(
        {"group-by-unknown-column", "check/agg-resolve",
         std::make_shared<AggregateOp>(
             scan, std::move(agg_schema), std::vector<std::string>{"missing"},
             std::vector<AggSpec>{{AggFn::kCount, "", "n"}}),
         nullptr});
  }
  {
    // The stored table's qty is int64; the plan believes it is a string.
    auto db = std::make_shared<Database>();
    db->add_table("T", Table(Schema({Attribute{"id", ValueType::kInt64, ""},
                                     Attribute{"name", ValueType::kString, ""},
                                     Attribute{"qty", ValueType::kInt64, ""}}),
                             4));
    Schema drifted({Attribute{"id", ValueType::kInt64, "T"},
                    Attribute{"name", ValueType::kString, "T"},
                    Attribute{"qty", ValueType::kString, "T"}});
    out.push_back({"scan-schema-drift", "check/scan-schema",
                   std::make_shared<ScanOp>("T", std::move(drifted)),
                   std::move(db)});
  }
  {
    Schema two({Attribute{"id", ValueType::kInt64, "T"},
                Attribute{"qty", ValueType::kInt64, "T"}});
    out.push_back({"projection-arity-drift", "check/schema-consistent",
                   std::make_shared<ProjectOp>(scan, std::move(two),
                                               std::vector<std::string>{"id"}),
                   nullptr});
  }
  return out;
}

const char* kAllRules[] = {
    "check/column-resolve",   "check/projection-resolve",
    "check/type-mismatch",    "check/predicate-type",
    "check/contradiction",    "check/tautology",
    "check/redundant-conjunct", "check/agg-input",
    "check/agg-resolve",      "check/scan-schema",
    "check/schema-consistent",
};

int selftest() {
  std::set<std::string> covered;
  int failures = 0;
  for (const PlanMutation& mutation : builtin_plan_mutations()) {
    covered.insert(mutation.expected_rule);
    std::string verdict;
    try {
      CheckOptions opts;
      opts.database = mutation.database.get();
      const CheckReport report = check_plan(mutation.plan, opts);
      const std::set<std::string> fired = report.findings.fired_rules();
      if (fired == std::set<std::string>{mutation.expected_rule}) {
        verdict = "ok";
      } else {
        verdict = "FAIL: fired {";
        for (const std::string& rule : fired) verdict += " " + rule;
        verdict += " }, expected { " + mutation.expected_rule + " }";
      }
    } catch (const Error& e) {
      verdict = std::string("FAIL: ") + e.what();
    }
    if (verdict != "ok") ++failures;
    std::cout << mutation.name << " -> " << mutation.expected_rule << ": "
              << verdict << "\n";
  }
  for (const char* rule : kAllRules) {
    if (!covered.count(rule)) {
      ++failures;
      std::cout << "NO MUTATION covers rule " << rule << "\n";
    }
  }
  std::cout << (failures == 0 ? "self-test passed"
                              : "self-test FAILED (" +
                                    std::to_string(failures) + " problems)")
            << "\n";
  return failures;
}

// ---- paper workload --------------------------------------------------------

struct QueryCheck {
  std::string name;
  CheckReport report;
};

std::vector<QueryCheck> check_paper_workload() {
  const PaperExample example = make_paper_example();
  const Database db = populate_paper_database();
  const CostModel cost_model(example.catalog, paper_cost_config());
  const Optimizer optimizer(cost_model);

  std::vector<QueryCheck> out;
  for (const QuerySpec& q : example.queries) {
    CheckOptions opts;
    opts.database = &db;
    QueryCheck qc;
    qc.name = q.name();
    qc.report = check_plan(optimizer.optimize(q), opts);
    out.push_back(std::move(qc));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  Severity level = Severity::kInfo;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--paper") {
      // Default mode; accepted for symmetry with mvlint.
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--level") {
      if (i + 1 >= args.size()) return usage("--level needs a severity");
      try {
        level = severity_from_string(args[++i]);
      } catch (const Error& e) {
        return usage(e.what());
      }
    } else if (arg == "--selftest") {
      return selftest() == 0 ? 0 : 1;
    } else {
      return usage("unknown argument '" + arg + "'");
    }
  }

  try {
    const std::vector<QueryCheck> checks = check_paper_workload();
    bool errors = false;
    if (as_json) {
      Json doc = Json::object();
      Json arr = Json::array();
      for (const QueryCheck& qc : checks) {
        Json entry = Json::object();
        entry.set("query", Json::string(qc.name));
        entry.set("check", qc.report.to_json());
        arr.push_back(std::move(entry));
        errors = errors || !qc.report.ok();
      }
      doc.set("queries", std::move(arr));
      doc.set("ok", Json::boolean(!errors));
      std::cout << doc.dump(2) << "\n";
    } else {
      for (const QueryCheck& qc : checks) {
        CheckReport shown = qc.report;
        shown.findings = qc.report.findings.filtered(level);
        std::cout << "== " << qc.name << "\n" << shown.render_text() << "\n";
        errors = errors || !qc.report.ok();
      }
    }
    return errors ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "mvcheck: " << e.what() << "\n";
    return 2;
  }
}
