// mvstat — the workload observatory's console.
//
// Renders what the serving warehouse actually saw: top queries by
// observed frequency (cumulative and decayed-window counts), per-view
// hit rates and staleness ages, serve-latency percentiles, and the
// drift of the observed workload against the catalog's declared fq/fu
// annotations.
//
//   mvstat --live            drive the built-in demo traffic over the
//                            paper warehouse, then render its observatory
//   mvstat --journal FILE    load a JSONL journal (MVD_JOURNAL sink),
//                            replay it, render the reconstruction
//   mvstat --json            machine-readable output instead of tables
//   mvstat --top N           queries shown in the frequency table (10)
//   mvstat --scale S         database scale for --live (default 0.02)
//   mvstat --selftest        replay == live bit-for-bit, the lint rule
//                            catches a tampered journal, JSONL round-trip,
//                            corrupt/truncated-line recovery, drift sanity
//
// Exit status: 0 ok, 1 self-test failure or load error, 2 usage.
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/lint/registry.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/workload.hpp"
#include "src/serve/server.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/paper_example.hpp"

namespace {

using namespace mvd;

int usage(const std::string& problem) {
  std::cerr << "mvstat: " << problem << "\n"
            << "usage: mvstat [--live] [--journal FILE] [--json]\n"
            << "              [--top N] [--scale S] [--selftest]\n";
  return 2;
}

/// The paper warehouse design with every workload query's result
/// materialized (the mvserve demo configuration — every registered query
/// has a covering view).
DesignResult make_design() {
  DesignerOptions options;
  options.cost = paper_cost_config();
  WarehouseDesigner designer(make_paper_catalog(), options);
  const PaperExample example = make_paper_example();
  for (const QuerySpec& q : example.queries) designer.add_query(q);
  DesignResult design = designer.design();
  const MvppGraph& g = design.graph();
  for (const NodeId q : g.query_ids()) {
    design.selection.materialized.insert(g.node(q).children[0]);
  }
  return design;
}

MvServer make_server(double scale) {
  return MvServer(make_paper_catalog(), make_design(),
                  populate_paper_database(scale));
}

/// Deterministic demo traffic: the workload queries at skewed rates, two
/// ad-hoc probes, an ingest (serving one query while its view is stale)
/// and a refresh.
void drive_demo(MvServer& server) {
  const PaperExample example = make_paper_example();
  for (std::size_t i = 0; i < example.queries.size(); ++i) {
    const std::size_t repeats = example.queries.size() - i;  // skew
    for (std::size_t r = 0; r < repeats; ++r) {
      server.serve(example.queries[i]);
    }
  }
  const std::vector<std::string> adhoc = {
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND date > DATE '1996-07-01' "
      "AND Order.Cid = Customer.Cid",
      "SELECT name FROM Division WHERE city = 'LA'",
  };
  for (const std::string& sql : adhoc) server.serve(sql);

  Rng rng(7);
  UpdateStreamOptions updates;
  server.ingest("Order", updates, rng);
  server.serve(example.queries.back());  // falls back: its view is stale
  server.refresh();
  server.serve(example.queries.back());  // hits again
}

// ---- rendering -------------------------------------------------------------

std::string fmt(double v) { return format_fixed(v, 3); }

void render_text(const WorkloadStats& stats, std::size_t top_n) {
  std::cout << "== workload observatory\n"
            << "events: " << stats.events << "  serves: " << stats.serves
            << "  ingests: " << stats.ingests
            << "  refreshes: " << stats.refreshes
            << "  window: " << stats.window << "\n\n";

  struct Ranked {
    const std::string* fp;
    const QueryObservation* q;
  };
  std::vector<Ranked> ranked;
  for (const auto& [fp, q] : stats.queries) ranked.push_back({&fp, &q});
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.q->count != b.q->count) return a.q->count > b.q->count;
    return *a.fp < *b.fp;
  });
  if (ranked.size() > top_n) ranked.resize(top_n);

  std::cout << "-- top queries by observed frequency\n";
  TextTable queries({"id", "query", "count", "windowed", "hits", "misses",
                     "mean ms"},
                    {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight,
                     Align::kRight, Align::kRight, Align::kRight});
  for (const Ranked& r : ranked) {
    const QueryObservation& q = *r.q;
    queries.add_row(
        {fingerprint_id(*r.fp), q.query.empty() ? "(ad hoc)" : q.query,
         std::to_string(q.count),
         fmt(windowed_now(q.windowed, q.windowed_at, stats.serves,
                          stats.window)),
         std::to_string(q.hits), std::to_string(q.misses),
         q.count == 0 ? "-"
                      : fmt(q.latency_ms_sum / static_cast<double>(q.count))});
  }
  std::cout << queries.render() << "\n";

  if (!stats.views.empty()) {
    std::cout << "-- deployed views\n";
    TextTable views({"view", "hits", "refusals", "hit rate", "stale",
                     "staleness age", "pending rows", "stale serves",
                     "refreshes"},
                    {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                     Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                     Align::kRight});
    for (const auto& [name, v] : stats.views) {
      const std::uint64_t consults = v.hits + v.refusals;
      views.add_row(
          {name, std::to_string(v.hits), std::to_string(v.refusals),
           consults == 0 ? "-"
                         : fmt(static_cast<double>(v.hits) /
                               static_cast<double>(consults)),
           v.stale_since_seq.has_value() ? "yes" : "no",
           v.stale_since_seq.has_value()
               ? std::to_string(stats.events - *v.stale_since_seq)
               : "-",
           fmt(v.pending_delta_rows), std::to_string(v.stale_serves_total),
           std::to_string(v.refreshes)});
    }
    std::cout << views.render() << "\n";
  }

  if (stats.latency_count > 0) {
    std::cout << "-- serve latency\n"
              << "count: " << stats.latency_count << "  mean: "
              << fmt(stats.latency_ms_sum /
                     static_cast<double>(stats.latency_count))
              << " ms  p50: "
              << fmt(histogram_percentile(serve_latency_bounds(),
                                          stats.latency_counts,
                                          stats.latency_count, 0.50))
              << " ms  p95: "
              << fmt(histogram_percentile(serve_latency_bounds(),
                                          stats.latency_counts,
                                          stats.latency_count, 0.95))
              << " ms  p99: "
              << fmt(histogram_percentile(serve_latency_bounds(),
                                          stats.latency_counts,
                                          stats.latency_count, 0.99))
              << " ms\n\n";
  }

  const DriftReport drift = compute_drift(stats);
  std::cout << "-- catalog drift (total-variation distance)\n"
            << "fq: " << fmt(drift.fq_distance)
            << "  fu: " << fmt(drift.fu_distance)
            << "  unmatched serves: " << fmt(drift.unmatched_serve_share)
            << "\n";
  if (!drift.queries.empty()) {
    TextTable fq({"query", "declared", "observed"},
                 {Align::kLeft, Align::kRight, Align::kRight});
    for (const DriftEntry& e : drift.queries) {
      fq.add_row({e.name, fmt(e.declared_share), fmt(e.observed_share)});
    }
    std::cout << fq.render();
  }
  if (!drift.relations.empty()) {
    TextTable fu({"relation", "declared", "observed"},
                 {Align::kLeft, Align::kRight, Align::kRight});
    for (const DriftEntry& e : drift.relations) {
      fu.add_row({e.name, fmt(e.declared_share), fmt(e.observed_share)});
    }
    std::cout << fu.render();
  }
}

void render_json(const WorkloadStats& stats) {
  Json doc = Json::object();
  doc.set("workload", stats.to_json());
  doc.set("drift", compute_drift(stats).to_json());
  Json latency = Json::object();
  latency.set("p50", Json::number(histogram_percentile(
                         serve_latency_bounds(), stats.latency_counts,
                         stats.latency_count, 0.50)));
  latency.set("p95", Json::number(histogram_percentile(
                         serve_latency_bounds(), stats.latency_counts,
                         stats.latency_count, 0.95)));
  latency.set("p99", Json::number(histogram_percentile(
                         serve_latency_bounds(), stats.latency_counts,
                         stats.latency_count, 0.99)));
  doc.set("latency_percentiles", std::move(latency));
  std::cout << doc.dump(2) << "\n";
}

int run_live(double scale, bool json, std::size_t top_n) {
  MvServer server = make_server(scale);
  if (server.observatory() == nullptr) {
    std::cerr << "mvstat: observatory disabled (MVD_SERVE_OBSERVE=off)\n";
    return 1;
  }
  drive_demo(server);
  const WorkloadStats stats = server.observatory()->stats();
  if (json) {
    render_json(stats);
  } else {
    render_text(stats, top_n);
  }
  return 0;
}

int run_journal(const std::string& path, bool json, std::size_t top_n) {
  try {
    std::size_t corrupt = 0;
    const std::vector<JournalEvent> events =
        EventJournal::load(path, &corrupt);
    if (corrupt > 0) {
      std::cerr << "mvstat: skipped " << corrupt << " corrupt line"
                << (corrupt == 1 ? "" : "s") << " in " << path << "\n";
    }
    const std::unique_ptr<WorkloadObservatory> obs = replay_journal(events);
    const WorkloadStats stats = obs->stats();
    if (json) {
      render_json(stats);
    } else {
      render_text(stats, top_n);
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "mvstat: " << e.what() << "\n";
    return 1;
  }
}

// ---- self-test -------------------------------------------------------------

int selftest() {
  int failures = 0;
  const auto check = [&](bool ok, const std::string& name) {
    std::cout << name << ": " << (ok ? "ok" : "FAIL") << "\n";
    if (!ok) ++failures;
  };

  // 1. Live traffic replays bit-for-bit from the journal.
  const DesignResult design = make_design();
  MvServer server(make_paper_catalog(), design, populate_paper_database(0.02));
  if (server.observatory() == nullptr) {
    std::cout << "observatory disabled; cannot self-test\n";
    return 1;
  }
  drive_demo(server);
  const WorkloadObservatory& live = *server.observatory();
  const std::vector<JournalEvent> events = live.journal()->events();
  const bool complete = live.journal()->appended() == events.size();
  check(complete, "journal-complete");
  const std::unique_ptr<WorkloadObservatory> replayed =
      replay_journal(events, live.window());
  const std::map<std::string, double> live_gauges = live.stats().to_gauges();
  check(replayed->stats().to_gauges() == live_gauges, "replay-bit-for-bit");

  // 2. The lint rule passes on the honest journal and catches a tamper.
  LintContext ctx;
  ctx.graph = &design.graph();
  LintContext::WorkloadJournalCheck wcheck;
  wcheck.live_gauges = live_gauges;
  wcheck.events = events;
  wcheck.window = live.window();
  ctx.workload = wcheck;
  check(!LintRegistry::builtin().run(ctx).has_errors(), "lint-honest");
  for (JournalEvent& e : ctx.workload->events) {
    if (e.kind == EventKind::kServe) {
      e.latency_ms += 1.0;
      break;
    }
  }
  check(LintRegistry::builtin().run(ctx).has_errors(), "lint-tamper-caught");

  // 3. JSONL round-trip preserves every event exactly.
  const std::string jsonl = EventJournal::to_jsonl(events);
  check(EventJournal::parse_jsonl(jsonl) == events, "jsonl-round-trip");

  // 4. A truncated tail and a corrupt line recover to the intact prefix.
  std::string damaged = jsonl;
  damaged.resize(damaged.size() - damaged.size() / 3);  // torn tail
  std::size_t corrupt = 0;
  const std::vector<JournalEvent> recovered =
      EventJournal::parse_jsonl(damaged + "\n{not json}\n", &corrupt);
  check(corrupt >= 1 && !recovered.empty() && recovered.size() < events.size(),
        "corrupt-line-recovery");
  check(std::equal(recovered.begin(), recovered.end(), events.begin()),
        "recovered-prefix-intact");

  // 5. Drift sanity: distances are within [0,1]; the skewed demo traffic
  // does not match the declared uniform-ish shape exactly.
  const DriftReport drift = live.drift();
  const auto in_range = [](double d) { return d >= 0.0 && d <= 1.0; };
  check(in_range(drift.fq_distance) && in_range(drift.fu_distance) &&
            in_range(drift.unmatched_serve_share),
        "drift-in-range");
  check(!drift.queries.empty() && !drift.relations.empty(), "drift-entries");

  std::cout << (failures == 0 ? "self-test passed"
                              : "self-test FAILED (" +
                                    std::to_string(failures) + " problems)")
            << "\n";
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool live = false;
  bool json = false;
  std::string journal_path;
  std::size_t top_n = 10;
  double scale = 0.02;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--live") {
      live = true;
    } else if (arg == "--journal") {
      if (i + 1 >= args.size()) return usage("--journal needs a file");
      journal_path = args[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--top") {
      if (i + 1 >= args.size()) return usage("--top needs a number");
      try {
        top_n = static_cast<std::size_t>(std::stoul(args[++i]));
      } catch (const std::exception&) {
        return usage("bad --top value");
      }
    } else if (arg == "--scale") {
      if (i + 1 >= args.size()) return usage("--scale needs a number");
      try {
        scale = std::stod(args[++i]);
      } catch (const std::exception&) {
        return usage("bad --scale value");
      }
    } else if (arg == "--selftest") {
      return selftest() == 0 ? 0 : 1;
    } else {
      return usage("unknown argument '" + arg + "'");
    }
  }

  if (live && !journal_path.empty()) {
    return usage("--live and --journal are mutually exclusive");
  }

  try {
    if (!journal_path.empty()) return run_journal(journal_path, json, top_n);
    return run_live(scale, json, top_n);  // --live is also the default
  } catch (const std::exception& e) {
    std::cerr << "mvstat: " << e.what() << "\n";
    return 2;
  }
}
