// mvprof — end-to-end profiler for the warehouse-design pipeline.
//
//   mvprof                      profile the paper workload (design,
//                               populate, deploy, answer, update+refresh)
//   mvprof --paper              same, explicitly
//   mvprof --input FILE         profile selection over a serialized MVPP
//                               (to_json output; paper catalog relations)
//   mvprof --scale X            database scale for --paper (default 0.01)
//   mvprof --shards N           run the --paper pipeline on a sharded
//                               layout (Order hash-partitioned on Cid,
//                               dimensions replicated) and report the
//                               exec/exchange/* traffic counters;
//                               defaults to MVD_EXEC_SHARDS when set
//   mvprof --out DIR            where trace.json / metrics.json go
//                               (default ".")
//   mvprof --json               machine-readable phase summary on stdout
//
// Runs with full tracing on (MVD_TRACE=spans equivalent), prints a
// phase-by-phase table of wall time and registry deltas, then writes
//
//   trace.json    Chrome trace-event document — load in chrome://tracing
//                 or https://ui.perfetto.dev
//   metrics.json  final MetricsRegistry snapshot
//
// and reconciles the published "selection/ledger/..." gauges against the
// design's reported selection costs (the obs/metrics-consistent
// contract). Exit status: 0 ok, 1 reconciliation failure, 2 usage/load
// problems.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/exec/executor.hpp"
#include "src/common/random.hpp"
#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/mvpp/serialize.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/obs/workload.hpp"
#include "src/storage/sharded_table.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/paper_example.hpp"

namespace {

using namespace mvd;

int usage(const std::string& problem) {
  std::cerr << "mvprof: " << problem << "\n"
            << "usage: mvprof [--paper | --input FILE] [--scale X]\n"
            << "              [--shards N] [--out DIR] [--json]\n"
            << "              [--exec row|vec|fused]\n";
  return 2;
}

struct PhaseRow {
  std::string name;
  double wall_ms = 0;
  std::size_t events = 0;       // trace events recorded during the phase
  MetricsSnapshot delta;        // registry activity during the phase
};

/// Run `fn` as one named phase: a top-level span plus wall time, trace
/// event count and registry snapshot deltas.
template <typename Fn>
void run_phase(std::vector<PhaseRow>& rows, const char* name, Fn&& fn) {
  PhaseRow row;
  row.name = name;
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  const std::size_t events_before = Tracer::global().event_count();
  const auto t0 = std::chrono::steady_clock::now();
  {
    TraceSpan span("mvprof", name);
    fn();
  }
  const auto t1 = std::chrono::steady_clock::now();
  row.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.events = Tracer::global().event_count() - events_before;
  row.delta = MetricsRegistry::global().snapshot().diff(before);
  rows.push_back(std::move(row));
}

double counter_of(const MetricsSnapshot& s, const std::string& name) {
  return s.value_of(name).value_or(0);
}

void print_phase_table(const std::vector<PhaseRow>& rows) {
  TextTable table({"phase", "wall ms", "trace events", "blocks read",
                   "rows scanned", "cost evals"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});
  for (const PhaseRow& row : rows) {
    std::ostringstream ms;
    ms.setf(std::ios::fixed);
    ms.precision(2);
    ms << row.wall_ms;
    table.add_row(
        {row.name, ms.str(), std::to_string(row.events),
         format_blocks(counter_of(row.delta, "exec/total/blocks_read")),
         format_blocks(counter_of(row.delta, "exec/total/rows_scanned")),
         format_blocks(
             counter_of(row.delta, "selection/fast_eval/evaluations"))});
  }
  std::cout << table.render();
}

Json phases_to_json(const std::vector<PhaseRow>& rows) {
  Json arr = Json::array();
  for (const PhaseRow& row : rows) {
    Json p = Json::object();
    p.set("phase", Json::string(row.name));
    p.set("wall_ms", Json::number(row.wall_ms));
    p.set("trace_events", Json::number(row.events));
    p.set("metrics", row.delta.to_json().at("metrics"));
    arr.push_back(std::move(p));
  }
  return arr;
}

bool close_enough(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= 1e-9 * scale;
}

/// The acceptance gate: the gauges the design published must equal the
/// selection costs it reported — same contract obs/metrics-consistent
/// enforces in mvlint.
bool reconcile_ledger(const MetricsSnapshot& snap, const MvppCosts& costs,
                      Json& out) {
  const double qp =
      snap.value_of("selection/ledger/query_blocks").value_or(-1);
  const double maint =
      snap.value_of("selection/ledger/maintenance_blocks").value_or(-1);
  const bool ok = close_enough(qp, costs.query_processing) &&
                  close_enough(maint, costs.maintenance);
  out = Json::object();
  out.set("ledger_query_blocks", Json::number(qp));
  out.set("selection_query_blocks", Json::number(costs.query_processing));
  out.set("ledger_maintenance_blocks", Json::number(maint));
  out.set("selection_maintenance_blocks", Json::number(costs.maintenance));
  out.set("consistent", Json::boolean(ok));
  return ok;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write '" + path + "'");
  out << text;
}

/// Full pipeline over the paper workload. With `shards` > 0 the runtime
/// phases (deploy, answer, update, refresh) run against the sharded
/// layout — Order hash-partitioned on Cid, dimensions replicated — and
/// the exchange traffic is reported alongside the ledger gate.
int profile_paper(double scale, std::size_t shards,
                  const std::string& out_dir, bool as_json) {
  const PaperExample example = make_paper_example();
  DesignerOptions options;
  options.cost = paper_cost_config();
  WarehouseDesigner designer(example.catalog, options);
  for (const QuerySpec& q : example.queries) designer.add_query(q);

  std::vector<PhaseRow> rows;
  DesignResult design;
  run_phase(rows, "design", [&] { design = designer.design(); });
  const MetricsSnapshot after_design = MetricsRegistry::global().snapshot();

  Database db;
  run_phase(rows, "populate",
            [&] { db = populate_paper_database(scale, 17); });

  std::optional<ShardedDatabase> sdb;
  if (shards > 0) {
    run_phase(rows, "shard", [&] {
      sdb.emplace(shard_database(db, shards, {{"Order", "Cid"}}));
    });
  }

  ExecStats deploy_stats;
  run_phase(rows, "deploy", [&] {
    if (sdb) {
      designer.deploy(design, *sdb, &deploy_stats);
    } else {
      designer.deploy(design, db, &deploy_stats);
    }
  });

  run_phase(rows, "answer", [&] {
    // Per-answer latencies land in a histogram so the summary can report
    // percentile estimates alongside the phase wall time.
    Histogram& latency = MetricsRegistry::global().histogram(
        "designer/answer/latency_ms", serve_latency_bounds());
    for (const QuerySpec& q : example.queries) {
      const auto a0 = std::chrono::steady_clock::now();
      if (sdb) {
        (void)designer.answer(design, q.name(), *sdb);
      } else {
        (void)designer.answer(design, q.name(), db);
      }
      const auto a1 = std::chrono::steady_clock::now();
      latency.observe(
          std::chrono::duration<double, std::milli>(a1 - a0).count());
    }
  });

  DeltaSet deltas;
  Rng rng(99);
  run_phase(rows, "update", [&] {
    for (const char* relation : {"Order", "Customer"}) {
      (void)apply_update_batch(db, relation, UpdateStreamOptions{}, rng,
                               &deltas);
    }
    // The sharded layout receives the same base changes: partitioned
    // deltas shuffle to their owning buckets, dimension deltas broadcast.
    if (sdb) sdb->apply_base_deltas(deltas);
  });

  RefreshReport refresh;
  run_phase(rows, "refresh", [&] {
    if (sdb) {
      refresh =
          designer.refresh(design, *sdb, deltas, RefreshMode::kIncremental);
    } else {
      refresh = designer.refresh(design, db, deltas, RefreshMode::kIncremental);
    }
  });

  const MetricsSnapshot final_snap = MetricsRegistry::global().snapshot();
  Json reconciliation;
  const bool consistent =
      reconcile_ledger(after_design, design.selection.costs, reconciliation);

  const std::string trace_path = out_dir + "/trace.json";
  const std::string metrics_path = out_dir + "/metrics.json";
  write_file(trace_path, Tracer::global().to_chrome_json().dump(2) + "\n");
  write_file(metrics_path, final_snap.to_json().dump(2) + "\n");

  if (as_json) {
    Json doc = Json::object();
    doc.set("workload", Json::string("paper"));
    doc.set("scale", Json::number(scale));
    doc.set("phases", phases_to_json(rows));
    doc.set("ledger", std::move(reconciliation));
    doc.set("refreshed_views", Json::number(refresh.views.size()));
    if (sdb) {
      const ExchangeCounters& x = sdb->exchange_log();
      Json exchange = Json::object();
      exchange.set("shards", Json::number(shards));
      exchange.set("shuffle_rows", Json::number(x.shuffle_rows));
      exchange.set("shuffle_blocks", Json::number(x.shuffle_blocks));
      exchange.set("broadcast_rows", Json::number(x.broadcast_rows));
      exchange.set("broadcast_blocks", Json::number(x.broadcast_blocks));
      exchange.set("broadcast_bytes", Json::number(x.broadcast_bytes));
      exchange.set("gather_rows", Json::number(x.gather_rows));
      exchange.set("gather_blocks", Json::number(x.gather_blocks));
      doc.set("exchange", std::move(exchange));
    }
    const auto lat = final_snap.metrics.find("designer/answer/latency_ms");
    if (lat != final_snap.metrics.end()) {
      Json latency = Json::object();
      latency.set("count", Json::number(lat->second.count));
      latency.set("p50", Json::number(lat->second.percentile(0.50)));
      latency.set("p95", Json::number(lat->second.percentile(0.95)));
      latency.set("p99", Json::number(lat->second.percentile(0.99)));
      doc.set("answer_latency_ms", std::move(latency));
    }
    doc.set("trace_file", Json::string(trace_path));
    doc.set("metrics_file", Json::string(metrics_path));
    std::cout << doc.dump(2) << "\n";
  } else {
    print_phase_table(rows);
    const auto lat = final_snap.metrics.find("designer/answer/latency_ms");
    if (lat != final_snap.metrics.end() && lat->second.count > 0) {
      std::cout << "\nanswer latency: p50 "
                << format_fixed(lat->second.percentile(0.50), 3) << " ms, p95 "
                << format_fixed(lat->second.percentile(0.95), 3) << " ms, p99 "
                << format_fixed(lat->second.percentile(0.99), 3) << " ms over "
                << lat->second.count << " answers\n";
    }
    if (sdb) {
      const ExchangeCounters& x = sdb->exchange_log();
      std::cout << "\nexchange (" << shards << " shards): shuffle "
                << format_blocks(x.shuffle_rows) << " rows / "
                << format_blocks(x.shuffle_blocks) << " blocks, broadcast "
                << format_blocks(x.broadcast_rows) << " rows / "
                << format_blocks(x.broadcast_blocks) << " blocks ("
                << format_blocks(x.broadcast_bytes) << " bytes), gather "
                << format_blocks(x.gather_rows) << " rows / "
                << format_blocks(x.gather_blocks) << " blocks\n";
    }
    std::cout << "\nledger reconciliation: "
              << (consistent ? "ok" : "MISMATCH") << " (query "
              << format_blocks(counter_of(after_design,
                                          "selection/ledger/query_blocks"))
              << " vs " << format_blocks(design.selection.costs.query_processing)
              << ", maintenance "
              << format_blocks(counter_of(
                     after_design, "selection/ledger/maintenance_blocks"))
              << " vs " << format_blocks(design.selection.costs.maintenance)
              << ")\n";
    std::cout << "trace:   " << trace_path << "  (chrome://tracing or "
              << "ui.perfetto.dev)\n";
    std::cout << "metrics: " << metrics_path << "\n";
  }
  return consistent ? 0 : 1;
}

/// Selection-only profile over a serialized MVPP.
int profile_file(const std::string& path, const std::string& out_dir,
                 bool as_json) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  const Json& graph_doc =
      doc.kind() == Json::Kind::kObject && !doc.contains("nodes") &&
              doc.contains("graph")
          ? doc.at("graph")
          : doc;
  const Catalog catalog = make_paper_catalog();
  const MvppGraph graph = mvpp_from_json(graph_doc, catalog);

  std::vector<PhaseRow> rows;
  const MvppEvaluator eval(graph);
  SelectionResult selection;
  run_phase(rows, "select-yang",
            [&] { selection = yang_heuristic(eval); });
  run_phase(rows, "select-greedy", [&] { (void)greedy_incremental(eval); });

  const MetricsSnapshot final_snap = MetricsRegistry::global().snapshot();
  const std::string trace_path = out_dir + "/trace.json";
  const std::string metrics_path = out_dir + "/metrics.json";
  write_file(trace_path, Tracer::global().to_chrome_json().dump(2) + "\n");
  write_file(metrics_path, final_snap.to_json().dump(2) + "\n");

  if (as_json) {
    Json out = Json::object();
    out.set("workload", Json::string(path));
    out.set("phases", phases_to_json(rows));
    out.set("trace_file", Json::string(trace_path));
    out.set("metrics_file", Json::string(metrics_path));
    std::cout << out.dump(2) << "\n";
  } else {
    print_phase_table(rows);
    std::cout << "\nselected: " << to_string(graph, selection.materialized)
              << " (total " << format_blocks(selection.costs.total())
              << ")\ntrace:   " << trace_path << "\nmetrics: " << metrics_path
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kPaper, kInput };
  Mode mode = Mode::kPaper;
  std::string input_path;
  std::string out_dir = ".";
  double scale = 0.01;
  // MVD_EXEC_SHARDS selects the sharded layer without touching the
  // command line; --shards overrides it.
  std::size_t shards =
      std::min(default_exec_shards(), ShardedDatabase::kBuckets);
  bool as_json = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--paper") {
      mode = Mode::kPaper;
    } else if (arg == "--input") {
      if (i + 1 >= args.size()) return usage("--input needs a file path");
      mode = Mode::kInput;
      input_path = args[++i];
    } else if (arg == "--scale") {
      if (i + 1 >= args.size()) return usage("--scale needs a number");
      try {
        scale = std::stod(args[++i]);
      } catch (const std::exception&) {
        return usage("bad --scale value '" + args[i] + "'");
      }
      if (!(scale > 0)) return usage("--scale must be positive");
    } else if (arg == "--shards") {
      if (i + 1 >= args.size()) return usage("--shards needs a count");
      try {
        const long n = std::stol(args[++i]);
        if (n < 1 || static_cast<std::size_t>(n) > ShardedDatabase::kBuckets) {
          return usage("--shards must be between 1 and 64");
        }
        shards = static_cast<std::size_t>(n);
      } catch (const std::exception&) {
        return usage("bad --shards value '" + args[i] + "'");
      }
    } else if (arg == "--out") {
      if (i + 1 >= args.size()) return usage("--out needs a directory");
      out_dir = args[++i];
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--exec") {
      // Pick the execution engine for every plan the profile runs —
      // exec/kernel/* counters and exec.kernel spans only appear under
      // "fused". Same values MVD_EXEC_MODE takes; the flag wins.
      if (i + 1 >= args.size()) return usage("--exec needs row|vec|fused");
      const std::string& engine = args[++i];
      if (engine != "row" && engine != "vec" && engine != "vectorized" &&
          engine != "fused") {
        return usage("bad --exec value '" + engine + "'");
      }
      ::setenv("MVD_EXEC_MODE", engine.c_str(), 1);
    } else {
      return usage("unknown argument '" + arg + "'");
    }
  }

  // Full instrumentation regardless of MVD_TRACE — profiling is the
  // point of this tool.
  set_trace_level(TraceLevel::kSpans);

  try {
    switch (mode) {
      case Mode::kPaper:
        return profile_paper(scale, shards, out_dir, as_json);
      case Mode::kInput:
        return profile_file(input_path, out_dir, as_json);
    }
  } catch (const std::exception& e) {
    std::cerr << "mvprof: " << e.what() << "\n";
    return 2;
  }
  return 2;
}
