// Reproduces Table 1: sizes of relations and statistical data.
//
// Base-relation rows/blocks are catalog inputs; the join rows/blocks are
// the pinned intermediate sizes; the selectivity column shows what the
// estimator derives from the column statistics (the paper states
// s = 0.02 for Division.city = 'LA', s = 0.5 for quantity > 100 and the
// join selectivities 1/30k, 1/5k, 1/20k).
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/sql/parser.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel cost_model(catalog, paper_cost_config());

  std::cout << "Table 1 — sizes of relations and statistical data\n\n";
  TextTable table({"relation", "rows", "blocks"},
                  {Align::kLeft, Align::kRight, Align::kRight});
  for (const std::string& name : catalog.relation_names()) {
    const RelationStats& s = catalog.stats(name);
    table.add_row({name, format_blocks(s.rows), format_blocks(*s.blocks)});
  }
  auto join_row = [&](const std::string& label,
                      const std::set<std::string>& rels) {
    const JoinSizeOverride* pin = catalog.join_size_override(rels);
    table.add_row({label, format_blocks(pin->rows),
                   format_blocks(*pin->blocks)});
  };
  table.add_separator();
  join_row("Product |x| Division", {"Product", "Division"});
  join_row("Product |x| Division |x| Part", {"Product", "Division", "Part"});
  join_row("Order |x| Customer", {"Order", "Customer"});
  join_row("Product |x| Division |x| Order |x| Customer",
           {"Product", "Division", "Order", "Customer"});
  std::cout << table.render() << '\n';

  std::cout << "derived selectivities (paper's s / js column):\n";
  TextTable sel({"predicate", "selectivity", "paper"},
                {Align::kLeft, Align::kRight, Align::kRight});
  auto selectivity_of = [&](const std::string& relation,
                            const std::string& predicate) {
    const PlanPtr scan = make_scan(catalog, relation);
    const NodeEstimate in = cost_model.estimate(scan);
    return cost_model.selectivity(
        bind_expr(parse_predicate(predicate), scan->output_schema()), in);
  };
  sel.add_row({"Division.city = 'LA'",
               format_fixed(selectivity_of("Division", "city = 'LA'"), 4),
               "0.02"});
  sel.add_row({"Order.quantity > 100",
               format_fixed(selectivity_of("Order", "quantity > 100"), 4),
               "0.5"});
  sel.add_row({"Order.date > 1996-07-01",
               format_fixed(
                   selectivity_of("Order", "date > DATE '1996-07-01'"), 4),
               "~0.5"});
  std::cout << sel.render();

  std::cout << "\njoin selectivities (1 / max distinct of the key):\n";
  std::cout << "  Product.Did = Division.Did : 1/5k  (paper js = 1/5k)\n";
  std::cout << "  Part.Pid = Product.Pid     : 1/30k (paper js = 1/30k)\n";
  std::cout << "  Order.Cid = Customer.Cid   : 1/20k (paper js = 1/20k)\n";
  return 0;
}
