// Ext-A: frequency sweep — where the strategies cross over.
//
// The paper's framework says the right set of views depends on the ratio
// of query frequencies to update frequencies. This bench sweeps a global
// scale factor on the query side (fq x k for k in 1/100 .. 1000) over the
// Figure 3 MVPP and prints the total cost of: all-virtual, all query
// results, the Figure 9 heuristic, and the exhaustive optimum — the series
// showing all-virtual winning for update-heavy workloads and
// materialize-everything winning for query-heavy ones, with the heuristic
// tracking the optimum in between.
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  MvppGraph g = build_figure3_mvpp(model);
  const std::vector<std::pair<NodeId, double>> base_fq = [&] {
    std::vector<std::pair<NodeId, double>> out;
    for (NodeId q : g.query_ids()) out.emplace_back(q, g.node(q).frequency);
    return out;
  }();

  std::cout << "Ext-A — total cost vs query:update frequency ratio\n"
            << "(Figure 3 MVPP; query frequencies scaled by k, fu fixed "
               "at 1)\n\n";

  TextTable table({"k", "all-virtual", "all-queries", "heuristic",
                   "optimal", "optimal set"},
                  {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kLeft});
  const double ks[] = {0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000};
  for (double k : ks) {
    for (const auto& [q, fq] : base_fq) g.set_frequency(q, fq * k);
    const MvppEvaluator eval(g);
    const double none = eval.total_cost({});
    const double all_q = select_all_query_results(eval).costs.total();
    const double yang = yang_heuristic(eval).costs.total();
    const SelectionResult opt = exhaustive_optimal(eval);
    table.add_row({format_fixed(k, 2), format_blocks(none),
                   format_blocks(all_q), format_blocks(yang),
                   format_blocks(opt.costs.total()),
                   to_string(g, opt.materialized)});
  }
  std::cout << table.render() << '\n';
  std::cout << "reading: for update-heavy ratios (small k) the optimum "
               "materializes little or nothing;\nas queries dominate, the "
               "optimum converges to materializing the query results, and\n"
               "the heuristic tracks the optimum across the sweep.\n";
  return 0;
}
