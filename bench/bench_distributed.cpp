// Ext-F / Ext-N: distributed warehouse benchmarks.
//
// Default (no arguments) — the *modeled* Ext-F study: communication-aware
// vs site-oblivious view design (the paper's Section 4.1 note on
// incorporating transfer costs). Topology: the member databases are split
// across two operational sites; all warehouse queries are issued at a
// third analysis site. As the per-block link cost grows, the
// communication-aware design diverges from the oblivious one — it
// materializes (ships once per update, reads locally) what the oblivious
// design would re-ship on every query.
//
// `--measured [--smoke]` / `--smoke` — the *measured* Ext-N study: the
// in-process sharded engine serving a point-lookup-heavy workload with
// analytic rollups and incremental refresh batches at 1/2/4/8 shards over
// the same hash-partitioned star data. Point lookups on the partition key
// route to the owning shard and scan ~1/S of the fact table, so serving
// throughput scales with the shard count even on one core; analytic
// aggregates and refresh do the same total work at any shard count. Every
// configuration must produce bit-identical results (the 64-virtual-bucket
// determinism contract). Writes BENCH_distributed.json; in full measured
// mode the run fails (exit 1) unless the combined query+refresh
// throughput at 4 shards is >= 2.5x the 1-shard baseline and all
// configurations agree bit for bit.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/algebra/aggregate.hpp"
#include "src/common/random.hpp"
#include "src/common/json.hpp"
#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/distributed/distributed_evaluator.hpp"
#include "src/exec/sharded.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/mvpp/selection.hpp"
#include "src/storage/sharded_table.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

namespace {

// ---- Modeled mode (Ext-F) ------------------------------------------------

SiteTopology make_topology(double link_cost) {
  SiteTopology topo({"analysis", "sales", "manufacturing"}, link_cost);
  topo.place_relation("Order", "sales");
  topo.place_relation("Customer", "sales");
  topo.place_relation("Product", "manufacturing");
  topo.place_relation("Division", "manufacturing");
  topo.place_relation("Part", "manufacturing");
  for (const char* q : {"Q1", "Q2", "Q3", "Q4"}) {
    topo.place_query(q, "analysis");
  }
  return topo;
}

int run_modeled() {
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const MvppGraph g = build_figure3_mvpp(model);

  std::cout << "Ext-F — distributed design: base relations at two sites, "
               "queries issued at a third\n\n";

  TextTable table({"link cost/blk", "oblivious set", "oblivious dist. total",
                   "aware set", "aware dist. total", "saving"},
                  {Align::kRight, Align::kLeft, Align::kRight, Align::kLeft,
                   Align::kRight, Align::kRight});

  const MvppEvaluator oblivious_eval(g);
  const MaterializedSet oblivious =
      exhaustive_optimal(oblivious_eval).materialized;

  for (double link : {0.0, 1.0, 10.0, 100.0, 500.0, 2000.0}) {
    const DistributedMvppEvaluator dist(g, make_topology(link));
    const MaterializedSet aware = exhaustive_optimal(dist).materialized;
    const double oblivious_cost = dist.total_cost(oblivious);
    const double aware_cost = dist.total_cost(aware);
    table.add_row({format_fixed(link, 1), to_string(g, oblivious),
                   format_blocks(oblivious_cost), to_string(g, aware),
                   format_blocks(aware_cost),
                   format_fixed(100.0 * (1.0 - aware_cost /
                                                  std::max(oblivious_cost,
                                                           1e-9)),
                                1) + "%"});
  }
  std::cout << table.render() << '\n';

  // Show where things run / live for one interesting link cost.
  const DistributedMvppEvaluator dist(g, make_topology(2.0));
  std::cout << "node placement at link cost 2.0:\n";
  for (NodeId v : g.operation_ids()) {
    std::cout << "  " << g.node(v).name << " @ " << dist.site_of(v) << '\n';
  }
  std::cout << "\nreading: with free links the designs agree; as shipping "
               "gets expensive, the aware design stores results near "
               "their consumers, cutting the distributed total.\n";
  return 0;
}

// ---- Measured mode (Ext-N) -----------------------------------------------

/// Order-sensitive FNV-1a fingerprint of a table's rows — the bit-identity
/// witness across shard counts.
std::uint64_t fnv_text(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fingerprint(std::uint64_t h, const Table& t) {
  for (const Tuple& row : t.rows()) {
    for (const Value& v : row) h = fnv_text(h, v.to_string());
    h = fnv_text(h, "|");
  }
  return h;
}

struct ShardRun {
  std::size_t shards = 0;
  double point_secs = 0;
  double analytic_secs = 0;
  double refresh_secs = 0;
  double total_secs = 0;
  double ops = 0;
  double throughput = 0;  // ops/sec over the whole serving+refresh mix
  std::uint64_t result_hash = 0;
  double exchange_blocks = 0;
};

int run_measured(bool smoke) {
  StarSchemaOptions schema;
  schema.dimensions = 3;
  schema.fact_rows = smoke ? 60'000 : 2'000'000;
  schema.dimension_rows = smoke ? 500 : 5'000;
  const Database db = populate_star_database(schema, 2026);
  const Catalog catalog = catalog_from_database(db, 10.0);

  // A small warehouse design so refresh maintains real views: one global
  // rollup (partial -> final aggregation) and one partitioned selection
  // view (per-bucket incremental apply).
  WarehouseDesigner designer(catalog);
  designer.add_query(
      "Rollup", 5.0,
      "SELECT Dim0.category, SUM(Fact.measure), COUNT(*) FROM Fact, Dim0 "
      "WHERE Fact.d0 = Dim0.id GROUP BY Dim0.category");
  designer.add_query("Hot", 20.0,
                     "SELECT Fact.d0, Fact.measure FROM Fact "
                     "WHERE Fact.measure > 900");
  const DesignResult design = designer.design();

  // Pre-generate the update stream once on a scratch copy: every shard
  // configuration replays the identical batches in order.
  const int kBatches = 3;
  std::vector<DeltaSet> batches;
  {
    Database scratch = db;
    Rng rng(404);
    for (int k = 0; k < kBatches; ++k) {
      DeltaSet d;
      apply_update_batch(scratch, "Fact", UpdateStreamOptions{}, rng, &d);
      batches.push_back(std::move(d));
    }
  }

  // Serving mix: point lookups on the partition key (routed to the owning
  // shard) dominate, with a few analytic rollups.
  const int kPoints = smoke ? 24 : 192;
  const int kAnalytic = 2;
  std::vector<PlanPtr> points;
  for (int i = 0; i < kPoints; ++i) {
    const auto key = static_cast<std::int64_t>(
        (static_cast<std::size_t>(i) * 7919) % schema.dimension_rows);
    points.push_back(make_select(make_scan(catalog, "Fact"),
                                 eq(col("Fact.d0"), lit_i64(key))));
  }
  const PlanPtr analytic = make_aggregate(
      make_join(make_scan(catalog, "Fact"), make_scan(catalog, "Dim0"),
                eq(col("Fact.d0"), col("Dim0.id"))),
      {"Dim0.category"},
      {AggSpec{AggFn::kSum, "Fact.measure", ""}, AggSpec{AggFn::kCount, "", ""}});

  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto secs = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };

  std::cout << "Ext-N — measured sharded serving ("
            << format_blocks(static_cast<double>(schema.fact_rows))
            << " fact rows" << (smoke ? ", smoke" : "") << ")\n\n";

  std::vector<ShardRun> runs;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedDatabase sdb = shard_database(db, shards, {{"Fact", "d0"}});
    designer.deploy(design, sdb);  // setup, untimed
    const ShardedExecutor exec(sdb);

    ShardRun run;
    run.shards = shards;
    std::uint64_t h = 1469598103934665603ULL;

    // Serving round 1: point lookups + analytic rollups.
    auto t0 = now();
    for (const PlanPtr& p : points) h = fingerprint(h, exec.run(p));
    auto t1 = now();
    for (int i = 0; i < kAnalytic; ++i) h = fingerprint(h, exec.run(analytic));
    auto t2 = now();
    run.point_secs += secs(t0, t1);
    run.analytic_secs += secs(t1, t2);

    // Refresh: route the base deltas to their owning buckets, then
    // incrementally maintain the deployed views.
    auto t3 = now();
    for (const DeltaSet& batch : batches) {
      sdb.apply_base_deltas(batch);
      designer.refresh(design, sdb, batch, RefreshMode::kIncremental);
    }
    auto t4 = now();
    run.refresh_secs = secs(t3, t4);

    // Serving round 2, post-refresh: maintenance must not degrade routing.
    auto t5 = now();
    for (const PlanPtr& p : points) h = fingerprint(h, exec.run(p));
    auto t6 = now();
    run.point_secs += secs(t5, t6);

    // Fingerprint the maintained view state too — refresh correctness is
    // part of the determinism contract.
    {
      const MvppGraph& g = design.graph();
      for (NodeId v : design.selection.materialized) {
        const std::string& vname = g.node(v).name;
        h = fingerprint(h, sdb.is_partitioned(vname)
                               ? sdb.gathered(vname)
                               : Table(sdb.coordinator().table(vname)));
      }
    }

    run.total_secs = run.point_secs + run.analytic_secs + run.refresh_secs;
    run.ops = static_cast<double>(2 * kPoints + kAnalytic + kBatches);
    run.throughput = run.ops / run.total_secs;
    run.result_hash = h;
    run.exchange_blocks = sdb.exchange_log().total_blocks();
    runs.push_back(run);
  }

  TextTable table({"shards", "point qps", "analytic s", "refresh s",
                   "ops/s", "vs 1 shard", "identical"},
                  {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight});
  bool identical = true;
  for (const ShardRun& r : runs) {
    const bool same = r.result_hash == runs.front().result_hash;
    identical = identical && same;
    table.add_row(
        {std::to_string(r.shards),
         format_fixed(2.0 * kPoints / r.point_secs, 1),
         format_fixed(r.analytic_secs, 3), format_fixed(r.refresh_secs, 3),
         format_fixed(r.throughput, 1),
         format_fixed(r.throughput / runs.front().throughput, 2) + "x",
         same ? "yes" : "NO"});
  }
  std::cout << table.render() << '\n';

  const ShardRun* four = nullptr;
  for (const ShardRun& r : runs) {
    if (r.shards == 4) four = &r;
  }
  const double speedup4 = four->throughput / runs.front().throughput;
  const double kTarget = 2.5;
  const bool speedup_ok = smoke || speedup4 >= kTarget;
  std::cout << "4-shard query+refresh throughput: "
            << format_fixed(speedup4, 2) << "x the 1-shard baseline (target "
            << format_fixed(kTarget, 1) << "x"
            << (smoke ? ", not gated in smoke mode" : "") << ") "
            << (speedup_ok ? "ok" : "MISSED") << '\n'
            << "bit-identical across configurations: "
            << (identical ? "yes" : "NO") << '\n';

  Json report = Json::object();
  report.set("bench", Json::string("distributed_measured"));
  report.set("smoke", Json::boolean(smoke));
  report.set("hardware_threads",
             Json::number(static_cast<std::size_t>(
                 std::thread::hardware_concurrency())));
  Json workload = Json::object();
  workload.set("fact_rows", Json::number(schema.fact_rows));
  workload.set("dimension_rows", Json::number(schema.dimension_rows));
  workload.set("dimensions", Json::number(schema.dimensions));
  workload.set("point_queries_per_round", Json::number(kPoints));
  workload.set("analytic_queries", Json::number(kAnalytic));
  workload.set("refresh_batches", Json::number(kBatches));
  report.set("workload", std::move(workload));
  Json shard_json = Json::array();
  for (const ShardRun& r : runs) {
    Json j = Json::object();
    j.set("shards", Json::number(r.shards));
    j.set("point_secs", Json::number(r.point_secs));
    j.set("analytic_secs", Json::number(r.analytic_secs));
    j.set("refresh_secs", Json::number(r.refresh_secs));
    j.set("total_secs", Json::number(r.total_secs));
    j.set("ops_per_sec", Json::number(r.throughput));
    j.set("speedup_vs_1_shard",
          Json::number(r.throughput / runs.front().throughput));
    j.set("exchange_blocks", Json::number(r.exchange_blocks));
    j.set("result_hash", Json::string(std::to_string(r.result_hash)));
    shard_json.push_back(std::move(j));
  }
  report.set("shard_runs", std::move(shard_json));
  report.set("speedup_4_shards", Json::number(speedup4));
  report.set("speedup_target", Json::number(kTarget));
  report.set("speedup_ok", Json::boolean(speedup_ok));
  report.set("bit_identical", Json::boolean(identical));

  std::ofstream out("BENCH_distributed.json");
  out << report.dump(2) << '\n';
  std::cout << "wrote BENCH_distributed.json\n";
  return (identical && speedup_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool measured = false, smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--measured") measured = true;
    if (arg == "--smoke") measured = smoke = true;
  }
  return measured ? run_measured(smoke) : run_modeled();
}
