// Ext-F: distributed warehouse — communication-aware vs site-oblivious
// view design (the paper's Section 4.1 note on incorporating transfer
// costs).
//
// Topology: the member databases are split across two operational sites;
// all warehouse queries are issued at a third analysis site. As the
// per-block link cost grows, the communication-aware design diverges from
// the oblivious one — it materializes (ships once per update, reads
// locally) what the oblivious design would re-ship on every query.
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/distributed/distributed_evaluator.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

namespace {

SiteTopology make_topology(double link_cost) {
  SiteTopology topo({"analysis", "sales", "manufacturing"}, link_cost);
  topo.place_relation("Order", "sales");
  topo.place_relation("Customer", "sales");
  topo.place_relation("Product", "manufacturing");
  topo.place_relation("Division", "manufacturing");
  topo.place_relation("Part", "manufacturing");
  for (const char* q : {"Q1", "Q2", "Q3", "Q4"}) {
    topo.place_query(q, "analysis");
  }
  return topo;
}

}  // namespace

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const MvppGraph g = build_figure3_mvpp(model);

  std::cout << "Ext-F — distributed design: base relations at two sites, "
               "queries issued at a third\n\n";

  TextTable table({"link cost/blk", "oblivious set", "oblivious dist. total",
                   "aware set", "aware dist. total", "saving"},
                  {Align::kRight, Align::kLeft, Align::kRight, Align::kLeft,
                   Align::kRight, Align::kRight});

  const MvppEvaluator oblivious_eval(g);
  const MaterializedSet oblivious = exhaustive_optimal(oblivious_eval).materialized;

  for (double link : {0.0, 1.0, 10.0, 100.0, 500.0, 2000.0}) {
    const DistributedMvppEvaluator dist(g, make_topology(link));
    const MaterializedSet aware = exhaustive_optimal(dist).materialized;
    const double oblivious_cost = dist.total_cost(oblivious);
    const double aware_cost = dist.total_cost(aware);
    table.add_row({format_fixed(link, 1), to_string(g, oblivious),
                   format_blocks(oblivious_cost), to_string(g, aware),
                   format_blocks(aware_cost),
                   format_fixed(100.0 * (1.0 - aware_cost /
                                                  std::max(oblivious_cost, 1e-9)),
                                1) + "%"});
  }
  std::cout << table.render() << '\n';

  // Show where things run / live for one interesting link cost.
  const DistributedMvppEvaluator dist(g, make_topology(2.0));
  std::cout << "node placement at link cost 2.0:\n";
  for (NodeId v : g.operation_ids()) {
    std::cout << "  " << g.node(v).name << " @ " << dist.site_of(v) << '\n';
  }
  std::cout << "\nreading: with free links the designs agree; as shipping "
               "gets expensive, the aware design stores results near "
               "their consumers, cutting the distributed total.\n";
  return 0;
}
