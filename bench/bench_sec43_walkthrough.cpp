// Reproduces the Section 4.3 walkthrough of the Figure 9 selection
// algorithm on the Figure 3 MVPP.
//
// Paper trace:
//   LV = <tmp4, result4, tmp7, tmp2, result1, tmp1>   (positive weights)
//   tmp4:    Cs = (5 + 0.8) x 12.03m - 12.03m = 57.744m > 0 -> materialize
//   result4: Cs = 5 x (12.043m - Ca(tmp4)) - 12.043m < 0  -> reject,
//            tmp7 pruned (same branch)
//   tmp2:    Cs = 363.075k > 0 -> materialize
//   result1: Cs < 0 -> reject
//   tmp1:    parent tmp2 already materialized -> ignored
//   M = {tmp2, tmp4}
#include <iostream>

#include "src/common/units.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel cost_model(catalog, paper_cost_config());
  const MvppGraph graph = build_figure3_mvpp(cost_model);
  const MvppEvaluator eval(graph);

  std::cout << "Section 4.3 — Figure 9 heuristic walkthrough\n\n";
  std::cout << "node weights w(v) (paper keeps only positive ones):\n";
  for (NodeId v : graph.operation_ids()) {
    const MvppNode& n = graph.node(v);
    std::cout << "  " << n.name << ": w = " << format_blocks(eval.weight(v))
              << "  (Ca = " << format_blocks(n.full_cost) << ")\n";
  }
  std::cout << '\n';

  const SelectionResult sel = yang_heuristic(eval);
  for (const std::string& line : sel.trace) std::cout << line << '\n';
  std::cout << "\nresult: M = " << to_string(graph, sel.materialized)
            << "   (paper: {tmp2, tmp4})\n";
  std::cout << "total cost: " << format_blocks(sel.costs.total())
            << " (query " << format_blocks(sel.costs.query_processing)
            << " + maintenance " << format_blocks(sel.costs.maintenance)
            << ")\n\n";

  std::cout << "cross-checks against other algorithms on the same MVPP:\n";
  for (const SelectionResult& r :
       {greedy_incremental(eval), exhaustive_optimal(eval),
        simulated_annealing(eval),
        yang_heuristic(eval, {.reuse_aware_maintenance_gain = true})}) {
    std::cout << "  " << r.algorithm
              << (r.algorithm == "yang-heuristic" ? " (reuse-aware gain)" : "")
              << ": " << to_string(graph, r.materialized) << " total "
              << format_blocks(r.costs.total()) << '\n';
  }
  return 0;
}
