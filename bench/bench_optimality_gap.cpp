// Ext-B: heuristic quality vs the exhaustive optimum on random workloads.
//
// For star and chain workloads of growing size, runs the Figure 9
// heuristic, the exact-gain greedy and simulated annealing against the
// 2^n optimum (while n stays tractable) and reports the average/worst
// cost ratio and wall times. The expected shape: all heuristics stay
// within a few percent of optimal on these workloads while the exhaustive
// search blows up exponentially.
#include <chrono>
#include <cmath>
#include <iostream>

#include "src/common/assert.hpp"

#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/mvpp/builder.hpp"
#include "src/workload/generator.hpp"

using namespace mvd;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct GapRow {
  std::size_t candidates = 0;
  double yang_ratio = 1, yang_reuse_ratio = 1, greedy_ratio = 1, sa_ratio = 1;
  double yang_ms = 0, greedy_ms = 0, sa_ms = 0, opt_ms = 0, bnb_ms = 0;
};

GapRow measure(const MvppGraph& graph) {
  const MvppEvaluator eval(graph);
  GapRow row;
  row.candidates = graph.operation_ids().size();

  auto timed = [&](auto&& fn, double& ms) {
    const auto start = std::chrono::steady_clock::now();
    SelectionResult r = fn();
    ms = ms_since(start);
    return r.costs.total();
  };
  const double yang =
      timed([&] { return yang_heuristic(eval); }, row.yang_ms);
  double unused_ms = 0;
  const double yang_reuse = timed(
      [&] {
        return yang_heuristic(eval, {.reuse_aware_maintenance_gain = true});
      },
      unused_ms);
  const double greedy =
      timed([&] { return greedy_incremental(eval); }, row.greedy_ms);
  const double sa = timed(
      [&] {
        AnnealingOptions o;
        o.iterations = 4000;
        return simulated_annealing(eval, o);
      },
      row.sa_ms);
  const double optimal =
      timed([&] { return exhaustive_optimal(eval, 22); }, row.opt_ms);
  const double bnb =
      timed([&] { return branch_and_bound_optimal(eval, 22); }, row.bnb_ms);
  MVD_ASSERT_MSG(std::abs(bnb - optimal) < 1e-6,
                 "branch and bound disagrees with brute force");
  row.yang_ratio = yang / optimal;
  row.yang_reuse_ratio = yang_reuse / optimal;
  row.greedy_ratio = greedy / optimal;
  row.sa_ratio = sa / optimal;
  return row;
}

}  // namespace

int main() {
  std::cout << "Ext-B — selection quality vs the exhaustive optimum\n"
            << "(cost ratio = algorithm / optimal; 1.000 is optimal)\n\n";

  TextTable table({"workload", "cands", "yang", "yang*", "greedy", "anneal",
                   "yang ms", "greedy ms", "anneal ms", "exhaustive ms",
                   "b&b ms"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight});

  for (std::size_t queries : {3u, 4u, 5u, 6u}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      StarSchemaOptions schema;
      schema.dimensions = 4;
      const Catalog catalog = make_star_catalog(schema);
      StarQueryOptions qopts;
      qopts.count = queries;
      qopts.seed = seed;
      const auto workload = generate_star_queries(catalog, schema, qopts);
      const CostModel model(catalog, {});
      const Optimizer optimizer(model);
      const MvppBuilder builder(optimizer);
      const MvppBuildResult built =
          builder.build(workload, builder.initial_order(workload));
      if (built.graph.operation_ids().size() > 20) continue;
      const GapRow row = measure(built.graph);
      table.add_row({str_cat("star q=", queries, " s=", seed),
                     std::to_string(row.candidates),
                     format_fixed(row.yang_ratio, 3),
                     format_fixed(row.yang_reuse_ratio, 3),
                     format_fixed(row.greedy_ratio, 3),
                     format_fixed(row.sa_ratio, 3),
                     format_fixed(row.yang_ms, 1),
                     format_fixed(row.greedy_ms, 1),
                     format_fixed(row.sa_ms, 1),
                     format_fixed(row.opt_ms, 1),
                     format_fixed(row.bnb_ms, 1)});
    }
  }

  for (std::size_t queries : {4u, 6u}) {
    for (std::uint64_t seed : {5u, 6u}) {
      ChainSchemaOptions schema;
      schema.length = 6;
      const Catalog catalog = make_chain_catalog(schema);
      ChainQueryOptions qopts;
      qopts.count = queries;
      qopts.seed = seed;
      const auto workload = generate_chain_queries(catalog, schema, qopts);
      const CostModel model(catalog, {});
      const Optimizer optimizer(model);
      const MvppBuilder builder(optimizer);
      const MvppBuildResult built =
          builder.build(workload, builder.initial_order(workload));
      if (built.graph.operation_ids().size() > 20) continue;
      const GapRow row = measure(built.graph);
      table.add_row({str_cat("chain q=", queries, " s=", seed),
                     std::to_string(row.candidates),
                     format_fixed(row.yang_ratio, 3),
                     format_fixed(row.yang_reuse_ratio, 3),
                     format_fixed(row.greedy_ratio, 3),
                     format_fixed(row.sa_ratio, 3),
                     format_fixed(row.yang_ms, 1),
                     format_fixed(row.greedy_ms, 1),
                     format_fixed(row.sa_ms, 1),
                     format_fixed(row.opt_ms, 1),
                     format_fixed(row.bnb_ms, 1)});
    }
  }

  std::cout << table.render() << '\n';
  std::cout << "reading: ratios of 1.000 mean the heuristic hit the "
               "optimum; yang* (reuse-aware Cs maintenance) closes most "
               "of the paper heuristic's gap; the exhaustive column grows "
               "exponentially with the candidate count while the "
               "heuristics stay flat.\n";
  return 0;
}
