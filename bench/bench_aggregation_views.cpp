// Ext-G: aggregate views — the paper's first "future work" item,
// implemented. A summary-table workload (GROUP BY city over the
// Order |x| Customer join, plus the original Q4) shows (a) the aggregate
// node sharing the join with the SPJ query inside one MVPP, (b) the
// selection algorithms weighing a tiny-but-hot summary table against its
// maintenance, and (c) the executed speedup of answering from the stored
// summary, verified for correctness against from-scratch evaluation.
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/exec/executor.hpp"
#include "src/mvpp/builder.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/sql/parser.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);

  std::vector<QuerySpec> queries;
  queries.push_back(parse_and_bind(
      catalog, "sales_by_city", 20.0,
      "SELECT city, SUM(quantity) AS total, COUNT(*) AS orders "
      "FROM Order, Customer WHERE Order.Cid = Customer.Cid GROUP BY city"));
  queries.push_back(parse_and_bind(
      catalog, "avg_quantity", 3.0,
      "SELECT Customer.city, AVG(quantity) AS avg_qty "
      "FROM Order, Customer WHERE Order.Cid = Customer.Cid "
      "GROUP BY Customer.city"));
  queries.push_back(parse_and_bind(
      catalog, "bulk_buyers", 5.0,
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid"));

  std::cout << "Ext-G — aggregate views in the MVPP\n\nworkload:\n";
  for (const QuerySpec& q : queries) std::cout << "  " << q.to_string() << '\n';

  const MvppBuildResult built =
      builder.build(queries, builder.initial_order(queries));
  const MvppGraph& g = built.graph;
  std::cout << '\n' << g.to_text() << '\n';

  // The Order |x| Customer join is shared by all three queries.
  for (const MvppNode& n : g.nodes()) {
    if (n.kind == MvppNodeKind::kJoin) {
      std::cout << n.name << " (the shared join) serves "
                << g.queries_using(n.id).size() << " queries\n";
    }
  }

  const MvppEvaluator eval(g);
  TextTable t({"strategy", "views", "query", "maintenance", "total"},
              {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight,
               Align::kRight});
  for (const SelectionResult& r :
       {select_nothing(eval), select_all_query_results(eval),
        yang_heuristic(eval), exhaustive_optimal(eval)}) {
    t.add_row({r.algorithm, to_string(g, r.materialized),
               format_blocks(r.costs.query_processing),
               format_blocks(r.costs.maintenance),
               format_blocks(r.costs.total())});
  }
  std::cout << '\n' << t.render() << '\n';

  // Executed: answer the summary from the stored aggregate view.
  Database db = populate_paper_database(0.1, 77);
  const SelectionResult chosen = exhaustive_optimal(eval);
  for (NodeId v : chosen.materialized) {
    MaterializedSet deps = chosen.materialized;
    deps.erase(v);
    const Executor e(db);
    db.put_table(g.node(v).name, e.run(refresh_plan(g, v, deps)));
  }
  const Executor e(db);
  std::cout << "executed (10% scale data):\n";
  for (NodeId q : g.query_ids()) {
    ExecStats views, scratch;
    const Table a = e.run(answer_plan(g, q, chosen.materialized), &views);
    const Table b = e.run(answer_plan(g, q, {}), &scratch);
    std::cout << "  " << g.node(q).name << ": "
              << format_blocks(views.blocks_read) << " blocks from views vs "
              << format_blocks(scratch.blocks_read) << " from scratch, "
              << a.row_count() << " rows ("
              << (same_bag(a, b) ? "match" : "MISMATCH") << ")\n";
  }
  return 0;
}
