// Reproduces Figure 3: the MVPP for the four example queries, with the
// query frequencies on the roots and the accumulated block-access cost
// Ca(v) labeled on every operation node.
//
// The paper labels (garbled in places and internally inconsistent — see
// EXPERIMENTS.md): tmp1 = 0.25k, tmp2 = 35.25k, tmp3 = 50.06m,
// tmp4 ≈ 12.03m, Q1 total = 35.37k, Q2 = 50.082m, Q3 = 12.595m,
// Q4 = 12.044m. Our model re-derives every label under one consistent
// accounting; tmp1/tmp2/tmp4 land on the paper's values, the nodes the
// paper costed with unreduced inputs (tmp3, and Q3's chain) come out
// smaller.
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/mvpp/evaluation.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel cost_model(catalog, paper_cost_config());
  const MvppGraph graph = build_figure3_mvpp(cost_model);

  std::cout << "Figure 3 — MVPP for the example (fq on roots, Ca per node)\n\n"
            << graph.to_text() << '\n';

  TextTable table({"node", "operation", "rows", "blocks", "Ca (ours)",
                   "Ca (paper)"},
                  {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});
  const std::vector<std::pair<std::string, std::string>> paper = {
      {"tmp1", "0.25k"},  {"tmp2", "35.25k"}, {"tmp3", "50.06m"},
      {"tmp4", "12.03m"}, {"tmp5", "12.035m"}, {"tmp6", "~12.59m"},
      {"tmp7", "12.582m"}, {"result1", "35.35k"}, {"result2", "50.08m"},
      {"result3", "12.594m"}, {"result4", "12.043m"}};
  for (const auto& [name, paper_value] : paper) {
    const MvppNode& n = graph.node(graph.find_by_name(name));
    table.add_row({name, n.label().substr(name.size() + 2),
                   format_blocks(n.rows), format_blocks(n.blocks),
                   format_blocks(n.full_cost), paper_value});
  }
  std::cout << table.render() << '\n';

  const MvppEvaluator eval(graph);
  std::cout << "per-query from-scratch costs fq x Ca (paper: 10x35.37k, "
               "0.5x50.082m, 0.8x12.595m, 5x12.044m):\n";
  for (NodeId q : graph.query_ids()) {
    const MvppNode& n = graph.node(q);
    std::cout << "  " << n.name << ": " << format_fixed(n.frequency, 1)
              << " x " << format_blocks(eval.answer_cost(q, {})) << " = "
              << format_blocks(n.frequency * eval.answer_cost(q, {})) << '\n';
  }

  std::cout << "\nGraphviz rendering (pipe to dot -Tsvg):\n"
            << graph.to_dot();
  return 0;
}
