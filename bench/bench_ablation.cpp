// Ext-C: ablations of the design choices DESIGN.md calls out.
//
//  1. Maintenance semantics: frontier reuse on/off, batch vs per-update —
//     how each changes Table 2's totals and the heuristic's choice.
//  2. Figure 9 options: branch pruning on/off (search work vs outcome),
//     paper-literal vs reuse-aware Cs maintenance term.
//  3. Recompute vs incremental (delta) maintenance across update
//     fractions — the extension the paper leaves as future work.
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/maintenance/incremental.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const MvppGraph g = build_figure3_mvpp(model);

  std::cout << "Ext-C ablations on the Figure 3 MVPP\n\n";

  {
    std::cout << "1. maintenance policy (evaluating M = {tmp2, tmp4} and "
                 "the heuristic under each):\n";
    TextTable t({"policy", "maint({tmp2,tmp4})", "heuristic set",
                 "heuristic total"},
                {Align::kLeft, Align::kRight, Align::kLeft, Align::kRight});
    const MaterializedSet best{g.find_by_name("tmp2"), g.find_by_name("tmp4")};
    struct Case {
      const char* label;
      MaintenancePolicy policy;
    } cases[] = {
        {"batch + reuse (default)",
         {MaintenancePolicy::Mode::kBatchRecompute, true}},
        {"batch, no reuse",
         {MaintenancePolicy::Mode::kBatchRecompute, false}},
        {"per-update + reuse", {MaintenancePolicy::Mode::kPerUpdate, true}},
        {"per-update, no reuse (paper formula)",
         {MaintenancePolicy::Mode::kPerUpdate, false}},
    };
    for (const Case& c : cases) {
      const MvppEvaluator eval(g, c.policy);
      const SelectionResult sel = yang_heuristic(eval);
      t.add_row({c.label, format_blocks(eval.total_maintenance_cost(best)),
                 to_string(g, sel.materialized),
                 format_blocks(sel.costs.total())});
    }
    std::cout << t.render() << '\n';
  }

  {
    std::cout << "2. Figure 9 options:\n";
    TextTable t({"options", "selected", "total", "Cs evals"},
                {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight});
    const MvppEvaluator eval(g);
    struct Case {
      const char* label;
      YangOptions options;
    } cases[] = {
        {"paper defaults", {}},
        {"no branch pruning", {.branch_pruning = false}},
        {"no parent-skip", {.skip_when_parents_materialized = false}},
        {"no final cleanup", {.final_cleanup = false}},
        {"reuse-aware Cs", {.reuse_aware_maintenance_gain = true}},
    };
    for (const Case& c : cases) {
      const SelectionResult sel = yang_heuristic(eval, c.options);
      std::size_t evals = 0;
      for (const std::string& line : sel.trace) {
        if (line.find(": Cs=") != std::string::npos) ++evals;
      }
      t.add_row({c.label, to_string(g, sel.materialized),
                 format_blocks(sel.costs.total()), std::to_string(evals)});
    }
    std::cout << t.render() << '\n';
  }

  {
    std::cout << "3. recompute vs incremental maintenance of the chosen "
                 "views {tmp2, tmp4}:\n";
    TextTable t({"update fraction", "recompute", "incremental", "ratio"},
                {Align::kRight, Align::kRight, Align::kRight, Align::kRight});
    const MvppEvaluator eval(g);
    const MaterializedSet best{g.find_by_name("tmp2"), g.find_by_name("tmp4")};
    const double recompute = eval.total_maintenance_cost(best);
    for (double fraction : {0.001, 0.01, 0.05, 0.2, 0.5, 1.0}) {
      const double inc =
          total_incremental_maintenance(g, best, {fraction});
      t.add_row({format_fixed(fraction, 3), format_blocks(recompute),
                 format_blocks(inc), format_fixed(inc / recompute, 3)});
    }
    std::cout << t.render() << '\n';
    std::cout << "reading: below ~5% churn, delta maintenance beats the "
                 "paper's recompute discipline by an order of magnitude; "
                 "the advantage disappears as churn approaches 100%.\n\n";
  }

  {
    std::cout << "4. index-aware access to stored views (the paper's §3.2 "
                 "claim that materialized results can be indexed):\n";
    TextTable t({"evaluation", "heuristic set", "query", "maintenance",
                 "total"},
                {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight,
                 Align::kRight});
    for (const bool indexed : {false, true}) {
      const MvppEvaluator eval(g, {}, IndexPolicy{indexed, 1.2});
      const SelectionResult sel = yang_heuristic(eval);
      t.add_row({indexed ? "indexed stored views" : "plain scans",
                 to_string(g, sel.materialized),
                 format_blocks(sel.costs.query_processing),
                 format_blocks(sel.costs.maintenance),
                 format_blocks(sel.costs.total())});
    }
    std::cout << t.render() << '\n';
    std::cout << "reading: indexes on stored views cut the costs of the "
                 "operators reading them (selections fetch matching "
                 "blocks; joins probe instead of scanning), reinforcing "
                 "the gain from materialization.\n";
  }
  return 0;
}
