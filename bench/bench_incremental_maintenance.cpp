// Ext-J: incremental vs recompute view maintenance, executed.
//
// Deploys a star-schema warehouse, then sweeps the update fraction of
// the fact table from 0.1% to 50%. At each point one captured update
// batch is refreshed twice from the identical starting state — once
// through the incremental delta driver, once by recomputing every
// refresh plan — measuring wall time and the engines' block accounting
// for both, checking the two warehouses stay bag-identical, and
// reporting the crossover fraction where recomputation catches up.
// Everything is written to BENCH_maintenance.json.
//
// `--smoke` shrinks the dataset and repetitions for CI.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/maintenance/refresh.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/generator.hpp"

using namespace mvd;

namespace {

struct Timed {
  double secs = 0;
  double blocks = 0;
  RefreshReport report;
};

template <typename F>
Timed best_run(int reps, F&& refresh_once) {
  Timed best;
  best.secs = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timed t = refresh_once();
    if (t.secs < best.secs) best = std::move(t);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const int reps = smoke ? 2 : 3;

  StarSchemaOptions schema;
  schema.dimensions = 3;
  schema.fact_rows = smoke ? 20'000 : 200'000;
  schema.dimension_rows = smoke ? 500 : 2'000;
  schema.categories = 12;
  Database db = populate_star_database(schema, 2026);
  const Catalog catalog = catalog_from_database(db, schema.blocking_factor);

  StarQueryOptions qopts;
  qopts.count = 6;
  qopts.max_dimensions = 2;
  qopts.aggregation_probability = 0.5;
  qopts.seed = 7;
  WarehouseDesigner designer(catalog);
  for (QuerySpec& q : generate_star_queries(catalog, schema, qopts)) {
    designer.add_query(std::move(q));
  }
  DesignResult design = designer.design();
  const MvppGraph& g = design.graph();
  MaterializedSet& m = design.selection.materialized;
  for (NodeId q : g.query_ids()) m.insert(g.node(q).children[0]);
  designer.deploy(design, db);
  const Database baseline = db;  // deployed, pre-update

  std::cout << "Ext-J — incremental vs recompute maintenance ("
            << schema.fact_rows << " fact rows, " << m.size() << " views"
            << (smoke ? ", smoke" : "") << ")\n\n";

  Json report = Json::object();
  report.set("bench", Json::string("incremental_maintenance"));
  report.set("smoke", Json::boolean(smoke));
  Json workload = Json::object();
  workload.set("fact_rows", Json::number(schema.fact_rows));
  workload.set("dimension_rows", Json::number(schema.dimension_rows));
  workload.set("dimensions", Json::number(schema.dimensions));
  workload.set("views", Json::number(m.size()));
  report.set("workload", workload);

  const std::vector<double> fractions = {0.001, 0.005, 0.01, 0.05, 0.1, 0.5};
  TextTable table({"update fraction", "incremental", "recompute", "speedup",
                   "inc blocks", "rec blocks"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});
  Json sweep = Json::array();
  bool all_agree = true;
  double crossover = -1;  // first swept fraction where incremental loses

  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double fraction = fractions[i];
    // One captured batch against the fact table, fixed across modes and
    // repetitions so every refresh does identical logical work.
    UpdateStreamOptions opts;
    opts.modify_fraction = fraction / 2;
    opts.insert_fraction = fraction / 4;
    opts.delete_fraction = fraction / 4;
    Database updated = baseline;
    DeltaSet batch;
    Rng rng(90 + static_cast<std::uint64_t>(i));
    apply_update_batch(updated, "Fact", opts, rng, &batch);

    // Starting state for a refresh: post-update bases, pre-update views.
    const Timed inc = best_run(reps, [&] {
      Database run_db = updated;
      Timed t;
      ExecStats stats;
      const auto t0 = std::chrono::steady_clock::now();
      t.report = incremental_refresh(g, m, run_db, batch, &stats,
                                     ExecMode::kRow, 1);
      t.secs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
      t.blocks = stats.blocks_read;
      return t;
    });
    const Timed rec = best_run(reps, [&] {
      Database run_db = updated;
      Timed t;
      ExecStats stats;
      const auto t0 = std::chrono::steady_clock::now();
      t.report = designer.refresh(design, run_db, batch,
                                  RefreshMode::kRecompute, &stats);
      t.secs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
      t.blocks = stats.blocks_read;
      return t;
    });

    // Consistency: both disciplines must land on the same stored views.
    Database inc_db = updated;
    incremental_refresh(g, m, inc_db, batch);
    Database rec_db = updated;
    designer.refresh(design, rec_db, batch, RefreshMode::kRecompute);
    bool agree = true;
    for (NodeId v : m) {
      const std::string& name = g.node(v).name;
      agree = agree && same_bag(inc_db.table(name), rec_db.table(name));
    }
    all_agree = all_agree && agree;

    const double speedup = rec.secs / inc.secs;
    if (crossover < 0 && speedup < 1) crossover = fraction;
    Json j = Json::object();
    j.set("update_fraction", Json::number(fraction));
    j.set("delta_rows", Json::number(batch.at("Fact").row_count()));
    j.set("incremental_secs", Json::number(inc.secs));
    j.set("recompute_secs", Json::number(rec.secs));
    j.set("speedup", Json::number(speedup));
    j.set("incremental_blocks", Json::number(inc.blocks));
    j.set("recompute_blocks", Json::number(rec.blocks));
    j.set("block_ratio", Json::number(rec.blocks / inc.blocks));
    j.set("group_applied", Json::number(
        inc.report.count(RefreshPath::kGroupApplied)));
    j.set("applied", Json::number(inc.report.count(RefreshPath::kApplied)));
    j.set("recompute_fallbacks", Json::number(
        inc.report.count(RefreshPath::kRecomputed)));
    j.set("same_bag", Json::boolean(agree));
    sweep.push_back(std::move(j));
    table.add_row({format_fixed(fraction, 3),
                   format_fixed(inc.secs * 1e3, 1) + " ms",
                   format_fixed(rec.secs * 1e3, 1) + " ms",
                   format_fixed(speedup, 2) + "x",
                   format_fixed(inc.blocks, 0), format_fixed(rec.blocks, 0)});
  }
  report.set("sweep", std::move(sweep));
  report.set("all_same_bag", Json::boolean(all_agree));
  report.set("crossover_fraction",
             crossover < 0 ? Json::null() : Json::number(crossover));

  std::cout << table.render() << '\n'
            << "results agree: " << (all_agree ? "yes" : "NO") << '\n';
  if (crossover >= 0) {
    std::cout << "crossover: incremental loses from update fraction "
              << format_fixed(crossover, 3) << '\n';
  } else {
    std::cout << "crossover: none within the swept range\n";
  }

  std::ofstream out("BENCH_maintenance.json");
  out << report.dump(2) << '\n';
  std::cout << "wrote BENCH_maintenance.json\n";
  return all_agree ? 0 : 1;
}
