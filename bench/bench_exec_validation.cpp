// Ext-D: cost-model validation against actual execution.
//
// Populates the paper's schema with real tuples (2% scale so the nested
// loops of from-scratch evaluation stay friendly), compares estimated vs
// actual cardinalities node by node on the Figure 3 MVPP, and measures
// the real block-access and wall-clock effect of deploying the chosen
// views {tmp2, tmp4}.
#include <chrono>
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/exec/executor.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const double scale = 0.1;
  Database db = populate_paper_database(scale, 2026);
  // Estimate against truthful statistics of the populated data, with the
  // paper's pinned join sizes dropped (we are validating the estimator,
  // not the paper's numbers).
  Catalog catalog = catalog_from_database(db, 10.0);
  CostModelConfig config;
  config.equality_select_half_scan = true;
  const CostModel model(catalog, config);
  const MvppGraph g = [&] {
    // The fixture binds against its own catalog names; rebuild it against
    // the truthful catalog.
    const CostModel m(catalog, config);
    return build_figure3_mvpp(m);
  }();

  std::cout << "Ext-D — estimated vs executed cardinalities ("
            << format_fixed(scale * 100, 0) << "% scale data)\n\n";

  const Executor exec(db);
  TextTable t({"node", "estimated rows", "actual rows", "q-error"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  double worst_q = 1;
  for (NodeId v : g.operation_ids()) {
    const MvppNode& n = g.node(v);
    const Table result = exec.run(refresh_plan(g, v, {}));
    const double actual = static_cast<double>(result.row_count());
    const double est = n.rows;
    const double q = std::max((est + 1) / (actual + 1), (actual + 1) / (est + 1));
    worst_q = std::max(worst_q, q);
    t.add_row({n.name, format_blocks(est), format_blocks(actual),
               format_fixed(q, 2)});
  }
  std::cout << t.render() << '\n';
  std::cout << "worst q-error: " << format_fixed(worst_q, 2)
            << " (1.00 = perfect)\n\n";

  // Deploy {tmp2, tmp4} and measure the answering work with and without.
  const MaterializedSet chosen{g.find_by_name("tmp2"), g.find_by_name("tmp4")};
  for (NodeId v : chosen) {
    MaterializedSet deps = chosen;
    deps.erase(v);
    db.put_table(g.node(v).name, exec.run(refresh_plan(g, v, deps)));
  }
  const Executor exec2(db);

  std::cout << "answering all four queries, from scratch vs from "
               "{tmp2, tmp4}:\n";
  TextTable w({"query", "blocks (scratch)", "blocks (views)", "ms (scratch)",
               "ms (views)"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight});
  for (NodeId q : g.query_ids()) {
    ExecStats scratch, views;
    auto t0 = std::chrono::steady_clock::now();
    exec2.run(answer_plan(g, q, {}), &scratch);
    auto t1 = std::chrono::steady_clock::now();
    exec2.run(answer_plan(g, q, chosen), &views);
    auto t2 = std::chrono::steady_clock::now();
    const double ms_scratch =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double ms_views =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    w.add_row({g.node(q).name, format_blocks(scratch.blocks_read),
               format_blocks(views.blocks_read), format_fixed(ms_scratch, 2),
               format_fixed(ms_views, 2)});
  }
  std::cout << w.render() << '\n';
  std::cout << "reading: queries using the stored views read fewer blocks "
               "and run faster; Q1/Q2 gains come from tmp2, Q3/Q4 from "
               "tmp4 — the executed counterpart of Table 2's query-cost "
               "column.\n";
  return 0;
}
