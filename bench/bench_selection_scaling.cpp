// Ext-I: throughput of the cost-evaluation fast path on generated
// workloads (8–22 operation nodes).
//
// For each workload the bench drives the greedy and local-search probing
// loops twice — once with the legacy std::set evaluator (copy the set,
// re-evaluate the whole workload per probe: the seed's only path) and
// once with the incremental bitset engine (cached terms, ancestor-cone
// recomputation) — and reports evaluations/sec for both, checking that
// the probed decisions land on the same materialized set. It also times
// the exhaustive 2^n search serial vs parallel and asserts the results
// are bit-identical. Everything is written to BENCH_selection.json in
// the current directory.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#include "src/common/assert.hpp"
#include "src/common/json.hpp"
#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/mvpp/builder.hpp"
#include "src/mvpp/fast_eval.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/generator.hpp"

using namespace mvd;

namespace {

std::string fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

double secs_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The seed's probing mechanics: copy the std::set, toggle, price the
// whole workload from scratch.
class LegacyEngine {
 public:
  explicit LegacyEngine(const MvppEvaluator& eval) : eval_(&eval) {}

  void load(MaterializedSet m) {
    m_ = std::move(m);
    total_ = eval_->total_cost(m_);
    ++evals_;
  }
  double total() const { return total_; }
  bool contains(NodeId v) const { return m_.contains(v); }
  double probe_toggle(NodeId v) {
    MaterializedSet next = m_;
    if (!next.erase(v)) next.insert(v);
    ++evals_;
    return eval_->total_cost(next);
  }
  double probe_swap(NodeId out, NodeId in) {
    MaterializedSet next = m_;
    next.erase(out);
    next.insert(in);
    ++evals_;
    return eval_->total_cost(next);
  }
  void commit_toggle(NodeId v, double new_total) {
    if (!m_.erase(v)) m_.insert(v);
    total_ = new_total;
  }
  MaterializedSet snapshot() const { return m_; }
  std::size_t evaluations() const { return evals_; }

 private:
  const MvppEvaluator* eval_;
  MaterializedSet m_;
  double total_ = 0;
  std::size_t evals_ = 0;
};

// The PR's incremental bitset engine.
class FastEngine {
 public:
  explicit FastEngine(const MvppEvaluator& eval)
      : fast_(eval, eval.closures()) {}

  void load(MaterializedSet m) {
    fast_.load(to_fast_set(m, fast_.universe()));
  }
  double total() const { return fast_.current_total(); }
  bool contains(NodeId v) const { return fast_.current().test(v); }
  double probe_toggle(NodeId v) { return fast_.probe_toggle(v); }
  double probe_swap(NodeId out, NodeId in) {
    return fast_.probe_swap(out, in);
  }
  void commit_toggle(NodeId v, double) { fast_.commit_toggle(v); }
  MaterializedSet snapshot() const {
    return to_materialized_set(fast_.current());
  }
  std::size_t evaluations() const { return fast_.evaluations(); }

 private:
  FastMvppEvaluator fast_;
};

// Exact-gain greedy probing loop (mirrors greedy_incremental).
template <typename Engine>
MaterializedSet run_greedy(const MvppEvaluator& eval, Engine& engine) {
  const std::vector<NodeId> candidates = eval.graph().operation_ids();
  engine.load({});
  double current = engine.total();
  while (true) {
    std::optional<NodeId> best_v;
    double best_cost = current;
    for (NodeId v : candidates) {
      if (engine.contains(v)) continue;
      const double cost = engine.probe_toggle(v);
      if (cost < best_cost) {
        best_cost = cost;
        best_v = v;
      }
    }
    if (!best_v.has_value()) break;
    engine.commit_toggle(*best_v, best_cost);
    current = best_cost;
  }
  return engine.snapshot();
}

// Local-search probing loop (mirrors local_search: toggles + swaps).
template <typename Engine>
MaterializedSet run_local_search(const MvppEvaluator& eval, Engine& engine,
                                 const MaterializedSet& start) {
  const std::vector<NodeId> candidates = eval.graph().operation_ids();
  engine.load(start);
  double current_cost = engine.total();
  for (std::size_t round = 0; round < 1000; ++round) {
    double best_cost = current_cost;
    std::optional<NodeId> toggle_a;
    std::optional<NodeId> toggle_b;
    for (NodeId v : candidates) {
      const double cost = engine.probe_toggle(v);
      if (cost < best_cost - 1e-9) {
        best_cost = cost;
        toggle_a = v;
        toggle_b.reset();
      }
    }
    const MaterializedSet current = engine.snapshot();
    for (NodeId out : current) {
      for (NodeId in : candidates) {
        if (current.contains(in)) continue;
        const double cost = engine.probe_swap(out, in);
        if (cost < best_cost - 1e-9) {
          best_cost = cost;
          toggle_a = out;
          toggle_b = in;
        }
      }
    }
    if (!toggle_a.has_value()) break;
    engine.commit_toggle(*toggle_a, best_cost);
    if (toggle_b.has_value()) engine.commit_toggle(*toggle_b, best_cost);
    current_cost = best_cost;
  }
  return engine.snapshot();
}

struct Measured {
  double secs = 0;
  std::size_t evals = 0;
  std::size_t reps = 0;
  MaterializedSet result;
  double evals_per_sec() const { return secs > 0 ? evals / secs : 0; }
};

// Repeat `run` (engine constructed per repetition, as a search would)
// until at least `min_secs` of wall time has been spent.
template <typename Engine, typename Run>
Measured measure(const MvppEvaluator& eval, const Run& run,
                 double min_secs) {
  Measured m;
  const auto start = std::chrono::steady_clock::now();
  do {
    Engine engine(eval);
    m.result = run(engine);
    m.evals += engine.evaluations();
    ++m.reps;
    m.secs = secs_since(start);
  } while (m.secs < min_secs);
  return m;
}

struct WorkloadCase {
  std::string name;
  MvppGraph graph;
};

WorkloadCase star_case(std::size_t dimensions, std::size_t queries,
                       std::uint64_t seed) {
  StarSchemaOptions schema;
  schema.dimensions = dimensions;
  const Catalog catalog = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = queries;
  qopts.max_dimensions = std::min<std::size_t>(3, dimensions);
  qopts.seed = seed;
  const std::vector<QuerySpec> specs =
      generate_star_queries(catalog, schema, qopts);
  const CostModel model(catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  WorkloadCase w;
  w.name = "star_d" + std::to_string(dimensions) + "_q" +
           std::to_string(queries) + "_s" + std::to_string(seed);
  w.graph = builder.build(specs, builder.initial_order(specs)).graph;
  return w;
}

WorkloadCase chain_case(std::size_t length, std::size_t queries,
                        std::uint64_t seed) {
  ChainSchemaOptions schema;
  schema.length = length;
  const Catalog catalog = make_chain_catalog(schema);
  ChainQueryOptions qopts;
  qopts.count = queries;
  qopts.max_span = std::min<std::size_t>(4, length - 1);
  qopts.seed = seed;
  const std::vector<QuerySpec> specs =
      generate_chain_queries(catalog, schema, qopts);
  const CostModel model(catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  WorkloadCase w;
  w.name = "chain_l" + std::to_string(length) + "_q" +
           std::to_string(queries) + "_s" + std::to_string(seed);
  w.graph = builder.build(specs, builder.initial_order(specs)).graph;
  return w;
}

Json algo_json(const Measured& legacy, const Measured& fast) {
  Json j = Json::object();
  Json l = Json::object();
  l.set("wall_secs", Json::number(legacy.secs));
  l.set("evaluations", Json::number(legacy.evals));
  l.set("evals_per_sec", Json::number(legacy.evals_per_sec()));
  l.set("reps", Json::number(legacy.reps));
  Json f = Json::object();
  f.set("wall_secs", Json::number(fast.secs));
  f.set("evaluations", Json::number(fast.evals));
  f.set("evals_per_sec", Json::number(fast.evals_per_sec()));
  f.set("reps", Json::number(fast.reps));
  j.set("legacy", std::move(l));
  j.set("fast", std::move(f));
  j.set("speedup_evals_per_sec",
        Json::number(fast.evals_per_sec() / legacy.evals_per_sec()));
  j.set("same_result", Json::boolean(legacy.result == fast.result));
  return j;
}

}  // namespace

int main() {
  const double kMinSecs = 0.15;
  std::vector<WorkloadCase> cases;
  cases.push_back(chain_case(5, 3, 19));
  cases.push_back(star_case(2, 3, 3));
  cases.push_back(star_case(2, 4, 3));
  cases.push_back(chain_case(6, 6, 13));
  cases.push_back(star_case(3, 5, 1));
  cases.push_back(star_case(3, 8, 2));
  cases.push_back(star_case(4, 8, 5));
  cases.push_back(chain_case(8, 10, 17));

  Json report = Json::object();
  report.set("bench", Json::string("selection_scaling"));
  Json workloads = Json::array();

  TextTable table({"workload", "ops", "greedy legacy e/s", "greedy fast e/s",
                   "speedup", "local legacy e/s", "local fast e/s",
                   "speedup"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});

  std::cout << "Ext-I — cost-evaluation fast path, probing throughput\n\n";
  for (const WorkloadCase& w : cases) {
    const MvppEvaluator eval(w.graph);
    const std::size_t ops = w.graph.operation_ids().size();

    const auto greedy_run = [&](auto& engine) {
      return run_greedy(eval, engine);
    };
    const Measured greedy_legacy =
        measure<LegacyEngine>(eval, greedy_run, kMinSecs);
    const Measured greedy_fast =
        measure<FastEngine>(eval, greedy_run, kMinSecs);
    MVD_ASSERT(greedy_legacy.result == greedy_fast.result);

    const MaterializedSet start = greedy_fast.result;
    const auto local_run = [&](auto& engine) {
      return run_local_search(eval, engine, start);
    };
    const Measured local_legacy =
        measure<LegacyEngine>(eval, local_run, kMinSecs);
    const Measured local_fast = measure<FastEngine>(eval, local_run, kMinSecs);
    MVD_ASSERT(local_legacy.result == local_fast.result);

    Json entry = Json::object();
    entry.set("workload", Json::string(w.name));
    entry.set("operation_nodes", Json::number(ops));
    entry.set("graph_nodes", Json::number(w.graph.size()));
    entry.set("greedy", algo_json(greedy_legacy, greedy_fast));
    entry.set("local_search", algo_json(local_legacy, local_fast));

    // Exhaustive: serial vs parallel over the same fast engine, with a
    // bit-identical deterministic reduction.
    if (ops <= 20) {
      const auto t_serial = std::chrono::steady_clock::now();
      const SelectionResult serial = exhaustive_optimal(eval, 24, 1);
      const double serial_secs = secs_since(t_serial);
      const auto t_parallel = std::chrono::steady_clock::now();
      const SelectionResult parallel = exhaustive_optimal(eval, 24, 0);
      const double parallel_secs = secs_since(t_parallel);
      MVD_ASSERT(serial.materialized == parallel.materialized);
      MVD_ASSERT(serial.costs.total() == parallel.costs.total());
      Json ex = Json::object();
      ex.set("subsets", Json::number(std::size_t{1} << ops));
      ex.set("serial_secs", Json::number(serial_secs));
      ex.set("parallel_secs", Json::number(parallel_secs));
      ex.set("parallel_speedup", Json::number(serial_secs / parallel_secs));
      ex.set("identical_result", Json::boolean(true));
      entry.set("exhaustive", std::move(ex));
    }

    workloads.push_back(std::move(entry));
    table.add_row(
        {w.name, std::to_string(ops),
         format_blocks(greedy_legacy.evals_per_sec()),
         format_blocks(greedy_fast.evals_per_sec()),
         fmt1(greedy_fast.evals_per_sec() / greedy_legacy.evals_per_sec()) +
             "x",
         format_blocks(local_legacy.evals_per_sec()),
         format_blocks(local_fast.evals_per_sec()),
         fmt1(local_fast.evals_per_sec() / local_legacy.evals_per_sec()) +
             "x"});
  }
  report.set("workloads", std::move(workloads));

  std::cout << table.render() << '\n';

  std::ofstream out("BENCH_selection.json");
  out << report.dump(2) << '\n';
  std::cout << "wrote BENCH_selection.json\n";
  return 0;
}
