// Ext-O: mvserve throughput — transparent rewriting under concurrency.
//
// Deploys the paper warehouse with every workload query's result node
// materialized, then drives a fixed ad-hoc query mix (the four workload
// queries, residual variants answerable from their views, and uncovered
// queries that must fall back) from 1 / 4 / 16 / 64 client threads.
// Each thread count is measured twice — rewriting enabled and forced
// base-only — so the table reports the rewrite win directly. A final
// section keeps 4 readers serving while a writer loops
// update_and_refresh, measuring read throughput under snapshot churn.
//
// Gates (nonzero exit):
//   * every covered query in the mix must actually rewrite — the hit
//     rate must reach the mix's coverable fraction, which itself covers
//     the full registered paper workload;
//   * per mix entry, the rewritten answer must be bag-equal to the
//     base-table answer;
//   * the workload observatory's serve-path overhead — its per-serve
//     record() cost measured over a tight loop, bounded against the
//     measured mean serve time — must stay under 1% (wall-clock on/off
//     serve loops are reported alongside as context).
//
// Everything is written to BENCH_serve.json. `--smoke` shrinks the data
// and per-thread query counts for CI.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.hpp"
#include "src/common/random.hpp"
#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/exec/executor.hpp"
#include "src/serve/server.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

namespace {

struct MixEntry {
  QuerySpec query;
  bool coverable;
};

MvServer make_server(double scale, ServeOptions serve_options = {}) {
  DesignerOptions options;
  options.cost = paper_cost_config();
  WarehouseDesigner designer(make_paper_catalog(), options);
  const PaperExample example = make_paper_example();
  for (const QuerySpec& q : example.queries) designer.add_query(q);
  DesignResult design = designer.design();
  const MvppGraph& g = design.graph();
  for (const NodeId q : g.query_ids()) {
    design.selection.materialized.insert(g.node(q).children[0]);
  }
  return MvServer(example.catalog, design, populate_paper_database(scale),
                  serve_options);
}

std::vector<MixEntry> make_mix(const Catalog& catalog) {
  std::vector<MixEntry> mix;
  for (const QuerySpec& q : make_paper_example().queries) {
    mix.push_back({q, true});
  }
  // Residual compensation on the Q4 and Q1 views.
  mix.push_back({parse_adhoc(catalog,
                             "SELECT Customer.city, date "
                             "FROM Order, Customer "
                             "WHERE quantity > 100 "
                             "AND date > DATE '1996-07-01' "
                             "AND Order.Cid = Customer.Cid"),
                 true});
  mix.push_back({parse_adhoc(catalog,
                             "SELECT Product.name FROM Product, Division "
                             "WHERE Product.Did = Division.Did "
                             "AND city = 'LA' AND Product.Did > 0"),
                 true});
  // Uncovered: no deployed view has these relation sets.
  mix.push_back(
      {parse_adhoc(catalog, "SELECT name FROM Division WHERE city = 'LA'"),
       false});
  mix.push_back(
      {parse_adhoc(catalog,
                   "SELECT Customer.name FROM Customer WHERE Cid < 100"),
       false});
  return mix;
}

struct Throughput {
  int threads = 0;
  std::size_t queries = 0;
  double secs = 0;
  double qps = 0;
  double hit_rate = 0;
};

Throughput drive(const MvServer& server, const std::vector<MixEntry>& mix,
                 int threads, std::size_t per_thread, ServePath path) {
  std::atomic<std::size_t> hits{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      std::size_t local_hits = 0;
      for (std::size_t i = 0; i < per_thread; ++i) {
        const MixEntry& entry =
            mix[(static_cast<std::size_t>(t) + i) % mix.size()];
        const ServeResult r =
            server.serve_on(server.snapshot(), entry.query, path);
        if (r.rewritten) ++local_hits;
      }
      hits.fetch_add(local_hits, std::memory_order_relaxed);
    });
  }
  for (std::thread& c : clients) c.join();
  const auto t1 = std::chrono::steady_clock::now();

  Throughput out;
  out.threads = threads;
  out.queries = static_cast<std::size_t>(threads) * per_thread;
  out.secs = std::chrono::duration<double>(t1 - t0).count();
  out.qps = static_cast<double>(out.queries) / out.secs;
  out.hit_rate =
      static_cast<double>(hits.load()) / static_cast<double>(out.queries);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const double scale = smoke ? 0.02 : 0.1;
  const std::size_t per_thread = smoke ? 50 : 300;

  MvServer server = make_server(scale);
  const std::vector<MixEntry> mix = make_mix(server.catalog());
  const double coverable_fraction =
      static_cast<double>(std::count_if(mix.begin(), mix.end(),
                                        [](const MixEntry& e) {
                                          return e.coverable;
                                        })) /
      static_cast<double>(mix.size());

  // Correctness gate first: per mix entry, rewrite-vs-base agreement and
  // the expected route.
  bool agree = true;
  double expected_hits = 0;
  {
    const auto snap = server.snapshot();
    for (const MixEntry& entry : mix) {
      const ServeResult hit = server.serve_on(snap, entry.query);
      const ServeResult base =
          server.serve_on(snap, entry.query, ServePath::kBaseOnly);
      if (!same_bag(hit.table, base.table)) {
        std::cerr << "MISMATCH: " << entry.query.name()
                  << " rewritten != base\n";
        agree = false;
      }
      if (hit.rewritten != entry.coverable) {
        std::cerr << "ROUTE: " << entry.query.name() << " expected "
                  << (entry.coverable ? "rewrite" : "fallback") << ", got "
                  << (hit.rewritten ? "view " + hit.view : "fallback")
                  << "\n";
        agree = false;
      }
      if (hit.rewritten) ++expected_hits;
    }
  }

  Json report = Json::object();
  report.set("bench", Json::string("serve"));
  report.set("smoke", Json::boolean(smoke));
  report.set("hardware_threads",
             Json::number(static_cast<std::size_t>(
                 std::thread::hardware_concurrency())));
  report.set("scale", Json::number(scale));
  report.set("mix_size", Json::number(mix.size()));
  report.set("mix_coverable_fraction", Json::number(coverable_fraction));

  TextTable table({"threads", "queries", "rewrite q/s", "base q/s",
                   "speedup", "hit rate"});
  Json scaling = Json::array();
  bool hit_rate_ok = true;
  for (const int threads : {1, 4, 16, 64}) {
    const Throughput rewrite =
        drive(server, mix, threads, per_thread, ServePath::kAuto);
    const Throughput base =
        drive(server, mix, threads, per_thread, ServePath::kBaseOnly);
    // Every coverable query must hit: the stream hit rate equals the
    // coverable fraction, which covers the whole registered workload.
    hit_rate_ok = hit_rate_ok && rewrite.hit_rate >= coverable_fraction - 1e-9;

    table.add_row({std::to_string(threads), std::to_string(rewrite.queries),
                   format_fixed(rewrite.qps, 0), format_fixed(base.qps, 0),
                   format_fixed(rewrite.qps / base.qps, 2),
                   format_fixed(rewrite.hit_rate, 3)});
    Json row = Json::object();
    row.set("threads", Json::number(threads));
    row.set("queries", Json::number(rewrite.queries));
    row.set("rewrite_secs", Json::number(rewrite.secs));
    row.set("rewrite_qps", Json::number(rewrite.qps));
    row.set("base_secs", Json::number(base.secs));
    row.set("base_qps", Json::number(base.qps));
    row.set("speedup", Json::number(rewrite.qps / base.qps));
    row.set("hit_rate", Json::number(rewrite.hit_rate));
    scaling.push_back(std::move(row));
  }
  report.set("scaling", std::move(scaling));
  std::cout << "mvserve throughput (paper warehouse, scale "
            << format_fixed(scale, 2) << ", mix of " << mix.size()
            << " queries):\n"
            << table.render() << "\n";

  // Snapshot churn: 4 readers serve while a writer loops ingest+refresh
  // with a single publish per round.
  {
    std::atomic<bool> done{false};
    std::atomic<std::size_t> served{0};
    std::vector<std::thread> readers;
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < 4; ++t) {
      readers.emplace_back([&, t] {
        std::size_t i = 0;
        while (!done.load(std::memory_order_acquire)) {
          const MixEntry& entry =
              mix[(static_cast<std::size_t>(t) + i++) % mix.size()];
          server.serve_on(server.snapshot(), entry.query);
          served.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    Rng rng(2026);
    UpdateStreamOptions updates;
    const int rounds = smoke ? 3 : 10;
    for (int r = 0; r < rounds; ++r) {
      server.update_and_refresh(r % 2 == 0 ? "Order" : "Customer", updates,
                                rng);
    }
    done.store(true, std::memory_order_release);
    for (std::thread& rd : readers) rd.join();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();

    Json churn = Json::object();
    churn.set("readers", Json::number(4));
    churn.set("writer_rounds", Json::number(rounds));
    churn.set("queries", Json::number(served.load()));
    churn.set("secs", Json::number(secs));
    churn.set("qps", Json::number(static_cast<double>(served.load()) / secs));
    churn.set("final_epoch", Json::number(server.epoch()));
    report.set("snapshot_churn", std::move(churn));
    std::cout << "snapshot churn: " << served.load() << " queries in "
              << format_fixed(secs, 2) << " s ("
              << format_fixed(static_cast<double>(served.load()) / secs, 0)
              << " q/s) across " << rounds << " update_and_refresh rounds\n";
  }

  // Observatory overhead: the workload observatory's serve-path addition
  // is exactly one JournalEvent construction + record() (the fingerprint
  // is cached at bind time). Like the Ext-K tracing-tax gate, the <1%
  // bound is computed from the per-event cost measured directly over a
  // tight loop — representative hit and miss events recorded into a
  // live-shaped observatory — divided by the measured mean serve time;
  // wall-clock A/B of two full serve loops is reported alongside but
  // carries shared-runner noise far above the effect being gated.
  bool observatory_ok = true;
  {
    ServeOptions on_opts;
    on_opts.observe = true;
    ServeOptions off_opts;
    off_opts.observe = false;
    MvServer on_server = make_server(scale, on_opts);
    MvServer off_server = make_server(scale, off_opts);
    const std::size_t per_round = per_thread * 2;
    drive(on_server, mix, 1, per_round, ServePath::kAuto);   // warmup
    drive(off_server, mix, 1, per_round, ServePath::kAuto);  // warmup
    const Throughput on =
        drive(on_server, mix, 1, per_round, ServePath::kAuto);
    const Throughput off =
        drive(off_server, mix, 1, per_round, ServePath::kAuto);

    // Representative events cloned from real traffic: a view hit and an
    // uncovered fallback with its full refusal list.
    const auto snap = on_server.snapshot();
    const MixEntry& covered = mix.front();
    const MixEntry* uncovered = &mix.back();
    for (const MixEntry& entry : mix) {
      if (!entry.coverable) uncovered = &entry;
    }
    const ServeResult hit_r = on_server.serve_on(snap, covered.query);
    const ServeResult miss_r = on_server.serve_on(snap, uncovered->query);
    JournalEvent hit_proto;
    hit_proto.kind = EventKind::kServe;
    hit_proto.query = covered.query.name();
    hit_proto.fingerprint = query_fingerprint(covered.query);
    hit_proto.rewritten = true;
    hit_proto.view = hit_r.view;
    hit_proto.engine = hit_r.engine;
    hit_proto.latency_ms = hit_r.latency_ms;
    JournalEvent miss_proto;
    miss_proto.kind = EventKind::kServe;
    miss_proto.query = uncovered->query.name();
    miss_proto.fingerprint = query_fingerprint(uncovered->query);
    miss_proto.engine = miss_r.engine;
    miss_proto.latency_ms = miss_r.latency_ms;
    miss_proto.refusals = miss_r.refusals;

    WorkloadObservatory scratch(default_obs_window());
    scratch.attach_journal(std::make_shared<EventJournal>(
        EventJournal::kDefaultCapacity, std::string()));
    const int iters = smoke ? 100'000 : 400'000;
    const auto r0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      JournalEvent e = i % 2 == 0 ? hit_proto : miss_proto;
      scratch.record(std::move(e));
    }
    const auto r1 = std::chrono::steady_clock::now();
    const double record_ns =
        std::chrono::duration<double, std::nano>(r1 - r0).count() / iters;

    const double mean_serve_secs =
        on.secs / static_cast<double>(on.queries);
    const double overhead_bound = record_ns * 1e-9 / mean_serve_secs;
    const double wall_clock_delta = on.secs / off.secs - 1.0;
    observatory_ok = overhead_bound < 0.01;

    Json obs = Json::object();
    obs.set("queries_per_pass", Json::number(per_round));
    obs.set("observe_on_secs", Json::number(on.secs));
    obs.set("observe_off_secs", Json::number(off.secs));
    obs.set("wall_clock_delta", Json::number(wall_clock_delta));
    obs.set("record_iters", Json::number(iters));
    obs.set("record_ns_per_serve", Json::number(record_ns));
    obs.set("mean_serve_us", Json::number(mean_serve_secs * 1e6));
    obs.set("overhead", Json::number(overhead_bound));
    obs.set("gate", Json::number(0.01));
    obs.set("ok", Json::boolean(observatory_ok));
    report.set("observatory", std::move(obs));
    std::cout << "observatory overhead: record "
              << format_fixed(record_ns, 0) << " ns/serve vs mean serve "
              << format_fixed(mean_serve_secs * 1e6, 1) << " us -> "
              << format_fixed(overhead_bound * 100.0, 3)
              << "% (gate < 1%); wall clock on "
              << format_fixed(on.secs * 1e3, 1) << " ms vs off "
              << format_fixed(off.secs * 1e3, 1) << " ms over " << per_round
              << " queries\n";
  }

  report.set("agreement", Json::boolean(agree));
  report.set("hit_rate_ok", Json::boolean(hit_rate_ok));
  report.set("observatory_ok", Json::boolean(observatory_ok));

  std::ofstream out("BENCH_serve.json");
  out << report.dump(2) << '\n';
  std::cout << "wrote BENCH_serve.json\n";
  if (!agree) std::cerr << "FAILED: rewrite/base disagreement\n";
  if (!hit_rate_ok) {
    std::cerr << "FAILED: hit rate below the mix's coverable fraction\n";
  }
  if (!observatory_ok) {
    std::cerr << "FAILED: observatory overhead at or above 1%\n";
  }
  return (agree && hit_rate_ok && observatory_ok) ? 0 : 1;
}
