// Ext-E: google-benchmark microbenchmarks of the algorithmic components —
// MVPP construction, cost evaluation, and the selection algorithms —
// as workload size grows.
#include <benchmark/benchmark.h>

#include "src/mvpp/builder.hpp"
#include "src/workload/generator.hpp"

namespace mvd {
namespace {

struct Workload {
  Catalog catalog{10.0};
  std::vector<QuerySpec> queries;
};

Workload make_workload(std::size_t query_count) {
  StarSchemaOptions schema;
  schema.dimensions = 5;
  Workload w;
  w.catalog = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = query_count;
  qopts.max_dimensions = 4;
  qopts.seed = 77;
  w.queries = generate_star_queries(w.catalog, schema, qopts);
  return w;
}

void BM_OptimizeSingleQuery(benchmark::State& state) {
  const Workload w = make_workload(8);
  const CostModel model(w.catalog, {});
  const Optimizer optimizer(model);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(w.queries[i % w.queries.size()]));
    ++i;
  }
}
BENCHMARK(BM_OptimizeSingleQuery);

void BM_BuildSingleMvpp(benchmark::State& state) {
  const Workload w = make_workload(static_cast<std::size_t>(state.range(0)));
  const CostModel model(w.catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const std::vector<std::size_t> order = builder.initial_order(w.queries);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(w.queries, order));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildSingleMvpp)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Complexity();

void BM_BuildAllRotations(benchmark::State& state) {
  const Workload w = make_workload(static_cast<std::size_t>(state.range(0)));
  const CostModel model(w.catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build_all_rotations(w.queries));
  }
}
BENCHMARK(BM_BuildAllRotations)->Arg(2)->Arg(4)->Arg(8);

void BM_TotalCostEvaluation(benchmark::State& state) {
  const Workload w = make_workload(8);
  const CostModel model(w.catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const MvppBuildResult built =
      builder.build(w.queries, builder.initial_order(w.queries));
  const MvppEvaluator eval(built.graph);
  // A mid-sized set.
  MaterializedSet m;
  const auto ops = built.graph.operation_ids();
  for (std::size_t i = 0; i < ops.size(); i += 2) m.insert(ops[i]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.total_cost(m));
  }
}
BENCHMARK(BM_TotalCostEvaluation);

void BM_YangHeuristic(benchmark::State& state) {
  const Workload w = make_workload(static_cast<std::size_t>(state.range(0)));
  const CostModel model(w.catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const MvppBuildResult built =
      builder.build(w.queries, builder.initial_order(w.queries));
  const MvppEvaluator eval(built.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(yang_heuristic(eval));
  }
}
BENCHMARK(BM_YangHeuristic)->Arg(4)->Arg(8)->Arg(16);

void BM_GreedyIncremental(benchmark::State& state) {
  const Workload w = make_workload(static_cast<std::size_t>(state.range(0)));
  const CostModel model(w.catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const MvppBuildResult built =
      builder.build(w.queries, builder.initial_order(w.queries));
  const MvppEvaluator eval(built.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_incremental(eval));
  }
}
BENCHMARK(BM_GreedyIncremental)->Arg(4)->Arg(8)->Arg(16);

void BM_ExhaustiveOptimal(benchmark::State& state) {
  const Workload w = make_workload(static_cast<std::size_t>(state.range(0)));
  const CostModel model(w.catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const MvppBuildResult built =
      builder.build(w.queries, builder.initial_order(w.queries));
  if (built.graph.operation_ids().size() > 20) {
    state.SkipWithError("too many candidates for exhaustive search");
    return;
  }
  const MvppEvaluator eval(built.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exhaustive_optimal(eval, 20));
  }
}
BENCHMARK(BM_ExhaustiveOptimal)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace mvd

BENCHMARK_MAIN();
