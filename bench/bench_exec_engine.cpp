// Ext-E: row vs vectorized vs fused execution engine.
//
// Runs each operator (scan, select, project, hash join, aggregate) and an
// end-to-end star join + aggregate workload under all three engines,
// reporting rows/sec per operator and the end-to-end speedup at one and
// four threads, plus a fusable-chain section (stacked select/project
// segments and a select→join-probe pipeline) comparing the interpreted
// vectorized engine against the fused kernel layer with a geomean
// speedup. Everything is written to BENCH_exec.json.
//
// Also measures Ext-K, the observability tax: the per-site cost of the
// disabled instrumentation guards (MVD_TRACE=off) extrapolated over the
// number of sites the end-to-end workload actually exercises, asserted
// under 1% of the end-to-end runtime. A regression here fails the bench
// (nonzero exit), which CI runs in --smoke mode.
//
// `--smoke` shrinks the dataset and repetitions for CI.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "src/common/text_table.hpp"
#include "src/common/json.hpp"
#include "src/common/strings.hpp"
#include "src/exec/executor.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/workload/generator.hpp"

using namespace mvd;

namespace {

double best_run_secs(const Executor& exec, const PlanPtr& plan, int reps,
                     std::size_t* rows_out = nullptr) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const Table out = exec.run(plan);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    if (rows_out != nullptr) *rows_out = out.row_count();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const int reps = smoke ? 2 : 5;

  StarSchemaOptions schema;
  schema.dimensions = 4;
  schema.fact_rows = smoke ? 20'000 : 400'000;
  schema.dimension_rows = smoke ? 1'000 : 5'000;
  const Database db = populate_star_database(schema, 2026);
  const Catalog catalog = catalog_from_database(db, 10.0);

  const Executor row(db, ExecMode::kRow);
  const Executor vec1(db, ExecMode::kVectorized, 1);
  const Executor vec4(db, ExecMode::kVectorized, 4);
  const Executor fused1(db, ExecMode::kFused, 1);
  const Executor fused4(db, ExecMode::kFused, 4);

  Json report = Json::object();
  report.set("bench", Json::string("exec_engine"));
  report.set("smoke", Json::boolean(smoke));
  // Thread scaling is only meaningful with >= 4 cores; on smaller
  // machines the 4-thread numbers measure pure overhead.
  report.set("hardware_threads",
             Json::number(static_cast<std::size_t>(
                 std::thread::hardware_concurrency())));
  Json workload = Json::object();
  workload.set("fact_rows", Json::number(schema.fact_rows));
  workload.set("dimension_rows", Json::number(schema.dimension_rows));
  workload.set("dimensions", Json::number(schema.dimensions));
  report.set("workload", workload);

  std::cout << "Ext-E — row vs vectorized engine ("
            << schema.fact_rows << " fact rows" << (smoke ? ", smoke" : "")
            << ")\n\n";

  // ---- Per-operator throughput ---------------------------------------
  struct OpCase {
    const char* name;
    PlanPtr plan;
    std::size_t input_rows;
  };
  const PlanPtr fact = make_scan(catalog, "Fact");
  const std::vector<OpCase> cases = {
      {"scan", fact, schema.fact_rows},
      {"select", make_select(fact, gt(col("Fact.measure"), lit_i64(500))),
       schema.fact_rows},
      {"project", make_project(fact, {"Fact.d0", "Fact.measure"}),
       schema.fact_rows},
      {"hash_join",
       make_join(fact, make_scan(catalog, "Dim0"),
                 eq(col("Fact.d0"), col("Dim0.id"))),
       schema.fact_rows + schema.dimension_rows},
      {"aggregate",
       make_aggregate(fact, {"Fact.d0"},
                      {AggSpec{AggFn::kSum, "Fact.measure", ""},
                       AggSpec{AggFn::kCount, "", ""}}),
       schema.fact_rows},
  };

  TextTable ops_table({"operator", "row rows/s", "vec rows/s", "fused rows/s",
                       "vec/row", "fused/vec"},
                      {Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});
  Json operators = Json::array();
  for (const OpCase& c : cases) {
    const double row_secs = best_run_secs(row, c.plan, reps);
    const double vec_secs = best_run_secs(vec1, c.plan, reps);
    const double fused_secs = best_run_secs(fused1, c.plan, reps);
    const double rows = static_cast<double>(c.input_rows);
    Json j = Json::object();
    j.set("operator", Json::string(c.name));
    j.set("input_rows", Json::number(rows));
    j.set("row_secs", Json::number(row_secs));
    j.set("vectorized_secs", Json::number(vec_secs));
    j.set("fused_secs", Json::number(fused_secs));
    j.set("row_rows_per_sec", Json::number(rows / row_secs));
    j.set("vectorized_rows_per_sec", Json::number(rows / vec_secs));
    j.set("fused_rows_per_sec", Json::number(rows / fused_secs));
    j.set("speedup", Json::number(row_secs / vec_secs));
    j.set("fused_speedup_vs_vec", Json::number(vec_secs / fused_secs));
    operators.push_back(std::move(j));
    ops_table.add_row({c.name, format_fixed(rows / row_secs, 0),
                       format_fixed(rows / vec_secs, 0),
                       format_fixed(rows / fused_secs, 0),
                       format_fixed(row_secs / vec_secs, 2) + "x",
                       format_fixed(vec_secs / fused_secs, 2) + "x"});
  }
  report.set("operators", std::move(operators));
  std::cout << ops_table.render() << '\n';

  // ---- Fusable chains: interpreted vec vs fused kernels --------------
  // The shapes the chain detector fuses: stacked selects (conjuncts over
  // int/double/string columns), select→project segments, and a
  // select→join-probe pipeline that also exercises the packed-key join
  // kernel. Predicates are selective (~1-5% survivors) so the timings
  // measure scan/filter/probe throughput — the work the kernels fuse —
  // rather than the result-materialization cost both engines share. The
  // acceptance target is a >= 2x geomean over the interpreted vectorized
  // engine at one thread.
  const std::int64_t d_sel =
      static_cast<std::int64_t>(schema.dimension_rows / 20);
  const std::vector<OpCase> chains = {
      {"select3_conj",
       make_select(fact, conj({gt(col("Fact.measure"), lit_i64(950)),
                               lt(col("Fact.d0"), lit_i64(d_sel)),
                               cmp(CompareOp::kNe, col("Fact.d1"),
                                   lit_i64(7))})),
       schema.fact_rows},
      {"select_select_project",
       make_project(
           make_select(make_select(fact, gt(col("Fact.measure"),
                                            lit_i64(950))),
                       lt(col("Fact.measure"), lit_i64(955))),
           {"Fact.d0", "Fact.measure"}),
       schema.fact_rows},
      {"project_select_remap",
       make_select(make_project(fact, {"Fact.d1", "Fact.measure"}),
                   gt(col("Fact.measure"), lit_i64(995))),
       schema.fact_rows},
      {"select_join_probe",
       make_join(make_select(fact, gt(col("Fact.measure"), lit_i64(995))),
                 make_scan(catalog, "Dim0"),
                 eq(col("Fact.d0"), col("Dim0.id"))),
       schema.fact_rows + schema.dimension_rows},
  };

  TextTable chain_table({"chain", "vec rows/s", "fused rows/s", "1t speedup",
                         "4t speedup"},
                        {Align::kLeft, Align::kRight, Align::kRight,
                         Align::kRight, Align::kRight});
  Json chain_json = Json::array();
  double log_speedup_1t = 0, log_speedup_4t = 0;
  // The chain runs are short (selective predicates, small outputs), so
  // take the best of more repetitions to damp scheduler noise.
  const int chain_reps = smoke ? 3 : 9;
  for (const OpCase& c : chains) {
    const double vec1_secs = best_run_secs(vec1, c.plan, chain_reps);
    const double fused1_secs = best_run_secs(fused1, c.plan, chain_reps);
    const double vec4_secs = best_run_secs(vec4, c.plan, chain_reps);
    const double fused4_secs = best_run_secs(fused4, c.plan, chain_reps);
    const double rows = static_cast<double>(c.input_rows);
    const double s1 = vec1_secs / fused1_secs;
    const double s4 = vec4_secs / fused4_secs;
    log_speedup_1t += std::log(s1);
    log_speedup_4t += std::log(s4);
    Json j = Json::object();
    j.set("chain", Json::string(c.name));
    j.set("input_rows", Json::number(rows));
    j.set("vectorized_1t_secs", Json::number(vec1_secs));
    j.set("fused_1t_secs", Json::number(fused1_secs));
    j.set("vectorized_4t_secs", Json::number(vec4_secs));
    j.set("fused_4t_secs", Json::number(fused4_secs));
    j.set("vectorized_rows_per_sec", Json::number(rows / vec1_secs));
    j.set("fused_rows_per_sec", Json::number(rows / fused1_secs));
    j.set("fused_speedup_1t", Json::number(s1));
    j.set("fused_speedup_4t", Json::number(s4));
    chain_json.push_back(std::move(j));
    chain_table.add_row({c.name, format_fixed(rows / vec1_secs, 0),
                         format_fixed(rows / fused1_secs, 0),
                         format_fixed(s1, 2) + "x",
                         format_fixed(s4, 2) + "x"});
  }
  const double geomean_1t =
      std::exp(log_speedup_1t / static_cast<double>(chains.size()));
  const double geomean_4t =
      std::exp(log_speedup_4t / static_cast<double>(chains.size()));
  Json chains_section = Json::object();
  chains_section.set("cases", std::move(chain_json));
  chains_section.set("geomean_fused_speedup_1t", Json::number(geomean_1t));
  chains_section.set("geomean_fused_speedup_4t", Json::number(geomean_4t));
  report.set("fusable_chains", std::move(chains_section));
  std::cout << "fusable chains (interpreted vec vs fused kernels):\n"
            << chain_table.render()
            << "  geomean fused speedup: "
            << format_fixed(geomean_1t, 2) << "x (1t), "
            << format_fixed(geomean_4t, 2) << "x (4t)\n\n";

  // ---- End-to-end join + aggregate workload --------------------------
  // The generator's large rollup shape: fact joined through two
  // dimensions with a category selection, grouped on a dimension
  // category with SUM + COUNT.
  const PlanPtr e2e = make_aggregate(
      make_select(
          make_join(make_join(fact, make_scan(catalog, "Dim0"),
                              eq(col("Fact.d0"), col("Dim0.id"))),
                    make_scan(catalog, "Dim1"),
                    eq(col("Fact.d1"), col("Dim1.id"))),
          gt(col("Fact.measure"), lit_i64(200))),
      {"Dim0.category"},
      {AggSpec{AggFn::kSum, "Fact.measure", ""},
       AggSpec{AggFn::kCount, "", ""}});

  std::size_t rows_row = 0, rows_v1 = 0, rows_v4 = 0;
  const double row_secs = best_run_secs(row, e2e, reps, &rows_row);
  const double vec1_secs = best_run_secs(vec1, e2e, reps, &rows_v1);
  const double vec4_secs = best_run_secs(vec4, e2e, reps, &rows_v4);
  const double fused1_secs = best_run_secs(fused1, e2e, reps);
  const double fused4_secs = best_run_secs(fused4, e2e, reps);
  const Table e2e_vec = vec1.run(e2e);
  const Table e2e_fused1 = fused1.run(e2e);
  const Table e2e_fused4 = fused4.run(e2e);
  // The batch engines must match bit for bit, row order included.
  bool batch_identical = e2e_vec.row_count() == e2e_fused1.row_count() &&
                         e2e_fused1.row_count() == e2e_fused4.row_count();
  for (std::size_t i = 0; batch_identical && i < e2e_vec.row_count(); ++i) {
    batch_identical = e2e_vec.row(i) == e2e_fused1.row(i) &&
                      e2e_fused1.row(i) == e2e_fused4.row(i);
  }
  const bool agree = same_bag(row.run(e2e), e2e_vec) &&
                     same_bag(e2e_vec, vec4.run(e2e)) && batch_identical;

  Json e2e_json = Json::object();
  e2e_json.set("description",
               Json::string("Fact |x| Dim0 |x| Dim1, measure filter, "
                            "GROUP BY Dim0.category, SUM + COUNT"));
  e2e_json.set("row_secs", Json::number(row_secs));
  e2e_json.set("vectorized_1t_secs", Json::number(vec1_secs));
  e2e_json.set("vectorized_4t_secs", Json::number(vec4_secs));
  e2e_json.set("fused_1t_secs", Json::number(fused1_secs));
  e2e_json.set("fused_4t_secs", Json::number(fused4_secs));
  e2e_json.set("speedup_1t", Json::number(row_secs / vec1_secs));
  e2e_json.set("speedup_4t", Json::number(row_secs / vec4_secs));
  e2e_json.set("fused_speedup_1t", Json::number(row_secs / fused1_secs));
  e2e_json.set("fused_speedup_4t", Json::number(row_secs / fused4_secs));
  e2e_json.set("fused_vs_vec_1t", Json::number(vec1_secs / fused1_secs));
  e2e_json.set("fused_vs_vec_4t", Json::number(vec4_secs / fused4_secs));
  e2e_json.set("thread_scaling_4t", Json::number(vec1_secs / vec4_secs));
  e2e_json.set("same_bag", Json::boolean(agree));
  e2e_json.set("output_rows", Json::number(rows_row));
  report.set("end_to_end", std::move(e2e_json));

  std::cout << "end-to-end join+aggregate:\n"
            << "  row engine:        " << format_fixed(row_secs * 1e3, 1)
            << " ms\n"
            << "  vectorized (1t):   " << format_fixed(vec1_secs * 1e3, 1)
            << " ms  (" << format_fixed(row_secs / vec1_secs, 2) << "x)\n"
            << "  vectorized (4t):   " << format_fixed(vec4_secs * 1e3, 1)
            << " ms  (" << format_fixed(row_secs / vec4_secs, 2) << "x, "
            << format_fixed(vec1_secs / vec4_secs, 2) << "x over 1t)\n"
            << "  fused (1t):        " << format_fixed(fused1_secs * 1e3, 1)
            << " ms  (" << format_fixed(row_secs / fused1_secs, 2) << "x)\n"
            << "  fused (4t):        " << format_fixed(fused4_secs * 1e3, 1)
            << " ms  (" << format_fixed(row_secs / fused4_secs, 2) << "x)\n"
            << "  results agree:     " << (agree ? "yes" : "NO") << "\n\n";

  // ---- Ext-K: observability overhead when tracing is off -------------
  // Every instrumentation site left in the binary costs one relaxed
  // atomic load + branch when MVD_TRACE=off. Measure that guard directly,
  // count how many sites one end-to-end run exercises (spans-on run),
  // and bound the off-state tax as guard_cost x sites / runtime.
  set_trace_level(TraceLevel::kOff);
  constexpr int kGuardIters = 2'000'000;
  std::size_t guard_hits = 0;
  const auto g0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kGuardIters; ++i) {
    TraceSpan span("bench", "guard");   // disabled span: one load + branch
    if (counters_enabled()) ++guard_hits;  // disabled counter guard
    guard_hits += span.active() ? 1 : 0;
  }
  const auto g1 = std::chrono::steady_clock::now();
  const double guard_ns =
      std::chrono::duration<double, std::nano>(g1 - g0).count() /
      kGuardIters;

  set_trace_level(TraceLevel::kSpans);
  Tracer::global().clear();
  const std::size_t row_ev0 = Tracer::global().event_count();
  (void)row.run(e2e);
  const std::size_t row_events = Tracer::global().event_count() - row_ev0;
  const std::size_t vec_ev0 = Tracer::global().event_count();
  (void)vec4.run(e2e);
  const std::size_t vec_events = Tracer::global().event_count() - vec_ev0;
  const std::size_t fused_ev0 = Tracer::global().event_count();
  (void)fused4.run(e2e);
  const std::size_t fused_events =
      Tracer::global().event_count() - fused_ev0;
  Tracer::global().clear();
  set_trace_level(std::nullopt);

  // The spans-on event count undercounts guard executions (counter-only
  // sites don't record events), so pad by 4x before comparing against
  // the 1% budget — the bound stays conservative.
  const double kSiteFudge = 4.0;
  const double row_overhead =
      static_cast<double>(row_events) * kSiteFudge * guard_ns * 1e-9 /
      row_secs;
  const double vec_overhead =
      static_cast<double>(vec_events) * kSiteFudge * guard_ns * 1e-9 /
      vec4_secs;
  const double fused_overhead =
      static_cast<double>(fused_events) * kSiteFudge * guard_ns * 1e-9 /
      fused4_secs;
  const double worst_overhead =
      std::max({row_overhead, vec_overhead, fused_overhead});
  const double kOverheadLimit = 0.01;
  const bool overhead_ok = worst_overhead <= kOverheadLimit;

  Json obs = Json::object();
  obs.set("guard_ns_per_site", Json::number(guard_ns));
  obs.set("row_trace_events", Json::number(row_events));
  obs.set("vectorized_trace_events", Json::number(vec_events));
  obs.set("fused_trace_events", Json::number(fused_events));
  obs.set("site_fudge_factor", Json::number(kSiteFudge));
  obs.set("row_overhead_fraction", Json::number(row_overhead));
  obs.set("vectorized_overhead_fraction", Json::number(vec_overhead));
  obs.set("fused_overhead_fraction", Json::number(fused_overhead));
  obs.set("limit_fraction", Json::number(kOverheadLimit));
  obs.set("within_limit", Json::boolean(overhead_ok));
  report.set("tracing_overhead", std::move(obs));

  std::cout << "tracing overhead (MVD_TRACE=off):\n"
            << "  guard cost:        " << format_fixed(guard_ns, 2)
            << " ns/site\n"
            << "  sites per e2e run: " << row_events << " (row), "
            << vec_events << " (vec), " << fused_events << " (fused)\n"
            << "  worst-case tax:    "
            << format_fixed(worst_overhead * 100, 4) << "% of runtime "
            << "(limit " << format_fixed(kOverheadLimit * 100, 1) << "%) "
            << (overhead_ok ? "ok" : "EXCEEDED") << "\n\n";

  std::ofstream out("BENCH_exec.json");
  out << report.dump(2) << '\n';
  std::cout << "wrote BENCH_exec.json\n";
  return (agree && overhead_ok) ? 0 : 1;
}
