// Reproduces Figures 7 and 8: the MVPP before and after pushing the
// select and project operations down to the leaves.
//
// The variant workload (Q1: city='LA', Q2: Division.name='Re',
// Q3: city='SF') shares the Product |x| Division join across queries with
// *different* selection conditions. Step 5 of the Figure 4 algorithm
// pushes the disjunction
//     city='LA' OR city='SF' OR name='Re'
// down to the Division leaf (Figure 8's tmp1), each query re-applying its
// own condition on its private path; step 6 pushes the union of needed
// attributes (plus join attributes) down as leaf projections.
#include <iostream>

#include "src/common/units.hpp"
#include "src/mvpp/builder.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel cost_model(catalog, paper_cost_config());
  const Optimizer optimizer(cost_model);
  const std::vector<QuerySpec> queries =
      make_pushdown_variant_queries(catalog);

  std::cout << "Figure 7 — the variant queries (different selections on "
               "Division):\n";
  for (const QuerySpec& q : queries) std::cout << "  " << q.to_string() << '\n';
  std::cout << '\n';

  const MvppBuilder builder(optimizer);
  const MvppBuildResult built =
      builder.build(queries, builder.initial_order(queries));
  const MvppGraph& g = built.graph;

  std::cout << "Figure 8 — MVPP after select/project pushdown:\n\n"
            << g.to_text() << '\n';

  // Show the shared Division leaf chain explicitly.
  std::cout << "pushed-down leaf operations on Division:\n";
  for (const MvppNode& n : g.nodes()) {
    if (n.kind == MvppNodeKind::kSelect || n.kind == MvppNodeKind::kProject) {
      const std::vector<NodeId> bases = g.bases_under(n.id);
      if (bases.size() == 1 && g.node(bases[0]).relation == "Division") {
        std::cout << "  " << n.label() << '\n';
      }
    }
  }

  std::cout << "\nresidual (query-side) selections re-applying each query's "
               "own condition:\n";
  for (const MvppNode& n : g.nodes()) {
    if (n.kind != MvppNodeKind::kSelect) continue;
    if (g.bases_under(n.id).size() > 1) {
      std::cout << "  " << n.label() << "  used by";
      for (NodeId q : g.queries_using(n.id)) {
        std::cout << ' ' << g.node(q).name;
      }
      std::cout << '\n';
    }
  }

  MvppEvaluator eval(g);
  const SelectionResult sel = yang_heuristic(eval);
  std::cout << "\nFigure 9 heuristic on this MVPP: materialize "
            << to_string(g, sel.materialized) << ", total "
            << format_blocks(sel.costs.total()) << '\n';
  return 0;
}
