// Reproduces Figure 5: the four individual optimal query processing plans
// with the select and project operations pushed up (step 2 of the
// Figure 4 algorithm), leaving each query's join pattern over the base
// relations explicit, plus the re-optimized pushed-down forms.
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/units.hpp"
#include "src/optimizer/optimizer.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const PaperExample ex = make_paper_example();
  const CostModel cost_model(ex.catalog, paper_cost_config());
  const Optimizer optimizer(cost_model);

  std::cout << "Figure 5 — individual optimal plans (selects/projects "
               "pushed up)\n\n";
  for (const QuerySpec& q : ex.queries) {
    const std::vector<std::string> order = optimizer.optimal_join_order(q);
    std::cout << q.to_string() << "\n  optimal join order: "
              << join(order, " |x| ") << "\n\n";

    const PlanPtr up = optimizer.optimize_pushed_up(q);
    std::cout << "pushed-up form (join pattern explicit):\n"
              << plan_tree_string(up);
    const PlanPtr down = optimizer.optimize(q);
    std::cout << "pushed-down (optimal) form, Ca = "
              << format_blocks(cost_model.full_cost(down)) << ":\n"
              << plan_tree_string(down) << '\n';
  }

  std::cout << "fq x Ca of the optimal plans (the paper's ordering values "
               "10x35.37k > 0.5x50.082m ... determines the merge order):\n";
  for (const QuerySpec& q : ex.queries) {
    const double ca = cost_model.full_cost(optimizer.optimize(q));
    std::cout << "  " << q.name() << ": " << format_fixed(q.frequency(), 1)
              << " x " << format_blocks(ca) << " = "
              << format_blocks(q.frequency() * ca) << '\n';
  }
  return 0;
}
