// Reproduces Table 2: costs of different view-materialization strategies
// on the Figure 3 MVPP.
//
// Paper values (for shape comparison; our cost model applies selections
// consistently, the paper's figure mixes reduced and unreduced sizes —
// see EXPERIMENTS.md):
//   strategy                      query cost   maintenance   total
//   base relations only           95.671m      0             95.671m
//   tmp2, tmp4, tmp6              85.237m      12.583m       97.82m
//   tmp2, tmp6                    25.506m      12.382m       37.888m
//   tmp2, tmp4                    25.512m      12.065m       37.577m
//   Q1, Q2, Q3, Q4                7.25k        62.653m       62.66m
// Shape: {tmp2, tmp4} is the best listed strategy; materializing all
// query results buys the lowest query cost at dominating maintenance;
// leaving everything virtual maximizes query cost at zero maintenance.
#include <iostream>

#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel cost_model(catalog, paper_cost_config());
  const MvppGraph graph = build_figure3_mvpp(cost_model);
  const MvppEvaluator eval(graph);

  auto named_set = [&](const std::vector<std::string>& names) {
    MaterializedSet m;
    for (const std::string& n : names) m.insert(graph.find_by_name(n));
    return m;
  };

  TextTable table({"materialized views", "query cost", "maintenance",
                   "total"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  auto row = [&](const std::string& label, const MaterializedSet& m) {
    const MvppCosts c = eval.evaluate(m);
    table.add_row({label, format_blocks(c.query_processing),
                   format_blocks(c.maintenance), format_blocks(c.total())});
    return c.total();
  };

  std::cout << "Table 2 — costs of view materialization strategies\n"
            << "(Figure 3 MVPP, fq = 10 / 0.5 / 0.8 / 5, fu = 1)\n\n";
  const double none = row("Pd, Div, Pt, Ord, Cust (all virtual)", {});
  row("tmp2, tmp4, tmp6", named_set({"tmp2", "tmp4", "tmp6"}));
  row("tmp2, tmp6", named_set({"tmp2", "tmp6"}));
  const double best =
      row("tmp2, tmp4", named_set({"tmp2", "tmp4"}));
  const double all_queries = row(
      "Q1, Q2, Q3, Q4 (all query results)",
      named_set({"result1", "result2", "result3", "result4"}));
  std::cout << table.render() << '\n';

  std::cout << "shape checks (paper's observations):\n";
  std::cout << "  {tmp2, tmp4} beats all-virtual:      "
            << (best < none ? "yes" : "NO") << '\n';
  std::cout << "  {tmp2, tmp4} beats all-query-results: "
            << (best < all_queries ? "yes" : "NO") << '\n';
  std::cout << "  all-virtual pays zero maintenance:    "
            << (eval.evaluate({}).maintenance == 0 ? "yes" : "NO") << '\n';

  // The headline of Section 4.3: the heuristic lands on {tmp2, tmp4}.
  const SelectionResult sel = yang_heuristic(eval);
  std::cout << "  Figure 9 heuristic selects:           "
            << to_string(graph, sel.materialized) << " (paper: {tmp2, tmp4})\n";
  return 0;
}
