// Reproduces Figure 2: individual access plans for Query 1 and Query 2,
// and their merge through the common subexpression tmp1/tmp2
// (σ city='LA'(Division) and its join with Product).
//
// Part (a): each query planned alone — the two plans both contain the
// Product ⋈ σ(Division) subtree, with identical structural signatures.
// Part (b): merging the two plans shares that subtree, so the merged MVPP
// has strictly fewer operation nodes than the two separate plans.
#include <iostream>

#include "src/mvpp/builder.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const PaperExample ex = make_paper_example();
  const CostModel cost_model(ex.catalog, paper_cost_config());
  const Optimizer optimizer(cost_model);

  const QuerySpec& q1 = ex.queries[0];
  const QuerySpec& q2 = ex.queries[1];

  std::cout << "Figure 2(a) — individual query processing plans\n\n";
  const PlanPtr p1 = optimizer.optimize(q1);
  const PlanPtr p2 = optimizer.optimize(q2);
  std::cout << q1.to_string() << '\n' << plan_tree_string(p1) << '\n';
  std::cout << q2.to_string() << '\n' << plan_tree_string(p2) << '\n';

  // The shared subtree: Product joined with the LA divisions.
  const PlanPtr shared = make_join(
      make_scan(ex.catalog, "Product"),
      make_select(make_scan(ex.catalog, "Division"),
                  eq(col("city"), lit_str("LA"))),
      eq(col("Product.Did"), col("Division.Did")));
  std::cout << "common subexpression (tmp1/tmp2 of the paper):\n"
            << plan_tree_string(shared)
            << "signature: " << signature(shared) << "\n\n";

  std::cout << "Figure 2(b) — merged plan sharing the common subexpression\n\n";
  MvppBuilder builder(optimizer);
  const std::vector<QuerySpec> two{q1, q2};
  const MvppBuildResult merged = builder.build(two, {0, 1});
  std::cout << merged.graph.to_text() << '\n';

  std::size_t ops = merged.graph.operation_ids().size();
  std::cout << "operation nodes in the merged MVPP: " << ops << '\n';
  // Locate the shared Product |x| Division join and count its consumers.
  bool shared_feeds_both = false;
  for (const MvppNode& n : merged.graph.nodes()) {
    if (n.kind != MvppNodeKind::kJoin) continue;
    const std::vector<NodeId> bases = merged.graph.bases_under(n.id);
    if (bases.size() == 2 &&
        merged.graph.queries_using(n.id).size() == 2) {
      shared_feeds_both = true;
    }
  }
  std::cout << "shared join is computed once and feeds both queries: "
            << (shared_feeds_both ? "yes" : "NO") << '\n';
  return 0;
}
