// Ext-H: view selection under a storage budget.
//
// Sweeps the space allowed for materialized views over the Figure 3 MVPP
// and prints the best achievable total cost (budgeted-optimal) and the
// density-greedy's tracking of it — the classic benefit-per-block curve:
// steep gains from the first few blocks (tmp2 costs 100 blocks and
// removes most of Q1/Q2's work), flattening once tmp4's 5k blocks fit.
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/paper_example.hpp"

using namespace mvd;

int main() {
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const MvppGraph g = build_figure3_mvpp(model);
  const MvppEvaluator eval(g);

  const double none = eval.total_cost({});
  std::cout << "Ext-H — total cost vs view-storage budget "
               "(all-virtual baseline "
            << format_blocks(none) << ")\n\n";

  TextTable t({"budget (blocks)", "greedy set", "greedy total",
               "optimal set", "optimal total", "% of baseline"},
              {Align::kRight, Align::kLeft, Align::kRight, Align::kLeft,
               Align::kRight, Align::kRight});
  for (const double budget :
       {0.0, 10.0, 120.0, 250.0, 2'000.0, 5'200.0, 8'000.0, 20'000.0}) {
    const SelectionResult greedy = budgeted_greedy(eval, budget);
    const SelectionResult optimal = budgeted_optimal(eval, budget);
    t.add_row({format_blocks(budget), to_string(g, greedy.materialized),
               format_blocks(greedy.costs.total()),
               to_string(g, optimal.materialized),
               format_blocks(optimal.costs.total()),
               format_fixed(100.0 * optimal.costs.total() / none, 1) + "%"});
  }
  std::cout << t.render() << '\n';
  std::cout << "reading: the first ~120 blocks (tmp2 and the small query "
               "results) already cut the total well below baseline; the "
               "curve flattens once tmp4's 5k blocks fit, after which more "
               "space buys nothing.\n";
  return 0;
}
