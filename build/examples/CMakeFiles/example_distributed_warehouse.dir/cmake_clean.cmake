file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_warehouse.dir/distributed_warehouse.cpp.o"
  "CMakeFiles/example_distributed_warehouse.dir/distributed_warehouse.cpp.o.d"
  "example_distributed_warehouse"
  "example_distributed_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
