# Empty compiler generated dependencies file for example_distributed_warehouse.
# This may be replaced when dependencies are built.
