file(REMOVE_RECURSE
  "CMakeFiles/example_whatif_analysis.dir/whatif_analysis.cpp.o"
  "CMakeFiles/example_whatif_analysis.dir/whatif_analysis.cpp.o.d"
  "example_whatif_analysis"
  "example_whatif_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_whatif_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
