# Empty dependencies file for example_whatif_analysis.
# This may be replaced when dependencies are built.
