file(REMOVE_RECURSE
  "CMakeFiles/example_sql_designer.dir/sql_designer.cpp.o"
  "CMakeFiles/example_sql_designer.dir/sql_designer.cpp.o.d"
  "example_sql_designer"
  "example_sql_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sql_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
