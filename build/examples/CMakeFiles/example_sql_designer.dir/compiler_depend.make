# Empty compiler generated dependencies file for example_sql_designer.
# This may be replaced when dependencies are built.
