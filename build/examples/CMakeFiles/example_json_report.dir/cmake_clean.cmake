file(REMOVE_RECURSE
  "CMakeFiles/example_json_report.dir/json_report.cpp.o"
  "CMakeFiles/example_json_report.dir/json_report.cpp.o.d"
  "example_json_report"
  "example_json_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_json_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
