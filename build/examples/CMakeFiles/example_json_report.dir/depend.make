# Empty dependencies file for example_json_report.
# This may be replaced when dependencies are built.
