# Empty dependencies file for mvd_tests.
# This may be replaced when dependencies are built.
