
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregate_test.cpp" "tests/CMakeFiles/mvd_tests.dir/aggregate_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/aggregate_test.cpp.o.d"
  "/root/repo/tests/budgeted_selection_test.cpp" "tests/CMakeFiles/mvd_tests.dir/budgeted_selection_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/budgeted_selection_test.cpp.o.d"
  "/root/repo/tests/catalog_test.cpp" "tests/CMakeFiles/mvd_tests.dir/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/catalog_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/mvd_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/cost_model_test.cpp" "tests/CMakeFiles/mvd_tests.dir/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/cost_model_test.cpp.o.d"
  "/root/repo/tests/coverage_gap_test.cpp" "tests/CMakeFiles/mvd_tests.dir/coverage_gap_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/coverage_gap_test.cpp.o.d"
  "/root/repo/tests/distributed_test.cpp" "tests/CMakeFiles/mvd_tests.dir/distributed_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/distributed_test.cpp.o.d"
  "/root/repo/tests/end_to_end_property_test.cpp" "tests/CMakeFiles/mvd_tests.dir/end_to_end_property_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/end_to_end_property_test.cpp.o.d"
  "/root/repo/tests/executor_test.cpp" "tests/CMakeFiles/mvd_tests.dir/executor_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/executor_test.cpp.o.d"
  "/root/repo/tests/expr_test.cpp" "tests/CMakeFiles/mvd_tests.dir/expr_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/expr_test.cpp.o.d"
  "/root/repo/tests/figure3_regression_test.cpp" "tests/CMakeFiles/mvd_tests.dir/figure3_regression_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/figure3_regression_test.cpp.o.d"
  "/root/repo/tests/json_test.cpp" "tests/CMakeFiles/mvd_tests.dir/json_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/json_test.cpp.o.d"
  "/root/repo/tests/logical_plan_test.cpp" "tests/CMakeFiles/mvd_tests.dir/logical_plan_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/logical_plan_test.cpp.o.d"
  "/root/repo/tests/maintenance_test.cpp" "tests/CMakeFiles/mvd_tests.dir/maintenance_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/maintenance_test.cpp.o.d"
  "/root/repo/tests/mvpp_builder_test.cpp" "tests/CMakeFiles/mvd_tests.dir/mvpp_builder_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/mvpp_builder_test.cpp.o.d"
  "/root/repo/tests/mvpp_evaluation_test.cpp" "tests/CMakeFiles/mvd_tests.dir/mvpp_evaluation_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/mvpp_evaluation_test.cpp.o.d"
  "/root/repo/tests/mvpp_graph_test.cpp" "tests/CMakeFiles/mvd_tests.dir/mvpp_graph_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/mvpp_graph_test.cpp.o.d"
  "/root/repo/tests/mvpp_selection_test.cpp" "tests/CMakeFiles/mvd_tests.dir/mvpp_selection_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/mvpp_selection_test.cpp.o.d"
  "/root/repo/tests/optimizer_test.cpp" "tests/CMakeFiles/mvd_tests.dir/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/optimizer_test.cpp.o.d"
  "/root/repo/tests/roundtrip_property_test.cpp" "tests/CMakeFiles/mvd_tests.dir/roundtrip_property_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/roundtrip_property_test.cpp.o.d"
  "/root/repo/tests/sql_test.cpp" "tests/CMakeFiles/mvd_tests.dir/sql_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/sql_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "tests/CMakeFiles/mvd_tests.dir/storage_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/storage_test.cpp.o.d"
  "/root/repo/tests/warehouse_test.cpp" "tests/CMakeFiles/mvd_tests.dir/warehouse_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/warehouse_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/mvd_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/mvd_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mvdesign.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
