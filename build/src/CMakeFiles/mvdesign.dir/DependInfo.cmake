
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/aggregate.cpp" "src/CMakeFiles/mvdesign.dir/algebra/aggregate.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/algebra/aggregate.cpp.o.d"
  "/root/repo/src/algebra/eval.cpp" "src/CMakeFiles/mvdesign.dir/algebra/eval.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/algebra/eval.cpp.o.d"
  "/root/repo/src/algebra/expr.cpp" "src/CMakeFiles/mvdesign.dir/algebra/expr.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/algebra/expr.cpp.o.d"
  "/root/repo/src/algebra/logical_plan.cpp" "src/CMakeFiles/mvdesign.dir/algebra/logical_plan.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/algebra/logical_plan.cpp.o.d"
  "/root/repo/src/algebra/query_spec.cpp" "src/CMakeFiles/mvdesign.dir/algebra/query_spec.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/algebra/query_spec.cpp.o.d"
  "/root/repo/src/catalog/catalog.cpp" "src/CMakeFiles/mvdesign.dir/catalog/catalog.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/catalog/catalog.cpp.o.d"
  "/root/repo/src/catalog/schema.cpp" "src/CMakeFiles/mvdesign.dir/catalog/schema.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/catalog/schema.cpp.o.d"
  "/root/repo/src/catalog/value_type.cpp" "src/CMakeFiles/mvdesign.dir/catalog/value_type.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/catalog/value_type.cpp.o.d"
  "/root/repo/src/common/assert.cpp" "src/CMakeFiles/mvdesign.dir/common/assert.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/common/assert.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/CMakeFiles/mvdesign.dir/common/json.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/common/json.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/mvdesign.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/common/random.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/mvdesign.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/text_table.cpp" "src/CMakeFiles/mvdesign.dir/common/text_table.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/common/text_table.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/mvdesign.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/common/units.cpp.o.d"
  "/root/repo/src/cost/cost_model.cpp" "src/CMakeFiles/mvdesign.dir/cost/cost_model.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/cost/cost_model.cpp.o.d"
  "/root/repo/src/distributed/distributed_evaluator.cpp" "src/CMakeFiles/mvdesign.dir/distributed/distributed_evaluator.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/distributed/distributed_evaluator.cpp.o.d"
  "/root/repo/src/distributed/topology.cpp" "src/CMakeFiles/mvdesign.dir/distributed/topology.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/distributed/topology.cpp.o.d"
  "/root/repo/src/exec/executor.cpp" "src/CMakeFiles/mvdesign.dir/exec/executor.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/exec/executor.cpp.o.d"
  "/root/repo/src/maintenance/incremental.cpp" "src/CMakeFiles/mvdesign.dir/maintenance/incremental.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/maintenance/incremental.cpp.o.d"
  "/root/repo/src/maintenance/update_stream.cpp" "src/CMakeFiles/mvdesign.dir/maintenance/update_stream.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/maintenance/update_stream.cpp.o.d"
  "/root/repo/src/mvpp/builder.cpp" "src/CMakeFiles/mvdesign.dir/mvpp/builder.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/mvpp/builder.cpp.o.d"
  "/root/repo/src/mvpp/evaluation.cpp" "src/CMakeFiles/mvdesign.dir/mvpp/evaluation.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/mvpp/evaluation.cpp.o.d"
  "/root/repo/src/mvpp/graph.cpp" "src/CMakeFiles/mvdesign.dir/mvpp/graph.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/mvpp/graph.cpp.o.d"
  "/root/repo/src/mvpp/rewrite.cpp" "src/CMakeFiles/mvdesign.dir/mvpp/rewrite.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/mvpp/rewrite.cpp.o.d"
  "/root/repo/src/mvpp/selection.cpp" "src/CMakeFiles/mvdesign.dir/mvpp/selection.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/mvpp/selection.cpp.o.d"
  "/root/repo/src/mvpp/serialize.cpp" "src/CMakeFiles/mvdesign.dir/mvpp/serialize.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/mvpp/serialize.cpp.o.d"
  "/root/repo/src/optimizer/optimizer.cpp" "src/CMakeFiles/mvdesign.dir/optimizer/optimizer.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/optimizer/optimizer.cpp.o.d"
  "/root/repo/src/sql/lexer.cpp" "src/CMakeFiles/mvdesign.dir/sql/lexer.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/sql/lexer.cpp.o.d"
  "/root/repo/src/sql/parser.cpp" "src/CMakeFiles/mvdesign.dir/sql/parser.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/sql/parser.cpp.o.d"
  "/root/repo/src/storage/database.cpp" "src/CMakeFiles/mvdesign.dir/storage/database.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/storage/database.cpp.o.d"
  "/root/repo/src/storage/table.cpp" "src/CMakeFiles/mvdesign.dir/storage/table.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/storage/table.cpp.o.d"
  "/root/repo/src/storage/value.cpp" "src/CMakeFiles/mvdesign.dir/storage/value.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/storage/value.cpp.o.d"
  "/root/repo/src/warehouse/designer.cpp" "src/CMakeFiles/mvdesign.dir/warehouse/designer.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/warehouse/designer.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/mvdesign.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/paper_example.cpp" "src/CMakeFiles/mvdesign.dir/workload/paper_example.cpp.o" "gcc" "src/CMakeFiles/mvdesign.dir/workload/paper_example.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
