# Empty compiler generated dependencies file for mvdesign.
# This may be replaced when dependencies are built.
