file(REMOVE_RECURSE
  "libmvdesign.a"
)
