# Empty dependencies file for bench_space_budget.
# This may be replaced when dependencies are built.
