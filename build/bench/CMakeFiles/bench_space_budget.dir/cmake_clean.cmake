file(REMOVE_RECURSE
  "CMakeFiles/bench_space_budget.dir/bench_space_budget.cpp.o"
  "CMakeFiles/bench_space_budget.dir/bench_space_budget.cpp.o.d"
  "bench_space_budget"
  "bench_space_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_space_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
