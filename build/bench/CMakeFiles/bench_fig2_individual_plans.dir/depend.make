# Empty dependencies file for bench_fig2_individual_plans.
# This may be replaced when dependencies are built.
