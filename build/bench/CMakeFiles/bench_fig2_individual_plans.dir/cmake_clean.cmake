file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_individual_plans.dir/bench_fig2_individual_plans.cpp.o"
  "CMakeFiles/bench_fig2_individual_plans.dir/bench_fig2_individual_plans.cpp.o.d"
  "bench_fig2_individual_plans"
  "bench_fig2_individual_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_individual_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
