file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_multiple_mvpps.dir/bench_fig6_multiple_mvpps.cpp.o"
  "CMakeFiles/bench_fig6_multiple_mvpps.dir/bench_fig6_multiple_mvpps.cpp.o.d"
  "bench_fig6_multiple_mvpps"
  "bench_fig6_multiple_mvpps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multiple_mvpps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
