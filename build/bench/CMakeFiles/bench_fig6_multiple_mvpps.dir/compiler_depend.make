# Empty compiler generated dependencies file for bench_fig6_multiple_mvpps.
# This may be replaced when dependencies are built.
