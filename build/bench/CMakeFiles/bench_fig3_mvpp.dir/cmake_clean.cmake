file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mvpp.dir/bench_fig3_mvpp.cpp.o"
  "CMakeFiles/bench_fig3_mvpp.dir/bench_fig3_mvpp.cpp.o.d"
  "bench_fig3_mvpp"
  "bench_fig3_mvpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mvpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
