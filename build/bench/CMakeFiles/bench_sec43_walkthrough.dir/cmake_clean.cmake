file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_walkthrough.dir/bench_sec43_walkthrough.cpp.o"
  "CMakeFiles/bench_sec43_walkthrough.dir/bench_sec43_walkthrough.cpp.o.d"
  "bench_sec43_walkthrough"
  "bench_sec43_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
