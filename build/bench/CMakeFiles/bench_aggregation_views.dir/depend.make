# Empty dependencies file for bench_aggregation_views.
# This may be replaced when dependencies are built.
