file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregation_views.dir/bench_aggregation_views.cpp.o"
  "CMakeFiles/bench_aggregation_views.dir/bench_aggregation_views.cpp.o.d"
  "bench_aggregation_views"
  "bench_aggregation_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregation_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
