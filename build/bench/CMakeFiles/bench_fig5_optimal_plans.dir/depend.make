# Empty dependencies file for bench_fig5_optimal_plans.
# This may be replaced when dependencies are built.
