# Empty compiler generated dependencies file for bench_fig7_fig8_pushdown.
# This may be replaced when dependencies are built.
