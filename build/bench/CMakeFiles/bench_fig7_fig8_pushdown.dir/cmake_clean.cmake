file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fig8_pushdown.dir/bench_fig7_fig8_pushdown.cpp.o"
  "CMakeFiles/bench_fig7_fig8_pushdown.dir/bench_fig7_fig8_pushdown.cpp.o.d"
  "bench_fig7_fig8_pushdown"
  "bench_fig7_fig8_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fig8_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
