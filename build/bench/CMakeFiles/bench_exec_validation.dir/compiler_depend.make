# Empty compiler generated dependencies file for bench_exec_validation.
# This may be replaced when dependencies are built.
