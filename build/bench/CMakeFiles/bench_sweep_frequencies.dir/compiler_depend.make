# Empty compiler generated dependencies file for bench_sweep_frequencies.
# This may be replaced when dependencies are built.
