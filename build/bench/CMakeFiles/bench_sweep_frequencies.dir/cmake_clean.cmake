file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_frequencies.dir/bench_sweep_frequencies.cpp.o"
  "CMakeFiles/bench_sweep_frequencies.dir/bench_sweep_frequencies.cpp.o.d"
  "bench_sweep_frequencies"
  "bench_sweep_frequencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_frequencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
