// Tests for src/cost: selectivity estimation, cardinality propagation,
// block accounting, operator costing — pinned against the paper's Table 1
// derived quantities where the paper states them.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/cost/cost_model.hpp"
#include "src/sql/parser.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : catalog_(make_paper_catalog()),
                    model_(catalog_, paper_cost_config()) {}

  PlanPtr scan(const std::string& rel) { return make_scan(catalog_, rel); }

  double selectivity(const std::string& rel, const std::string& pred) {
    const PlanPtr s = scan(rel);
    return model_.selectivity(
        bind_expr(parse_predicate(pred), s->output_schema()),
        model_.estimate(s));
  }

  Catalog catalog_;
  CostModel model_;
};

TEST_F(CostModelTest, ScanEstimateMatchesCatalog) {
  const NodeEstimate e = model_.estimate(scan("Product"));
  EXPECT_DOUBLE_EQ(e.rows, 30'000);
  EXPECT_DOUBLE_EQ(e.blocks, 3'000);
  EXPECT_EQ(e.bases, std::set<std::string>{"Product"});
  EXPECT_DOUBLE_EQ(e.distinct_of("Product.Did", 0), 5'000);
}

TEST_F(CostModelTest, EqualitySelectivityFromDistinct) {
  // Division.city has 50 distinct values -> paper's s = 0.02.
  EXPECT_DOUBLE_EQ(selectivity("Division", "city = 'LA'"), 0.02);
}

TEST_F(CostModelTest, RangeSelectivityInterpolates) {
  // quantity uniform on [1, 200]: > 100 is about half.
  EXPECT_NEAR(selectivity("Order", "quantity > 100"), 0.5, 0.01);
  EXPECT_NEAR(selectivity("Order", "quantity > 150"), 0.25, 0.01);
  EXPECT_NEAR(selectivity("Order", "quantity < 1"), 0.0, 0.01);
  EXPECT_NEAR(selectivity("Order", "quantity > 200"), 0.0, 0.01);
  // Out-of-range literals clamp.
  EXPECT_NEAR(selectivity("Order", "quantity > 1000"), 0.0, 0.01);
  EXPECT_NEAR(selectivity("Order", "quantity < 1000"), 1.0, 0.01);
}

TEST_F(CostModelTest, DateRangeSelectivity) {
  EXPECT_NEAR(selectivity("Order", "date > DATE '1996-07-01'"), 0.5, 0.01);
  EXPECT_NEAR(selectivity("Order", "date > DATE '1996-10-01'"), 0.25, 0.01);
}

TEST_F(CostModelTest, NotAndOrCombinators) {
  EXPECT_NEAR(selectivity("Order", "NOT quantity > 100"), 0.5, 0.01);
  EXPECT_NEAR(selectivity("Order", "quantity > 100 AND quantity > 150"),
              0.125, 0.01);  // independence assumption
  EXPECT_NEAR(selectivity("Order", "quantity > 100 OR quantity > 150"),
              0.627, 0.01);  // 1 - 0.5 * 0.75
  EXPECT_NEAR(selectivity("Division", "city <> 'LA'"), 0.98, 1e-9);
}

TEST_F(CostModelTest, DefaultsWhenStatsMissing) {
  // Part.supplier has distinct stats; use a column with none: make one.
  Catalog c(10.0);
  c.add_relation("T", Schema({{"x", ValueType::kInt64, ""}}), {.rows = 100});
  CostModel m(c, paper_cost_config());
  const PlanPtr s = make_scan(c, "T");
  // No distinct info: defaults to near-unique (rows), so eq -> 1/rows.
  EXPECT_DOUBLE_EQ(
      m.selectivity(bind_expr(parse_predicate("x = 5"), s->output_schema()),
                    m.estimate(s)),
      1.0 / 100);
  // No range info: default range selectivity.
  EXPECT_DOUBLE_EQ(
      m.selectivity(bind_expr(parse_predicate("x > 5"), s->output_schema()),
                    m.estimate(s)),
      paper_cost_config().default_range_selectivity);
}

TEST_F(CostModelTest, SelectEstimateShrinksRows) {
  const PlanPtr plan = make_select(scan("Division"),
                                   eq(col("city"), lit_str("LA")));
  const NodeEstimate e = model_.estimate(plan);
  EXPECT_DOUBLE_EQ(e.rows, 100);        // 5'000 * 0.02
  EXPECT_DOUBLE_EQ(e.selection_factor, 0.02);
  EXPECT_DOUBLE_EQ(e.distinct_of("Division.city", 0), 1);  // pinned value
  EXPECT_LE(e.distinct_of("Division.Did", 0), 100);        // clamped to rows
}

TEST_F(CostModelTest, JoinUsesOverrideScaledBySelections) {
  // Product |x| Division pinned at 30k rows / 5k blocks; with the city
  // selection only 2% survives.
  const PlanPtr plain = make_join(scan("Product"), scan("Division"),
                                  eq(col("Product.Did"), col("Division.Did")));
  EXPECT_DOUBLE_EQ(model_.estimate(plain).rows, 30'000);
  EXPECT_DOUBLE_EQ(model_.estimate(plain).blocks, 5'000);

  const PlanPtr selected = make_join(
      scan("Product"),
      make_select(scan("Division"), eq(col("city"), lit_str("LA"))),
      eq(col("Product.Did"), col("Division.Did")));
  EXPECT_DOUBLE_EQ(model_.estimate(selected).rows, 600);  // 30k * 0.02
  EXPECT_DOUBLE_EQ(model_.estimate(selected).blocks, 100);  // 5k scaled
}

TEST_F(CostModelTest, JoinWithoutOverrideUsesDistinctArithmetic) {
  CostModelConfig config = paper_cost_config();
  config.use_join_overrides = false;
  const CostModel m(catalog_, config);
  const PlanPtr join = make_join(scan("Product"), scan("Division"),
                                 eq(col("Product.Did"), col("Division.Did")));
  // 30k * 5k / max(5k, 5k) = 30k.
  EXPECT_DOUBLE_EQ(m.estimate(join).rows, 30'000);
  const PlanPtr oc = make_join(scan("Order"), scan("Customer"),
                               eq(col("Order.Cid"), col("Customer.Cid")));
  // 50k * 20k / 20k = 50k (the paper pins 25k instead — override wins
  // when enabled).
  EXPECT_DOUBLE_EQ(m.estimate(oc).rows, 50'000);
  EXPECT_DOUBLE_EQ(model_.estimate(oc).rows, 25'000);
}

TEST_F(CostModelTest, CrossJoinMultiplies) {
  CostModelConfig config = paper_cost_config();
  config.use_join_overrides = false;
  const CostModel m(catalog_, config);
  const PlanPtr cross = make_join(scan("Division"), scan("Customer"),
                                  lit(Value::boolean(true)));
  EXPECT_DOUBLE_EQ(m.estimate(cross).rows, 5'000.0 * 20'000.0);
}

TEST_F(CostModelTest, SelectOpCostHalfScanForEquality) {
  // Equality selection on Division: half of 500 blocks (the paper's
  // 0.25k for tmp1).
  const PlanPtr eq_sel = make_select(scan("Division"),
                                     eq(col("city"), lit_str("LA")));
  EXPECT_DOUBLE_EQ(model_.op_cost(eq_sel), 250);
  EXPECT_DOUBLE_EQ(model_.full_cost(eq_sel), 250);

  // Range selection pays the full scan.
  const PlanPtr range_sel = make_select(scan("Order"),
                                        gt(col("quantity"), lit_i64(100)));
  EXPECT_DOUBLE_EQ(model_.op_cost(range_sel), 6'000);
}

TEST_F(CostModelTest, HalfScanConfigurable) {
  CostModelConfig config = paper_cost_config();
  config.equality_select_half_scan = false;
  const CostModel m(catalog_, config);
  const PlanPtr eq_sel = make_select(scan("Division"),
                                     eq(col("city"), lit_str("LA")));
  EXPECT_DOUBLE_EQ(m.op_cost(eq_sel), 500);
}

TEST_F(CostModelTest, JoinOpCostBlockNestedLoop) {
  // Order |x| Customer: smaller side (2k) outer: 2k + 2k * 6k = 12.002m —
  // the paper's 12.03m for tmp4.
  const PlanPtr join = make_join(scan("Order"), scan("Customer"),
                                 eq(col("Order.Cid"), col("Customer.Cid")));
  EXPECT_DOUBLE_EQ(model_.op_cost(join), 2'000 + 2'000.0 * 6'000.0);
}

TEST_F(CostModelTest, FullCostAccumulatesSubtree) {
  // tmp2 of the paper: select (250) then join: outer = selected Division
  // (10 blocks): 10 + 10 * 3000 = 30'010; total 30'260.
  const PlanPtr tmp2 = make_join(
      scan("Product"),
      make_select(scan("Division"), eq(col("city"), lit_str("LA"))),
      eq(col("Product.Did"), col("Division.Did")));
  EXPECT_DOUBLE_EQ(model_.full_cost(tmp2), 250 + 10 + 10 * 3'000);
}

TEST_F(CostModelTest, BareScanFullCostIsItsBlocks) {
  EXPECT_DOUBLE_EQ(model_.full_cost(scan("Order")), 6'000);
}

TEST_F(CostModelTest, ProjectCostAndWidth) {
  const PlanPtr proj = make_project(scan("Product"), {"name"});
  EXPECT_DOUBLE_EQ(model_.op_cost(proj), 3'000);  // scan the input
  const NodeEstimate e = model_.estimate(proj);
  EXPECT_DOUBLE_EQ(e.rows, 30'000);
  EXPECT_LT(e.blocks, 3'000);  // narrower tuples pack denser
}

TEST_F(CostModelTest, IsPureEquality) {
  EXPECT_TRUE(is_pure_equality(parse_predicate("a = 1")));
  EXPECT_TRUE(is_pure_equality(parse_predicate("a = 1 AND b = 2")));
  EXPECT_FALSE(is_pure_equality(parse_predicate("a > 1")));
  EXPECT_FALSE(is_pure_equality(parse_predicate("a = 1 OR b = 2")));
  EXPECT_FALSE(is_pure_equality(parse_predicate("a = 1 AND b > 2")));
  EXPECT_FALSE(is_pure_equality(nullptr));
}

TEST_F(CostModelTest, BlocksForRespectsWidth) {
  EXPECT_DOUBLE_EQ(model_.blocks_for(0, 100), 0);
  EXPECT_GE(model_.blocks_for(1, 100), 1);
  // Twice the width, twice the blocks (same rows; widths dividing the
  // block size exactly, to avoid blocking-factor floor effects).
  EXPECT_NEAR(model_.blocks_for(100'000, 64) * 2,
              model_.blocks_for(100'000, 128), 2);
}

TEST_F(CostModelTest, EstimateOfNonCatalogScanThrows) {
  const PlanPtr named = make_named_scan(
      "view1", Schema({{"x", ValueType::kInt64, "view1"}}));
  EXPECT_THROW(model_.estimate(named), PlanError);
}

TEST_F(CostModelTest, NodeEstimateDistinctClamping) {
  NodeEstimate e;
  e.rows = 10;
  e.distinct["c"] = 1'000;
  EXPECT_DOUBLE_EQ(e.distinct_of("c", 5), 10);   // clamped to rows
  EXPECT_DOUBLE_EQ(e.distinct_of("zz", 5), 5);   // fallback
}

}  // namespace
}  // namespace mvd
