// Differential tests between the row engine and the vectorized engine:
// every generated workload must produce the same bag of rows under both,
// the vectorized engine must be bit-identical (including row order)
// across thread counts, and the two engines must agree on the stats the
// cost-model validation relies on (blocks_read, rows_out).
#include <gtest/gtest.h>

#include "src/algebra/query_spec.hpp"
#include "src/exec/executor.hpp"
#include "src/obs/metrics.hpp"
#include "src/optimizer/optimizer.hpp"
#include "src/workload/generator.hpp"

namespace mvd {
namespace {

/// Runs `plan` under the row engine and the vectorized engine at one and
/// four threads, asserting bag equivalence, cross-thread determinism and
/// stats parity.
void expect_engines_agree(const Database& db, const PlanPtr& plan) {
  SCOPED_TRACE(plan_tree_string(plan));
  const Executor row(db, ExecMode::kRow);
  const Executor vec1(db, ExecMode::kVectorized, 1);
  const Executor vec4(db, ExecMode::kVectorized, 4);

  ExecStats row_stats, vec1_stats, vec4_stats;
  const Table r = row.run(plan, &row_stats);
  const Table v1 = vec1.run(plan, &vec1_stats);
  const Table v4 = vec4.run(plan, &vec4_stats);

  EXPECT_TRUE(same_bag(r, v1));

  // Determinism: morsel boundaries are fixed and all merges happen in
  // morsel order, so thread count must not change even the row order.
  ASSERT_EQ(v1.row_count(), v4.row_count());
  for (std::size_t i = 0; i < v1.row_count(); ++i) {
    EXPECT_TRUE(v1.row(i) == v4.row(i)) << "row " << i << " differs";
  }

  // Both engines charge the same block formulas per operator, so the
  // validation bench sees identical I/O accounting either way.
  EXPECT_DOUBLE_EQ(row_stats.blocks_read, vec1_stats.blocks_read);
  EXPECT_EQ(row_stats.rows_out, vec1_stats.rows_out);
  EXPECT_DOUBLE_EQ(row_stats.rows_scanned, vec1_stats.rows_scanned);

  // Thread count must not change any recorded stat.
  EXPECT_DOUBLE_EQ(vec1_stats.blocks_read, vec4_stats.blocks_read);
  EXPECT_DOUBLE_EQ(vec1_stats.rows_scanned, vec4_stats.rows_scanned);
  EXPECT_DOUBLE_EQ(vec1_stats.batches, vec4_stats.batches);
  EXPECT_EQ(vec1_stats.rows_out, vec4_stats.rows_out);
}

TEST(ExecEquivalenceTest, StarWorkloadCanonicalAndOptimizedPlans) {
  StarSchemaOptions schema;
  schema.dimensions = 3;
  schema.fact_rows = 2'000;
  schema.dimension_rows = 200;
  const Database db = populate_star_database(schema, 21);
  const Catalog catalog = catalog_from_database(db, 10.0);

  StarQueryOptions queries;
  queries.count = 8;
  queries.max_dimensions = 3;
  queries.aggregation_probability = 0.5;  // mix SPJ and rollup queries
  queries.seed = 33;
  const CostModel cost_model(catalog, {});
  const Optimizer optimizer(cost_model);
  for (const QuerySpec& q : generate_star_queries(catalog, schema, queries)) {
    expect_engines_agree(db, canonical_plan(catalog, q));
    expect_engines_agree(db, optimizer.optimize(q));
  }
}

TEST(ExecEquivalenceTest, ChainWorkload) {
  ChainSchemaOptions schema;
  schema.length = 4;
  schema.rows = 1'000;
  const Database db = populate_chain_database(schema, 5);
  const Catalog catalog = catalog_from_database(db, 10.0);

  ChainQueryOptions queries;
  queries.count = 6;
  queries.max_span = 4;
  const CostModel cost_model(catalog, {});
  const Optimizer optimizer(cost_model);
  for (const QuerySpec& q : generate_chain_queries(catalog, schema, queries)) {
    expect_engines_agree(db, canonical_plan(catalog, q));
    expect_engines_agree(db, optimizer.optimize(q));
  }
}

class ExecEquivalenceEdgeTest : public ::testing::Test {
 protected:
  ExecEquivalenceEdgeTest() {
    Table t(Schema({{"k", ValueType::kInt64, ""},
                    {"name", ValueType::kString, ""},
                    {"x", ValueType::kDouble, ""}}),
            10.0);
    t.append({Value::int64(1), Value::string("a"), Value::real(1.5)});
    t.append({Value::int64(2), Value::string("b"), Value::real(2.5)});
    t.append({Value::int64(2), Value::string("c"), Value::real(3.5)});
    db_.add_table("T", std::move(t));
    Table s(Schema({{"k", ValueType::kInt64, ""},
                    {"tag", ValueType::kString, ""}}),
            10.0);
    s.append({Value::int64(1), Value::string("x")});
    s.append({Value::int64(2), Value::string("y")});
    s.append({Value::int64(3), Value::string("z")});
    db_.add_table("S", std::move(s));
    db_.add_table("Empty", Table(Schema({{"k", ValueType::kInt64, ""},
                                         {"y", ValueType::kInt64, ""}}),
                                 10.0));
    for (const char* name : {"T", "S", "Empty"}) {
      catalog_.add_relation(name, db_.table(name).schema(),
                            db_.table(name).compute_stats());
    }
  }

  Database db_;
  Catalog catalog_{10.0};
};

TEST_F(ExecEquivalenceEdgeTest, GlobalAggregateOverEmptyInput) {
  // SQL semantics: one output row (COUNT 0, SUM 0) even with no input.
  const PlanPtr plan = make_aggregate(
      make_scan(catalog_, "Empty"), {},
      {AggSpec{AggFn::kCount, "", ""}, AggSpec{AggFn::kSum, "Empty.y", ""}});
  expect_engines_agree(db_, plan);
  const Executor vec(db_, ExecMode::kVectorized, 4);
  const Table out = vec.run(plan);
  ASSERT_EQ(out.row_count(), 1u);
  EXPECT_EQ(out.row(0)[0].as_int64(), 0);
}

TEST_F(ExecEquivalenceEdgeTest, GroupedAggregateOverEmptyInput) {
  // With GROUP BY, an empty input yields an empty output.
  const PlanPtr plan = make_aggregate(make_scan(catalog_, "Empty"),
                                      {"Empty.k"},
                                      {AggSpec{AggFn::kCount, "", ""}});
  expect_engines_agree(db_, plan);
  const Executor vec(db_, ExecMode::kVectorized, 4);
  EXPECT_EQ(vec.run(plan).row_count(), 0u);
}

TEST_F(ExecEquivalenceEdgeTest, SelectWithNoSurvivors) {
  expect_engines_agree(db_, make_select(make_scan(catalog_, "T"),
                                        gt(col("T.k"), lit_i64(100))));
}

TEST_F(ExecEquivalenceEdgeTest, HashJoinWithEmptySide) {
  expect_engines_agree(db_, make_join(make_scan(catalog_, "T"),
                                      make_scan(catalog_, "Empty"),
                                      eq(col("T.k"), col("Empty.k"))));
}

TEST_F(ExecEquivalenceEdgeTest, CrossJoin) {
  expect_engines_agree(db_, make_join(make_scan(catalog_, "T"),
                                      make_scan(catalog_, "S"),
                                      lit(Value::boolean(true))));
}

TEST_F(ExecEquivalenceEdgeTest, ThetaJoinTakesNestedLoop) {
  expect_engines_agree(db_, make_join(make_scan(catalog_, "T"),
                                      make_scan(catalog_, "S"),
                                      lt(col("T.k"), col("S.k"))));
}

TEST_F(ExecEquivalenceEdgeTest, EquiJoinWithResidual) {
  expect_engines_agree(
      db_, make_join(make_scan(catalog_, "T"), make_scan(catalog_, "S"),
                     conj({eq(col("T.k"), col("S.k")),
                           cmp(CompareOp::kNe, col("S.tag"),
                               lit_str("x"))})));
}

TEST_F(ExecEquivalenceEdgeTest, MinMaxOnStringsAndDoubles) {
  const PlanPtr plan = make_aggregate(
      make_scan(catalog_, "T"), {"T.k"},
      {AggSpec{AggFn::kMin, "T.name", ""}, AggSpec{AggFn::kMax, "T.x", ""},
       AggSpec{AggFn::kSum, "T.x", ""}});
  expect_engines_agree(db_, plan);
}

// Per-operator accounting parity through the metrics registry: with
// counters on, both engines publish engine-agnostic totals under
// "exec/op/<name>/..." — the registry diff around a run must agree
// exactly between the row and vectorized engines, operator by operator
// (a finer-grained check than the whole-run ExecStats asserts above).
TEST(ExecEquivalenceTest, RegistryPerOperatorStatsParity) {
  set_trace_level(TraceLevel::kCounters);
  StarSchemaOptions schema;
  schema.dimensions = 2;
  schema.fact_rows = 1'500;
  schema.dimension_rows = 120;
  const Database db = populate_star_database(schema, 11);
  const Catalog catalog = catalog_from_database(db, 10.0);

  StarQueryOptions queries;
  queries.count = 4;
  queries.max_dimensions = 2;
  queries.aggregation_probability = 0.5;
  queries.seed = 7;
  const CostModel cost_model(catalog, {});
  const Optimizer optimizer(cost_model);

  const Executor row_exec(db, ExecMode::kRow);
  const Executor vec_exec(db, ExecMode::kVectorized, 4);
  const auto run_delta = [&](const Executor& exec, const PlanPtr& plan) {
    const MetricsSnapshot before = MetricsRegistry::global().snapshot();
    exec.run(plan);
    return MetricsRegistry::global().snapshot().diff(before);
  };

  for (const QuerySpec& q : generate_star_queries(catalog, schema, queries)) {
    for (const PlanPtr& plan :
         {canonical_plan(catalog, q), optimizer.optimize(q)}) {
      SCOPED_TRACE(plan_tree_string(plan));
      const MetricsSnapshot r = run_delta(row_exec, plan);
      const MetricsSnapshot v = run_delta(vec_exec, plan);
      for (const char* op : {"scan", "select", "project", "join",
                             "aggregate"}) {
        for (const char* stat : {"blocks_read", "rows_scanned"}) {
          const std::string name =
              std::string("exec/op/") + op + "/" + stat;
          EXPECT_DOUBLE_EQ(r.value_of(name).value_or(0),
                           v.value_of(name).value_or(0))
              << name;
        }
      }
      EXPECT_DOUBLE_EQ(r.value_of("exec/total/blocks_read").value_or(0),
                       v.value_of("exec/total/blocks_read").value_or(0));
      EXPECT_DOUBLE_EQ(r.value_of("exec/total/rows_scanned").value_or(0),
                       v.value_of("exec/total/rows_scanned").value_or(0));
      EXPECT_DOUBLE_EQ(r.value_of("exec/row/runs").value_or(0), 1.0);
      EXPECT_DOUBLE_EQ(v.value_of("exec/vec/runs").value_or(0), 1.0);
    }
  }
  set_trace_level(std::nullopt);
}

// Small fixture exercised under ThreadSanitizer in CI: a join + aggregate
// pipeline over enough rows for several morsels, run at four threads.
TEST(ExecEngineTsanTest, ParallelPipelineIsRaceFreeAndDeterministic) {
  StarSchemaOptions schema;
  schema.dimensions = 2;
  schema.fact_rows = 6'000;  // three morsels of fact rows
  schema.dimension_rows = 100;
  const Database db = populate_star_database(schema, 9);
  const Catalog catalog = catalog_from_database(db, 10.0);

  const PlanPtr plan = make_aggregate(
      make_select(make_join(make_scan(catalog, "Fact"),
                            make_scan(catalog, "Dim0"),
                            eq(col("Fact.d0"), col("Dim0.id"))),
                  gt(col("Fact.measure"), lit_i64(200))),
      {"Dim0.category"},
      {AggSpec{AggFn::kSum, "Fact.measure", ""},
       AggSpec{AggFn::kCount, "", ""}});

  const Executor vec1(db, ExecMode::kVectorized, 1);
  const Executor vec4(db, ExecMode::kVectorized, 4);
  const Table a = vec1.run(plan);
  const Table b = vec4.run(plan);
  ASSERT_EQ(a.row_count(), b.row_count());
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    EXPECT_TRUE(a.row(i) == b.row(i));
  }
}

}  // namespace
}  // namespace mvd
