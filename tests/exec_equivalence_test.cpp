// Differential tests between the row engine, the interpreted vectorized
// engine, and the fused kernel engine: every generated workload must
// produce the same bag of rows under all three, the batch engines must be
// bit-identical (including row order) to each other and across thread
// counts, and all engines must agree on the stats the cost-model
// validation relies on (blocks_read, rows_out).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <set>

#include "src/algebra/query_spec.hpp"
#include "src/check/check.hpp"
#include "src/exec/executor.hpp"
#include "src/exec/fused.hpp"
#include "src/exec/sharded.hpp"
#include "src/obs/metrics.hpp"
#include "src/optimizer/optimizer.hpp"
#include "src/workload/generator.hpp"

namespace mvd {
namespace {

/// mvcheck's static fusability verdicts must agree with the runtime
/// detector on *every* node of the plan DAG, and when a chain compiles
/// the prediction must mirror its shape exactly.
void expect_fusability_agreement(const PlanPtr& plan) {
  const auto uses = plan_use_counts(plan);
  std::set<const LogicalOp*> seen;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& node) {
    if (!seen.insert(node.get()).second) return;
    for (const PlanPtr& child : node->children()) walk(child);
    const FusePrediction pred = predict_fused_chain(node, uses);
    const std::optional<FusedChain> chain = detect_fused_chain(node, uses);
    ASSERT_EQ(pred.fusable, chain.has_value())
        << node->label() << ": " << pred.refusal;
    if (chain.has_value()) {
      EXPECT_TRUE(pred.refusal.empty());
      EXPECT_EQ(pred.source.get(), chain->source.get()) << node->label();
      EXPECT_EQ(pred.stage_count, chain->stages.size()) << node->label();
      EXPECT_EQ(pred.select_count, chain->select_count) << node->label();
      EXPECT_TRUE(pred.out_schema == chain->out_schema) << node->label();
    } else {
      EXPECT_FALSE(pred.refusal.empty()) << node->label();
    }
  };
  walk(plan);

  // The per-segment walk must name exactly the select/project heads the
  // fused engine would visit, each agreeing with the direct detector.
  for (const ChainSegment& seg : predict_engine_segments(plan)) {
    ASSERT_NE(seg.head, nullptr);
    EXPECT_TRUE(seg.head->kind() == OpKind::kSelect ||
                seg.head->kind() == OpKind::kProject);
  }
}

/// The static cardinality intervals must contain the rows every engine
/// actually produced, node by node.
void expect_cardinality_bounds(const Database& db, const PlanPtr& plan,
                               const ExecStats& stats) {
  CheckOptions opts;
  opts.database = &db;
  opts.fusability = false;
  opts.maintainability = false;
  const CheckReport report = check_plan(plan, opts);
  EXPECT_TRUE(report.ok()) << report.render_text();
  for (const auto& [label, rows] : stats.rows_out) {
    const auto bounds = report.card_of(label);
    ASSERT_TRUE(bounds.has_value()) << label;
    EXPECT_TRUE(bounds->contains(rows))
        << label << ": " << rows << " outside [" << bounds->lo << ", "
        << bounds->hi << "]";
  }
}

void expect_rows_identical(const Table& a, const Table& b, const char* what) {
  ASSERT_EQ(a.row_count(), b.row_count()) << what;
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    ASSERT_TRUE(a.row(i) == b.row(i)) << what << ": row " << i << " differs";
  }
}

void expect_stats_identical(const ExecStats& a, const ExecStats& b,
                            const char* what) {
  EXPECT_DOUBLE_EQ(a.blocks_read, b.blocks_read) << what;
  EXPECT_DOUBLE_EQ(a.rows_scanned, b.rows_scanned) << what;
  EXPECT_DOUBLE_EQ(a.batches, b.batches) << what;
  EXPECT_EQ(a.rows_out, b.rows_out) << what;
  EXPECT_DOUBLE_EQ(a.rows_exchanged, b.rows_exchanged) << what;
  EXPECT_DOUBLE_EQ(a.blocks_exchanged, b.blocks_exchanged) << what;
}

/// Runs `plan` under the row engine and both batch engines (interpreted
/// and fused) at one and four threads, asserting bag equivalence,
/// cross-engine and cross-thread bit-identical output, and stats parity.
void expect_engines_agree(const Database& db, const PlanPtr& plan) {
  SCOPED_TRACE(plan_tree_string(plan));
  const Executor row(db, ExecMode::kRow);
  const Executor vec1(db, ExecMode::kVectorized, 1);
  const Executor vec4(db, ExecMode::kVectorized, 4);
  const Executor fused1(db, ExecMode::kFused, 1);
  const Executor fused4(db, ExecMode::kFused, 4);

  ExecStats row_stats, vec1_stats, vec4_stats, fused1_stats, fused4_stats;
  const Table r = row.run(plan, &row_stats);
  const Table v1 = vec1.run(plan, &vec1_stats);
  const Table v4 = vec4.run(plan, &vec4_stats);
  const Table f1 = fused1.run(plan, &fused1_stats);
  const Table f4 = fused4.run(plan, &fused4_stats);

  EXPECT_TRUE(same_bag(r, v1));
  EXPECT_TRUE(same_bag(r, f1));

  // Determinism: morsel boundaries are fixed and all merges happen in
  // morsel order, so neither thread count nor the kernel layer may change
  // even the row order of the batch engines.
  expect_rows_identical(v1, v4, "vec 1 vs 4 threads");
  expect_rows_identical(v1, f1, "vec vs fused");
  expect_rows_identical(f1, f4, "fused 1 vs 4 threads");

  // Both engines charge the same block formulas per operator, so the
  // validation bench sees identical I/O accounting either way.
  EXPECT_DOUBLE_EQ(row_stats.blocks_read, vec1_stats.blocks_read);
  EXPECT_EQ(row_stats.rows_out, vec1_stats.rows_out);
  EXPECT_DOUBLE_EQ(row_stats.rows_scanned, vec1_stats.rows_scanned);

  // Neither thread count nor the kernel layer may change a recorded stat.
  expect_stats_identical(vec1_stats, vec4_stats, "vec 1 vs 4 threads");
  expect_stats_identical(vec1_stats, fused1_stats, "vec vs fused");
  expect_stats_identical(fused1_stats, fused4_stats, "fused 1 vs 4 threads");

  // Static analysis rides along on every differential plan: fusability
  // verdicts match the runtime detector, and the recorded per-node rows
  // land inside mvcheck's cardinality intervals.
  expect_fusability_agreement(plan);
  expect_cardinality_bounds(db, plan, row_stats);
}

/// Runs `plan` through the sharded layer at shards {1, 4} x threads
/// {1, 4} x all three engines, asserting: same bag as unsharded row
/// execution, bit-identical output across every sharded configuration
/// (the bucket-order merge contract), vec == fused bit-identical, and
/// stats parity — row vs vec accounting agrees per configuration, and
/// for non-routed plans every (shards x threads) cell records identical
/// totals (routed point queries legitimately skip shards, changing the
/// block counts).
void expect_sharded_agree(const Database& db, const PlanPtr& plan,
                          const std::map<std::string, std::string>& keys) {
  SCOPED_TRACE(plan_tree_string(plan));
  const Executor row(db, ExecMode::kRow);
  const Table reference = row.run(plan);

  std::optional<Table> first;
  std::optional<ExecStats> first_stats;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    ShardedDatabase sdb = shard_database(db, shards, keys);
    const bool routed = analyze_shard_plan(plan, sdb).route_bucket.has_value();
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      const ShardedExecutor srow(sdb, ExecMode::kRow, threads);
      const ShardedExecutor svec(sdb, ExecMode::kVectorized, threads);
      const ShardedExecutor sfused(sdb, ExecMode::kFused, threads);
      ExecStats row_stats, vec_stats, fused_stats;
      const Table r = srow.run(plan, &row_stats);
      const Table v = svec.run(plan, &vec_stats);
      const Table f = sfused.run(plan, &fused_stats);

      EXPECT_TRUE(same_bag(reference, r));
      EXPECT_TRUE(same_bag(reference, v));
      expect_rows_identical(v, f, "sharded vec vs fused");
      EXPECT_DOUBLE_EQ(row_stats.blocks_read, vec_stats.blocks_read);
      EXPECT_EQ(row_stats.rows_out, vec_stats.rows_out);
      EXPECT_DOUBLE_EQ(row_stats.rows_scanned, vec_stats.rows_scanned);

      if (!first.has_value()) {
        first = v;
        if (!routed) first_stats = vec_stats;
      } else {
        expect_rows_identical(*first, v,
                              "sharded vec across (shards x threads)");
        if (!routed && first_stats.has_value()) {
          expect_stats_identical(*first_stats, vec_stats,
                                 "sharded vec across (shards x threads)");
        }
      }
    }
  }
}

TEST(ExecEquivalenceTest, StarWorkloadCanonicalAndOptimizedPlans) {
  StarSchemaOptions schema;
  schema.dimensions = 3;
  schema.fact_rows = 2'000;
  schema.dimension_rows = 200;
  const Database db = populate_star_database(schema, 21);
  const Catalog catalog = catalog_from_database(db, 10.0);

  StarQueryOptions queries;
  queries.count = 8;
  queries.max_dimensions = 3;
  queries.aggregation_probability = 0.5;  // mix SPJ and rollup queries
  queries.seed = 33;
  const CostModel cost_model(catalog, {});
  const Optimizer optimizer(cost_model);
  for (const QuerySpec& q : generate_star_queries(catalog, schema, queries)) {
    expect_engines_agree(db, canonical_plan(catalog, q));
    expect_engines_agree(db, optimizer.optimize(q));
  }
}

TEST(ExecEquivalenceTest, ChainWorkload) {
  ChainSchemaOptions schema;
  schema.length = 4;
  schema.rows = 1'000;
  const Database db = populate_chain_database(schema, 5);
  const Catalog catalog = catalog_from_database(db, 10.0);

  ChainQueryOptions queries;
  queries.count = 6;
  queries.max_span = 4;
  const CostModel cost_model(catalog, {});
  const Optimizer optimizer(cost_model);
  for (const QuerySpec& q : generate_chain_queries(catalog, schema, queries)) {
    expect_engines_agree(db, canonical_plan(catalog, q));
    expect_engines_agree(db, optimizer.optimize(q));
  }
}

class ExecEquivalenceEdgeTest : public ::testing::Test {
 protected:
  ExecEquivalenceEdgeTest() {
    Table t(Schema({{"k", ValueType::kInt64, ""},
                    {"name", ValueType::kString, ""},
                    {"x", ValueType::kDouble, ""}}),
            10.0);
    t.append({Value::int64(1), Value::string("a"), Value::real(1.5)});
    t.append({Value::int64(2), Value::string("b"), Value::real(2.5)});
    t.append({Value::int64(2), Value::string("c"), Value::real(3.5)});
    db_.add_table("T", std::move(t));
    Table s(Schema({{"k", ValueType::kInt64, ""},
                    {"tag", ValueType::kString, ""}}),
            10.0);
    s.append({Value::int64(1), Value::string("x")});
    s.append({Value::int64(2), Value::string("y")});
    s.append({Value::int64(3), Value::string("z")});
    db_.add_table("S", std::move(s));
    db_.add_table("Empty", Table(Schema({{"k", ValueType::kInt64, ""},
                                         {"y", ValueType::kInt64, ""}}),
                                 10.0));
    for (const char* name : {"T", "S", "Empty"}) {
      catalog_.add_relation(name, db_.table(name).schema(),
                            db_.table(name).compute_stats());
    }
  }

  Database db_;
  Catalog catalog_{10.0};
};

TEST_F(ExecEquivalenceEdgeTest, GlobalAggregateOverEmptyInput) {
  // SQL semantics: one output row (COUNT 0, SUM 0) even with no input.
  const PlanPtr plan = make_aggregate(
      make_scan(catalog_, "Empty"), {},
      {AggSpec{AggFn::kCount, "", ""}, AggSpec{AggFn::kSum, "Empty.y", ""}});
  expect_engines_agree(db_, plan);
  const Executor vec(db_, ExecMode::kVectorized, 4);
  const Table out = vec.run(plan);
  ASSERT_EQ(out.row_count(), 1u);
  EXPECT_EQ(out.row(0)[0].as_int64(), 0);
}

TEST_F(ExecEquivalenceEdgeTest, GroupedAggregateOverEmptyInput) {
  // With GROUP BY, an empty input yields an empty output.
  const PlanPtr plan = make_aggregate(make_scan(catalog_, "Empty"),
                                      {"Empty.k"},
                                      {AggSpec{AggFn::kCount, "", ""}});
  expect_engines_agree(db_, plan);
  const Executor vec(db_, ExecMode::kVectorized, 4);
  EXPECT_EQ(vec.run(plan).row_count(), 0u);
}

TEST_F(ExecEquivalenceEdgeTest, SelectWithNoSurvivors) {
  expect_engines_agree(db_, make_select(make_scan(catalog_, "T"),
                                        gt(col("T.k"), lit_i64(100))));
}

TEST_F(ExecEquivalenceEdgeTest, HashJoinWithEmptySide) {
  expect_engines_agree(db_, make_join(make_scan(catalog_, "T"),
                                      make_scan(catalog_, "Empty"),
                                      eq(col("T.k"), col("Empty.k"))));
}

TEST_F(ExecEquivalenceEdgeTest, CrossJoin) {
  expect_engines_agree(db_, make_join(make_scan(catalog_, "T"),
                                      make_scan(catalog_, "S"),
                                      lit(Value::boolean(true))));
}

TEST_F(ExecEquivalenceEdgeTest, ThetaJoinTakesNestedLoop) {
  expect_engines_agree(db_, make_join(make_scan(catalog_, "T"),
                                      make_scan(catalog_, "S"),
                                      lt(col("T.k"), col("S.k"))));
}

TEST_F(ExecEquivalenceEdgeTest, EquiJoinWithResidual) {
  expect_engines_agree(
      db_, make_join(make_scan(catalog_, "T"), make_scan(catalog_, "S"),
                     conj({eq(col("T.k"), col("S.k")),
                           cmp(CompareOp::kNe, col("S.tag"),
                               lit_str("x"))})));
}

TEST_F(ExecEquivalenceEdgeTest, MinMaxOnStringsAndDoubles) {
  const PlanPtr plan = make_aggregate(
      make_scan(catalog_, "T"), {"T.k"},
      {AggSpec{AggFn::kMin, "T.name", ""}, AggSpec{AggFn::kMax, "T.x", ""},
       AggSpec{AggFn::kSum, "T.x", ""}});
  expect_engines_agree(db_, plan);
}

// Per-operator accounting parity through the metrics registry: with
// counters on, both engines publish engine-agnostic totals under
// "exec/op/<name>/..." — the registry diff around a run must agree
// exactly between the row and vectorized engines, operator by operator
// (a finer-grained check than the whole-run ExecStats asserts above).
TEST(ExecEquivalenceTest, RegistryPerOperatorStatsParity) {
  set_trace_level(TraceLevel::kCounters);
  StarSchemaOptions schema;
  schema.dimensions = 2;
  schema.fact_rows = 1'500;
  schema.dimension_rows = 120;
  const Database db = populate_star_database(schema, 11);
  const Catalog catalog = catalog_from_database(db, 10.0);

  StarQueryOptions queries;
  queries.count = 4;
  queries.max_dimensions = 2;
  queries.aggregation_probability = 0.5;
  queries.seed = 7;
  const CostModel cost_model(catalog, {});
  const Optimizer optimizer(cost_model);

  const Executor row_exec(db, ExecMode::kRow);
  const Executor vec_exec(db, ExecMode::kVectorized, 4);
  const auto run_delta = [&](const Executor& exec, const PlanPtr& plan) {
    const MetricsSnapshot before = MetricsRegistry::global().snapshot();
    exec.run(plan);
    return MetricsRegistry::global().snapshot().diff(before);
  };

  for (const QuerySpec& q : generate_star_queries(catalog, schema, queries)) {
    for (const PlanPtr& plan :
         {canonical_plan(catalog, q), optimizer.optimize(q)}) {
      SCOPED_TRACE(plan_tree_string(plan));
      const MetricsSnapshot r = run_delta(row_exec, plan);
      const MetricsSnapshot v = run_delta(vec_exec, plan);
      for (const char* op : {"scan", "select", "project", "join",
                             "aggregate"}) {
        for (const char* stat : {"blocks_read", "rows_scanned"}) {
          const std::string name =
              std::string("exec/op/") + op + "/" + stat;
          EXPECT_DOUBLE_EQ(r.value_of(name).value_or(0),
                           v.value_of(name).value_or(0))
              << name;
        }
      }
      EXPECT_DOUBLE_EQ(r.value_of("exec/total/blocks_read").value_or(0),
                       v.value_of("exec/total/blocks_read").value_or(0));
      EXPECT_DOUBLE_EQ(r.value_of("exec/total/rows_scanned").value_or(0),
                       v.value_of("exec/total/rows_scanned").value_or(0));
      EXPECT_DOUBLE_EQ(r.value_of("exec/row/runs").value_or(0), 1.0);
      EXPECT_DOUBLE_EQ(v.value_of("exec/vec/runs").value_or(0), 1.0);
    }
  }
  set_trace_level(std::nullopt);
}

// Randomized differential fuzzing across all three engines: random
// select/project chains (fusable and unfusable predicates alike),
// equi-joins and aggregates over mixed column types, run row vs
// interpreted-vec vs fused at 1 and 4 threads via expect_engines_agree.
// NaN is deliberately excluded from the data (Value::compare ordering on
// NaN is unspecified between engines); -0.0 is included.
TEST(ExecEquivalenceTest, RandomizedChainFuzz) {
  std::mt19937 rng(20260807);

  Database db;
  Table f(Schema({{"a", ValueType::kInt64, ""},
                  {"b", ValueType::kDouble, ""},
                  {"s", ValueType::kString, ""},
                  {"flag", ValueType::kBool, ""},
                  {"c", ValueType::kInt64, ""},
                  {"d", ValueType::kDate, ""}}),
          10.0);
  const char* words[] = {"red", "green", "blue", "cyan", "teal"};
  std::uniform_int_distribution<int> ai(0, 50), ci(-20, 20), wi(0, 4),
      bi(0, 1), di(18'000, 18'030);
  std::uniform_real_distribution<double> bd(-5.0, 5.0);
  for (int i = 0; i < 5'000; ++i) {  // three morsels
    double b = bd(rng);
    if (i % 97 == 0) b = -0.0;  // exercise signed-zero key handling
    f.append({Value::int64(ai(rng)), Value::real(b),
              Value::string(words[wi(rng)]), Value::boolean(bi(rng) == 1),
              Value::int64(ci(rng)), Value::date(di(rng))});
  }
  db.add_table("F", std::move(f));
  Table d(Schema({{"key", ValueType::kInt64, ""},
                  {"weight", ValueType::kDouble, ""},
                  {"tag", ValueType::kString, ""}}),
          10.0);
  for (int i = 0; i < 300; ++i) {
    d.append({Value::int64(i % 60), Value::real(bd(rng)),
              Value::string(words[wi(rng)])});
  }
  db.add_table("D", std::move(d));
  Catalog catalog(10.0);
  for (const char* name : {"F", "D"}) {
    catalog.add_relation(name, db.table(name).schema(),
                         db.table(name).compute_stats());
  }

  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  auto any_op = [&] { return ops[rng() % 6]; };
  const std::vector<std::string> f_cols = {"F.a", "F.b", "F.s",
                                           "F.flag", "F.c", "F.d"};

  for (int iter = 0; iter < 40; ++iter) {
    SCOPED_TRACE("fuzz iteration " + std::to_string(iter));
    PlanPtr plan = make_scan(catalog, "F");
    // Random select/project chain, 1-4 operators deep. Projects drop a
    // random suffix of the live columns ("F.a" always survives, the join
    // below needs it); selects draw conjuncts over whatever is live.
    std::vector<std::string> live = f_cols;
    auto has = [&](const char* c) {
      return std::find(live.begin(), live.end(), c) != live.end();
    };
    // One random conjunct over the live columns: mostly typed kernel
    // shapes, sometimes a bool comparison (interpreted fallback inside
    // the vec engine, refused by the chain detector).
    auto random_conjunct = [&]() -> ExprPtr {
      while (true) {
        switch (rng() % 8) {
          case 0:
            return cmp(any_op(), col("F.a"), lit_i64(ai(rng)));
          case 1:
            if (has("F.b")) return cmp(any_op(), col("F.b"),
                                       lit_real(bd(rng)));
            break;
          case 2:
            if (has("F.s")) return cmp(any_op(), col("F.s"),
                                       lit_str(words[wi(rng)]));
            break;
          case 3:
            if (has("F.c")) return cmp(any_op(), col("F.a"), col("F.c"));
            break;
          case 4:
            if (has("F.b")) return cmp(any_op(), col("F.b"), col("F.a"));
            break;
          case 5:  // flipped literal-first date comparison
            if (has("F.d")) return cmp(any_op(), lit_i64(di(rng)),
                                       col("F.d"));
            break;
          case 6:
            if (has("F.flag")) return cmp(any_op(), col("F.flag"),
                                          lit(Value::boolean(true)));
            break;
          default:
            if (has("F.c")) return cmp(any_op(), col("F.c"),
                                       lit_i64(ci(rng)));
            break;
        }
      }
    };
    const int chain_len = 1 + static_cast<int>(rng() % 4);
    for (int o = 0; o < chain_len; ++o) {
      if (rng() % 3 == 0 && live.size() > 2) {
        std::shuffle(live.begin() + 1, live.end(), rng);
        live.resize(2 + rng() % (live.size() - 1));
        plan = make_project(plan, live);
      } else {
        std::vector<ExprPtr> cs;
        const int nc = 1 + static_cast<int>(rng() % 3);
        for (int c = 0; c < nc; ++c) cs.push_back(random_conjunct());
        plan = make_select(plan, conj(std::move(cs)));
      }
    }
    if (rng() % 2 == 0) {
      plan = make_join(plan, make_scan(catalog, "D"),
                       eq(col("F.a"), col("D.key")));
      if (rng() % 2 == 0) {
        plan = make_select(plan, cmp(any_op(), col("D.weight"),
                                     lit_real(bd(rng))));
      }
    }
    if (rng() % 3 == 0) {
      const AggFn fns[] = {AggFn::kCount, AggFn::kSum, AggFn::kAvg,
                           AggFn::kMin, AggFn::kMax};
      const AggFn fn = fns[rng() % 5];
      const std::string agg_col =
          fn == AggFn::kCount ? std::string()
                              : (has("F.b") ? "F.b" : "F.a");
      std::vector<std::string> group_candidates = {"F.a"};
      for (const char* g : {"F.b", "F.flag", "F.c"}) {
        if (has(g)) group_candidates.push_back(g);
      }
      plan = make_aggregate(
          plan, {group_candidates[rng() % group_candidates.size()]},
          {AggSpec{fn, agg_col, "agg"}});
    }
    expect_engines_agree(db, plan);
  }
}

// The sharded layer joins the differential matrix: the same star
// workload, run at shards {1, 4} x threads {1, 4} x all three engines
// through ShardedExecutor over a Fact-partitioned layout.
TEST(ShardedExecEquivalenceTest, StarWorkloadShardsTimesThreads) {
  StarSchemaOptions schema;
  schema.dimensions = 3;
  schema.fact_rows = 2'000;
  schema.dimension_rows = 200;
  const Database db = populate_star_database(schema, 21);
  const Catalog catalog = catalog_from_database(db, 10.0);

  StarQueryOptions queries;
  queries.count = 6;
  queries.max_dimensions = 3;
  queries.aggregation_probability = 0.5;
  queries.seed = 33;
  const CostModel cost_model(catalog, {});
  const Optimizer optimizer(cost_model);
  const std::map<std::string, std::string> keys{{"Fact", "d0"}};
  for (const QuerySpec& q : generate_star_queries(catalog, schema, queries)) {
    expect_sharded_agree(db, canonical_plan(catalog, q), keys);
    expect_sharded_agree(db, optimizer.optimize(q), keys);
  }
}

// A routed point query — equality on the partition key directly above
// the fact scan — must return the same rows at every shard count while
// touching fewer blocks as the shard count grows (the skipped shards are
// where the single-core speedup comes from).
TEST(ShardedExecEquivalenceTest, RoutedPointQueryScansFewerBlocks) {
  StarSchemaOptions schema;
  schema.dimensions = 2;
  schema.fact_rows = 4'000;
  schema.dimension_rows = 100;
  const Database db = populate_star_database(schema, 13);
  const Catalog catalog = catalog_from_database(db, 10.0);
  const std::map<std::string, std::string> keys{{"Fact", "d0"}};

  const PlanPtr plan =
      make_select(make_scan(catalog, "Fact"), eq(col("Fact.d0"), lit_i64(7)));

  ShardedDatabase one = shard_database(db, 1, keys);
  ShardedDatabase eight = shard_database(db, 8, keys);
  ASSERT_TRUE(analyze_shard_plan(plan, eight).route_bucket.has_value());

  ExecStats stats1, stats8;
  const Table a = ShardedExecutor(one, ExecMode::kVectorized, 1)
                      .run(plan, &stats1);
  const Table b = ShardedExecutor(eight, ExecMode::kVectorized, 4)
                      .run(plan, &stats8);
  expect_rows_identical(a, b, "routed point query across shard counts");
  ASSERT_GT(a.row_count(), 0u);
  EXPECT_LT(stats8.blocks_read, stats1.blocks_read);
}

// Small fixture exercised under ThreadSanitizer in CI: a join + aggregate
// pipeline over enough rows for several morsels, run at four threads.
TEST(ExecEngineTsanTest, ParallelPipelineIsRaceFreeAndDeterministic) {
  StarSchemaOptions schema;
  schema.dimensions = 2;
  schema.fact_rows = 6'000;  // three morsels of fact rows
  schema.dimension_rows = 100;
  const Database db = populate_star_database(schema, 9);
  const Catalog catalog = catalog_from_database(db, 10.0);

  const PlanPtr plan = make_aggregate(
      make_select(make_join(make_scan(catalog, "Fact"),
                            make_scan(catalog, "Dim0"),
                            eq(col("Fact.d0"), col("Dim0.id"))),
                  gt(col("Fact.measure"), lit_i64(200))),
      {"Dim0.category"},
      {AggSpec{AggFn::kSum, "Fact.measure", ""},
       AggSpec{AggFn::kCount, "", ""}});

  const Executor vec1(db, ExecMode::kVectorized, 1);
  const Executor vec4(db, ExecMode::kVectorized, 4);
  const Table a = vec1.run(plan);
  const Table b = vec4.run(plan);
  ASSERT_EQ(a.row_count(), b.row_count());
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    EXPECT_TRUE(a.row(i) == b.row(i));
  }
}

// Same shape for the fused kernel path, also in the CI TSan filter: the
// select runs through the fused chain kernels, the join through the
// packed-key probe, the aggregate through the packed-key accumulators —
// all morsel-parallel at four threads.
TEST(ExecKernelTsanTest, FusedPipelineIsRaceFreeAndDeterministic) {
  StarSchemaOptions schema;
  schema.dimensions = 2;
  schema.fact_rows = 6'000;  // three morsels of fact rows
  schema.dimension_rows = 100;
  const Database db = populate_star_database(schema, 9);
  const Catalog catalog = catalog_from_database(db, 10.0);

  const PlanPtr plan = make_aggregate(
      make_select(make_join(make_scan(catalog, "Fact"),
                            make_scan(catalog, "Dim0"),
                            eq(col("Fact.d0"), col("Dim0.id"))),
                  gt(col("Fact.measure"), lit_i64(200))),
      {"Fact.d0"},  // int key: stays on the packed-key aggregate kernel
      {AggSpec{AggFn::kSum, "Fact.measure", ""},
       AggSpec{AggFn::kCount, "", ""}});

  const Executor fused1(db, ExecMode::kFused, 1);
  const Executor fused4(db, ExecMode::kFused, 4);
  const Table a = fused1.run(plan);
  const Table b = fused4.run(plan);
  ASSERT_EQ(a.row_count(), b.row_count());
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    EXPECT_TRUE(a.row(i) == b.row(i));
  }
}

// Sharded counterpart for the CI TSan filter: shards execute on worker
// threads with morsel parallelism inside each bucket, partials merge on
// the calling thread — 4 shards x 4 threads must match the 1 x 1 layout
// bit for bit.
TEST(DistributedExecTsanTest, ShardedPipelineIsRaceFreeAndDeterministic) {
  StarSchemaOptions schema;
  schema.dimensions = 2;
  schema.fact_rows = 6'000;  // three morsels of fact rows per bucket run
  schema.dimension_rows = 100;
  const Database db = populate_star_database(schema, 9);
  const Catalog catalog = catalog_from_database(db, 10.0);
  const std::map<std::string, std::string> keys{{"Fact", "d0"}};

  const PlanPtr plan = make_aggregate(
      make_select(make_join(make_scan(catalog, "Fact"),
                            make_scan(catalog, "Dim0"),
                            eq(col("Fact.d0"), col("Dim0.id"))),
                  gt(col("Fact.measure"), lit_i64(200))),
      {"Dim0.category"},
      {AggSpec{AggFn::kSum, "Fact.measure", ""},
       AggSpec{AggFn::kCount, "", ""}});

  ShardedDatabase serial = shard_database(db, 1, keys);
  ShardedDatabase wide = shard_database(db, 4, keys);
  const Table a = ShardedExecutor(serial, ExecMode::kVectorized, 1).run(plan);
  const Table b = ShardedExecutor(wide, ExecMode::kVectorized, 4).run(plan);
  ASSERT_EQ(a.row_count(), b.row_count());
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    EXPECT_TRUE(a.row(i) == b.row(i));
  }
}

}  // namespace
}  // namespace mvd
