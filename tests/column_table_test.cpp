// Tests for src/storage/column_table and the column-batch predicate
// entry point of CompiledExpr.
#include <gtest/gtest.h>

#include <numeric>

#include "src/algebra/eval.hpp"
#include "src/common/error.hpp"
#include "src/storage/column_table.hpp"

namespace mvd {
namespace {

Schema mixed_schema() {
  return Schema({{"id", ValueType::kInt64, "T"},
                 {"name", ValueType::kString, "T"},
                 {"score", ValueType::kDouble, "T"},
                 {"ok", ValueType::kBool, "T"},
                 {"day", ValueType::kDate, "T"}});
}

Table mixed_table() {
  Table t(mixed_schema(), 4.0);
  for (int i = 0; i < 10; ++i) {
    t.append({Value::int64(i), Value::string("n" + std::to_string(i)),
              Value::real(i * 0.5), Value::boolean(i % 2 == 0),
              Value::date(9000 + i)});
  }
  return t;
}

TEST(ColumnTableTest, RoundTripPreservesEverything) {
  const Table t = mixed_table();
  const ColumnTable ct = ColumnTable::from_table(t);
  EXPECT_EQ(ct.row_count(), t.row_count());
  EXPECT_DOUBLE_EQ(ct.blocks(), t.blocks());
  EXPECT_EQ(ct.blocking_factor(), t.blocking_factor());

  const Table back = ct.to_table();
  ASSERT_EQ(back.row_count(), t.row_count());
  EXPECT_TRUE(back.schema() == t.schema());
  for (std::size_t i = 0; i < t.row_count(); ++i) {
    EXPECT_TRUE(back.row(i) == t.row(i)) << "row " << i;
  }
}

TEST(ColumnTableTest, ColumnKindsAndTypedAccess) {
  const ColumnTable ct = ColumnTable::from_table(mixed_table());
  EXPECT_EQ(ct.kind(0), ColumnKind::kInt64Col);
  EXPECT_EQ(ct.kind(1), ColumnKind::kStringCol);
  EXPECT_EQ(ct.kind(2), ColumnKind::kDoubleCol);
  EXPECT_EQ(ct.kind(3), ColumnKind::kBoolCol);
  // Dates are stored as day-count int64s...
  EXPECT_EQ(ct.kind(4), ColumnKind::kInt64Col);
  EXPECT_EQ(ct.i64(4)[3], 9003);
  // ...but value_at re-tags them so row reconstruction is lossless.
  EXPECT_EQ(ct.value_at(3, 4).type(), ValueType::kDate);
  EXPECT_EQ(ct.i64(0)[7], 7);
  EXPECT_EQ(ct.str(1)[2], "n2");
  EXPECT_DOUBLE_EQ(ct.f64(2)[5], 2.5);
  EXPECT_EQ(ct.b8(3)[4], 1);
}

TEST(ColumnTableTest, EmptyTableHasZeroBlocks) {
  const ColumnTable ct(mixed_schema(), 4.0);
  EXPECT_EQ(ct.row_count(), 0u);
  EXPECT_DOUBLE_EQ(ct.blocks(), 0.0);
  EXPECT_EQ(ct.to_table().row_count(), 0u);
}

TEST(ColumnTableTest, AppendRowChecksArityAndKind) {
  ColumnTable ct(Schema({{"a", ValueType::kInt64, ""}}), 10.0);
  EXPECT_THROW(ct.append_row({Value::int64(1), Value::int64(2)}), ExecError);
  EXPECT_THROW(ct.append_row({Value::string("no")}), ExecError);
  ct.append_row({Value::int64(7)});
  EXPECT_EQ(ct.row_count(), 1u);
}

TEST(ColumnTableTest, AppendGatherCopiesSelectedRows) {
  const ColumnTable src = ColumnTable::from_table(mixed_table());
  ColumnTable dst(mixed_schema(), 4.0);
  const std::vector<std::uint32_t> rows = {9, 0, 4};
  for (std::size_t c = 0; c < 5; ++c) {
    dst.append_gather(c, src, c, rows.data(), rows.size());
  }
  dst.set_row_count(rows.size());
  EXPECT_EQ(dst.i64(0)[0], 9);
  EXPECT_EQ(dst.str(1)[1], "n0");
  EXPECT_DOUBLE_EQ(dst.f64(2)[2], 2.0);
}

TEST(ColumnTableTest, FilterBatchMatchesRowWisePredicate) {
  const Table t = mixed_table();
  const ColumnTable ct = ColumnTable::from_table(t);
  std::vector<std::size_t> col_map(t.schema().size());
  std::iota(col_map.begin(), col_map.end(), 0);

  const std::vector<ExprPtr> predicates = {
      gt(col("T.score"), lit(Value::real(2.0))),
      conj({gt(col("T.id"), lit_i64(2)), col("T.ok")}),
      eq(col("T.name"), lit_str("n5")),
      disj({lt(col("T.id"), lit_i64(2)), eq(col("T.name"), lit_str("n8"))}),
      cmp(CompareOp::kGe, col("T.day"), lit(Value::date(9005))),
  };
  for (const ExprPtr& p : predicates) {
    SCOPED_TRACE(p->to_string());
    const CompiledExpr pred(p, t.schema());
    std::vector<std::uint32_t> sel(t.row_count());
    std::iota(sel.begin(), sel.end(), 0);
    pred.filter_batch(ct, col_map, sel);

    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < t.row_count(); ++i) {
      if (pred.matches(t.row(i))) expected.push_back(i);
    }
    EXPECT_EQ(sel, expected);
  }
}

}  // namespace
}  // namespace mvd
