// Unit tests for the mvcheck static analyzer (src/check): the interval
// implication oracle, constant folding, plan findings and cardinality
// intervals, self-maintainability certification, the MVD_CHECK execution
// hook, and the optimizer's implication-based predicate pruning.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/algebra/query_spec.hpp"
#include "src/check/check.hpp"
#include "src/check/implication.hpp"
#include "src/check/maintainability.hpp"
#include "src/common/error.hpp"
#include "src/exec/executor.hpp"
#include "src/optimizer/optimizer.hpp"

namespace mvd {
namespace {

Schema t_schema() {
  return Schema({Attribute{"id", ValueType::kInt64, "T"},
                 Attribute{"name", ValueType::kString, "T"},
                 Attribute{"qty", ValueType::kInt64, "T"},
                 Attribute{"x", ValueType::kDouble, "T"}});
}

// ---- ValueInterval ---------------------------------------------------------

TEST(ValueIntervalTest, PointAndContainment) {
  const ValueInterval p = ValueInterval::point(5);
  EXPECT_TRUE(p.contains_point(5));
  EXPECT_FALSE(p.contains_point(5.5));
  EXPECT_EQ(p.singleton(), 5);

  const ValueInterval ge = ValueInterval::at_least(3, /*open=*/false);
  EXPECT_TRUE(ge.contains(p));
  EXPECT_FALSE(p.contains(ge));
  EXPECT_FALSE(ge.singleton().has_value());
}

TEST(ValueIntervalTest, OpenEndpointsAndDisjointness) {
  const ValueInterval gt5 = ValueInterval::at_least(5, /*open=*/true);
  const ValueInterval le5 = ValueInterval::at_most(5, /*open=*/false);
  EXPECT_TRUE(gt5.disjoint(le5));
  EXPECT_TRUE(le5.weakly_below(gt5));
  EXPECT_TRUE(le5.strictly_below(gt5));
  EXPECT_TRUE(gt5.intersect(le5).empty());

  const ValueInterval ge5 = ValueInterval::at_least(5, /*open=*/false);
  EXPECT_FALSE(ge5.disjoint(le5));  // they share the point 5
  EXPECT_FALSE(le5.strictly_below(ge5));
  EXPECT_TRUE(le5.weakly_below(ge5));
}

TEST(ValueIntervalTest, IntegralTightening) {
  // x > 5 over an integral column means x >= 6.
  ValueInterval gt5 = ValueInterval::at_least(5, /*open=*/true);
  const ValueInterval t = gt5.integral_tightened();
  EXPECT_FALSE(t.lo_open);
  EXPECT_EQ(t.lo, 6);
  // x > 5.5 also tightens to x >= 6.
  const ValueInterval t2 =
      ValueInterval::at_least(5.5, /*open=*/true).integral_tightened();
  EXPECT_EQ(t2.lo, 6);
}

// ---- implication oracle ----------------------------------------------------

TEST(ImplicationTest, RangeImplication) {
  const Schema s = t_schema();
  EXPECT_TRUE(implies(gt(col("id"), lit_i64(5)), gt(col("id"), lit_i64(3)), s));
  EXPECT_FALSE(implies(gt(col("id"), lit_i64(3)), gt(col("id"), lit_i64(5)), s));
  // Integral tightening: id > 5 implies id >= 6.
  EXPECT_TRUE(implies(gt(col("id"), lit_i64(5)),
                      cmp(CompareOp::kGe, col("id"), lit_i64(6)), s));
}

TEST(ImplicationTest, EqualityClassesCarryBounds) {
  const Schema s = t_schema();
  // id = qty and id > 5 implies qty > 5.
  EXPECT_TRUE(implies(conj({eq(col("id"), col("qty")),
                            gt(col("id"), lit_i64(5))}),
                      gt(col("qty"), lit_i64(5)), s));
}

TEST(ImplicationTest, StringsAndDisequalities) {
  const Schema s = t_schema();
  EXPECT_TRUE(implies(eq(col("name"), lit_str("red")),
                      cmp(CompareOp::kNe, col("name"), lit_str("blue")), s));
  EXPECT_FALSE(implies(cmp(CompareOp::kNe, col("name"), lit_str("blue")),
                       eq(col("name"), lit_str("red")), s));
}

TEST(ImplicationTest, ContradictionAndExFalso) {
  const Schema s = t_schema();
  const ExprPtr impossible =
      conj({gt(col("id"), lit_i64(5)), lt(col("id"), lit_i64(3))});
  EXPECT_TRUE(contradictory(impossible, s));
  EXPECT_FALSE(contradictory(gt(col("id"), lit_i64(5)), s));
  // Ex falso quodlibet: a contradictory premise implies anything.
  EXPECT_TRUE(implies(impossible, eq(col("name"), lit_str("zzz")), s));
  // Conflicting string bindings are contradictory too.
  EXPECT_TRUE(contradictory(conj({eq(col("name"), lit_str("a")),
                                  eq(col("name"), lit_str("b"))}),
                            s));
}

TEST(ImplicationTest, Tautology) {
  const Schema s = t_schema();
  EXPECT_TRUE(tautological(lit(Value::boolean(true)), s));
  EXPECT_TRUE(tautological(eq(col("id"), col("id")), s));
  EXPECT_FALSE(tautological(gt(col("id"), lit_i64(0)), s));
}

TEST(ImplicationTest, SyntacticFallbackOutsideTheFragment) {
  const Schema s = t_schema();
  // A disjunction entails itself ...
  const ExprPtr disjunction = disj({gt(col("id"), lit_i64(5)),
                                    lt(col("id"), lit_i64(0))});
  EXPECT_TRUE(implies(disjunction, disjunction, s));
  // ... and a genuinely weaker premise proves nothing (id = 3 satisfies
  // id > -1 but neither disjunct).
  EXPECT_FALSE(implies(gt(col("id"), lit_i64(-1)), disjunction, s));
}

TEST(ImplicationTest, NeSharpensClosedEndpoints) {
  const Schema s = t_schema();
  // id >= 5 AND id <> 5 is exactly id > 5 — the excluded closed endpoint
  // opens the interval.
  EXPECT_TRUE(implies(conj({cmp(CompareOp::kGe, col("id"), lit_i64(5)),
                            cmp(CompareOp::kNe, col("id"), lit_i64(5))}),
                      gt(col("id"), lit_i64(5)), s));
  // Same sharpening on the upper bound: x <= 5 AND x <> 5 entails x < 5
  // (double column — no integral tightening involved).
  EXPECT_TRUE(implies(conj({cmp(CompareOp::kLe, col("x"), lit_real(5.0)),
                            cmp(CompareOp::kNe, col("x"), lit_real(5.0))}),
                      lt(col("x"), lit_real(5.0)), s));
  // An interior exclusion must NOT sharpen: id >= 5 AND id <> 7 does not
  // entail id > 5.
  EXPECT_FALSE(implies(conj({cmp(CompareOp::kGe, col("id"), lit_i64(5)),
                             cmp(CompareOp::kNe, col("id"), lit_i64(7))}),
                       gt(col("id"), lit_i64(5)), s));
}

TEST(ImplicationTest, NeSharpeningIteratesOverIntegralChains) {
  const Schema s = t_schema();
  // id >= 5, id <> 5, id <> 6: opening 5 re-tightens to [6, inf), whose
  // new closed endpoint is itself excluded — the oracle must iterate to
  // conclude id >= 7.
  const ExprPtr premise =
      conj({cmp(CompareOp::kGe, col("id"), lit_i64(5)),
            cmp(CompareOp::kNe, col("id"), lit_i64(5)),
            cmp(CompareOp::kNe, col("id"), lit_i64(6))});
  EXPECT_TRUE(implies(premise, cmp(CompareOp::kGe, col("id"), lit_i64(7)), s));
  // ... but not one step further.
  EXPECT_FALSE(implies(premise, cmp(CompareOp::kGe, col("id"), lit_i64(8)), s));
  // Sharpened bounds flow through equality classes like plain ones.
  EXPECT_TRUE(implies(conj({eq(col("id"), col("qty")),
                            cmp(CompareOp::kGe, col("id"), lit_i64(5)),
                            cmp(CompareOp::kNe, col("id"), lit_i64(5))}),
                      gt(col("qty"), lit_i64(5)), s));
}

TEST(ImplicationTest, NeSharpeningDetectsEmptiedIntervals) {
  const Schema s = t_schema();
  // 5 <= id <= 6 with both integers excluded is a contradiction, so it
  // entails anything (ex falso).
  const ExprPtr premise =
      conj({cmp(CompareOp::kGe, col("id"), lit_i64(5)),
            cmp(CompareOp::kLe, col("id"), lit_i64(6)),
            cmp(CompareOp::kNe, col("id"), lit_i64(5)),
            cmp(CompareOp::kNe, col("id"), lit_i64(6))});
  EXPECT_TRUE(implies(premise, eq(col("name"), lit_str("never")), s));
}

TEST(ImplicationTest, NotOverConjunctionEntailment) {
  const Schema s = t_schema();
  // De Morgan on the conclusion side: id > 10 refutes id <= 5, so it
  // entails NOT (id <= 5 AND name = 'red')...
  EXPECT_TRUE(implies(gt(col("id"), lit_i64(10)),
                      neg(conj({cmp(CompareOp::kLe, col("id"), lit_i64(5)),
                                eq(col("name"), lit_str("red"))})),
                      s));
  // ... but proves nothing about NOT (id <= 20 AND name = 'red'): rows
  // with id = 15, name = 'red' satisfy the premise and violate it.
  EXPECT_FALSE(implies(gt(col("id"), lit_i64(10)),
                       neg(conj({cmp(CompareOp::kLe, col("id"), lit_i64(20)),
                                 eq(col("name"), lit_str("red"))})),
                       s));
  // NOT over a disjunction needs every branch refuted.
  EXPECT_TRUE(implies(conj({gt(col("id"), lit_i64(10)),
                            eq(col("name"), lit_str("blue"))}),
                      neg(disj({cmp(CompareOp::kLe, col("id"), lit_i64(5)),
                                eq(col("name"), lit_str("red"))})),
                      s));
  EXPECT_FALSE(implies(gt(col("id"), lit_i64(10)),
                       neg(disj({cmp(CompareOp::kLe, col("id"), lit_i64(5)),
                                 eq(col("name"), lit_str("red"))})),
                       s));
}

TEST(ImplicationTest, NotOverDisjunctionIngestsAsFacts) {
  const Schema s = t_schema();
  // A premise of NOT (id <= 5 OR id > 20) asserts id > 5 AND id <= 20 —
  // both conjuncts must land in the fact index as real constraints.
  const ExprPtr premise =
      neg(disj({cmp(CompareOp::kLe, col("id"), lit_i64(5)),
                gt(col("id"), lit_i64(20))}));
  EXPECT_TRUE(implies(premise, gt(col("id"), lit_i64(5)), s));
  EXPECT_TRUE(implies(premise, cmp(CompareOp::kLe, col("id"), lit_i64(20)), s));
  EXPECT_FALSE(implies(premise, gt(col("id"), lit_i64(10)), s));
}

TEST(FoldConstantsTest, FoldsLiteralAndSameColumnComparisons) {
  const ExprPtr lt_lit = lt(lit_i64(2), lit_i64(3));
  const ExprPtr folded = fold_constants(lt_lit);
  ASSERT_EQ(folded->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(static_cast<const LiteralExpr&>(*folded).value().as_bool());

  const ExprPtr self_lt = lt(col("id"), col("id"));
  const ExprPtr folded2 = fold_constants(self_lt);
  ASSERT_EQ(folded2->kind(), ExprKind::kLiteral);
  EXPECT_FALSE(static_cast<const LiteralExpr&>(*folded2).value().as_bool());
}

TEST(FoldConstantsTest, IdentityPreservingWhenNothingFolds) {
  const ExprPtr e = gt(col("id"), lit_i64(5));
  EXPECT_EQ(fold_constants(e).get(), e.get());
  const ExprPtr c = conj({gt(col("id"), lit_i64(5)),
                          eq(col("name"), lit_str("a"))});
  EXPECT_EQ(fold_constants(c).get(), c.get());
}

TEST(FoldConstantsTest, AndOrAbsorbLiterals) {
  const ExprPtr keep = gt(col("id"), lit_i64(5));
  const ExprPtr a = fold_constants(conj({lit(Value::boolean(true)), keep}));
  EXPECT_EQ(a.get(), keep.get());  // true AND p == p
  const ExprPtr b = fold_constants(conj({lit(Value::boolean(false)), keep}));
  ASSERT_EQ(b->kind(), ExprKind::kLiteral);
  EXPECT_FALSE(static_cast<const LiteralExpr&>(*b).value().as_bool());
}

// ---- check_plan ------------------------------------------------------------

class CheckPlanTest : public ::testing::Test {
 protected:
  CheckPlanTest() {
    Table t(Schema({{"id", ValueType::kInt64, ""},
                    {"name", ValueType::kString, ""},
                    {"qty", ValueType::kInt64, ""},
                    {"x", ValueType::kDouble, ""}}),
            10.0);
    for (int i = 0; i < 20; ++i) {
      t.append({Value::int64(i), Value::string(i % 2 == 0 ? "even" : "odd"),
                Value::int64(i % 5), Value::real(i * 0.5)});
    }
    db_.add_table("T", std::move(t));
    Table s(Schema({{"id", ValueType::kInt64, ""},
                    {"tag", ValueType::kString, ""}}),
            10.0);
    for (int i = 0; i < 5; ++i) {
      s.append({Value::int64(i), Value::string("tag")});
    }
    db_.add_table("S", std::move(s));
    for (const char* name : {"T", "S"}) {
      catalog_.add_relation(name, db_.table(name).schema(),
                            db_.table(name).compute_stats());
    }
  }

  PlanPtr scan() const { return make_scan(catalog_, "T"); }

  Database db_;
  Catalog catalog_{10.0};
};

TEST_F(CheckPlanTest, CleanPlanHasNoFindings) {
  const PlanPtr plan = make_project(
      make_select(scan(), gt(col("T.id"), lit_i64(5))), {"T.id", "T.name"});
  CheckOptions opts;
  opts.database = &db_;
  const CheckReport report = check_plan(plan, opts);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.findings.clean());
  EXPECT_EQ(report.nodes.size(), 3u);  // scan, select, project
  EXPECT_TRUE(report.maintainability.has_value());
}

TEST_F(CheckPlanTest, NeverThrowsOnMalformedPlans) {
  // Raw constructor: the factories would reject this plan eagerly.
  const PlanPtr bad =
      std::make_shared<SelectOp>(scan(), gt(col("ghost"), lit_i64(1)));
  const CheckReport report = check_plan(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.findings.fired_rules().contains("check/column-resolve"));
}

TEST_F(CheckPlanTest, CardinalityIntervalsGroundedInTheDatabase) {
  CheckOptions opts;
  opts.database = &db_;

  // Scan: exactly the stored row count.
  const CheckReport s = check_plan(scan(), opts);
  const auto scan_card = s.card_of(scan()->label());
  ASSERT_TRUE(scan_card.has_value());
  EXPECT_EQ(scan_card->lo, 20);
  EXPECT_EQ(scan_card->hi, 20);

  // Select: [0, child hi]; a contradictory select pins [0, 0].
  const PlanPtr empty = make_select(
      scan(), conj({gt(col("T.id"), lit_i64(5)), lt(col("T.id"), lit_i64(3))}));
  const CheckReport e = check_plan(empty, opts);
  const auto empty_card = e.card_of(empty->label());
  ASSERT_TRUE(empty_card.has_value());
  EXPECT_EQ(empty_card->hi, 0);

  // Global aggregate: always exactly one row.
  const PlanPtr global =
      make_aggregate(scan(), {}, {AggSpec{AggFn::kCount, "", "n"}});
  const CheckReport g = check_plan(global, opts);
  const auto global_card = g.card_of(global->label());
  ASSERT_TRUE(global_card.has_value());
  EXPECT_EQ(global_card->lo, 1);
  EXPECT_EQ(global_card->hi, 1);
}

TEST_F(CheckPlanTest, PredicateFindingsBySeverity) {
  CheckOptions opts;
  opts.database = &db_;
  // Contradiction is a warning (the plan still runs, it is just empty).
  const PlanPtr contra = make_select(
      scan(), conj({gt(col("T.id"), lit_i64(5)), lt(col("T.id"), lit_i64(3))}));
  const CheckReport c = check_plan(contra, opts);
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(c.findings.fired_rules().contains("check/contradiction"));

  // A redundant conjunct is informational.
  const PlanPtr redundant =
      make_select(make_select(scan(), gt(col("T.id"), lit_i64(5))),
                  gt(col("T.id"), lit_i64(3)));
  const CheckReport r = check_plan(redundant, opts);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.findings.fired_rules().contains("check/redundant-conjunct"));
}

TEST_F(CheckPlanTest, ReportRendersAndSerializes) {
  CheckOptions opts;
  opts.database = &db_;
  const CheckReport report =
      check_plan(make_select(scan(), gt(col("T.id"), lit_i64(5))), opts);
  EXPECT_FALSE(report.render_text().empty());
  const Json j = report.to_json();
  EXPECT_FALSE(j.dump().empty());
}

// ---- maintainability certification ----------------------------------------

class CertifyTest : public CheckPlanTest {};

TEST_F(CertifyTest, SpjPlansAreSelfMaintainable) {
  const PlanPtr plan = make_project(
      make_select(scan(), gt(col("T.id"), lit_i64(3))), {"T.id", "T.qty"});
  EXPECT_EQ(certify_refresh_plan(plan).verdict,
            MaintVerdict::kSelfMaintainable);
}

TEST_F(CertifyTest, AggregateVerdictLattice) {
  const auto agg = [&](std::vector<AggSpec> specs) {
    return make_aggregate(scan(), {"T.name"}, std::move(specs));
  };
  // COUNT + SUM + AVG over the same column: fully self-maintainable.
  EXPECT_EQ(certify_refresh_plan(agg({{AggFn::kCount, "", "n"},
                                      {AggFn::kSum, "T.qty", "s"},
                                      {AggFn::kAvg, "T.qty", "a"}}))
                .verdict,
            MaintVerdict::kSelfMaintainable);
  // SUM without a COUNT: inserts maintain, deletes cannot detect emptied
  // groups.
  EXPECT_EQ(certify_refresh_plan(agg({{AggFn::kSum, "T.qty", "s"}})).verdict,
            MaintVerdict::kInsertOnly);
  // MIN with a COUNT: maintainable unless a delete reaches the extremum.
  EXPECT_EQ(certify_refresh_plan(agg({{AggFn::kCount, "", "n"},
                                      {AggFn::kMin, "T.qty", "m"}}))
                .verdict,
            MaintVerdict::kExtremumHazard);
  // AVG without a same-column SUM cannot be reconstructed.
  EXPECT_EQ(certify_refresh_plan(agg({{AggFn::kCount, "", "n"},
                                      {AggFn::kAvg, "T.qty", "a"}}))
                .verdict,
            MaintVerdict::kNotMaintainable);
}

TEST_F(CertifyTest, StructuralRefusals) {
  // Theta join: the delta algebra joins deltas by key.
  const PlanPtr theta = make_join(scan(), make_scan(catalog_, "S"),
                                  lt(col("T.id"), col("S.id")));
  EXPECT_EQ(certify_refresh_plan(theta).verdict,
            MaintVerdict::kNotMaintainable);

  // Interior aggregate: outside the delta algebra.
  const PlanPtr interior = make_select(
      make_aggregate(scan(), {"T.name"}, {AggSpec{AggFn::kCount, "", "n"}}),
      gt(col("n"), lit_i64(1)));
  EXPECT_EQ(certify_refresh_plan(interior).verdict,
            MaintVerdict::kNotMaintainable);
}

TEST_F(CertifyTest, PredictedPathOverDeltas) {
  const PlanPtr plan = make_select(scan(), gt(col("T.id"), lit_i64(3)));

  DeltaSet none;
  EXPECT_EQ(predict_refresh_path(plan, none).path, PredictedPath::kSkip);

  DeltaSet inserts;
  DeltaTable d(db_.table("T").schema(), 10.0);
  d.add_insert({Value::int64(99), Value::string("new"), Value::int64(1),
                Value::real(0.5)});
  inserts.emplace("T", std::move(d));
  EXPECT_EQ(predict_refresh_path(plan, inserts).path,
            PredictedPath::kIncremental);

  // An interior aggregate under pending deltas must recompute.
  const PlanPtr interior = make_select(
      make_aggregate(scan(), {"T.name"}, {AggSpec{AggFn::kCount, "", "n"}}),
      gt(col("n"), lit_i64(1)));
  EXPECT_EQ(predict_refresh_path(interior, inserts).path,
            PredictedPath::kRecompute);
}

// ---- MVD_CHECK hook --------------------------------------------------------

class CheckHookTest : public CheckPlanTest {
 protected:
  ~CheckHookTest() override { set_check_hook_level(std::nullopt); }

  /// A plan that *executes* without error but that mvcheck flags: the
  /// string-vs-int comparison is a static type error, yet the inner
  /// select filters out every row, so the row engine never evaluates it.
  PlanPtr typed_defect() const {
    return make_select(make_select(scan(), gt(col("T.id"), lit_i64(100))),
                       gt(col("T.name"), lit_i64(5)));
  }
};

TEST_F(CheckHookTest, OffAndWarnLevelsDoNotBlockExecution) {
  const Executor exec(db_, ExecMode::kRow);
  set_check_hook_level(CheckHookLevel::kOff);
  EXPECT_EQ(exec.run(typed_defect()).row_count(), 0u);
  set_check_hook_level(CheckHookLevel::kWarn);
  EXPECT_EQ(exec.run(typed_defect()).row_count(), 0u);
}

TEST_F(CheckHookTest, ErrorLevelAbortsBeforeExecution) {
  const Executor exec(db_, ExecMode::kRow);
  set_check_hook_level(CheckHookLevel::kError);
  EXPECT_THROW(exec.run(typed_defect()), ExecError);
  // Resolution failures abort with BindError — the class the runtime
  // itself would eventually throw.
  const PlanPtr unresolved =
      std::make_shared<SelectOp>(scan(), gt(col("ghost"), lit_i64(1)));
  EXPECT_THROW(exec.run(unresolved), BindError);
}

TEST_F(CheckHookTest, CleanPlansPassAtErrorLevel) {
  const Executor exec(db_, ExecMode::kVectorized);
  set_check_hook_level(CheckHookLevel::kError);
  const PlanPtr plan = make_select(scan(), gt(col("T.id"), lit_i64(5)));
  EXPECT_EQ(exec.run(plan).row_count(), 14u);
}

// ---- optimizer predicate pruning -------------------------------------------

std::size_t plan_conjunct_count(const PlanPtr& plan) {
  std::size_t n = 0;
  if (plan->kind() == OpKind::kSelect) {
    n += conjuncts_of(static_cast<const SelectOp&>(*plan).predicate()).size();
  } else if (plan->kind() == OpKind::kJoin) {
    n += conjuncts_of(static_cast<const JoinOp&>(*plan).predicate()).size();
  }
  for (const PlanPtr& c : plan->children()) n += plan_conjunct_count(c);
  return n;
}

class SimplifyTest : public CheckPlanTest {};

TEST_F(SimplifyTest, UnchangedPlansComeBackPointerEqual) {
  const PlanPtr plan = make_project(
      make_select(scan(), gt(col("T.id"), lit_i64(5))), {"T.id"});
  EXPECT_EQ(simplify_plan_predicates(plan).get(), plan.get());
}

TEST_F(SimplifyTest, EntailedConjunctsDropFewerConjunctsSameRows) {
  // id > 5 below already guarantees id > 3 and id >= 6 above.
  const PlanPtr inner = make_select(scan(), gt(col("T.id"), lit_i64(5)));
  const PlanPtr before =
      make_select(inner, conj({gt(col("T.id"), lit_i64(3)),
                               cmp(CompareOp::kGe, col("T.id"), lit_i64(6))}));
  const PlanPtr after = simplify_plan_predicates(before);
  // The whole outer select was a no-op: simplify returns the inner select.
  EXPECT_EQ(after.get(), inner.get());
  EXPECT_LT(plan_conjunct_count(after), plan_conjunct_count(before));

  const Executor exec(db_);
  EXPECT_TRUE(same_bag(exec.run(before), exec.run(after)));
}

TEST_F(SimplifyTest, ContradictionPinsALiteralFalseSelect) {
  const PlanPtr before = make_select(
      scan(), conj({gt(col("T.id"), lit_i64(5)), lt(col("T.id"), lit_i64(3))}));
  const PlanPtr after = simplify_plan_predicates(before);
  ASSERT_EQ(after->kind(), OpKind::kSelect);
  const ExprPtr& pred = static_cast<const SelectOp&>(*after).predicate();
  ASSERT_EQ(pred->kind(), ExprKind::kLiteral);
  EXPECT_FALSE(static_cast<const LiteralExpr&>(*pred).value().as_bool());

  const Executor exec(db_);
  EXPECT_EQ(exec.run(after).row_count(), 0u);
  EXPECT_TRUE(same_bag(exec.run(before), exec.run(after)));
}

TEST_F(SimplifyTest, LiteralTrueConjunctsDropFromJoins) {
  const PlanPtr before = make_join(
      scan(), make_scan(catalog_, "S"),
      conj({eq(col("T.id"), col("T.id")), lit(Value::boolean(true))}));
  // id = id folds to true, so the join degenerates to the cross join.
  const PlanPtr after = simplify_plan_predicates(before);
  ASSERT_EQ(after->kind(), OpKind::kJoin);
  const ExprPtr& pred = static_cast<const JoinOp&>(*after).predicate();
  ASSERT_EQ(pred->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(static_cast<const LiteralExpr&>(*pred).value().as_bool());
}

TEST_F(SimplifyTest, OptimizerPrunesRedundantSelections) {
  // qty > 1 and qty >= 2 describe the same int64 rows (integral
  // tightening), so one of the two conjuncts must drop.
  const QuerySpec spec = QuerySpec::bind(
      catalog_, "q_redundant", 1.0, {"T"},
      conj({gt(col("T.qty"), lit_i64(1)),
            cmp(CompareOp::kGe, col("T.qty"), lit_i64(2))}),
      {"T.id", "T.qty"});
  const CostModel cost_model(catalog_, {});
  const Optimizer optimizer(cost_model);

  const PlanPtr raw = optimizer.build_plan(spec, spec.relations(),
                                           PlanPlacement{true, true});
  const PlanPtr optimized = optimizer.optimize(spec);
  EXPECT_LT(plan_conjunct_count(optimized), plan_conjunct_count(raw));

  const Executor exec(db_);
  EXPECT_TRUE(same_bag(exec.run(raw), exec.run(optimized)));
}

}  // namespace
}  // namespace mvd
