// Equivalence of the bitset/incremental fast evaluation path with the
// legacy std::set evaluator, and determinism of the parallel search
// drivers. The fast path is constructed to mirror the legacy
// floating-point operation order exactly, so most checks can demand
// bit-identical doubles; the randomized sweeps additionally accept a
// 1e-9 relative tolerance to keep the intent (numerical equivalence)
// separate from the stronger implementation guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/random.hpp"
#include "src/mvpp/builder.hpp"
#include "src/mvpp/fast_eval.hpp"
#include "src/mvpp/node_bitset.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/generator.hpp"

namespace mvd {
namespace {

// Any subclass loses the typeid fast-path dispatch in the selection
// algorithms, forcing the legacy std::set probing path with unchanged
// cost semantics — the reference for fast-vs-legacy algorithm runs.
struct LegacyForcedEvaluator : MvppEvaluator {
  using MvppEvaluator::MvppEvaluator;
};

// ---- NodeBitset ------------------------------------------------------

TEST(NodeBitsetTest, BasicSetOperations) {
  NodeBitset b(130);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_FALSE(b.test(128));
  b.toggle(63);
  EXPECT_FALSE(b.test(63));
  b.toggle(63);
  EXPECT_TRUE(b.test(63));
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.to_vector(), (std::vector<NodeId>{0, 63, 129}));
  b.clear();
  EXPECT_TRUE(b.empty());
}

TEST(NodeBitsetTest, ForEachVisitsAscending) {
  NodeBitset b(200);
  const std::vector<NodeId> ids = {3, 5, 63, 64, 65, 127, 128, 199};
  for (NodeId v : ids) b.set(v);
  std::vector<NodeId> seen;
  b.for_each([&](NodeId v) { seen.push_back(v); });
  EXPECT_EQ(seen, ids);
}

TEST(NodeBitsetTest, RoundTripWithMaterializedSet) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t universe = 1 + rng.index(150);
    MaterializedSet m;
    for (std::size_t i = 0; i < universe; ++i) {
      if (rng.chance(0.3)) m.insert(static_cast<NodeId>(i));
    }
    const FastMaterializedSet fast = to_fast_set(m, universe);
    EXPECT_EQ(fast.count(), m.size());
    EXPECT_EQ(to_materialized_set(fast), m);
  }
}

bool lex_less_ref(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

TEST(NodeBitsetTest, LexLessMatchesSortedSequenceComparison) {
  const std::vector<std::vector<NodeId>> cases = {
      {},           {0},         {1},         {1, 5},       {1, 3, 5},
      {5},          {63},        {63, 64},    {64},         {0, 64, 100},
      {0, 63, 127}, {100},       {1, 2, 3},   {1, 2, 3, 4},
  };
  for (const auto& va : cases) {
    for (const auto& vb : cases) {
      NodeBitset a(128), b(128);
      for (NodeId v : va) a.set(v);
      for (NodeId v : vb) b.set(v);
      EXPECT_EQ(NodeBitset::lex_less(a, b), lex_less_ref(va, vb))
          << "a=" << ::testing::PrintToString(va)
          << " b=" << ::testing::PrintToString(vb);
    }
  }
}

TEST(NodeBitsetTest, LexLessRandomized) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t universe = 1 + rng.index(130);
    NodeBitset a(universe), b(universe);
    std::vector<NodeId> va, vb;
    for (std::size_t i = 0; i < universe; ++i) {
      if (rng.chance(0.2)) {
        a.set(static_cast<NodeId>(i));
        va.push_back(static_cast<NodeId>(i));
      }
      if (rng.chance(0.2)) {
        b.set(static_cast<NodeId>(i));
        vb.push_back(static_cast<NodeId>(i));
      }
    }
    EXPECT_EQ(NodeBitset::lex_less(a, b), lex_less_ref(va, vb));
    EXPECT_EQ(NodeBitset::lex_less(b, a), lex_less_ref(vb, va));
  }
}

// ---- Workload fixtures -----------------------------------------------

struct Workload {
  Catalog catalog{10.0};
  MvppGraph graph;
};

Workload star_workload(std::uint64_t seed, std::size_t query_count) {
  Workload w;
  StarSchemaOptions schema;
  schema.dimensions = 3;
  w.catalog = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = query_count;
  qopts.seed = seed;
  const std::vector<QuerySpec> queries =
      generate_star_queries(w.catalog, schema, qopts);
  const CostModel model(w.catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  w.graph = builder.build(queries, builder.initial_order(queries)).graph;
  return w;
}

Workload chain_workload(std::uint64_t seed, std::size_t query_count) {
  Workload w;
  ChainSchemaOptions schema;
  schema.length = 6;
  w.catalog = make_chain_catalog(schema);
  ChainQueryOptions qopts;
  qopts.count = query_count;
  qopts.seed = seed;
  const std::vector<QuerySpec> queries =
      generate_chain_queries(w.catalog, schema, qopts);
  const CostModel model(w.catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  w.graph = builder.build(queries, builder.initial_order(queries)).graph;
  return w;
}

std::vector<MaintenancePolicy> all_policies() {
  std::vector<MaintenancePolicy> out;
  for (auto mode : {MaintenancePolicy::Mode::kBatchRecompute,
                    MaintenancePolicy::Mode::kPerUpdate}) {
    for (bool reuse : {true, false}) {
      MaintenancePolicy p;
      p.mode = mode;
      p.reuse_materialized = reuse;
      out.push_back(p);
    }
  }
  return out;
}

std::vector<IndexPolicy> all_index_policies() {
  IndexPolicy off;
  IndexPolicy on;
  on.enabled = true;
  return {off, on};
}

MaterializedSet random_operation_subset(const MvppGraph& g, Rng& rng,
                                        double p) {
  MaterializedSet m;
  for (NodeId v : g.operation_ids()) {
    if (rng.chance(p)) m.insert(v);
  }
  return m;
}

void expect_close(double fast, double legacy, const char* what) {
  // Bit-identical by construction; the tolerance states the contract.
  EXPECT_DOUBLE_EQ(fast, legacy) << what;
  const double tol = 1e-9 * std::max(1.0, std::abs(legacy));
  EXPECT_NEAR(fast, legacy, tol) << what;
}

// ---- Full-evaluation equivalence -------------------------------------

TEST(FastEvalEquivalenceTest, RandomSetsMatchLegacyEvaluator) {
  Rng rng(1234);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (const Workload& w :
         {star_workload(seed, 5), chain_workload(seed, 5)}) {
      for (const MaintenancePolicy& policy : all_policies()) {
        for (const IndexPolicy& index : all_index_policies()) {
          const MvppEvaluator eval(w.graph, policy, index);
          FastMvppEvaluator fast(eval, eval.closures());
          for (int trial = 0; trial < 40; ++trial) {
            const MaterializedSet m =
                random_operation_subset(w.graph, rng, rng.uniform01());
            const MvppCosts legacy = eval.evaluate(m);
            const MvppCosts got =
                fast.evaluate(to_fast_set(m, fast.universe()));
            expect_close(got.query_processing, legacy.query_processing,
                         "query_processing_cost");
            expect_close(got.maintenance, legacy.maintenance,
                         "total_maintenance_cost");
            expect_close(got.total(), legacy.total(), "total_cost");
          }
        }
      }
    }
  }
}

TEST(FastEvalEquivalenceTest, IncrementalProbesMatchFullEvaluation) {
  Rng rng(99);
  for (std::uint64_t seed : {4u, 5u}) {
    for (const Workload& w :
         {star_workload(seed, 6), chain_workload(seed, 6)}) {
      const std::vector<NodeId> ops = w.graph.operation_ids();
      ASSERT_FALSE(ops.empty());
      for (const MaintenancePolicy& policy : all_policies()) {
        for (const IndexPolicy& index : all_index_policies()) {
          const MvppEvaluator eval(w.graph, policy, index);
          FastMvppEvaluator fast(eval, eval.closures());

          MaterializedSet m = random_operation_subset(w.graph, rng, 0.4);
          fast.load(to_fast_set(m, fast.universe()));
          expect_close(fast.current_total(), eval.total_cost(m), "load");

          for (int step = 0; step < 120; ++step) {
            const NodeId v = ops[rng.index(ops.size())];
            MaterializedSet toggled = m;
            if (!toggled.erase(v)) toggled.insert(v);
            expect_close(fast.probe_toggle(v), eval.total_cost(toggled),
                         "probe_toggle");
            expect_close(fast.delta_cost(v),
                         eval.total_cost(toggled) - eval.total_cost(m),
                         "delta_cost");

            // Swap probe: any member against any non-member.
            if (!m.empty() && m.size() < ops.size()) {
              const NodeId out = *m.begin();
              NodeId in = -1;
              for (NodeId c : ops) {
                if (!m.contains(c)) {
                  in = c;
                  break;
                }
              }
              MaterializedSet swapped = m;
              swapped.erase(out);
              swapped.insert(in);
              expect_close(fast.probe_swap(out, in),
                           eval.total_cost(swapped), "probe_swap");
            }

            if (rng.chance(0.5)) {
              fast.commit_toggle(v);
              m = std::move(toggled);
              expect_close(fast.current_total(), eval.total_cost(m),
                           "commit_toggle");
              EXPECT_EQ(to_materialized_set(fast.current()), m);
            }
          }
        }
      }
    }
  }
}

// ---- Selection algorithms: fast path vs legacy path ------------------

void expect_same_selection(const SelectionResult& fast,
                           const SelectionResult& legacy) {
  EXPECT_EQ(fast.materialized, legacy.materialized);
  EXPECT_DOUBLE_EQ(fast.costs.query_processing, legacy.costs.query_processing);
  EXPECT_DOUBLE_EQ(fast.costs.maintenance, legacy.costs.maintenance);
  EXPECT_EQ(fast.trace, legacy.trace);
}

TEST(FastEvalEquivalenceTest, AlgorithmsMatchLegacyPath) {
  for (std::uint64_t seed : {6u, 7u}) {
    for (const Workload& w :
         {star_workload(seed, 5), chain_workload(seed, 5)}) {
      for (const MaintenancePolicy& policy : all_policies()) {
        const MvppEvaluator fast_eval(w.graph, policy);
        const LegacyForcedEvaluator legacy_eval(w.graph, policy);

        expect_same_selection(greedy_incremental(fast_eval),
                              greedy_incremental(legacy_eval));
        expect_same_selection(local_search(fast_eval, {}),
                              local_search(legacy_eval, {}));
        expect_same_selection(simulated_annealing(fast_eval),
                              simulated_annealing(legacy_eval));
        expect_same_selection(yang_heuristic(fast_eval),
                              yang_heuristic(legacy_eval));

        const double budget =
            0.5 * total_view_blocks(w.graph,
                                    select_all_operations(fast_eval)
                                        .materialized);
        expect_same_selection(budgeted_greedy(fast_eval, budget),
                              budgeted_greedy(legacy_eval, budget));

        if (w.graph.operation_ids().size() <= 16) {
          expect_same_selection(exhaustive_optimal(fast_eval),
                                exhaustive_optimal(legacy_eval));
          expect_same_selection(budgeted_optimal(fast_eval, budget),
                                budgeted_optimal(legacy_eval, budget));
        }
      }
    }
  }
}

// ---- Parallel determinism --------------------------------------------

TEST(FastEvalEquivalenceTest, ParallelExhaustiveIsBitIdenticalToSerial) {
  for (std::uint64_t seed : {8u, 9u, 10u}) {
    for (const Workload& w :
         {star_workload(seed, 6), chain_workload(seed, 6)}) {
      if (w.graph.operation_ids().size() > 18) continue;
      const MvppEvaluator eval(w.graph);
      const SelectionResult serial = exhaustive_optimal(eval, 24, 1);
      for (std::size_t threads : {2u, 3u, 8u}) {
        const SelectionResult parallel = exhaustive_optimal(eval, 24, threads);
        EXPECT_EQ(parallel.materialized, serial.materialized)
            << "threads=" << threads;
        EXPECT_DOUBLE_EQ(parallel.costs.total(), serial.costs.total());
      }

      const double budget =
          0.4 * total_view_blocks(w.graph,
                                  select_all_operations(eval).materialized);
      const SelectionResult bserial = budgeted_optimal(eval, budget, 22, 1);
      for (std::size_t threads : {2u, 5u}) {
        const SelectionResult bparallel =
            budgeted_optimal(eval, budget, 22, threads);
        EXPECT_EQ(bparallel.materialized, bserial.materialized)
            << "threads=" << threads;
        EXPECT_DOUBLE_EQ(bparallel.costs.total(), bserial.costs.total());
      }
    }
  }
}

TEST(FastEvalEquivalenceTest, ParallelRotationBuildMatchesSerial) {
  StarSchemaOptions schema;
  schema.dimensions = 3;
  const Catalog catalog = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = 6;
  qopts.seed = 21;
  const std::vector<QuerySpec> queries =
      generate_star_queries(catalog, schema, qopts);
  const CostModel model(catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);

  const std::vector<MvppBuildResult> serial =
      builder.build_all_rotations(queries, 1);
  const std::vector<MvppBuildResult> parallel =
      builder.build_all_rotations(queries, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].merge_order, parallel[i].merge_order);
    ASSERT_EQ(serial[i].graph.size(), parallel[i].graph.size());
    for (std::size_t v = 0; v < serial[i].graph.size(); ++v) {
      const MvppNode& a = serial[i].graph.node(static_cast<NodeId>(v));
      const MvppNode& b = parallel[i].graph.node(static_cast<NodeId>(v));
      EXPECT_EQ(a.label(), b.label());
      EXPECT_EQ(a.children, b.children);
      EXPECT_DOUBLE_EQ(a.full_cost, b.full_cost);
    }
    // Same selection outcome on both copies.
    const MvppEvaluator ea(serial[i].graph), eb(parallel[i].graph);
    EXPECT_EQ(yang_heuristic(ea).materialized, yang_heuristic(eb).materialized);
  }
}

// ---- Closures match the on-demand graph walks ------------------------

TEST(FastEvalEquivalenceTest, ClosuresMatchGraphWalks) {
  for (std::uint64_t seed : {11u, 12u}) {
    for (const Workload& w :
         {star_workload(seed, 5), chain_workload(seed, 5)}) {
      const GraphClosures closures(w.graph);
      for (std::size_t i = 0; i < w.graph.size(); ++i) {
        const NodeId v = static_cast<NodeId>(i);
        const std::set<NodeId> anc = w.graph.ancestors(v);
        const std::set<NodeId> desc = w.graph.descendants(v);
        EXPECT_EQ(closures.ancestors(v).to_vector(),
                  std::vector<NodeId>(anc.begin(), anc.end()));
        EXPECT_EQ(closures.descendants(v).to_vector(),
                  std::vector<NodeId>(desc.begin(), desc.end()));
        if (w.graph.node(v).is_operation()) {
          EXPECT_EQ(closures.queries_using(v), w.graph.queries_using(v));
          EXPECT_EQ(closures.bases_under(v), w.graph.bases_under(v));
        }
      }
    }
  }
}

}  // namespace
}  // namespace mvd
