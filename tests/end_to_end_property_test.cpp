// Parameterized end-to-end property sweeps: for generated workloads
// (star with/without aggregation, chains) across seeds, the whole
// pipeline — parse/bind, optimize, MVPP merge + pushdown, view selection,
// deploy, answer — must preserve query semantics and cost-model
// invariants. These are the repository's broadest property tests.
#include <gtest/gtest.h>

#include "src/exec/executor.hpp"
#include "src/mvpp/builder.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/workload/generator.hpp"

namespace mvd {
namespace {

struct E2ECase {
  std::uint64_t seed = 1;
  std::size_t queries = 4;
  double aggregation_probability = 0.0;
  const char* tag = "";
};

std::string case_name(const ::testing::TestParamInfo<E2ECase>& info) {
  return std::string(info.param.tag) + "_seed" +
         std::to_string(info.param.seed) + "_q" +
         std::to_string(info.param.queries);
}

class EndToEndStarTest : public ::testing::TestWithParam<E2ECase> {
 protected:
  EndToEndStarTest() {
    schema_.dimensions = 3;
    schema_.fact_rows = 1'500;
    schema_.dimension_rows = 120;
    schema_.categories = 6;
    db_ = populate_star_database(schema_, GetParam().seed * 1000 + 1);
    catalog_ = catalog_from_database(db_, 10.0);
    StarQueryOptions qopts;
    qopts.count = GetParam().queries;
    qopts.max_dimensions = 3;
    qopts.seed = GetParam().seed;
    qopts.aggregation_probability = GetParam().aggregation_probability;
    queries_ = generate_star_queries(catalog_, schema_, qopts);
  }

  StarSchemaOptions schema_;
  Database db_;
  Catalog catalog_{10.0};
  std::vector<QuerySpec> queries_;
};

TEST_P(EndToEndStarTest, DesignDeployAnswerMatchesGroundTruth) {
  const CostModel model(catalog_, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);

  // Ground truth before any views exist.
  const Executor exec(db_);
  std::map<std::string, Table> expected;
  for (const QuerySpec& q : queries_) {
    expected.emplace(q.name(), exec.run(canonical_plan(catalog_, q)));
  }

  for (const MvppBuildResult& built : builder.build_all_rotations(queries_)) {
    built.graph.validate();
    const MvppGraph& g = built.graph;
    const MvppEvaluator eval(g);

    // Invariants across selection algorithms.
    const SelectionResult yang = yang_heuristic(eval);
    const SelectionResult greedy = greedy_incremental(eval);
    EXPECT_LE(yang.costs.total(), eval.total_cost({}) + 1e-6);
    EXPECT_LE(greedy.costs.total(), yang.costs.total() + 1e-6);

    // Deploy the heuristic's choice and check every query's answer.
    Database db = db_;
    for (NodeId v : yang.materialized) {
      MaterializedSet deps = yang.materialized;
      deps.erase(v);
      const Executor e(db);
      db.put_table(g.node(v).name, e.run(refresh_plan(g, v, deps)));
    }
    const Executor e(db);
    for (NodeId q : g.query_ids()) {
      const Table got = e.run(answer_plan(g, q, yang.materialized));
      EXPECT_TRUE(same_bag(expected.at(g.node(q).name), got))
          << g.node(q).name << " on rotation starting "
          << built.merge_order.front();
    }
  }
}

TEST_P(EndToEndStarTest, EstimatesStayPositiveAndOrdered) {
  const CostModel model(catalog_, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const MvppBuildResult built =
      builder.build(queries_, builder.initial_order(queries_));
  for (const MvppNode& n : built.graph.nodes()) {
    if (!n.is_operation()) continue;
    EXPECT_GE(n.rows, 0) << n.name;
    EXPECT_GE(n.blocks, 0) << n.name;
    EXPECT_GE(n.op_cost, 0) << n.name;
    // Ca accumulates at least the node's own operator cost.
    EXPECT_GE(n.full_cost + 1e-9, n.op_cost) << n.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlainSpj, EndToEndStarTest,
    ::testing::Values(E2ECase{1, 3, 0.0, "spj"}, E2ECase{2, 4, 0.0, "spj"},
                      E2ECase{3, 5, 0.0, "spj"}, E2ECase{4, 4, 0.0, "spj"}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    WithAggregation, EndToEndStarTest,
    ::testing::Values(E2ECase{5, 4, 0.5, "agg"}, E2ECase{6, 4, 1.0, "agg"},
                      E2ECase{7, 5, 0.4, "agg"}),
    case_name);

class EndToEndChainTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndChainTest, SelectionInvariantsOnChains) {
  ChainSchemaOptions schema;
  schema.length = 5;
  const Catalog catalog = make_chain_catalog(schema);
  ChainQueryOptions qopts;
  qopts.count = 5;
  qopts.seed = GetParam();
  const auto queries = generate_chain_queries(catalog, schema, qopts);

  const CostModel model(catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const MvppBuildResult built =
      builder.build(queries, builder.initial_order(queries));
  built.graph.validate();
  const MvppEvaluator eval(built.graph);

  const double none = eval.total_cost({});
  const SelectionResult yang = yang_heuristic(eval);
  const SelectionResult polished = local_search(eval, yang.materialized);
  EXPECT_LE(yang.costs.total(), none + 1e-6);
  EXPECT_LE(polished.costs.total(), yang.costs.total() + 1e-6);
  if (built.graph.operation_ids().size() <= 16) {
    const SelectionResult optimal = exhaustive_optimal(eval, 16);
    EXPECT_LE(optimal.costs.total(), polished.costs.total() + 1e-6);
    EXPECT_NEAR(branch_and_bound_optimal(eval).costs.total(),
                optimal.costs.total(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndChainTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace mvd
