// mvlint on healthy inputs: the paper's Figure 3 MVPP, the Figure 5/7
// pushdown-variant rotations, and every selection algorithm's output
// must produce zero diagnostics; the report/severity plumbing and the
// stage hooks behave as documented.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/error.hpp"
#include "src/lint/lint.hpp"
#include "src/lint/mutate.hpp"
#include "src/mvpp/builder.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class LintCleanTest : public ::testing::Test {
 protected:
  LintCleanTest()
      : catalog_(make_paper_catalog()),
        cost_model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(cost_model_)),
        eval_(graph_) {}

  Catalog catalog_;
  CostModel cost_model_;
  MvppGraph graph_;
  MvppEvaluator eval_;
};

TEST_F(LintCleanTest, Figure3StructureIsClean) {
  const LintReport report = lint_structure(graph_);
  EXPECT_TRUE(report.clean()) << report.render_text();
}

TEST_F(LintCleanTest, Figure3FullGraphPassIsClean) {
  const GraphClosures closures(graph_);
  const LintReport report = lint_graph(graph_, &closures, &cost_model_);
  EXPECT_TRUE(report.clean()) << report.render_text();
}

TEST_F(LintCleanTest, FaithfulMetricsLedgerIsClean) {
  // A registry snapshot whose ledger gauges equal the selection costs
  // must pass obs/metrics-consistent; snapshots with no ledger (or no
  // snapshot at all) make the rule skip rather than fire.
  const SelectionResult selection = yang_heuristic(eval_);
  MetricsSnapshot snap;
  MetricValue qp;
  qp.kind = MetricKind::kGauge;
  qp.value = selection.costs.query_processing;
  snap.metrics["selection/ledger/query_blocks"] = qp;
  MetricValue maint;
  maint.kind = MetricKind::kGauge;
  maint.value = selection.costs.maintenance;
  snap.metrics["selection/ledger/maintenance_blocks"] = maint;

  LintContext ctx;
  ctx.graph = &graph_;
  ctx.evaluator = &eval_;
  ctx.cost_model = &cost_model_;
  ctx.selections.push_back({&selection, std::nullopt});
  ctx.metrics = &snap;
  EXPECT_TRUE(LintRegistry::builtin().run(ctx).clean());

  const MetricsSnapshot empty;
  ctx.metrics = &empty;
  EXPECT_TRUE(LintRegistry::builtin().run(ctx).clean());
}

TEST_F(LintCleanTest, EverySelectionAlgorithmProducesLintCleanResults) {
  const std::vector<SelectionResult> results = {
      select_nothing(eval_),
      select_all_query_results(eval_),
      select_all_operations(eval_),
      yang_heuristic(eval_),
      greedy_incremental(eval_),
      exhaustive_optimal(eval_),
      branch_and_bound_optimal(eval_),
      local_search(eval_, {}),
      simulated_annealing(eval_, {}),
  };
  for (const SelectionResult& r : results) {
    const LintReport report =
        lint_selection(eval_, r, std::nullopt, &cost_model_);
    EXPECT_TRUE(report.clean()) << r.algorithm << ":\n" << report.render_text();
  }
}

TEST_F(LintCleanTest, BudgetedAlgorithmsStayWithinBudgetAndClean) {
  const double budget =
      total_view_blocks(graph_, select_all_operations(eval_).materialized) / 2;
  for (const SelectionResult& r :
       {budgeted_greedy(eval_, budget), budgeted_optimal(eval_, budget)}) {
    const LintReport report = lint_selection(eval_, r, budget, &cost_model_);
    EXPECT_TRUE(report.clean()) << r.algorithm << ":\n" << report.render_text();
  }
}

TEST(LintRotationsTest, AllRotationMvppsAreClean) {
  const PaperExample example = make_paper_example();
  const CostModel cost_model(example.catalog, paper_cost_config());
  const Optimizer optimizer(cost_model);
  const MvppBuilder builder(optimizer);
  const std::vector<MvppBuildResult> candidates =
      builder.build_all_rotations(example.queries);
  ASSERT_EQ(candidates.size(), example.queries.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const MvppEvaluator eval(candidates[i].graph);
    const SelectionResult selection = yang_heuristic(eval);
    const LintReport report =
        lint_selection(eval, selection, std::nullopt, &cost_model);
    EXPECT_TRUE(report.clean())
        << "rotation " << i << ":\n" << report.render_text();
  }
}

TEST(LintRotationsTest, PushdownVariantRotationsAreClean) {
  const Catalog catalog = make_paper_catalog();
  const CostModel cost_model(catalog, paper_cost_config());
  const Optimizer optimizer(cost_model);
  const MvppBuilder builder(optimizer);
  for (const MvppBuildResult& candidate :
       builder.build_all_rotations(make_pushdown_variant_queries(catalog))) {
    const MvppEvaluator eval(candidate.graph);
    const LintReport report = lint_selection(eval, yang_heuristic(eval),
                                             std::nullopt, &cost_model);
    EXPECT_TRUE(report.clean()) << report.render_text();
  }
}

// ---- Report plumbing -------------------------------------------------

TEST(LintReportTest, SeverityParsingAndRendering) {
  EXPECT_EQ(severity_from_string("error"), Severity::kError);
  EXPECT_EQ(severity_from_string("WARN"), Severity::kWarn);
  EXPECT_EQ(severity_from_string("Info"), Severity::kInfo);
  EXPECT_THROW(severity_from_string("fatal"), PlanError);
  EXPECT_EQ(to_string(Severity::kWarn), "warn");
}

TEST(LintReportTest, FilterCountAndJson) {
  LintReport report;
  report.add({"structure/arity", Severity::kError, 3, "tmp3", "bad", "fix"});
  report.add({"structure/orphan-op", Severity::kWarn, 5, "tmp5", "meh", ""});
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_EQ(report.count(Severity::kWarn), 1u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(report.filtered(Severity::kError).diagnostics().size(), 1u);
  EXPECT_EQ(report.fired_rules(),
            (std::set<std::string>{"structure/arity", "structure/orphan-op"}));

  const Json j = report.to_json();
  EXPECT_EQ(j.at("errors").as_number(), 1);
  EXPECT_EQ(j.at("warnings").as_number(), 1);
  EXPECT_EQ(j.at("diagnostics").size(), 2u);
  EXPECT_EQ(j.at("diagnostics").at(0).at("rule").as_string(),
            "structure/arity");
}

TEST(LintRegistryTest, DuplicateRuleIdsAreRejected) {
  LintRegistry registry;
  registry.add({"x/dup", LintPhase::kStructure, Severity::kError, "one",
                [](const LintContext&, RuleEmitter&) {}});
  EXPECT_THROW(registry.add({"x/dup", LintPhase::kStructure, Severity::kError,
                             "two", [](const LintContext&, RuleEmitter&) {}}),
               PlanError);
}

// ---- Stage hooks -----------------------------------------------------

struct HookLevelGuard {
  explicit HookLevelGuard(LintHookLevel level) { set_lint_hook_level(level); }
  ~HookLevelGuard() { set_lint_hook_level(std::nullopt); }
};

TEST_F(LintCleanTest, HooksPassSilentlyOnCleanPipelines) {
  HookLevelGuard guard(LintHookLevel::kError);
  // build + annotate hooks fire inside, selection hook on every finish.
  EXPECT_NO_THROW({
    const MvppGraph g = build_figure3_mvpp(cost_model_);
    const MvppEvaluator eval(g);
    yang_heuristic(eval);
    greedy_incremental(eval);
  });
}

TEST_F(LintCleanTest, SelectionHookThrowsOnCorruptedAnnotation) {
  HookLevelGuard guard(LintHookLevel::kError);
  MvppGraph corrupted = graph_;
  MvppGraphMutator(corrupted).node(corrupted.operation_ids().front()).rows =
      -1;
  const MvppEvaluator eval(corrupted);
  try {
    yang_heuristic(eval);
    FAIL() << "expected the selection-stage hook to throw";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("mvlint[selection]"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("annotation/non-negative"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(LintCleanTest, HooksAreOffByDefaultOverride) {
  HookLevelGuard guard(LintHookLevel::kOff);
  MvppGraph corrupted = graph_;
  MvppGraphMutator(corrupted).node(corrupted.operation_ids().front()).rows =
      -1;
  const MvppEvaluator eval(corrupted);
  EXPECT_NO_THROW(greedy_incremental(eval));
}

}  // namespace
}  // namespace mvd
