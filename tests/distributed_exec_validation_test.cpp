// §4.1 transfer validation: the DistributedMvppEvaluator's *predicted*
// cross-site transfer blocks must track the *measured* exchange traffic
// of the in-process sharded engine running the same plans over the same
// data.
//
// Correspondence: the model is given a two-site topology — every base
// relation at "store", every query issued at "warehouse" — so the
// predicted answer transfer of a query over an empty materialized set is
// the estimated result (or partial-aggregate) volume shipped to the
// consumer. The engine's analogue is the gather stage: per-bucket results
// / aggregate partials collected onto the coordinator, counted in
// ExecStats::blocks_exchanged. Prediction uses estimated cardinalities
// and whole-result blocks; measurement uses actual cardinalities and
// per-bucket block rounding (up to +1 block per non-empty bucket), so the
// two agree within a stated factor, not exactly. Stated factor: 3.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/distributed/distributed_evaluator.hpp"
#include "src/exec/sharded.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/storage/sharded_table.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

/// Predicted-vs-measured agreement factor. Covers estimation error of the
/// cost model's cardinalities plus the per-bucket ceil() of the engine's
/// gather accounting; it is NOT a tunable tolerance — tightening it is a
/// model improvement, loosening it is a regression.
constexpr double kStatedFactor = 3.0;

class TransferValidationTest : public ::testing::Test {
 protected:
  TransferValidationTest() {
    StarSchemaOptions schema;
    schema.dimensions = 2;
    schema.fact_rows = 20'000;
    schema.dimension_rows = 1'000;
    db_ = populate_star_database(schema, 7);
    catalog_ = catalog_from_database(db_, 10.0);

    designer_ = std::make_unique<WarehouseDesigner>(catalog_);
    // Hand-written queries whose transfer shape is controlled: a grouped
    // rollup on the partition key, a fact-dimension join, and a fact
    // selection — all rooted on the partitioned fact table.
    designer_->add_query("Q1", 5.0,
                         "SELECT Fact.d0, SUM(Fact.measure) FROM Fact "
                         "GROUP BY Fact.d0");
    designer_->add_query("Q2", 1.0,
                         "SELECT Dim0.category, Fact.measure FROM Fact, Dim0 "
                         "WHERE Fact.d0 = Dim0.id");
    designer_->add_query("Q3", 2.0,
                         "SELECT Fact.d0, Fact.measure FROM Fact "
                         "WHERE Fact.measure > 500");
    design_ = designer_->design();

    SiteTopology topo({"warehouse", "store"});
    for (const std::string& r : {"Fact", "Dim0", "Dim1"}) {
      topo.place_relation(r, "store");
    }
    for (const std::string& q : {"Q1", "Q2", "Q3"}) {
      topo.place_query(q, "warehouse");
    }
    dist_ = std::make_unique<DistributedMvppEvaluator>(design_.graph(),
                                                       std::move(topo));
  }

  Database db_;
  Catalog catalog_{10.0};
  std::unique_ptr<WarehouseDesigner> designer_;
  DesignResult design_;
  std::unique_ptr<DistributedMvppEvaluator> dist_;
};

TEST_F(TransferValidationTest, LoadExchangeMatchesStorageVolumes) {
  // The load-time exchange is exact, not estimated: partitioning shuffles
  // every fact row once, replication broadcasts each dimension to every
  // shard.
  const std::size_t shards = 4;
  ShardedDatabase sdb = shard_database(db_, shards, {{"Fact", "d0"}});
  const ExchangeCounters& log = sdb.exchange_log();
  EXPECT_DOUBLE_EQ(log.shuffle_rows,
                   static_cast<double>(db_.table("Fact").row_count()));
  const double dim_rows =
      static_cast<double>(db_.table("Dim0").row_count()) +
      static_cast<double>(db_.table("Dim1").row_count());
  EXPECT_DOUBLE_EQ(log.broadcast_rows, dim_rows * shards);
  const double dim_blocks =
      db_.table("Dim0").blocks() + db_.table("Dim1").blocks();
  EXPECT_DOUBLE_EQ(log.broadcast_blocks, dim_blocks * shards);
}

// The factor comparison runs on the paper's running example at scale 1,
// where the populated data is constructed so executed selectivities match
// the catalog statistics (§2 / Table 1) — prediction error then reflects
// the transfer model, not cardinality estimation. Order and Customer live
// at "store" (Order hash-partitioned on Cid in the engine, Customer
// replicated at load); Product / Division / Part and all query consumers
// live at "warehouse".
TEST(PaperTransferValidationTest, PredictedTransferTracksMeasuredGather) {
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const MvppGraph g = build_figure3_mvpp(model);

  SiteTopology topo({"warehouse", "store"});
  topo.place_relation("Order", "store");
  topo.place_relation("Customer", "store");
  for (const std::string& r : {"Product", "Division", "Part"}) {
    topo.place_relation(r, "warehouse");
  }
  for (const std::string& q : {"Q1", "Q2", "Q3", "Q4"}) {
    topo.place_query(q, "warehouse");
  }
  const DistributedMvppEvaluator dist(g, std::move(topo));

  const Database db = populate_paper_database(1.0, 17);
  ShardedDatabase sdb = shard_database(db, 4, {{"Order", "Cid"}});
  const ShardedExecutor exec(sdb);
  const MaterializedSet none;

  // Q1 and Q2 never touch the store site: the model predicts zero
  // transfer and the engine routes them to the coordinator replicas
  // without any exchange.
  for (const std::string& name : {"Q1", "Q2"}) {
    const NodeId q = g.find_by_name(name);
    ASSERT_GE(q, 0) << name;
    EXPECT_DOUBLE_EQ(dist.answer_transfer_blocks(q, none), 0.0) << name;
    ExecStats stats;
    exec.run(answer_plan(g, q, none), &stats);
    EXPECT_DOUBLE_EQ(stats.blocks_exchanged, 0.0) << name;
  }

  // Q3 and Q4 read the partitioned Order spine. The model's predicted
  // answer transfer splits into two components with distinct engine
  // counterparts:
  //
  //   result ship    produce_transfer excluded — the result volume shipped
  //                  to the consumer site. Engine counterpart: the gather
  //                  of per-bucket results onto the coordinator, measured
  //                  per run. Compared within the stated factor, after
  //                  normalizing the gathered rows to the model's
  //                  width-aware blocks (the engine packs a fixed 10
  //                  rows/block; the model packs by tuple width).
  //
  //   input ship     produce_transfer — warehouse-side join inputs (tmp2)
  //                  shipped to the store site per execution. The engine
  //                  pays this ONCE at load by replicating the warehouse
  //                  relations to every shard, so per-run exchange shows
  //                  none of it; the load-time broadcast per shard must
  //                  upper-bound it.
  const double per_shard_replicated =
      sdb.exchange_log().broadcast_blocks / static_cast<double>(sdb.shards());
  for (const std::string& name : {"Q3", "Q4"}) {
    const NodeId q = g.find_by_name(name);
    const NodeId r = g.find_by_name(name == "Q3" ? "result3" : "result4");
    ASSERT_GE(q, 0) << name;
    ASSERT_GE(r, 0) << name;
    const double input_ship = dist.produce_transfer_blocks(r, none);
    const double result_ship = dist.answer_transfer_blocks(q, none) - input_ship;

    ExecStats stats;
    const Table result = exec.run(answer_plan(g, q, none), &stats);
    const double rows_per_model_block = g.node(r).rows / g.node(r).blocks;
    const double measured_ship = stats.rows_exchanged / rows_per_model_block;

    EXPECT_GT(result.row_count(), 0u) << name;
    ASSERT_GT(result_ship, 0.0) << name;
    ASSERT_GT(measured_ship, 0.0) << name;
    const double ratio = result_ship > measured_ship
                             ? result_ship / measured_ship
                             : measured_ship / result_ship;
    EXPECT_LE(ratio, kStatedFactor)
        << name << ": predicted result ship " << result_ship
        << " blocks, measured gather " << measured_ship << " model blocks ("
        << stats.rows_exchanged << " rows)";
    EXPECT_LE(input_ship, per_shard_replicated) << name;
  }
}

TEST_F(TransferValidationTest, MeasuredGatherIsShardCountInvariant) {
  // The gather is per *bucket*, and buckets are fixed: the measured
  // exchange volume of a run must not depend on the shard count.
  const MvppGraph& g = design_.graph();
  const MaterializedSet none;
  for (const std::string& name : {"Q1", "Q2", "Q3"}) {
    const NodeId q = g.find_by_name(name);
    std::vector<double> volumes;
    for (const std::size_t shards : {1u, 4u, 8u}) {
      ShardedDatabase sdb = shard_database(db_, shards, {{"Fact", "d0"}});
      ExecStats stats;
      ShardedExecutor(sdb).run(answer_plan(g, q, none), &stats);
      volumes.push_back(stats.blocks_exchanged);
    }
    EXPECT_DOUBLE_EQ(volumes[0], volumes[1]) << name;
    EXPECT_DOUBLE_EQ(volumes[0], volumes[2]) << name;
  }
}

}  // namespace
}  // namespace mvd
