// mvserve tests: view-subsumption matching and compensation synthesis
// (src/optimizer/view_rewrite), the deployed-view registry lifecycle
// (VALID / STALE / BUILDING gating the matcher), MvServer's serve /
// ingest / refresh protocol, and the snapshot-swap concurrency contract
// (MvserveTsanTest, also run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/check/implication.hpp"
#include "src/lint/registry.hpp"
#include "src/serve/server.hpp"
#include "src/sql/parser.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

WarehouseDesigner paper_designer() {
  DesignerOptions options;
  options.cost = paper_cost_config();
  WarehouseDesigner designer(make_paper_catalog(), options);
  for (const QuerySpec& q : make_paper_example().queries) {
    designer.add_query(q);
  }
  return designer;
}

/// Force-materialize every query's result node, so each registered query
/// has a covering view — deterministic fixtures for the matcher and the
/// lifecycle tests regardless of what the selection heuristic picks.
DesignResult forced_design(const WarehouseDesigner& designer) {
  DesignResult design = designer.design();
  MaterializedSet m;
  const MvppGraph& g = design.graph();
  for (const NodeId q : g.query_ids()) {
    m.insert(g.node(q).children[0]);
  }
  design.selection.materialized = std::move(m);
  return design;
}

/// A view summarized from a SQL definition's canonical plan.
ViewDef view_from_sql(const Catalog& c, const std::string& name,
                      const std::string& sql) {
  const QuerySpec spec = parse_and_bind(c, name, 1.0, sql);
  return extract_view_def(name, canonical_plan(c, spec), 100.0);
}

// ---- Matching & compensation ----------------------------------------------

class ViewMatchTest : public ::testing::Test {
 protected:
  ViewMatchTest() : catalog_(make_paper_catalog()) {}

  QuerySpec query(const std::string& sql) const {
    return parse_adhoc(catalog_, sql);
  }

  Catalog catalog_;
};

TEST_F(ViewMatchTest, ExactMatchHasEmptyResidual) {
  const ViewDef v = view_from_sql(
      catalog_, "v_q4",
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  std::string why;
  const auto m = match_query_to_view(
      query("SELECT Customer.city, date FROM Order, Customer "
            "WHERE quantity > 100 AND Order.Cid = Customer.Cid"),
      v, catalog_, &why);
  ASSERT_TRUE(m.has_value()) << why;
  EXPECT_EQ(m->view, "v_q4");
  EXPECT_TRUE(m->residual.empty());
}

TEST_F(ViewMatchTest, StrictlyNarrowerPredicateLeavesResidual) {
  const ViewDef v = view_from_sql(
      catalog_, "v_q4",
      "SELECT Customer.city, date, quantity FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  const auto m = match_query_to_view(
      query("SELECT Customer.city, date FROM Order, Customer "
            "WHERE quantity > 150 AND Order.Cid = Customer.Cid"),
      v, catalog_);
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->residual.size(), 1u);  // quantity > 150; the join is entailed
}

TEST_F(ViewMatchTest, NeSharpenedBoundaryStillMatches) {
  // quantity >= 100 AND quantity <> 100 == quantity > 100 on an integer
  // column — the ne-set endpoint sharpening the oracle fix added.
  const ViewDef v = view_from_sql(
      catalog_, "v_q4",
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  const auto m = match_query_to_view(
      query("SELECT Customer.city, date FROM Order, Customer "
            "WHERE quantity >= 100 AND quantity <> 100 "
            "AND Order.Cid = Customer.Cid"),
      v, catalog_);
  EXPECT_TRUE(m.has_value());
}

TEST_F(ViewMatchTest, NearMissPredicateJustOutsideRefuses) {
  const ViewDef v = view_from_sql(
      catalog_, "v_q4",
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  // quantity > 99 admits quantity = 100, which the view discarded.
  std::string why;
  EXPECT_FALSE(match_query_to_view(
                   query("SELECT Customer.city, date FROM Order, Customer "
                         "WHERE quantity > 99 AND Order.Cid = Customer.Cid"),
                   v, catalog_, &why)
                   .has_value());
  EXPECT_FALSE(why.empty());
  // So does the closed endpoint quantity >= 100.
  EXPECT_FALSE(match_query_to_view(
                   query("SELECT Customer.city, date FROM Order, Customer "
                         "WHERE quantity >= 100 AND Order.Cid = Customer.Cid"),
                   v, catalog_)
                   .has_value());
}

TEST_F(ViewMatchTest, NearMissExtraOrMissingJoinRefuses) {
  const ViewDef v = view_from_sql(
      catalog_, "v_q4",
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  std::string why;
  // Extra join (one more relation than the view).
  EXPECT_FALSE(
      match_query_to_view(
          query("SELECT Customer.city FROM Order, Customer, Product "
                "WHERE quantity > 100 AND Order.Cid = Customer.Cid "
                "AND Order.Pid = Product.Pid"),
          v, catalog_, &why)
          .has_value());
  EXPECT_EQ(why, "relation sets differ");
  // Missing join (a subset of the view's relations).
  EXPECT_FALSE(match_query_to_view(
                   query("SELECT date FROM Order WHERE quantity > 100"), v,
                   catalog_)
                   .has_value());
}

TEST_F(ViewMatchTest, ProjectionColumnNotStoredRefuses) {
  const ViewDef v = view_from_sql(
      catalog_, "v_q4",
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  std::string why;
  EXPECT_FALSE(match_query_to_view(
                   query("SELECT Customer.name FROM Order, Customer "
                         "WHERE quantity > 100 AND Order.Cid = Customer.Cid"),
                   v, catalog_, &why)
                   .has_value());
  EXPECT_NE(why.find("not stored"), std::string::npos);
}

TEST_F(ViewMatchTest, AggregatePassThroughProjectsStoredColumns) {
  const ViewDef v = view_from_sql(
      catalog_, "v_agg",
      "SELECT Customer.city, count(*) AS cnt, sum(quantity) AS sq "
      "FROM Order, Customer WHERE Order.Cid = Customer.Cid "
      "GROUP BY Customer.city");
  std::string why;
  const auto m = match_query_to_view(
      query("SELECT Customer.city, count(*), sum(quantity) "
            "FROM Order, Customer WHERE Order.Cid = Customer.Cid "
            "GROUP BY Customer.city"),
      v, catalog_, &why);
  ASSERT_TRUE(m.has_value()) << why;
  // Pass-through: no re-aggregation, just a projection of stored columns.
  EXPECT_EQ(m->plan->kind(), OpKind::kProject);
}

TEST_F(ViewMatchTest, RollupFromFinerGrouping) {
  const ViewDef v = view_from_sql(
      catalog_, "v_fine",
      "SELECT Customer.city, date, count(*) AS cnt, sum(quantity) AS sq, "
      "min(quantity) AS mn, max(quantity) AS mx "
      "FROM Order, Customer WHERE Order.Cid = Customer.Cid "
      "GROUP BY Customer.city, date");
  std::string why;
  const auto m = match_query_to_view(
      query("SELECT Customer.city, count(*), sum(quantity), min(quantity), "
            "max(quantity) FROM Order, Customer "
            "WHERE Order.Cid = Customer.Cid GROUP BY Customer.city"),
      v, catalog_, &why);
  ASSERT_TRUE(m.has_value()) << why;
  ASSERT_EQ(m->plan->kind(), OpKind::kAggregate);
  const auto& agg = static_cast<const AggregateOp&>(*m->plan);
  ASSERT_EQ(agg.aggregates().size(), 4u);
  // COUNT rolls up as an integer-preserving sum of stored counts.
  EXPECT_EQ(agg.aggregates()[0].fn, AggFn::kSumInt);
  EXPECT_EQ(agg.aggregates()[1].fn, AggFn::kSum);
  EXPECT_EQ(agg.aggregates()[2].fn, AggFn::kMin);
  EXPECT_EQ(agg.aggregates()[3].fn, AggFn::kMax);
}

TEST_F(ViewMatchTest, AvgRefusesRollupButAllowsPassThrough) {
  const ViewDef v = view_from_sql(
      catalog_, "v_fine",
      "SELECT Customer.city, date, avg(quantity) AS aq "
      "FROM Order, Customer WHERE Order.Cid = Customer.Cid "
      "GROUP BY Customer.city, date");
  std::string why;
  EXPECT_FALSE(match_query_to_view(
                   query("SELECT Customer.city, avg(quantity) "
                         "FROM Order, Customer WHERE Order.Cid = Customer.Cid "
                         "GROUP BY Customer.city"),
                   v, catalog_, &why)
                   .has_value());
  EXPECT_NE(why.find("avg"), std::string::npos);
  EXPECT_TRUE(match_query_to_view(
                  query("SELECT Customer.city, date, avg(quantity) "
                        "FROM Order, Customer WHERE Order.Cid = Customer.Cid "
                        "GROUP BY Customer.city, date"),
                  v, catalog_)
                  .has_value());
}

TEST_F(ViewMatchTest, NearMissCoarserViewGroupingRefuses) {
  // The view groups coarser than the query asks — the stored rows no
  // longer hold the query's groups.
  const ViewDef v = view_from_sql(
      catalog_, "v_coarse",
      "SELECT Customer.city, count(*) AS cnt FROM Order, Customer "
      "WHERE Order.Cid = Customer.Cid GROUP BY Customer.city");
  EXPECT_FALSE(match_query_to_view(
                   query("SELECT Customer.city, date, count(*) "
                         "FROM Order, Customer WHERE Order.Cid = Customer.Cid "
                         "GROUP BY Customer.city, date"),
                   v, catalog_)
                   .has_value());
}

TEST_F(ViewMatchTest, SpjQueryOverAggregateViewRefuses) {
  const ViewDef v = view_from_sql(
      catalog_, "v_agg",
      "SELECT Customer.city, count(*) AS cnt FROM Order, Customer "
      "WHERE Order.Cid = Customer.Cid GROUP BY Customer.city");
  std::string why;
  EXPECT_FALSE(match_query_to_view(
                   query("SELECT Customer.city FROM Order, Customer "
                         "WHERE Order.Cid = Customer.Cid"),
                   v, catalog_, &why)
                   .has_value());
  EXPECT_NE(why.find("SPJ query over an aggregate view"), std::string::npos);
}

TEST_F(ViewMatchTest, ResidualFinerThanAggregateGroupingRefuses) {
  const ViewDef v = view_from_sql(
      catalog_, "v_agg",
      "SELECT Customer.city, count(*) AS cnt FROM Order, Customer "
      "WHERE Order.Cid = Customer.Cid GROUP BY Customer.city");
  // quantity > 100 filters inside groups; the stored rows cannot apply it.
  std::string why;
  EXPECT_FALSE(match_query_to_view(
                   query("SELECT Customer.city, count(*) "
                         "FROM Order, Customer "
                         "WHERE Order.Cid = Customer.Cid AND quantity > 100 "
                         "GROUP BY Customer.city"),
                   v, catalog_, &why)
                   .has_value());
  EXPECT_FALSE(why.empty());
}

TEST_F(ViewMatchTest, AggregateQueryOverSpjViewReaggregates) {
  const ViewDef v = view_from_sql(
      catalog_, "v_spj",
      "SELECT Customer.city, quantity, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  std::string why;
  const auto m = match_query_to_view(
      query("SELECT Customer.city, count(*), max(quantity) "
            "FROM Order, Customer "
            "WHERE quantity > 150 AND Order.Cid = Customer.Cid "
            "GROUP BY Customer.city"),
      v, catalog_, &why);
  ASSERT_TRUE(m.has_value()) << why;
  EXPECT_EQ(m->plan->kind(), OpKind::kAggregate);
  EXPECT_EQ(m->residual.size(), 1u);
}

TEST_F(ViewMatchTest, BestMatchPrefersFewestStoredBlocks) {
  ViewDef big = view_from_sql(
      catalog_, "v_big",
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  ViewDef small = big;
  small.name = "v_small";
  big.stored_blocks = 500;
  small.stored_blocks = 50;
  const QuerySpec q =
      query("SELECT Customer.city, date FROM Order, Customer "
            "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  const auto m = best_view_match(q, {big, small}, catalog_);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->view, "v_small");
}

// ---- MvServer: serving, lifecycle, refresh ---------------------------------

class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : designer_(paper_designer()),
        design_(forced_design(designer_)),
        server_(std::make_unique<MvServer>(designer_.catalog(), design_,
                                           populate_paper_database(0.02, 23))) {
  }

  /// Name of the stored view answering query root `q` (its result node).
  std::string view_of(const std::string& query_name) const {
    const MvppGraph& g = design_.graph();
    const NodeId q = g.find_by_name(query_name);
    return g.node(g.node(q).children[0]).name;
  }

  WarehouseDesigner designer_;
  DesignResult design_;
  std::unique_ptr<MvServer> server_;
};

TEST_F(ServeTest, RegisteredWorkloadRewritesAndMatchesBase) {
  for (const QuerySpec& q : designer_.queries()) {
    const ServeResult hit = server_->serve(q);
    const ServeResult base = server_->serve(q, ServePath::kBaseOnly);
    EXPECT_TRUE(hit.rewritten) << q.name() << ": " << hit.refusal;
    EXPECT_FALSE(base.rewritten);
    EXPECT_TRUE(same_bag(hit.table, base.table)) << q.name();
    // ExecStats sanity: both paths did real block work, and the rewritten
    // path never scans more rows than it reports reading.
    EXPECT_GT(hit.stats.blocks_read, 0) << q.name();
    EXPECT_GT(base.stats.blocks_read, 0) << q.name();
    EXPECT_GE(hit.stats.rows_scanned,
              static_cast<double>(hit.table.row_count()));
  }
}

TEST_F(ServeTest, SqlEntryPointServesAdhocResidualQuery) {
  // Narrower than Q4's view (extra date conjunct); the residual runs over
  // the stored date column.
  const std::string sql =
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND date > DATE '1996-07-01' "
      "AND Order.Cid = Customer.Cid";
  const ServeResult hit = server_->serve(sql);
  EXPECT_TRUE(hit.rewritten) << hit.refusal;
  const ServeResult base = server_->serve(sql, ServePath::kBaseOnly);
  EXPECT_TRUE(same_bag(hit.table, base.table));
  EXPECT_LT(hit.table.row_count(), base.stats.rows_scanned);
}

TEST_F(ServeTest, UncoveredQueryFallsBackWithReason) {
  const ServeResult r = server_->serve("SELECT name FROM Division");
  EXPECT_FALSE(r.rewritten);
  EXPECT_FALSE(r.refusal.empty());
  EXPECT_EQ(r.table.schema().size(), 1u);
  EXPECT_THROW(server_->serve("SELECT name FROM Division",
                              ServePath::kViewOnly),
               ExecError);
}

TEST_F(ServeTest, RewriteSwitchDisablesMatching) {
  MvServer plain(designer_.catalog(), design_,
                 populate_paper_database(0.02, 23),
                 ServeOptions{ExecMode::kRow, 1, /*rewrite=*/false});
  const ServeResult r = plain.serve(designer_.queries()[0]);
  EXPECT_FALSE(r.rewritten);
  EXPECT_EQ(r.refusal, "rewriting disabled");
  // The forced view-only path overrides the switch.
  EXPECT_TRUE(plain.serve(designer_.queries()[0], ServePath::kViewOnly)
                  .rewritten);
}

TEST_F(ServeTest, IngestMarksDependentViewsStaleAndMatcherSkipsThem) {
  const QuerySpec& q4 = designer_.queries()[3];
  ASSERT_TRUE(server_->serve(q4).rewritten);

  Rng rng(99);
  const std::uint64_t epoch = server_->ingest("Order", {}, rng);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(server_->status(view_of("Q4")), ViewStatus::kStale);
  EXPECT_EQ(server_->status(view_of("Q3")), ViewStatus::kStale);
  // Q1 reads Product/Division only; untouched.
  EXPECT_EQ(server_->status(view_of("Q1")), ViewStatus::kValid);

  // The stale view no longer serves, but the fallback answer is already
  // consistent with the updated base tables of the same snapshot.
  const ServeResult r = server_->serve(q4);
  EXPECT_FALSE(r.rewritten);
  EXPECT_TRUE(same_bag(r.table,
                       server_->serve(q4, ServePath::kBaseOnly).table));
  // Q1's view still serves.
  EXPECT_TRUE(server_->serve(designer_.queries()[0]).rewritten);
}

TEST_F(ServeTest, BuildingViewsNeverServe) {
  Rng rng(99);
  server_->ingest("Order", {}, rng);
  server_->begin_refresh();
  EXPECT_EQ(server_->status(view_of("Q4")), ViewStatus::kBuilding);
  const ServeResult r = server_->serve(designer_.queries()[3]);
  EXPECT_FALSE(r.rewritten);

  server_->finish_refresh(RefreshMode::kRecompute);
  EXPECT_EQ(server_->status(view_of("Q4")), ViewStatus::kValid);
  const ServeResult again = server_->serve(designer_.queries()[3]);
  EXPECT_TRUE(again.rewritten);
  EXPECT_TRUE(same_bag(
      again.table,
      server_->serve(designer_.queries()[3], ServePath::kBaseOnly).table));
}

TEST_F(ServeTest, IncrementalRefreshRestoresServingWithCorrectContent) {
  Rng rng(7);
  server_->ingest("Order", {}, rng);
  server_->ingest("Customer", {}, rng);
  server_->refresh(RefreshMode::kIncremental);
  for (const QuerySpec& q : designer_.queries()) {
    const ServeResult hit = server_->serve(q);
    EXPECT_TRUE(hit.rewritten) << q.name() << ": " << hit.refusal;
    EXPECT_TRUE(same_bag(hit.table,
                         server_->serve(q, ServePath::kBaseOnly).table))
        << q.name();
  }
}

TEST_F(ServeTest, PinnedSnapshotSurvivesConcurrentSwap) {
  const QuerySpec& q4 = designer_.queries()[3];
  const auto pre = server_->snapshot();
  const ServeResult before = server_->serve_on(pre, q4);

  Rng rng(5);
  server_->update_and_refresh("Order", {}, rng, RefreshMode::kRecompute);
  EXPECT_EQ(server_->epoch(), 1u);

  // The pinned snapshot still answers, and still answers the *old* state.
  const ServeResult replay = server_->serve_on(pre, q4);
  EXPECT_TRUE(same_bag(before.table, replay.table));
  // The current snapshot serves the new state from a VALID view.
  const ServeResult now = server_->serve(q4);
  EXPECT_TRUE(now.rewritten);
  EXPECT_TRUE(same_bag(now.table,
                       server_->serve(q4, ServePath::kBaseOnly).table));
}

TEST_F(ServeTest, RewriteLogEvidenceRechecks) {
  for (const QuerySpec& q : designer_.queries()) server_->serve(q);
  const std::vector<RewriteRecord> log = server_->rewrite_log();
  ASSERT_EQ(log.size(), designer_.queries().size());
  for (const RewriteRecord& r : log) {
    EXPECT_TRUE(implies(r.query_pred, r.view_pred, r.joint))
        << r.query << " -> " << r.view;
  }
}

// The rewrite log plugs into mvlint's serve/rewrite-consistent rule: a
// genuine log lints clean, and corrupting one record's evidence fires
// exactly that rule.
TEST_F(ServeTest, RewriteLogFeedsTheLintRule) {
  for (const QuerySpec& q : designer_.queries()) server_->serve(q);

  LintContext ctx;
  ctx.graph = &design_.graph();
  for (const RewriteRecord& r : server_->rewrite_log()) {
    ctx.rewrites.push_back(
        ServeRewriteCheck{r.query, r.view, r.query_pred, r.view_pred, r.joint});
  }
  ASSERT_FALSE(ctx.rewrites.empty());

  const LintRegistry& lint = LintRegistry::builtin();
  EXPECT_FALSE(lint.run(ctx).has_errors()) << lint.run(ctx).render_text();

  // Tamper: make one record's view predicate unsatisfiable over an int64
  // column of its joint schema. No satisfiable query predicate implies it.
  ServeRewriteCheck& victim = ctx.rewrites.front();
  const auto attr =
      std::find_if(victim.joint.attributes().begin(),
                   victim.joint.attributes().end(), [](const Attribute& a) {
                     return a.type == ValueType::kInt64;
                   });
  ASSERT_NE(attr, victim.joint.attributes().end());
  victim.view_pred = conj({cmp(CompareOp::kGt, col(attr->qualified()),
                               lit_i64(0)),
                           cmp(CompareOp::kLt, col(attr->qualified()),
                               lit_i64(0))});

  const LintReport tampered = lint.run(ctx);
  EXPECT_TRUE(tampered.has_errors());
  EXPECT_EQ(tampered.fired_rules(),
            std::set<std::string>{"serve/rewrite-consistent"});
}

// ---- Concurrency: the snapshot/epoch contract (also run under TSan) --------

TEST(MvserveTsanTest, ReadersNeverObserveTornSnapshots) {
  WarehouseDesigner designer = paper_designer();
  const DesignResult design = forced_design(designer);
  MvServer server(designer.catalog(), design,
                  populate_paper_database(0.005, 31));
  const std::vector<QuerySpec> queries = designer.queries();

  std::atomic<bool> done{false};
  std::atomic<int> mixes{0};
  std::atomic<int> served{0};

  // Readers pin a snapshot and check its internal consistency: on one
  // snapshot, the view path and the base path must agree — a torn swap
  // (views from one epoch, bases from another) shows up as a mismatch.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      // Run until the writer quiesces, but at least a few rounds even if
      // the writer wins the race — the consistency check must execute.
      std::size_t i = static_cast<std::size_t>(t);
      while (i < static_cast<std::size_t>(t) + 6 ||
             !done.load(std::memory_order_acquire)) {
        const QuerySpec& q = queries[i++ % queries.size()];
        const auto snap = server.snapshot();
        const ServeResult a = server.serve_on(snap, q);
        const ServeResult b = server.serve_on(snap, q, ServePath::kBaseOnly);
        if (!same_bag(a.table, b.table)) mixes.fetch_add(1);
        served.fetch_add(1);
      }
    });
  }

  // Writer: update + refresh in one atomic publish per round, alternating
  // refresh modes and touched relations.
  Rng rng(77);
  for (int round = 0; round < 6; ++round) {
    const char* relation = (round % 2 == 0) ? "Order" : "Customer";
    const RefreshMode mode = (round % 2 == 0) ? RefreshMode::kIncremental
                                              : RefreshMode::kRecompute;
    server.update_and_refresh(relation, {}, rng, mode);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mixes.load(), 0);
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(server.epoch(), 6u);

  // After the writer quiesces, every view is VALID again and serves the
  // final state.
  for (const QuerySpec& q : queries) {
    const ServeResult r = server.serve(q);
    EXPECT_TRUE(r.rewritten) << q.name() << ": " << r.refusal;
    EXPECT_TRUE(
        same_bag(r.table, server.serve(q, ServePath::kBaseOnly).table))
        << q.name();
  }
}

TEST(MvserveTsanTest, ConcurrentServesShareOneSnapshotSafely) {
  WarehouseDesigner designer = paper_designer();
  const DesignResult design = forced_design(designer);
  MvServer server(designer.catalog(), design,
                  populate_paper_database(0.005, 47));
  const std::vector<QuerySpec> queries = designer.queries();

  // Purely concurrent readers (no writer): per-serve executors must not
  // share mutable state (the columnar cache is per-call).
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        const QuerySpec& q = queries[(t + i) % queries.size()];
        const ServeResult hit = server.serve(q);
        const ServeResult base = server.serve(q, ServePath::kBaseOnly);
        if (!hit.rewritten || !same_bag(hit.table, base.table)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mvd
