// Targeted tests for corners not covered by the per-module suites:
// table mutation helpers, generator aggregation mode, optimizer over
// aggregate queries, serializer edge cases, expression odds and ends.
#include <gtest/gtest.h>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/units.hpp"
#include "src/exec/executor.hpp"
#include "src/mvpp/builder.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/warehouse/designer.hpp"
#include "src/sql/parser.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

TEST(TableMutationTest, UpdateRowReplacesInPlace) {
  Table t(Schema({{"x", ValueType::kInt64, "T"}}), 10.0);
  t.append({Value::int64(1)});
  t.append({Value::int64(2)});
  t.update_row(0, {Value::int64(9)});
  EXPECT_EQ(t.row_count(), 2u);
  // Order is not guaranteed; check the multiset.
  std::multiset<std::int64_t> values;
  for (const Tuple& r : t.rows()) values.insert(r[0].as_int64());
  EXPECT_EQ(values, (std::multiset<std::int64_t>{2, 9}));
  EXPECT_THROW(t.update_row(0, {Value::string("bad")}), ExecError);
}

TEST(TableMutationTest, RemoveRowShrinks) {
  Table t(Schema({{"x", ValueType::kInt64, "T"}}), 10.0);
  t.append({Value::int64(1)});
  t.append({Value::int64(2)});
  t.remove_row(0);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_THROW(t.remove_row(5), AssertionError);
}

TEST(GeneratorTest, AggregationProbabilityProducesRollups) {
  StarSchemaOptions schema;
  const Catalog catalog = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = 10;
  qopts.aggregation_probability = 1.0;
  const auto queries = generate_star_queries(catalog, schema, qopts);
  for (const QuerySpec& q : queries) {
    EXPECT_TRUE(q.has_aggregation()) << q.name();
    EXPECT_EQ(q.group_by().size(), 1u);
    EXPECT_EQ(q.aggregates().size(), 2u);
  }
  qopts.aggregation_probability = 0.0;
  for (const QuerySpec& q : generate_star_queries(catalog, schema, qopts)) {
    EXPECT_FALSE(q.has_aggregation());
  }
}

TEST(GeneratorTest, MixedWorkloadBuildsValidMvpps) {
  StarSchemaOptions schema;
  schema.dimensions = 3;
  const Catalog catalog = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = 6;
  qopts.aggregation_probability = 0.5;
  qopts.seed = 21;
  const auto queries = generate_star_queries(catalog, schema, qopts);
  const CostModel model(catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const MvppBuildResult built =
      builder.build(queries, builder.initial_order(queries));
  built.graph.validate();
  EXPECT_EQ(built.graph.query_ids().size(), queries.size());
}

TEST(OptimizerAggregateTest, AggregateQueriesOptimizeAndExecute) {
  StarSchemaOptions schema;
  schema.dimensions = 2;
  schema.fact_rows = 800;
  schema.dimension_rows = 60;
  const Database db = populate_star_database(schema, 55);
  const Catalog catalog = catalog_from_database(db, 10.0);
  const QuerySpec q = parse_and_bind(
      catalog, "A", 1.0,
      "SELECT Dim0.category, SUM(measure) AS total, COUNT(*) AS n "
      "FROM Fact, Dim0 WHERE Fact.d0 = Dim0.id GROUP BY Dim0.category");
  const CostModel model(catalog, {});
  const Optimizer optimizer(model);
  const Executor exec(db);
  const Table expected = exec.run(canonical_plan(catalog, q));
  const Table optimized = exec.run(optimizer.optimize(q));
  EXPECT_TRUE(same_bag(expected, optimized));
  // SUM of the grouped sums equals the global sum.
  double grouped_total = 0;
  for (const Tuple& r : optimized.rows()) grouped_total += r[1].as_double();
  double global = 0;
  for (const Tuple& r : db.table("Fact").rows()) {
    global += r[3].as_double();  // measure column
  }
  EXPECT_DOUBLE_EQ(grouped_total, global);
}

TEST(ExprCornerTest, NotExprRendering) {
  const ExprPtr e = neg(disj({eq(col("a"), lit_i64(1)),
                              eq(col("b"), lit_i64(2))}));
  EXPECT_EQ(e->to_string(), "(NOT ((a = 1) OR (b = 2)))");
  // Normalization keeps NOT over OR (no De Morgan expansion).
  EXPECT_EQ(normalize(e)->kind(), ExprKind::kNot);
}

TEST(ExprCornerTest, RewriteColumnsOnNull) {
  EXPECT_EQ(rewrite_columns(nullptr, [](const std::string& s) { return s; }),
            nullptr);
  EXPECT_EQ(normalize(nullptr), nullptr);
}

TEST(ParserCornerTest, WhitespaceAndCaseInsensitivity) {
  const ParsedQuery q = parse_query(
      "select\n\tProduct.name\nfrom   Product\nwhere\nProduct.Pid >= 10");
  EXPECT_EQ(q.relations, std::vector<std::string>{"Product"});
  ASSERT_NE(q.where, nullptr);
}

TEST(ParserCornerTest, DeeplyNestedParentheses) {
  const ExprPtr p = parse_predicate("(((((a = 1)))))");
  EXPECT_EQ(p->kind(), ExprKind::kComparison);
}

TEST(DesignerCornerTest, ReportForAggregationWorkload) {
  WarehouseDesigner designer(make_paper_catalog(), [] {
    DesignerOptions o;
    o.cost = paper_cost_config();
    return o;
  }());
  designer.add_query("rollup", 4.0,
                     "SELECT city, COUNT(*) FROM Customer GROUP BY city");
  const DesignResult design = designer.design();
  const std::string report = designer.report(design);
  EXPECT_NE(report.find("rollup"), std::string::npos);
  EXPECT_NE(report.find("aggregate"), std::string::npos);
}

TEST(DesignerCornerTest, SingleQuerySingleRotation) {
  WarehouseDesigner designer(make_paper_catalog());
  designer.add_query("only", 1.0, "SELECT name FROM Product");
  const DesignResult design = designer.design();
  EXPECT_EQ(design.candidates.size(), 1u);
}

TEST(EvaluatorCornerTest, ProduceCostOfQueryRootRejected) {
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const MvppGraph g = build_figure3_mvpp(model);
  const MvppEvaluator eval(g);
  EXPECT_THROW(eval.produce_cost(g.query_ids().front(), {}), AssertionError);
}

TEST(UnitsCornerTest, NegativeAndTinyValues) {
  EXPECT_EQ(format_blocks(-35'250), "-35.25k");
  EXPECT_EQ(format_blocks(0.5), "0.5");
  EXPECT_DOUBLE_EQ(parse_blocks("-2k"), -2'000.0);
}

TEST(PushdownVariantCornerTest, VariantWorkloadEndToEnd) {
  // The Figure 7/8 variant also answers correctly through deployed views.
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const auto queries = make_pushdown_variant_queries(catalog);
  const MvppBuildResult built =
      builder.build(queries, builder.initial_order(queries));
  const MvppGraph& g = built.graph;
  const MvppEvaluator eval(g);
  const SelectionResult sel = yang_heuristic(eval);

  Database db = populate_paper_database(0.02, 61);
  for (NodeId v : sel.materialized) {
    MaterializedSet deps = sel.materialized;
    deps.erase(v);
    const Executor e(db);
    db.put_table(g.node(v).name, e.run(refresh_plan(g, v, deps)));
  }
  const Executor e(db);
  for (const QuerySpec& q : queries) {
    const NodeId root = g.find_by_name(q.name());
    const Table got = e.run(answer_plan(g, root, sel.materialized));
    const Table expected = e.run(canonical_plan(catalog, q));
    EXPECT_TRUE(same_bag(expected, got)) << q.name();
  }
}

}  // namespace
}  // namespace mvd
