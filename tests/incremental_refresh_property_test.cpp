// Differential testing of executed incremental maintenance: after N
// randomized update batches, an incrementally-refreshed warehouse must be
// bag-identical to a recompute-refreshed twin — every stored view and
// every query answer — across engines and thread counts. The twin's base
// tables are advanced by applying the captured deltas, so the test also
// proves the captured delta is exactly (new − old).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/algebra/query_spec.hpp"
#include "src/check/maintainability.hpp"
#include "src/maintenance/refresh.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

struct Workload {
  WarehouseDesigner designer;
  DesignResult design;
  Database db;
  std::vector<std::string> update_relations;
};

Workload make_star_workload() {
  StarSchemaOptions schema;
  schema.dimensions = 3;
  schema.fact_rows = 3'000;
  schema.dimension_rows = 200;
  schema.categories = 6;
  Database db = populate_star_database(schema, 11);
  Catalog catalog = catalog_from_database(db, schema.blocking_factor);
  StarQueryOptions qopts;
  qopts.count = 6;
  qopts.max_dimensions = 2;
  qopts.aggregation_probability = 0.5;  // exercise grouped delta apply
  qopts.seed = 7;
  WarehouseDesigner designer(catalog);
  for (QuerySpec& q : generate_star_queries(catalog, schema, qopts)) {
    designer.add_query(std::move(q));
  }
  DesignResult design = designer.design();
  return {std::move(designer), std::move(design), std::move(db),
          {"Fact", "Dim0", "Dim1"}};
}

Workload make_chain_workload() {
  ChainSchemaOptions schema;
  schema.length = 4;
  schema.rows = 1'500;
  Database db = populate_chain_database(schema, 13);
  Catalog catalog = make_chain_catalog(schema);
  ChainQueryOptions qopts;
  qopts.count = 5;
  qopts.seed = 3;
  WarehouseDesigner designer(catalog);
  for (QuerySpec& q : generate_chain_queries(catalog, schema, qopts)) {
    designer.add_query(std::move(q));
  }
  DesignResult design = designer.design();
  return {std::move(designer), std::move(design), std::move(db),
          {"R0", "R1", "R2", "R3"}};
}

Workload make_paper_workload() {
  DesignerOptions options;
  options.cost = paper_cost_config();
  WarehouseDesigner designer(make_paper_catalog(), options);
  for (const QuerySpec& q : make_paper_example().queries) {
    designer.add_query(q);
  }
  DesignResult design = designer.design();
  return {std::move(designer), std::move(design),
          populate_paper_database(0.02, 23),
          {"Order", "Division", "Product", "Customer"}};
}

struct PathCounts {
  std::size_t skipped = 0;
  std::size_t applied = 0;
  std::size_t group_applied = 0;
  std::size_t recomputed = 0;
};

/// mvcheck's static refresh-path predictions must agree with the paths
/// incremental_refresh actually took. The per-view frontier is replayed
/// from the before/after stored states: each refreshed view contributes
/// its bag diff under its node name, exactly as the runtime records its
/// own delta for ancestors.
void expect_predictions_agree(const MvppGraph& g, const MaterializedSet& m,
                              const Database& before, const Database& after,
                              const DeltaSet& batch,
                              const RefreshReport& report) {
  DeltaSet frontier = batch;
  for (const ViewRefresh& e : report.views) {
    MaterializedSet deps = m;
    deps.erase(e.id);
    const PlanPtr plan = refresh_plan(g, e.id, deps);
    const RefreshPrediction pred =
        predict_refresh_path(plan, frontier, &before, e.view);
    SCOPED_TRACE(e.view + ": predicted " + to_string(pred.path) + " (" +
                 pred.reason + "), runtime took " + to_string(e.path));
    switch (pred.path) {
      case PredictedPath::kSkip:
        EXPECT_EQ(e.path, RefreshPath::kSkipped);
        break;
      case PredictedPath::kIncremental:
        EXPECT_TRUE(e.path == RefreshPath::kApplied ||
                    e.path == RefreshPath::kGroupApplied);
        break;
      case PredictedPath::kRecompute:
        EXPECT_EQ(e.path, RefreshPath::kRecomputed);
        break;
      case PredictedPath::kDataDependent:
        EXPECT_NE(e.path, RefreshPath::kSkipped);
        break;
    }
    // Skips are predicted exactly, never merely permitted.
    if (e.path == RefreshPath::kSkipped) {
      EXPECT_EQ(pred.path, PredictedPath::kSkip);
    }
    // Certificate cross-check: a fully self-maintainable plan never falls
    // back to recomputation, whatever the batch.
    if (certify_refresh_plan(plan).verdict ==
        MaintVerdict::kSelfMaintainable) {
      EXPECT_NE(e.path, RefreshPath::kRecomputed);
    }
    frontier.insert_or_assign(
        e.view,
        DeltaTable::diff(before.table(e.view), after.table(e.view)));
  }
}

/// Drive `rounds` update batches through two copies of the warehouse —
/// one maintained incrementally under (mode, threads), one by full
/// recomputation — asserting bag-identity of every stored view and query
/// answer after every round. Returns which refresh paths were taken so
/// callers can assert the incremental machinery actually engaged.
PathCounts run_differential(Workload w, ExecMode mode, std::size_t threads,
                            std::size_t rounds, const UpdateStreamOptions& opts,
                            std::uint64_t seed) {
  const MvppGraph& g = w.design.graph();
  // Maintain the chosen set plus every query result node, so join views,
  // frontier-reused intermediates, and aggregate roots all get refreshed.
  MaterializedSet& m = w.design.selection.materialized;
  for (NodeId q : g.query_ids()) m.insert(g.node(q).children[0]);
  EXPECT_FALSE(m.empty());

  w.designer.deploy(w.design, w.db);
  Database recomputed = w.db;  // the recompute twin

  PathCounts paths;
  Rng rng(seed);
  for (std::size_t round = 0; round < rounds; ++round) {
    DeltaSet batch;
    // Two relations per round, rotating so every base (and both sides of
    // every join) eventually carries the delta.
    for (std::size_t k = 0; k < 2; ++k) {
      const std::string& rel =
          w.update_relations[(round + k) % w.update_relations.size()];
      apply_update_batch(w.db, rel, opts, rng, &batch);
    }
    // Advance the twin's base tables with the captured deltas: proves the
    // capture is exactly (new − old) on top of keeping the twins aligned.
    for (const auto& [rel, delta] : batch) {
      apply_delta(recomputed.mutable_table(rel), delta.compacted());
      EXPECT_TRUE(same_bag(w.db.table(rel), recomputed.table(rel))) << rel;
    }

    ExecStats stats;
    const Database before_refresh = w.db;
    const RefreshReport report =
        incremental_refresh(g, m, w.db, batch, &stats, mode, threads);
    expect_predictions_agree(g, m, before_refresh, w.db, batch, report);
    paths.skipped += report.count(RefreshPath::kSkipped);
    paths.applied += report.count(RefreshPath::kApplied);
    paths.group_applied += report.count(RefreshPath::kGroupApplied);
    paths.recomputed += report.count(RefreshPath::kRecomputed);
    w.designer.refresh(w.design, recomputed);

    for (NodeId v : m) {
      const std::string& name = g.node(v).name;
      EXPECT_TRUE(same_bag(w.db.table(name), recomputed.table(name)))
          << "round " << round << ", view " << name;
    }
    for (const QuerySpec& q : w.designer.queries()) {
      const Table inc = w.designer.answer(w.design, q.name(), w.db);
      const Table rec = w.designer.answer(w.design, q.name(), recomputed);
      EXPECT_TRUE(same_bag(inc, rec)) << "round " << round << ", " << q.name();
    }
  }

  // Absolute ground truth at the end: answers from the incrementally
  // maintained warehouse match canonical from-scratch evaluation.
  const Executor exec(w.db);
  for (const QuerySpec& q : w.designer.queries()) {
    const Table expected = exec.run(canonical_plan(w.designer.catalog(), q));
    const Table got = w.designer.answer(w.design, q.name(), w.db);
    EXPECT_TRUE(same_bag(expected, got)) << q.name();
  }
  return paths;
}

UpdateStreamOptions mixed_updates() {
  UpdateStreamOptions opts;
  opts.modify_fraction = 0.01;
  opts.insert_fraction = 0.01;
  opts.delete_fraction = 0.005;
  return opts;
}

TEST(IncrementalRefreshPropertyTest, StarRowEngine) {
  const PathCounts paths = run_differential(make_star_workload(),
                                            ExecMode::kRow, 1, 20,
                                            mixed_updates(), 101);
  EXPECT_GT(paths.applied, 0u);
  EXPECT_GT(paths.group_applied, 0u);  // aggregate rollups maintained +/-
}

TEST(IncrementalRefreshPropertyTest, StarVectorizedEngine) {
  const PathCounts paths = run_differential(make_star_workload(),
                                            ExecMode::kVectorized, 1, 20,
                                            mixed_updates(), 101);
  EXPECT_GT(paths.applied, 0u);
  EXPECT_GT(paths.group_applied, 0u);
}

TEST(IncrementalRefreshPropertyTest, ChainRowEngine) {
  const PathCounts paths = run_differential(make_chain_workload(),
                                            ExecMode::kRow, 1, 20,
                                            mixed_updates(), 103);
  EXPECT_GT(paths.applied, 0u);
}

TEST(IncrementalRefreshPropertyTest, ChainVectorizedEngine) {
  const PathCounts paths = run_differential(make_chain_workload(),
                                            ExecMode::kVectorized, 1, 20,
                                            mixed_updates(), 103);
  EXPECT_GT(paths.applied, 0u);
}

TEST(IncrementalRefreshPropertyTest, PaperExampleFrontierReuse) {
  // The Figure 3 MVPP shares tmp2/tmp4 under several views — deltas must
  // flow through materialized intermediates, not around them.
  const PathCounts paths = run_differential(make_paper_workload(),
                                            ExecMode::kRow, 1, 20,
                                            mixed_updates(), 107);
  EXPECT_GT(paths.applied, 0u);
}

TEST(IncrementalRefreshPropertyTest, StarDeleteHeavyBatches) {
  // Delete-heavy rounds force emptied groups and MIN/MAX-style fallbacks
  // through the recompute path while staying bag-identical.
  UpdateStreamOptions opts;
  opts.modify_fraction = 0.02;
  opts.insert_fraction = 0.01;
  opts.delete_fraction = 0.2;
  run_differential(make_star_workload(), ExecMode::kRow, 1, 6, opts, 109);
}

// Separate fixture name so the TSan CI job can include exactly these
// (mirroring ExecEngineTsanTest): morsel-parallel vectorized full-side
// production inside delta propagation must be race-free.
TEST(IncrementalRefreshTsanTest, StarVectorizedFourThreads) {
  run_differential(make_star_workload(), ExecMode::kVectorized, 4, 8,
                   mixed_updates(), 211);
}

TEST(IncrementalRefreshTsanTest, ChainVectorizedFourThreads) {
  run_differential(make_chain_workload(), ExecMode::kVectorized, 4, 8,
                   mixed_updates(), 213);
}

}  // namespace
}  // namespace mvd
