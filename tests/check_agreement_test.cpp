// Differential agreement between mvcheck's static predictions and the
// runtime they mirror, on plan shapes built to sit exactly on the
// acceptance boundaries: OR/NOT predicates, bool comparisons, shared
// interior DAG nodes, degenerate literal predicates, pure-projection
// chains, selects over aggregates. The engine-equivalence fuzzer covers
// the common shapes; this file covers the refusal edges, plus a fuzzer
// of its own so every boundary is crossed many times per run.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <set>

#include "src/check/check.hpp"
#include "src/exec/executor.hpp"
#include "src/exec/fused.hpp"
#include "src/exec/sharded.hpp"
#include "src/storage/sharded_table.hpp"

namespace mvd {
namespace {

/// Node-by-node verdict equality between predict_fused_chain and
/// detect_fused_chain, plus shape equality for accepted chains.
void expect_verdicts_agree(const PlanPtr& plan) {
  const auto uses = plan_use_counts(plan);
  std::set<const LogicalOp*> seen;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& node) {
    if (!seen.insert(node.get()).second) return;
    for (const PlanPtr& child : node->children()) walk(child);
    const FusePrediction pred = predict_fused_chain(node, uses);
    const std::optional<FusedChain> chain = detect_fused_chain(node, uses);
    ASSERT_EQ(pred.fusable, chain.has_value())
        << node->label() << ": static said '"
        << (pred.fusable ? "fusable" : pred.refusal) << "', runtime "
        << (chain.has_value() ? "compiled a chain" : "refused");
    if (chain.has_value()) {
      EXPECT_EQ(pred.source.get(), chain->source.get());
      EXPECT_EQ(pred.stage_count, chain->stages.size());
      EXPECT_EQ(pred.select_count, chain->select_count);
      EXPECT_TRUE(pred.out_schema == chain->out_schema);
    }
  };
  walk(plan);
}

class CheckAgreementTest : public ::testing::Test {
 protected:
  CheckAgreementTest() {
    Table t(Schema({{"a", ValueType::kInt64, ""},
                    {"b", ValueType::kDouble, ""},
                    {"s", ValueType::kString, ""},
                    {"flag", ValueType::kBool, ""}}),
            10.0);
    std::mt19937 rng(7);
    const char* words[] = {"x", "y", "z"};
    for (int i = 0; i < 500; ++i) {
      t.append({Value::int64(static_cast<std::int64_t>(rng() % 40)),
                Value::real(static_cast<double>(rng() % 100) / 10.0 - 5.0),
                Value::string(words[rng() % 3]),
                Value::boolean(rng() % 2 == 0)});
    }
    db_.add_table("T", std::move(t));
    Table d(Schema({{"key", ValueType::kInt64, ""},
                    {"w", ValueType::kDouble, ""}}),
            10.0);
    for (int i = 0; i < 60; ++i) {
      d.append({Value::int64(i % 40), Value::real(i * 0.25)});
    }
    db_.add_table("D", std::move(d));
    for (const char* name : {"T", "D"}) {
      catalog_.add_relation(name, db_.table(name).schema(),
                            db_.table(name).compute_stats());
    }
  }

  PlanPtr scan_t() const { return make_scan(catalog_, "T"); }

  Database db_;
  Catalog catalog_{10.0};
};

TEST_F(CheckAgreementTest, RefusalEdges) {
  // Each plan sits on one acceptance boundary of the fused-chain
  // detector; agreement must hold on both sides of every edge.
  const std::vector<PlanPtr> plans = {
      // Fusable: typed comparisons over a scan.
      make_select(scan_t(), conj({gt(col("T.a"), lit_i64(10)),
                                  lt(col("T.b"), lit_real(2.0))})),
      // OR predicate: refused.
      make_select(scan_t(), disj({gt(col("T.a"), lit_i64(10)),
                                  lt(col("T.b"), lit_real(0.0))})),
      // NOT predicate: refused.
      make_select(scan_t(), neg(gt(col("T.a"), lit_i64(10)))),
      // Bool column comparison: interpreted fallback.
      make_select(scan_t(), eq(col("T.flag"), lit(Value::boolean(true)))),
      // Mixed int/double column-column comparison.
      make_select(scan_t(), lt(col("T.b"), col("T.a"))),
      // String comparisons, both operand shapes.
      make_select(scan_t(), conj({eq(col("T.s"), lit_str("x")),
                                  cmp(CompareOp::kNe, col("T.s"),
                                      col("T.s"))})),
      // Literal-only predicate: degenerate, refused.
      make_select(scan_t(), lit(Value::boolean(true))),
      // Pure-projection chain: no select, nothing to fuse.
      make_project(make_project(scan_t(), {"T.a", "T.b", "T.s"}),
                   {"T.a", "T.b"}),
      // Project over select over project: fusable as one chain.
      make_project(
          make_select(make_project(scan_t(), {"T.a", "T.b"}),
                      gt(col("T.a"), lit_i64(5))),
          {"T.b"}),
      // Select directly over an aggregate: chain source is the aggregate.
      make_select(
          make_aggregate(scan_t(), {"T.a"}, {AggSpec{AggFn::kCount, "", "n"}}),
          gt(col("n"), lit_i64(3))),
  };
  for (const PlanPtr& plan : plans) {
    SCOPED_TRACE(plan_tree_string(plan));
    expect_verdicts_agree(plan);
  }
}

TEST_F(CheckAgreementTest, SharedInteriorNodesBreakChains) {
  // A select shared by two parents executes once (the engines memoize);
  // fusing through it would re-run it per chain, so both the detector
  // and the prediction must handle it identically. The two branches
  // project/aggregate to disjoint schemas so the joining root is legal.
  const PlanPtr shared = make_select(scan_t(), gt(col("T.a"), lit_i64(5)));
  const PlanPtr rows = make_project(shared, {"T.a", "T.b"});
  const PlanPtr counts = make_aggregate(shared, {"T.s"},
                                        {AggSpec{AggFn::kCount, "", "n"}});
  const PlanPtr top = make_join(rows, counts, lit(Value::boolean(true)));
  expect_verdicts_agree(top);

  // Rooted alone the same select fuses; its verdict under the shared DAG
  // is whatever the runtime detector says — asserted equal above.
  EXPECT_TRUE(predict_fused_chain(shared, plan_use_counts(shared)).fusable);
}

TEST_F(CheckAgreementTest, FuzzedBoundaryChains) {
  // 60 random plans biased toward the refusal edges: every conjunct
  // shape above appears with equal probability, chains are 1-5 deep,
  // half the plans share a subtree through a self-join.
  std::mt19937 rng(20260807);
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  auto any_op = [&] { return ops[rng() % 6]; };
  auto conjunct = [&]() -> ExprPtr {
    switch (rng() % 8) {
      case 0:
        return cmp(any_op(), col("T.a"), lit_i64(rng() % 40));
      case 1:
        return cmp(any_op(), col("T.b"), lit_real(rng() % 10 - 5.0));
      case 2:
        return cmp(any_op(), col("T.s"), lit_str("y"));
      case 3:
        return cmp(any_op(), col("T.b"), col("T.a"));  // mixed types
      case 4:
        return eq(col("T.flag"), lit(Value::boolean(rng() % 2 == 0)));
      case 5:
        return disj({gt(col("T.a"), lit_i64(rng() % 40)),
                     lt(col("T.a"), lit_i64(rng() % 10))});
      case 6:
        return neg(eq(col("T.s"), lit_str("x")));
      default:
        return lit(Value::boolean(rng() % 2 == 0));
    }
  };
  for (int iter = 0; iter < 60; ++iter) {
    SCOPED_TRACE("fuzz iteration " + std::to_string(iter));
    PlanPtr plan = scan_t();
    std::vector<std::string> live = {"T.a", "T.b", "T.s", "T.flag"};
    const int depth = 1 + static_cast<int>(rng() % 5);
    for (int i = 0; i < depth; ++i) {
      if (rng() % 4 == 0 && live.size() > 2) {
        live.resize(live.size() - 1);
        plan = make_project(plan, live);
      } else {
        std::vector<ExprPtr> cs;
        const int nc = 1 + static_cast<int>(rng() % 3);
        for (int c = 0; c < nc; ++c) {
          ExprPtr e = conjunct();
          // Retry conjuncts over dropped columns; literals always bind.
          const std::set<std::string> cols = columns_of(e);
          const bool ok = std::all_of(
              cols.begin(), cols.end(), [&](const std::string& name) {
                return std::find(live.begin(), live.end(), name) !=
                       live.end();
              });
          if (ok) cs.push_back(std::move(e));
        }
        if (cs.empty()) cs.push_back(lit(Value::boolean(true)));
        plan = make_select(plan, conj(std::move(cs)));
      }
    }
    if (rng() % 2 == 0) {
      plan = make_join(plan, make_scan(catalog_, "D"),
                       eq(col("T.a"), col("D.key")));
      plan = make_select(plan, cmp(any_op(), col("D.w"), lit_real(3.0)));
    }
    expect_verdicts_agree(plan);
  }
}

TEST_F(CheckAgreementTest, CardinalityBoundsHoldAcrossEngines) {
  const std::vector<PlanPtr> plans = {
      make_select(scan_t(), gt(col("T.a"), lit_i64(20))),
      make_join(make_select(scan_t(), lt(col("T.a"), lit_i64(30))),
                make_scan(catalog_, "D"), eq(col("T.a"), col("D.key"))),
      make_aggregate(scan_t(), {"T.s"}, {AggSpec{AggFn::kCount, "", "n"},
                                         AggSpec{AggFn::kSum, "T.b", "sb"}}),
      make_aggregate(scan_t(), {}, {AggSpec{AggFn::kCount, "", "n"}}),
  };
  CheckOptions opts;
  opts.database = &db_;
  for (const PlanPtr& plan : plans) {
    SCOPED_TRACE(plan_tree_string(plan));
    const CheckReport report = check_plan(plan, opts);
    EXPECT_TRUE(report.ok()) << report.render_text();
    for (const ExecMode mode :
         {ExecMode::kRow, ExecMode::kVectorized, ExecMode::kFused}) {
      ExecStats stats;
      Executor(db_, mode).run(plan, &stats);
      for (const auto& [label, rows] : stats.rows_out) {
        const auto bounds = report.card_of(label);
        ASSERT_TRUE(bounds.has_value()) << label;
        EXPECT_TRUE(bounds->contains(rows))
            << label << ": " << rows << " outside [" << bounds->lo << ", "
            << bounds->hi << "]";
      }
    }
  }
}

TEST_F(CheckAgreementTest, CardinalityBoundsHoldUnderShardedExecution) {
  // mvcheck's CardIntervals are derived for single-site plans; sharded
  // execution must not escape them. Two levels are checked per plan:
  //
  //   final merge    the coordinator result row count sits inside the
  //                  root's static bounds, and for aggregate spines the
  //                  merged group count sits inside the aggregate's;
  //   partials       a bucket sees a subset of the input, so its partial
  //                  group count cannot exceed the whole input's upper
  //                  bound — a shard owning k buckets ships at most
  //                  k x hi partial rows, and all shards together at
  //                  least the merged row count.
  const PlanPtr grouped = make_aggregate(
      scan_t(), {"T.s"},
      {AggSpec{AggFn::kCount, "", "n"}, AggSpec{AggFn::kSum, "T.b", "sb"}});
  struct Case {
    PlanPtr plan;
    bool expect_partials;
  };
  const std::vector<Case> cases = {
      {grouped, true},                                             // root agg
      {make_select(grouped, gt(col("n"), lit_i64(0))), true},      // interior
      {make_aggregate(scan_t(), {}, {AggSpec{AggFn::kCount, "", "n"}}), true},
      {make_join(make_select(scan_t(), lt(col("T.a"), lit_i64(30))),
                 make_scan(catalog_, "D"), eq(col("T.a"), col("D.key"))),
       false},
  };
  CheckOptions opts;
  opts.database = &db_;
  for (const Case& c : cases) {
    SCOPED_TRACE(plan_tree_string(c.plan));
    const CheckReport report = check_plan(c.plan, opts);
    EXPECT_TRUE(report.ok()) << report.render_text();

    ShardedDatabase sdb = shard_database(db_, 4, {{"T", "a"}});
    ExecStats stats;
    const Table out = ShardedExecutor(sdb).run(c.plan, &stats);

    const auto root = report.card_of(c.plan->label());
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(root->contains(static_cast<double>(out.row_count())))
        << out.row_count() << " outside [" << root->lo << ", " << root->hi
        << "]";

    bool saw_partials = false;
    for (const auto& [label, total] : stats.rows_out) {
      if (label.rfind("partial(", 0) != 0) continue;
      saw_partials = true;
      const std::string inner = label.substr(8, label.size() - 9);
      const auto bounds = report.card_of(inner);
      ASSERT_TRUE(bounds.has_value()) << inner;
      const auto merged = stats.rows_out.find(inner);
      ASSERT_NE(merged, stats.rows_out.end()) << inner;
      EXPECT_TRUE(bounds->contains(merged->second))
          << inner << ": merged " << merged->second << " outside ["
          << bounds->lo << ", " << bounds->hi << "]";

      ASSERT_EQ(stats.per_shard.size(), sdb.shards());
      double partial_total = 0;
      for (std::size_t s = 0; s < stats.per_shard.size(); ++s) {
        const auto it = stats.per_shard[s].rows_out.find(label);
        if (it == stats.per_shard[s].rows_out.end()) continue;
        const auto [b0, b1] = sdb.bucket_range(s);
        EXPECT_LE(it->second, bounds->hi * static_cast<double>(b1 - b0))
            << label << " on shard " << s;
        partial_total += it->second;
      }
      EXPECT_DOUBLE_EQ(partial_total, total) << label;
      EXPECT_GE(partial_total, merged->second) << label;
    }
    EXPECT_EQ(saw_partials, c.expect_partials);
  }
}

}  // namespace
}  // namespace mvd
