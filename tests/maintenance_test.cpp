// Tests for src/maintenance: the incremental delta-cost model and the
// synthetic update stream.
#include <gtest/gtest.h>

#include "src/exec/executor.hpp"
#include "src/maintenance/incremental.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/mvpp/evaluation.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(model_)) {}

  NodeId id(const std::string& name) const {
    return graph_.find_by_name(name);
  }

  Catalog catalog_;
  CostModel model_;
  MvppGraph graph_;
};

TEST_F(IncrementalTest, UnrelatedBaseCostsNothing) {
  // tmp1 (over Division) is untouched by Order updates.
  const NodeId order = graph_.find_by_name("Order");
  EXPECT_DOUBLE_EQ(
      incremental_delta_cost(graph_, id("tmp1"), order, {0.01}), 0.0);
}

TEST_F(IncrementalTest, DeltaCostScalesWithFraction) {
  const NodeId division = graph_.find_by_name("Division");
  const double small =
      incremental_delta_cost(graph_, id("tmp2"), division, {0.01});
  const double large =
      incremental_delta_cost(graph_, id("tmp2"), division, {0.10});
  EXPECT_GT(small, 0);
  EXPECT_GT(large, small);
  EXPECT_NEAR(large / small, 10.0, 1.0);  // roughly linear
}

TEST_F(IncrementalTest, SmallDeltasBeatRecompute) {
  // The extension's headline: at 1% updates, incremental maintenance of
  // the chosen views is far cheaper than recompute.
  const MvppEvaluator eval(graph_);
  const MaterializedSet m{id("tmp2"), id("tmp4")};
  const double recompute = eval.total_maintenance_cost(m);
  const double incremental = total_incremental_maintenance(graph_, m, {0.01});
  EXPECT_LT(incremental, recompute / 5);
}

TEST_F(IncrementalTest, LargeDeltasApproachRecomputeScale) {
  const MvppEvaluator eval(graph_);
  const MaterializedSet m{id("tmp4")};
  const double recompute = eval.total_maintenance_cost(m);
  const double full_delta = total_incremental_maintenance(graph_, m, {1.0});
  // At 100% churn the delta probe costs at least as much as one
  // recompute pass (it degenerates to re-joining everything, paying the
  // per-base probes).
  EXPECT_GE(full_delta, recompute * 0.5);
}

TEST_F(IncrementalTest, SumsOverBases) {
  const IncrementalOptions options{0.02};
  const double total = incremental_maintenance_cost(graph_, id("tmp4"), options);
  double manual = 0;
  for (NodeId b : graph_.bases_under(id("tmp4"))) {
    manual += graph_.node(b).frequency *
              incremental_delta_cost(graph_, id("tmp4"), b, options);
  }
  EXPECT_DOUBLE_EQ(total, manual);
}

class UpdateStreamTest : public ::testing::Test {
 protected:
  UpdateStreamTest() : db_(populate_paper_database(0.01, 3)) {}
  Database db_;
};

TEST_F(UpdateStreamTest, TouchesRequestedFractions) {
  Rng rng(1);
  const std::size_t before = db_.table("Order").row_count();
  UpdateStreamOptions options;
  options.modify_fraction = 0.10;
  options.insert_fraction = 0.10;
  options.delete_fraction = 0.05;
  const std::size_t touched = apply_update_batch(db_, "Order", options, rng);
  EXPECT_GT(touched, 0u);
  const std::size_t after = db_.table("Order").row_count();
  // Inserts minus deletes: about +5%.
  EXPECT_NEAR(static_cast<double>(after),
              static_cast<double>(before) * 1.05,
              static_cast<double>(before) * 0.03);
}

TEST_F(UpdateStreamTest, SchemaPreserved) {
  Rng rng(2);
  const Schema before = db_.table("Customer").schema();
  apply_update_batch(db_, "Customer", {0.1, 0.1, 0.1}, rng);
  EXPECT_EQ(db_.table("Customer").schema(), before);
}

TEST_F(UpdateStreamTest, EmptyTableIsNoop) {
  Database db;
  db.add_table("E", Table(Schema({{"x", ValueType::kInt64, ""}})));
  Rng rng(3);
  EXPECT_EQ(apply_update_batch(db, "E", {}, rng), 0u);
}

TEST_F(UpdateStreamTest, DeterministicInRng) {
  Database a = populate_paper_database(0.01, 3);
  Database b = populate_paper_database(0.01, 3);
  Rng ra(9), rb(9);
  apply_update_batch(a, "Order", {0.05, 0.05, 0.02}, ra);
  apply_update_batch(b, "Order", {0.05, 0.05, 0.02}, rb);
  EXPECT_TRUE(same_bag(a.table("Order"), b.table("Order")));
}

TEST_F(UpdateStreamTest, DeltaCaptureIsDeterministicInRng) {
  // Capturing the delta must not consume extra randomness: two runs from
  // the same seed — one capturing, one not — produce the same table, and
  // the captured sides are themselves reproducible.
  Database a = populate_paper_database(0.01, 3);
  Database b = populate_paper_database(0.01, 3);
  Rng ra(9), rb(9);
  DeltaSet da, db2;
  apply_update_batch(a, "Order", {0.05, 0.05, 0.02}, ra, &da);
  apply_update_batch(b, "Order", {0.05, 0.05, 0.02}, rb, &db2);
  EXPECT_TRUE(same_bag(a.table("Order"), b.table("Order")));
  EXPECT_TRUE(same_bag(da.at("Order").inserts(), db2.at("Order").inserts()));
  EXPECT_TRUE(same_bag(da.at("Order").deletes(), db2.at("Order").deletes()));
  Database c = populate_paper_database(0.01, 3);
  Rng rc(9);
  apply_update_batch(c, "Order", {0.05, 0.05, 0.02}, rc);  // no capture
  EXPECT_TRUE(same_bag(a.table("Order"), c.table("Order")));
}

TEST_F(UpdateStreamTest, CapturedDeltaEqualsNewMinusOld) {
  const Table before = db_.table("Order");
  Rng rng(17);
  DeltaSet batch;
  apply_update_batch(db_, "Order", {0.08, 0.04, 0.03}, rng, &batch);
  const DeltaTable truth = DeltaTable::diff(before, db_.table("Order"));
  const DeltaTable captured = batch.at("Order").compacted();
  EXPECT_TRUE(same_bag(truth.inserts(), captured.inserts()));
  EXPECT_TRUE(same_bag(truth.deletes(), captured.deletes()));
  // And applying the compacted capture to the old state replays the batch
  // exactly. (The raw capture can delete an intermediate state — a row
  // modified twice in one batch — which only compaction cancels.)
  Table replay = before;
  apply_delta(replay, captured);
  EXPECT_TRUE(same_bag(replay, db_.table("Order")));
}

TEST_F(UpdateStreamTest, DeltaAccumulatesAcrossBatches) {
  const Table before = db_.table("Order");
  Rng rng(21);
  DeltaSet batch;
  apply_update_batch(db_, "Order", {0.03, 0.03, 0.01}, rng, &batch);
  apply_update_batch(db_, "Order", {0.03, 0.03, 0.01}, rng, &batch);
  Table replay = before;
  apply_delta(replay, batch.at("Order").compacted());
  EXPECT_TRUE(same_bag(replay, db_.table("Order")));
}

TEST_F(UpdateStreamTest, ZeroRoundingFractionsAreNoops) {
  // Fractions so small that every count rounds to zero: nothing changes
  // and the captured delta (entry created eagerly) stays empty.
  const Table before = db_.table("Division");
  const std::size_t n = before.row_count();
  ASSERT_GT(n, 0u);
  const double tiny = 0.4 / static_cast<double>(n);  // llround → 0
  Rng rng(5);
  DeltaSet batch;
  EXPECT_EQ(apply_update_batch(db_, "Division", {tiny, tiny, tiny}, rng,
                               &batch),
            0u);
  EXPECT_TRUE(same_bag(before, db_.table("Division")));
  EXPECT_TRUE(batch.at("Division").empty());
}

TEST_F(UpdateStreamTest, DeleteEverythingKeepsAtLeastOneRow) {
  // delete_fraction 1.0 is capped at n−1 so the relation never empties
  // (an empty base would make later batches silent no-ops).
  UpdateStreamOptions options;
  options.modify_fraction = 0;
  options.insert_fraction = 0;
  options.delete_fraction = 1.0;
  const Table before = db_.table("Customer");
  Rng rng(7);
  DeltaSet batch;
  apply_update_batch(db_, "Customer", options, rng, &batch);
  EXPECT_GE(db_.table("Customer").row_count(), 1u);
  EXPECT_LT(db_.table("Customer").row_count(), before.row_count());
  EXPECT_EQ(batch.at("Customer").inserts().row_count(), 0u);
  Table replay = before;
  apply_delta(replay, batch.at("Customer"));
  EXPECT_TRUE(same_bag(replay, db_.table("Customer")));
}

TEST_F(UpdateStreamTest, EmptyRelationCapturesNothing) {
  Database db;
  db.add_table("E", Table(Schema({{"x", ValueType::kInt64, ""}})));
  Rng rng(3);
  DeltaSet batch;
  EXPECT_EQ(apply_update_batch(db, "E", {0.5, 0.5, 0.5}, rng, &batch), 0u);
  // Early-out happens before the delta entry is created.
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace mvd
