// Tests for src/maintenance: the incremental delta-cost model and the
// synthetic update stream.
#include <gtest/gtest.h>

#include "src/exec/executor.hpp"
#include "src/maintenance/incremental.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/mvpp/evaluation.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(model_)) {}

  NodeId id(const std::string& name) const {
    return graph_.find_by_name(name);
  }

  Catalog catalog_;
  CostModel model_;
  MvppGraph graph_;
};

TEST_F(IncrementalTest, UnrelatedBaseCostsNothing) {
  // tmp1 (over Division) is untouched by Order updates.
  const NodeId order = graph_.find_by_name("Order");
  EXPECT_DOUBLE_EQ(
      incremental_delta_cost(graph_, id("tmp1"), order, {0.01}), 0.0);
}

TEST_F(IncrementalTest, DeltaCostScalesWithFraction) {
  const NodeId division = graph_.find_by_name("Division");
  const double small =
      incremental_delta_cost(graph_, id("tmp2"), division, {0.01});
  const double large =
      incremental_delta_cost(graph_, id("tmp2"), division, {0.10});
  EXPECT_GT(small, 0);
  EXPECT_GT(large, small);
  EXPECT_NEAR(large / small, 10.0, 1.0);  // roughly linear
}

TEST_F(IncrementalTest, SmallDeltasBeatRecompute) {
  // The extension's headline: at 1% updates, incremental maintenance of
  // the chosen views is far cheaper than recompute.
  const MvppEvaluator eval(graph_);
  const MaterializedSet m{id("tmp2"), id("tmp4")};
  const double recompute = eval.total_maintenance_cost(m);
  const double incremental = total_incremental_maintenance(graph_, m, {0.01});
  EXPECT_LT(incremental, recompute / 5);
}

TEST_F(IncrementalTest, LargeDeltasApproachRecomputeScale) {
  const MvppEvaluator eval(graph_);
  const MaterializedSet m{id("tmp4")};
  const double recompute = eval.total_maintenance_cost(m);
  const double full_delta = total_incremental_maintenance(graph_, m, {1.0});
  // At 100% churn the delta probe costs at least as much as one
  // recompute pass (it degenerates to re-joining everything, paying the
  // per-base probes).
  EXPECT_GE(full_delta, recompute * 0.5);
}

TEST_F(IncrementalTest, SumsOverBases) {
  const IncrementalOptions options{0.02};
  const double total = incremental_maintenance_cost(graph_, id("tmp4"), options);
  double manual = 0;
  for (NodeId b : graph_.bases_under(id("tmp4"))) {
    manual += graph_.node(b).frequency *
              incremental_delta_cost(graph_, id("tmp4"), b, options);
  }
  EXPECT_DOUBLE_EQ(total, manual);
}

class UpdateStreamTest : public ::testing::Test {
 protected:
  UpdateStreamTest() : db_(populate_paper_database(0.01, 3)) {}
  Database db_;
};

TEST_F(UpdateStreamTest, TouchesRequestedFractions) {
  Rng rng(1);
  const std::size_t before = db_.table("Order").row_count();
  UpdateStreamOptions options;
  options.modify_fraction = 0.10;
  options.insert_fraction = 0.10;
  options.delete_fraction = 0.05;
  const std::size_t touched = apply_update_batch(db_, "Order", options, rng);
  EXPECT_GT(touched, 0u);
  const std::size_t after = db_.table("Order").row_count();
  // Inserts minus deletes: about +5%.
  EXPECT_NEAR(static_cast<double>(after),
              static_cast<double>(before) * 1.05,
              static_cast<double>(before) * 0.03);
}

TEST_F(UpdateStreamTest, SchemaPreserved) {
  Rng rng(2);
  const Schema before = db_.table("Customer").schema();
  apply_update_batch(db_, "Customer", {0.1, 0.1, 0.1}, rng);
  EXPECT_EQ(db_.table("Customer").schema(), before);
}

TEST_F(UpdateStreamTest, EmptyTableIsNoop) {
  Database db;
  db.add_table("E", Table(Schema({{"x", ValueType::kInt64, ""}})));
  Rng rng(3);
  EXPECT_EQ(apply_update_batch(db, "E", {}, rng), 0u);
}

TEST_F(UpdateStreamTest, DeterministicInRng) {
  Database a = populate_paper_database(0.01, 3);
  Database b = populate_paper_database(0.01, 3);
  Rng ra(9), rb(9);
  apply_update_batch(a, "Order", {0.05, 0.05, 0.02}, ra);
  apply_update_batch(b, "Order", {0.05, 0.05, 0.02}, rb);
  EXPECT_TRUE(same_bag(a.table("Order"), b.table("Order")));
}

}  // namespace
}  // namespace mvd
