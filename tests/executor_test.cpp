// Tests for src/exec: operator correctness against hand-computed results,
// hash vs nested-loop equivalence, stats accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "src/common/error.hpp"
#include "src/exec/executor.hpp"
#include "src/sql/parser.hpp"
#include "src/workload/generator.hpp"

namespace mvd {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    Table emp(Schema({{"id", ValueType::kInt64, ""},
                      {"name", ValueType::kString, ""},
                      {"dept", ValueType::kInt64, ""}}),
              10.0);
    emp.append({Value::int64(1), Value::string("ann"), Value::int64(10)});
    emp.append({Value::int64(2), Value::string("bob"), Value::int64(20)});
    emp.append({Value::int64(3), Value::string("cat"), Value::int64(10)});
    emp.append({Value::int64(4), Value::string("dan"), Value::int64(30)});
    db_.add_table("Emp", std::move(emp));

    Table dept(Schema({{"id", ValueType::kInt64, ""},
                       {"dname", ValueType::kString, ""}}),
               10.0);
    dept.append({Value::int64(10), Value::string("eng")});
    dept.append({Value::int64(20), Value::string("ops")});
    db_.add_table("Dept", std::move(dept));

    catalog_.add_relation("Emp", db_.table("Emp").schema(),
                          db_.table("Emp").compute_stats());
    catalog_.add_relation("Dept", db_.table("Dept").schema(),
                          db_.table("Dept").compute_stats());
  }

  Database db_;
  Catalog catalog_{10.0};
};

TEST_F(ExecutorTest, ScanReturnsAllRows) {
  const Executor exec(db_);
  const Table t = exec.run(make_scan(catalog_, "Emp"));
  EXPECT_EQ(t.row_count(), 4u);
  EXPECT_EQ(t.schema().at(0).qualified(), "Emp.id");
}

TEST_F(ExecutorTest, UnknownRelationThrows) {
  const Executor exec(db_);
  EXPECT_THROW(exec.run(make_named_scan(
                   "Missing", Schema({{"x", ValueType::kInt64, ""}}))),
               ExecError);
}

TEST_F(ExecutorTest, SelectFilters) {
  const Executor exec(db_);
  const Table t = exec.run(make_select(make_scan(catalog_, "Emp"),
                                       eq(col("dept"), lit_i64(10))));
  EXPECT_EQ(t.row_count(), 2u);
  for (const Tuple& r : t.rows()) EXPECT_EQ(r[2].as_int64(), 10);
}

TEST_F(ExecutorTest, ProjectReordersColumns) {
  const Executor exec(db_);
  const Table t = exec.run(
      make_project(make_scan(catalog_, "Emp"), {"name", "Emp.id"}));
  EXPECT_EQ(t.schema().size(), 2u);
  EXPECT_EQ(t.row(0)[0].as_string(), "ann");
  EXPECT_EQ(t.row(0)[1].as_int64(), 1);
}

TEST_F(ExecutorTest, HashJoinMatchesExpectedPairs) {
  const Executor exec(db_);
  const Table t = exec.run(make_join(make_scan(catalog_, "Emp"),
                                     make_scan(catalog_, "Dept"),
                                     eq(col("Emp.dept"), col("Dept.id"))));
  // dan (dept 30) has no partner.
  EXPECT_EQ(t.row_count(), 3u);
  for (const Tuple& r : t.rows()) {
    EXPECT_EQ(r[2].as_int64(), r[3].as_int64());
  }
}

TEST_F(ExecutorTest, JoinWithResidualPredicate) {
  const Executor exec(db_);
  const Table t = exec.run(make_join(
      make_scan(catalog_, "Emp"), make_scan(catalog_, "Dept"),
      conj({eq(col("Emp.dept"), col("Dept.id")),
            cmp(CompareOp::kNe, col("Emp.name"), lit_str("ann"))})));
  EXPECT_EQ(t.row_count(), 2u);
}

TEST_F(ExecutorTest, CrossJoinViaTruePredicate) {
  const Executor exec(db_);
  const Table t = exec.run(make_join(make_scan(catalog_, "Emp"),
                                     make_scan(catalog_, "Dept"),
                                     lit(Value::boolean(true))));
  EXPECT_EQ(t.row_count(), 8u);  // 4 x 2
}

TEST_F(ExecutorTest, NonEquiJoinNestedLoop) {
  const Executor exec(db_);
  const Table t = exec.run(make_join(make_scan(catalog_, "Emp"),
                                     make_scan(catalog_, "Dept"),
                                     lt(col("Emp.dept"), col("Dept.id"))));
  // dept < Dept.id pairs: (10,20) x2 ... compute: emp depts 10,20,10,30 vs
  // dept ids 10,20: pairs with dept<id: 10<20 (ann), 10<20 (cat) = 2.
  EXPECT_EQ(t.row_count(), 2u);
}

TEST_F(ExecutorTest, StatsCountRowsAndBlocks) {
  const Executor exec(db_);
  ExecStats stats;
  exec.run(make_select(make_scan(catalog_, "Emp"),
                       eq(col("dept"), lit_i64(10))),
           &stats);
  EXPECT_GT(stats.blocks_read, 0);
  EXPECT_EQ(stats.rows_out.at("scan(Emp)"), 4);
  EXPECT_EQ(stats.rows_out.at("select[(Emp.dept = 10)]"), 2);
}

TEST_F(ExecutorTest, SharedSubplanExecutedOnce) {
  const Executor exec(db_);
  // The same scan *object* feeds both join inputs (through disjoint
  // projections so the joint schema stays valid); the memo must charge
  // the scan once.
  const PlanPtr shared = make_scan(catalog_, "Emp");
  const PlanPtr dag = make_join(make_project(shared, {"Emp.id"}),
                                make_project(shared, {"Emp.name"}),
                                lit(Value::boolean(true)));
  ExecStats shared_stats;
  exec.run(dag, &shared_stats);

  // Structurally identical plan with two distinct scan objects: the scan
  // is charged twice.
  const PlanPtr tree = make_join(
      make_project(make_scan(catalog_, "Emp"), {"Emp.id"}),
      make_project(make_scan(catalog_, "Emp"), {"Emp.name"}),
      lit(Value::boolean(true)));
  ExecStats tree_stats;
  exec.run(tree, &tree_stats);

  EXPECT_DOUBLE_EQ(tree_stats.blocks_read - shared_stats.blocks_read,
                   db_.table("Emp").blocks());
}

TEST_F(ExecutorTest, SameBagHelper) {
  Table a(Schema({{"x", ValueType::kInt64, ""}}), 10.0);
  Table b(Schema({{"x", ValueType::kInt64, ""}}), 10.0);
  a.append({Value::int64(1)});
  a.append({Value::int64(2)});
  b.append({Value::int64(2)});
  b.append({Value::int64(1)});
  EXPECT_TRUE(same_bag(a, b));
  b.append({Value::int64(1)});
  EXPECT_FALSE(same_bag(a, b));
  // Duplicates must match in multiplicity.
  a.append({Value::int64(3)});
  EXPECT_FALSE(same_bag(a, b));
}

TEST_F(ExecutorTest, SelectChargesItsInputBlocks) {
  const Executor exec(db_);
  ExecStats stats;
  exec.run(make_select(make_scan(catalog_, "Emp"),
                       eq(col("dept"), lit_i64(10))),
           &stats);
  // Scan charges the stored table once, select charges reading its input
  // once more (it inspects every row).
  EXPECT_DOUBLE_EQ(stats.blocks_read, 2 * db_.table("Emp").blocks());
  EXPECT_DOUBLE_EQ(stats.rows_scanned, 8.0);  // 4 scanned + 4 filtered
  EXPECT_DOUBLE_EQ(stats.batches, 2.0);
}

TEST_F(ExecutorTest, NestedLoopChargesSmallerInputAsOuter) {
  const Executor exec(db_);
  // Theta join forces the nested loop; Dept (1 block) is smaller than
  // Emp (1 block) — with equal blocks the formula is symmetric, so also
  // check a plan where the sides differ via a filter.
  ExecStats stats;
  exec.run(make_join(make_scan(catalog_, "Emp"), make_scan(catalog_, "Dept"),
                     lt(col("Emp.dept"), col("Dept.id"))),
           &stats);
  const double emp = db_.table("Emp").blocks();
  const double dept = db_.table("Dept").blocks();
  const double outer = std::min(emp, dept);
  const double inner = std::max(emp, dept);
  EXPECT_DOUBLE_EQ(stats.blocks_read, emp + dept + outer + outer * inner);

  // Larger-left plan: the outer side must still be the smaller input
  // (the old accounting charged the left side unconditionally).
  ExecStats swapped;
  exec.run(make_join(make_scan(catalog_, "Dept"), make_scan(catalog_, "Emp"),
                     gt(col("Dept.id"), col("Emp.dept"))),
           &swapped);
  EXPECT_DOUBLE_EQ(swapped.blocks_read, stats.blocks_read);
}

TEST_F(ExecutorTest, VectorizedModeProducesSameResults) {
  const Executor row(db_, ExecMode::kRow);
  const Executor vec(db_, ExecMode::kVectorized, 2);
  EXPECT_EQ(vec.mode(), ExecMode::kVectorized);
  const PlanPtr plan = make_join(
      make_select(make_scan(catalog_, "Emp"), gt(col("Emp.id"), lit_i64(1))),
      make_scan(catalog_, "Dept"), eq(col("Emp.dept"), col("Dept.id")));
  EXPECT_TRUE(same_bag(row.run(plan), vec.run(plan)));
}

TEST_F(ExecutorTest, ExecModeEnvSwitch) {
  ASSERT_EQ(setenv("MVD_EXEC_MODE", "vectorized", 1), 0);
  EXPECT_EQ(default_exec_mode(), ExecMode::kVectorized);
  ASSERT_EQ(setenv("MVD_EXEC_MODE", "fused", 1), 0);
  EXPECT_EQ(default_exec_mode(), ExecMode::kFused);
  ASSERT_EQ(setenv("MVD_EXEC_MODE", "row", 1), 0);
  EXPECT_EQ(default_exec_mode(), ExecMode::kRow);
  ASSERT_EQ(unsetenv("MVD_EXEC_MODE"), 0);
  EXPECT_EQ(default_exec_mode(), ExecMode::kRow);

  // MVD_EXEC_FUSED overrides the kernel layer on top of MVD_EXEC_MODE:
  // truthy upgrades any mode to fused, falsy demotes fused to plain
  // vectorized, anything else leaves the mode alone.
  ASSERT_EQ(setenv("MVD_EXEC_FUSED", "1", 1), 0);
  EXPECT_EQ(default_exec_mode(), ExecMode::kFused);
  ASSERT_EQ(setenv("MVD_EXEC_MODE", "vec", 1), 0);
  EXPECT_EQ(default_exec_mode(), ExecMode::kFused);
  ASSERT_EQ(setenv("MVD_EXEC_FUSED", "off", 1), 0);
  ASSERT_EQ(setenv("MVD_EXEC_MODE", "fused", 1), 0);
  EXPECT_EQ(default_exec_mode(), ExecMode::kVectorized);
  ASSERT_EQ(setenv("MVD_EXEC_FUSED", "unrecognized", 1), 0);
  EXPECT_EQ(default_exec_mode(), ExecMode::kFused);
  ASSERT_EQ(unsetenv("MVD_EXEC_FUSED"), 0);
  ASSERT_EQ(unsetenv("MVD_EXEC_MODE"), 0);

  ASSERT_EQ(setenv("MVD_EXEC_THREADS", "4", 1), 0);
  EXPECT_EQ(default_exec_threads(), 4u);
  ASSERT_EQ(setenv("MVD_EXEC_THREADS", "not-a-number", 1), 0);
  EXPECT_EQ(default_exec_threads(), 1u);
  ASSERT_EQ(unsetenv("MVD_EXEC_THREADS"), 0);
}

TEST_F(ExecutorTest, HashAndNestedLoopAgreeOnGeneratedData) {
  StarSchemaOptions schema;
  schema.dimensions = 2;
  schema.fact_rows = 500;
  schema.dimension_rows = 50;
  const Database db = populate_star_database(schema, 5);
  const Catalog catalog = catalog_from_database(db, 10.0);
  const Executor exec(db);

  // Equi join (hash path).
  const PlanPtr hash_plan = make_join(make_scan(catalog, "Fact"),
                                      make_scan(catalog, "Dim0"),
                                      eq(col("Fact.d0"), col("Dim0.id")));
  const Table hash_result = exec.run(hash_plan);
  // Same predicate phrased non-hashably: (d0 <= id AND d0 >= id) forces
  // the nested loop.
  const PlanPtr nl_plan = make_join(
      make_scan(catalog, "Fact"), make_scan(catalog, "Dim0"),
      conj({cmp(CompareOp::kLe, col("Fact.d0"), col("Dim0.id")),
            cmp(CompareOp::kGe, col("Fact.d0"), col("Dim0.id"))}));
  const Table nl_result = exec.run(nl_plan);
  EXPECT_TRUE(same_bag(hash_result, nl_result));
  EXPECT_EQ(hash_result.row_count(), 500u);  // FK join preserves fact rows
}

}  // namespace
}  // namespace mvd
