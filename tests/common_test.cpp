// Tests for src/common: assertions, strings, units, random, text tables.
#include <gtest/gtest.h>

#include <set>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/hash.hpp"
#include "src/common/random.hpp"
#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"
#include "src/common/units.hpp"

namespace mvd {
namespace {

TEST(Assert, PassingAssertDoesNothing) { MVD_ASSERT(1 + 1 == 2); }

TEST(Assert, FailingAssertThrowsAssertionError) {
  EXPECT_THROW(MVD_ASSERT(1 == 2), AssertionError);
}

TEST(Assert, MessageIncludesExpressionAndLocation) {
  try {
    MVD_ASSERT_MSG(false, "extra " << 42);
    FAIL() << "should have thrown";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("extra 42"), std::string::npos);
  }
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(equals_icase("SELECT", "select"));
  EXPECT_FALSE(equals_icase("SELECT", "selec"));
  EXPECT_TRUE(starts_with_icase("Select * from", "SELECT"));
  EXPECT_FALSE(starts_with_icase("Sel", "SELECT"));
}

TEST(Strings, StrCatStreamsArguments) {
  EXPECT_EQ(str_cat("a", 1, '-', 2.5), "a1-2.5");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Units, FormatBlocksMatchesPaperNotation) {
  EXPECT_EQ(format_blocks(35'250), "35.25k");
  EXPECT_EQ(format_blocks(12'065'000), "12.065m");
  EXPECT_EQ(format_blocks(250), "250");
  EXPECT_EQ(format_blocks(95'671'000), "95.671m");
  EXPECT_EQ(format_blocks(0), "0");
  EXPECT_EQ(format_blocks(2.5e9), "2.5g");
}

TEST(Units, ParseBlocksRoundTrips) {
  EXPECT_DOUBLE_EQ(parse_blocks("35.25k"), 35'250.0);
  EXPECT_DOUBLE_EQ(parse_blocks("12.065m"), 12'065'000.0);
  EXPECT_DOUBLE_EQ(parse_blocks("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_blocks(" 1.5G "), 1.5e9);
}

TEST(Units, ParseBlocksRejectsGarbage) {
  EXPECT_THROW(parse_blocks(""), Error);
  EXPECT_THROW(parse_blocks("abc"), Error);
  EXPECT_THROW(parse_blocks("1.2.3k"), Error);
}

TEST(Random, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Random, UniformIntInRange) {
  Rng rng(42);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(Random, Uniform01InUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Random, ZipfSkewsTowardLowRanks) {
  Rng rng(5);
  ZipfSampler zipf(10, 1.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[zipf.sample(rng)]++;
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  double total_pmf = 0;
  for (std::size_t k = 0; k < 10; ++k) total_pmf += zipf.pmf(k);
  EXPECT_NEAR(total_pmf, 1.0, 1e-12);
}

TEST(Random, ZipfZeroSkewIsUniform) {
  ZipfSampler zipf(4, 0.0);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(zipf.pmf(k), 0.25, 1e-12);
}

TEST(Hash, CombineChangesWithInput) {
  std::size_t a = 0, b = 0;
  hash_combine(a, 1);
  hash_combine(b, 2);
  EXPECT_NE(a, b);
}

TEST(Hash, Fnv1aStableValues) {
  // Reference values of FNV-1a 64-bit.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "cost"}, {Align::kLeft, Align::kRight});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "23456"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Right-aligned numbers end in the same column.
  const auto lines = split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].size(), lines[3].size());
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), AssertionError);
}

TEST(TextTable, SeparatorAndIndent) {
  TextTable t({"h"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  const std::string out = t.render(2);
  for (const auto& line : split(out, '\n')) {
    if (!line.empty()) EXPECT_EQ(line.substr(0, 2), "  ");
  }
  EXPECT_EQ(t.row_count(), 3u);
}

}  // namespace
}  // namespace mvd
