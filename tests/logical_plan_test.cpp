// Tests for src/algebra/logical_plan and query_spec: construction,
// binding, signatures, canonical plans.
#include <gtest/gtest.h>

#include "src/algebra/logical_plan.hpp"
#include "src/algebra/query_spec.hpp"
#include "src/common/error.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  Catalog catalog_ = make_paper_catalog();
};

TEST_F(PlanTest, ScanQualifiesSchema) {
  const PlanPtr scan = make_scan(catalog_, "Product");
  EXPECT_EQ(scan->kind(), OpKind::kScan);
  EXPECT_EQ(scan->output_schema().at(0).qualified(), "Product.Pid");
  EXPECT_THROW(make_scan(catalog_, "Nope"), CatalogError);
}

TEST_F(PlanTest, SelectBindsAndQualifiesPredicate) {
  const PlanPtr plan = make_select(make_scan(catalog_, "Division"),
                                   eq(col("city"), lit_str("LA")));
  const auto& sel = static_cast<const SelectOp&>(*plan);
  EXPECT_EQ(sel.predicate()->to_string(), "(Division.city = 'LA')");
  EXPECT_EQ(plan->output_schema().size(), 3u);
}

TEST_F(PlanTest, SelectUnknownColumnThrows) {
  EXPECT_THROW(make_select(make_scan(catalog_, "Division"),
                           eq(col("bogus"), lit_i64(1))),
               BindError);
}

TEST_F(PlanTest, ProjectShapesSchema) {
  const PlanPtr plan =
      make_project(make_scan(catalog_, "Product"), {"name", "Product.Did"});
  EXPECT_EQ(plan->output_schema().size(), 2u);
  EXPECT_EQ(plan->output_schema().at(0).qualified(), "Product.name");
  EXPECT_THROW(make_project(make_scan(catalog_, "Product"), {}), PlanError);
  EXPECT_THROW(
      make_project(make_scan(catalog_, "Product"), {"name", "name"}),
      PlanError);
}

TEST_F(PlanTest, JoinConcatenatesSchemas) {
  const PlanPtr join = make_join(make_scan(catalog_, "Product"),
                                 make_scan(catalog_, "Division"),
                                 eq(col("Product.Did"), col("Division.Did")));
  EXPECT_EQ(join->output_schema().size(), 6u);
  EXPECT_TRUE(join->output_schema().contains("Division.city"));
}

TEST_F(PlanTest, JoinAmbiguousBareColumnThrows) {
  // "Did" exists on both sides of the join schema.
  EXPECT_THROW(make_join(make_scan(catalog_, "Product"),
                         make_scan(catalog_, "Division"),
                         eq(col("Did"), lit_i64(1))),
               BindError);
}

TEST_F(PlanTest, BaseRelationsCollectsScans) {
  const PlanPtr join = make_join(make_scan(catalog_, "Product"),
                                 make_scan(catalog_, "Division"),
                                 eq(col("Product.Did"), col("Division.Did")));
  EXPECT_EQ(base_relations(join),
            (std::set<std::string>{"Product", "Division"}));
}

TEST_F(PlanTest, TreeStringShowsStructure) {
  const PlanPtr plan = make_project(
      make_select(make_scan(catalog_, "Division"),
                  eq(col("city"), lit_str("LA"))),
      {"name"});
  const std::string tree = plan_tree_string(plan);
  EXPECT_NE(tree.find("project"), std::string::npos);
  EXPECT_NE(tree.find("select"), std::string::npos);
  EXPECT_NE(tree.find("scan(Division)"), std::string::npos);
}

TEST_F(PlanTest, SignatureIdentifiesCommonSubexpressions) {
  // Same operation written in two different orders.
  const PlanPtr a = make_join(make_scan(catalog_, "Product"),
                              make_scan(catalog_, "Division"),
                              eq(col("Product.Did"), col("Division.Did")));
  const PlanPtr b = make_join(make_scan(catalog_, "Division"),
                              make_scan(catalog_, "Product"),
                              eq(col("Division.Did"), col("Product.Did")));
  EXPECT_EQ(signature(a), signature(b));
}

TEST_F(PlanTest, SignatureDistinguishesPredicates) {
  const PlanPtr a = make_select(make_scan(catalog_, "Division"),
                                eq(col("city"), lit_str("LA")));
  const PlanPtr b = make_select(make_scan(catalog_, "Division"),
                                eq(col("city"), lit_str("SF")));
  EXPECT_NE(signature(a), signature(b));
}

TEST_F(PlanTest, SignatureProjectionOrderInsensitive) {
  const PlanPtr a = make_project(make_scan(catalog_, "Product"), {"Pid", "name"});
  const PlanPtr b = make_project(make_scan(catalog_, "Product"), {"name", "Pid"});
  EXPECT_EQ(signature(a), signature(b));
}

class QuerySpecTest : public ::testing::Test {
 protected:
  Catalog catalog_ = make_paper_catalog();

  QuerySpec q1() {
    return QuerySpec::bind(
        catalog_, "Q1", 10.0, {"Product", "Division"},
        conj({eq(col("Division.city"), lit_str("LA")),
              eq(col("Product.Did"), col("Division.Did"))}),
        {"Product.name"});
  }
};

TEST_F(QuerySpecTest, SplitsJoinsFromSelections) {
  const QuerySpec q = q1();
  ASSERT_EQ(q.joins().size(), 1u);
  EXPECT_EQ(q.joins()[0].canonical(), "Division.Did = Product.Did");
  ASSERT_EQ(q.selections().size(), 1u);
  EXPECT_EQ(q.selections()[0]->to_string(), "(Division.city = 'LA')");
  EXPECT_EQ(q.projection(), std::vector<std::string>{"Product.name"});
  EXPECT_DOUBLE_EQ(q.frequency(), 10.0);
}

TEST_F(QuerySpecTest, SelectionsOnFiltersByRelation) {
  const QuerySpec q = q1();
  EXPECT_EQ(q.selections_on("Division").size(), 1u);
  EXPECT_TRUE(q.selections_on("Product").empty());
}

TEST_F(QuerySpecTest, UsedColumnsIncludesJoinAttributes) {
  const QuerySpec q = q1();
  EXPECT_EQ(q.used_columns("Product"),
            (std::set<std::string>{"Product.name", "Product.Did"}));
  EXPECT_EQ(q.used_columns("Division"),
            (std::set<std::string>{"Division.city", "Division.Did"}));
}

TEST_F(QuerySpecTest, JoinsBetweenEitherOrientation) {
  const QuerySpec q = q1();
  EXPECT_EQ(q.joins_between("Division", "Product").size(), 1u);
  EXPECT_EQ(q.joins_between("Product", "Division").size(), 1u);
  EXPECT_TRUE(q.joins_between("Product", "Part").empty());
}

TEST_F(QuerySpecTest, JoinGraphConnectivity) {
  EXPECT_TRUE(q1().join_graph_connected());
  const QuerySpec cross = QuerySpec::bind(
      catalog_, "X", 1.0, {"Product", "Customer"}, nullptr, {"Product.name"});
  EXPECT_FALSE(cross.join_graph_connected());
}

TEST_F(QuerySpecTest, ValidationErrors) {
  EXPECT_THROW(QuerySpec::bind(catalog_, "B", 1.0, {}, nullptr, {"x"}),
               BindError);
  EXPECT_THROW(QuerySpec::bind(catalog_, "B", 1.0, {"Nope"}, nullptr, {"x"}),
               CatalogError);
  EXPECT_THROW(QuerySpec::bind(catalog_, "B", 1.0, {"Product", "Product"},
                               nullptr, {"name"}),
               BindError);
  EXPECT_THROW(QuerySpec::bind(catalog_, "B", -1.0, {"Product"}, nullptr,
                               {"name"}),
               BindError);
  EXPECT_THROW(QuerySpec::bind(catalog_, "B", 1.0, {"Product"}, nullptr, {}),
               BindError);
  EXPECT_THROW(QuerySpec::bind(catalog_, "B", 1.0, {"Product"}, nullptr,
                               {"name", "Product.name"}),
               BindError);
  EXPECT_THROW(QuerySpec::bind(catalog_, "B", 1.0, {"Product"},
                               lit(Value::boolean(true)), {"name"}),
               BindError);
}

TEST_F(QuerySpecTest, MultiRelationSelections) {
  const QuerySpec q = QuerySpec::bind(
      catalog_, "Theta", 1.0, {"Product", "Division"},
      conj({eq(col("Product.Did"), col("Division.Did")),
            cmp(CompareOp::kNe, col("Product.name"), col("Division.name"))}),
      {"Product.name"});
  ASSERT_EQ(q.multi_relation_selections().size(), 1u);
  EXPECT_EQ(q.joins().size(), 1u);  // the non-eq comparison is not a join
}

TEST_F(QuerySpecTest, ToStringMentionsEverything) {
  const std::string s = q1().to_string();
  EXPECT_NE(s.find("Q1"), std::string::npos);
  EXPECT_NE(s.find("FROM Product, Division"), std::string::npos);
  EXPECT_NE(s.find("city"), std::string::npos);
}

TEST_F(QuerySpecTest, CanonicalPlanCoversAllPieces) {
  const PlanPtr plan = canonical_plan(catalog_, q1());
  EXPECT_EQ(plan->kind(), OpKind::kProject);
  EXPECT_EQ(base_relations(plan),
            (std::set<std::string>{"Product", "Division"}));
  EXPECT_EQ(plan->output_schema().size(), 1u);
}

TEST_F(QuerySpecTest, CanonicalPlanHandlesCrossJoin) {
  const QuerySpec cross = QuerySpec::bind(
      catalog_, "X", 1.0, {"Product", "Customer"}, nullptr, {"Product.name"});
  const PlanPtr plan = canonical_plan(catalog_, cross);
  EXPECT_EQ(base_relations(plan).size(), 2u);
}

}  // namespace
}  // namespace mvd
