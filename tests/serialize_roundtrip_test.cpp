// JSON round-trips: Json::parse inverts Json::dump exactly, expr_to_sql
// inverts through the SQL parser, and mvpp_from_json rebuilds a graph
// to_json serialized — same ids, names, signatures, and (re-annotated or
// overlaid) the same costs to the last bit.
#include <gtest/gtest.h>

#include "src/algebra/expr.hpp"
#include "src/common/error.hpp"
#include "src/lint/lint.hpp"
#include "src/mvpp/serialize.hpp"
#include "src/sql/parser.hpp"
#include "src/storage/value.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

// ---- Json::parse -----------------------------------------------------

TEST(JsonParseTest, ScalarsAndNesting) {
  const Json j = Json::parse(
      R"({"a": 1, "b": -2.5, "c": "x\ny", "d": [true, false, null], "e": {}})");
  EXPECT_EQ(j.at("a").as_number(), 1);
  EXPECT_EQ(j.at("b").as_number(), -2.5);
  EXPECT_EQ(j.at("c").as_string(), "x\ny");
  EXPECT_TRUE(j.at("d").at(0).as_bool());
  EXPECT_FALSE(j.at("d").at(1).as_bool());
  EXPECT_EQ(j.at("d").at(2).kind(), Json::Kind::kNull);
  EXPECT_EQ(j.at("e").size(), 0u);
}

TEST(JsonParseTest, UnicodeEscapesAndExponents) {
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(Json::parse("1e3").as_number(), 1000);
  EXPECT_EQ(Json::parse("-1.25e-2").as_number(), -0.0125);
}

TEST(JsonParseTest, MalformedInputThrows) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::parse("nul"), ParseError);
  EXPECT_THROW(Json::parse("1 2"), ParseError);
}

TEST(JsonParseTest, DumpParseRoundTripsExactDoubles) {
  // Values iostream precision-12 would have mangled.
  for (double v : {1.0 / 3.0, 2.5, 1e-17, 123456789.123456789, 0.1}) {
    Json j = Json::object();
    j.set("v", Json::number(v));
    for (int indent : {0, 2}) {
      const Json back = Json::parse(j.dump(indent));
      EXPECT_EQ(back.at("v").as_number(), v) << "indent " << indent;
    }
  }
  // json_test's integer expectations stay intact.
  EXPECT_EQ(Json::number(42.0).dump(), "42");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
}

// ---- expr_to_sql -----------------------------------------------------

TEST(ExprToSqlTest, RoundTripsThroughTheParser) {
  const std::vector<ExprPtr> cases = {
      eq(col("Division.city"), lit_str("LA")),
      gt(col("Order.quantity"), lit_i64(100)),
      gt(col("Order.date"), lit(Value::date_ymd(1996, 7, 1))),
      conj({eq(col("a"), lit_i64(1)), lt(col("b"), lit_real(2.5))}),
      disj({eq(col("city"), lit_str("LA")), eq(col("city"), lit_str("SF"))}),
      neg(eq(col("x"), lit_str("it's"))),
      cmp(CompareOp::kNe, col("x"), lit_i64(7)),
  };
  for (const ExprPtr& e : cases) {
    const std::string sql = expr_to_sql(e);
    const ExprPtr back = parse_predicate(sql);
    EXPECT_TRUE(expr_equal(normalize(e), normalize(back)))
        << sql << " reparsed as " << back->to_string();
  }
}

TEST(ExprToSqlTest, DatesCarryTheDateKeyword) {
  const std::string sql =
      expr_to_sql(gt(col("Order.date"), lit(Value::date_ymd(1996, 7, 1))));
  EXPECT_NE(sql.find("DATE '1996-07-01'"), std::string::npos) << sql;
}

// ---- mvpp_from_json --------------------------------------------------

class MvppRoundTripTest : public ::testing::Test {
 protected:
  MvppRoundTripTest()
      : catalog_(make_paper_catalog()),
        cost_model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(cost_model_)) {}

  static void expect_same_structure(const MvppGraph& a, const MvppGraph& b) {
    ASSERT_EQ(a.size(), b.size());
    for (NodeId v = 0; v < static_cast<NodeId>(a.size()); ++v) {
      const MvppNode& na = a.node(v);
      const MvppNode& nb = b.node(v);
      EXPECT_EQ(na.kind, nb.kind) << na.name;
      EXPECT_EQ(na.name, nb.name);
      EXPECT_EQ(na.sig, nb.sig) << na.name;
      EXPECT_EQ(na.children, nb.children) << na.name;
      EXPECT_EQ(na.parents, nb.parents) << na.name;
      EXPECT_EQ(na.frequency, nb.frequency) << na.name;
    }
  }

  static void expect_same_annotation(const MvppGraph& a, const MvppGraph& b) {
    for (NodeId v = 0; v < static_cast<NodeId>(a.size()); ++v) {
      const MvppNode& na = a.node(v);
      const MvppNode& nb = b.node(v);
      EXPECT_EQ(na.rows, nb.rows) << na.name;
      EXPECT_EQ(na.blocks, nb.blocks) << na.name;
      EXPECT_EQ(na.op_cost, nb.op_cost) << na.name;
      EXPECT_EQ(na.full_cost, nb.full_cost) << na.name;
    }
  }

  Catalog catalog_;
  CostModel cost_model_;
  MvppGraph graph_;
};

TEST_F(MvppRoundTripTest, ReannotatedReloadIsBitIdentical) {
  const std::string text = to_json(graph_).dump(2);
  const MvppGraph back =
      mvpp_from_json(Json::parse(text), catalog_, &cost_model_);
  expect_same_structure(graph_, back);
  ASSERT_TRUE(back.annotated());
  expect_same_annotation(graph_, back);

  // The reloaded graph evaluates identically.
  const MvppEvaluator original(graph_);
  const MvppEvaluator reloaded(back);
  const SelectionResult best = yang_heuristic(original);
  EXPECT_EQ(reloaded.evaluate(best.materialized).total(), best.costs.total());
}

TEST_F(MvppRoundTripTest, OverlayReloadKeepsRecordedCostsAndLintsClean) {
  const MvppGraph back = mvpp_from_json(to_json(graph_), catalog_);
  expect_same_structure(graph_, back);
  ASSERT_TRUE(back.annotated());
  expect_same_annotation(graph_, back);

  // Without plan exprs the schema/estimate rules skip; everything else
  // must hold on the overlay.
  const GraphClosures closures(back);
  const LintReport report = lint_graph(back, &closures, &cost_model_);
  EXPECT_TRUE(report.clean()) << report.render_text();
}

TEST_F(MvppRoundTripTest, UnannotatedGraphsRoundTripToo) {
  // Hand-built structure, never annotated: serialization carries no
  // rows/blocks fields and the loader leaves the copy unannotated.
  MvppGraph g;
  const NodeId division =
      g.add_base("Division", catalog_.schema("Division"), 2.0);
  const NodeId la = g.add_select(division, eq(col("city"), lit_str("LA")));
  const NodeId names = g.add_project(la, {"Division.name"});
  g.add_query("QNames", 4.0, names);

  const MvppGraph back = mvpp_from_json(to_json(g), catalog_);
  expect_same_structure(g, back);
  EXPECT_FALSE(back.annotated());
}

TEST_F(MvppRoundTripTest, MalformedDocumentsThrow) {
  EXPECT_THROW(mvpp_from_json(Json::array(), catalog_), ParseError);
  Json doc = Json::object();
  doc.set("annotated", Json::boolean(false));
  EXPECT_THROW(mvpp_from_json(doc, catalog_), ParseError);

  // Unknown relation name: rebuild the document with the first base
  // renamed.
  const Json good = to_json(graph_);
  Json first = good.at("nodes").at(0);
  first.set("relation", Json::string("NoSuchRelation"));
  Json rebuilt = Json::array();
  rebuilt.push_back(std::move(first));
  for (std::size_t i = 1; i < good.at("nodes").size(); ++i) {
    rebuilt.push_back(good.at("nodes").at(i));
  }
  Json broken = Json::object();
  broken.set("annotated", good.at("annotated"));
  broken.set("nodes", std::move(rebuilt));
  EXPECT_THROW(mvpp_from_json(broken, catalog_), CatalogError);
}

}  // namespace
}  // namespace mvd
