// Tests for src/optimizer: pushdown placement, join-order DP, plan
// semantics preservation (checked against the executor on populated data).
#include <gtest/gtest.h>

#include <limits>

#include "src/common/error.hpp"
#include "src/exec/executor.hpp"
#include "src/optimizer/optimizer.hpp"
#include "src/sql/parser.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : example_(make_paper_example()),
        model_(example_.catalog, paper_cost_config()),
        optimizer_(model_) {}

  const QuerySpec& query(std::size_t i) { return example_.queries[i]; }

  PaperExample example_;
  CostModel model_;
  Optimizer optimizer_;
};

TEST_F(OptimizerTest, RelationUnitPushesSelectionAndProjection) {
  const PlanPtr unit = optimizer_.relation_unit(query(0), "Division",
                                                PlanPlacement{true, true});
  // select below project, both over the scan.
  EXPECT_EQ(unit->kind(), OpKind::kProject);
  EXPECT_EQ(unit->children()[0]->kind(), OpKind::kSelect);
  EXPECT_EQ(unit->children()[0]->children()[0]->kind(), OpKind::kScan);
  // Projection keeps the join attribute Did and the selected city.
  EXPECT_TRUE(unit->output_schema().contains("Division.Did"));
}

TEST_F(OptimizerTest, RelationUnitBareWhenNothingApplies) {
  const PlanPtr unit = optimizer_.relation_unit(query(0), "Division",
                                                PlanPlacement{false, false});
  EXPECT_EQ(unit->kind(), OpKind::kScan);
}

TEST_F(OptimizerTest, BuildPlanAppliesJoinPredicatesOnce) {
  const PlanPtr plan = optimizer_.build_plan(
      query(2), query(2).relations(), PlanPlacement{true, true});
  // All three join conjuncts of Q3 must appear in the tree exactly once.
  int joins = 0;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& p) {
    if (p->kind() == OpKind::kJoin) ++joins;
    for (const auto& c : p->children()) walk(c);
  };
  walk(plan);
  EXPECT_EQ(joins, 3);
}

TEST_F(OptimizerTest, BuildPlanValidatesOrder) {
  EXPECT_THROW(optimizer_.build_plan(query(0), {"Product"},
                                     PlanPlacement{true, true}),
               PlanError);
  EXPECT_THROW(optimizer_.build_plan(query(0), {"Product", "Part"},
                                     PlanPlacement{true, true}),
               PlanError);
}

TEST_F(OptimizerTest, OptimalOrderIsCostMinimalAmongAllPermutations) {
  // The DP must never be beaten by any left-deep permutation (the join
  // cost is outer/inner symmetric, so ties between mirror orders are
  // expected — the DP may return either).
  for (const QuerySpec& q : example_.queries) {
    const double dp_cost = model_.full_cost(
        optimizer_.build_plan(q, optimizer_.optimal_join_order(q),
                              PlanPlacement{true, true}));
    std::vector<std::string> order = q.relations();
    std::sort(order.begin(), order.end());
    double best = std::numeric_limits<double>::infinity();
    do {
      best = std::min(best,
                      model_.full_cost(optimizer_.build_plan(
                          q, order, PlanPlacement{true, true})));
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_NEAR(dp_cost, best, 1e-6) << q.name();
  }
}

TEST_F(OptimizerTest, OptimalPlanNoWorseThanFromClauseOrder) {
  for (const QuerySpec& q : example_.queries) {
    const double optimal = model_.full_cost(optimizer_.optimize(q));
    const double naive = model_.full_cost(
        optimizer_.build_plan(q, q.relations(), PlanPlacement{true, true}));
    EXPECT_LE(optimal, naive + 1e-6) << q.name();
  }
}

TEST_F(OptimizerTest, PushdownNeverHurts) {
  for (const QuerySpec& q : example_.queries) {
    const std::vector<std::string> order = optimizer_.optimal_join_order(q);
    const double down = model_.full_cost(
        optimizer_.build_plan(q, order, PlanPlacement{true, true}));
    const double up = model_.full_cost(
        optimizer_.build_plan(q, order, PlanPlacement{false, false}));
    EXPECT_LE(down, up + 1e-6) << q.name();
  }
}

TEST_F(OptimizerTest, PushedUpPlanIsPureJoinPattern) {
  const PlanPtr up = optimizer_.optimize_pushed_up(query(2));
  // Top: project over select over joins; below the top select no select
  // or project nodes may appear.
  ASSERT_EQ(up->kind(), OpKind::kProject);
  const PlanPtr below = up->children()[0];
  ASSERT_EQ(below->kind(), OpKind::kSelect);
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& p) {
    EXPECT_TRUE(p->kind() == OpKind::kJoin || p->kind() == OpKind::kScan)
        << p->label();
    for (const auto& c : p->children()) walk(c);
  };
  walk(below->children()[0]);
}

TEST_F(OptimizerTest, SingleRelationQuery) {
  const QuerySpec q = parse_and_bind(example_.catalog, "S", 1.0,
                                     "SELECT name FROM Product");
  EXPECT_EQ(optimizer_.optimal_join_order(q),
            std::vector<std::string>{"Product"});
  const PlanPtr plan = optimizer_.optimize(q);
  EXPECT_EQ(base_relations(plan), std::set<std::string>{"Product"});
}

TEST_F(OptimizerTest, DisconnectedJoinGraphFallsBackToCrossJoin) {
  const QuerySpec q = parse_and_bind(
      example_.catalog, "X", 1.0,
      "SELECT Product.name, Customer.name FROM Product, Customer");
  const std::vector<std::string> order = optimizer_.optimal_join_order(q);
  EXPECT_EQ(order.size(), 2u);
  const PlanPtr plan = optimizer_.optimize(q);
  EXPECT_EQ(base_relations(plan).size(), 2u);
}

// Semantics: every optimizer output returns the same bag of tuples as the
// canonical plan, on real data.
class OptimizerSemanticsTest : public ::testing::Test {
 protected:
  OptimizerSemanticsTest() {
    StarSchemaOptions schema;
    schema.dimensions = 3;
    schema.fact_rows = 2'000;
    schema.dimension_rows = 100;
    schema.categories = 5;
    db_ = populate_star_database(schema, 99);
    catalog_ = catalog_from_database(db_, 10.0);
    StarQueryOptions qopts;
    qopts.count = 6;
    qopts.max_dimensions = 3;
    qopts.seed = 4;
    queries_ = generate_star_queries(catalog_, schema, qopts);
  }

  Database db_;
  Catalog catalog_ = Catalog(10.0);
  std::vector<QuerySpec> queries_;
};

TEST_F(OptimizerSemanticsTest, OptimizedPlansMatchCanonicalSemantics) {
  const CostModel model(catalog_, {});
  const Optimizer optimizer(model);
  const Executor exec(db_);
  for (const QuerySpec& q : queries_) {
    const Table expected = exec.run(canonical_plan(catalog_, q));
    const Table optimized = exec.run(optimizer.optimize(q));
    EXPECT_TRUE(same_bag(expected, optimized)) << q.to_string();
    const Table pushed_up = exec.run(optimizer.optimize_pushed_up(q));
    EXPECT_TRUE(same_bag(expected, pushed_up)) << q.to_string();
  }
}

TEST_F(OptimizerSemanticsTest, AllOrdersSameSemantics) {
  // Property: any join order produces the same bag.
  const CostModel model(catalog_, {});
  const Optimizer optimizer(model);
  const Executor exec(db_);
  const QuerySpec& q = queries_.front();
  const Table expected = exec.run(canonical_plan(catalog_, q));
  std::vector<std::string> order = q.relations();
  std::sort(order.begin(), order.end());
  do {
    const Table got = exec.run(
        optimizer.build_plan(q, order, PlanPlacement{true, true}));
    EXPECT_TRUE(same_bag(expected, got));
  } while (std::next_permutation(order.begin(), order.end()));
}

}  // namespace
}  // namespace mvd
