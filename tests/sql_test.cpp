// Tests for src/sql: lexer and parser.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/sql/lexer.hpp"
#include "src/sql/parser.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

TEST(LexerTest, TokenKinds) {
  const auto tokens = tokenize("SELECT name FROM T WHERE x >= 1.5");
  ASSERT_EQ(tokens.size(), 9u);  // incl. end token
  EXPECT_TRUE(tokens[0].is_keyword("SELECT"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_TRUE(tokens[2].is_keyword("FROM"));
  EXPECT_TRUE(tokens[4].is_keyword("WHERE"));
  EXPECT_TRUE(tokens[6].is_symbol(">="));
  EXPECT_EQ(tokens[7].kind, TokenKind::kNumber);
  EXPECT_FALSE(tokens[7].is_integer);
  EXPECT_DOUBLE_EQ(tokens[7].number, 1.5);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(tokenize("select")[0].is_keyword("SELECT"));
  EXPECT_TRUE(tokenize("WhErE")[0].is_keyword("WHERE"));
}

TEST(LexerTest, StringEscapes) {
  const auto tokens = tokenize("'it''s'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("'oops"), ParseError);
}

TEST(LexerTest, UnexpectedCharacterThrows) {
  EXPECT_THROW(tokenize("a ; b"), ParseError);
}

TEST(LexerTest, IntegerVsFloat) {
  EXPECT_TRUE(tokenize("42")[0].is_integer);
  EXPECT_FALSE(tokenize("42.0")[0].is_integer);
  // "1." does not absorb the dot (dot needs a following digit).
  const auto tokens = tokenize("1.x");
  EXPECT_TRUE(tokens[0].is_integer);
  EXPECT_TRUE(tokens[1].is_symbol("."));
}

TEST(ParserTest, BasicQueryShape) {
  const ParsedQuery q = parse_query(
      "SELECT Product.name, Did FROM Product, Division "
      "WHERE Division.city = 'LA' AND Product.Did = Division.Did");
  EXPECT_EQ(q.select_list,
            (std::vector<std::string>{"Product.name", "Did"}));
  EXPECT_EQ(q.relations, (std::vector<std::string>{"Product", "Division"}));
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(conjuncts_of(q.where).size(), 2u);
}

TEST(ParserTest, NoWhereClause) {
  const ParsedQuery q = parse_query("SELECT name FROM Product");
  EXPECT_EQ(q.where, nullptr);
}

TEST(ParserTest, SelectStar) {
  const ParsedQuery q = parse_query("SELECT * FROM Product");
  EXPECT_EQ(q.select_list, std::vector<std::string>{"*"});
}

TEST(ParserTest, OperatorsAndPrecedence) {
  // AND binds tighter than OR.
  const ExprPtr p = parse_predicate("a = 1 OR b = 2 AND c = 3");
  ASSERT_EQ(p->kind(), ExprKind::kOr);
  const auto& ops = static_cast<const BoolExpr&>(*p).operands();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[1]->kind(), ExprKind::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const ExprPtr p = parse_predicate("(a = 1 OR b = 2) AND c = 3");
  EXPECT_EQ(p->kind(), ExprKind::kAnd);
}

TEST(ParserTest, NotOperator) {
  const ExprPtr p = parse_predicate("NOT a = 1");
  EXPECT_EQ(p->kind(), ExprKind::kNot);
}

TEST(ParserTest, AllComparisonOperators) {
  for (const char* op : {"=", "<>", "!=", "<", "<=", ">", ">="}) {
    const ExprPtr p = parse_predicate(std::string("a ") + op + " 1");
    EXPECT_EQ(p->kind(), ExprKind::kComparison) << op;
  }
}

TEST(ParserTest, DateLiteralViaAdjacency) {
  const ExprPtr p = parse_predicate("d > DATE '1996-07-01'");
  const auto& c = static_cast<const ComparisonExpr&>(*p);
  const auto& l = static_cast<const LiteralExpr&>(*c.rhs());
  EXPECT_EQ(l.value().type(), ValueType::kDate);
  EXPECT_EQ(l.value().to_string(), "1996-07-01");
}

TEST(ParserTest, DateAsColumnName) {
  // "date" alone is a column; Order has one.
  const ExprPtr p = parse_predicate("date > DATE '1996-07-01'");
  const auto& c = static_cast<const ComparisonExpr&>(*p);
  EXPECT_EQ(c.lhs()->kind(), ExprKind::kColumn);
}

TEST(ParserTest, MalformedDateThrows) {
  EXPECT_THROW(parse_predicate("d > DATE '1996/07/01'"), ParseError);
  EXPECT_THROW(parse_predicate("d > DATE '1996-13-01'"), ParseError);
  EXPECT_THROW(parse_predicate("d > DATE '96'"), ParseError);
}

TEST(ParserTest, BooleanLiterals) {
  EXPECT_EQ(parse_predicate("a = TRUE")->kind(), ExprKind::kComparison);
  EXPECT_EQ(parse_predicate("a = false")->kind(), ExprKind::kComparison);
}

TEST(ParserTest, SyntaxErrorsCarryOffsets) {
  try {
    parse_query("SELECT FROM T");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
  EXPECT_THROW(parse_query("name FROM T"), ParseError);
  EXPECT_THROW(parse_query("SELECT a FROM T WHERE"), ParseError);
  EXPECT_THROW(parse_query("SELECT a FROM T extra"), ParseError);
  EXPECT_THROW(parse_predicate("a ="), ParseError);
  EXPECT_THROW(parse_predicate("(a = 1"), ParseError);
}

TEST(ParseAndBindTest, ProducesBoundSpec) {
  const Catalog catalog = make_paper_catalog();
  const QuerySpec q = parse_and_bind(
      catalog, "Q1", 10.0,
      "SELECT Product.name FROM Product, Division "
      "WHERE Division.city = 'LA' AND Product.Did = Division.Did");
  EXPECT_EQ(q.name(), "Q1");
  EXPECT_EQ(q.joins().size(), 1u);
  EXPECT_EQ(q.selections().size(), 1u);
}

TEST(ParseAndBindTest, StarExpandsAllColumns) {
  const Catalog catalog = make_paper_catalog();
  const QuerySpec q =
      parse_and_bind(catalog, "Q", 1.0, "SELECT * FROM Product, Division");
  EXPECT_EQ(q.projection().size(), 6u);
}

TEST(ParseAndBindTest, UnknownRelationThrows) {
  const Catalog catalog = make_paper_catalog();
  EXPECT_THROW(parse_and_bind(catalog, "Q", 1.0, "SELECT * FROM Nope"),
               CatalogError);
  EXPECT_THROW(
      parse_and_bind(catalog, "Q", 1.0, "SELECT bogus FROM Product"),
      BindError);
}

TEST(ParseAndBindTest, PaperQueriesAllBind) {
  const PaperExample ex = make_paper_example();
  ASSERT_EQ(ex.queries.size(), 4u);
  EXPECT_EQ(ex.queries[0].name(), "Q1");
  EXPECT_DOUBLE_EQ(ex.queries[0].frequency(), 10.0);
  EXPECT_DOUBLE_EQ(ex.queries[1].frequency(), 0.5);
  EXPECT_DOUBLE_EQ(ex.queries[2].frequency(), 0.8);
  EXPECT_DOUBLE_EQ(ex.queries[3].frequency(), 5.0);
  EXPECT_EQ(ex.queries[2].relations().size(), 4u);
  EXPECT_EQ(ex.queries[2].joins().size(), 3u);
  EXPECT_TRUE(ex.queries[2].join_graph_connected());
}

}  // namespace
}  // namespace mvd
