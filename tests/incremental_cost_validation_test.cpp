// Validation of the incremental maintenance cost models against the
// executed refresh driver's measured block work.
//
// Two models are on trial. executed_refresh_estimate mirrors the
// executed driver (hash probes, frontier reuse, grouped applies) and is
// held to a ~2.5x band around measured blocks. incremental_delta_cost —
// the classic planning-era model — has a documented two-sided bias: it
// omits producing join full sides from the frontier (underestimating
// small batches) while its block-nested-loop probe term (delta.blocks ×
// other.blocks per join) grows with the delta, so it overtakes measured
// work as batches grow; the tests pin the direction of both effects
// rather than band them. Base catalogs are computed from the populated
// tables and interior (rows, blocks) annotations are overlaid with
// executed truth, so residual error isolates the models' structural
// assumptions (all-delta paths, deletes-everywhere stored rewrites,
// probe shape) from cardinality-estimation error — which is measured
// elsewhere (lint estimate-vs-executed rules).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/maintenance/incremental.hpp"
#include "src/maintenance/refresh.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

/// Measured vs modeled block work for one refresh round.
struct Validation {
  double executed = 0;  // ExecStats blocks from incremental_refresh
  double mirror = 0;    // executed_refresh_estimate
  double classic = 0;   // Σ incremental_delta_cost over updated bases
  std::size_t recomputed = 0;  // fallback count (mirror assumes zero)
};

struct Workload {
  WarehouseDesigner designer;
  DesignResult design;
  Database db;
  std::vector<std::string> update_relations;
};

Workload make_paper_workload() {
  // Truthful base statistics: catalog computed from the populated tables,
  // not the paper's nominal cardinalities.
  Database db = populate_paper_database(0.05, 23);
  DesignerOptions options;
  options.cost = paper_cost_config();
  WarehouseDesigner designer(catalog_from_database(db, 10.0), options);
  for (const QuerySpec& q : make_paper_example().queries) {
    designer.add_query(q);
  }
  DesignResult design = designer.design();
  return {std::move(designer), std::move(design), std::move(db),
          {"Order", "Division", "Product", "Customer"}};
}

Workload make_star_workload() {
  StarSchemaOptions schema;
  schema.dimensions = 3;
  schema.fact_rows = 5'000;
  schema.dimension_rows = 250;
  schema.categories = 8;
  Database db = populate_star_database(schema, 29);
  Catalog catalog = catalog_from_database(db, schema.blocking_factor);
  StarQueryOptions qopts;
  qopts.count = 6;
  qopts.max_dimensions = 2;
  qopts.aggregation_probability = 0.5;
  qopts.seed = 19;
  WarehouseDesigner designer(catalog);
  for (QuerySpec& q : generate_star_queries(catalog, schema, qopts)) {
    designer.add_query(std::move(q));
  }
  DesignResult design = designer.design();
  return {std::move(designer), std::move(design), std::move(db),
          {"Fact", "Dim0", "Dim1"}};
}

/// Replace every operation node's estimated (rows, blocks) annotation
/// with the executed truth, so model validation isolates the cost
/// models' structural assumptions from cardinality-estimation error —
/// the same philosophy as catalog_from_database for base stats.
void overlay_executed_cardinalities(MvppGraph& g, const Database& db) {
  MvppGraphMutator mut(g);
  const Executor exec(db, ExecMode::kRow, 1);
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    if (!g.node(id).is_operation()) continue;
    const Table t = exec.run(refresh_plan(g, id, {}));
    mut.node(id).rows = static_cast<double>(t.row_count());
    mut.node(id).blocks = t.blocks();
  }
  mut.mark_annotated(true);
}

/// Deploy, run one mixed update batch over every update relation at
/// `fraction`, refresh incrementally, and price the same round with both
/// models (base fractions taken from the *actual* compacted delta blocks,
/// so all three numbers describe the identical batch).
Validation run_round(Workload w, double fraction, std::uint64_t seed) {
  MvppGraph& g = w.design.candidates[w.design.mvpp_index].graph;
  MaterializedSet& m = w.design.selection.materialized;
  for (NodeId q : g.query_ids()) m.insert(g.node(q).children[0]);
  overlay_executed_cardinalities(g, w.db);
  w.designer.deploy(w.design, w.db);

  UpdateStreamOptions opts;
  opts.modify_fraction = fraction;
  opts.insert_fraction = fraction / 2;
  opts.delete_fraction = fraction / 2;
  Rng rng(seed);
  DeltaSet batch;
  for (const std::string& rel : w.update_relations) {
    apply_update_batch(w.db, rel, opts, rng, &batch);
  }

  Validation v;
  ExecStats stats;
  const RefreshReport report =
      incremental_refresh(g, m, w.db, batch, &stats, ExecMode::kRow, 1);
  v.executed = stats.blocks_read;
  v.recomputed = report.count(RefreshPath::kRecomputed);
  EXPECT_DOUBLE_EQ(report.total_blocks_read(), stats.blocks_read);

  std::map<NodeId, double> base_fractions;
  for (const auto& [rel, delta] : batch) {
    const NodeId b = g.find_by_name(rel);
    const double blocks = g.node(b).blocks;
    base_fractions[b] =
        blocks > 0 ? delta.compacted().blocks() / blocks : 0;
  }
  v.mirror = executed_refresh_estimate(g, m, base_fractions);
  for (NodeId view : m) {
    for (const auto& [b, f] : base_fractions) {
      v.classic += incremental_delta_cost(g, view, b, {f});
    }
  }
  return v;
}

constexpr double kTolerance = 2.5;  // mirror estimate band, either side

void expect_within_band(const Validation& v) {
  ASSERT_GT(v.executed, 0);
  ASSERT_GT(v.mirror, 0);
  EXPECT_LT(v.mirror / v.executed, kTolerance)
      << "mirror=" << v.mirror << " executed=" << v.executed;
  EXPECT_LT(v.executed / v.mirror, kTolerance)
      << "mirror=" << v.mirror << " executed=" << v.executed;
}

TEST(IncrementalCostValidationTest, PaperMirrorEstimateWithinBand) {
  // Figure 3 workload (Q1..Q4), 1% batch: the executed-mirror model must
  // land within kTolerance of measured blocks.
  expect_within_band(run_round(make_paper_workload(), 0.01, 41));
}

TEST(IncrementalCostValidationTest, PaperMirrorEstimateLargerBatch) {
  expect_within_band(run_round(make_paper_workload(), 0.10, 43));
}

TEST(IncrementalCostValidationTest, StarMirrorEstimateWithinBand) {
  expect_within_band(run_round(make_star_workload(), 0.01, 47));
}

TEST(IncrementalCostValidationTest, StarMirrorEstimateLargerBatch) {
  expect_within_band(run_round(make_star_workload(), 0.10, 53));
}

TEST(IncrementalCostValidationTest, ClassicModelBiasIsBatchSizeDependent) {
  // Documented two-sided bias of the classic planning model. It never
  // charges producing a join's full side from the frontier (the executed
  // driver must build it), so at small batches it UNDERestimates measured
  // work. Its block-nested-loop probe (delta.blocks × other.blocks) grows
  // with the delta where the executed hash probe reads each side once, so
  // its total grows strictly faster with batch size than measured work.
  // Which effect dominates a small batch depends on the workload's
  // full-side sizes: the star schema's cheap dimension sides leave the
  // omitted production cost dominant (classic under), while the paper
  // schema's large Order/Customer sides make the BNL probe dominant
  // (classic over). Both are deterministic under the fixed seeds.
  const Validation small = run_round(make_star_workload(), 0.01, 47);
  const Validation large = run_round(make_star_workload(), 0.20, 47);
  EXPECT_LT(small.classic, small.executed);
  EXPECT_GT(large.classic / small.classic, large.executed / small.executed);
  const Validation psmall = run_round(make_paper_workload(), 0.01, 41);
  const Validation plarge = run_round(make_paper_workload(), 0.20, 41);
  EXPECT_GT(psmall.classic, psmall.executed);
  EXPECT_GT(plarge.classic / psmall.classic,
            plarge.executed / psmall.executed);
}

TEST(IncrementalCostValidationTest, ModelsTrackBatchSizeMonotonically) {
  // Both models and the measurement must agree on the direction: bigger
  // batches cost more.
  const Validation small = run_round(make_star_workload(), 0.01, 59);
  const Validation large = run_round(make_star_workload(), 0.20, 59);
  EXPECT_GT(large.executed, small.executed);
  EXPECT_GT(large.mirror, small.mirror);
  EXPECT_GT(large.classic, small.classic);
}

}  // namespace
}  // namespace mvd
