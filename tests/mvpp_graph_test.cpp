// Tests for src/mvpp/graph: construction, dedup-by-signature (common
// subexpression merging), ancestry queries, annotation, rendering.
#include <gtest/gtest.h>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/mvpp/graph.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class MvppGraphTest : public ::testing::Test {
 protected:
  MvppGraphTest()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()) {}

  Schema schema(const std::string& rel) {
    return make_scan(catalog_, rel)->output_schema();
  }

  Catalog catalog_;
  CostModel model_;
};

TEST_F(MvppGraphTest, BaseNodesDeduplicate) {
  MvppGraph g;
  const NodeId a = g.add_base("Product", schema("Product"), 1.0);
  const NodeId b = g.add_base("Product", schema("Product"), 1.0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.size(), 1u);
}

TEST_F(MvppGraphTest, CommonSubexpressionsMerge) {
  MvppGraph g;
  const NodeId div = g.add_base("Division", schema("Division"), 1.0);
  const NodeId s1 = g.add_select(div, eq(col("Division.city"), lit_str("LA")));
  // Same predicate written with the literal first: still one node.
  const NodeId s2 = g.add_select(
      div, eq(lit_str("LA"), col("Division.city")));
  EXPECT_EQ(s1, s2);
  // A different predicate is a different node.
  const NodeId s3 = g.add_select(div, eq(col("Division.city"), lit_str("SF")));
  EXPECT_NE(s1, s3);
}

TEST_F(MvppGraphTest, JoinDedupIsCommutative) {
  MvppGraph g;
  const NodeId p = g.add_base("Product", schema("Product"), 1.0);
  const NodeId d = g.add_base("Division", schema("Division"), 1.0);
  const ExprPtr pred = eq(col("Product.Did"), col("Division.Did"));
  const NodeId j1 = g.add_join(p, d, pred);
  const NodeId j2 = g.add_join(d, p, eq(col("Division.Did"), col("Product.Did")));
  EXPECT_EQ(j1, j2);
}

TEST_F(MvppGraphTest, ProjectDedupIsOrderInsensitive) {
  MvppGraph g;
  const NodeId p = g.add_base("Product", schema("Product"), 1.0);
  const NodeId a = g.add_project(p, {"Product.name", "Product.Did"});
  const NodeId b = g.add_project(p, {"Product.Did", "Product.name"});
  EXPECT_EQ(a, b);
}

TEST_F(MvppGraphTest, QueriesNeverMerge) {
  MvppGraph g;
  const NodeId p = g.add_base("Product", schema("Product"), 1.0);
  const NodeId pr = g.add_project(p, {"Product.name"});
  g.add_query("Q1", 1.0, pr);
  g.add_query("Q2", 2.0, pr);
  EXPECT_EQ(g.query_ids().size(), 2u);
  EXPECT_THROW(g.add_query("Q1", 1.0, pr), PlanError);
}

TEST_F(MvppGraphTest, AncestryAndReachability) {
  const MvppGraph g = build_figure3_mvpp(model_);
  const NodeId tmp2 = g.find_by_name("tmp2");
  const NodeId tmp4 = g.find_by_name("tmp4");
  ASSERT_GE(tmp2, 0);
  ASSERT_GE(tmp4, 0);

  // Ov: tmp2 serves Q1, Q2, Q3; tmp4 serves Q3, Q4 (the paper's sets).
  auto names_of = [&](const std::vector<NodeId>& ids) {
    std::set<std::string> names;
    for (NodeId id : ids) names.insert(g.node(id).name);
    return names;
  };
  EXPECT_EQ(names_of(g.queries_using(tmp2)),
            (std::set<std::string>{"Q1", "Q2", "Q3"}));
  EXPECT_EQ(names_of(g.queries_using(tmp4)),
            (std::set<std::string>{"Q3", "Q4"}));

  // Iv: tmp4 is built from Order and Customer.
  EXPECT_EQ(names_of(g.bases_under(tmp4)),
            (std::set<std::string>{"Order", "Customer"}));
  EXPECT_EQ(names_of(g.bases_under(tmp2)),
            (std::set<std::string>{"Product", "Division"}));

  // Descendants of tmp2 include tmp1 and both bases.
  const std::set<NodeId> desc = g.descendants(tmp2);
  EXPECT_TRUE(desc.contains(g.find_by_name("tmp1")));
  // Ancestors of tmp1 include tmp2, tmp3, tmp6 and the results.
  const std::set<NodeId> anc = g.ancestors(g.find_by_name("tmp1"));
  EXPECT_TRUE(anc.contains(tmp2));
  EXPECT_TRUE(anc.contains(g.find_by_name("tmp6")));
}

TEST_F(MvppGraphTest, Figure3HasElevenOperations) {
  const MvppGraph g = build_figure3_mvpp(model_);
  EXPECT_EQ(g.operation_ids().size(), 11u);  // tmp1..7 + result1..4
  EXPECT_EQ(g.base_ids().size(), 5u);
  EXPECT_EQ(g.query_ids().size(), 4u);
  g.validate();
}

TEST_F(MvppGraphTest, AnnotationFillsCostsAndSizes) {
  const MvppGraph g = build_figure3_mvpp(model_);
  ASSERT_TRUE(g.annotated());
  const MvppNode& tmp1 = g.node(g.find_by_name("tmp1"));
  EXPECT_DOUBLE_EQ(tmp1.rows, 100);
  EXPECT_DOUBLE_EQ(tmp1.full_cost, 250);  // the paper's 0.25k
  const MvppNode& tmp4 = g.node(g.find_by_name("tmp4"));
  EXPECT_DOUBLE_EQ(tmp4.rows, 25'000);    // Table 1's pinned size
  EXPECT_DOUBLE_EQ(tmp4.blocks, 5'000);
  EXPECT_NEAR(tmp4.full_cost, 12.03e6, 0.05e6);  // paper: 12.03m
  // Leaves have zero cost by definition.
  for (NodeId b : g.base_ids()) {
    EXPECT_DOUBLE_EQ(g.node(b).full_cost, 0);
    EXPECT_DOUBLE_EQ(g.node(b).op_cost, 0);
  }
  // Query roots inherit their child's cost.
  for (NodeId q : g.query_ids()) {
    EXPECT_DOUBLE_EQ(g.node(q).full_cost,
                     g.node(g.node(q).children[0]).full_cost);
  }
}

TEST_F(MvppGraphTest, AutomaticTmpNamesAreUniqueAndTopological) {
  MvppGraph g;
  const NodeId div = g.add_base("Division", schema("Division"), 1.0);
  const NodeId s = g.add_select(div, eq(col("Division.city"), lit_str("LA")));
  const NodeId pr = g.add_project(s, {"Division.name"});
  g.add_query("Q", 1.0, pr);
  g.annotate(model_);
  EXPECT_EQ(g.node(s).name, "tmp1");
  EXPECT_EQ(g.node(pr).name, "tmp2");
}

TEST_F(MvppGraphTest, SetNameValidation) {
  MvppGraph g;
  const NodeId div = g.add_base("Division", schema("Division"), 1.0);
  const NodeId s = g.add_select(div, eq(col("Division.city"), lit_str("LA")));
  g.set_name(s, "mine");
  EXPECT_EQ(g.find_by_name("mine"), s);
  EXPECT_THROW(g.set_name(div, "x"), PlanError);  // bases not renamable
  EXPECT_THROW(g.set_name(s, ""), PlanError);
  const NodeId s2 = g.add_select(div, eq(col("Division.city"), lit_str("SF")));
  EXPECT_THROW(g.set_name(s2, "mine"), PlanError);
  g.set_name(s, "mine");  // renaming to its own name is fine
}

TEST_F(MvppGraphTest, RenderingsMentionEveryNode) {
  const MvppGraph g = build_figure3_mvpp(model_);
  const std::string text = g.to_text();
  const std::string dot = g.to_dot();
  for (const MvppNode& n : g.nodes()) {
    EXPECT_NE(text.find(n.name), std::string::npos) << n.name;
  }
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  // One dot edge per parent-child arc.
  std::size_t arcs = 0;
  for (const MvppNode& n : g.nodes()) arcs += n.children.size();
  std::size_t count = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, arcs);
}

TEST_F(MvppGraphTest, NodeLookupBoundsChecked) {
  MvppGraph g;
  EXPECT_THROW(g.node(0), AssertionError);
  EXPECT_THROW(g.node(-1), AssertionError);
  EXPECT_EQ(g.find_by_name("nope"), -1);
}

}  // namespace
}  // namespace mvd
