// Tests for src/algebra/expr: construction, normalization, structural
// equality, analysis helpers, evaluation.
#include <gtest/gtest.h>

#include "src/algebra/eval.hpp"
#include "src/algebra/expr.hpp"
#include "src/common/error.hpp"

namespace mvd {
namespace {

TEST(ExprTest, ComparisonToString) {
  EXPECT_EQ(eq(col("a"), lit_i64(1))->to_string(), "(a = 1)");
  EXPECT_EQ(gt(col("a"), lit_str("x"))->to_string(), "(a > 'x')");
  EXPECT_EQ(cmp(CompareOp::kNe, col("a"), col("b"))->to_string(),
            "(a <> b)");
}

TEST(ExprTest, BoolOpsToString) {
  const ExprPtr e = conj({eq(col("a"), lit_i64(1)), gt(col("b"), lit_i64(2))});
  EXPECT_EQ(e->to_string(), "((a = 1) AND (b > 2))");
  EXPECT_EQ(neg(eq(col("a"), lit_i64(1)))->to_string(), "(NOT (a = 1))");
}

TEST(ExprTest, ConjEdgeCases) {
  EXPECT_EQ(conj({}), nullptr);
  const ExprPtr single = eq(col("a"), lit_i64(1));
  EXPECT_EQ(conj({single}), single);
  EXPECT_EQ(disj({}), nullptr);
  EXPECT_EQ(disj({single}), single);
}

TEST(ExprTest, CompareOpHelpers) {
  EXPECT_EQ(flip(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(flip(CompareOp::kLe), CompareOp::kGe);
  EXPECT_EQ(flip(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(negate(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(negate(CompareOp::kEq), CompareOp::kNe);
}

TEST(NormalizeTest, FlattensAndSortsConjunctions) {
  const ExprPtr nested =
      conj({conj({gt(col("b"), lit_i64(2)), eq(col("a"), lit_i64(1))}),
            eq(col("c"), lit_i64(3))});
  EXPECT_EQ(normalize(nested)->to_string(),
            "((a = 1) AND (b > 2) AND (c = 3))");
}

TEST(NormalizeTest, DeduplicatesOperands) {
  const ExprPtr e = conj({eq(col("a"), lit_i64(1)), eq(col("a"), lit_i64(1))});
  EXPECT_EQ(normalize(e)->to_string(), "(a = 1)");
}

TEST(NormalizeTest, OrientsLiteralFirstComparisons) {
  EXPECT_EQ(normalize(lt(lit_i64(5), col("a")))->to_string(), "(a > 5)");
  EXPECT_EQ(normalize(eq(lit_str("LA"), col("city")))->to_string(),
            "(city = 'LA')");
}

TEST(NormalizeTest, OrdersColumnColumnComparisons) {
  EXPECT_EQ(normalize(eq(col("z"), col("a")))->to_string(), "(a = z)");
  EXPECT_EQ(normalize(lt(col("z"), col("a")))->to_string(), "(a > z)");
}

TEST(NormalizeTest, PushesNotIntoComparisons) {
  EXPECT_EQ(normalize(neg(lt(col("a"), lit_i64(3))))->to_string(), "(a >= 3)");
  EXPECT_EQ(normalize(neg(neg(eq(col("a"), lit_i64(1)))))->to_string(),
            "(a = 1)");
}

TEST(NormalizeTest, Idempotent) {
  const ExprPtr e = disj({conj({neg(lt(col("b"), col("a"))),
                                eq(lit_i64(2), col("c"))}),
                          gt(col("d"), lit_i64(0))});
  const ExprPtr once = normalize(e);
  EXPECT_EQ(once->to_string(), normalize(once)->to_string());
}

TEST(ExprEqualTest, ModuloCommutativityAndOrder) {
  const ExprPtr a = conj({eq(col("x"), lit_i64(1)), gt(col("y"), lit_i64(2))});
  const ExprPtr b = conj({gt(col("y"), lit_i64(2)), eq(col("x"), lit_i64(1))});
  EXPECT_TRUE(expr_equal(a, b));
  EXPECT_FALSE(expr_equal(a, eq(col("x"), lit_i64(1))));
  EXPECT_TRUE(expr_equal(nullptr, nullptr));
  EXPECT_FALSE(expr_equal(a, nullptr));
}

TEST(AnalysisTest, ColumnsOf) {
  const ExprPtr e = conj({eq(col("R.a"), col("S.b")), gt(col("R.c"), lit_i64(1))});
  const auto cols = columns_of(e);
  EXPECT_EQ(cols, (std::set<std::string>{"R.a", "S.b", "R.c"}));
  EXPECT_TRUE(columns_of(nullptr).empty());
}

TEST(AnalysisTest, ConjunctsOfUnfoldsAndOnly) {
  const ExprPtr e = conj({eq(col("a"), lit_i64(1)),
                          disj({gt(col("b"), lit_i64(2)),
                                gt(col("c"), lit_i64(3))})});
  const auto cs = conjuncts_of(e);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0]->kind(), ExprKind::kComparison);
  EXPECT_EQ(cs[1]->kind(), ExprKind::kOr);
  EXPECT_TRUE(conjuncts_of(nullptr).empty());
}

TEST(AnalysisTest, AsColumnEquality) {
  auto pair = as_column_equality(eq(col("R.a"), col("S.b")));
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->left, "R.a");
  EXPECT_EQ(pair->right, "S.b");
  EXPECT_FALSE(as_column_equality(eq(col("R.a"), lit_i64(1))).has_value());
  EXPECT_FALSE(as_column_equality(lt(col("R.a"), col("S.b"))).has_value());
  EXPECT_FALSE(as_column_equality(nullptr).has_value());
}

TEST(AnalysisTest, RewriteColumns) {
  const ExprPtr e = conj({eq(col("a"), lit_i64(1)), gt(col("b"), col("a"))});
  const ExprPtr r = rewrite_columns(
      e, [](const std::string& n) { return "T." + n; });
  EXPECT_EQ(normalize(r)->to_string(),
            normalize(conj({eq(col("T.a"), lit_i64(1)),
                            gt(col("T.b"), col("T.a"))}))->to_string());
}

Schema eval_schema() {
  return Schema({{"a", ValueType::kInt64, "T"},
                 {"b", ValueType::kString, "T"},
                 {"c", ValueType::kDouble, "T"}});
}

Tuple row(std::int64_t a, std::string b, double c) {
  return {Value::int64(a), Value::string(std::move(b)), Value::real(c)};
}

TEST(EvalTest, ComparisonOperators) {
  const Schema s = eval_schema();
  EXPECT_TRUE(CompiledExpr(eq(col("a"), lit_i64(1)), s).matches(row(1, "", 0)));
  EXPECT_FALSE(CompiledExpr(eq(col("a"), lit_i64(1)), s).matches(row(2, "", 0)));
  EXPECT_TRUE(CompiledExpr(lt(col("a"), lit_i64(5)), s).matches(row(4, "", 0)));
  EXPECT_TRUE(CompiledExpr(cmp(CompareOp::kGe, col("c"), lit_real(2.5)), s)
                  .matches(row(0, "", 2.5)));
  EXPECT_TRUE(CompiledExpr(cmp(CompareOp::kNe, col("b"), lit_str("x")), s)
                  .matches(row(0, "y", 0)));
}

TEST(EvalTest, BoolOpsShortCircuitSemantics) {
  const Schema s = eval_schema();
  const ExprPtr both = conj({gt(col("a"), lit_i64(0)), lt(col("a"), lit_i64(10))});
  EXPECT_TRUE(CompiledExpr(both, s).matches(row(5, "", 0)));
  EXPECT_FALSE(CompiledExpr(both, s).matches(row(11, "", 0)));
  const ExprPtr either = disj({eq(col("b"), lit_str("x")), gt(col("a"), lit_i64(3))});
  EXPECT_TRUE(CompiledExpr(either, s).matches(row(0, "x", 0)));
  EXPECT_TRUE(CompiledExpr(either, s).matches(row(4, "y", 0)));
  EXPECT_FALSE(CompiledExpr(either, s).matches(row(0, "y", 0)));
  EXPECT_TRUE(CompiledExpr(neg(eq(col("a"), lit_i64(1))), s).matches(row(2, "", 0)));
}

TEST(EvalTest, MixedNumericComparison) {
  const Schema s = eval_schema();
  // int column vs double literal.
  EXPECT_TRUE(CompiledExpr(gt(col("a"), lit_real(0.5)), s).matches(row(1, "", 0)));
}

TEST(EvalTest, QualifiedNamesResolve) {
  const Schema s = eval_schema();
  EXPECT_TRUE(CompiledExpr(eq(col("T.a"), lit_i64(7)), s).matches(row(7, "", 0)));
}

TEST(EvalTest, UnknownColumnThrowsAtCompile) {
  EXPECT_THROW(CompiledExpr(eq(col("zzz"), lit_i64(1)), eval_schema()),
               BindError);
}

TEST(EvalTest, NonBoolPredicateThrowsAtMatch) {
  CompiledExpr e(col("a"), eval_schema());
  EXPECT_THROW(e.matches(row(1, "", 0)), ExecError);
}

TEST(EvalTest, EvaluateReturnsValue) {
  CompiledExpr e(col("b"), eval_schema());
  EXPECT_EQ(e.evaluate(row(0, "hello", 0)).as_string(), "hello");
  CompiledExpr l(lit_i64(9), eval_schema());
  EXPECT_EQ(l.evaluate(row(0, "", 0)).as_int64(), 9);
}

}  // namespace
}  // namespace mvd
