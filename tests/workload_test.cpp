// Tests for src/workload: star/chain generators, paper fixtures, data
// population consistency with statistics.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/exec/executor.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

TEST(StarCatalogTest, ShapesAndStats) {
  StarSchemaOptions options;
  options.dimensions = 3;
  const Catalog c = make_star_catalog(options);
  EXPECT_EQ(c.relation_names().size(), 4u);  // 3 dims + fact
  EXPECT_TRUE(c.has_relation("Fact"));
  EXPECT_TRUE(c.has_relation("Dim2"));
  EXPECT_DOUBLE_EQ(c.stats("Fact").rows, 50'000);
  EXPECT_DOUBLE_EQ(*c.stats("Dim0").column("category")->distinct, 20);
  EXPECT_EQ(c.schema("Fact").size(), 3u + 3u);  // fid + d0..d2 + measure + amount
}

TEST(StarCatalogTest, RejectsZeroDimensions) {
  StarSchemaOptions options;
  options.dimensions = 0;
  EXPECT_THROW(make_star_catalog(options), CatalogError);
}

TEST(StarQueriesTest, DeterministicAndBounded) {
  StarSchemaOptions schema;
  const Catalog c = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = 10;
  const auto a = generate_star_queries(c, schema, qopts);
  const auto b = generate_star_queries(c, schema, qopts);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_string(), b[i].to_string());
  }
  for (const QuerySpec& q : a) {
    EXPECT_GE(q.relations().size(), 2u);  // fact + >= 1 dim
    EXPECT_LE(q.relations().size(),
              1u + qopts.max_dimensions);
    EXPECT_TRUE(q.join_graph_connected());
    EXPECT_GT(q.frequency(), 0);
  }
}

TEST(StarQueriesTest, FrequenciesFollowZipf) {
  StarSchemaOptions schema;
  const Catalog c = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = 6;
  qopts.top_frequency = 12.0;
  const auto queries = generate_star_queries(c, schema, qopts);
  EXPECT_DOUBLE_EQ(queries[0].frequency(), 12.0);
  for (std::size_t i = 1; i < queries.size(); ++i) {
    EXPECT_LE(queries[i].frequency(), queries[i - 1].frequency() + 1e-9);
  }
}

TEST(StarQueriesTest, InvalidSpansRejected) {
  StarSchemaOptions schema;
  const Catalog c = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.min_dimensions = 0;
  EXPECT_THROW(generate_star_queries(c, schema, qopts), PlanError);
  qopts.min_dimensions = 3;
  qopts.max_dimensions = 2;
  EXPECT_THROW(generate_star_queries(c, schema, qopts), PlanError);
  qopts.max_dimensions = 99;
  EXPECT_THROW(generate_star_queries(c, schema, qopts), PlanError);
}

TEST(StarPopulationTest, MatchesCatalogShapes) {
  StarSchemaOptions options;
  options.dimensions = 2;
  options.fact_rows = 1'000;
  options.dimension_rows = 80;
  const Database db = populate_star_database(options, 7);
  EXPECT_EQ(db.table("Fact").row_count(), 1'000u);
  EXPECT_EQ(db.table("Dim1").row_count(), 80u);
  // Foreign keys land within the dimension.
  for (const Tuple& t : db.table("Fact").rows()) {
    EXPECT_GE(t[1].as_int64(), 0);
    EXPECT_LT(t[1].as_int64(), 80);
  }
}

TEST(StarPopulationTest, CatalogFromDatabaseUsesTruthfulStats) {
  StarSchemaOptions options;
  options.dimensions = 2;
  options.fact_rows = 1'000;
  options.dimension_rows = 80;
  options.categories = 4;
  const Database db = populate_star_database(options, 7);
  const Catalog c = catalog_from_database(db, 10.0);
  EXPECT_DOUBLE_EQ(c.stats("Fact").rows, 1'000);
  EXPECT_DOUBLE_EQ(*c.stats("Dim0").column("category")->distinct, 4);
  EXPECT_DOUBLE_EQ(*c.stats("Fact").column("measure")->min_value, 1);
}

TEST(ChainTest, CatalogAndQueries) {
  ChainSchemaOptions schema;
  schema.length = 6;
  const Catalog c = make_chain_catalog(schema);
  EXPECT_EQ(c.relation_names().size(), 6u);
  EXPECT_TRUE(c.has_relation("R5"));

  ChainQueryOptions qopts;
  qopts.count = 5;
  const auto queries = generate_chain_queries(c, schema, qopts);
  ASSERT_EQ(queries.size(), 5u);
  for (const QuerySpec& q : queries) {
    EXPECT_GE(q.relations().size(), 2u);
    EXPECT_TRUE(q.join_graph_connected());
    EXPECT_EQ(q.joins().size(), q.relations().size() - 1);
  }
}

TEST(ChainTest, Validation) {
  ChainSchemaOptions schema;
  schema.length = 1;
  EXPECT_THROW(make_chain_catalog(schema), CatalogError);
  schema.length = 4;
  const Catalog c = make_chain_catalog(schema);
  ChainQueryOptions qopts;
  qopts.max_span = 9;
  EXPECT_THROW(generate_chain_queries(c, schema, qopts), PlanError);
}

TEST(PaperDataTest, PopulationMatchesStatisticsShape) {
  const Database db = populate_paper_database(0.05, 11);
  const Catalog reference = make_paper_catalog();
  for (const std::string& rel : reference.relation_names()) {
    ASSERT_TRUE(db.has_table(rel)) << rel;
    EXPECT_NEAR(static_cast<double>(db.table(rel).row_count()),
                reference.stats(rel).rows * 0.05, 1.0)
        << rel;
  }
  // The executed selectivity of city='LA' sits near the catalog's 2%.
  const Catalog truthful = catalog_from_database(db, 10.0);
  const Executor exec(db);
  const Table la = exec.run(make_select(
      make_scan(truthful, "Division"), eq(col("city"), lit_str("LA"))));
  const double fraction = static_cast<double>(la.row_count()) /
                          static_cast<double>(db.table("Division").row_count());
  EXPECT_NEAR(fraction, 0.02, 0.03);
  // quantity > 100 close to one half.
  const Table big = exec.run(make_select(make_scan(truthful, "Order"),
                                         gt(col("quantity"), lit_i64(100))));
  EXPECT_NEAR(static_cast<double>(big.row_count()) /
                  static_cast<double>(db.table("Order").row_count()),
              0.5, 0.05);
}

TEST(PaperDataTest, ForeignKeysResolve) {
  const Database db = populate_paper_database(0.02, 13);
  const std::size_t divisions = db.table("Division").row_count();
  for (const Tuple& t : db.table("Product").rows()) {
    EXPECT_GE(t[2].as_int64(), 0);
    EXPECT_LT(t[2].as_int64(), static_cast<std::int64_t>(divisions));
  }
}

TEST(PushdownVariantTest, QueriesDifferOnlyInSelections) {
  const Catalog c = make_paper_catalog();
  const auto variant = make_pushdown_variant_queries(c);
  const auto original = make_paper_example().queries;
  ASSERT_EQ(variant.size(), original.size());
  for (std::size_t i = 0; i < variant.size(); ++i) {
    EXPECT_EQ(variant[i].relations(), original[i].relations());
    EXPECT_EQ(variant[i].joins().size(), original[i].joins().size());
    EXPECT_DOUBLE_EQ(variant[i].frequency(), original[i].frequency());
  }
  // Q2's selection is on Division.name in the variant.
  EXPECT_EQ(variant[1].selections_on("Division").size(), 1u);
  EXPECT_NE(variant[1].selections_on("Division")[0]->to_string()
                .find("Division.name"),
            std::string::npos);
}

}  // namespace
}  // namespace mvd
