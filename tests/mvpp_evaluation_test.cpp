// Tests for src/mvpp/evaluation: the Section 4.1 cost model under chosen
// materialized sets, maintenance policies, and weights.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/mvpp/evaluation.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class MvppEvaluationTest : public ::testing::Test {
 protected:
  MvppEvaluationTest()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(model_)),
        eval_(graph_) {}

  NodeId id(const std::string& name) const {
    const NodeId n = graph_.find_by_name(name);
    EXPECT_GE(n, 0) << name;
    return n;
  }
  MaterializedSet set(std::initializer_list<const char*> names) const {
    MaterializedSet m;
    for (const char* n : names) m.insert(id(n));
    return m;
  }

  Catalog catalog_;
  CostModel model_;
  MvppGraph graph_;
  MvppEvaluator eval_;
};

TEST_F(MvppEvaluationTest, ProduceCostEqualsFullCostWhenNothingStored) {
  for (NodeId v : graph_.operation_ids()) {
    EXPECT_DOUBLE_EQ(eval_.produce_cost(v, {}), graph_.node(v).full_cost)
        << graph_.node(v).name;
  }
}

TEST_F(MvppEvaluationTest, MaterializedChildCutsRecomputation) {
  // With tmp4 stored, tmp7 costs only its own selection scan over tmp4.
  const MaterializedSet m = set({"tmp4"});
  const MvppNode& tmp7 = graph_.node(id("tmp7"));
  EXPECT_DOUBLE_EQ(eval_.produce_cost(id("tmp7"), m), tmp7.op_cost);
  EXPECT_LT(tmp7.op_cost, tmp7.full_cost);
}

TEST_F(MvppEvaluationTest, ProduceCostIgnoresOwnMembership) {
  // produce_cost(v) with v in M still recomputes v (refresh semantics).
  const MaterializedSet m = set({"tmp4"});
  EXPECT_DOUBLE_EQ(eval_.produce_cost(id("tmp4"), m),
                   graph_.node(id("tmp4")).full_cost);
}

TEST_F(MvppEvaluationTest, AnswerCostReadsStoredResult) {
  const NodeId q4 = graph_.find_by_name("Q4");
  const MaterializedSet m = set({"result4"});
  EXPECT_DOUBLE_EQ(eval_.answer_cost(q4, m),
                   graph_.node(id("result4")).blocks);
  // Without it, the full derivation is paid.
  EXPECT_DOUBLE_EQ(eval_.answer_cost(q4, {}),
                   graph_.node(id("result4")).full_cost);
}

TEST_F(MvppEvaluationTest, QueryProcessingCostWeightsByFrequency) {
  // All-virtual: Σ fq · Ca(result_i).
  double expected = 0;
  for (NodeId q : graph_.query_ids()) {
    expected += graph_.node(q).frequency *
                graph_.node(graph_.node(q).children[0]).full_cost;
  }
  EXPECT_DOUBLE_EQ(eval_.query_processing_cost({}), expected);
}

TEST_F(MvppEvaluationTest, EmptySetHasZeroMaintenance) {
  EXPECT_DOUBLE_EQ(eval_.total_maintenance_cost({}), 0);
  const MvppCosts c = eval_.evaluate({});
  EXPECT_DOUBLE_EQ(c.maintenance, 0);
  EXPECT_GT(c.query_processing, 0);
  EXPECT_DOUBLE_EQ(c.total(), c.query_processing);
}

TEST_F(MvppEvaluationTest, BatchUpdateFactorIsMaxOfBaseFrequencies) {
  // All fu = 1 in the fixture.
  EXPECT_DOUBLE_EQ(eval_.update_factor(id("tmp4")), 1.0);
  // Per-update mode sums over the involved bases.
  const MvppEvaluator per_update(
      graph_, MaintenancePolicy{MaintenancePolicy::Mode::kPerUpdate, true});
  EXPECT_DOUBLE_EQ(per_update.update_factor(id("tmp4")), 2.0);
  EXPECT_DOUBLE_EQ(per_update.update_factor(id("tmp6")), 4.0);
}

TEST_F(MvppEvaluationTest, MaintenanceReusesStoredDescendants) {
  // Maintaining result4 on top of stored tmp4 costs far less than from
  // scratch — the reading of Table 2 that reconciles its rows.
  const MaterializedSet both = set({"tmp4", "result4"});
  const double with_reuse = eval_.maintenance_cost(id("result4"), both);
  const MvppEvaluator no_reuse(
      graph_,
      MaintenancePolicy{MaintenancePolicy::Mode::kBatchRecompute, false});
  const double without = no_reuse.maintenance_cost(id("result4"), both);
  EXPECT_LT(with_reuse, without / 100);
  EXPECT_DOUBLE_EQ(without, graph_.node(id("result4")).full_cost);
}

TEST_F(MvppEvaluationTest, Table2ShapeInvariants) {
  const double none = eval_.total_cost({});
  const double best = eval_.total_cost(set({"tmp2", "tmp4"}));
  const MvppCosts all_queries =
      eval_.evaluate(set({"result1", "result2", "result3", "result4"}));
  // {tmp2, tmp4} wins against both extremes (the paper's Table 2 shape).
  EXPECT_LT(best, none);
  EXPECT_LT(best, all_queries.total());
  // Materializing every query result minimizes query cost.
  EXPECT_LT(all_queries.query_processing, eval_.evaluate({}).query_processing);
  EXPECT_LT(all_queries.query_processing,
            eval_.evaluate(set({"tmp2", "tmp4"})).query_processing);
}

TEST_F(MvppEvaluationTest, MonotoneQueryCost) {
  // Adding a view never increases query processing cost.
  const MaterializedSet smaller = set({"tmp2"});
  const MaterializedSet larger = set({"tmp2", "tmp4"});
  EXPECT_LE(eval_.query_processing_cost(larger),
            eval_.query_processing_cost(smaller) + 1e-9);
  EXPECT_LE(eval_.query_processing_cost(smaller),
            eval_.query_processing_cost({}) + 1e-9);
}

TEST_F(MvppEvaluationTest, WeightMatchesPaperFormula) {
  // w(tmp4) = (fq3 + fq4) * Ca - 1 * Ca = 4.8 * Ca.
  const double ca = graph_.node(id("tmp4")).full_cost;
  EXPECT_NEAR(eval_.weight(id("tmp4")), 4.8 * ca, 1e-6);
  // w(tmp2) = (10 + 0.5 + 0.8 - 1) * Ca(tmp2).
  EXPECT_NEAR(eval_.weight(id("tmp2")),
              10.3 * graph_.node(id("tmp2")).full_cost, 1e-6);
}

TEST_F(MvppEvaluationTest, NonOperationNodesRejected) {
  MaterializedSet bad{graph_.base_ids().front()};
  EXPECT_THROW(eval_.evaluate(bad), PlanError);
  MaterializedSet query_root{graph_.query_ids().front()};
  EXPECT_THROW(eval_.evaluate(query_root), PlanError);
}

TEST_F(MvppEvaluationTest, IndexedStoredViewCheapensJoinProbes) {
  // tmp6 = tmp2 |x| tmp5; with tmp5 stored + indexed, the join runs as an
  // index nested loop probing once per tmp2 row.
  const IndexPolicy index{true, 1.2};
  const MvppEvaluator indexed(graph_, {}, index);
  const MaterializedSet m = set({"tmp5"});
  const NodeId tmp6 = id("tmp6");
  EXPECT_LT(indexed.produce_cost(tmp6, m), eval_.produce_cost(tmp6, m));
  // Expected: tmp2 production + tmp2 blocks + tmp2 rows * probe cost.
  const MvppNode& tmp2 = graph_.node(id("tmp2"));
  EXPECT_DOUBLE_EQ(indexed.produce_cost(tmp6, m),
                   tmp2.full_cost + tmp2.blocks + tmp2.rows * 1.2);
}

TEST_F(MvppEvaluationTest, IndexedEqualitySelectReadsMatchingBlocks) {
  // Build a tiny graph: equality select over a stored join view.
  MvppGraph g;
  const Schema os = make_scan(catalog_, "Order")->output_schema();
  const Schema cs = make_scan(catalog_, "Customer")->output_schema();
  const NodeId order = g.add_base("Order", os, 1.0);
  const NodeId cust = g.add_base("Customer", cs, 1.0);
  const NodeId join =
      g.add_join(order, cust, eq(col("Order.Cid"), col("Customer.Cid")));
  const NodeId sel =
      g.add_select(join, eq(col("Customer.city"), lit_str("LA")));
  const NodeId proj = g.add_project(sel, {"Order.date"});
  g.add_query("Q", 1.0, proj);
  g.annotate(model_);

  const MvppEvaluator plain(g);
  const MvppEvaluator indexed(g, {}, IndexPolicy{true, 1.2});
  const MaterializedSet m{join};
  // Indexed: fetch only the ~1% matching blocks instead of scanning the
  // stored 5k-block view.
  EXPECT_LT(indexed.produce_cost(sel, m), plain.produce_cost(sel, m) / 10);
  // Range selections cannot use the equality index path.
  EXPECT_DOUBLE_EQ(indexed.produce_cost(proj, m) - indexed.produce_cost(sel, m),
                   g.node(sel).blocks);  // the project still scans
}

TEST_F(MvppEvaluationTest, IndexPolicyDisabledMatchesPlainEvaluation) {
  const MvppEvaluator indexed_off(graph_, {}, IndexPolicy{false, 1.2});
  for (NodeId v : graph_.operation_ids()) {
    EXPECT_DOUBLE_EQ(indexed_off.produce_cost(v, set({"tmp2", "tmp4"})),
                     eval_.produce_cost(v, set({"tmp2", "tmp4"})));
  }
}

TEST_F(MvppEvaluationTest, IndexingOnlyHelpsNeverHurts) {
  const MvppEvaluator indexed(graph_, {}, IndexPolicy{true, 1.2});
  for (NodeId v : graph_.operation_ids()) {
    for (const MaterializedSet& m :
         {set({"tmp4"}), set({"tmp2", "tmp4"}), set({"tmp1", "tmp5"})}) {
      EXPECT_LE(indexed.produce_cost(v, m), eval_.produce_cost(v, m) + 1e-9)
          << graph_.node(v).name;
    }
  }
}

TEST_F(MvppEvaluationTest, ToStringSortsNames) {
  EXPECT_EQ(to_string(graph_, set({"tmp4", "tmp2"})), "{tmp2, tmp4}");
  EXPECT_EQ(to_string(graph_, {}), "{}");
}

TEST_F(MvppEvaluationTest, UpdateFrequencyScalesMaintenance) {
  // Doubling Order's fu doubles the (batch) maintenance of tmp4.
  Catalog catalog = make_paper_catalog();
  catalog.set_update_frequency("Order", 2.0);
  const CostModel model(catalog, paper_cost_config());
  MvppGraph g2;
  const Schema order_schema = make_scan(catalog, "Order")->output_schema();
  const Schema cust_schema = make_scan(catalog, "Customer")->output_schema();
  const NodeId order = g2.add_base("Order", order_schema, 2.0);
  const NodeId cust = g2.add_base("Customer", cust_schema, 1.0);
  const NodeId join =
      g2.add_join(order, cust, eq(col("Order.Cid"), col("Customer.Cid")));
  const NodeId proj = g2.add_project(join, {"Customer.city"});
  g2.add_query("Q", 1.0, proj);
  g2.annotate(model);
  const MvppEvaluator e2(g2);
  EXPECT_DOUBLE_EQ(e2.update_factor(join), 2.0);  // max(2, 1)
  EXPECT_DOUBLE_EQ(e2.maintenance_cost(join, {join}),
                   2.0 * g2.node(join).full_cost);
}

}  // namespace
}  // namespace mvd
