// Tests for space-budgeted view selection and the snowflake generator.
#include <gtest/gtest.h>

#include <limits>

#include "src/common/error.hpp"
#include "src/mvpp/builder.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class BudgetTest : public ::testing::Test {
 protected:
  BudgetTest()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(model_)),
        eval_(graph_) {}

  Catalog catalog_;
  CostModel model_;
  MvppGraph graph_;
  MvppEvaluator eval_;
};

TEST_F(BudgetTest, TotalViewBlocksSums) {
  const MaterializedSet m{graph_.find_by_name("tmp2"),
                          graph_.find_by_name("tmp4")};
  EXPECT_DOUBLE_EQ(total_view_blocks(graph_, m),
                   graph_.node(graph_.find_by_name("tmp2")).blocks +
                       graph_.node(graph_.find_by_name("tmp4")).blocks);
  EXPECT_DOUBLE_EQ(total_view_blocks(graph_, {}), 0.0);
}

TEST_F(BudgetTest, ZeroBudgetSelectsNothing) {
  EXPECT_TRUE(budgeted_greedy(eval_, 0).materialized.empty());
  EXPECT_TRUE(budgeted_optimal(eval_, 0).materialized.empty());
}

TEST_F(BudgetTest, ResultsRespectTheBudget) {
  for (const double budget : {50.0, 200.0, 1'000.0, 6'000.0, 1e9}) {
    const SelectionResult g = budgeted_greedy(eval_, budget);
    EXPECT_LE(total_view_blocks(graph_, g.materialized), budget + 1e-9);
    const SelectionResult o = budgeted_optimal(eval_, budget);
    EXPECT_LE(total_view_blocks(graph_, o.materialized), budget + 1e-9);
    // Optimal never worse than greedy.
    EXPECT_LE(o.costs.total(), g.costs.total() + 1e-6);
  }
}

TEST_F(BudgetTest, UnlimitedBudgetMatchesUnconstrainedOptimum) {
  const SelectionResult unconstrained = exhaustive_optimal(eval_);
  const SelectionResult budgeted = budgeted_optimal(eval_, 1e12);
  EXPECT_DOUBLE_EQ(budgeted.costs.total(), unconstrained.costs.total());
}

TEST_F(BudgetTest, TighterBudgetsNeverImproveTotalCost) {
  double previous = std::numeric_limits<double>::infinity();
  for (const double budget : {0.0, 100.0, 1'000.0, 10'000.0, 1e9}) {
    const double cost = budgeted_optimal(eval_, budget).costs.total();
    EXPECT_LE(cost, previous + 1e-9) << budget;
    previous = cost;
  }
}

TEST_F(BudgetTest, TightBudgetPrefersDenseViews) {
  // With room for only ~tmp2 (100 blocks) but not tmp4 (5k), the greedy
  // must still pick something useful.
  const SelectionResult r = budgeted_greedy(eval_, 150);
  EXPECT_FALSE(r.materialized.empty());
  EXPECT_FALSE(r.materialized.contains(graph_.find_by_name("tmp4")));
  EXPECT_LT(r.costs.total(), eval_.total_cost({}));
}

TEST_F(BudgetTest, Validation) {
  EXPECT_THROW(budgeted_greedy(eval_, -1), PlanError);
  EXPECT_THROW(budgeted_optimal(eval_, -1), PlanError);
  EXPECT_THROW(budgeted_optimal(eval_, 100, 3), PlanError);
}

TEST(SnowflakeTest, CatalogShape) {
  SnowflakeSchemaOptions options;
  options.dimensions = 2;
  const Catalog c = make_snowflake_catalog(options);
  // Fact + 2 dims + 2 subdims.
  EXPECT_EQ(c.relation_names().size(), 5u);
  EXPECT_TRUE(c.has_relation("Sub1"));
  EXPECT_DOUBLE_EQ(c.stats("Sub0").rows, 100);
  EXPECT_DOUBLE_EQ(*c.stats("Dim0").column("sub_id")->distinct, 100);
  SnowflakeSchemaOptions bad;
  bad.dimensions = 0;
  EXPECT_THROW(make_snowflake_catalog(bad), CatalogError);
}

TEST(SnowflakeTest, QueriesTraverseTwoHops) {
  SnowflakeSchemaOptions schema;
  const Catalog c = make_snowflake_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = 6;
  qopts.max_dimensions = 2;
  const auto queries = generate_snowflake_queries(c, schema, qopts);
  ASSERT_EQ(queries.size(), 6u);
  for (const QuerySpec& q : queries) {
    // Fact + (dim + sub) per chosen dimension.
    EXPECT_EQ(q.relations().size() % 2, 1u);
    EXPECT_GE(q.relations().size(), 3u);
    EXPECT_TRUE(q.join_graph_connected());
    EXPECT_EQ(q.joins().size(), q.relations().size() - 1);
  }
}

TEST(SnowflakeTest, WorkloadDesignsEndToEnd) {
  SnowflakeSchemaOptions schema;
  schema.dimensions = 3;
  const Catalog catalog = make_snowflake_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = 5;
  qopts.max_dimensions = 2;
  qopts.seed = 3;
  const auto queries = generate_snowflake_queries(catalog, schema, qopts);
  const CostModel model(catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const MvppBuildResult built =
      builder.build(queries, builder.initial_order(queries));
  built.graph.validate();
  const MvppEvaluator eval(built.graph);
  const SelectionResult sel = yang_heuristic(eval);
  EXPECT_LE(sel.costs.total(), eval.total_cost({}) + 1e-6);
  // Shared dimension-subdimension joins appear (used by > 1 query) on
  // most seeds; at minimum the graph merged something.
  EXPECT_LT(built.graph.operation_ids().size(),
            5u * 7u);  // far fewer nodes than 5 disjoint plans would need
}

}  // namespace
}  // namespace mvd
