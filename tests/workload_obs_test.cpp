// Workload-observatory tests: query fingerprinting, the decayed
// sliding-window recurrence, journal JSONL round-trips and corrupt-line
// recovery, the bounded ring, observatory state transitions
// (hit/miss/refusal tallies, staleness ages, refresh clearing), drift
// vs the declared catalog annotations, histogram percentiles, and the
// replay contract — a journal re-recorded through a fresh observatory
// reproduces every gauge bit-for-bit, including after multi-threaded
// traffic (WorkloadObsTsanTest, also run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.hpp"
#include "src/exec/executor.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/workload.hpp"
#include "src/optimizer/view_rewrite.hpp"
#include "src/serve/server.hpp"
#include "src/sql/parser.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

// ---- Fingerprints -----------------------------------------------------

class FingerprintTest : public ::testing::Test {
 protected:
  FingerprintTest() : catalog_(make_paper_catalog()) {}

  QuerySpec query(const std::string& name, const std::string& sql) const {
    return parse_and_bind(catalog_, name, 1.0, sql);
  }

  Catalog catalog_;
};

TEST_F(FingerprintTest, StableUnderFromWhereReorderAndRenaming) {
  const QuerySpec a =
      query("A",
            "SELECT Customer.city, date FROM Order, Customer "
            "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  const QuerySpec b =
      query("B",
            "SELECT Customer.city, date FROM Customer, Order "
            "WHERE Order.Cid = Customer.Cid AND quantity > 100");
  EXPECT_EQ(query_fingerprint(a), query_fingerprint(b));
}

TEST_F(FingerprintTest, DistinguishesPredicateAndShape) {
  const QuerySpec base =
      query("Q", "SELECT name FROM Division WHERE city = 'LA'");
  const QuerySpec other_pred =
      query("Q", "SELECT name FROM Division WHERE city = 'SF'");
  const QuerySpec other_proj =
      query("Q", "SELECT city FROM Division WHERE city = 'LA'");
  EXPECT_NE(query_fingerprint(base), query_fingerprint(other_pred));
  EXPECT_NE(query_fingerprint(base), query_fingerprint(other_proj));
}

TEST_F(FingerprintTest, AggregationEntersTheFingerprint) {
  const QuerySpec spj =
      query("Q",
            "SELECT Customer.city FROM Order, Customer "
            "WHERE Order.Cid = Customer.Cid");
  const QuerySpec agg =
      query("Q",
            "SELECT Customer.city, SUM(quantity) FROM Order, Customer "
            "WHERE Order.Cid = Customer.Cid GROUP BY Customer.city");
  EXPECT_NE(query_fingerprint(spj), query_fingerprint(agg));
  EXPECT_NE(query_fingerprint(agg).find(" G["), std::string::npos);
}

TEST(FingerprintIdTest, ShortStableHexForm) {
  const std::string id = fingerprint_id("R[Order] J[] S[] P[date]");
  ASSERT_EQ(id.size(), 17u);
  EXPECT_EQ(id[0], 'q');
  for (std::size_t i = 1; i < id.size(); ++i) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(id[i]))) << id;
  }
  EXPECT_EQ(id, fingerprint_id("R[Order] J[] S[] P[date]"));
  EXPECT_NE(id, fingerprint_id("R[Order] J[] S[] P[city]"));
}

// ---- Decayed window ---------------------------------------------------

TEST(WindowedNowTest, AppliesExactDecayRecurrence) {
  // α = 1 − 1/W = 0.75 for W = 4.
  EXPECT_DOUBLE_EQ(windowed_now(1.0, 1, 2, 4), 0.75);
  EXPECT_DOUBLE_EQ(windowed_now(2.0, 3, 5, 4), 2.0 * 0.75 * 0.75);
  // Same clock, zero window: no decay applied.
  EXPECT_DOUBLE_EQ(windowed_now(2.5, 7, 7, 4), 2.5);
  EXPECT_DOUBLE_EQ(windowed_now(2.5, 7, 9, 0), 2.5);
}

TEST(WindowedNowTest, ObservatoryBumpsOnTheServeClock) {
  WorkloadObservatory obs(4);
  JournalEvent e;
  e.kind = EventKind::kServe;
  e.fingerprint = "fp";
  e.query = "Q";
  obs.record(e);  // w = 1 at serve clock 1
  obs.record(e);  // w = 1·0.75 + 1 = 1.75
  obs.record(e);  // w = 1.75·0.75 + 1 = 2.3125
  const WorkloadStats stats = obs.stats();
  const QueryObservation& q = stats.queries.at("fp");
  EXPECT_DOUBLE_EQ(q.windowed, 2.3125);
  EXPECT_EQ(q.windowed_at, 3u);
  EXPECT_EQ(q.count, 3u);
}

// ---- Journal serialization & recovery ---------------------------------

std::vector<JournalEvent> one_of_each_kind() {
  std::vector<JournalEvent> events;
  JournalEvent open;
  open.kind = EventKind::kOpen;
  open.window = 256;
  events.push_back(open);

  JournalEvent dq;
  dq.kind = EventKind::kDeclareQuery;
  dq.query = "Q1";
  dq.frequency = 12.5;
  events.push_back(dq);

  JournalEvent du;
  du.kind = EventKind::kDeclareUpdate;
  du.relation = "Order";
  du.frequency = 0.25;
  events.push_back(du);

  JournalEvent hit;
  hit.kind = EventKind::kServe;
  hit.epoch = 3;
  hit.query = "Q1";
  hit.fingerprint = "R[Order] J[] S[] P[date]";
  hit.rewritten = true;
  hit.view = "mv_q1";
  hit.engine = "vec";
  hit.latency_ms = 0.1875;  // exactly representable
  events.push_back(hit);

  JournalEvent miss;
  miss.kind = EventKind::kServe;
  miss.query = "adhoc";
  miss.fingerprint = "R[Division] J[] S[] P[name]";
  miss.engine = "row";
  miss.latency_ms = 2.5;
  miss.refusals = {{"mv_q1", "relation sets differ (view Order)"},
                   {"mv_q2", "containment not proved"}};
  miss.stale_views = {"mv_q3"};
  events.push_back(miss);

  JournalEvent ingest;
  ingest.kind = EventKind::kIngest;
  ingest.epoch = 4;
  ingest.relation = "Order";
  ingest.delta_rows = 48;
  ingest.marked_stale = {"mv_q1", "mv_q3"};
  events.push_back(ingest);

  JournalEvent refresh;
  refresh.kind = EventKind::kRefresh;
  refresh.epoch = 5;
  refresh.refreshed = {"mv_q1", "mv_q3"};
  refresh.mode = "incremental";
  events.push_back(refresh);

  for (std::size_t i = 0; i < events.size(); ++i) events[i].seq = i + 1;
  return events;
}

TEST(JournalJsonTest, EveryKindRoundTripsThroughJsonl) {
  const std::vector<JournalEvent> events = one_of_each_kind();
  std::size_t corrupt = 77;
  const std::vector<JournalEvent> back =
      EventJournal::parse_jsonl(EventJournal::to_jsonl(events), &corrupt);
  EXPECT_EQ(corrupt, 0u);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i], events[i]) << "event " << i;
  }
}

TEST(JournalJsonTest, CorruptLinesAreSkippedAndCounted) {
  const std::vector<JournalEvent> events = one_of_each_kind();
  std::string text = EventJournal::to_jsonl(events);
  // Splice garbage between intact lines: a torn write and a hand edit.
  const std::size_t first_nl = text.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  text.insert(first_nl + 1, "{\"kind\":\"serve\",\"latency\n");
  text.insert(0, "not json at all\n");
  std::size_t corrupt = 0;
  const std::vector<JournalEvent> back =
      EventJournal::parse_jsonl(text, &corrupt);
  EXPECT_EQ(corrupt, 2u);
  ASSERT_EQ(back.size(), events.size());
  EXPECT_EQ(back.front(), events.front());
  EXPECT_EQ(back.back(), events.back());
}

TEST(JournalJsonTest, TruncatedTailRecoversThePrefix) {
  const std::vector<JournalEvent> events = one_of_each_kind();
  std::string text = EventJournal::to_jsonl(events);
  // Chop mid-way through the final line (a crash mid-append).
  text.resize(text.size() - 10);
  std::size_t corrupt = 0;
  const std::vector<JournalEvent> back =
      EventJournal::parse_jsonl(text, &corrupt);
  EXPECT_EQ(corrupt, 1u);
  ASSERT_EQ(back.size(), events.size() - 1);
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_EQ(back[i], events[i]);
  }
}

TEST(JournalRingTest, BoundedRingKeepsTheTailAndCountsDrops) {
  EventJournal ring(4, std::string());
  for (int i = 1; i <= 10; ++i) {
    JournalEvent e;
    e.kind = EventKind::kServe;
    e.seq = static_cast<std::uint64_t>(i);
    ring.append(e);
  }
  EXPECT_EQ(ring.appended(), 10u);
  const std::vector<JournalEvent> tail = ring.events();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().seq, 7u);
  EXPECT_EQ(tail.back().seq, 10u);
}

// ---- Observatory state transitions ------------------------------------

TEST(ObservatoryTest, TalliesHitsMissesRefusalsAndStaleness) {
  WorkloadObservatory obs(16);
  obs.declare_query("Q1", 10);     // seq 1
  obs.declare_update("Order", 2);  // seq 2

  JournalEvent hit;
  hit.kind = EventKind::kServe;
  hit.query = "Q1";
  hit.fingerprint = "fp1";
  hit.rewritten = true;
  hit.view = "mv_q1";
  hit.latency_ms = 0.5;
  obs.record(hit);  // seq 3

  JournalEvent ingest;
  ingest.kind = EventKind::kIngest;
  ingest.relation = "Order";
  ingest.delta_rows = 40;
  ingest.marked_stale = {"mv_q1"};
  obs.record(ingest);  // seq 4 — mv_q1 stale from here

  JournalEvent miss;
  miss.kind = EventKind::kServe;
  miss.query = "Q1";
  miss.fingerprint = "fp1";
  miss.latency_ms = 1.5;
  miss.refusals = {{"mv_q2", "relation sets differ (view misses Order)"}};
  miss.stale_views = {"mv_q1"};
  obs.record(miss);  // seq 5

  {
    const WorkloadStats s = obs.stats();
    EXPECT_EQ(s.events, 5u);
    EXPECT_EQ(s.serves, 2u);
    EXPECT_EQ(s.ingests, 1u);
    const QueryObservation& q = s.queries.at("fp1");
    EXPECT_EQ(q.count, 2u);
    EXPECT_EQ(q.hits, 1u);
    EXPECT_EQ(q.misses, 1u);
    EXPECT_DOUBLE_EQ(q.latency_ms_sum, 2.0);
    EXPECT_EQ(q.first_seq, 3u);
    EXPECT_EQ(q.last_seq, 5u);

    const ViewObservation& v1 = s.views.at("mv_q1");
    EXPECT_EQ(v1.hits, 1u);
    EXPECT_EQ(v1.stale_serves, 1u);
    EXPECT_DOUBLE_EQ(v1.pending_delta_rows, 40.0);
    ASSERT_TRUE(v1.stale_since_seq.has_value());
    EXPECT_EQ(*v1.stale_since_seq, 4u);
    // Age in events since the staling ingest: 5 − 4.
    EXPECT_DOUBLE_EQ(s.to_gauges().at("workload/view/mv_q1/staleness_age"),
                     1.0);

    const ViewObservation& v2 = s.views.at("mv_q2");
    EXPECT_EQ(v2.refusals, 1u);
    EXPECT_EQ(v2.refusal_reasons.at("relations"), 1u);

    const RelationObservation& r = s.relations.at("Order");
    EXPECT_EQ(r.ingests, 1u);
    EXPECT_DOUBLE_EQ(r.delta_rows, 40.0);

    // Latency buckets: 0.5 lands in the (0.25, 0.5] bucket, 1.5 in
    // (1, 2.5].
    EXPECT_EQ(s.latency_counts[3], 1u);
    EXPECT_EQ(s.latency_counts[5], 1u);
    EXPECT_EQ(s.latency_count, 2u);
  }

  JournalEvent refresh;
  refresh.kind = EventKind::kRefresh;
  refresh.refreshed = {"mv_q1"};
  refresh.mode = "incremental";
  obs.record(refresh);  // seq 6

  const WorkloadStats s = obs.stats();
  EXPECT_EQ(s.refreshes, 1u);
  const ViewObservation& v1 = s.views.at("mv_q1");
  EXPECT_EQ(v1.refreshes, 1u);
  EXPECT_DOUBLE_EQ(v1.pending_delta_rows, 0.0);
  EXPECT_EQ(v1.stale_serves, 0u);
  EXPECT_EQ(v1.stale_serves_total, 1u);  // lifetime tally survives
  EXPECT_FALSE(v1.stale_since_seq.has_value());
  EXPECT_DOUBLE_EQ(s.to_gauges().at("workload/view/mv_q1/staleness_age"),
                   0.0);
}

// ---- Drift ------------------------------------------------------------

JournalEvent named_serve(const std::string& name) {
  JournalEvent e;
  e.kind = EventKind::kServe;
  e.query = name;
  e.fingerprint = "fp:" + name;
  return e;
}

TEST(DriftTest, ZeroTrafficMeansZeroEvidenceOfDrift) {
  WorkloadObservatory obs(16);
  obs.declare_query("Q1", 5);
  obs.declare_update("Order", 2);
  const DriftReport drift = obs.drift();
  EXPECT_DOUBLE_EQ(drift.fq_distance, 0.0);
  EXPECT_DOUBLE_EQ(drift.fu_distance, 0.0);
  ASSERT_EQ(drift.queries.size(), 1u);
  EXPECT_DOUBLE_EQ(drift.queries[0].declared_share, 1.0);
  EXPECT_DOUBLE_EQ(drift.queries[0].observed_share, 0.0);
}

TEST(DriftTest, TrafficMatchingDeclaredSharesScoresZero) {
  WorkloadObservatory obs(16);
  obs.declare_query("Q1", 3);
  obs.declare_query("Q2", 1);
  for (int i = 0; i < 3; ++i) obs.record(named_serve("Q1"));
  obs.record(named_serve("Q2"));
  EXPECT_DOUBLE_EQ(obs.drift().fq_distance, 0.0);
  EXPECT_DOUBLE_EQ(obs.drift().unmatched_serve_share, 0.0);
}

TEST(DriftTest, DisjointTrafficScoresOne) {
  WorkloadObservatory obs(16);
  obs.declare_query("Q1", 5);
  obs.record(named_serve("adhoc"));
  obs.record(named_serve("adhoc"));
  const DriftReport drift = obs.drift();
  EXPECT_DOUBLE_EQ(drift.fq_distance, 1.0);
  EXPECT_DOUBLE_EQ(drift.unmatched_serve_share, 1.0);
}

TEST(DriftTest, UnmatchedServesFormAnExtraBucket) {
  WorkloadObservatory obs(16);
  obs.declare_query("Q1", 1);
  obs.record(named_serve("Q1"));
  obs.record(named_serve("adhoc"));
  const DriftReport drift = obs.drift();
  // Declared {Q1: 1} vs observed {Q1: ½, adhoc: ½}:
  // (|1 − ½| + ½) / 2 = ½.
  EXPECT_DOUBLE_EQ(drift.unmatched_serve_share, 0.5);
  EXPECT_DOUBLE_EQ(drift.fq_distance, 0.5);
}

// ---- Replay -----------------------------------------------------------

TEST(ReplayTest, ReplayReproducesGaugesBitForBit) {
  WorkloadObservatory live(8);
  live.attach_journal(std::make_shared<EventJournal>(1024, std::string()));
  live.declare_query("Q1", 10);
  live.declare_update("Order", 2);
  for (int i = 0; i < 12; ++i) {
    JournalEvent e = named_serve(i % 3 == 0 ? "adhoc" : "Q1");
    e.rewritten = i % 2 == 0;
    e.view = e.rewritten ? "mv_q1" : "";
    e.engine = "row";
    e.latency_ms = 0.125 * (i + 1);
    if (!e.rewritten) e.stale_views = {"mv_q1"};
    live.record(e);
    if (i % 4 == 3) {
      JournalEvent ing;
      ing.kind = EventKind::kIngest;
      ing.relation = "Order";
      ing.delta_rows = 8 + i;
      ing.marked_stale = {"mv_q1"};
      live.record(ing);
    }
  }
  JournalEvent refresh;
  refresh.kind = EventKind::kRefresh;
  refresh.refreshed = {"mv_q1"};
  refresh.mode = "recompute";
  live.record(refresh);

  // Through the JSONL text too — the on-disk form must replay equally.
  std::size_t corrupt = 0;
  const std::vector<JournalEvent> events = EventJournal::parse_jsonl(
      EventJournal::to_jsonl(live.journal()->events()), &corrupt);
  EXPECT_EQ(corrupt, 0u);
  const std::unique_ptr<WorkloadObservatory> replayed =
      replay_journal(events);
  EXPECT_EQ(replayed->window(), 8u);  // taken from the kOpen event
  EXPECT_EQ(replayed->stats().to_gauges(), live.stats().to_gauges());
}

TEST(ReplayTest, EditedEventBreaksTheEquality) {
  WorkloadObservatory live(8);
  live.attach_journal(std::make_shared<EventJournal>(64, std::string()));
  for (int i = 0; i < 3; ++i) {
    JournalEvent e = named_serve("Q1");
    e.latency_ms = 1.0;
    live.record(e);
  }
  std::vector<JournalEvent> tampered = live.journal()->events();
  tampered[1].latency_ms += 0.5;
  EXPECT_NE(replay_journal(tampered)->stats().to_gauges(),
            live.stats().to_gauges());
}

// ---- Percentiles ------------------------------------------------------

TEST(HistogramPercentileTest, InterpolatesWithinBuckets) {
  const std::vector<double> bounds = {1, 2, 4};
  // 10 observations in (1, 2], none elsewhere.
  const std::vector<std::uint64_t> counts = {0, 10, 0, 0};
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, counts, 10, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, counts, 10, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, counts, 10, 0.0), 1.0);
}

TEST(HistogramPercentileTest, EmptyAndOverflowEdges) {
  const std::vector<double> bounds = {1, 2, 4};
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, {0, 0, 0, 0}, 0, 0.5), 0.0);
  // Everything overflowed: the estimate saturates at the last bound.
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, {0, 0, 0, 5}, 5, 0.5), 4.0);
  // Split low/overflow: p99 saturates, p25 interpolates in the first.
  const std::vector<std::uint64_t> split = {4, 0, 0, 4};
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, split, 8, 0.99), 4.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, split, 8, 0.25), 0.5);
}

TEST(HistogramPercentileTest, NonHistogramMetricValueReportsZero) {
  MetricValue counter;
  counter.kind = MetricKind::kCounter;
  counter.value = 42;
  EXPECT_DOUBLE_EQ(counter.percentile(0.5), 0.0);

  MetricValue hist;
  hist.kind = MetricKind::kHistogram;
  hist.bucket_bounds = {1, 2};
  hist.bucket_counts = {2, 0, 0};
  hist.count = 2;
  EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.5);
}

// ---- Refusal codes & engine names -------------------------------------

TEST(RefusalCodeTest, BucketsMatcherReasonsStably) {
  EXPECT_EQ(refusal_code("relation sets differ (view joins Customer)"),
            "relations");
  EXPECT_EQ(refusal_code("containment not proved for conjunct q > 10"),
            "containment");
  EXPECT_EQ(refusal_code("projection column not stored: date"),
            "projection");
  EXPECT_EQ(refusal_code("avg cannot roll up without a stored count"),
            "avg-rollup");
  EXPECT_EQ(refusal_code("SPJ query over an aggregate view"),
            "spj-over-aggregate");
  EXPECT_EQ(refusal_code("something the matcher never says"), "other");
}

TEST(ExecModeNameTest, NamesEveryEngine) {
  EXPECT_STREQ(exec_mode_name(ExecMode::kRow), "row");
  EXPECT_STREQ(exec_mode_name(ExecMode::kVectorized), "vec");
  EXPECT_STREQ(exec_mode_name(ExecMode::kFused), "fused");
}

// ---- MvServer integration ---------------------------------------------

class WorkloadServerTest : public ::testing::Test {
 protected:
  WorkloadServerTest() {
    // The server's journal must stay ring-only regardless of the test
    // environment.
    unsetenv("MVD_JOURNAL");
    DesignerOptions options;
    options.cost = paper_cost_config();
    designer_ =
        std::make_unique<WarehouseDesigner>(make_paper_catalog(), options);
    for (const QuerySpec& q : make_paper_example().queries) {
      designer_->add_query(q);
    }
    design_ = designer_->design();
    const MvppGraph& g = design_.graph();
    for (const NodeId q : g.query_ids()) {
      design_.selection.materialized.insert(g.node(q).children[0]);
    }
    ServeOptions serve;
    serve.mode = ExecMode::kRow;
    serve.threads = 1;
    serve.observe = true;
    server_ = std::make_unique<MvServer>(designer_->catalog(), design_,
                                         populate_paper_database(0.02, 23),
                                         serve);
  }

  std::string view_of(const std::string& query_name) const {
    const MvppGraph& g = design_.graph();
    const NodeId q = g.find_by_name(query_name);
    return g.node(g.node(q).children[0]).name;
  }

  std::unique_ptr<WarehouseDesigner> designer_;
  DesignResult design_;
  std::unique_ptr<MvServer> server_;
};

TEST_F(WorkloadServerTest, ConstructionSeedsDeclaredWorkload) {
  WorkloadObservatory* obs = server_->observatory();
  ASSERT_NE(obs, nullptr);
  const WorkloadStats s = obs->stats();
  EXPECT_EQ(s.declared_fq.size(), design_.graph().query_ids().size());
  EXPECT_GT(s.declared_fu.size(), 0u);
  EXPECT_EQ(s.serves, 0u);
  // Zero traffic so far: no drift evidence.
  EXPECT_DOUBLE_EQ(obs->drift().fq_distance, 0.0);
}

TEST_F(WorkloadServerTest, ServeIngestRefreshDriveTheObservatory) {
  const QuerySpec& q1 = designer_->queries()[0];
  const QuerySpec& q4 = designer_->queries()[3];
  const std::string fp4 = query_fingerprint(q4);

  const ServeResult hit = server_->serve(q4);
  ASSERT_TRUE(hit.rewritten);
  EXPECT_EQ(hit.engine, "row");
  EXPECT_TRUE(hit.refusals.empty());

  Rng rng(99);
  server_->ingest("Order", {}, rng);

  const ServeResult stale = server_->serve(q4);
  EXPECT_FALSE(stale.rewritten);

  WorkloadObservatory* obs = server_->observatory();
  ASSERT_NE(obs, nullptr);
  {
    const WorkloadStats s = obs->stats();
    const QueryObservation& q = s.queries.at(fp4);
    EXPECT_EQ(q.count, 2u);
    EXPECT_EQ(q.hits, 1u);
    EXPECT_EQ(q.misses, 1u);
    const ViewObservation& v = s.views.at(view_of("Q4"));
    EXPECT_EQ(v.hits, 1u);
    EXPECT_EQ(v.stale_serves, 1u);  // the fallback found its view stale
    EXPECT_GT(v.pending_delta_rows, 0.0);
    EXPECT_TRUE(v.stale_since_seq.has_value());
    EXPECT_EQ(s.relations.at("Order").ingests, 1u);
  }

  // An uncovered ad-hoc query: refusals surface in the result and the
  // per-view tallies.
  const ServeResult uncovered =
      server_->serve("SELECT name FROM Division WHERE city = 'LA'");
  EXPECT_FALSE(uncovered.rewritten);
  EXPECT_FALSE(uncovered.refusals.empty());
  for (const ServeRefusal& r : uncovered.refusals) {
    EXPECT_FALSE(r.view.empty());
    EXPECT_FALSE(r.reason.empty());
  }

  server_->refresh(RefreshMode::kRecompute);
  ASSERT_TRUE(server_->serve(q4).rewritten);
  ASSERT_TRUE(server_->serve(q1).rewritten);

  const WorkloadStats s = obs->stats();
  const ViewObservation& v = s.views.at(view_of("Q4"));
  EXPECT_GE(v.refreshes, 1u);
  EXPECT_DOUBLE_EQ(v.pending_delta_rows, 0.0);
  EXPECT_EQ(v.stale_serves, 0u);
  EXPECT_FALSE(v.stale_since_seq.has_value());
  EXPECT_EQ(s.refreshes, 1u);
  EXPECT_GT(s.latency_count, 0u);

  // The ring held every event of this short run: replay must agree
  // bit-for-bit.
  const std::unique_ptr<WorkloadObservatory> replayed =
      replay_journal(obs->journal()->events());
  EXPECT_EQ(replayed->stats().to_gauges(), obs->stats().to_gauges());
}

// ---- Concurrency (run under TSan in CI) --------------------------------

class WorkloadObsTsanTest : public ::testing::Test {};

TEST_F(WorkloadObsTsanTest, ConcurrentRecordsReplayBitForBit) {
  WorkloadObservatory live(32);
  live.attach_journal(std::make_shared<EventJournal>(1 << 14, std::string()));
  live.declare_query("Q1", 10);
  live.declare_update("Order", 2);

  constexpr int kReaders = 4;
  constexpr int kPerThread = 200;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&live, t] {
      for (int i = 0; i < kPerThread; ++i) {
        JournalEvent e = named_serve(i % 2 == 0 ? "Q1" : "adhoc");
        e.rewritten = (t + i) % 3 != 0;
        e.view = e.rewritten ? "mv_q1" : "";
        e.latency_ms = 0.25 * ((t + i) % 7);
        if (!e.rewritten) e.refusals = {{"mv_q2", "relation sets differ"}};
        live.record(e);
      }
    });
  }
  std::thread writer([&live] {
    for (int i = 0; i < 20; ++i) {
      JournalEvent ing;
      ing.kind = EventKind::kIngest;
      ing.relation = "Order";
      ing.delta_rows = 4;
      ing.marked_stale = {"mv_q1"};
      live.record(ing);
      JournalEvent refresh;
      refresh.kind = EventKind::kRefresh;
      refresh.refreshed = {"mv_q1"};
      refresh.mode = "incremental";
      live.record(refresh);
    }
  });
  std::thread snapshotter([&live, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const WorkloadStats s = live.stats();
      EXPECT_LE(s.serves + s.ingests + s.refreshes, s.events);
      (void)compute_drift(s);
    }
  });
  for (std::thread& t : threads) t.join();
  writer.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();

  const WorkloadStats s = live.stats();
  EXPECT_EQ(s.serves, static_cast<std::uint64_t>(kReaders * kPerThread));
  EXPECT_EQ(s.ingests, 20u);
  EXPECT_EQ(s.refreshes, 20u);

  // However the threads interleaved, the journal captured the one total
  // order that produced the live state.
  const std::unique_ptr<WorkloadObservatory> replayed =
      replay_journal(live.journal()->events());
  EXPECT_EQ(replayed->stats().to_gauges(), s.to_gauges());
}

TEST_F(WorkloadObsTsanTest, ServerTrafficUnderChurnReplaysExactly) {
  unsetenv("MVD_JOURNAL");
  DesignerOptions options;
  options.cost = paper_cost_config();
  WarehouseDesigner designer(make_paper_catalog(), options);
  for (const QuerySpec& q : make_paper_example().queries) {
    designer.add_query(q);
  }
  DesignResult design = designer.design();
  const MvppGraph& g = design.graph();
  for (const NodeId q : g.query_ids()) {
    design.selection.materialized.insert(g.node(q).children[0]);
  }
  ServeOptions serve;
  serve.mode = ExecMode::kRow;
  serve.threads = 1;
  serve.observe = true;
  MvServer server(designer.catalog(), design,
                  populate_paper_database(0.02, 23), serve);

  const std::vector<QuerySpec> queries = designer.queries();
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&server, &queries, t] {
      for (int i = 0; i < 15; ++i) {
        server.serve(queries[(static_cast<std::size_t>(t) + i) %
                             queries.size()]);
      }
    });
  }
  std::thread writer([&server] {
    Rng rng(7);
    for (int r = 0; r < 4; ++r) {
      server.update_and_refresh(r % 2 == 0 ? "Order" : "Customer", {}, rng);
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();

  WorkloadObservatory* obs = server.observatory();
  ASSERT_NE(obs, nullptr);
  const WorkloadStats s = obs->stats();
  EXPECT_EQ(s.serves, 45u);
  EXPECT_EQ(s.ingests, 4u);

  const std::unique_ptr<WorkloadObservatory> replayed =
      replay_journal(obs->journal()->events());
  EXPECT_EQ(replayed->stats().to_gauges(), s.to_gauges());
}

}  // namespace
}  // namespace mvd
