// The mutation self-test: every built-in lint rule must fire — and fire
// alone — on the corruption crafted for it. This is what keeps the rule
// set non-vacuous: a rule whose mutation stops triggering it fails here
// immediately.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/lint/lint.hpp"
#include "src/lint/mutate.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class MutationTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  MutationTest()
      : catalog_(make_paper_catalog()),
        cost_model_(catalog_, paper_cost_config()),
        clean_(build_figure3_mvpp(cost_model_)) {}

  Catalog catalog_;
  CostModel cost_model_;
  MvppGraph clean_;
};

TEST_P(MutationTest, FiresExactlyTheExpectedRule) {
  const GraphMutation& mutation = builtin_mutations()[GetParam()];
  const MutationOutcome outcome = mutation.apply(clean_, cost_model_);
  ASSERT_NE(outcome.graph, nullptr);

  const LintReport report = LintRegistry::builtin().run(outcome.context());
  EXPECT_EQ(report.fired_rules(),
            (std::set<std::string>{mutation.expected_rule}))
      << mutation.name << " produced:\n"
      << report.render_text();
  // The diagnostic carries enough to act on: a subject and a message.
  ASSERT_FALSE(report.diagnostics().empty());
  for (const Diagnostic& d : report.diagnostics()) {
    EXPECT_FALSE(d.message.empty());
    EXPECT_FALSE(d.subject.empty());
  }
}

std::string mutation_name(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string name = builtin_mutations()[info.param].name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, MutationTest,
    ::testing::Range<std::size_t>(0, builtin_mutations().size()),
    mutation_name);

TEST(MutationCoverageTest, EveryRuleHasAMutation) {
  std::set<std::string> covered;
  for (const GraphMutation& m : builtin_mutations()) {
    covered.insert(m.expected_rule);
  }
  std::set<std::string> registered;
  for (const LintRule& rule : LintRegistry::builtin().rules()) {
    registered.insert(rule.id);
  }
  EXPECT_EQ(covered, registered)
      << "every built-in rule needs a mutation proving it can fire";
}

TEST(MutationCoverageTest, CleanGraphSurvivesEveryContextShape) {
  // The clean graph with the richest context must stay clean — the
  // mutations above are the *only* thing separating clean from dirty.
  const Catalog catalog = make_paper_catalog();
  const CostModel cost_model(catalog, paper_cost_config());
  const MvppGraph graph = build_figure3_mvpp(cost_model);
  const MvppEvaluator eval(graph);
  const SelectionResult selection = yang_heuristic(eval);
  const LintReport report =
      lint_selection(eval, selection, std::nullopt, &cost_model);
  EXPECT_TRUE(report.clean()) << report.render_text();
}

}  // namespace
}  // namespace mvd
