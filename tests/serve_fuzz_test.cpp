// Differential subsumption fuzzer for mvserve (ISSUE satellite a).
//
// For each of three schema families (star, chain, paper) the harness
// designs a warehouse whose materialized set covers every workload
// query, then fires >= 200 randomly perturbed ad-hoc queries per round
// at one MvServer per engine (row / vectorized / fused). Every query is
// answered twice on the same snapshot — rewriter enabled (kAuto) and
// forced base-table (kBaseOnly) — and the two answers must be
// bag-equal on every engine. Across engines the matcher's decision must
// agree, and the two batch engines must return bit-identical tables
// (the engine-equivalence contract: vec == fused including row order;
// the row engine is only bag-equal to them).
//
// Perturbations keep the differential interesting: tightened predicates
// with constants sampled from the actual table data (residual
// compensation), projection subsets, re-aggregation over SPJ views, and
// rollups to coarser groupings — plus widened variants that must fall
// back. SUM/AVG are only generated over int64 columns so every
// aggregate value is exact (double accumulation order differs between
// engines; int64 sums below 2^53 do not).
//
// Adversarial near-misses — predicate widened just past the view's
// boundary, an extra FROM relation, a grouping / projection column the
// view never stored — are asserted to REFUSE via match_query_to_view
// against each workload query's own covering view.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/check/implication.hpp"
#include "src/common/random.hpp"
#include "src/optimizer/view_rewrite.hpp"
#include "src/serve/server.hpp"
#include "src/warehouse/deployed.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

constexpr int kQueriesPerRound = 200;

/// One schema family under fuzz: data, catalog, and the workload whose
/// result nodes become the deployed views.
struct Fixture {
  std::string label;
  Catalog catalog;
  Database db;
  std::vector<QuerySpec> workload;
};

Fixture star_fixture() {
  StarSchemaOptions schema;
  schema.dimensions = 3;
  schema.fact_rows = 1'200;
  schema.dimension_rows = 100;
  schema.categories = 8;
  schema.measure_range = 50;
  StarQueryOptions queries;
  queries.count = 6;
  queries.aggregation_probability = 0.4;
  queries.seed = 101;
  Catalog catalog = make_star_catalog(schema);
  std::vector<QuerySpec> workload =
      generate_star_queries(catalog, schema, queries);
  return {"star", catalog, populate_star_database(schema, 55),
          std::move(workload)};
}

Fixture chain_fixture() {
  ChainSchemaOptions schema;
  schema.length = 4;
  schema.rows = 400;
  ChainQueryOptions queries;
  queries.count = 5;
  queries.seed = 17;
  Catalog catalog = make_chain_catalog(schema);
  std::vector<QuerySpec> workload =
      generate_chain_queries(catalog, schema, queries);
  return {"chain", catalog, populate_chain_database(schema, 29),
          std::move(workload)};
}

Fixture paper_fixture() {
  PaperExample ex = make_paper_example();
  return {"paper", ex.catalog, populate_paper_database(0.01, 23), ex.queries};
}

/// Design the warehouse and force every query's result node into the
/// materialized set (union with the heuristic's own picks, so best-match
/// has real competition), guaranteeing each workload template a
/// covering view.
DesignResult covered_design(const Catalog& catalog,
                            const std::vector<QuerySpec>& workload) {
  WarehouseDesigner designer(catalog);
  for (const QuerySpec& q : workload) designer.add_query(q);
  DesignResult design = designer.design();
  const MvppGraph& g = design.graph();
  for (const NodeId q : g.query_ids()) {
    design.selection.materialized.insert(g.node(q).children[0]);
  }
  return design;
}

ServeOptions engine_options(ExecMode mode) {
  ServeOptions options;
  options.mode = mode;
  options.threads = 2;
  options.rewrite = true;  // fuzz independently of MVD_SERVE_REWRITE
  return options;
}

/// Cell-by-cell equality including row order — the vec/fused contract.
bool exactly_equal(const Table& a, const Table& b) {
  if (a.row_count() != b.row_count()) return false;
  if (a.schema().size() != b.schema().size()) return false;
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    const Tuple& ra = a.row(i);
    const Tuple& rb = b.row(i);
    for (std::size_t j = 0; j < ra.size(); ++j) {
      if (!(ra[j] == rb[j])) return false;
    }
  }
  return true;
}

ValueType column_type(const Catalog& catalog, const std::string& qualified) {
  const std::size_t dot = qualified.find('.');
  MVD_ASSERT(dot != std::string::npos);
  const Schema& schema = catalog.schema(qualified.substr(0, dot));
  const std::string attr = qualified.substr(dot + 1);
  for (const Attribute& a : schema.attributes()) {
    if (a.name == attr) return a.type;
  }
  MVD_ASSERT(false && "unknown column");
  return ValueType::kBool;
}

/// A constant drawn from the live data of `qualified`'s relation, so
/// tightened predicates sit on real value boundaries instead of missing
/// the data entirely.
std::optional<Value> sample_value(const Database& db,
                                  const std::string& qualified, Rng& rng) {
  const std::size_t dot = qualified.find('.');
  if (dot == std::string::npos) return std::nullopt;
  const std::string relation = qualified.substr(0, dot);
  if (!db.has_table(relation)) return std::nullopt;
  const Table& t = db.table(relation);
  if (t.row_count() == 0) return std::nullopt;
  const std::optional<std::size_t> idx =
      t.schema().find(qualified.substr(dot + 1));
  if (!idx.has_value()) return std::nullopt;
  return t.row(rng.index(t.row_count()))[*idx];
}

/// Random comparison over a stored column, anchored at a sampled data
/// value. Strings get equality; numerics and dates get a random
/// range/exclusion operator.
ExprPtr tighten_conjunct(const Catalog& catalog, const Database& db,
                         const std::string& column, Rng& rng) {
  const std::optional<Value> v = sample_value(db, column, rng);
  if (!v.has_value()) return nullptr;
  switch (column_type(catalog, column)) {
    case ValueType::kString:
      return eq(col(column), lit(*v));
    case ValueType::kInt64:
    case ValueType::kDate: {
      static constexpr CompareOp kOps[] = {CompareOp::kGe, CompareOp::kLe,
                                           CompareOp::kGt, CompareOp::kLt,
                                           CompareOp::kNe};
      return cmp(kOps[rng.index(5)], col(column), lit(*v));
    }
    case ValueType::kDouble: {
      return cmp(rng.chance(0.5) ? CompareOp::kGe : CompareOp::kLe,
                 col(column), lit(*v));
    }
    case ValueType::kBool:
      return nullptr;
  }
  return nullptr;
}

/// One random ad-hoc query perturbed from a workload template. The
/// template's result view stores exactly its projection (or grouping +
/// aggregates), so tightening over those columns keeps the query
/// answerable from the view, while the occasional dropped selection
/// forces the base-table fallback.
class AdhocGenerator {
 public:
  AdhocGenerator(const Catalog& catalog, const Database& db,
                 const std::vector<QuerySpec>& workload, std::uint64_t seed)
      : catalog_(catalog), db_(db), workload_(workload), rng_(seed) {}

  QuerySpec next() {
    const QuerySpec& base = workload_[rng_.index(workload_.size())];
    const std::string name = "F" + std::to_string(++counter_);

    std::vector<ExprPtr> where;
    for (const JoinPredicate& j : base.joins()) where.push_back(j.expr());
    std::vector<ExprPtr> selections = base.selections();
    if (!selections.empty() && rng_.chance(0.15)) {
      // Widen: without this conjunct the view no longer contains the
      // query, so the server must fall back (and still agree with base).
      selections.erase(selections.begin() +
                       static_cast<std::ptrdiff_t>(rng_.index(selections.size())));
    }
    for (const ExprPtr& s : selections) where.push_back(s);

    const std::vector<std::string>& stored =
        base.has_aggregation() ? base.group_by() : base.projection();
    const std::size_t extra = rng_.index(3);
    for (std::size_t i = 0; i < extra && !stored.empty(); ++i) {
      ExprPtr c = tighten_conjunct(catalog_, db_,
                                   stored[rng_.index(stored.size())], rng_);
      if (c != nullptr) where.push_back(c);
    }

    if (base.has_aggregation()) return perturb_aggregate(base, name, where);
    return perturb_spj(base, name, where);
  }

 private:
  QuerySpec perturb_spj(const QuerySpec& base, const std::string& name,
                        std::vector<ExprPtr>& where) {
    if (rng_.chance(0.35)) {
      // Re-aggregate over the SPJ view: the query's own gamma runs above
      // the stored rows.
      const std::vector<std::string>& proj = base.projection();
      const std::string group = proj[rng_.index(proj.size())];
      // Explicit aliases: default ones collide when two relations share
      // a bare column name (Dim0.label and Dim1.label both defaulting to
      // "max_label").
      std::vector<AggSpec> aggs{AggSpec{AggFn::kCount, "", ""}};
      for (const std::string& c : proj) {
        if (c == group) continue;
        const std::string alias =
            "a" + std::to_string(aggs.size()) + "_" +
            c.substr(c.find('.') + 1);
        const ValueType t = column_type(catalog_, c);
        if (t == ValueType::kInt64 && rng_.chance(0.6)) {
          aggs.push_back(AggSpec{rng_.chance(0.5) ? AggFn::kSum : AggFn::kAvg,
                                 c, alias});
        } else if (rng_.chance(0.4)) {
          aggs.push_back(AggSpec{
              rng_.chance(0.5) ? AggFn::kMin : AggFn::kMax, c, alias});
        }
      }
      return QuerySpec::bind(catalog_, name, 1.0, base.relations(),
                             conj(std::move(where)), {group}, {group},
                             std::move(aggs));
    }
    // Residual projection: a shuffled, non-empty subset of the stored
    // columns.
    std::vector<std::string> proj = base.projection();
    rng_.shuffle(proj);
    proj.resize(1 + rng_.index(proj.size()));
    return QuerySpec::bind(catalog_, name, 1.0, base.relations(),
                           conj(std::move(where)), std::move(proj));
  }

  QuerySpec perturb_aggregate(const QuerySpec& base, const std::string& name,
                              std::vector<ExprPtr>& where) {
    std::vector<std::string> groups = base.group_by();
    if (!groups.empty() && rng_.chance(0.4)) {
      // Rollup: a strict subset of the stored grouping (possibly the
      // global aggregate). COUNT rolls up as SUM_INT of counts.
      rng_.shuffle(groups);
      groups.resize(rng_.index(groups.size()));
    }
    return QuerySpec::bind(catalog_, name, 1.0, base.relations(),
                           conj(std::move(where)), groups, groups,
                           base.aggregates());
  }

  const Catalog& catalog_;
  const Database& db_;
  const std::vector<QuerySpec>& workload_;
  Rng rng_;
  int counter_ = 0;
};

// ---- Differential rounds --------------------------------------------------

/// >= kQueriesPerRound random queries, each answered on all three
/// engines via both paths of one snapshot; any disagreement fails with
/// the offending query's text.
void run_differential_round(const Fixture& fx, std::uint64_t seed) {
  const DesignResult design = covered_design(fx.catalog, fx.workload);
  MvServer row(fx.catalog, design, fx.db, engine_options(ExecMode::kRow));
  MvServer vec(fx.catalog, design, fx.db,
               engine_options(ExecMode::kVectorized));
  MvServer fused(fx.catalog, design, fx.db, engine_options(ExecMode::kFused));

  AdhocGenerator gen(fx.catalog, fx.db, fx.workload, seed);
  int hits = 0;
  int fallbacks = 0;
  for (int i = 0; i < kQueriesPerRound; ++i) {
    const QuerySpec q = gen.next();
    SCOPED_TRACE(fx.label + ": " + q.to_string());

    const ServeResult rh = row.serve(q);
    const ServeResult rb = row.serve(q, ServePath::kBaseOnly);
    const ServeResult vh = vec.serve(q);
    const ServeResult vb = vec.serve(q, ServePath::kBaseOnly);
    const ServeResult fh = fused.serve(q);
    const ServeResult fb = fused.serve(q, ServePath::kBaseOnly);

    // The rewrite must be invisible: hit == base on every engine.
    ASSERT_TRUE(same_bag(rh.table, rb.table)) << "row hit != row base";
    ASSERT_TRUE(same_bag(vh.table, vb.table)) << "vec hit != vec base";
    ASSERT_TRUE(same_bag(fh.table, fb.table)) << "fused hit != fused base";

    // The matcher is engine-independent: one decision for all three.
    ASSERT_EQ(rh.rewritten, vh.rewritten);
    ASSERT_EQ(rh.rewritten, fh.rewritten);
    ASSERT_EQ(rh.view, vh.view);
    ASSERT_EQ(rh.view, fh.view);

    // Cross-engine agreement: row is bag-equal to the batch engines;
    // vec and fused are bit-identical (same plan, same batch layout).
    ASSERT_TRUE(same_bag(rh.table, vh.table)) << "row != vectorized";
    ASSERT_TRUE(exactly_equal(vh.table, fh.table)) << "vec != fused (hit)";
    ASSERT_TRUE(exactly_equal(vb.table, fb.table)) << "vec != fused (base)";

    // ExecStats sanity: the base path always scans real blocks; every
    // snapshot is still epoch 0 (no writers in this round).
    ASSERT_GT(rb.stats.blocks_read, 0u);
    ASSERT_GT(rb.stats.rows_scanned, 0u);
    ASSERT_EQ(rh.epoch, 0u);
    if (rh.rewritten) {
      ++hits;
      ASSERT_FALSE(rh.view.empty());
    } else {
      ++fallbacks;
      ASSERT_FALSE(rh.refusal.empty());
    }
  }

  // Most perturbations stay inside a view; the widened ones must not.
  EXPECT_GE(hits, kQueriesPerRound / 4) << fx.label;
  ::testing::Test::RecordProperty(fx.label + "_hits", hits);
  ::testing::Test::RecordProperty(fx.label + "_fallbacks", fallbacks);

  // Every recorded rewrite is re-checkable evidence.
  for (const RewriteRecord& r : row.rewrite_log()) {
    ASSERT_TRUE(implies(r.query_pred, r.view_pred, r.joint))
        << r.query << " -> " << r.view;
  }
}

TEST(ServeFuzzTest, StarSchemaDifferential) {
  run_differential_round(star_fixture(), 0xfacade01);
}

TEST(ServeFuzzTest, ChainSchemaDifferential) {
  run_differential_round(chain_fixture(), 0xfacade02);
}

TEST(ServeFuzzTest, PaperSchemaDifferential) {
  run_differential_round(paper_fixture(), 0xfacade03);
}

// ---- Adversarial near-misses ----------------------------------------------

/// Widen one numeric bound by a single step — the smallest change that
/// admits a row the view discarded.
ExprPtr widen_comparison(const ExprPtr& e) {
  if (e == nullptr || e->kind() != ExprKind::kComparison) return nullptr;
  const auto& c = static_cast<const ComparisonExpr&>(*e);
  if (c.lhs()->kind() != ExprKind::kColumn ||
      c.rhs()->kind() != ExprKind::kLiteral) {
    return nullptr;
  }
  const Value& v = static_cast<const LiteralExpr&>(*c.rhs()).value();
  if (v.type() != ValueType::kInt64) return nullptr;
  switch (c.op()) {
    case CompareOp::kGt:
    case CompareOp::kGe:
      return cmp(c.op(), c.lhs(), lit_i64(v.as_int64() - 1));
    case CompareOp::kLt:
    case CompareOp::kLe:
      return cmp(c.op(), c.lhs(), lit_i64(v.as_int64() + 1));
    default:
      return nullptr;
  }
}

QuerySpec rebind(const Catalog& catalog, const QuerySpec& base,
                 const std::string& name, const std::vector<ExprPtr>& where,
                 std::vector<std::string> relations,
                 std::vector<std::string> select_list) {
  return QuerySpec::bind(catalog, name, 1.0, std::move(relations),
                         conj(std::vector<ExprPtr>(where)),
                         std::move(select_list), base.group_by(),
                         base.aggregates());
}

/// For every workload query, derive near-miss variants that sit just
/// outside its covering view and assert the matcher refuses each one.
void run_near_misses(const Fixture& fx) {
  const DesignResult design = covered_design(fx.catalog, fx.workload);
  const MvppGraph& g = design.graph();
  const DeployedViewRegistry registry(g, design.selection.materialized,
                                      fx.db);
  int refused = 0;

  for (const NodeId qid : g.query_ids()) {
    const MvppNode& view_node = g.node(g.node(qid).children[0]);
    const DeployedView* deployed = registry.find(view_node.name);
    ASSERT_NE(deployed, nullptr) << view_node.name;
    const ViewDef& view = deployed->def;
    if (!view.matchable) continue;

    const auto it = std::find_if(
        fx.workload.begin(), fx.workload.end(),
        [&](const QuerySpec& q) { return q.name() == g.node(qid).name; });
    ASSERT_NE(it, fx.workload.end());
    const QuerySpec& base = *it;
    // The unperturbed template must match its own view — the near-miss
    // refusals below are meaningful only against a matching baseline.
    std::string why;
    ASSERT_TRUE(match_query_to_view(base, view, fx.catalog, &why).has_value())
        << fx.label << "/" << base.name() << ": " << why;

    std::vector<ExprPtr> joins;
    for (const JoinPredicate& j : base.joins()) joins.push_back(j.expr());
    const std::vector<std::string> select_list =
        base.has_aggregation() ? base.group_by() : base.projection();

    // (a) Predicate widened one step past the view's boundary: the
    // widened query admits rows the view discarded, so containment must
    // fail even though every column still exists in the view.
    for (std::size_t i = 0; i < base.selections().size(); ++i) {
      const ExprPtr widened = widen_comparison(base.selections()[i]);
      if (widened == nullptr) continue;
      std::vector<ExprPtr> where = joins;
      for (std::size_t j = 0; j < base.selections().size(); ++j) {
        where.push_back(j == i ? widened : base.selections()[j]);
      }
      const QuerySpec q = rebind(fx.catalog, base, base.name() + "_widened",
                                 where, base.relations(), select_list);
      EXPECT_FALSE(match_query_to_view(q, view, fx.catalog, &why).has_value())
          << fx.label << ": widened " << widened->to_string()
          << " wrongly matched " << view.name;
      ++refused;
    }

    // (b) An extra FROM relation: relation sets differ, no rewrite.
    std::vector<ExprPtr> where = joins;
    for (const ExprPtr& s : base.selections()) where.push_back(s);
    for (const std::string& r : fx.catalog.relation_names()) {
      if (std::find(base.relations().begin(), base.relations().end(), r) !=
          base.relations().end()) {
        continue;
      }
      std::vector<std::string> relations = base.relations();
      relations.push_back(r);
      const QuerySpec q = rebind(fx.catalog, base, base.name() + "_extra_rel",
                                 where, std::move(relations), select_list);
      EXPECT_FALSE(match_query_to_view(q, view, fx.catalog, &why).has_value());
      EXPECT_EQ(why, "relation sets differ") << fx.label;
      ++refused;
      break;
    }

    // (c) A grouping (aggregate views) or projection (SPJ views) column
    // the view never stored.
    const Schema joint = joint_base_schema(fx.catalog, view.relations);
    std::string unstored;
    for (const Attribute& a : joint.attributes()) {
      if (!view.output.contains(a.qualified())) {
        unstored = a.qualified();
        break;
      }
    }
    if (unstored.empty()) continue;
    if (base.has_aggregation()) {
      std::vector<std::string> groups = base.group_by();
      groups.push_back(unstored);
      const QuerySpec q = QuerySpec::bind(
          fx.catalog, base.name() + "_finer", 1.0, base.relations(),
          conj(std::vector<ExprPtr>(where)), groups, groups,
          base.aggregates());
      EXPECT_FALSE(match_query_to_view(q, view, fx.catalog, &why).has_value());
      EXPECT_EQ(why, "grouping column not stored") << fx.label;
    } else {
      std::vector<std::string> proj = base.projection();
      proj.push_back(unstored);
      const QuerySpec q = QuerySpec::bind(
          fx.catalog, base.name() + "_wide_proj", 1.0, base.relations(),
          conj(std::vector<ExprPtr>(where)), proj);
      EXPECT_FALSE(match_query_to_view(q, view, fx.catalog, &why).has_value());
      EXPECT_EQ(why, "projection column not stored") << fx.label;
    }
    ++refused;
  }

  EXPECT_GT(refused, 0) << fx.label << ": no near-miss variant derived";
}

TEST(ServeFuzzTest, StarNearMissesRefuse) { run_near_misses(star_fixture()); }

TEST(ServeFuzzTest, ChainNearMissesRefuse) {
  run_near_misses(chain_fixture());
}

TEST(ServeFuzzTest, PaperNearMissesRefuse) {
  run_near_misses(paper_fixture());
}

}  // namespace
}  // namespace mvd
