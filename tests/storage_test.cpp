// Tests for src/storage: values, tables, databases.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/storage/database.hpp"
#include "src/storage/table.hpp"
#include "src/storage/value.hpp"

namespace mvd {
namespace {

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Value::int64(42).as_int64(), 42);
  EXPECT_DOUBLE_EQ(Value::real(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::string("hi").as_string(), "hi");
  EXPECT_TRUE(Value::boolean(true).as_bool());
  EXPECT_EQ(Value::date(100).as_int64(), 100);
}

TEST(ValueTest, WrongAccessorThrows) {
  EXPECT_THROW(Value::string("x").as_int64(), ExecError);
  EXPECT_THROW(Value::int64(1).as_string(), ExecError);
  EXPECT_THROW(Value::int64(1).as_bool(), ExecError);
  EXPECT_THROW(Value::string("x").as_double(), ExecError);
}

TEST(ValueTest, NumericCoercionAcrossKinds) {
  EXPECT_DOUBLE_EQ(Value::int64(3).as_double(), 3.0);
  EXPECT_DOUBLE_EQ(Value::date(7).as_double(), 7.0);
  // int 1 and double 1.0 compare equal and hash equal.
  EXPECT_EQ(Value::int64(1), Value::real(1.0));
  EXPECT_EQ(Value::int64(1).hash(), Value::real(1.0).hash());
}

TEST(ValueTest, Comparisons) {
  EXPECT_TRUE(Value::int64(1).compare(Value::int64(2)) < 0);
  EXPECT_TRUE(Value::string("b").compare(Value::string("a")) > 0);
  EXPECT_TRUE(Value::boolean(false).compare(Value::boolean(false)) == 0);
  EXPECT_TRUE(Value::boolean(false).compare(Value::boolean(true)) < 0);
  EXPECT_THROW(Value::string("x").compare(Value::int64(1)), ExecError);
  EXPECT_THROW(Value::boolean(true).compare(Value::int64(1)), ExecError);
}

TEST(ValueTest, EqualityAcrossIncompatibleTypesIsFalseNotThrow) {
  EXPECT_FALSE(Value::string("1") == Value::int64(1));
  EXPECT_FALSE(Value::boolean(true) == Value::int64(1));
}

TEST(ValueTest, DateCivilRoundTrip) {
  for (const auto [y, m, d] : {std::tuple{1970, 1, 1}, {1996, 7, 1},
                               {2000, 2, 29}, {1969, 12, 31}, {2026, 7, 7}}) {
    const std::int64_t days = Value::days_from_civil(y, m, d);
    int yy = 0, mm = 0, dd = 0;
    Value::civil_from_days(days, yy, mm, dd);
    EXPECT_EQ(yy, y);
    EXPECT_EQ(mm, m);
    EXPECT_EQ(dd, d);
  }
  EXPECT_EQ(Value::days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(Value::days_from_civil(1970, 1, 2), 1);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::int64(5).to_string(), "5");
  EXPECT_EQ(Value::string("LA").to_string(), "'LA'");
  EXPECT_EQ(Value::boolean(true).to_string(), "true");
  EXPECT_EQ(Value::date_ymd(1996, 7, 1).to_string(), "1996-07-01");
}

Schema two_col_schema() {
  return Schema({{"id", ValueType::kInt64, "T"},
                 {"name", ValueType::kString, "T"}});
}

TEST(TableTest, AppendAndRead) {
  Table t(two_col_schema(), 10.0);
  t.append({Value::int64(1), Value::string("a")});
  t.append({Value::int64(2), Value::string("b")});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.row(1)[1].as_string(), "b");
}

TEST(TableTest, ArityAndTypeChecked) {
  Table t(two_col_schema());
  EXPECT_THROW(t.append({Value::int64(1)}), ExecError);
  EXPECT_THROW(t.append({Value::string("x"), Value::string("y")}), ExecError);
}

TEST(TableTest, DateAndInt64Interchangeable) {
  Table t(Schema({{"d", ValueType::kDate, "T"}}));
  t.append({Value::int64(5)});
  t.append({Value::date(6)});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, BlockAccounting) {
  Table t(two_col_schema(), 10.0);
  EXPECT_DOUBLE_EQ(t.blocks(), 0.0);
  for (int i = 0; i < 11; ++i) t.append({Value::int64(i), Value::string("x")});
  EXPECT_DOUBLE_EQ(t.blocks(), 2.0);  // ceil(11/10)
}

TEST(TableTest, ComputeStatsDistinctAndRange) {
  Table t(two_col_schema(), 10.0);
  for (int i = 0; i < 10; ++i) {
    t.append({Value::int64(i % 3), Value::string(i % 2 ? "odd" : "even")});
  }
  const RelationStats stats = t.compute_stats();
  EXPECT_DOUBLE_EQ(stats.rows, 10.0);
  EXPECT_DOUBLE_EQ(*stats.blocks, 1.0);
  EXPECT_DOUBLE_EQ(*stats.column("id")->distinct, 3.0);
  EXPECT_DOUBLE_EQ(*stats.column("name")->distinct, 2.0);
  EXPECT_DOUBLE_EQ(*stats.column("id")->min_value, 0.0);
  EXPECT_DOUBLE_EQ(*stats.column("id")->max_value, 2.0);
  EXPECT_FALSE(stats.column("name")->min_value.has_value());
}

TEST(TableTest, PreviewTruncates) {
  Table t(two_col_schema());
  for (int i = 0; i < 5; ++i) t.append({Value::int64(i), Value::string("v")});
  const std::string p = t.preview(2);
  EXPECT_NE(p.find("3 more rows"), std::string::npos);
}

TEST(DatabaseTest, AddLookupDrop) {
  Database db;
  db.add_table("T", Table(two_col_schema()));
  EXPECT_TRUE(db.has_table("T"));
  EXPECT_THROW(db.add_table("T", Table(two_col_schema())), ExecError);
  db.put_table("T", Table(two_col_schema()));  // replace OK
  EXPECT_EQ(db.table("T").row_count(), 0u);
  EXPECT_THROW(db.table("missing"), ExecError);
  EXPECT_EQ(db.table_names(), std::vector<std::string>{"T"});
  db.drop_table("T");
  EXPECT_FALSE(db.has_table("T"));
  EXPECT_THROW(db.drop_table("T"), ExecError);
}

}  // namespace
}  // namespace mvd
