// Determinism of the multi-threaded drivers at a fixed thread count —
// the targets the ThreadSanitizer CI job runs: parallel exhaustive /
// budgeted subset enumeration and parallel rotation building must be
// bit-identical to their serial counterparts.
#include <gtest/gtest.h>

#include "src/mvpp/builder.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class ParallelPathsTest : public ::testing::Test {
 protected:
  ParallelPathsTest()
      : catalog_(make_paper_catalog()),
        cost_model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(cost_model_)),
        eval_(graph_) {}

  Catalog catalog_;
  CostModel cost_model_;
  MvppGraph graph_;
  MvppEvaluator eval_;
};

TEST_F(ParallelPathsTest, ExhaustiveWithFourThreadsMatchesSerial) {
  const SelectionResult serial = exhaustive_optimal(eval_, 24, 1);
  const SelectionResult parallel = exhaustive_optimal(eval_, 24, 4);
  EXPECT_EQ(parallel.materialized, serial.materialized);
  EXPECT_EQ(parallel.costs.total(), serial.costs.total());
}

TEST_F(ParallelPathsTest, BudgetedWithFourThreadsMatchesSerial) {
  const double budget =
      total_view_blocks(graph_, select_all_operations(eval_).materialized) / 3;
  const SelectionResult serial = budgeted_optimal(eval_, budget, 22, 1);
  const SelectionResult parallel = budgeted_optimal(eval_, budget, 22, 4);
  EXPECT_EQ(parallel.materialized, serial.materialized);
  EXPECT_EQ(parallel.costs.total(), serial.costs.total());
  EXPECT_LE(total_view_blocks(graph_, parallel.materialized), budget);
}

TEST(ParallelRotationsTest, FourThreadBuildMatchesSerial) {
  const PaperExample example = make_paper_example();
  const CostModel cost_model(example.catalog, paper_cost_config());
  const Optimizer optimizer(cost_model);
  const MvppBuilder builder(optimizer);

  const std::vector<MvppBuildResult> serial =
      builder.build_all_rotations(example.queries, 1);
  const std::vector<MvppBuildResult> parallel =
      builder.build_all_rotations(example.queries, 4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].merge_order, serial[i].merge_order);
    ASSERT_EQ(parallel[i].graph.size(), serial[i].graph.size());
    for (NodeId v = 0; v < static_cast<NodeId>(serial[i].graph.size()); ++v) {
      const MvppNode& a = serial[i].graph.node(v);
      const MvppNode& b = parallel[i].graph.node(v);
      EXPECT_EQ(a.sig, b.sig);
      EXPECT_EQ(a.full_cost, b.full_cost);
    }
  }
}

}  // namespace
}  // namespace mvd
