// Tests for the observability subsystem (src/obs): registry semantics,
// histogram bucket edges, the snapshot diff algebra, span nesting, and
// the Chrome trace-event JSON shape. ObsTsanTest is additionally run
// under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/common/error.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace mvd {
namespace {

/// Scoped trace-level override; restores env resolution on exit.
class ScopedTraceLevel {
 public:
  explicit ScopedTraceLevel(TraceLevel level) { set_trace_level(level); }
  ~ScopedTraceLevel() { set_trace_level(std::nullopt); }
};

TEST(ObsMetricsTest, CounterGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a/b/c");
  c.add(2.5);
  c.increment();
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Re-requesting a name returns the same handle.
  EXPECT_EQ(&reg.counter("a/b/c"), &c);

  Gauge& g = reg.gauge("a/b/g");
  g.set(7);
  g.set(4);
  EXPECT_DOUBLE_EQ(g.value(), 4);
}

TEST(ObsMetricsTest, KindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), PlanError);
  EXPECT_THROW(reg.histogram("x", {1, 2}), PlanError);
}

TEST(ObsMetricsTest, HistogramBucketEdges) {
  MetricsRegistry reg;
  // Inclusive upper edges: v lands in the first bucket with v <= bound;
  // above the last bound goes to the implicit overflow bucket.
  Histogram& h = reg.histogram("h", {1.0, 10.0, 100.0});
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 0u);    // inclusive edge
  EXPECT_EQ(h.bucket_index(1.0001), 1u);
  EXPECT_EQ(h.bucket_index(10.0), 1u);
  EXPECT_EQ(h.bucket_index(100.0), 2u);
  EXPECT_EQ(h.bucket_index(1e9), 3u);    // overflow

  h.observe(0.5);
  h.observe(1.0);
  h.observe(50.0);
  h.observe(1000.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 0u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1051.5);

  // Bulk merge of locally tallied buckets.
  h.observe_bucketed({1, 0, 0, 0}, 0.25);
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1051.75);
}

TEST(ObsMetricsTest, SnapshotDiffAlgebra) {
  MetricsRegistry reg;
  reg.counter("c").add(10);
  reg.gauge("g").set(1);
  reg.histogram("h", {5.0}).observe(3);

  const MetricsSnapshot before = reg.snapshot();
  reg.counter("c").add(7);
  reg.gauge("g").set(42);
  reg.histogram("h", {5.0}).observe(100);
  reg.counter("fresh").add(2);  // absent from `before`
  const MetricsSnapshot after = reg.snapshot();

  const MetricsSnapshot d = after.diff(before);
  // Counters subtract; gauges keep the later value; new metrics pass
  // through unchanged.
  EXPECT_DOUBLE_EQ(d.value_of("c").value_or(-1), 7);
  EXPECT_DOUBLE_EQ(d.value_of("g").value_or(-1), 42);
  EXPECT_DOUBLE_EQ(d.value_of("fresh").value_or(-1), 2);
  // Histogram buckets subtract too.
  const MetricValue& h = d.metrics.at("h");
  ASSERT_EQ(h.bucket_counts.size(), 2u);
  EXPECT_EQ(h.bucket_counts[0], 0u);  // 3 was already there
  EXPECT_EQ(h.bucket_counts[1], 1u);  // the overflow observe(100)
  EXPECT_EQ(h.count, 1u);

  EXPECT_FALSE(d.value_of("missing").has_value());
  EXPECT_TRUE(d.contains("c"));

  // Render paths stay in sync with the metric set.
  EXPECT_NE(d.render_text().find("fresh"), std::string::npos);
  const Json j = d.to_json();
  EXPECT_TRUE(j.at("metrics").contains("c"));
}

TEST(ObsMetricsTest, ResetDropsEverything) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().metrics.empty());
}

TEST(ObsTraceTest, SpanNestingAndChromeJsonRoundTrip) {
  ScopedTraceLevel level(TraceLevel::kSpans);
  Tracer& tracer = Tracer::global();
  tracer.clear();

  {
    TraceSpan outer("test", "outer");
    outer.arg("n", 3.0);
    outer.arg("label", std::string("abc"));
    { TraceSpan inner("test", "inner"); }
    { MVD_TRACE_SPAN("test", "macro-span"); }  // gone under MVD_OBS_DISABLED
    tracer.counter("test/gauge", 5.0);
  }
  EXPECT_GE(tracer.event_count(), 3u);

  // The document must round-trip through the repo's own JSON parser and
  // carry the Chrome trace-event shape Perfetto expects.
  const std::string text = tracer.to_chrome_json().dump();
  const Json doc = Json::parse(text);
  ASSERT_TRUE(doc.contains("traceEvents"));
  const Json& events = doc.at("traceEvents");
  bool saw_meta = false, saw_outer = false, saw_inner = false,
       saw_macro = false, saw_counter = false;
  double outer_ts = 0, outer_dur = 0, inner_ts = 0, inner_dur = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") saw_meta = true;
    if (ph == "X" && e.at("name").as_string() == "outer") {
      saw_outer = true;
      outer_ts = e.at("ts").as_number();
      outer_dur = e.at("dur").as_number();
      EXPECT_EQ(e.at("cat").as_string(), "test");
      EXPECT_DOUBLE_EQ(e.at("args").at("n").as_number(), 3.0);
      EXPECT_EQ(e.at("args").at("label").as_string(), "abc");
    }
    if (ph == "X" && e.at("name").as_string() == "inner") {
      saw_inner = true;
      inner_ts = e.at("ts").as_number();
      inner_dur = e.at("dur").as_number();
    }
    if (ph == "X" && e.at("name").as_string() == "macro-span") {
      saw_macro = true;
    }
    if (ph == "C" && e.at("name").as_string() == "test/gauge") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(e.at("args").at("value").as_number(), 5.0);
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
#ifndef MVD_OBS_DISABLED
  EXPECT_TRUE(saw_macro);
#else
  EXPECT_FALSE(saw_macro);
#endif
  EXPECT_TRUE(saw_counter);
  // RAII scoping means the inner span nests strictly inside the outer.
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + 1e-6);
  tracer.clear();
}

TEST(ObsTraceTest, SpansAreFreeWhenOff) {
  set_trace_level(TraceLevel::kOff);
  Tracer& tracer = Tracer::global();
  tracer.clear();
  const std::size_t before = tracer.event_count();
  {
    MVD_TRACE_SPAN("test", "invisible");
    TraceSpan span("test", "also-invisible");
    EXPECT_FALSE(span.active());
    span.arg("n", 1.0);
  }
  EXPECT_EQ(tracer.event_count(), before);
  set_trace_level(std::nullopt);
}

// Run under ThreadSanitizer in CI: four threads hammer the same
// counter/gauge/histogram handles plus first-use creation through the
// registry mutex, and the tracer's per-thread buffers record spans
// concurrently with a snapshot/gather from the main thread.
TEST(ObsTsanTest, ConcurrentRegistryAndTracerAreRaceFree) {
  ScopedTraceLevel level(TraceLevel::kSpans);
  MetricsRegistry reg;
  Tracer& tracer = Tracer::global();
  tracer.clear();

  constexpr int kThreads = 4;
  constexpr int kIters = 2'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      Counter& c = reg.counter("shared/counter");
      Histogram& h = reg.histogram("shared/hist", {10.0, 100.0});
      for (int i = 0; i < kIters; ++i) {
        c.increment();
        reg.gauge("shared/gauge").set(static_cast<double>(i));
        h.observe(static_cast<double>(i % 200));
        // First-use creation races through the registry mutex.
        reg.counter("shared/per-thread/" + std::to_string(t)).increment();
        TraceSpan span("tsan", "work");
        span.arg("i", static_cast<double>(i));
      }
    });
  }
  // Concurrent snapshot + gather while workers are recording.
  for (int i = 0; i < 50; ++i) {
    (void)reg.snapshot();
    (void)tracer.event_count();
  }
  for (std::thread& w : workers) w.join();

  const MetricsSnapshot s = reg.snapshot();
  EXPECT_DOUBLE_EQ(s.value_of("shared/counter").value_or(0),
                   static_cast<double>(kThreads * kIters));
  EXPECT_EQ(s.metrics.at("shared/hist").count,
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_GE(tracer.event_count(),
            static_cast<std::size_t>(kThreads * kIters));
  (void)tracer.to_chrome_json();
  tracer.clear();
}

}  // namespace
}  // namespace mvd
