// Property sweeps: SQL round-tripping (spec -> to_sql -> parse ->
// identical spec) and cost-model selectivity laws, parameterized across
// generated workloads and predicates.
#include <gtest/gtest.h>

#include "src/cost/cost_model.hpp"
#include "src/sql/parser.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

// ---- SQL round-trip ---------------------------------------------------

void expect_roundtrip(const Catalog& catalog, const QuerySpec& original) {
  const std::string sql = original.to_sql();
  const QuerySpec reparsed =
      parse_and_bind(catalog, original.name(), original.frequency(), sql);
  EXPECT_EQ(reparsed.relations(), original.relations()) << sql;
  EXPECT_EQ(reparsed.projection(), original.projection()) << sql;
  EXPECT_EQ(reparsed.group_by(), original.group_by()) << sql;
  EXPECT_EQ(reparsed.aggregates().size(), original.aggregates().size()) << sql;
  // Join sets match as canonical strings.
  auto canon = [](const QuerySpec& q) {
    std::multiset<std::string> out;
    for (const JoinPredicate& j : q.joins()) out.insert(j.canonical());
    return out;
  };
  EXPECT_EQ(canon(reparsed), canon(original)) << sql;
  // Selection conjunct sets match up to normalization.
  auto sels = [](const QuerySpec& q) {
    std::multiset<std::string> out;
    for (const ExprPtr& s : q.selections()) {
      out.insert(normalize(s)->to_string());
    }
    return out;
  };
  EXPECT_EQ(sels(reparsed), sels(original)) << sql;
}

TEST(SqlRoundTripTest, PaperQueries) {
  const PaperExample ex = make_paper_example();
  for (const QuerySpec& q : ex.queries) expect_roundtrip(ex.catalog, q);
  for (const QuerySpec& q : make_pushdown_variant_queries(ex.catalog)) {
    expect_roundtrip(ex.catalog, q);
  }
}

TEST(SqlRoundTripTest, AggregationQueries) {
  const Catalog catalog = make_paper_catalog();
  const QuerySpec q = parse_and_bind(
      catalog, "A", 2.0,
      "SELECT city, SUM(quantity) AS total, COUNT(*) AS n, MIN(date) AS d "
      "FROM Order, Customer WHERE Order.Cid = Customer.Cid AND "
      "quantity > 100 GROUP BY city");
  expect_roundtrip(catalog, q);
  // Date literals must come back out in parseable DATE '...' form.
  const QuerySpec dated = parse_and_bind(
      catalog, "D", 1.0,
      "SELECT date FROM Order WHERE date > DATE '1996-07-01'");
  EXPECT_NE(dated.to_sql().find("DATE '1996-07-01'"), std::string::npos);
  expect_roundtrip(catalog, dated);
}

class RoundTripSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripSweepTest, GeneratedStarQueries) {
  StarSchemaOptions schema;
  const Catalog catalog = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = 8;
  qopts.seed = GetParam();
  qopts.aggregation_probability = 0.3;
  for (const QuerySpec& q : generate_star_queries(catalog, schema, qopts)) {
    expect_roundtrip(catalog, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSweepTest,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u));

// ---- Selectivity laws ---------------------------------------------------

class SelectivityLawTest : public ::testing::TestWithParam<const char*> {
 protected:
  SelectivityLawTest()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()) {}

  double sel(const std::string& relation, const ExprPtr& pred) {
    const PlanPtr s = make_scan(catalog_, relation);
    return model_.selectivity(bind_expr(pred, s->output_schema()),
                              model_.estimate(s));
  }

  Catalog catalog_;
  CostModel model_;
};

TEST_P(SelectivityLawTest, LawsHoldForEveryPredicate) {
  const std::string relation = "Order";
  const ExprPtr p = parse_predicate(GetParam());
  const ExprPtr q = parse_predicate("quantity > 150");
  const double sp = sel(relation, p);
  const double sq = sel(relation, q);

  // Bounds.
  EXPECT_GE(sp, 0.0);
  EXPECT_LE(sp, 1.0);
  // Complement.
  EXPECT_NEAR(sel(relation, neg(p)), 1.0 - sp, 1e-9);
  // Conjunction no more selective than either conjunct (independence).
  const double s_and = sel(relation, conj({p, q}));
  EXPECT_LE(s_and, sp + 1e-9);
  EXPECT_LE(s_and, sq + 1e-9);
  // Disjunction at least as permissive as either disjunct.
  const double s_or = sel(relation, disj({p, q}));
  EXPECT_GE(s_or, sp - 1e-9);
  EXPECT_GE(s_or, sq - 1e-9);
  // Inclusion-exclusion under independence.
  EXPECT_NEAR(s_or, sp + sq - sp * sq, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, SelectivityLawTest,
    ::testing::Values("quantity > 100", "quantity <= 50", "quantity = 7",
                      "quantity <> 7", "date > DATE '1996-03-01'",
                      "Cid = 42", "quantity > 100 AND Cid = 1",
                      "quantity > 180 OR quantity < 20",
                      "NOT quantity > 100"));

TEST(SelectivityMonotoneTest, RangeCutsMoveMonotonically) {
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const PlanPtr s = make_scan(catalog, "Order");
  const NodeEstimate in = model.estimate(s);
  double previous = 1.0;
  for (int cut = 0; cut <= 220; cut += 20) {
    const double sel = model.selectivity(
        bind_expr(gt(col("quantity"), lit_i64(cut)), s->output_schema()), in);
    EXPECT_LE(sel, previous + 1e-9) << cut;
    previous = sel;
  }
}

}  // namespace
}  // namespace mvd
