// Tests for src/distributed: topology bookkeeping and the
// communication-aware evaluator.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/distributed/distributed_evaluator.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

TEST(TopologyTest, DefaultsAndLinks) {
  SiteTopology topo({"hq", "east", "west"}, 2.0);
  EXPECT_TRUE(topo.has_site("hq"));
  EXPECT_FALSE(topo.has_site("north"));
  EXPECT_DOUBLE_EQ(topo.transfer_cost("hq", "hq"), 0.0);
  EXPECT_DOUBLE_EQ(topo.transfer_cost("hq", "east"), 2.0);
  topo.set_link_cost("hq", "east", 0.5);
  EXPECT_DOUBLE_EQ(topo.transfer_cost("east", "hq"), 0.5);  // symmetric
  EXPECT_DOUBLE_EQ(topo.transfer_cost("east", "west"), 2.0);
}

TEST(TopologyTest, Validation) {
  EXPECT_THROW(SiteTopology({}), PlanError);
  EXPECT_THROW(SiteTopology({"a", "a"}), PlanError);
  EXPECT_THROW(SiteTopology({"a"}, -1.0), PlanError);
  SiteTopology topo({"a", "b"});
  EXPECT_THROW(topo.set_link_cost("a", "zz", 1.0), PlanError);
  EXPECT_THROW(topo.set_link_cost("a", "b", -1.0), PlanError);
  EXPECT_THROW(topo.place_relation("R", "zz"), PlanError);
  EXPECT_THROW(topo.place_query("Q", "zz"), PlanError);
}

TEST(TopologyTest, PlacementDefaultsToFirstSite) {
  SiteTopology topo({"a", "b"});
  EXPECT_EQ(topo.relation_site("R"), "a");
  EXPECT_EQ(topo.query_site("Q"), "a");
  topo.place_relation("R", "b");
  topo.place_query("Q", "b");
  EXPECT_EQ(topo.relation_site("R"), "b");
  EXPECT_EQ(topo.query_site("Q"), "b");
}

class DistributedEvaluatorTest : public ::testing::Test {
 protected:
  DistributedEvaluatorTest()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(model_)) {}

  SiteTopology split_topology(double link_cost) const {
    SiteTopology topo({"hq", "remote"}, link_cost);
    // Order and Customer live remotely; everything else (and all query
    // consumers) at hq.
    topo.place_relation("Order", "remote");
    topo.place_relation("Customer", "remote");
    for (const std::string& r : {"Product", "Division", "Part"}) {
      topo.place_relation(r, "hq");
    }
    return topo;
  }

  NodeId id(const std::string& name) const {
    return graph_.find_by_name(name);
  }

  Catalog catalog_;
  CostModel model_;
  MvppGraph graph_;
};

TEST_F(DistributedEvaluatorTest, ZeroTransferMatchesBaseEvaluator) {
  const MvppEvaluator base(graph_);
  const DistributedMvppEvaluator dist(graph_, split_topology(0.0));
  for (NodeId v : graph_.operation_ids()) {
    EXPECT_DOUBLE_EQ(dist.produce_cost(v, {}), base.produce_cost(v, {}))
        << graph_.node(v).name;
  }
  EXPECT_DOUBLE_EQ(dist.total_cost({}), base.total_cost({}));
}

TEST_F(DistributedEvaluatorTest, SiteAssignmentFollowsInputs) {
  const DistributedMvppEvaluator dist(graph_, split_topology(1.0));
  // tmp4 = Order |x| Customer: both inputs remote -> computed remotely.
  EXPECT_EQ(dist.site_of(id("tmp4")), "remote");
  // tmp1/tmp2 built from hq relations.
  EXPECT_EQ(dist.site_of(id("tmp1")), "hq");
  EXPECT_EQ(dist.site_of(id("tmp2")), "hq");
  // tmp6 joins hq tmp2 (100 blocks) with remote tmp5 (2.5k blocks): the
  // bigger input is remote, so the join runs remotely.
  EXPECT_EQ(dist.site_of(id("tmp6")), "remote");
}

TEST_F(DistributedEvaluatorTest, TransferCostsIncreaseWithLinkCost) {
  const DistributedMvppEvaluator cheap(graph_, split_topology(0.5));
  const DistributedMvppEvaluator pricey(graph_, split_topology(5.0));
  EXPECT_LT(cheap.total_cost({}), pricey.total_cost({}));
  // Queries over hq-only data are unaffected by the link cost.
  const NodeId q1 = graph_.find_by_name("Q1");
  EXPECT_DOUBLE_EQ(cheap.answer_cost(q1, {}), pricey.answer_cost(q1, {}));
}

TEST_F(DistributedEvaluatorTest, ViewPlacementFollowsReadVsRefreshTradeoff) {
  const DistributedMvppEvaluator dist(graph_, split_topology(2.0));
  const NodeId q4 = graph_.find_by_name("Q4");
  const NodeId result4 = id("result4");
  // result4 is computed remotely but read 5x per period at hq and
  // refreshed once: placement stores it at hq, so answering reads it
  // locally...
  EXPECT_EQ(dist.site_of(result4), "remote");
  EXPECT_EQ(dist.storage_site_of(result4), "hq");
  const MaterializedSet m{result4};
  EXPECT_DOUBLE_EQ(dist.answer_cost(q4, m), graph_.node(result4).blocks);
  // ...while each refresh pays the compute cost plus shipping the view to
  // its storage site.
  const double expected_maintenance =
      dist.produce_cost(result4, m) + graph_.node(result4).blocks * 2.0;
  EXPECT_DOUBLE_EQ(dist.maintenance_cost(result4, m), expected_maintenance);
}

TEST_F(DistributedEvaluatorTest, RarelyReadViewStaysAtComputeSite) {
  // Crank the update rate: a view refreshed far more often than read is
  // stored where it is computed.
  SiteTopology topo = split_topology(2.0);
  Catalog catalog = make_paper_catalog();
  catalog.set_update_frequency("Order", 100.0);
  const CostModel model(catalog, paper_cost_config());
  MvppGraph g = build_figure3_mvpp(model);
  g.set_frequency(g.find_by_name("Order"), 100.0);
  const DistributedMvppEvaluator dist(g, topo);
  EXPECT_EQ(dist.storage_site_of(g.find_by_name("result4")), "remote");
}

TEST_F(DistributedEvaluatorTest, SelectionAlgorithmsRunPolymorphically) {
  const DistributedMvppEvaluator dist(graph_, split_topology(3.0));
  const SelectionResult yang = yang_heuristic(dist);
  const SelectionResult greedy = greedy_incremental(dist);
  const SelectionResult optimal = exhaustive_optimal(dist);
  EXPECT_LE(optimal.costs.total(), yang.costs.total() + 1e-6);
  EXPECT_LE(optimal.costs.total(), greedy.costs.total() + 1e-6);
  EXPECT_LE(yang.costs.total(), dist.total_cost({}) + 1e-6);
}

TEST_F(DistributedEvaluatorTest, CommunicationAwareDesignDiffersFromOblivious) {
  // With expensive links, the communication-aware optimum can differ from
  // the site-oblivious one; at minimum its distributed cost is no worse
  // than evaluating the oblivious choice distributedly.
  const MvppEvaluator oblivious(graph_);
  const DistributedMvppEvaluator dist(graph_, split_topology(10.0));
  const MaterializedSet oblivious_choice =
      exhaustive_optimal(oblivious).materialized;
  const MaterializedSet aware_choice = exhaustive_optimal(dist).materialized;
  EXPECT_LE(dist.total_cost(aware_choice),
            dist.total_cost(oblivious_choice) + 1e-6);
}

TEST_F(DistributedEvaluatorTest, MaintenanceWithoutReusePaysFullDistributedCost) {
  const SiteTopology topo = split_topology(2.0);
  const DistributedMvppEvaluator reuse(
      graph_, topo, {MaintenancePolicy::Mode::kBatchRecompute, true});
  const DistributedMvppEvaluator no_reuse(
      graph_, topo, {MaintenancePolicy::Mode::kBatchRecompute, false});
  const MaterializedSet m{id("tmp4"), id("result4")};
  EXPECT_LT(reuse.maintenance_cost(id("result4"), m),
            no_reuse.maintenance_cost(id("result4"), m));
}

}  // namespace
}  // namespace mvd
