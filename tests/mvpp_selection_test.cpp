// Tests for src/mvpp/selection: the Figure 9 heuristic (walkthrough
// fidelity + options), the baselines, and cross-algorithm properties on
// generated workloads.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/mvpp/builder.hpp"
#include "src/mvpp/selection.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(model_)),
        eval_(graph_) {}

  std::set<std::string> names(const MaterializedSet& m) const {
    std::set<std::string> out;
    for (NodeId v : m) out.insert(graph_.node(v).name);
    return out;
  }

  Catalog catalog_;
  CostModel model_;
  MvppGraph graph_;
  MvppEvaluator eval_;
};

TEST_F(SelectionTest, YangSelectsTmp2AndTmp4) {
  // The Section 4.3 headline result.
  const SelectionResult r = yang_heuristic(eval_);
  EXPECT_EQ(names(r.materialized), (std::set<std::string>{"tmp2", "tmp4"}));
}

TEST_F(SelectionTest, YangTraceMatchesWalkthroughOrder) {
  const SelectionResult r = yang_heuristic(eval_);
  ASSERT_FALSE(r.trace.empty());
  // LV = <tmp4, result4, tmp7, tmp2, result1, tmp1> — the paper's order.
  const std::string& lv = r.trace.front();
  const std::vector<std::string> expected_order{"tmp4",    "result4", "tmp7",
                                                "tmp2",    "result1", "tmp1"};
  std::size_t pos = 0;
  for (const std::string& name : expected_order) {
    const std::size_t at = lv.find(name + "(", pos);
    EXPECT_NE(at, std::string::npos) << name << " missing/misplaced in " << lv;
    pos = at;
  }
  // tmp4 accepted first, result4 rejected next.
  EXPECT_NE(r.trace[1].find("tmp4"), std::string::npos);
  EXPECT_NE(r.trace[1].find("materialize"), std::string::npos);
  EXPECT_NE(r.trace[2].find("result4"), std::string::npos);
  EXPECT_NE(r.trace[2].find("reject"), std::string::npos);
}

TEST_F(SelectionTest, BranchPruningRemovesTmp7) {
  const SelectionResult with = yang_heuristic(eval_);
  // tmp7 must never be visited with pruning on (it lies on result4's
  // branch).
  for (const std::string& line : with.trace) {
    EXPECT_EQ(line.find("tmp7: Cs"), std::string::npos) << line;
  }
  // With pruning off, tmp7 gets its own Cs evaluation.
  const SelectionResult without =
      yang_heuristic(eval_, {.branch_pruning = false});
  bool visited = false;
  for (const std::string& line : without.trace) {
    if (line.find("tmp7: Cs") != std::string::npos) visited = true;
  }
  EXPECT_TRUE(visited);
}

TEST_F(SelectionTest, TrivialStrategies) {
  EXPECT_TRUE(select_nothing(eval_).materialized.empty());
  const SelectionResult all_q = select_all_query_results(eval_);
  EXPECT_EQ(names(all_q.materialized),
            (std::set<std::string>{"result1", "result2", "result3",
                                   "result4"}));
  const SelectionResult all_ops = select_all_operations(eval_);
  EXPECT_EQ(all_ops.materialized.size(), graph_.operation_ids().size());
}

TEST_F(SelectionTest, ExhaustiveIsOptimal) {
  const SelectionResult opt = exhaustive_optimal(eval_);
  // No listed strategy may beat it.
  for (const SelectionResult& r :
       {select_nothing(eval_), select_all_query_results(eval_),
        select_all_operations(eval_), yang_heuristic(eval_),
        greedy_incremental(eval_)}) {
    EXPECT_LE(opt.costs.total(), r.costs.total() + 1e-6) << r.algorithm;
  }
}

TEST_F(SelectionTest, ExhaustiveRespectsCandidateLimit) {
  EXPECT_THROW(exhaustive_optimal(eval_, 3), PlanError);
}

TEST_F(SelectionTest, GreedyNeverWorseThanTrivialStrategies) {
  const SelectionResult g = greedy_incremental(eval_);
  EXPECT_LE(g.costs.total(), select_nothing(eval_).costs.total() + 1e-6);
  EXPECT_LE(g.costs.total(),
            select_all_query_results(eval_).costs.total() + 1e-6);
}

TEST_F(SelectionTest, AnnealingDeterministicPerSeed) {
  const SelectionResult a = simulated_annealing(eval_, {.seed = 3});
  const SelectionResult b = simulated_annealing(eval_, {.seed = 3});
  EXPECT_EQ(a.materialized, b.materialized);
  EXPECT_DOUBLE_EQ(a.costs.total(), b.costs.total());
}

TEST_F(SelectionTest, AnnealingNeverWorseThanGreedySeed) {
  const SelectionResult sa = simulated_annealing(eval_, {.seed = 5});
  EXPECT_LE(sa.costs.total(),
            greedy_incremental(eval_).costs.total() + 1e-6);
}

TEST_F(SelectionTest, BranchAndBoundMatchesExhaustive) {
  const SelectionResult bnb = branch_and_bound_optimal(eval_);
  const SelectionResult brute = exhaustive_optimal(eval_);
  EXPECT_DOUBLE_EQ(bnb.costs.total(), brute.costs.total());
  EXPECT_EQ(bnb.materialized, brute.materialized);
}

TEST_F(SelectionTest, BranchAndBoundPrunes) {
  const SelectionResult bnb = branch_and_bound_optimal(eval_);
  ASSERT_FALSE(bnb.trace.empty());
  // 11 candidates -> 4095 search nodes unpruned; the bound must cut that
  // substantially.
  const std::string& line = bnb.trace.front();
  const std::size_t visited = std::stoul(line.substr(line.find("visited ") + 8));
  EXPECT_LT(visited, 4095u / 2);
}

TEST_F(SelectionTest, BranchAndBoundRespectsLimit) {
  EXPECT_THROW(branch_and_bound_optimal(eval_, 3), PlanError);
}

TEST_F(SelectionTest, BranchAndBoundMatchesExhaustiveUnderVariants) {
  // Per-update policy and indexed views change the cost surface; the
  // optimum must still agree with brute force.
  for (const MaintenancePolicy policy :
       {MaintenancePolicy{MaintenancePolicy::Mode::kPerUpdate, true},
        MaintenancePolicy{MaintenancePolicy::Mode::kBatchRecompute, false}}) {
    const MvppEvaluator eval(graph_, policy);
    EXPECT_DOUBLE_EQ(branch_and_bound_optimal(eval).costs.total(),
                     exhaustive_optimal(eval).costs.total());
  }
  const MvppEvaluator indexed(graph_, {}, IndexPolicy{true, 1.2});
  EXPECT_DOUBLE_EQ(branch_and_bound_optimal(indexed).costs.total(),
                   exhaustive_optimal(indexed).costs.total());
}

TEST_F(SelectionTest, LocalSearchNeverWorsensItsStart) {
  for (const SelectionResult& base :
       {yang_heuristic(eval_), select_nothing(eval_),
        select_all_query_results(eval_)}) {
    const SelectionResult polished = local_search(eval_, base.materialized);
    EXPECT_LE(polished.costs.total(), base.costs.total() + 1e-9)
        << base.algorithm;
  }
}

TEST_F(SelectionTest, LocalSearchReachesOptimumOnFigure3) {
  const SelectionResult polished =
      local_search(eval_, yang_heuristic(eval_).materialized);
  EXPECT_DOUBLE_EQ(polished.costs.total(),
                   exhaustive_optimal(eval_).costs.total());
}

TEST_F(SelectionTest, LocalSearchStopsAtLocalOptimum) {
  const SelectionResult r = local_search(eval_, {});
  // Re-running from the result makes no further moves.
  const SelectionResult again = local_search(eval_, r.materialized);
  EXPECT_TRUE(again.trace.empty());
  EXPECT_EQ(again.materialized, r.materialized);
}

TEST_F(SelectionTest, LocalSearchRejectsInvalidStart) {
  EXPECT_THROW(local_search(eval_, {graph_.base_ids().front()}), PlanError);
}

TEST_F(SelectionTest, ReportedCostsMatchIndependentEvaluation) {
  for (const SelectionResult& r :
       {yang_heuristic(eval_), greedy_incremental(eval_),
        exhaustive_optimal(eval_), select_all_query_results(eval_)}) {
    const MvppCosts again = eval_.evaluate(r.materialized);
    EXPECT_DOUBLE_EQ(r.costs.total(), again.total()) << r.algorithm;
  }
}

TEST_F(SelectionTest, EvaluateStrategyIsWhatIf) {
  const SelectionResult r = evaluate_strategy(
      eval_, "custom",
      {graph_.find_by_name("tmp2"), graph_.find_by_name("tmp4")});
  EXPECT_EQ(r.algorithm, "custom");
  EXPECT_DOUBLE_EQ(
      r.costs.total(),
      eval_.total_cost({graph_.find_by_name("tmp2"),
                        graph_.find_by_name("tmp4")}));
}

// Property sweeps over generated workloads: the heuristics must stay
// within the bounds of the trivial strategies and above the optimum.
struct SweepCase {
  std::uint64_t seed;
  std::size_t queries;
};

class SelectionSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SelectionSweepTest, AlgorithmSanityOnGeneratedWorkloads) {
  const SweepCase param = GetParam();
  StarSchemaOptions schema;
  schema.dimensions = 4;
  const Catalog catalog = make_star_catalog(schema);
  StarQueryOptions qopts;
  qopts.count = param.queries;
  qopts.seed = param.seed;
  const std::vector<QuerySpec> queries =
      generate_star_queries(catalog, schema, qopts);

  const CostModel model(catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const MvppBuildResult built =
      builder.build(queries, builder.initial_order(queries));
  const MvppEvaluator eval(built.graph);

  const double none = select_nothing(eval).costs.total();
  const double yang = yang_heuristic(eval).costs.total();
  const double greedy = greedy_incremental(eval).costs.total();
  const double optimal =
      built.graph.operation_ids().size() <= 18
          ? exhaustive_optimal(eval, 18).costs.total()
          : greedy;

  EXPECT_LE(yang, none + 1e-6);
  EXPECT_LE(greedy, none + 1e-6);
  EXPECT_LE(optimal, yang + 1e-6);
  EXPECT_LE(optimal, greedy + 1e-6);
  EXPECT_GT(optimal, 0);

  // Branch and bound agrees with brute force wherever the latter ran.
  if (built.graph.operation_ids().size() <= 18) {
    EXPECT_NEAR(branch_and_bound_optimal(eval).costs.total(), optimal, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SelectionSweepTest,
    ::testing::Values(SweepCase{1, 3}, SweepCase{2, 4}, SweepCase{3, 5},
                      SweepCase{4, 4}, SweepCase{5, 3}, SweepCase{6, 5},
                      SweepCase{7, 4}, SweepCase{8, 3}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_q" +
             std::to_string(info.param.queries);
    });

}  // namespace
}  // namespace mvd
