// Golden regression values for the paper reproduction: the Figure 3
// fixture's annotations, the Table 2 strategy costs, and the §4.3
// heuristic outcome are pinned exactly so any cost-model or algorithm
// change that silently shifts the reproduction fails loudly here.
// (EXPERIMENTS.md documents how these relate to the paper's own numbers.)
#include <gtest/gtest.h>

#include "src/mvpp/selection.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class Figure3Regression : public ::testing::Test {
 protected:
  Figure3Regression()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(model_)),
        eval_(graph_) {}

  const MvppNode& node(const std::string& name) {
    return graph_.node(graph_.find_by_name(name));
  }
  MaterializedSet set(std::initializer_list<const char*> names) {
    MaterializedSet m;
    for (const char* n : names) m.insert(graph_.find_by_name(n));
    return m;
  }

  Catalog catalog_;
  CostModel model_;
  MvppGraph graph_;
  MvppEvaluator eval_;
};

struct NodeGolden {
  const char* name;
  double rows;
  double blocks;
  double full_cost;
};

TEST_F(Figure3Regression, NodeAnnotations) {
  const NodeGolden golden[] = {
      {"tmp1", 100, 10, 250},
      {"tmp2", 600, 100, 30'260},
      {"tmp3", 1'600, 400, 1'030'360},
      {"tmp4", 25'000, 5'000, 12'002'000},
      {"tmp5", 12'534.2465753, 2'507, 12'007'000},
      {"tmp7", 12'562.8140704, 2'513, 12'008'000},
      {"result1", 600, 4, 30'360},
      {"result2", 1'600, 10, 1'030'760},
      {"result4", 12'562.8140704, 99, 12'010'513},
  };
  for (const NodeGolden& g : golden) {
    const MvppNode& n = node(g.name);
    EXPECT_NEAR(n.rows, g.rows, 0.01) << g.name;
    EXPECT_NEAR(n.blocks, g.blocks, 1) << g.name;
    EXPECT_NEAR(n.full_cost, g.full_cost, g.full_cost * 1e-3) << g.name;
  }
}

TEST_F(Figure3Regression, Table2StrategyTotals) {
  EXPECT_NEAR(eval_.total_cost({}), 70.697e6, 0.01e6);
  EXPECT_NEAR(eval_.total_cost(set({"tmp2", "tmp4", "tmp6"})), 12.827e6,
              0.01e6);
  EXPECT_NEAR(eval_.total_cost(set({"tmp2", "tmp6"})), 72.837e6, 0.01e6);
  EXPECT_NEAR(eval_.total_cost(set({"tmp2", "tmp4"})), 12.776e6, 0.01e6);
  EXPECT_NEAR(
      eval_.total_cost(set({"result1", "result2", "result3", "result4"})),
      25.359e6, 0.01e6);
}

TEST_F(Figure3Regression, WalkthroughGoldenValues) {
  // Cs(tmp4) = (5 + 0.8) * Ca - Ca = 4.8 * 12.002m.
  EXPECT_NEAR(eval_.weight(graph_.find_by_name("tmp4")), 57.6096e6, 1e3);
  const SelectionResult sel = yang_heuristic(eval_);
  EXPECT_EQ(to_string(graph_, sel.materialized), "{tmp2, tmp4}");
  EXPECT_NEAR(sel.costs.query_processing, 743'496, 500);
  EXPECT_NEAR(sel.costs.maintenance, 12'032'260, 500);
  // Exhaustive optimum adds the two cheap result views.
  const SelectionResult opt = exhaustive_optimal(eval_);
  EXPECT_EQ(to_string(graph_, opt.materialized),
            "{result1, result4, tmp2, tmp4}");
  EXPECT_NEAR(opt.costs.total(), 12.745e6, 0.01e6);
}

TEST_F(Figure3Regression, QueryFromScratchCosts) {
  // fq x Ca per query (the merge-ordering quantities).
  const double expected[][2] = {
      {10.0, 30'360}, {0.5, 1'030'760}, {0.8, 12'288'000}, {5.0, 12'010'513}};
  std::size_t i = 0;
  for (NodeId q : graph_.query_ids()) {
    EXPECT_NEAR(graph_.node(q).frequency, expected[i][0], 1e-9);
    EXPECT_NEAR(eval_.answer_cost(q, {}), expected[i][1],
                expected[i][1] * 2e-3)
        << graph_.node(q).name;
    ++i;
  }
}

TEST_F(Figure3Regression, GraphShapeFrozen) {
  EXPECT_EQ(graph_.size(), 20u);  // 5 bases + 11 operations + 4 roots
  EXPECT_EQ(graph_.operation_ids().size(), 11u);
  // tmp2 and tmp4 are the only shared intermediates (multiple parents).
  std::set<std::string> shared;
  for (const MvppNode& n : graph_.nodes()) {
    if (n.is_operation() && n.parents.size() > 1) shared.insert(n.name);
  }
  EXPECT_EQ(shared, (std::set<std::string>{"tmp2", "tmp4"}));
}

}  // namespace
}  // namespace mvd
