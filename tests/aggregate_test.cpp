// Tests for aggregation (GROUP BY + COUNT/SUM/MIN/MAX/AVG) across the
// stack: algebra construction, SQL parsing, cost estimation, execution,
// and aggregate views in the MVPP — the paper's "future work" extension.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/exec/executor.hpp"
#include "src/mvpp/builder.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/sql/parser.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class AggregateAlgebraTest : public ::testing::Test {
 protected:
  Catalog catalog_ = make_paper_catalog();
};

TEST_F(AggregateAlgebraTest, SchemaGroupsFirstThenAggregates) {
  const PlanPtr plan = make_aggregate(
      make_scan(catalog_, "Order"), {"Cid"},
      {AggSpec{AggFn::kSum, "quantity", ""},
       AggSpec{AggFn::kCount, "", ""}});
  const Schema& s = plan->output_schema();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.at(0).qualified(), "Order.Cid");
  EXPECT_EQ(s.at(1).name, "sum_quantity");
  EXPECT_EQ(s.at(1).type, ValueType::kDouble);
  EXPECT_EQ(s.at(2).name, "count_all");
  EXPECT_EQ(s.at(2).type, ValueType::kInt64);
}

TEST_F(AggregateAlgebraTest, MinMaxKeepInputType) {
  const PlanPtr plan = make_aggregate(
      make_scan(catalog_, "Customer"), {},
      {AggSpec{AggFn::kMin, "name", ""}, AggSpec{AggFn::kMax, "Cid", ""}});
  EXPECT_EQ(plan->output_schema().at(0).type, ValueType::kString);
  EXPECT_EQ(plan->output_schema().at(1).type, ValueType::kInt64);
}

TEST_F(AggregateAlgebraTest, Validation) {
  const PlanPtr scan = make_scan(catalog_, "Order");
  EXPECT_THROW(make_aggregate(scan, {"Cid"}, {}), PlanError);
  EXPECT_THROW(make_aggregate(scan, {"Cid", "Order.Cid"},
                              {AggSpec{AggFn::kCount, "", ""}}),
               PlanError);
  EXPECT_THROW(make_aggregate(scan, {},
                              {AggSpec{AggFn::kSum, "quantity", "x"},
                               AggSpec{AggFn::kCount, "", "x"}}),
               PlanError);
  EXPECT_THROW(make_aggregate(scan, {}, {AggSpec{AggFn::kSum, "nope", ""}}),
               BindError);
  // SUM over a string column is rejected.
  EXPECT_THROW(make_aggregate(make_scan(catalog_, "Customer"), {},
                              {AggSpec{AggFn::kSum, "name", ""}}),
               PlanError);
}

TEST_F(AggregateAlgebraTest, SignatureStableUnderOrdering) {
  const PlanPtr a = make_aggregate(
      make_scan(catalog_, "Order"), {"Cid"},
      {AggSpec{AggFn::kSum, "quantity", ""}, AggSpec{AggFn::kCount, "", ""}});
  const PlanPtr b = make_aggregate(
      make_scan(catalog_, "Order"), {"Cid"},
      {AggSpec{AggFn::kSum, "quantity", ""}, AggSpec{AggFn::kCount, "", ""}});
  EXPECT_EQ(signature(a), signature(b));
  const PlanPtr c = make_aggregate(make_scan(catalog_, "Order"), {"Cid"},
                                   {AggSpec{AggFn::kMax, "quantity", ""}});
  EXPECT_NE(signature(a), signature(c));
}

TEST(AggregateParserTest, ParsesFunctionsAliasesAndGroupBy) {
  const ParsedQuery q = parse_query(
      "SELECT Customer.city, COUNT(*), SUM(quantity) AS total, "
      "AVG(quantity), MIN(date), MAX(date) "
      "FROM Order, Customer WHERE Order.Cid = Customer.Cid "
      "GROUP BY Customer.city");
  EXPECT_EQ(q.select_list, std::vector<std::string>{"Customer.city"});
  ASSERT_EQ(q.aggregates.size(), 5u);
  EXPECT_EQ(q.aggregates[0].fn, AggFn::kCount);
  EXPECT_TRUE(q.aggregates[0].column.empty());
  EXPECT_EQ(q.aggregates[1].fn, AggFn::kSum);
  EXPECT_EQ(q.aggregates[1].alias, "total");
  EXPECT_EQ(q.aggregates[4].fn, AggFn::kMax);
  EXPECT_EQ(q.group_by, std::vector<std::string>{"Customer.city"});
}

TEST(AggregateParserTest, GlobalAggregateWithoutGroupBy) {
  const ParsedQuery q = parse_query("SELECT COUNT(*) FROM Product");
  EXPECT_TRUE(q.select_list.empty());
  ASSERT_EQ(q.aggregates.size(), 1u);
  EXPECT_TRUE(q.group_by.empty());
}

TEST(AggregateParserTest, Rejections) {
  EXPECT_THROW(parse_query("SELECT SUM(*) FROM T"), ParseError);
  EXPECT_THROW(parse_query("SELECT name FROM T GROUP BY name"), ParseError);
  EXPECT_THROW(parse_query("SELECT COUNT( FROM T"), ParseError);
  EXPECT_THROW(parse_query("SELECT COUNT(x) AS FROM T"), ParseError);
}

TEST(AggregateParserTest, AggregateNamesStillUsableAsColumns) {
  // "count" not followed by '(' is a plain column name.
  const ParsedQuery q = parse_query("SELECT count FROM T");
  EXPECT_EQ(q.select_list, std::vector<std::string>{"count"});
}

class AggregateBindTest : public ::testing::Test {
 protected:
  Catalog catalog_ = make_paper_catalog();
};

TEST_F(AggregateBindTest, BindsGroupsAndInputs) {
  const QuerySpec q = parse_and_bind(
      catalog_, "A", 2.0,
      "SELECT city, SUM(quantity) FROM Order, Customer "
      "WHERE Order.Cid = Customer.Cid GROUP BY city");
  EXPECT_TRUE(q.has_aggregation());
  EXPECT_EQ(q.group_by(), std::vector<std::string>{"Customer.city"});
  ASSERT_EQ(q.aggregates().size(), 1u);
  EXPECT_EQ(q.aggregates()[0].column, "Order.quantity");
  // projection() = survivors up to the aggregate.
  EXPECT_EQ(q.projection(),
            (std::vector<std::string>{"Customer.city", "Order.quantity"}));
}

TEST_F(AggregateBindTest, SelectColumnsMustBeGrouped) {
  EXPECT_THROW(parse_and_bind(catalog_, "A", 1.0,
                              "SELECT name, COUNT(*) FROM Customer "
                              "GROUP BY city"),
               BindError);
  EXPECT_THROW(
      QuerySpec::bind(catalog_, "A", 1.0, {"Customer"}, nullptr, {"city"},
                      {"city"}, {}),
      BindError);  // GROUP BY without aggregates
  EXPECT_THROW(parse_and_bind(catalog_, "A", 1.0,
                              "SELECT * FROM Customer GROUP BY city"),
               ParseError);  // * has no aggregates -> GROUP BY rejected
}

TEST_F(AggregateBindTest, ToStringShowsAggregates) {
  const QuerySpec q = parse_and_bind(
      catalog_, "A", 1.0,
      "SELECT city, COUNT(*) FROM Customer GROUP BY city");
  EXPECT_NE(q.to_string().find("count(*)"), std::string::npos);
  EXPECT_NE(q.to_string().find("GROUP BY Customer.city"), std::string::npos);
}

class AggregateCostTest : public ::testing::Test {
 protected:
  AggregateCostTest()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()) {}
  Catalog catalog_;
  CostModel model_;
};

TEST_F(AggregateCostTest, GroupCountBoundsCardinality) {
  // Grouping customers by city: 100 distinct cities.
  const PlanPtr plan = make_aggregate(make_scan(catalog_, "Customer"),
                                      {"city"},
                                      {AggSpec{AggFn::kCount, "", ""}});
  const NodeEstimate e = model_.estimate(plan);
  EXPECT_DOUBLE_EQ(e.rows, 100);
  EXPECT_LT(e.blocks, model_.estimate(make_scan(catalog_, "Customer")).blocks);
}

TEST_F(AggregateCostTest, GlobalAggregateIsOneRow) {
  const PlanPtr plan = make_aggregate(make_scan(catalog_, "Order"), {},
                                      {AggSpec{AggFn::kCount, "", ""}});
  EXPECT_DOUBLE_EQ(model_.estimate(plan).rows, 1);
}

TEST_F(AggregateCostTest, OpCostIsOneInputScan) {
  const PlanPtr plan = make_aggregate(make_scan(catalog_, "Order"), {"Cid"},
                                      {AggSpec{AggFn::kSum, "quantity", ""}});
  EXPECT_DOUBLE_EQ(model_.op_cost(plan), 6'000);
  EXPECT_DOUBLE_EQ(model_.full_cost(plan), 6'000);
}

class AggregateExecTest : public ::testing::Test {
 protected:
  AggregateExecTest() {
    Table t(Schema({{"k", ValueType::kString, "T"},
                    {"v", ValueType::kInt64, "T"}}),
            10.0);
    t.append({Value::string("a"), Value::int64(1)});
    t.append({Value::string("a"), Value::int64(3)});
    t.append({Value::string("b"), Value::int64(5)});
    db_.add_table("T", std::move(t));
    catalog_.add_relation("T", db_.table("T").schema(),
                          db_.table("T").compute_stats());
  }

  Database db_;
  Catalog catalog_{10.0};
};

TEST_F(AggregateExecTest, GroupedAggregation) {
  const Executor exec(db_);
  const Table r = exec.run(make_aggregate(
      make_scan(catalog_, "T"), {"k"},
      {AggSpec{AggFn::kCount, "", ""}, AggSpec{AggFn::kSum, "v", ""},
       AggSpec{AggFn::kMin, "v", ""}, AggSpec{AggFn::kMax, "v", ""},
       AggSpec{AggFn::kAvg, "v", ""}}));
  ASSERT_EQ(r.row_count(), 2u);
  // Groups come out keyed; find them.
  for (const Tuple& row : r.rows()) {
    if (row[0].as_string() == "a") {
      EXPECT_EQ(row[1].as_int64(), 2);
      EXPECT_DOUBLE_EQ(row[2].as_double(), 4.0);
      EXPECT_EQ(row[3].as_int64(), 1);
      EXPECT_EQ(row[4].as_int64(), 3);
      EXPECT_DOUBLE_EQ(row[5].as_double(), 2.0);
    } else {
      EXPECT_EQ(row[0].as_string(), "b");
      EXPECT_EQ(row[1].as_int64(), 1);
      EXPECT_DOUBLE_EQ(row[2].as_double(), 5.0);
    }
  }
}

TEST_F(AggregateExecTest, GlobalAggregateOverEmptyInput) {
  const Executor exec(db_);
  const Table r = exec.run(make_aggregate(
      make_select(make_scan(catalog_, "T"), eq(col("v"), lit_i64(999))), {},
      {AggSpec{AggFn::kCount, "", ""}, AggSpec{AggFn::kSum, "v", ""}}));
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.row(0)[0].as_int64(), 0);
  EXPECT_DOUBLE_EQ(r.row(0)[1].as_double(), 0.0);
}

TEST_F(AggregateExecTest, GroupedOverEmptyInputIsEmpty) {
  const Executor exec(db_);
  const Table r = exec.run(make_aggregate(
      make_select(make_scan(catalog_, "T"), eq(col("v"), lit_i64(999))),
      {"k"}, {AggSpec{AggFn::kCount, "", ""}}));
  EXPECT_EQ(r.row_count(), 0u);
}

// End-to-end: an aggregation workload through the designer — aggregate
// views materialize, deploy, answer and refresh correctly.
class AggregateMvppTest : public ::testing::Test {
 protected:
  AggregateMvppTest() {
    db_ = populate_paper_database(0.02, 31);
    DesignerOptions options;
    options.cost = paper_cost_config();
  }
  Database db_;
};

TEST_F(AggregateMvppTest, AggregateQueriesDesignDeployAnswer) {
  WarehouseDesigner designer(make_paper_catalog(), [] {
    DesignerOptions o;
    o.cost = paper_cost_config();
    return o;
  }());
  designer.add_query(
      "sales_by_city", 8.0,
      "SELECT city, SUM(quantity) AS total, COUNT(*) AS orders "
      "FROM Order, Customer WHERE Order.Cid = Customer.Cid "
      "GROUP BY city");
  designer.add_query(
      "big_orders", 2.0,
      "SELECT Customer.city, date FROM Order, Customer "
      "WHERE quantity > 100 AND Order.Cid = Customer.Cid");
  designer.add_query("order_count", 1.0, "SELECT COUNT(*) FROM Order");

  const DesignResult design = designer.design();
  design.graph().validate();

  // The aggregate node exists and shares the Order |x| Customer join with
  // the SPJ query.
  bool has_aggregate_node = false;
  for (const MvppNode& n : design.graph().nodes()) {
    if (n.kind == MvppNodeKind::kAggregate) has_aggregate_node = true;
  }
  EXPECT_TRUE(has_aggregate_node);

  designer.deploy(design, db_);
  const Executor exec(db_);
  for (const QuerySpec& q : designer.queries()) {
    const Table got = designer.answer(design, q.name(), db_);
    const Table expected = exec.run(canonical_plan(designer.catalog(), q));
    EXPECT_TRUE(same_bag(expected, got)) << q.name();
  }
  // Aggregate results have the declared output shape.
  const Table by_city = designer.answer(design, "sales_by_city", db_);
  ASSERT_EQ(by_city.schema().size(), 3u);
  EXPECT_EQ(by_city.schema().at(1).name, "total");
}

TEST_F(AggregateMvppTest, MaterializedAggregateViewAnswersQueries) {
  // Force-materialize the aggregate node itself and check answers come
  // from the stored view.
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  const QuerySpec agg = parse_and_bind(
      catalog, "A", 5.0,
      "SELECT city, AVG(quantity) FROM Order, Customer "
      "WHERE Order.Cid = Customer.Cid GROUP BY city");
  const MvppBuildResult built = builder.build({agg}, {0});
  const MvppGraph& g = built.graph;

  NodeId agg_node = -1;
  for (const MvppNode& n : g.nodes()) {
    if (n.kind == MvppNodeKind::kAggregate) agg_node = n.id;
  }
  ASSERT_GE(agg_node, 0);

  const MaterializedSet m{agg_node};
  const Executor exec(db_);
  Database db = db_;
  db.put_table(g.node(agg_node).name, exec.run(refresh_plan(g, agg_node, {})));
  const Executor exec2(db);
  const NodeId root = g.find_by_name("A");
  const Table from_view = exec2.run(answer_plan(g, root, m));
  const Table from_scratch = exec2.run(answer_plan(g, root, {}));
  EXPECT_TRUE(same_bag(from_view, from_scratch));

  // The answer plan with the view materialized is a bare scan.
  EXPECT_EQ(answer_plan(g, root, m)->kind(), OpKind::kScan);

  // And the evaluator prices reading it at its block count.
  const MvppEvaluator eval(g);
  EXPECT_DOUBLE_EQ(eval.answer_cost(root, m), g.node(agg_node).blocks);
  EXPECT_LT(eval.answer_cost(root, m), eval.answer_cost(root, {}));
}

}  // namespace
}  // namespace mvd
