// Tests for src/mvpp/builder: the Figure 4 merge algorithm — ordering,
// rotation, subtree reuse, pushdown with disjunctions/unions, residuals.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/mvpp/builder.hpp"
#include "src/sql/parser.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest()
      : example_(make_paper_example()),
        model_(example_.catalog, paper_cost_config()),
        optimizer_(model_),
        builder_(optimizer_) {}

  PaperExample example_;
  CostModel model_;
  Optimizer optimizer_;
  MvppBuilder builder_;
};

TEST_F(BuilderTest, InitialOrderDescendingFqTimesCa) {
  const std::vector<std::size_t> order =
      builder_.initial_order(example_.queries);
  ASSERT_EQ(order.size(), 4u);
  double prev = 1e300;
  for (std::size_t idx : order) {
    const QuerySpec& q = example_.queries[idx];
    const double score =
        q.frequency() * model_.full_cost(optimizer_.optimize(q));
    EXPECT_LE(score, prev + 1e-9);
    prev = score;
  }
}

TEST_F(BuilderTest, BuildValidatesOrder) {
  EXPECT_THROW(builder_.build(example_.queries, {0, 1}), PlanError);
  EXPECT_THROW(builder_.build(example_.queries, {0, 1, 2, 2}), PlanError);
  EXPECT_THROW(builder_.build({}, {}), PlanError);
}

TEST_F(BuilderTest, EveryQueryGetsARoot) {
  const MvppBuildResult r =
      builder_.build(example_.queries, {0, 1, 2, 3});
  EXPECT_EQ(r.graph.query_ids().size(), 4u);
  for (const QuerySpec& q : example_.queries) {
    const NodeId root = r.graph.find_by_name(q.name());
    ASSERT_GE(root, 0) << q.name();
    EXPECT_EQ(r.graph.node(root).kind, MvppNodeKind::kQuery);
    EXPECT_DOUBLE_EQ(r.graph.node(root).frequency, q.frequency());
  }
  r.graph.validate();
}

TEST_F(BuilderTest, SharedJoinPatternReused) {
  // Q1 (P |x| D) and Q2 (P |x| D |x| Pt) share the P |x| D join node.
  const MvppBuildResult r =
      builder_.build(example_.queries, {0, 1, 2, 3});
  const MvppGraph& g = r.graph;
  int pd_joins = 0;
  for (const MvppNode& n : g.nodes()) {
    if (n.kind != MvppNodeKind::kJoin) continue;
    std::set<std::string> bases;
    for (NodeId b : g.bases_under(n.id)) bases.insert(g.node(b).relation);
    if (bases == std::set<std::string>{"Product", "Division"}) ++pd_joins;
  }
  EXPECT_EQ(pd_joins, 1);
  // That single join must serve Q1, Q2 and Q3.
  for (const MvppNode& n : g.nodes()) {
    if (n.kind != MvppNodeKind::kJoin) continue;
    if (g.bases_under(n.id).size() == 2) {
      std::set<std::string> bases;
      for (NodeId b : g.bases_under(n.id)) bases.insert(g.node(b).relation);
      if (bases == std::set<std::string>{"Product", "Division"}) {
        EXPECT_EQ(g.queries_using(n.id).size(), 3u);
      }
    }
  }
}

TEST_F(BuilderTest, RotationsProduceOnePerQuery) {
  const std::vector<MvppBuildResult> rotations =
      builder_.build_all_rotations(example_.queries);
  ASSERT_EQ(rotations.size(), 4u);
  // Each rotation starts with a different query.
  std::set<std::string> firsts;
  for (const MvppBuildResult& r : rotations) {
    firsts.insert(r.merge_order.front());
  }
  EXPECT_EQ(firsts.size(), 4u);
}

TEST_F(BuilderTest, MergeOrderAffectsStructure) {
  const std::vector<MvppBuildResult> rotations =
      builder_.build_all_rotations(example_.queries);
  std::set<std::size_t> op_counts;
  for (const MvppBuildResult& r : rotations) {
    op_counts.insert(r.graph.operation_ids().size());
  }
  // The Figure 6 observation: rotations differ structurally.
  EXPECT_GE(op_counts.size(), 2u);
}

TEST_F(BuilderTest, IdenticalSelectionsPushDownExactly) {
  // All original queries filter Division on city='LA' only; the shared
  // leaf select is exactly that condition and no residual reapplies it.
  const MvppBuildResult r = builder_.build(example_.queries, {0, 1, 2, 3});
  const MvppGraph& g = r.graph;
  int division_selects = 0;
  for (const MvppNode& n : g.nodes()) {
    if (n.kind != MvppNodeKind::kSelect) continue;
    const auto cols = columns_of(n.predicate);
    if (cols.contains("Division.city")) {
      ++division_selects;
      EXPECT_EQ(normalize(n.predicate)->to_string(),
                "(Division.city = 'LA')");
    }
  }
  EXPECT_EQ(division_selects, 1);
}

TEST_F(BuilderTest, DifferentSelectionsBecomeDisjunctionPlusResiduals) {
  const std::vector<QuerySpec> variant =
      make_pushdown_variant_queries(example_.catalog);
  const MvppBuildResult r =
      builder_.build(variant, builder_.initial_order(variant));
  const MvppGraph& g = r.graph;

  // The Division leaf carries the disjunction of all three conditions.
  bool found_disjunction = false;
  for (const MvppNode& n : g.nodes()) {
    if (n.kind != MvppNodeKind::kSelect) continue;
    const std::string p = normalize(n.predicate)->to_string();
    if (p.find("OR") != std::string::npos &&
        p.find("Division.city = 'LA'") != std::string::npos &&
        p.find("Division.city = 'SF'") != std::string::npos &&
        p.find("Division.name = 'Re'") != std::string::npos) {
      found_disjunction = true;
      // It must sit directly on the Division leaf.
      EXPECT_EQ(g.node(n.children[0]).kind, MvppNodeKind::kBase);
    }
  }
  EXPECT_TRUE(found_disjunction);

  // Q1 re-applies city='LA' above the shared joins.
  const NodeId q1 = g.find_by_name("Q1");
  bool residual = false;
  for (NodeId v : g.descendants(q1)) {
    const MvppNode& n = g.node(v);
    if (n.kind == MvppNodeKind::kSelect && g.bases_under(v).size() > 1 &&
        normalize(n.predicate)->to_string() == "(Division.city = 'LA')") {
      residual = true;
    }
  }
  EXPECT_TRUE(residual);
}

TEST_F(BuilderTest, ProjectionPushdownKeepsJoinAttributes) {
  const MvppBuildResult r = builder_.build(example_.queries, {0, 1, 2, 3});
  const MvppGraph& g = r.graph;
  // The pushed-down projection over Part keeps Pid (join attr) and name
  // (output attr).
  for (const MvppNode& n : g.nodes()) {
    if (n.kind != MvppNodeKind::kProject) continue;
    const std::vector<NodeId> bases = g.bases_under(n.id);
    if (bases.size() == 1 && g.node(bases[0]).relation == "Part") {
      EXPECT_EQ(std::set<std::string>(n.columns.begin(), n.columns.end()),
                (std::set<std::string>{"Part.name", "Part.Pid"}));
    }
  }
}

TEST_F(BuilderTest, ChooseBestMvppPicksMinimum) {
  const std::vector<MvppBuildResult> rotations =
      builder_.build_all_rotations(example_.queries);
  const MvppChoice best = choose_best_mvpp(rotations);
  for (const MvppBuildResult& r : rotations) {
    const MvppEvaluator eval(r.graph);
    EXPECT_LE(best.selection.costs.total(),
              yang_heuristic(eval).costs.total() + 1e-6);
  }
  EXPECT_THROW(choose_best_mvpp({}), PlanError);
}

TEST_F(BuilderTest, SingleQuerySingleRelation) {
  const QuerySpec q = parse_and_bind(example_.catalog, "S", 2.0,
                                     "SELECT name FROM Product");
  const MvppBuildResult r = builder_.build({q}, {0});
  EXPECT_EQ(r.graph.query_ids().size(), 1u);
  EXPECT_EQ(r.graph.base_ids().size(), 1u);
  r.graph.validate();
}

TEST_F(BuilderTest, GeneratedWorkloadsBuildAndValidate) {
  StarSchemaOptions schema;
  schema.dimensions = 5;
  const Catalog catalog = make_star_catalog(schema);
  const CostModel model(catalog, {});
  const Optimizer optimizer(model);
  const MvppBuilder builder(optimizer);
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    StarQueryOptions qopts;
    qopts.count = 6;
    qopts.max_dimensions = 4;
    qopts.seed = seed;
    const std::vector<QuerySpec> queries =
        generate_star_queries(catalog, schema, qopts);
    for (const MvppBuildResult& r : builder.build_all_rotations(queries)) {
      r.graph.validate();
      EXPECT_EQ(r.graph.query_ids().size(), queries.size());
    }
  }
}

}  // namespace
}  // namespace mvd
