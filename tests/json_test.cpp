// Tests for src/common/json and src/mvpp/serialize.
#include <gtest/gtest.h>

#include "src/common/json.hpp"
#include "src/mvpp/serialize.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::number(42.0).dump(), "42");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(JsonTest, EscapesStrings) {
  EXPECT_EQ(Json::string("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonTest, ArraysAndObjectsCompact) {
  Json a = Json::array();
  a.push_back(Json::number(1.0));
  a.push_back(Json::string("x"));
  EXPECT_EQ(a.dump(), "[1,\"x\"]");

  Json o = Json::object();
  o.set("b", Json::number(2.0));
  o.set("a", Json::number(1.0));
  // Insertion order preserved (stable output), not sorted.
  EXPECT_EQ(o.dump(), "{\"b\":2,\"a\":1}");
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(), "{}");
}

TEST(JsonTest, SetOverwrites) {
  Json o = Json::object();
  o.set("k", Json::number(1.0));
  o.set("k", Json::number(2.0));
  EXPECT_EQ(o.size(), 1u);
  EXPECT_DOUBLE_EQ(o.at("k").as_number(), 2.0);
}

TEST(JsonTest, PrettyPrintIndents) {
  Json o = Json::object();
  o.set("k", Json::number(1.0));
  EXPECT_EQ(o.dump(2), "{\n  \"k\": 1\n}");
}

TEST(JsonTest, Accessors) {
  Json o = Json::object();
  o.set("s", Json::string("v"));
  o.set("b", Json::boolean(false));
  EXPECT_TRUE(o.contains("s"));
  EXPECT_FALSE(o.contains("zz"));
  EXPECT_EQ(o.at("s").as_string(), "v");
  EXPECT_FALSE(o.at("b").as_bool());
  Json a = Json::array();
  a.push_back(Json::number(7.0));
  EXPECT_DOUBLE_EQ(a.at(0).as_number(), 7.0);
}

class SerializeTest : public ::testing::Test {
 protected:
  SerializeTest()
      : catalog_(make_paper_catalog()),
        model_(catalog_, paper_cost_config()),
        graph_(build_figure3_mvpp(model_)),
        eval_(graph_) {}
  Catalog catalog_;
  CostModel model_;
  MvppGraph graph_;
  MvppEvaluator eval_;
};

TEST_F(SerializeTest, GraphJsonCoversAllNodes) {
  const Json j = to_json(graph_);
  EXPECT_TRUE(j.at("annotated").as_bool());
  EXPECT_EQ(j.at("nodes").size(), graph_.size());
  // Spot-check tmp1.
  bool found = false;
  for (std::size_t i = 0; i < j.at("nodes").size(); ++i) {
    const Json& n = j.at("nodes").at(i);
    if (n.at("name").as_string() == "tmp1") {
      found = true;
      EXPECT_EQ(n.at("kind").as_string(), "select");
      EXPECT_EQ(n.at("predicate").as_string(), "(Division.city = 'LA')");
      EXPECT_DOUBLE_EQ(n.at("full_cost").as_number(), 250.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SerializeTest, SelectionJsonRoundsUpDecision) {
  const SelectionResult sel = yang_heuristic(eval_);
  const Json j = to_json(graph_, sel);
  EXPECT_EQ(j.at("algorithm").as_string(), "yang-heuristic");
  EXPECT_EQ(j.at("materialized").size(), 2u);
  EXPECT_DOUBLE_EQ(j.at("costs").at("total").as_number(), sel.costs.total());
  EXPECT_GT(j.at("trace").size(), 0u);
}

TEST_F(SerializeTest, DesignReportHasQueriesAndViews) {
  const SelectionResult sel = yang_heuristic(eval_);
  const Json j = design_report_json(eval_, sel);
  EXPECT_EQ(j.at("queries").size(), 4u);
  EXPECT_EQ(j.at("views").size(), 2u);
  // The report is valid, parseable-looking JSON (balanced braces as a
  // cheap sanity check).
  const std::string text = j.dump(2);
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
  // Per-view consumers recorded.
  for (std::size_t i = 0; i < j.at("views").size(); ++i) {
    EXPECT_GT(j.at("views").at(i).at("serves").size(), 0u);
  }
}

}  // namespace
}  // namespace mvd
