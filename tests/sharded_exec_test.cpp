// The sharded storage and execution layer: bucket hashing matches Value
// equality, partitioning covers and preserves rows, delta routing lands
// in the owning buckets, and the sharded designer runtime (deploy /
// answer / incremental refresh) stays a bag-equivalent of the
// single-site runtime while its per-shard counters reconcile with the
// recorded totals (the distributed/shard-stats-consistent contract).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/algebra/expr.hpp"
#include "src/algebra/logical_plan.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/exec/sharded.hpp"
#include "src/lint/lint.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/storage/sharded_table.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/generator.hpp"

namespace mvd {
namespace {

TEST(ShardedTableTest, BucketHashMatchesValueEquality) {
  // Int64 5, double 5.0 and date 5 compare equal as Values, so they must
  // land in the same bucket (they can meet as join or group keys).
  EXPECT_EQ(ShardedTable::bucket_of(Value::int64(5)),
            ShardedTable::bucket_of(Value::real(5.0)));
  EXPECT_EQ(ShardedTable::bucket_of(Value::int64(5)),
            ShardedTable::bucket_of(Value::date(5)));
  // Signed zeros compare equal and must hash together.
  EXPECT_EQ(ShardedTable::bucket_of(Value::real(0.0)),
            ShardedTable::bucket_of(Value::real(-0.0)));
  for (std::int64_t k = 0; k < 200; ++k) {
    EXPECT_LT(ShardedTable::bucket_of(Value::int64(k)),
              ShardedTable::kBuckets);
  }
}

TEST(ShardedTableTest, PartitionCoversAndPreservesRows) {
  Table t(Schema({{"k", ValueType::kInt64, "T"},
                  {"v", ValueType::kString, "T"}}),
          10.0);
  for (int i = 0; i < 500; ++i) {
    t.append({Value::int64(i % 37), Value::string("r" + std::to_string(i))});
  }
  const ShardedTable sharded = ShardedTable::partition(t, "k");
  EXPECT_EQ(sharded.total_rows(), t.row_count());
  std::size_t non_empty = 0;
  for (std::size_t b = 0; b < ShardedTable::kBuckets; ++b) {
    const Table& slice = sharded.slice(b);
    if (slice.row_count() > 0) ++non_empty;
    for (const Tuple& row : slice.rows()) {
      EXPECT_EQ(ShardedTable::bucket_of(row[0]), b);
    }
  }
  EXPECT_GT(non_empty, 1u);  // 37 keys spread over more than one bucket
  EXPECT_TRUE(same_bag(t, sharded.gathered()));
  EXPECT_THROW(ShardedTable::partition(t, "absent"), BindError);
}

TEST(ShardedDatabaseTest, BucketRangesPartitionTheBucketSpace) {
  for (const std::size_t shards : {1u, 2u, 3u, 4u, 5u, 8u, 64u}) {
    const ShardedDatabase db(shards);
    std::size_t covered = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto [b0, b1] = db.bucket_range(s);
      EXPECT_LE(b0, b1);
      for (std::size_t b = b0; b < b1; ++b) {
        EXPECT_EQ(db.shard_of_bucket(b), s);
        ++covered;
      }
    }
    EXPECT_EQ(covered, ShardedDatabase::kBuckets) << shards << " shards";
  }
}

TEST(ShardedDatabaseTest, DeltasRouteToOwningBuckets) {
  StarSchemaOptions schema;
  schema.dimensions = 2;
  schema.fact_rows = 1'000;
  schema.dimension_rows = 50;
  Database db = populate_star_database(schema, 3);
  ShardedDatabase sdb = shard_database(db, 4, {{"Fact", "d0"}});
  EXPECT_TRUE(sdb.is_partitioned("Fact"));
  EXPECT_FALSE(sdb.is_partitioned("Dim0"));
  EXPECT_EQ(sdb.partitioned_rows("Fact"), db.table("Fact").row_count());
  EXPECT_TRUE(same_bag(db.table("Fact"), sdb.gathered("Fact")));
  // Loading counted one shuffle of every fact row and a dimension
  // broadcast of rows x shards.
  EXPECT_EQ(sdb.exchange_log().shuffle_rows,
            static_cast<double>(db.table("Fact").row_count()));
  EXPECT_GT(sdb.exchange_log().broadcast_rows, 0.0);

  DeltaSet deltas;
  Rng rng(7);
  apply_update_batch(db, "Fact", UpdateStreamOptions{}, rng, &deltas);
  const std::size_t key_idx = db.table("Fact").schema().index_of("d0");
  const std::vector<DeltaSet> routed = sdb.route_deltas(deltas);
  ASSERT_EQ(routed.size(), ShardedDatabase::kBuckets);
  std::size_t routed_rows = 0;
  for (std::size_t b = 0; b < ShardedDatabase::kBuckets; ++b) {
    const auto it = routed[b].find("Fact");
    if (it == routed[b].end()) continue;
    routed_rows += it->second.row_count();
    for (const Tuple& row : it->second.inserts().rows()) {
      EXPECT_EQ(ShardedTable::bucket_of(row[key_idx]), b);
    }
    for (const Tuple& row : it->second.deletes().rows()) {
      EXPECT_EQ(ShardedTable::bucket_of(row[key_idx]), b);
    }
  }
  EXPECT_EQ(routed_rows, deltas.at("Fact").row_count());

  // Applying the same deltas keeps the sharded layout a bucket-for-bucket
  // image of the updated single-site table.
  sdb.apply_base_deltas(deltas);
  EXPECT_TRUE(same_bag(db.table("Fact"), sdb.gathered("Fact")));
}

/// Designer + star workload fixture shared by the runtime differentials:
/// one single-site warehouse and one 4-shard warehouse deployed from the
/// same design over the same data.
class ShardedRuntimeTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kShards = 4;

  ShardedRuntimeTest() {
    StarSchemaOptions schema;
    schema.dimensions = 3;
    schema.fact_rows = 2'000;
    schema.dimension_rows = 150;
    db_ = populate_star_database(schema, 29);
    const Catalog catalog = catalog_from_database(db_, 10.0);

    StarQueryOptions queries;
    queries.count = 6;
    queries.max_dimensions = 3;
    queries.aggregation_probability = 0.5;
    queries.seed = 41;
    designer_ = std::make_unique<WarehouseDesigner>(catalog);
    for (QuerySpec& q : generate_star_queries(catalog, schema, queries)) {
      names_.push_back(q.name());
      designer_->add_query(std::move(q));
    }
    design_ = designer_->design();

    sdb_.emplace(shard_database(db_, kShards, {{"Fact", "d0"}}));
    designer_->deploy(design_, db_, &flat_stats_);
    designer_->deploy(design_, *sdb_, &sharded_stats_);
  }

  /// The stored state of view `name` in the sharded warehouse, whatever
  /// its placement.
  Table sharded_view(const std::string& name) {
    return sdb_->is_partitioned(name)
               ? sdb_->gathered(name)
               : Table(sdb_->coordinator().table(name));
  }

  Database db_;
  std::unique_ptr<WarehouseDesigner> designer_;
  DesignResult design_;
  std::vector<std::string> names_;
  std::optional<ShardedDatabase> sdb_;
  ExecStats flat_stats_, sharded_stats_;
};

TEST_F(ShardedRuntimeTest, DeployStoresBagEquivalentViews) {
  const MvppGraph& g = design_.graph();
  ASSERT_FALSE(design_.selection.materialized.empty());
  for (NodeId v : design_.selection.materialized) {
    const std::string& name = g.node(v).name;
    EXPECT_TRUE(same_bag(db_.table(name), sharded_view(name))) << name;
    EXPECT_EQ(flat_stats_.rows_out.at(name), sharded_stats_.rows_out.at(name))
        << name;
  }
}

TEST_F(ShardedRuntimeTest, AnswersMatchSingleSiteAnswers) {
  for (const std::string& name : names_) {
    const Table flat = designer_->answer(design_, name, db_);
    const Table sharded = designer_->answer(design_, name, *sdb_);
    EXPECT_TRUE(same_bag(flat, sharded)) << name;
  }
}

TEST_F(ShardedRuntimeTest, ShardStatsReconcileAndLintRuleAgrees) {
  // Per-shard stored rows of every partitioned view must sum to the
  // recorded total — first directly, then through mvlint rule 22.
  const std::vector<std::string> partitioned = sdb_->partitioned_names();
  for (const std::string& name : partitioned) {
    if (sharded_stats_.rows_out.find(name) == sharded_stats_.rows_out.end()) {
      continue;  // base fact table, not a deployed view
    }
    ASSERT_EQ(sharded_stats_.per_shard.size(), kShards);
    double sum = 0;
    for (const ExecStats& s : sharded_stats_.per_shard) {
      const auto it = s.rows_out.find(name);
      if (it != s.rows_out.end()) sum += it->second;
    }
    EXPECT_EQ(sum, sharded_stats_.rows_out.at(name)) << name;
  }

  LintContext ctx;
  ctx.graph = &design_.graph();
  ctx.exec_stats = &sharded_stats_;
  LintContext::SelectionCheck check;
  check.result = &design_.selection;
  ctx.selections.push_back(check);
  const LintReport clean = LintRegistry::builtin().run(ctx);
  EXPECT_FALSE(
      clean.fired_rules().contains("distributed/shard-stats-consistent"))
      << clean.render_text();

  // Corrupt one shard's slice count for a deployed partitioned view: the
  // rule must notice. (Skipped when the design stored no partitioned
  // view — the selection then exercises only the coordinator path.)
  ExecStats corrupted = sharded_stats_;
  bool found = false;
  for (const std::string& name : partitioned) {
    if (corrupted.rows_out.find(name) == corrupted.rows_out.end()) continue;
    if (corrupted.per_shard.empty()) break;
    corrupted.per_shard[0].rows_out[name] += 1;
    found = true;
    break;
  }
  if (found) {
    ctx.exec_stats = &corrupted;
    const LintReport dirty = LintRegistry::builtin().run(ctx);
    EXPECT_TRUE(
        dirty.fired_rules().contains("distributed/shard-stats-consistent"))
        << dirty.render_text();
  }
}

TEST_F(ShardedRuntimeTest, IncrementalRefreshMatchesSingleSite) {
  DeltaSet deltas;
  Rng rng(99);
  for (const char* relation : {"Fact", "Dim0"}) {
    apply_update_batch(db_, relation, UpdateStreamOptions{}, rng, &deltas);
  }
  sdb_->apply_base_deltas(deltas);

  const RefreshReport flat =
      designer_->refresh(design_, db_, deltas, RefreshMode::kIncremental);
  ExecStats refresh_stats;
  const RefreshReport sharded = designer_->refresh(
      design_, *sdb_, deltas, RefreshMode::kIncremental, &refresh_stats);
  ASSERT_EQ(flat.views.size(), sharded.views.size());

  const MvppGraph& g = design_.graph();
  for (NodeId v : design_.selection.materialized) {
    const std::string& name = g.node(v).name;
    EXPECT_TRUE(same_bag(db_.table(name), sharded_view(name))) << name;
  }
  // Answers over the refreshed warehouses still agree.
  for (const std::string& name : names_) {
    EXPECT_TRUE(same_bag(designer_->answer(design_, name, db_),
                         designer_->answer(design_, name, *sdb_)))
        << name;
  }
}

TEST_F(ShardedRuntimeTest, RecomputeRefreshMatchesSingleSite) {
  DeltaSet deltas;
  Rng rng(17);
  apply_update_batch(db_, "Fact", UpdateStreamOptions{}, rng, &deltas);
  sdb_->apply_base_deltas(deltas);

  (void)designer_->refresh(design_, db_, deltas, RefreshMode::kRecompute);
  const RefreshReport report =
      designer_->refresh(design_, *sdb_, deltas, RefreshMode::kRecompute);
  EXPECT_EQ(report.count(RefreshPath::kRecomputed), report.views.size());

  const MvppGraph& g = design_.graph();
  for (NodeId v : design_.selection.materialized) {
    const std::string& name = g.node(v).name;
    EXPECT_TRUE(same_bag(db_.table(name), sharded_view(name))) << name;
  }
}

TEST(ShardedExecutorTest, RejectsTwoPartitionedLeafPaths) {
  StarSchemaOptions schema;
  schema.dimensions = 1;
  schema.fact_rows = 300;
  schema.dimension_rows = 30;
  const Database db = populate_star_database(schema, 5);
  const Catalog catalog = catalog_from_database(db, 10.0);
  ShardedDatabase sdb = shard_database(db, 2, {{"Fact", "d0"}});

  // A fact self-join would need cross-shard repartitioning. Project
  // disjoint columns so the join output schema stays well-formed.
  const PlanPtr scan = make_scan(catalog, "Fact");
  const PlanPtr self_join =
      make_join(make_project(scan, {"Fact.d0"}),
                make_project(scan, {"Fact.measure"}),
                lit(Value::boolean(true)));
  EXPECT_EQ(analyze_shard_plan(self_join, sdb).refs, 2u);
  EXPECT_THROW(ShardedExecutor(sdb).run(self_join), ExecError);
}

}  // namespace
}  // namespace mvd
