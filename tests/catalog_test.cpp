// Tests for src/catalog: schemas, statistics, catalog registration.
#include <gtest/gtest.h>

#include "src/catalog/catalog.hpp"
#include "src/common/assert.hpp"
#include "src/common/error.hpp"

namespace mvd {
namespace {

Schema product_schema() {
  return Schema({{"Pid", ValueType::kInt64, "Product"},
                 {"name", ValueType::kString, "Product"},
                 {"Did", ValueType::kInt64, "Product"}});
}

TEST(ValueTypeTest, Names) {
  EXPECT_EQ(to_string(ValueType::kInt64), "int64");
  EXPECT_EQ(to_string(ValueType::kString), "string");
  EXPECT_EQ(to_string(ValueType::kDate), "date");
}

TEST(ValueTypeTest, NumericClassification) {
  EXPECT_TRUE(is_numeric(ValueType::kInt64));
  EXPECT_TRUE(is_numeric(ValueType::kDouble));
  EXPECT_TRUE(is_numeric(ValueType::kDate));
  EXPECT_FALSE(is_numeric(ValueType::kString));
  EXPECT_FALSE(is_numeric(ValueType::kBool));
}

TEST(SchemaTest, QualifiedNames) {
  const Schema s = product_schema();
  EXPECT_EQ(s.at(0).qualified(), "Product.Pid");
  Attribute bare{"x", ValueType::kInt64, ""};
  EXPECT_EQ(bare.qualified(), "x");
}

TEST(SchemaTest, FindBareAndQualified) {
  const Schema s = product_schema();
  EXPECT_EQ(s.index_of("Pid"), 0u);
  EXPECT_EQ(s.index_of("Product.name"), 1u);
  EXPECT_FALSE(s.find("missing").has_value());
  EXPECT_FALSE(s.find("Division.Pid").has_value());
}

TEST(SchemaTest, AmbiguousBareNameThrows) {
  const Schema s = Schema::concat(
      product_schema(), Schema({{"name", ValueType::kString, "Customer"}}));
  EXPECT_THROW(s.find("name"), BindError);
  EXPECT_EQ(s.index_of("Customer.name"), 3u);
}

TEST(SchemaTest, UnknownNameThrowsOnIndexOf) {
  EXPECT_THROW(product_schema().index_of("nope"), BindError);
}

TEST(SchemaTest, DuplicateQualifiedAttributeAsserts) {
  EXPECT_THROW(Schema({{"a", ValueType::kInt64, "R"},
                       {"a", ValueType::kInt64, "R"}}),
               AssertionError);
}

TEST(SchemaTest, SameBareNameDifferentSourceAllowed) {
  const Schema s({{"a", ValueType::kInt64, "R"}, {"a", ValueType::kInt64, "S"}});
  EXPECT_EQ(s.size(), 2u);
}

TEST(SchemaTest, ConcatPreservesOrder) {
  const Schema s = Schema::concat(
      product_schema(), Schema({{"city", ValueType::kString, "Division"}}));
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.at(3).qualified(), "Division.city");
}

TEST(SchemaTest, ToStringListsTypes) {
  EXPECT_NE(product_schema().to_string().find("Product.Pid int64"),
            std::string::npos);
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog c(10.0);
  RelationStats stats;
  stats.rows = 100;
  c.add_relation("R", product_schema(), stats, 2.0);
  EXPECT_TRUE(c.has_relation("R"));
  EXPECT_FALSE(c.has_relation("S"));
  EXPECT_EQ(c.schema("R").size(), 3u);
  EXPECT_DOUBLE_EQ(c.stats("R").rows, 100.0);
  EXPECT_DOUBLE_EQ(c.update_frequency("R"), 2.0);
  EXPECT_EQ(c.relation_names(), std::vector<std::string>{"R"});
}

TEST(CatalogTest, DuplicateRelationThrows) {
  Catalog c;
  c.add_relation("R", product_schema(), {.rows = 1});
  EXPECT_THROW(c.add_relation("R", product_schema(), {.rows = 1}),
               CatalogError);
}

TEST(CatalogTest, UnknownRelationThrows) {
  Catalog c;
  EXPECT_THROW(c.schema("missing"), CatalogError);
  EXPECT_THROW(c.stats("missing"), CatalogError);
  EXPECT_THROW(c.update_frequency("missing"), CatalogError);
}

TEST(CatalogTest, InvalidInputsRejected) {
  Catalog c;
  EXPECT_THROW(c.add_relation("", product_schema(), {.rows = 1}),
               CatalogError);
  EXPECT_THROW(c.add_relation("R", product_schema(), {.rows = -5}),
               CatalogError);
  EXPECT_THROW(
      c.add_relation("R", product_schema(), {.rows = 1}, /*fu=*/-1.0),
      CatalogError);
  EXPECT_THROW(Catalog(-1.0), CatalogError);
}

TEST(CatalogTest, StatsForUnknownColumnRejected) {
  Catalog c;
  RelationStats stats;
  stats.rows = 10;
  stats.columns["bogus"] = {};
  EXPECT_THROW(c.add_relation("R", product_schema(), stats), CatalogError);
}

TEST(CatalogTest, NonPositiveDistinctRejected) {
  Catalog c;
  RelationStats stats;
  stats.rows = 10;
  ColumnStats cs;
  cs.distinct = 0.0;
  stats.columns["Pid"] = cs;
  EXPECT_THROW(c.add_relation("R", product_schema(), stats), CatalogError);
}

TEST(CatalogTest, BlocksForRowsUsesBlockingFactor) {
  Catalog c(10.0);
  EXPECT_DOUBLE_EQ(c.blocks_for_rows(30'000), 3'000.0);
  EXPECT_DOUBLE_EQ(c.blocks_for_rows(5), 1.0);   // at least one block
  EXPECT_DOUBLE_EQ(c.blocks_for_rows(0), 0.0);
  EXPECT_DOUBLE_EQ(c.blocks_for_rows(11), 2.0);  // ceiling
}

TEST(CatalogTest, UpdateFrequencyMutable) {
  Catalog c;
  c.add_relation("R", product_schema(), {.rows = 1});
  c.set_update_frequency("R", 7.5);
  EXPECT_DOUBLE_EQ(c.update_frequency("R"), 7.5);
  EXPECT_THROW(c.set_update_frequency("R", -1), CatalogError);
  EXPECT_THROW(c.set_update_frequency("missing", 1), CatalogError);
}

TEST(CatalogTest, JoinSizeOverrides) {
  Catalog c;
  c.add_relation("R", product_schema(), {.rows = 10});
  c.add_relation("S",
                 Schema({{"Did", ValueType::kInt64, "S"}}), {.rows = 20});
  c.add_join_size_override({"R", "S"}, {15, 3});
  const JoinSizeOverride* pin = c.join_size_override({"S", "R"});
  ASSERT_NE(pin, nullptr);
  EXPECT_DOUBLE_EQ(pin->rows, 15.0);
  EXPECT_DOUBLE_EQ(*pin->blocks, 3.0);
  EXPECT_EQ(c.join_size_override({"R"}), nullptr);
}

TEST(CatalogTest, JoinOverrideValidation) {
  Catalog c;
  c.add_relation("R", product_schema(), {.rows = 10});
  EXPECT_THROW(c.add_join_size_override({"R"}, {1, 1}), CatalogError);
  EXPECT_THROW(c.add_join_size_override({"R", "unknown"}, {1, 1}),
               CatalogError);
}

TEST(ColumnStatsTest, LookupHelper) {
  RelationStats stats;
  ColumnStats cs;
  cs.distinct = 5;
  stats.columns["a"] = cs;
  ASSERT_NE(stats.column("a"), nullptr);
  EXPECT_DOUBLE_EQ(*stats.column("a")->distinct, 5.0);
  EXPECT_EQ(stats.column("b"), nullptr);
}

}  // namespace
}  // namespace mvd
