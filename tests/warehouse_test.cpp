// Integration tests for the WarehouseDesigner facade and the MVPP-to-plan
// rewrite: design, deploy, answer, refresh — checked end-to-end against
// from-scratch canonical evaluation on populated data.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/maintenance/update_stream.hpp"
#include "src/warehouse/designer.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_example.hpp"

namespace mvd {
namespace {

WarehouseDesigner paper_designer(DesignerOptions options = {}) {
  options.cost = paper_cost_config();
  WarehouseDesigner designer(make_paper_catalog(), options);
  for (const QuerySpec& q : make_paper_example().queries) {
    designer.add_query(q);
  }
  return designer;
}

TEST(DesignerTest, RequiresQueries) {
  WarehouseDesigner d(make_paper_catalog());
  EXPECT_THROW(d.design(), PlanError);
}

TEST(DesignerTest, RejectsDuplicateQueryNames) {
  WarehouseDesigner d(make_paper_catalog());
  d.add_query("Q", 1.0, "SELECT name FROM Product");
  EXPECT_THROW(d.add_query("Q", 2.0, "SELECT name FROM Division"), PlanError);
}

TEST(DesignerTest, DesignProducesCandidatesAndSelection) {
  WarehouseDesigner d = paper_designer();
  const DesignResult r = d.design();
  EXPECT_EQ(r.candidates.size(), 4u);
  EXPECT_LT(r.mvpp_index, r.candidates.size());
  EXPECT_FALSE(r.selection.materialized.empty());
  EXPECT_GT(r.selection.costs.total(), 0);
}

TEST(DesignerTest, AlgorithmsAreConfigurable) {
  for (const auto algorithm :
       {DesignerOptions::Algorithm::kYang, DesignerOptions::Algorithm::kGreedy,
        DesignerOptions::Algorithm::kExhaustive,
        DesignerOptions::Algorithm::kAnnealing}) {
    DesignerOptions options;
    options.algorithm = algorithm;
    WarehouseDesigner d = paper_designer(options);
    const DesignResult r = d.design();
    EXPECT_GT(r.selection.costs.total(), 0);
  }
}

TEST(DesignerTest, ExhaustiveNeverWorseThanYangOnChosenGraphs) {
  DesignerOptions yang_options;
  DesignerOptions opt_options;
  opt_options.algorithm = DesignerOptions::Algorithm::kExhaustive;
  const DesignResult yang = paper_designer(yang_options).design();
  const DesignResult optimal = paper_designer(opt_options).design();
  EXPECT_LE(optimal.selection.costs.total(),
            yang.selection.costs.total() + 1e-6);
}

TEST(DesignerTest, ReportMentionsStrategiesAndViews) {
  WarehouseDesigner d = paper_designer();
  const DesignResult r = d.design();
  const std::string report = d.report(r);
  EXPECT_NE(report.find("materialize-nothing"), std::string::npos);
  EXPECT_NE(report.find("materialize-all-queries"), std::string::npos);
  EXPECT_NE(report.find("yang-heuristic"), std::string::npos);
  EXPECT_NE(report.find("Q1"), std::string::npos);
}

class DeploymentTest : public ::testing::Test {
 protected:
  DeploymentTest() : designer_(paper_designer()) {
    db_ = populate_paper_database(0.02, 23);
    design_ = designer_.design();
  }

  WarehouseDesigner designer_;
  Database db_;
  DesignResult design_;
};

TEST_F(DeploymentTest, DeployStoresEveryChosenView) {
  designer_.deploy(design_, db_);
  for (NodeId v : design_.selection.materialized) {
    const std::string& name = design_.graph().node(v).name;
    EXPECT_TRUE(db_.has_table(name)) << name;
  }
}

TEST_F(DeploymentTest, AnswersFromViewsMatchFromScratch) {
  // Ground truth: canonical plans over base tables only.
  const Executor exec(db_);
  std::map<std::string, Table> expected;
  for (const QuerySpec& q : designer_.queries()) {
    expected.emplace(q.name(),
                     exec.run(canonical_plan(designer_.catalog(), q)));
  }
  designer_.deploy(design_, db_);
  for (const QuerySpec& q : designer_.queries()) {
    const Table got = designer_.answer(design_, q.name(), db_);
    EXPECT_TRUE(same_bag(expected.at(q.name()), got)) << q.name();
  }
}

TEST_F(DeploymentTest, AnswerUnknownQueryThrows) {
  designer_.deploy(design_, db_);
  EXPECT_THROW(designer_.answer(design_, "nope", db_), PlanError);
}

TEST_F(DeploymentTest, RefreshAfterUpdatesRestoresConsistency) {
  designer_.deploy(design_, db_);
  // Mutate two base tables.
  Rng rng(7);
  UpdateStreamOptions updates;
  updates.modify_fraction = 0.05;
  updates.insert_fraction = 0.05;
  updates.delete_fraction = 0.02;
  EXPECT_GT(apply_update_batch(db_, "Order", updates, rng), 0u);
  EXPECT_GT(apply_update_batch(db_, "Division", updates, rng), 0u);

  // Stale views may now disagree; refresh must restore consistency.
  designer_.refresh(design_, db_);
  const Executor exec(db_);
  for (const QuerySpec& q : designer_.queries()) {
    const Table expected = exec.run(canonical_plan(designer_.catalog(), q));
    const Table got = designer_.answer(design_, q.name(), db_);
    EXPECT_TRUE(same_bag(expected, got)) << q.name();
  }
}

TEST_F(DeploymentTest, AnswerPlanReadsStoredResultWhenMaterialized) {
  // Force-materialize Q1's result node and check the answer plan is a
  // bare scan of it.
  const MvppGraph& g = design_.graph();
  const NodeId q1 = g.find_by_name("Q1");
  const NodeId result = g.node(q1).children[0];
  const PlanPtr plan = answer_plan(g, q1, {result});
  EXPECT_EQ(plan->kind(), OpKind::kScan);
}

TEST_F(DeploymentTest, RefreshPlanRebuildsSelfEvenWhenStored) {
  const MvppGraph& g = design_.graph();
  ASSERT_FALSE(design_.selection.materialized.empty());
  const NodeId v = *design_.selection.materialized.begin();
  const PlanPtr plan = refresh_plan(g, v, design_.selection.materialized);
  // The refresh plan of v must not be a scan of v itself.
  if (plan->kind() == OpKind::kScan) {
    EXPECT_NE(static_cast<const ScanOp&>(*plan).relation(), g.node(v).name);
  }
}

TEST(RewriteTest, EveryFrontierChoicePreservesSemantics) {
  // Property: for the Figure 3 MVPP and random materialized subsets, all
  // queries answer identically with and without the views.
  const Catalog catalog = make_paper_catalog();
  const CostModel model(catalog, paper_cost_config());
  const MvppGraph g = build_figure3_mvpp(model);
  Database base_db = populate_paper_database(0.01, 41);
  const Executor exec(base_db);

  std::map<std::string, Table> expected;
  for (NodeId q : g.query_ids()) {
    expected.emplace(g.node(q).name, exec.run(answer_plan(g, q, {})));
  }

  Rng rng(99);
  const std::vector<NodeId> candidates = g.operation_ids();
  for (int trial = 0; trial < 8; ++trial) {
    MaterializedSet m;
    for (NodeId v : candidates) {
      if (rng.chance(0.4)) m.insert(v);
    }
    Database db = base_db;  // fresh copy with base tables only
    // Deploy the views in dependency (id) order.
    for (NodeId v : m) {
      MaterializedSet deps = m;
      deps.erase(v);
      const Executor e(db);
      db.put_table(g.node(v).name, e.run(refresh_plan(g, v, deps)));
    }
    const Executor e(db);
    for (NodeId q : g.query_ids()) {
      const Table got = e.run(answer_plan(g, q, m));
      EXPECT_TRUE(same_bag(expected.at(g.node(q).name), got))
          << g.node(q).name << " with M = " << to_string(g, m);
    }
  }
}

}  // namespace
}  // namespace mvd
