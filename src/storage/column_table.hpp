// Columnar table representation for the vectorized execution engine.
//
// A ColumnTable holds the same logical contents as a row-oriented Table,
// but as one typed array per column (int64/double/string/bool; dates ride
// the int64 array and keep their kDate schema tag). Batch operators read
// the arrays directly through selection vectors instead of materializing
// tuples, and convert back to a Table only at the final sink. Block
// accounting mirrors Table exactly (same blocking factor, same
// ceil(rows / bf) formula) so estimated-vs-actual cost comparisons stay
// meaningful in either engine.
#pragma once

#include <cstdint>
#include <vector>

#include "src/storage/table.hpp"

namespace mvd {

/// Physical storage class of a column. kDate shares kInt64Col: both are
/// day counts, matching Table's append compatibility rule.
enum class ColumnKind { kInt64Col, kDoubleCol, kStringCol, kBoolCol };

/// Storage class for a declared value type.
ColumnKind column_kind(ValueType type);

class ColumnTable {
 public:
  explicit ColumnTable(Schema schema, double blocking_factor = 10.0);

  /// Columnar copy of `table` (same schema and blocking factor).
  static ColumnTable from_table(const Table& table);

  /// Row-oriented copy (the sink conversion).
  Table to_table() const;

  const Schema& schema() const { return schema_; }
  double blocking_factor() const { return blocking_factor_; }
  std::size_t row_count() const { return row_count_; }

  /// Size in blocks: ceil(rows / blocking_factor), 0 when empty — the
  /// same accounting as Table::blocks().
  double blocks() const;

  ColumnKind kind(std::size_t col) const { return columns_[col].kind; }

  // Typed column access. Calling the wrong accessor for a column's kind
  // is a programming error (asserted).
  const std::vector<std::int64_t>& i64(std::size_t col) const;
  const std::vector<double>& f64(std::size_t col) const;
  const std::vector<std::string>& str(std::size_t col) const;
  const std::vector<std::uint8_t>& b8(std::size_t col) const;

  /// One cell as a Value, re-tagged with the schema's declared type (a
  /// kDate column yields kDate values even if appended as kInt64).
  Value value_at(std::size_t row, std::size_t col) const;

  /// Append one tuple across all columns; same arity/type checks as
  /// Table::append.
  void append_row(const Tuple& tuple);

  // Column-at-a-time building (used by batch operators): append cells to
  // individual columns — concurrently safe for *distinct* columns — then
  // seal with set_row_count once every column holds the same count.
  void reserve(std::size_t rows);
  void append_value(std::size_t col, const Value& v);
  /// Gather `n` cells of `from_col` at physical rows `rows[0..n)` onto
  /// the back of column `col`. Kinds must match.
  void append_gather(std::size_t col, const ColumnTable& from,
                     std::size_t from_col, const std::uint32_t* rows,
                     std::size_t n);
  /// Seal column-wise building; asserts every column holds `rows` cells.
  void set_row_count(std::size_t rows);

 private:
  struct Column {
    ColumnKind kind = ColumnKind::kInt64Col;
    std::vector<std::int64_t> i64;
    std::vector<double> f64;
    std::vector<std::string> str;
    std::vector<std::uint8_t> b8;
    std::size_t size() const;
  };

  Schema schema_;
  double blocking_factor_;
  std::size_t row_count_ = 0;
  std::vector<Column> columns_;
};

}  // namespace mvd
