// Runtime values held by the in-memory storage engine and evaluated by the
// executor. A Value is a tagged union over the catalog's ValueType set;
// dates are int64 days-since-epoch carrying the kDate tag.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <variant>

#include "src/catalog/value_type.hpp"

namespace mvd {

class Value {
 public:
  Value() : type_(ValueType::kInt64), data_(std::int64_t{0}) {}

  static Value int64(std::int64_t v) { return Value(ValueType::kInt64, v); }
  static Value real(double v) { return Value(ValueType::kDouble, v); }
  static Value string(std::string v) {
    return Value(ValueType::kString, std::move(v));
  }
  static Value boolean(bool v) { return Value(ValueType::kBool, v); }
  /// A date from days-since-epoch.
  static Value date(std::int64_t days) { return Value(ValueType::kDate, days); }
  /// A date from a civil y/m/d (proleptic Gregorian).
  static Value date_ymd(int year, int month, int day);

  ValueType type() const { return type_; }

  std::int64_t as_int64() const;
  double as_double() const;  // int64/date/double coerce; others throw
  const std::string& as_string() const;
  bool as_bool() const;

  /// Total order within one type; comparing across incompatible types
  /// throws ExecError (numeric kinds compare by as_double()).
  std::strong_ordering compare(const Value& other) const;
  bool operator==(const Value& other) const;

  std::size_t hash() const;

  /// Display form: strings quoted, dates as YYYY-MM-DD.
  std::string to_string() const;

  /// Days-since-epoch for a civil date (Howard Hinnant's algorithm).
  static std::int64_t days_from_civil(int year, int month, int day);
  /// Inverse of days_from_civil.
  static void civil_from_days(std::int64_t days, int& year, int& month,
                              int& day);

 private:
  template <typename T>
  Value(ValueType type, T&& data) : type_(type), data_(std::forward<T>(data)) {}

  ValueType type_;
  std::variant<std::int64_t, double, std::string, bool> data_;
};

}  // namespace mvd

template <>
struct std::hash<mvd::Value> {
  std::size_t operator()(const mvd::Value& v) const { return v.hash(); }
};
