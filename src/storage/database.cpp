#include "src/storage/database.hpp"

#include "src/common/error.hpp"

namespace mvd {

Database::Database(const Database& other) {
  for (const auto& [name, table] : other.tables_) {
    tables_.emplace(name, std::make_shared<Table>(*table));
  }
}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  Database copy(other);
  tables_ = std::move(copy.tables_);
  return *this;
}

void Database::add_table(const std::string& name, Table table) {
  if (tables_.contains(name)) {
    throw ExecError("duplicate table '" + name + "'");
  }
  tables_.emplace(name, std::make_shared<Table>(std::move(table)));
}

void Database::put_table(const std::string& name, Table table) {
  tables_.insert_or_assign(name, std::make_shared<Table>(std::move(table)));
}

void Database::put_shared(const std::string& name,
                          std::shared_ptr<Table> table) {
  if (table == nullptr) throw ExecError("put_shared: null table");
  tables_.insert_or_assign(name, std::move(table));
}

bool Database::has_table(const std::string& name) const {
  return tables_.contains(name);
}

const Table& Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw ExecError("unknown table '" + name + "'");
  return *it->second;
}

Table& Database::mutable_table(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw ExecError("unknown table '" + name + "'");
  return *it->second;
}

std::shared_ptr<Table> Database::shared_table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw ExecError("unknown table '" + name + "'");
  return it->second;
}

void Database::drop_table(const std::string& name) {
  if (tables_.erase(name) == 0) {
    throw ExecError("cannot drop unknown table '" + name + "'");
  }
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [n, _] : tables_) names.push_back(n);
  return names;
}

}  // namespace mvd
