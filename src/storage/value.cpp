#include "src/storage/value.hpp"

#include <sstream>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/hash.hpp"

namespace mvd {

Value Value::date_ymd(int year, int month, int day) {
  return date(days_from_civil(year, month, day));
}

std::int64_t Value::as_int64() const {
  if (type_ == ValueType::kInt64 || type_ == ValueType::kDate) {
    return std::get<std::int64_t>(data_);
  }
  throw ExecError("value " + to_string() + " is not an integer");
}

double Value::as_double() const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kDate:
      return static_cast<double>(std::get<std::int64_t>(data_));
    case ValueType::kDouble:
      return std::get<double>(data_);
    default:
      throw ExecError("value " + to_string() + " is not numeric");
  }
}

const std::string& Value::as_string() const {
  if (type_ != ValueType::kString) {
    throw ExecError("value " + to_string() + " is not a string");
  }
  return std::get<std::string>(data_);
}

bool Value::as_bool() const {
  if (type_ != ValueType::kBool) {
    throw ExecError("value " + to_string() + " is not a bool");
  }
  return std::get<bool>(data_);
}

namespace {
std::strong_ordering order_doubles(double a, double b) {
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}
}  // namespace

std::strong_ordering Value::compare(const Value& other) const {
  if (is_numeric(type_) && is_numeric(other.type_)) {
    return order_doubles(as_double(), other.as_double());
  }
  if (type_ != other.type_) {
    throw ExecError("cannot compare " + to_string() + " with " +
                    other.to_string());
  }
  switch (type_) {
    case ValueType::kString: {
      const int c = as_string().compare(other.as_string());
      if (c < 0) return std::strong_ordering::less;
      if (c > 0) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    case ValueType::kBool:
      return static_cast<int>(as_bool()) <=> static_cast<int>(other.as_bool());
    default:
      MVD_ASSERT_MSG(false, "unhandled type in compare");
      return std::strong_ordering::equal;
  }
}

bool Value::operator==(const Value& other) const {
  if (is_numeric(type_) != is_numeric(other.type_)) return false;
  if (!is_numeric(type_) && type_ != other.type_) return false;
  return compare(other) == std::strong_ordering::equal;
}

std::size_t Value::hash() const {
  std::size_t seed = 0;
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kDate:
      // Hash numerics through double so 1 (int) and 1.0 (double) — which
      // compare equal — also hash equal.
      hash_combine(seed, static_cast<double>(std::get<std::int64_t>(data_)));
      break;
    case ValueType::kDouble:
      hash_combine(seed, std::get<double>(data_));
      break;
    case ValueType::kString:
      hash_combine(seed, std::get<std::string>(data_));
      break;
    case ValueType::kBool:
      hash_combine(seed, std::get<bool>(data_));
      break;
  }
  return seed;
}

std::string Value::to_string() const {
  std::ostringstream os;
  switch (type_) {
    case ValueType::kInt64:
      os << std::get<std::int64_t>(data_);
      break;
    case ValueType::kDouble:
      os << std::get<double>(data_);
      break;
    case ValueType::kString:
      os << '\'' << std::get<std::string>(data_) << '\'';
      break;
    case ValueType::kBool:
      os << (std::get<bool>(data_) ? "true" : "false");
      break;
    case ValueType::kDate: {
      int y = 0, m = 0, d = 0;
      civil_from_days(std::get<std::int64_t>(data_), y, m, d);
      os << y << '-' << (m < 10 ? "0" : "") << m << '-' << (d < 10 ? "0" : "")
         << d;
      break;
    }
  }
  return os.str();
}

std::int64_t Value::days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<std::int64_t>(era) * 146097 +
         static_cast<std::int64_t>(doe) - 719468;
}

void Value::civil_from_days(std::int64_t z, int& year, int& month, int& day) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  month = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  year = static_cast<int>(y + (month <= 2));
}

}  // namespace mvd
