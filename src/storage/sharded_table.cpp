#include "src/storage/sharded_table.hpp"

#include <cstring>

#include "src/common/error.hpp"
#include "src/obs/trace.hpp"

namespace mvd {

namespace {

// FNV-1a over the value's packed bytes. Numeric kinds pack as the double
// bit pattern (mirroring the executor's packed group keys, so values that
// compare equal hash equal), strings pack raw, bools as one byte.
std::uint64_t fnv1a(const unsigned char* data, std::size_t n,
                    std::uint64_t h = 14695981039346656037ull) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_value_stable(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
    case ValueType::kDate:
    case ValueType::kDouble: {
      double d = v.as_double();
      if (d == 0.0) d = 0.0;  // fold -0.0 onto +0.0 (they compare equal)
      unsigned char bytes[sizeof(double)];
      std::memcpy(bytes, &d, sizeof(double));
      return fnv1a(bytes, sizeof(double));
    }
    case ValueType::kString: {
      const std::string& s = v.as_string();
      return fnv1a(reinterpret_cast<const unsigned char*>(s.data()), s.size());
    }
    case ValueType::kBool: {
      unsigned char b = v.as_bool() ? 1 : 0;
      return fnv1a(&b, 1);
    }
  }
  throw ExecError("unhashable value type");
}

}  // namespace

std::size_t ShardedTable::bucket_of(const Value& key) {
  return static_cast<std::size_t>(hash_value_stable(key) % kBuckets);
}

ShardedTable ShardedTable::partition(const Table& src,
                                     const std::string& key_column) {
  ShardedTable out;
  out.key_column_ = key_column;
  out.key_index_ = src.schema().index_of(key_column);
  out.slices_.reserve(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out.slices_.emplace_back(src.schema(), src.blocking_factor());
  }
  for (const Tuple& row : src.rows()) {
    out.slices_[bucket_of(row[out.key_index_])].append(row);
  }
  return out;
}

std::size_t ShardedTable::total_rows() const {
  std::size_t rows = 0;
  for (const Table& s : slices_) rows += s.row_count();
  return rows;
}

double ShardedTable::total_blocks() const {
  double blocks = 0;
  for (const Table& s : slices_) blocks += s.blocks();
  return blocks;
}

Table ShardedTable::gathered() const {
  Table out(slices_.front().schema(), slices_.front().blocking_factor());
  for (const Table& s : slices_) {
    for (const Tuple& row : s.rows()) out.append(row);
  }
  return out;
}

// ---- ShardedDatabase ---------------------------------------------------

ShardedDatabase::ShardedDatabase(std::size_t shards) : shards_(shards) {
  if (shards_ < 1 || shards_ > kBuckets) {
    throw ExecError("shard count must be in [1, " + std::to_string(kBuckets) +
                    "]");
  }
  buckets_.resize(kBuckets);
}

std::size_t ShardedDatabase::shard_of_bucket(std::size_t bucket) const {
  return bucket * shards_ / kBuckets;
}

std::pair<std::size_t, std::size_t> ShardedDatabase::bucket_range(
    std::size_t shard) const {
  auto begin = (shard * kBuckets + shards_ - 1) / shards_;
  auto end = ((shard + 1) * kBuckets + shards_ - 1) / shards_;
  return {begin, end};
}

void ShardedDatabase::add_replicated(const std::string& name, Table table) {
  MVD_TRACE_SPAN("exec.exchange", "broadcast");
  const double rows = static_cast<double>(table.row_count());
  const double blocks = table.blocks();
  const double bytes = approx_table_bytes(table);
  coordinator_.add_table(name, std::move(table));
  replicated_.insert(name);
  auto shared = coordinator_.shared_table(name);
  for (Database& bucket : buckets_) bucket.put_shared(name, shared);
  record_broadcast(log_, rows, blocks, bytes, shards_);
  bump_generation();
}

void ShardedDatabase::add_partitioned(const std::string& name,
                                      const Table& src,
                                      const std::string& key_column) {
  MVD_TRACE_SPAN("exec.exchange", "shuffle");
  if (replicated_.contains(name)) {
    throw ExecError("'" + name + "' is already replicated");
  }
  ShardedTable parts = ShardedTable::partition(src, key_column);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].add_table(name, std::move(parts.mutable_slice(b)));
  }
  partition_key_[name] = key_column;
  record_shuffle(log_, static_cast<double>(src.row_count()), src.blocks());
  bump_generation();
}

void ShardedDatabase::put_partitioned_slices(const std::string& name,
                                             std::vector<Table> slices,
                                             const std::string& key_column) {
  if (slices.size() != kBuckets) {
    throw ExecError("put_partitioned_slices: expected one slice per bucket");
  }
  if (replicated_.contains(name)) {
    throw ExecError("'" + name + "' is already replicated");
  }
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].put_table(name, std::move(slices[b]));
  }
  partition_key_[name] = key_column;
  bump_generation();
}

void ShardedDatabase::put_global(const std::string& name, Table table) {
  if (is_partitioned(name)) {
    throw ExecError("'" + name + "' is already partitioned");
  }
  coordinator_.put_table(name, std::move(table));
  replicated_.insert(name);
  auto shared = coordinator_.shared_table(name);
  for (Database& bucket : buckets_) bucket.put_shared(name, shared);
  bump_generation();
}

bool ShardedDatabase::is_partitioned(const std::string& name) const {
  return partition_key_.contains(name);
}

const std::string* ShardedDatabase::partition_key(
    const std::string& name) const {
  auto it = partition_key_.find(name);
  if (it == partition_key_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

std::vector<std::string> ShardedDatabase::partitioned_names() const {
  std::vector<std::string> names;
  names.reserve(partition_key_.size());
  for (const auto& [n, _] : partition_key_) names.push_back(n);
  return names;
}

Table ShardedDatabase::gathered(const std::string& name) {
  MVD_TRACE_SPAN("exec.exchange", "gather");
  if (!is_partitioned(name)) {
    throw ExecError("'" + name + "' is not partitioned");
  }
  const Table& first = buckets_.front().table(name);
  Table out(first.schema(), first.blocking_factor());
  double blocks = 0;
  for (const Database& bucket : buckets_) {
    const Table& slice = bucket.table(name);
    blocks += slice.blocks();
    for (const Tuple& row : slice.rows()) out.append(row);
  }
  record_gather(log_, static_cast<double>(out.row_count()), blocks);
  return out;
}

std::size_t ShardedDatabase::partitioned_rows(const std::string& name) const {
  if (!is_partitioned(name)) {
    throw ExecError("'" + name + "' is not partitioned");
  }
  std::size_t rows = 0;
  for (const Database& bucket : buckets_) {
    rows += bucket.table(name).row_count();
  }
  return rows;
}

std::vector<DeltaSet> ShardedDatabase::route_deltas(
    const DeltaSet& deltas) const {
  std::vector<DeltaSet> routed(kBuckets);
  for (const auto& [name, delta] : deltas) {
    auto it = partition_key_.find(name);
    if (it == partition_key_.end()) continue;
    if (it->second.empty()) {
      throw ExecError("cannot route deltas for keyless partitioned view '" +
                      name + "'");
    }
    const std::size_t ki = delta.schema().index_of(it->second);
    std::vector<DeltaTable> parts;
    parts.reserve(kBuckets);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      parts.emplace_back(delta.schema(), delta.blocking_factor());
    }
    for (const Tuple& row : delta.inserts().rows()) {
      parts[ShardedTable::bucket_of(row[ki])].add_insert(row);
    }
    for (const Tuple& row : delta.deletes().rows()) {
      parts[ShardedTable::bucket_of(row[ki])].add_delete(row);
    }
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (!parts[b].empty()) routed[b].emplace(name, std::move(parts[b]));
    }
  }
  return routed;
}

void ShardedDatabase::apply_base_deltas(const DeltaSet& deltas) {
  std::vector<DeltaSet> routed = route_deltas(deltas);
  for (const auto& [name, delta] : deltas) {
    if (delta.empty()) continue;
    if (is_partitioned(name)) {
      MVD_TRACE_SPAN("exec.exchange", "shuffle");
      double blocks = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        auto it = routed[b].find(name);
        if (it == routed[b].end()) continue;
        blocks += it->second.blocks();
        apply_delta(buckets_[b].mutable_table(name), it->second);
      }
      record_shuffle(log_, static_cast<double>(delta.row_count()), blocks);
    } else if (replicated_.contains(name)) {
      MVD_TRACE_SPAN("exec.exchange", "broadcast");
      // One application to the shared master updates every alias.
      apply_delta(coordinator_.mutable_table(name), delta);
      record_broadcast(log_, static_cast<double>(delta.row_count()),
                       delta.blocks(), approx_delta_bytes(delta), shards_);
    } else {
      throw ExecError("delta for unknown sharded relation '" + name + "'");
    }
  }
  bump_generation();
}

void ShardedDatabase::sync_replicas() {
  for (const std::string& name : replicated_) {
    auto shared = coordinator_.shared_table(name);
    for (Database& bucket : buckets_) bucket.put_shared(name, shared);
  }
}

ShardedDatabase shard_database(
    const Database& db, std::size_t shards,
    const std::map<std::string, std::string>& partition_keys) {
  ShardedDatabase out(shards);
  for (const std::string& name : db.table_names()) {
    auto it = partition_keys.find(name);
    if (it != partition_keys.end()) {
      out.add_partitioned(name, db.table(name), it->second);
    } else {
      out.add_replicated(name, db.table(name));
    }
  }
  return out;
}

}  // namespace mvd
