#include "src/storage/column_table.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"

namespace mvd {

ColumnKind column_kind(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
    case ValueType::kDate:
      return ColumnKind::kInt64Col;
    case ValueType::kDouble:
      return ColumnKind::kDoubleCol;
    case ValueType::kString:
      return ColumnKind::kStringCol;
    case ValueType::kBool:
      return ColumnKind::kBoolCol;
  }
  MVD_ASSERT(false);
  return ColumnKind::kInt64Col;
}

std::size_t ColumnTable::Column::size() const {
  switch (kind) {
    case ColumnKind::kInt64Col: return i64.size();
    case ColumnKind::kDoubleCol: return f64.size();
    case ColumnKind::kStringCol: return str.size();
    case ColumnKind::kBoolCol: return b8.size();
  }
  MVD_ASSERT(false);
  return 0;
}

ColumnTable::ColumnTable(Schema schema, double blocking_factor)
    : schema_(std::move(schema)), blocking_factor_(blocking_factor) {
  MVD_ASSERT(blocking_factor_ > 0);
  columns_.resize(schema_.size());
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    columns_[c].kind = column_kind(schema_.at(c).type);
  }
}

ColumnTable ColumnTable::from_table(const Table& table) {
  ColumnTable out(table.schema(), table.blocking_factor());
  out.reserve(table.row_count());
  for (std::size_t c = 0; c < out.columns_.size(); ++c) {
    Column& col = out.columns_[c];
    switch (col.kind) {
      case ColumnKind::kInt64Col:
        for (const Tuple& t : table.rows()) col.i64.push_back(t[c].as_int64());
        break;
      case ColumnKind::kDoubleCol:
        for (const Tuple& t : table.rows()) col.f64.push_back(t[c].as_double());
        break;
      case ColumnKind::kStringCol:
        for (const Tuple& t : table.rows()) col.str.push_back(t[c].as_string());
        break;
      case ColumnKind::kBoolCol:
        for (const Tuple& t : table.rows()) {
          col.b8.push_back(t[c].as_bool() ? 1 : 0);
        }
        break;
    }
  }
  out.row_count_ = table.row_count();
  return out;
}

Table ColumnTable::to_table() const {
  Table out(schema_, blocking_factor_);
  for (std::size_t r = 0; r < row_count_; ++r) {
    Tuple t;
    t.reserve(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      t.push_back(value_at(r, c));
    }
    out.append(std::move(t));
  }
  return out;
}

double ColumnTable::blocks() const {
  if (row_count_ == 0) return 0;
  return std::max(
      1.0, std::ceil(static_cast<double>(row_count_) / blocking_factor_));
}

const std::vector<std::int64_t>& ColumnTable::i64(std::size_t col) const {
  MVD_ASSERT(columns_[col].kind == ColumnKind::kInt64Col);
  return columns_[col].i64;
}

const std::vector<double>& ColumnTable::f64(std::size_t col) const {
  MVD_ASSERT(columns_[col].kind == ColumnKind::kDoubleCol);
  return columns_[col].f64;
}

const std::vector<std::string>& ColumnTable::str(std::size_t col) const {
  MVD_ASSERT(columns_[col].kind == ColumnKind::kStringCol);
  return columns_[col].str;
}

const std::vector<std::uint8_t>& ColumnTable::b8(std::size_t col) const {
  MVD_ASSERT(columns_[col].kind == ColumnKind::kBoolCol);
  return columns_[col].b8;
}

Value ColumnTable::value_at(std::size_t row, std::size_t col) const {
  MVD_ASSERT(row < row_count_ && col < columns_.size());
  const Column& c = columns_[col];
  switch (c.kind) {
    case ColumnKind::kInt64Col:
      return schema_.at(col).type == ValueType::kDate
                 ? Value::date(c.i64[row])
                 : Value::int64(c.i64[row]);
    case ColumnKind::kDoubleCol:
      return Value::real(c.f64[row]);
    case ColumnKind::kStringCol:
      return Value::string(c.str[row]);
    case ColumnKind::kBoolCol:
      return Value::boolean(c.b8[row] != 0);
  }
  MVD_ASSERT(false);
  return Value::int64(0);
}

void ColumnTable::append_row(const Tuple& tuple) {
  if (tuple.size() != schema_.size()) {
    throw ExecError("tuple arity " + std::to_string(tuple.size()) +
                    " does not match schema arity " +
                    std::to_string(schema_.size()));
  }
  for (std::size_t c = 0; c < tuple.size(); ++c) {
    if (column_kind(tuple[c].type()) != columns_[c].kind) {
      throw ExecError("type mismatch for " + schema_.at(c).qualified() +
                      ": declared " + to_string(schema_.at(c).type) + ", got " +
                      to_string(tuple[c].type()));
    }
  }
  for (std::size_t c = 0; c < tuple.size(); ++c) append_value(c, tuple[c]);
  ++row_count_;
}

void ColumnTable::reserve(std::size_t rows) {
  for (Column& c : columns_) {
    switch (c.kind) {
      case ColumnKind::kInt64Col: c.i64.reserve(rows); break;
      case ColumnKind::kDoubleCol: c.f64.reserve(rows); break;
      case ColumnKind::kStringCol: c.str.reserve(rows); break;
      case ColumnKind::kBoolCol: c.b8.reserve(rows); break;
    }
  }
}

void ColumnTable::append_value(std::size_t col, const Value& v) {
  Column& c = columns_[col];
  switch (c.kind) {
    case ColumnKind::kInt64Col: c.i64.push_back(v.as_int64()); break;
    case ColumnKind::kDoubleCol: c.f64.push_back(v.as_double()); break;
    case ColumnKind::kStringCol: c.str.push_back(v.as_string()); break;
    case ColumnKind::kBoolCol: c.b8.push_back(v.as_bool() ? 1 : 0); break;
  }
}

void ColumnTable::append_gather(std::size_t col, const ColumnTable& from,
                                std::size_t from_col, const std::uint32_t* rows,
                                std::size_t n) {
  Column& dst = columns_[col];
  const Column& src = from.columns_[from_col];
  MVD_ASSERT(dst.kind == src.kind);
  switch (dst.kind) {
    case ColumnKind::kInt64Col:
      dst.i64.reserve(dst.i64.size() + n);
      for (std::size_t i = 0; i < n; ++i) dst.i64.push_back(src.i64[rows[i]]);
      break;
    case ColumnKind::kDoubleCol:
      dst.f64.reserve(dst.f64.size() + n);
      for (std::size_t i = 0; i < n; ++i) dst.f64.push_back(src.f64[rows[i]]);
      break;
    case ColumnKind::kStringCol:
      dst.str.reserve(dst.str.size() + n);
      for (std::size_t i = 0; i < n; ++i) dst.str.push_back(src.str[rows[i]]);
      break;
    case ColumnKind::kBoolCol:
      dst.b8.reserve(dst.b8.size() + n);
      for (std::size_t i = 0; i < n; ++i) dst.b8.push_back(src.b8[rows[i]]);
      break;
  }
}

void ColumnTable::set_row_count(std::size_t rows) {
  for (const Column& c : columns_) {
    MVD_ASSERT_MSG(c.size() == rows, "column holds " << c.size()
                                                     << " cells, expected "
                                                     << rows);
  }
  row_count_ = rows;
}

}  // namespace mvd
