// Hash-partitioned storage for the sharded execution layer.
//
// A relation is split into a fixed number of *virtual buckets* (64) by a
// platform-stable hash of one key column; a shard owns a contiguous range
// of buckets. Keeping the bucket count independent of the shard count is
// what makes sharded execution deterministic: the bucket is the unit of
// partitioning, per-bucket execution, and partial-aggregate merging, so
// per-bucket results — and their bucket-order concatenation — are
// bit-identical at any (shards x threads) configuration. Changing the
// shard count only changes which worker runs which buckets.
//
// ShardedDatabase models the paper's §4.1 site layout in-process:
//
//   coordinator   the warehouse site — master copies of replicated
//                 dimensions, globally-stored (aggregate) views, final
//                 merge targets
//   buckets       64 bucket-local Databases holding this bucket's fact
//                 slice and partitioned-view slices, plus shared aliases
//                 of every replicated table (a shard's buckets all read
//                 the same physical dimension replica)
//
// Dimension tables are replicated (broadcast), fact tables and views
// rooted over them are hash-partitioned (shuffle), per-bucket results are
// collected in bucket order (gather); the exchange traffic is tallied in
// an ExchangeCounters log (src/exec/exchange.hpp) that the §4.1
// validation test compares against DistributedMvppEvaluator predictions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/exec/exchange.hpp"
#include "src/storage/database.hpp"
#include "src/storage/delta_table.hpp"
#include "src/storage/table.hpp"

namespace mvd {

/// One relation hash-split into kBuckets slices on one key column.
/// A value helper: ShardedDatabase stores slices inside bucket databases;
/// this class owns the partitioning math and is used stand-alone in tests.
class ShardedTable {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// Owning bucket of a key value: FNV-1a over the value's packed bytes
  /// (same packing as the executor's group keys), stable across platforms
  /// and shard counts. Int64/date/double hash by double bit pattern, so
  /// int64 5 and double 5.0 land in the same bucket — matching Value
  /// equality semantics used by join and aggregate keys.
  static std::size_t bucket_of(const Value& key);

  /// Split `src` on `key_column` (bare or qualified; resolved against the
  /// schema) into kBuckets slices, preserving source row order within
  /// each bucket. Throws BindError when the column is absent.
  static ShardedTable partition(const Table& src, const std::string& key_column);

  const std::string& key_column() const { return key_column_; }
  std::size_t key_index() const { return key_index_; }

  const Table& slice(std::size_t bucket) const { return slices_.at(bucket); }
  Table& mutable_slice(std::size_t bucket) { return slices_.at(bucket); }

  std::size_t total_rows() const;
  double total_blocks() const;

  /// Bucket-order concatenation (the gather merge order).
  Table gathered() const;

 private:
  ShardedTable() = default;

  std::string key_column_;
  std::size_t key_index_ = 0;
  std::vector<Table> slices_;
};

/// The in-process site layout: one coordinator database plus kBuckets
/// bucket-local databases, with shards owning contiguous bucket ranges.
class ShardedDatabase {
 public:
  static constexpr std::size_t kBuckets = ShardedTable::kBuckets;

  /// `shards` in [1, kBuckets]. One shard is the degenerate layout where
  /// a single site owns every bucket — still bucket-partitioned, so its
  /// results are bit-identical to any other shard count.
  explicit ShardedDatabase(std::size_t shards);

  std::size_t shards() const { return shards_; }

  /// Owning shard of a bucket: contiguous ranges, floor(b * shards / 64).
  std::size_t shard_of_bucket(std::size_t bucket) const;
  /// Half-open bucket range [begin, end) owned by `shard`.
  std::pair<std::size_t, std::size_t> bucket_range(std::size_t shard) const;

  // ---- Loading ---------------------------------------------------------

  /// Replicate `table` to every shard (and the coordinator): one physical
  /// master copy at the coordinator, aliased into each bucket database.
  /// Counts a broadcast of rows x shards.
  void add_replicated(const std::string& name, Table table);

  /// Hash-partition `src` on `key_column` into the bucket databases.
  /// Counts the partitioning shuffle (every row routed once).
  void add_partitioned(const std::string& name, const Table& src,
                       const std::string& key_column);

  /// Install per-bucket slices of a derived relation (a partitioned view
  /// produced by per-bucket deploy runs). `key_column` may be empty when
  /// the partition key does not survive the view's projection — the view
  /// is still stored and refreshed per bucket, it just cannot route
  /// point queries. Replaces any previous slices.
  void put_partitioned_slices(const std::string& name,
                              std::vector<Table> slices,
                              const std::string& key_column);

  /// Store-or-replace a coordinator-resident (global) relation and alias
  /// it into every bucket database so per-bucket plans can read it.
  void put_global(const std::string& name, Table table);

  // ---- Introspection ---------------------------------------------------

  bool is_partitioned(const std::string& name) const;
  /// Partition key of a partitioned relation; nullptr when the relation
  /// is not partitioned or its key did not survive (see above).
  const std::string* partition_key(const std::string& name) const;
  std::vector<std::string> partitioned_names() const;

  Database& coordinator() { return coordinator_; }
  const Database& coordinator() const { return coordinator_; }
  Database& bucket(std::size_t b) { return buckets_.at(b); }
  const Database& bucket(std::size_t b) const { return buckets_.at(b); }

  /// Bucket-order concatenation of a partitioned relation's slices.
  /// Counts a gather.
  Table gathered(const std::string& name);

  std::size_t partitioned_rows(const std::string& name) const;

  // ---- Maintenance -----------------------------------------------------

  /// Split a base-update round's partitioned-table deltas by owning
  /// bucket (replicated-table deltas are not routed — they broadcast
  /// whole). Pure routing; the shuffle is counted by apply_base_deltas.
  std::vector<DeltaSet> route_deltas(const DeltaSet& deltas) const;

  /// Apply one base-update round: replicated-table deltas apply once to
  /// the shared master (visible through every alias; counted as a
  /// broadcast of rows x shards), partitioned-table deltas shuffle to
  /// their owning bucket slices.
  void apply_base_deltas(const DeltaSet& deltas);

  /// Re-alias every replicated / global relation into the bucket
  /// databases (needed after put_table replaced a coordinator entry).
  void sync_replicas();

  /// Monotonic mutation stamp: bumped by every load/maintenance call so
  /// cached per-bucket executors (ShardedExecutor) know to rebuild their
  /// column caches. Mutating bucket databases directly requires a manual
  /// bump_generation().
  std::uint64_t generation() const { return generation_; }
  void bump_generation() { ++generation_; }

  ExchangeCounters& exchange_log() { return log_; }
  const ExchangeCounters& exchange_log() const { return log_; }

 private:
  std::size_t shards_;
  Database coordinator_;
  std::vector<Database> buckets_;
  // Partitioned relation -> key column ("" = key lost in projection).
  std::map<std::string, std::string> partition_key_;
  // Replicated tables and global views aliased into bucket databases.
  std::set<std::string> replicated_;
  std::uint64_t generation_ = 0;
  ExchangeCounters log_;
};

/// Build the sharded layout of `db`: relations named in `partition_keys`
/// (relation -> hash column) are hash-partitioned, everything else is
/// replicated.
ShardedDatabase shard_database(const Database& db, std::size_t shards,
                               const std::map<std::string, std::string>&
                                   partition_keys);

}  // namespace mvd
