// Signed row deltas — the unit of incremental view maintenance.
//
// A DeltaTable is a pair of bags (inserts, deletes) over one schema,
// representing the multiset difference `after − before` of a relation.
// Deltas use the same Table block accounting the cost model reasons in,
// so executed delta work is directly comparable to the incremental
// maintenance estimates (src/maintenance/incremental.hpp). A DeltaSet
// names the deltas of one update round the way a Database names tables;
// the propagation operators (src/exec/delta.hpp) look leaves up in it.
#pragma once

#include <map>
#include <string>

#include "src/storage/table.hpp"

namespace mvd {

class DeltaTable {
 public:
  explicit DeltaTable(Schema schema, double blocking_factor = 10.0);

  const Schema& schema() const { return inserts_.schema(); }
  double blocking_factor() const { return inserts_.blocking_factor(); }

  const Table& inserts() const { return inserts_; }
  const Table& deletes() const { return deletes_; }

  /// Append with the usual Table arity/type checks.
  void add_insert(Tuple tuple) { inserts_.append(std::move(tuple)); }
  void add_delete(Tuple tuple) { deletes_.append(std::move(tuple)); }

  std::size_t row_count() const {
    return inserts_.row_count() + deletes_.row_count();
  }
  bool empty() const { return row_count() == 0; }

  /// Combined size in blocks (insert blocks + delete blocks).
  double blocks() const { return inserts_.blocks() + deletes_.blocks(); }

  /// Copy with matched insert/delete pairs cancelled (bag semantics).
  /// An update stream that rewrites a row to itself produces such pairs;
  /// cancelling them before propagation avoids amplifying no-op work.
  DeltaTable compacted() const;

  /// The bag difference `after − before` (schemas must have equal arity;
  /// tuples compare by value, so an int64 1 matches a double 1.0).
  static DeltaTable diff(const Table& before, const Table& after);

  /// Both sides copied under a new (e.g. qualified) schema via
  /// Table::rebind. Throws ExecError on incompatibility.
  static DeltaTable rebind(Schema schema, const DeltaTable& src);

 private:
  Table inserts_;
  Table deletes_;
};

/// The named deltas of one update round, keyed like Database tables (base
/// relations under their catalog names, refreshed views under their MVPP
/// node names). A missing or empty entry means "unchanged".
using DeltaSet = std::map<std::string, DeltaTable>;

/// Apply `delta` to `stored` in place: bag-subtract the deletes, append
/// the inserts. Throws ExecError when a delete has no matching stored row
/// (the stored view disagrees with the state the delta was derived from).
void apply_delta(Table& stored, const DeltaTable& delta);

}  // namespace mvd
