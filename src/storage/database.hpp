// A Database is the named collection of base-relation Tables the executor
// runs against (the "member databases" of the paper, already mirrored and
// homogenized). Materialized views live beside base tables under their
// MVPP node names.
#pragma once

#include <map>
#include <string>

#include "src/storage/table.hpp"

namespace mvd {

class Database {
 public:
  /// Add a table under `name`; throws ExecError on duplicates.
  void add_table(const std::string& name, Table table);

  /// Replace-or-insert, used when refreshing materialized views.
  void put_table(const std::string& name, Table table);

  bool has_table(const std::string& name) const;
  const Table& table(const std::string& name) const;

  /// Mutable access for in-place maintenance (incremental refresh applies
  /// deltas to stored views without copying them). Throws like table().
  Table& mutable_table(const std::string& name);

  void drop_table(const std::string& name);

  std::vector<std::string> table_names() const;

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace mvd
