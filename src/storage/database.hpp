// A Database is the named collection of base-relation Tables the executor
// runs against (the "member databases" of the paper, already mirrored and
// homogenized). Materialized views live beside base tables under their
// MVPP node names.
//
// Entries are held through shared_ptr so one physical table can be
// registered in several databases at once — the sharded execution layer
// aliases each replicated dimension (and every coordinator-resident view)
// into its per-bucket databases instead of copying it 64 times. Copying a
// Database still deep-copies every table (value semantics), so snapshot
// twins used by the differential refresh tests stay independent.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/storage/table.hpp"

namespace mvd {

class Database {
 public:
  Database() = default;
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Add a table under `name`; throws ExecError on duplicates.
  void add_table(const std::string& name, Table table);

  /// Replace-or-insert, used when refreshing materialized views.
  void put_table(const std::string& name, Table table);

  /// Replace-or-insert an *alias*: the entry shares `table` with every
  /// other holder instead of owning a private copy. In-place mutations
  /// through any holder are visible to all of them; put_table replaces
  /// only this database's entry (other aliases keep the old object).
  void put_shared(const std::string& name, std::shared_ptr<Table> table);

  bool has_table(const std::string& name) const;
  const Table& table(const std::string& name) const;

  /// Mutable access for in-place maintenance (incremental refresh applies
  /// deltas to stored views without copying them). Throws like table().
  /// Mutating a shared entry (see put_shared) is visible through every
  /// alias of it.
  Table& mutable_table(const std::string& name);

  /// The shared handle behind `name`, for aliasing into other databases.
  std::shared_ptr<Table> shared_table(const std::string& name) const;

  void drop_table(const std::string& name);

  std::vector<std::string> table_names() const;

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace mvd
