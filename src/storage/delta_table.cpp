#include "src/storage/delta_table.hpp"

#include <cstdint>
#include <cstring>
#include <unordered_map>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"

namespace mvd {

namespace {

// Lossless tuple encoding for bag matching: numerics by their double bit
// pattern (so values that compare equal across kInt64/kDate/kDouble also
// key equal, mirroring Value::operator==; zeros normalized so -0.0 and
// +0.0 share a key), strings length-prefixed, bools one byte.
void append_value_key(std::string& key, const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
    case ValueType::kDate:
    case ValueType::kDouble: {
      double d = v.as_double();
      if (d == 0) d = 0;  // collapse -0.0
      char bits[sizeof(double)];
      std::memcpy(bits, &d, sizeof(double));
      key += 'n';
      key.append(bits, sizeof(double));
      return;
    }
    case ValueType::kString: {
      const auto len = static_cast<std::uint32_t>(v.as_string().size());
      char bits[sizeof(len)];
      std::memcpy(bits, &len, sizeof(len));
      key += 's';
      key.append(bits, sizeof(len));
      key += v.as_string();
      return;
    }
    case ValueType::kBool:
      key += 'b';
      key += v.as_bool() ? '\1' : '\0';
      return;
  }
  MVD_ASSERT(false);
}

std::string tuple_key(const Tuple& t) {
  std::string key;
  for (const Value& v : t) append_value_key(key, v);
  return key;
}

// Allocation-free 64-bit tuple hash with the same equivalence as
// tuple_key (numerics by normalized double bits, so kInt64 1 and kDouble
// 1.0 hash equal). Collisions are resolved by tuples_match, so this only
// needs to be consistent, not perfect.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t tuple_hash(const Tuple& t) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Value& v : t) {
    switch (v.type()) {
      case ValueType::kInt64:
      case ValueType::kDate:
      case ValueType::kDouble: {
        double d = v.as_double();
        if (d == 0) d = 0;  // collapse -0.0
        std::uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        h = mix(h, bits);
        break;
      }
      case ValueType::kString:
        h = mix(h, std::hash<std::string>{}(v.as_string()));
        break;
      case ValueType::kBool:
        h = mix(h, v.as_bool() ? 2 : 3);
        break;
    }
  }
  return h;
}

bool values_match(const Value& a, const Value& b) {
  const auto numeric = [](ValueType t) {
    return t == ValueType::kInt64 || t == ValueType::kDate ||
           t == ValueType::kDouble;
  };
  if (numeric(a.type()) && numeric(b.type())) {
    return a.as_double() == b.as_double();
  }
  if (a.type() != b.type()) return false;
  if (a.type() == ValueType::kString) return a.as_string() == b.as_string();
  return a.as_bool() == b.as_bool();
}

bool tuples_match(const Tuple& a, const Tuple& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!values_match(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace

DeltaTable::DeltaTable(Schema schema, double blocking_factor)
    : inserts_(schema, blocking_factor),
      deletes_(std::move(schema), blocking_factor) {}

DeltaTable DeltaTable::compacted() const {
  // Pair off equal tuples across the two bags.
  std::unordered_map<std::string, std::int64_t> balance;
  for (const Tuple& t : inserts_.rows()) balance[tuple_key(t)] += 1;
  for (const Tuple& t : deletes_.rows()) balance[tuple_key(t)] -= 1;
  DeltaTable out(schema(), blocking_factor());
  std::unordered_map<std::string, std::int64_t> remaining = balance;
  for (const Tuple& t : inserts_.rows()) {
    auto& r = remaining[tuple_key(t)];
    if (r > 0) {
      out.add_insert(t);
      --r;
    }
  }
  for (const Tuple& t : deletes_.rows()) {
    auto& r = remaining[tuple_key(t)];
    if (r < 0) {
      out.add_delete(t);
      ++r;
    }
  }
  return out;
}

DeltaTable DeltaTable::diff(const Table& before, const Table& after) {
  if (before.schema().size() != after.schema().size()) {
    throw ExecError("delta diff over tables of different arity");
  }
  std::unordered_map<std::string, std::int64_t> balance;
  balance.reserve(after.row_count());
  for (const Tuple& t : after.rows()) balance[tuple_key(t)] += 1;
  for (const Tuple& t : before.rows()) balance[tuple_key(t)] -= 1;
  DeltaTable out(after.schema(), after.blocking_factor());
  std::unordered_map<std::string, std::int64_t> remaining = balance;
  for (const Tuple& t : after.rows()) {
    auto& r = remaining[tuple_key(t)];
    if (r > 0) {
      out.add_insert(t);
      --r;
    }
  }
  for (const Tuple& t : before.rows()) {
    auto& r = remaining[tuple_key(t)];
    if (r < 0) {
      out.add_delete(t);
      ++r;
    }
  }
  return out;
}

DeltaTable DeltaTable::rebind(Schema schema, const DeltaTable& src) {
  DeltaTable out(schema, src.blocking_factor());
  out.inserts_ = Table::rebind(schema, src.inserts_);
  out.deletes_ = Table::rebind(std::move(schema), src.deletes_);
  return out;
}

void apply_delta(Table& stored, const DeltaTable& delta) {
  if (delta.empty()) return;
  if (stored.schema().size() != delta.schema().size()) {
    throw ExecError("delta arity does not match the stored table");
  }
  if (delta.deletes().row_count() == 0) {
    // Insert-only batches append in place without re-reading the table.
    for (const Tuple& t : delta.inserts().rows()) stored.append(t);
    return;
  }
  // Hash-bucketed pending deletes (exemplar tuple + multiplicity), probed
  // with an allocation-free hash per stored row and verified by value, so
  // a small batch against a large view costs one cheap scan instead of a
  // keyed rebuild. Matched rows are swap-removed in descending order.
  struct Bucket {
    const Tuple* exemplar;
    std::int64_t remaining;
  };
  std::unordered_map<std::uint64_t, std::vector<Bucket>> pending;
  pending.reserve(delta.deletes().row_count());
  for (const Tuple& t : delta.deletes().rows()) {
    std::vector<Bucket>& bucket = pending[tuple_hash(t)];
    bool found = false;
    for (Bucket& b : bucket) {
      if (tuples_match(*b.exemplar, t)) {
        ++b.remaining;
        found = true;
        break;
      }
    }
    if (!found) bucket.push_back({&t, 1});
  }
  std::int64_t unmatched =
      static_cast<std::int64_t>(delta.deletes().row_count());
  std::vector<std::size_t> doomed;
  doomed.reserve(delta.deletes().row_count());
  std::size_t idx = 0;
  for (const Tuple& t : stored.rows()) {
    const auto it = pending.find(tuple_hash(t));
    if (it != pending.end()) {
      for (Bucket& b : it->second) {
        if (b.remaining > 0 && tuples_match(*b.exemplar, t)) {
          --b.remaining;
          --unmatched;
          doomed.push_back(idx);
          break;
        }
      }
      if (unmatched == 0) break;
    }
    ++idx;
  }
  if (unmatched != 0) {
    throw ExecError(
        "delta deletes rows absent from the stored table (stale or "
        "clobbered view?)");
  }
  for (auto it = doomed.rbegin(); it != doomed.rend(); ++it) {
    stored.remove_row(*it);
  }
  for (const Tuple& t : delta.inserts().rows()) stored.append(t);
}

}  // namespace mvd
