#include "src/storage/table.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/text_table.hpp"

namespace mvd {

Table::Table(Schema schema, double blocking_factor)
    : schema_(std::move(schema)), blocking_factor_(blocking_factor) {
  MVD_ASSERT(blocking_factor_ > 0);
}

namespace {
bool type_compatible(ValueType declared, ValueType actual) {
  if (declared == actual) return true;
  // Dates are stored as int64 day counts; accept either tag.
  return (declared == ValueType::kDate && actual == ValueType::kInt64) ||
         (declared == ValueType::kInt64 && actual == ValueType::kDate);
}
}  // namespace

void Table::append(Tuple tuple) {
  if (tuple.size() != schema_.size()) {
    throw ExecError("tuple arity " + std::to_string(tuple.size()) +
                    " does not match schema arity " +
                    std::to_string(schema_.size()));
  }
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (!type_compatible(schema_.at(i).type, tuple[i].type())) {
      throw ExecError("type mismatch for " + schema_.at(i).qualified() +
                      ": declared " + to_string(schema_.at(i).type) +
                      ", got " + to_string(tuple[i].type()));
    }
  }
  rows_.push_back(std::move(tuple));
}

Table Table::rebind(Schema schema, const Table& src) {
  if (schema.size() != src.schema().size()) {
    throw ExecError("cannot rebind: schema arity " +
                    std::to_string(schema.size()) +
                    " does not match source arity " +
                    std::to_string(src.schema().size()));
  }
  for (std::size_t i = 0; i < schema.size(); ++i) {
    // Declared-type compatibility transfers to the stored values: the
    // source already enforced compatibility against its own declaration.
    if (!type_compatible(schema.at(i).type, src.schema().at(i).type)) {
      throw ExecError("cannot rebind " + schema.at(i).qualified() +
                      ": declared " + to_string(schema.at(i).type) +
                      ", stored column is " +
                      to_string(src.schema().at(i).type));
    }
  }
  Table out(std::move(schema), src.blocking_factor());
  out.rows_ = src.rows_;
  return out;
}

const Tuple& Table::row(std::size_t i) const {
  MVD_ASSERT_MSG(i < rows_.size(), "row " << i << " out of range");
  return rows_[i];
}

void Table::update_row(std::size_t i, Tuple tuple) {
  MVD_ASSERT_MSG(i < rows_.size(), "row " << i << " out of range");
  append(std::move(tuple));  // reuse the arity/type checks
  rows_[i] = std::move(rows_.back());
  rows_.pop_back();
}

void Table::remove_row(std::size_t i) {
  MVD_ASSERT_MSG(i < rows_.size(), "row " << i << " out of range");
  rows_[i] = std::move(rows_.back());
  rows_.pop_back();
}

double Table::blocks() const {
  if (rows_.empty()) return 0;
  return std::max(1.0,
                  std::ceil(static_cast<double>(rows_.size()) / blocking_factor_));
}

RelationStats Table::compute_stats() const {
  RelationStats stats;
  stats.rows = static_cast<double>(rows_.size());
  stats.blocks = blocks();
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    const Attribute& attr = schema_.at(c);
    ColumnStats cs;
    std::unordered_set<Value> distinct;
    bool any_numeric = false;
    double lo = 0, hi = 0;
    for (const Tuple& t : rows_) {
      distinct.insert(t[c]);
      if (is_numeric(t[c].type())) {
        const double x = t[c].as_double();
        if (!any_numeric) {
          lo = hi = x;
          any_numeric = true;
        } else {
          lo = std::min(lo, x);
          hi = std::max(hi, x);
        }
      }
    }
    if (!rows_.empty()) cs.distinct = static_cast<double>(distinct.size());
    if (any_numeric) {
      cs.min_value = lo;
      cs.max_value = hi;
    }
    stats.columns[attr.name] = cs;
  }
  return stats;
}

std::string Table::preview(std::size_t limit) const {
  std::vector<std::string> headers;
  headers.reserve(schema_.size());
  for (const Attribute& a : schema_.attributes()) headers.push_back(a.qualified());
  TextTable t(std::move(headers));
  for (std::size_t i = 0; i < rows_.size() && i < limit; ++i) {
    std::vector<std::string> cells;
    cells.reserve(rows_[i].size());
    for (const Value& v : rows_[i]) cells.push_back(v.to_string());
    t.add_row(std::move(cells));
  }
  std::string out = t.render();
  if (rows_.size() > limit) {
    out += "... (" + std::to_string(rows_.size() - limit) + " more rows)\n";
  }
  return out;
}

}  // namespace mvd
