// In-memory tables with block accounting.
//
// The executor runs against Tables; the cost model reasons in blocks, so a
// Table reports its size in blocks using the same blocking factor the
// catalog uses, making estimated-vs-actual comparisons meaningful.
#pragma once

#include <string>
#include <vector>

#include "src/catalog/schema.hpp"
#include "src/catalog/statistics.hpp"
#include "src/storage/value.hpp"

namespace mvd {

using Tuple = std::vector<Value>;

class Table {
 public:
  explicit Table(Schema schema, double blocking_factor = 10.0);

  const Schema& schema() const { return schema_; }
  double blocking_factor() const { return blocking_factor_; }

  /// Append a tuple; arity and types are checked (kInt64 accepted where
  /// kDate is declared and vice versa — both are day counts).
  void append(Tuple tuple);

  /// Copy of `src` under a new (e.g. qualified) schema, validating column
  /// types once per column instead of once per cell. Throws ExecError on
  /// arity or declared-type incompatibility.
  static Table rebind(Schema schema, const Table& src);

  std::size_t row_count() const { return rows_.size(); }
  const Tuple& row(std::size_t i) const;
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Replace row `i`; same arity/type checks as append().
  void update_row(std::size_t i, Tuple tuple);

  /// Remove row `i` (swap-with-last, order not preserved).
  void remove_row(std::size_t i);

  /// Size in blocks: ceil(rows / blocking_factor), 0 when empty.
  double blocks() const;

  /// Derive RelationStats (rows, blocks, per-column distinct counts and
  /// numeric min/max) from the actual data. Lets generated datasets feed
  /// the estimator the truth, isolating cost-model error from stats error.
  RelationStats compute_stats() const;

  /// First `limit` rows rendered as an aligned table (for examples/demos).
  std::string preview(std::size_t limit = 10) const;

 private:
  Schema schema_;
  double blocking_factor_;
  std::vector<Tuple> rows_;
};

}  // namespace mvd
