// Tokenizer for the SQL subset (SELECT–FROM–WHERE over SPJ predicates).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mvd {

enum class TokenKind {
  kIdentifier,  // Product, Div.city   (qualification handled by the parser)
  kKeyword,     // SELECT FROM WHERE AND OR NOT TRUE FALSE DATE
  kNumber,      // 42, 3.5
  kString,      // 'LA' with '' escaping
  kSymbol,      // , . ( ) = <> != < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // raw text; keywords upper-cased, strings unquoted
  double number = 0;     // kNumber value
  bool is_integer = false;
  std::size_t offset = 0;  // byte offset, for error messages

  bool is_keyword(const std::string& kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool is_symbol(const std::string& s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
};

/// Tokenize `sql`; throws ParseError on malformed input. The returned
/// vector always ends with a kEnd token.
std::vector<Token> tokenize(const std::string& sql);

}  // namespace mvd
