#include "src/sql/parser.hpp"

#include <atomic>
#include <cstdint>
#include <optional>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/sql/lexer.hpp"

namespace mvd {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& sql) : tokens_(tokenize(sql)) {}

  ParsedQuery parse_query() {
    expect_keyword("SELECT");
    ParsedQuery q;
    parse_select_list(q);
    expect_keyword("FROM");
    q.relations.push_back(expect_identifier("relation name"));
    while (accept_symbol(",")) {
      q.relations.push_back(expect_identifier("relation name"));
    }
    if (accept_keyword("WHERE")) {
      q.where = parse_disjunction();
    }
    if (accept_keyword("GROUP")) {
      expect_keyword("BY");
      q.group_by.push_back(parse_column_name());
      while (accept_symbol(",")) q.group_by.push_back(parse_column_name());
      if (q.aggregates.empty()) {
        fail("aggregate function in the SELECT list (GROUP BY present)");
      }
    }
    expect_end();
    return q;
  }

  ExprPtr parse_standalone_predicate() {
    ExprPtr e = parse_disjunction();
    expect_end();
    return e;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }

  void advance() {
    if (cur().kind != TokenKind::kEnd) ++pos_;
  }

  [[noreturn]] void fail(const std::string& expected) const {
    throw ParseError(str_cat("expected ", expected, " at offset ",
                             cur().offset, ", found '",
                             cur().kind == TokenKind::kEnd ? "<end>"
                                                           : cur().text,
                             "'"));
  }

  bool accept_keyword(const std::string& kw) {
    if (cur().is_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }

  void expect_keyword(const std::string& kw) {
    if (!accept_keyword(kw)) fail("keyword " + kw);
  }

  bool accept_symbol(const std::string& s) {
    if (cur().is_symbol(s)) {
      advance();
      return true;
    }
    return false;
  }

  void expect_symbol(const std::string& s) {
    if (!accept_symbol(s)) fail("'" + s + "'");
  }

  std::string expect_identifier(const std::string& what) {
    if (cur().kind != TokenKind::kIdentifier) fail(what);
    std::string text = cur().text;
    advance();
    return text;
  }

  void expect_end() {
    if (cur().kind != TokenKind::kEnd) fail("end of input");
  }

  // ident or ident.ident
  std::string parse_column_name() {
    std::string name = expect_identifier("column name");
    if (accept_symbol(".")) {
      name += "." + expect_identifier("column name after '.'");
    }
    return name;
  }

  static std::optional<AggFn> agg_fn_named(const std::string& name) {
    if (equals_icase(name, "count")) return AggFn::kCount;
    if (equals_icase(name, "sum")) return AggFn::kSum;
    if (equals_icase(name, "min")) return AggFn::kMin;
    if (equals_icase(name, "max")) return AggFn::kMax;
    if (equals_icase(name, "avg")) return AggFn::kAvg;
    return std::nullopt;
  }

  void parse_select_list(ParsedQuery& q) {
    if (accept_symbol("*")) {
      q.select_list.push_back("*");
      return;
    }
    parse_select_item(q);
    while (accept_symbol(",")) parse_select_item(q);
  }

  void parse_select_item(ParsedQuery& q) {
    // Aggregate item: FN ( column | * ) [AS alias]. An identifier named
    // like an aggregate followed by '(' is the function; otherwise it is
    // a plain column.
    if (cur().kind == TokenKind::kIdentifier &&
        tokens_[pos_ + 1].is_symbol("(")) {
      const auto fn = agg_fn_named(cur().text);
      if (fn.has_value()) {
        advance();  // function name
        advance();  // '('
        AggSpec agg;
        agg.fn = *fn;
        if (accept_symbol("*")) {
          if (agg.fn != AggFn::kCount) {
            fail("a column inside the aggregate (only COUNT accepts *)");
          }
        } else {
          agg.column = parse_column_name();
        }
        expect_symbol(")");
        if (accept_keyword("AS")) {
          agg.alias = expect_identifier("alias after AS");
        }
        q.aggregates.push_back(std::move(agg));
        return;
      }
    }
    q.select_list.push_back(parse_column_name());
  }

  ExprPtr parse_disjunction() {
    std::vector<ExprPtr> terms{parse_conjunction()};
    while (accept_keyword("OR")) terms.push_back(parse_conjunction());
    return disj(std::move(terms));
  }

  ExprPtr parse_conjunction() {
    std::vector<ExprPtr> terms{parse_term()};
    while (accept_keyword("AND")) terms.push_back(parse_term());
    return conj(std::move(terms));
  }

  ExprPtr parse_term() {
    if (accept_keyword("NOT")) return neg(parse_term());
    if (accept_symbol("(")) {
      ExprPtr e = parse_disjunction();
      expect_symbol(")");
      return e;
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_operand();
    CompareOp op;
    if (accept_symbol("=")) {
      op = CompareOp::kEq;
    } else if (accept_symbol("<>") || accept_symbol("!=")) {
      op = CompareOp::kNe;
    } else if (accept_symbol("<=")) {
      op = CompareOp::kLe;
    } else if (accept_symbol(">=")) {
      op = CompareOp::kGe;
    } else if (accept_symbol("<")) {
      op = CompareOp::kLt;
    } else if (accept_symbol(">")) {
      op = CompareOp::kGt;
    } else {
      fail("comparison operator");
    }
    ExprPtr rhs = parse_operand();
    return cmp(op, std::move(lhs), std::move(rhs));
  }

  ExprPtr parse_operand() {
    if (cur().kind == TokenKind::kIdentifier) {
      // DATE 'YYYY-MM-DD' is a date literal; a lone "date" identifier is a
      // column reference.
      if (equals_icase(cur().text, "date") &&
          tokens_[pos_ + 1].kind == TokenKind::kString) {
        advance();
        const std::string text = cur().text;
        advance();
        return lit(parse_date(text));
      }
      return col(parse_column_name());
    }
    if (cur().kind == TokenKind::kNumber) {
      const Token t = cur();
      advance();
      return t.is_integer ? lit_i64(static_cast<std::int64_t>(t.number))
                          : lit_real(t.number);
    }
    if (cur().kind == TokenKind::kString) {
      std::string s = cur().text;
      advance();
      return lit_str(std::move(s));
    }
    if (accept_keyword("TRUE")) return lit(Value::boolean(true));
    if (accept_keyword("FALSE")) return lit(Value::boolean(false));
    fail("operand (column, number, string, TRUE/FALSE or DATE '...')");
  }

  Value parse_date(const std::string& text) const {
    const std::vector<std::string> parts = split(text, '-');
    if (parts.size() == 3) {
      char* e1 = nullptr;
      char* e2 = nullptr;
      char* e3 = nullptr;
      const long y = std::strtol(parts[0].c_str(), &e1, 10);
      const long m = std::strtol(parts[1].c_str(), &e2, 10);
      const long d = std::strtol(parts[2].c_str(), &e3, 10);
      const bool ok = *e1 == '\0' && *e2 == '\0' && *e3 == '\0' &&
                      !parts[0].empty() && !parts[1].empty() &&
                      !parts[2].empty() && m >= 1 && m <= 12 && d >= 1 &&
                      d <= 31;
      if (ok) {
        return Value::date_ymd(static_cast<int>(y), static_cast<int>(m),
                               static_cast<int>(d));
      }
    }
    throw ParseError("malformed date literal '" + text +
                     "' (expected 'YYYY-MM-DD')");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ParsedQuery parse_query(const std::string& sql) {
  return Parser(sql).parse_query();
}

ExprPtr parse_predicate(const std::string& text) {
  return Parser(text).parse_standalone_predicate();
}

QuerySpec parse_and_bind(const Catalog& catalog, const std::string& name,
                         double frequency, const std::string& sql) {
  ParsedQuery parsed = parse_query(sql);
  std::vector<std::string> select_list = parsed.select_list;
  if (select_list.size() == 1 && select_list[0] == "*") {
    if (!parsed.aggregates.empty()) {
      throw BindError("SELECT * cannot be combined with aggregates");
    }
    select_list.clear();
    for (const std::string& rel : parsed.relations) {
      if (!catalog.has_relation(rel)) {
        throw CatalogError("unknown relation '" + rel + "'");
      }
      for (const Attribute& a : catalog.schema(rel).attributes()) {
        select_list.push_back(rel + "." + a.name);
      }
    }
  }
  return QuerySpec::bind(catalog, name, frequency, parsed.relations,
                         parsed.where, std::move(select_list),
                         parsed.group_by, std::move(parsed.aggregates));
}

QuerySpec parse_adhoc(const Catalog& catalog, const std::string& sql) {
  static std::atomic<std::uint64_t> next{0};
  const std::uint64_t n = next.fetch_add(1, std::memory_order_relaxed);
  return parse_and_bind(catalog, "adhoc-" + std::to_string(n), 1.0, sql);
}

}  // namespace mvd
