#include "src/sql/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <set>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mvd {

namespace {

const std::set<std::string>& keywords() {
  // DATE is intentionally not a keyword: the date-literal prefix is
  // recognized by the parser from adjacency (DATE '...'), so relations may
  // have a column named "date" (the paper's Order relation does).
  static const std::set<std::string> kw = {"SELECT", "FROM", "WHERE", "AND",
                                           "OR",     "NOT",  "TRUE",  "FALSE",
                                           "GROUP",  "BY",   "AS"};
  return kw;
}

}  // namespace

std::vector<Token> tokenize(const std::string& sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = sql.size();

  auto peek = [&](std::size_t k = 0) -> char {
    return i + k < n ? sql[i + k] : '\0';
  };

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tok.text = sql.substr(start, i - start);
      const std::string upper = [&] {
        std::string u = tok.text;
        for (char& ch : u) ch = static_cast<char>(std::toupper(
            static_cast<unsigned char>(ch)));
        return u;
      }();
      if (keywords().contains(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = TokenKind::kIdentifier;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (!dot && sql[i] == '.' &&
                        std::isdigit(static_cast<unsigned char>(peek(1)))))) {
        if (sql[i] == '.') dot = true;
        ++i;
      }
      tok.kind = TokenKind::kNumber;
      tok.text = sql.substr(start, i - start);
      tok.number = std::strtod(tok.text.c_str(), nullptr);
      tok.is_integer = !dot;
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (peek(1) == '\'') {  // '' escape
            value += '\'';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          value += sql[i++];
        }
      }
      if (!closed) {
        throw ParseError(str_cat("unterminated string literal at offset ",
                                 tok.offset));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(value);
    } else {
      // Multi-char symbols first.
      static const char* two_char[] = {"<>", "!=", "<=", ">="};
      std::string pair{c, peek(1)};
      bool matched = false;
      for (const char* s : two_char) {
        if (pair == s) {
          tok.kind = TokenKind::kSymbol;
          tok.text = pair;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string singles = ",.()=<>*";
        if (singles.find(c) == std::string::npos) {
          throw ParseError(str_cat("unexpected character '", c,
                                   "' at offset ", i));
        }
        tok.kind = TokenKind::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace mvd
