// Recursive-descent parser for the SQL subset used by warehouse queries:
//
//   SELECT item [, item]* FROM rel [, rel]*
//     [WHERE predicate] [GROUP BY col [, col]*]
//
// where an item is a column or an aggregate COUNT/SUM/MIN/MAX/AVG over a
// column (or * for COUNT), optionally AS-aliased; predicates are built
// from comparisons over columns and literals (numbers, 'strings',
// DATE 'YYYY-MM-DD', TRUE/FALSE) combined with AND / OR / NOT and
// parentheses. `SELECT *` expands at bind time.
//
// The parser produces an *unbound* ParsedQuery; parse_and_bind() combines
// parsing with QuerySpec::bind against a catalog.
#pragma once

#include <string>
#include <vector>

#include "src/algebra/expr.hpp"
#include "src/algebra/query_spec.hpp"

namespace mvd {

struct ParsedQuery {
  std::vector<std::string> select_list;  // possibly-qualified names; "*" alone
  std::vector<AggSpec> aggregates;       // aggregate SELECT items, in order
  std::vector<std::string> group_by;     // GROUP BY columns
  std::vector<std::string> relations;
  ExprPtr where;  // nullptr when absent
};

/// Parse SQL text. Throws ParseError with offset context on bad input.
ParsedQuery parse_query(const std::string& sql);

/// Parse a standalone predicate (the WHERE grammar), e.g. for tests and
/// for building selection conditions programmatically from text.
ExprPtr parse_predicate(const std::string& text);

/// parse_query + QuerySpec::bind. `SELECT *` expands to every column of
/// every FROM relation (in schema order).
QuerySpec parse_and_bind(const Catalog& catalog, const std::string& name,
                         double frequency, const std::string& sql);

/// Ad-hoc binding for serving front doors (mvserve): like parse_and_bind
/// but with a generated name ("adhoc-<n>", process-unique) and unit
/// frequency — ad-hoc queries are not part of a designed workload, so
/// their names never collide with registered query roots.
QuerySpec parse_adhoc(const Catalog& catalog, const std::string& sql);

}  // namespace mvd
