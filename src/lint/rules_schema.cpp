// Schema/plan coherence rules: every column a node's predicate,
// projection list, group-by list or aggregate references must actually
// be produced by its children. Runs on annotated graphs (child output
// schemas come from the equivalent plan trees annotate() builds).
#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/lint/registry.hpp"

namespace mvd {

namespace {

// Output schema of node `v`, or nullptr when unavailable (un-annotated
// node or structurally odd graph).
const Schema* schema_of(const MvppGraph& g, NodeId v) {
  const MvppNode& n = g.node(v);
  return n.expr == nullptr ? nullptr : &n.expr->output_schema();
}

// True when `column` resolves in `schema`; ambiguity of a bare name is
// treated as unresolved (callers report it).
bool resolves(const Schema& schema, const std::string& column) {
  try {
    return schema.find(column).has_value();
  } catch (const BindError&) {
    return false;
  }
}

void check_predicate_columns(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  if (!g.annotated()) return;
  for (const MvppNode& n : g.nodes()) {
    if (n.predicate == nullptr) continue;
    if (n.kind != MvppNodeKind::kSelect && n.kind != MvppNodeKind::kJoin) {
      continue;
    }
    // Children must exist with schemas; structure rules own arity.
    Schema available;
    bool have_all = !n.children.empty();
    for (std::size_t i = 0; have_all && i < n.children.size(); ++i) {
      const Schema* s = schema_of(g, n.children[i]);
      if (s == nullptr) {
        have_all = false;
      } else {
        available = i == 0 ? *s : Schema::concat(available, *s);
      }
    }
    if (!have_all) continue;
    for (const std::string& column : columns_of(n.predicate)) {
      if (!resolves(available, column)) {
        out.emit(g, n.id,
                 str_cat("predicate references '", column,
                         "', which no child produces"),
                 "predicates may only use columns available from the inputs");
      }
    }
  }
}

void check_projection_columns(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  if (!g.annotated()) return;
  for (const MvppNode& n : g.nodes()) {
    if (n.kind != MvppNodeKind::kProject && n.kind != MvppNodeKind::kAggregate) {
      continue;
    }
    if (n.children.size() != 1) continue;  // structure/arity owns this
    const Schema* child = schema_of(g, n.children[0]);
    if (child == nullptr) continue;
    const char* what =
        n.kind == MvppNodeKind::kProject ? "projects" : "groups by";
    for (const std::string& column : n.columns) {
      if (!resolves(*child, column)) {
        out.emit(g, n.id,
                 str_cat(what, " '", column, "', which the child does not produce"),
                 "project/group-by columns must exist in the child schema");
      }
    }
    for (const AggSpec& agg : n.aggregates) {
      if (!agg.column.empty() && !resolves(*child, agg.column)) {
        out.emit(g, n.id,
                 str_cat("aggregates over '", agg.column,
                         "', which the child does not produce"),
                 "aggregate inputs must exist in the child schema");
      }
    }
  }
}

}  // namespace

void register_schema_rules(LintRegistry& registry) {
  registry.add({"schema/predicate-columns", LintPhase::kSchema, Severity::kError,
                "select/join predicates only reference columns the children "
                "produce",
                check_predicate_columns});
  registry.add({"schema/projection-columns", LintPhase::kSchema, Severity::kError,
                "project/group-by/aggregate columns exist in the child schema",
                check_projection_columns});
}

}  // namespace mvd
