#include "src/lint/registry.hpp"

#include "src/common/assert.hpp"
#include "src/common/error.hpp"

namespace mvd {

void RuleEmitter::emit(const MvppGraph& graph, NodeId node, std::string message,
                       std::string hint) {
  Diagnostic d;
  d.rule = *rule_;
  d.severity = severity_;
  d.node = node;
  if (node >= 0 && static_cast<std::size_t>(node) < graph.size()) {
    d.subject = graph.node(node).name;
    if (d.subject.empty()) d.subject = "#" + std::to_string(node);
  }
  d.message = std::move(message);
  d.hint = std::move(hint);
  report_->add(std::move(d));
}

void RuleEmitter::emit_graph(std::string message, std::string hint) {
  Diagnostic d;
  d.rule = *rule_;
  d.severity = severity_;
  d.subject = "<graph>";
  d.message = std::move(message);
  d.hint = std::move(hint);
  report_->add(std::move(d));
}

void RuleEmitter::emit_selection(const SelectionResult& selection,
                                 std::string message, std::string hint) {
  Diagnostic d;
  d.rule = *rule_;
  d.severity = severity_;
  d.subject = selection.algorithm;
  d.message = std::move(message);
  d.hint = std::move(hint);
  report_->add(std::move(d));
}

void LintRegistry::add(LintRule rule) {
  MVD_ASSERT(rule.check != nullptr);
  for (const LintRule& existing : rules_) {
    if (existing.id == rule.id) {
      throw PlanError("duplicate lint rule id '" + rule.id + "'");
    }
  }
  rules_.push_back(std::move(rule));
}

LintReport LintRegistry::run(const LintContext& ctx, LintPhase max_phase) const {
  MVD_ASSERT_MSG(ctx.graph != nullptr, "LintContext.graph is required");
  LintReport report;
  static constexpr LintPhase kPhases[] = {
      LintPhase::kStructure, LintPhase::kAnnotation, LintPhase::kSchema,
      LintPhase::kSelection};
  for (LintPhase phase : kPhases) {
    for (const LintRule& rule : rules_) {
      if (rule.phase != phase) continue;
      RuleEmitter emitter(rule.id, rule.severity, report);
      rule.check(ctx, emitter);
    }
    // A structurally broken graph makes the downstream invariants
    // meaningless; report the root cause alone.
    if (phase == LintPhase::kStructure && report.has_errors()) break;
    if (phase == max_phase) break;
  }
  return report;
}

const LintRegistry& LintRegistry::builtin() {
  static const LintRegistry registry = [] {
    LintRegistry r;
    register_structure_rules(r);
    register_annotation_rules(r);
    register_schema_rules(r);
    register_plan_rules(r);
    register_selection_rules(r);
    register_maintenance_rules(r);
    register_obs_rules(r);
    register_distributed_rules(r);
    register_serve_rules(r);
    return r;
  }();
  return registry;
}

}  // namespace mvd
