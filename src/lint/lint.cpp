#include "src/lint/lint.hpp"

#include <cstdlib>
#include <iostream>

#include "src/common/assert.hpp"
#include "src/common/strings.hpp"

namespace mvd {

LintReport lint_structure(const MvppGraph& graph) {
  LintContext ctx;
  ctx.graph = &graph;
  return LintRegistry::builtin().run(ctx, LintPhase::kStructure);
}

LintReport lint_graph(const MvppGraph& graph, const GraphClosures* closures,
                      const CostModel* cost_model) {
  LintContext ctx;
  ctx.graph = &graph;
  ctx.closures = closures;
  ctx.cost_model = cost_model;
  return LintRegistry::builtin().run(ctx, LintPhase::kSchema);
}

LintReport lint_selection(const MvppEvaluator& evaluator,
                          const SelectionResult& selection,
                          std::optional<double> budget_blocks,
                          const CostModel* cost_model,
                          const ExecStats* exec_stats,
                          const Database* database) {
  LintContext ctx;
  ctx.graph = &evaluator.graph();
  ctx.closures = &evaluator.closures();
  ctx.cost_model = cost_model;
  ctx.evaluator = &evaluator;
  ctx.exec_stats = exec_stats;
  ctx.database = database;
  ctx.selections.push_back({&selection, budget_blocks});
  return LintRegistry::builtin().run(ctx);
}

namespace {

std::optional<LintHookLevel>& hook_override() {
  static std::optional<LintHookLevel> value;
  return value;
}

LintHookLevel parse_level(const char* text) {
  if (text == nullptr || *text == '\0') return LintHookLevel::kOff;
  if (equals_icase(text, "error")) return LintHookLevel::kError;
  if (equals_icase(text, "warn") || equals_icase(text, "warning")) {
    return LintHookLevel::kWarn;
  }
  if (equals_icase(text, "info")) return LintHookLevel::kInfo;
  return LintHookLevel::kOff;  // including explicit "off"
}

}  // namespace

LintHookLevel lint_hook_level() {
  if (hook_override().has_value()) return *hook_override();
  // Re-read the environment on every call so tests can flip the level at
  // runtime; one getenv is the entire cost of disabled hooks.
  if (const char* env = std::getenv("MVD_LINT_LEVEL")) return parse_level(env);
#ifdef MVD_LINT_LEVEL_DEFAULT
  return parse_level(MVD_LINT_LEVEL_DEFAULT);
#else
  return LintHookLevel::kOff;
#endif
}

void set_lint_hook_level(std::optional<LintHookLevel> level) {
  hook_override() = level;
}

void lint_stage_hook(const char* stage, const LintContext& ctx) {
  const LintHookLevel level = lint_hook_level();
  if (level == LintHookLevel::kOff) return;
  const LintReport report = LintRegistry::builtin().run(ctx);
  if (report.clean()) return;
  if (level >= LintHookLevel::kWarn) {
    const Severity floor =
        level == LintHookLevel::kInfo ? Severity::kInfo : Severity::kWarn;
    const LintReport visible = report.filtered(floor);
    if (!visible.clean() && !visible.has_errors()) {
      std::cerr << "mvlint[" << stage << "]:\n" << visible.render_text();
    }
  }
  if (report.has_errors()) {
    throw AssertionError(str_cat("mvlint[", stage, "] found ",
                                 report.count(Severity::kError),
                                 " error(s):\n",
                                 report.filtered(Severity::kError).render_text()));
  }
}

}  // namespace mvd
