#include "src/lint/diagnostic.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"

namespace mvd {

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  MVD_ASSERT(false);
  return {};
}

Severity severity_from_string(const std::string& text) {
  const std::string lower = to_lower(text);
  if (lower == "info") return Severity::kInfo;
  if (lower == "warn" || lower == "warning") return Severity::kWarn;
  if (lower == "error") return Severity::kError;
  throw PlanError("unknown lint severity '" + text +
                  "' (expected error, warn or info)");
}

void LintReport::merge(LintReport other) {
  for (Diagnostic& d : other.diagnostics_) {
    diagnostics_.push_back(std::move(d));
  }
}

std::size_t LintReport::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [&](const Diagnostic& d) { return d.severity == severity; }));
}

std::set<std::string> LintReport::fired_rules() const {
  std::set<std::string> rules;
  for (const Diagnostic& d : diagnostics_) rules.insert(d.rule);
  return rules;
}

LintReport LintReport::filtered(Severity min_severity) const {
  LintReport out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity >= min_severity) out.add(d);
  }
  return out;
}

std::string LintReport::render_text() const {
  if (diagnostics_.empty()) return "mvlint: clean (0 diagnostics)\n";
  TextTable table({"severity", "rule", "subject", "message", "hint"});
  for (const Diagnostic& d : diagnostics_) {
    table.add_row({to_string(d.severity), d.rule, d.subject, d.message, d.hint});
  }
  return table.render() +
         str_cat("mvlint: ", count(Severity::kError), " error(s), ",
                 count(Severity::kWarn), " warning(s), ",
                 count(Severity::kInfo), " info(s)\n");
}

Json LintReport::to_json() const {
  Json items = Json::array();
  for (const Diagnostic& d : diagnostics_) {
    Json j = Json::object();
    j.set("rule", Json::string(d.rule));
    j.set("severity", Json::string(to_string(d.severity)));
    j.set("node", Json::number(static_cast<double>(d.node)));
    j.set("subject", Json::string(d.subject));
    j.set("message", Json::string(d.message));
    j.set("hint", Json::string(d.hint));
    items.push_back(std::move(j));
  }
  Json out = Json::object();
  out.set("diagnostics", std::move(items));
  out.set("errors", Json::number(count(Severity::kError)));
  out.set("warnings", Json::number(count(Severity::kWarn)));
  out.set("infos", Json::number(count(Severity::kInfo)));
  return out;
}

}  // namespace mvd
