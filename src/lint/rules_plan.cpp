// Plan-level rule: every annotated node's equivalent plan tree must pass
// mvcheck static analysis (src/check/check) cleanly. The schema/* rules
// inspect the *graph fields* (predicate, columns, aggregates); this rule
// inspects the *plan trees* annotate() attached, catching drift between
// the two representations — e.g. a rewritten n.expr referencing a column
// its own projection child dropped, which no graph-field rule can see.
#include "src/check/check.hpp"
#include "src/common/strings.hpp"
#include "src/lint/registry.hpp"

namespace mvd {

namespace {

void check_plans_clean(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  if (!g.annotated()) return;
  for (const MvppNode& n : g.nodes()) {
    if (n.expr == nullptr) continue;
    CheckOptions opts;
    opts.database = ctx.database;
    // Schema/type/predicate analysis only: fusability segmentation and
    // maintainability certification are advisory, not lintable defects.
    opts.fusability = false;
    opts.maintainability = false;
    const CheckReport report = check_plan(n.expr, opts);
    for (const Diagnostic& d : report.findings.diagnostics()) {
      if (d.severity != Severity::kError) continue;
      out.emit(g, n.id, str_cat("mvcheck ", d.rule, ": ", d.message),
               d.hint.empty() ? "the node's equivalent plan must pass "
                                "mvcheck static analysis"
                              : d.hint);
    }
  }
}

}  // namespace

void register_plan_rules(LintRegistry& registry) {
  registry.add({"plan/check-clean", LintPhase::kSchema, Severity::kError,
                "every node's equivalent plan passes mvcheck static analysis",
                check_plans_clean});
}

}  // namespace mvd
