// Structured findings of the mvlint static-analysis pass.
//
// A Diagnostic pins one violated invariant to one rule id and (usually)
// one node: rule id, severity, node/query name, human message and a fix
// hint. A LintReport aggregates the diagnostics of one pass over one
// MVPP (plus optional selection results) and renders them as an aligned
// text table or as stable JSON for dashboards and CI artifacts.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/mvpp/graph.hpp"

namespace mvd {

enum class Severity { kInfo = 0, kWarn = 1, kError = 2 };

std::string to_string(Severity severity);

/// Parse "error" / "warn" / "info" (case-insensitive). Throws PlanError
/// on anything else.
Severity severity_from_string(const std::string& text);

struct Diagnostic {
  /// Rule id, e.g. "structure/arc-symmetry".
  std::string rule;
  Severity severity = Severity::kError;
  /// Offending node, -1 for graph-wide findings.
  NodeId node = -1;
  /// Node / query name (or algorithm name for selection findings).
  std::string subject;
  std::string message;
  /// How to repair the graph (may be empty).
  std::string hint;
};

class LintReport {
 public:
  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void merge(LintReport other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool clean() const { return diagnostics_.empty(); }
  std::size_t count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

  /// Distinct rule ids with at least one diagnostic.
  std::set<std::string> fired_rules() const;

  /// Copy holding only diagnostics at `min_severity` or above.
  LintReport filtered(Severity min_severity) const;

  /// Aligned table (rule, severity, subject, message, hint); a one-line
  /// "clean" note when empty.
  std::string render_text() const;

  /// {"diagnostics": [...], "errors": n, "warnings": n, "infos": n}.
  Json to_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace mvd
