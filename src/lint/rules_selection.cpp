// Selection-result sanity rules: a SelectionResult attached to the
// context must materialize only operation nodes, report costs the
// evaluator reproduces exactly, and respect its storage budget.
#include "src/common/strings.hpp"
#include "src/exec/executor.hpp"
#include "src/lint/registry.hpp"
#include "src/storage/database.hpp"

namespace mvd {

namespace {

bool valid_materialized_set(const MvppGraph& g, const MaterializedSet& m) {
  for (NodeId v : m) {
    if (v < 0 || static_cast<std::size_t>(v) >= g.size() ||
        !g.node(v).is_operation()) {
      return false;
    }
  }
  return true;
}

void check_materialized_set(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  for (const LintContext::SelectionCheck& check : ctx.selections) {
    for (NodeId v : check.result->materialized) {
      if (v < 0 || static_cast<std::size_t>(v) >= g.size()) {
        out.emit_selection(*check.result,
                           str_cat("materialized id ", v, " is out of range"),
                           "only MVPP operation nodes can be materialized");
      } else if (!g.node(v).is_operation()) {
        out.emit_selection(
            *check.result,
            str_cat("materialized node '", g.node(v).name, "' is a ",
                    to_string(g.node(v).kind), ", not an operation"),
            "only select/project/join/aggregate nodes can be materialized");
      }
    }
  }
}

void check_cost_reproducible(const LintContext& ctx, RuleEmitter& out) {
  // The reported breakdown must be exactly what the evaluator computes
  // for the reported set — selection algorithms finalize their results
  // through the same deterministic evaluate() call.
  if (ctx.evaluator == nullptr) return;
  const MvppGraph& g = *ctx.graph;
  for (const LintContext::SelectionCheck& check : ctx.selections) {
    const SelectionResult& r = *check.result;
    if (!valid_materialized_set(g, r.materialized)) {
      continue;  // selection/materialized-set owns this
    }
    const MvppCosts fresh = ctx.evaluator->evaluate(r.materialized);
    if (fresh.query_processing != r.costs.query_processing ||
        fresh.maintenance != r.costs.maintenance) {
      out.emit_selection(
          r,
          str_cat("reported costs (qp=", r.costs.query_processing,
                  ", maint=", r.costs.maintenance,
                  ") are not reproduced by the evaluator (qp=",
                  fresh.query_processing, ", maint=", fresh.maintenance, ")"),
          "finalize results with MvppEvaluator::evaluate on the chosen set");
    }
  }
}

void check_within_budget(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  for (const LintContext::SelectionCheck& check : ctx.selections) {
    if (!check.budget_blocks.has_value()) continue;
    const SelectionResult& r = *check.result;
    if (!valid_materialized_set(g, r.materialized)) continue;
    const double used = total_view_blocks(g, r.materialized);
    if (used > *check.budget_blocks) {
      out.emit_selection(
          r,
          str_cat("materialized set occupies ", used, " blocks, over the budget of ",
                  *check.budget_blocks),
          "budgeted selection must keep the stored views within the budget");
    }
  }
}

void check_exec_rows_consistent(const LintContext& ctx, RuleEmitter& out) {
  // Deploy records each stored view's row count in stats->rows_out under
  // the node's name; the warehouse must still hold a table of exactly
  // that size. A mismatch means the stored view was clobbered, refreshed
  // without re-recording, or recorded from a different run.
  if (ctx.exec_stats == nullptr || ctx.database == nullptr) return;
  const MvppGraph& g = *ctx.graph;
  for (const LintContext::SelectionCheck& check : ctx.selections) {
    const SelectionResult& r = *check.result;
    if (!valid_materialized_set(g, r.materialized)) continue;
    for (NodeId v : r.materialized) {
      const std::string& name = g.node(v).name;
      const auto it = ctx.exec_stats->rows_out.find(name);
      if (it == ctx.exec_stats->rows_out.end()) continue;
      if (!ctx.database->has_table(name)) continue;
      const double stored =
          static_cast<double>(ctx.database->table(name).row_count());
      if (it->second != stored) {
        out.emit_selection(
            r,
            str_cat("materialized node '", name, "' recorded ", it->second,
                    " rows at deploy time but the stored view holds ", stored),
            "re-deploy (or refresh with stats) so the recorded counts match "
            "the warehouse");
      }
    }
  }
}

}  // namespace

void register_selection_rules(LintRegistry& registry) {
  registry.add({"selection/materialized-set", LintPhase::kSelection,
                Severity::kError,
                "materialized sets contain only MVPP operation nodes",
                check_materialized_set});
  registry.add({"selection/cost-reproducible", LintPhase::kSelection,
                Severity::kError,
                "reported selection costs are reproduced exactly by the evaluator",
                check_cost_reproducible});
  registry.add({"selection/within-budget", LintPhase::kSelection, Severity::kError,
                "budgeted selections respect their block budget",
                check_within_budget});
  registry.add({"selection/exec-rows-consistent", LintPhase::kSelection,
                Severity::kError,
                "deploy-time recorded row counts match the stored views",
                check_exec_rows_consistent});
}

}  // namespace mvd
