// Serving-discipline rule: every rewrite mvserve performed must be
// provably sound after the fact. The server logs one RewriteRecord per
// view-answered query (the query predicate, the view predicate, and
// their joint base schema); re-deriving the containment proof catches a
// matcher regression, a tampered log, or evidence replayed against the
// wrong view definition.
#include "src/check/implication.hpp"
#include "src/common/strings.hpp"
#include "src/lint/registry.hpp"

namespace mvd {

namespace {

void check_rewrite_consistent(const LintContext& ctx, RuleEmitter& out) {
  for (const ServeRewriteCheck& r : ctx.rewrites) {
    if (implies(r.query_pred, r.view_pred, r.joint)) continue;
    out.emit_graph(
        str_cat("query '", r.query, "' was answered from view '", r.view,
                "' but its predicate does not imply the view's (",
                r.query_pred == nullptr ? "TRUE" : r.query_pred->to_string(),
                " vs ",
                r.view_pred == nullptr ? "TRUE" : r.view_pred->to_string(),
                ")"),
        "the stored view may lack rows the query needs; refuse the match "
        "or rebuild the view definition the record was checked against");
  }
}

}  // namespace

void register_serve_rules(LintRegistry& registry) {
  registry.add({"serve/rewrite-consistent", LintPhase::kSelection,
                Severity::kError,
                "every logged mvserve rewrite's containment proof re-derives",
                check_rewrite_consistent});
}

}  // namespace mvd
