// Structural rules: the MVPP must be a well-formed, deduplicated DAG
// whose arcs are symmetric, whose node kinds carry the right arity and
// frequency payload, and whose cached closures (when supplied) agree
// with a fresh traversal.
#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/strings.hpp"
#include "src/lint/registry.hpp"

namespace mvd {

namespace {

std::size_t count_of(const std::vector<NodeId>& ids, NodeId v) {
  return static_cast<std::size_t>(std::count(ids.begin(), ids.end(), v));
}

bool id_in_range(const MvppGraph& g, NodeId v) {
  return v >= 0 && static_cast<std::size_t>(v) < g.size();
}

// Node ids reachable from the query roots by following children — the
// "live" part of the graph. Computed from the arc lists directly so it
// stays meaningful on corrupted graphs.
std::vector<char> reachable_from_queries(const MvppGraph& g) {
  std::vector<char> seen(g.size(), 0);
  std::vector<NodeId> stack = g.query_ids();
  for (NodeId q : stack) seen[static_cast<std::size_t>(q)] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId c : g.node(v).children) {
      if (!id_in_range(g, c)) continue;
      if (seen[static_cast<std::size_t>(c)]) continue;
      seen[static_cast<std::size_t>(c)] = 1;
      stack.push_back(c);
    }
  }
  return seen;
}

void check_acyclic(const LintContext& ctx, RuleEmitter& out) {
  // Insertion ids are topological (children precede parents); an arc to
  // an equal-or-later id is how every cycle manifests here.
  const MvppGraph& g = *ctx.graph;
  for (const MvppNode& n : g.nodes()) {
    for (NodeId c : n.children) {
      if (!id_in_range(g, c)) {
        out.emit(g, n.id, str_cat("child id ", c, " is out of range"),
                 "arcs must reference existing nodes");
      } else if (c >= n.id) {
        out.emit(g, n.id,
                 str_cat("child '", g.node(c).name, "' (id ", c,
                         ") does not precede its parent (id ", n.id,
                         ") — topological order is broken (possible cycle)"),
                 "arcs must run from earlier (lower-id) nodes to later ones");
      }
    }
  }
}

void check_arc_symmetry(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  for (const MvppNode& n : g.nodes()) {
    for (NodeId c : n.children) {
      if (!id_in_range(g, c)) continue;  // structure/acyclic reports it
      const std::size_t down = count_of(n.children, c);
      const std::size_t up = count_of(g.node(c).parents, n.id);
      if (down != up) {
        out.emit(g, n.id,
                 str_cat("arc to child '", g.node(c).name, "' appears ", down,
                         "x in children but ", up, "x in the child's parents"),
                 "keep children/parents lists mirror images of each other");
      }
    }
    for (NodeId p : n.parents) {
      if (!id_in_range(g, p)) {
        out.emit(g, n.id, str_cat("parent id ", p, " is out of range"),
                 "arcs must reference existing nodes");
        continue;
      }
      if (count_of(g.node(p).children, n.id) == 0) {
        out.emit(g, n.id,
                 str_cat("parent '", g.node(p).name,
                         "' does not list this node as a child"),
                 "keep children/parents lists mirror images of each other");
      }
    }
  }
}

void check_signature_dedup(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  std::map<std::string, NodeId> first;
  for (const MvppNode& n : g.nodes()) {
    if (n.sig.empty()) continue;  // query roots are intentionally unmerged
    auto [it, inserted] = first.emplace(n.sig, n.id);
    if (!inserted) {
      out.emit(g, n.id,
               str_cat("signature duplicates node '", g.node(it->second).name,
                       "' (id ", it->second, "): ", n.sig),
               "equal signatures must merge into one vertex "
               "(the paper's common-subexpression rule)");
    }
  }
}

void check_arity(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  auto expect = [&](const MvppNode& n, std::size_t want) {
    if (n.children.size() != want) {
      out.emit(g, n.id,
               str_cat(to_string(n.kind), " node has ", n.children.size(),
                       " children, expected ", want),
               "fix the arc lists to match the operator arity");
    }
  };
  for (const MvppNode& n : g.nodes()) {
    switch (n.kind) {
      case MvppNodeKind::kBase:
        expect(n, 0);
        break;
      case MvppNodeKind::kQuery:
        expect(n, 1);
        if (!n.parents.empty()) {
          out.emit(g, n.id,
                   str_cat("query root has ", n.parents.size(),
                           " parents; roots must be parentless"),
                   "nothing may consume a query root");
        }
        break;
      case MvppNodeKind::kSelect:
      case MvppNodeKind::kProject:
      case MvppNodeKind::kAggregate:
        expect(n, 1);
        break;
      case MvppNodeKind::kJoin:
        expect(n, 2);
        break;
    }
  }
}

void check_frequency_placement(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  for (const MvppNode& n : g.nodes()) {
    if (n.is_operation()) {
      if (n.frequency != 0) {
        out.emit(g, n.id,
                 str_cat("operation node carries frequency ", n.frequency,
                         "; only base leaves (fu) and query roots (fq) do"),
                 "zero the frequency or move it to a leaf/root");
      }
    } else if (!(n.frequency >= 0) || !std::isfinite(n.frequency)) {
      out.emit(g, n.id,
               str_cat("frequency ", n.frequency, " is negative or non-finite"),
               "fu/fq must be finite and non-negative");
    }
  }
}

void check_orphan_operations(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  if (g.query_ids().empty()) return;  // partial graph under construction
  const std::vector<char> live = reachable_from_queries(g);
  for (const MvppNode& n : g.nodes()) {
    if (n.is_operation() && !live[static_cast<std::size_t>(n.id)]) {
      out.emit(g, n.id,
               "operation node is unreachable from every query root "
               "(dead weight in the MVPP)",
               "drop the node or connect a query that uses it");
    }
  }
}

void check_unused_bases(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  if (g.query_ids().empty()) return;
  const std::vector<char> live = reachable_from_queries(g);
  for (NodeId b : g.base_ids()) {
    if (!live[static_cast<std::size_t>(b)]) {
      out.emit(g, b, "base relation feeds no query",
               "remove the relation from the MVPP or add its consumers");
    }
  }
}

void check_closure_sync(const LintContext& ctx, RuleEmitter& out) {
  // Cached GraphClosures must agree with fresh DFS walks of the graph;
  // disagreement means the cache predates a graph edit.
  if (ctx.closures == nullptr) return;
  const MvppGraph& g = *ctx.graph;
  const GraphClosures& c = *ctx.closures;
  if (c.size() != g.size()) {
    out.emit_graph(str_cat("closures cover ", c.size(), " nodes but the graph has ",
                           g.size()),
                   "rebuild GraphClosures after modifying the graph");
    return;
  }
  for (const MvppNode& n : g.nodes()) {
    const std::set<NodeId> anc = g.ancestors(n.id);
    const std::set<NodeId> desc = g.descendants(n.id);
    const std::vector<NodeId> anc_fresh(anc.begin(), anc.end());
    const std::vector<NodeId> desc_fresh(desc.begin(), desc.end());
    if (c.ancestors(n.id).to_vector() != anc_fresh ||
        c.descendants(n.id).to_vector() != desc_fresh) {
      out.emit(g, n.id, "cached ancestor/descendant closure disagrees with a fresh DFS",
               "rebuild GraphClosures after modifying the graph");
      continue;
    }
    if (c.queries_using(n.id) != g.queries_using(n.id) ||
        c.bases_under(n.id) != g.bases_under(n.id)) {
      out.emit(g, n.id, "cached Ov/Iv lists disagree with a fresh DFS",
               "rebuild GraphClosures after modifying the graph");
    }
  }
}

}  // namespace

void register_structure_rules(LintRegistry& registry) {
  registry.add({"structure/acyclic", LintPhase::kStructure, Severity::kError,
                "arcs run from lower to higher node ids (DAG, topological ids)",
                check_acyclic});
  registry.add({"structure/arc-symmetry", LintPhase::kStructure, Severity::kError,
                "children and parents lists are mirror images", check_arc_symmetry});
  registry.add({"structure/signature-dedup", LintPhase::kStructure,
                Severity::kError,
                "no two nodes share a structural signature", check_signature_dedup});
  registry.add({"structure/arity", LintPhase::kStructure, Severity::kError,
                "node kinds have the right child/parent counts", check_arity});
  registry.add({"structure/frequency-placement", LintPhase::kStructure,
                Severity::kError,
                "frequencies live only on base leaves and query roots, and are "
                "finite and non-negative",
                check_frequency_placement});
  registry.add({"structure/orphan-op", LintPhase::kStructure, Severity::kWarn,
                "every operation node serves at least one query",
                check_orphan_operations});
  registry.add({"structure/unused-base", LintPhase::kStructure, Severity::kWarn,
                "every base relation feeds at least one query", check_unused_bases});
  registry.add({"structure/closure-sync", LintPhase::kStructure, Severity::kError,
                "cached GraphClosures agree with a fresh traversal",
                check_closure_sync});
}

}  // namespace mvd
