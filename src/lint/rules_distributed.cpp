// Sharded-execution consistency rules: when a deploy/refresh ran against
// a ShardedDatabase, the per-shard counters it records must reconcile
// with the recorded totals — a shard whose slice went missing (or was
// double-counted) shows up as a sum mismatch long before a query reads
// the hole.
#include <cmath>

#include "src/common/strings.hpp"
#include "src/exec/executor.hpp"
#include "src/lint/registry.hpp"

namespace mvd {

namespace {

void check_shard_stats_consistent(const LintContext& ctx, RuleEmitter& out) {
  // Sharded deploy records, for every hash-partitioned view, the view's
  // total stored rows in stats->rows_out[name] and each shard's slice
  // rows in stats->per_shard[s].rows_out[name]. The slices partition the
  // view, so the per-shard counts must sum to the recorded total; a
  // mismatch means a shard's slice drifted (lost bucket, double
  // application, stats recorded from a different run). Views with no
  // per-shard entry are coordinator-resident and skip.
  if (ctx.exec_stats == nullptr || ctx.exec_stats->per_shard.empty()) return;
  const MvppGraph& g = *ctx.graph;
  for (const LintContext::SelectionCheck& check : ctx.selections) {
    const SelectionResult& r = *check.result;
    for (NodeId v : r.materialized) {
      if (v < 0 || static_cast<std::size_t>(v) >= g.size()) continue;
      const std::string& name = g.node(v).name;
      const auto it = ctx.exec_stats->rows_out.find(name);
      if (it == ctx.exec_stats->rows_out.end()) continue;
      double shard_sum = 0;
      bool partitioned = false;
      for (const ExecStats& shard : ctx.exec_stats->per_shard) {
        const auto sit = shard.rows_out.find(name);
        if (sit == shard.rows_out.end()) continue;
        partitioned = true;
        shard_sum += sit->second;
      }
      if (!partitioned) continue;
      if (shard_sum != it->second) {
        out.emit_selection(
            r,
            str_cat("partitioned view '", name, "' recorded ", it->second,
                    " total rows but its per-shard slices sum to ", shard_sum),
            "re-deploy (or refresh with stats) so every shard's slice is "
            "accounted for");
      }
    }
  }
}

}  // namespace

void register_distributed_rules(LintRegistry& registry) {
  registry.add({"distributed/shard-stats-consistent", LintPhase::kSelection,
                Severity::kError,
                "per-shard stored rows of partitioned views sum to the "
                "recorded totals",
                check_shard_stats_consistent});
}

}  // namespace mvd
