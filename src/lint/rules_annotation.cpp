// Annotation rules: the rows/blocks/op_cost/full_cost filled in by
// MvppGraph::annotate() must be non-negative, mutually consistent
// (full_cost bounds op_cost, Ca is monotone non-decreasing toward the
// roots) and — when a cost model is supplied — reproducible from the
// node's plan tree.
#include <cmath>

#include "src/common/strings.hpp"
#include "src/lint/registry.hpp"

namespace mvd {

namespace {

bool annotations_usable(const MvppNode& n) {
  return std::isfinite(n.rows) && n.rows >= 0 && std::isfinite(n.blocks) &&
         n.blocks >= 0 && std::isfinite(n.op_cost) && n.op_cost >= 0 &&
         std::isfinite(n.full_cost) && n.full_cost >= 0;
}

void check_non_negative(const LintContext& ctx, RuleEmitter& out) {
  const MvppGraph& g = *ctx.graph;
  if (!g.annotated()) return;
  for (const MvppNode& n : g.nodes()) {
    auto field = [&](const char* name, double value) {
      if (!std::isfinite(value) || value < 0) {
        out.emit(g, n.id, str_cat(name, " = ", value, " is negative or non-finite"),
                 "re-run annotate(); sizes and costs are never negative");
      }
    };
    field("rows", n.rows);
    field("blocks", n.blocks);
    field("op_cost", n.op_cost);
    field("full_cost", n.full_cost);
  }
}

void check_full_cost_bound(const LintContext& ctx, RuleEmitter& out) {
  // Ca(v) re-derives every virtual intermediate beneath v, so it can
  // never undercut producing v from its direct inputs alone.
  const MvppGraph& g = *ctx.graph;
  if (!g.annotated()) return;
  for (const MvppNode& n : g.nodes()) {
    if (!n.is_operation() || !annotations_usable(n)) continue;
    if (n.full_cost < n.op_cost) {
      out.emit(g, n.id,
               str_cat("full_cost ", n.full_cost, " < op_cost ", n.op_cost),
               "Ca(v) includes the direct op_cost; re-run annotate()");
    }
  }
}

void check_ca_monotone(const LintContext& ctx, RuleEmitter& out) {
  // full_cost = op_cost + sum of children's full_cost with op_cost >= 0,
  // so Ca never decreases along an arc toward the roots; query roots
  // inherit their child's Ca exactly.
  const MvppGraph& g = *ctx.graph;
  if (!g.annotated()) return;
  for (const MvppNode& n : g.nodes()) {
    if (!annotations_usable(n)) continue;
    if (n.kind == MvppNodeKind::kQuery) {
      const MvppNode& child = g.node(n.children[0]);
      if (annotations_usable(child) && n.full_cost != child.full_cost) {
        out.emit(g, n.id,
                 str_cat("query root full_cost ", n.full_cost,
                         " != result node full_cost ", child.full_cost),
                 "query roots inherit Ca from their result node");
      }
      continue;
    }
    if (!n.is_operation()) continue;
    for (NodeId c : n.children) {
      const MvppNode& child = g.node(c);
      if (!annotations_usable(child)) continue;
      if (n.full_cost < child.full_cost) {
        out.emit(g, n.id,
                 str_cat("full_cost ", n.full_cost, " < child '", child.name,
                         "' full_cost ", child.full_cost,
                         " — Ca must be monotone non-decreasing toward roots"),
                 "re-run annotate(); Ca(v) sums the whole subtree");
        break;
      }
    }
  }
}

void check_estimate_consistent(const LintContext& ctx, RuleEmitter& out) {
  // With the cost model at hand, the recorded sizes and direct costs
  // must match a from-scratch estimate of the node's plan tree exactly
  // (annotate() uses the same deterministic code path).
  if (ctx.cost_model == nullptr) return;
  const MvppGraph& g = *ctx.graph;
  if (!g.annotated()) return;
  for (const MvppNode& n : g.nodes()) {
    if (n.expr == nullptr || !annotations_usable(n)) continue;
    const NodeEstimate est = ctx.cost_model->estimate(n.expr);
    auto field = [&](const char* name, double recorded, double fresh) {
      if (recorded != fresh) {
        out.emit(g, n.id,
                 str_cat(name, " = ", recorded,
                         " but the cost model reproduces ", fresh),
                 "re-run annotate() against the same cost model");
      }
    };
    field("rows", n.rows, est.rows);
    field("blocks", n.blocks, est.blocks);
    if (n.is_operation()) {
      field("op_cost", n.op_cost, ctx.cost_model->op_cost(n.expr));
    }
  }
}

}  // namespace

void register_annotation_rules(LintRegistry& registry) {
  registry.add({"annotation/non-negative", LintPhase::kAnnotation,
                Severity::kError,
                "rows, blocks and costs are finite and non-negative",
                check_non_negative});
  registry.add({"annotation/full-cost-bound", LintPhase::kAnnotation,
                Severity::kError, "full_cost (Ca) is at least op_cost",
                check_full_cost_bound});
  registry.add({"annotation/ca-monotone", LintPhase::kAnnotation,
                Severity::kError,
                "Ca is monotone non-decreasing along arcs toward the roots",
                check_ca_monotone});
  registry.add({"annotation/estimate-consistent", LintPhase::kAnnotation,
                Severity::kError,
                "recorded sizes/costs match a fresh cost-model estimate",
                check_estimate_consistent});
}

}  // namespace mvd
