// The mvlint rule registry: pluggable static-analysis checks over MVPPs,
// their annotations, their plans and their selection results.
//
// A rule is a named check with a fixed severity that inspects a
// LintContext and emits Diagnostics through a RuleEmitter. Rules are
// grouped into phases that run in order:
//
//   kStructure  — DAG shape: acyclicity, arc symmetry, dedup, arity,
//                 frequency placement, reachability, closure freshness.
//   kAnnotation — cost/size consistency of annotate() results.
//   kSchema     — predicates/projections only reference columns the
//                 children actually produce.
//   kSelection  — selection results: membership, cost reproducibility,
//                 budget compliance.
//
// Error-severity findings in kStructure gate the later phases: on a
// structurally broken graph the downstream invariants are meaningless
// and re-reporting them would bury the root cause.
//
// A rule silently skips when its inputs are absent from the context
// (e.g. annotation rules on an un-annotated graph, selection rules with
// no selections attached) — lint never demands more context than the
// call site has.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/lint/diagnostic.hpp"
#include "src/mvpp/closures.hpp"
#include "src/mvpp/evaluation.hpp"
#include "src/mvpp/selection.hpp"
#include "src/obs/journal.hpp"

namespace mvd {

struct ExecStats;
class Database;
struct MetricsSnapshot;

/// One rewrite's evidence as recorded by mvserve's RewriteRecord log:
/// the query was answered from the view, which is only sound when the
/// query predicate implies the view predicate over their joint base
/// schema. Mirrored structurally so lint does not depend on src/serve.
struct ServeRewriteCheck {
  std::string query;
  std::string view;
  ExprPtr query_pred;
  ExprPtr view_pred;
  Schema joint;
};

/// Everything a lint pass may inspect. Only `graph` is mandatory; rules
/// needing an absent optional input skip silently.
struct LintContext {
  const MvppGraph* graph = nullptr;

  /// When set, checked against a fresh traversal of `graph` (catches
  /// stale caches after graph edits).
  const GraphClosures* closures = nullptr;

  /// Enables re-deriving rows/blocks/op_cost from scratch.
  const CostModel* cost_model = nullptr;

  /// Enables reproducing reported selection costs.
  const MvppEvaluator* evaluator = nullptr;

  /// Optional executed-run context: stats recorded while deploying /
  /// refreshing views (WarehouseDesigner::deploy fills rows_out under
  /// node names) and the database holding the stored views. Both are
  /// needed by selection/exec-rows-consistent.
  const ExecStats* exec_stats = nullptr;
  const Database* database = nullptr;

  /// Optional metrics-registry snapshot taken after the design ran with
  /// counters on. Needed by obs/metrics-consistent, which reconciles the
  /// published "selection/ledger/..." gauges with the selection costs.
  const MetricsSnapshot* metrics = nullptr;

  struct SelectionCheck {
    const SelectionResult* result = nullptr;
    /// Budget the selection was required to respect, if any.
    std::optional<double> budget_blocks;
  };
  std::vector<SelectionCheck> selections;

  /// Optional mvserve rewrite evidence; serve/rewrite-consistent
  /// re-derives each containment proof.
  std::vector<ServeRewriteCheck> rewrites;

  /// Optional workload-observatory evidence: the live observatory's
  /// flattened gauges (WorkloadStats::to_gauges) next to the complete
  /// journal that claims to have produced them. obs/journal-consistent
  /// replays the journal and demands bit-for-bit equality — a dropped,
  /// reordered or edited event cannot survive the diff.
  struct WorkloadJournalCheck {
    std::map<std::string, double> live_gauges;
    std::vector<JournalEvent> events;
    /// Decay window of the live observatory (0 = take the journal's
    /// kOpen event).
    std::size_t window = 0;
  };
  std::optional<WorkloadJournalCheck> workload;
};

enum class LintPhase { kStructure, kAnnotation, kSchema, kSelection };

/// Sink for one rule's findings; binds the rule id and severity so checks
/// only supply the location and the message.
class RuleEmitter {
 public:
  RuleEmitter(const std::string& rule, Severity severity, LintReport& report)
      : rule_(&rule), severity_(severity), report_(&report) {}

  /// Finding at a node (subject defaults to the node's name).
  void emit(const MvppGraph& graph, NodeId node, std::string message,
            std::string hint = {});
  /// Graph-wide finding.
  void emit_graph(std::string message, std::string hint = {});
  /// Finding about one selection result.
  void emit_selection(const SelectionResult& selection, std::string message,
                      std::string hint = {});

 private:
  const std::string* rule_;
  Severity severity_;
  LintReport* report_;
};

struct LintRule {
  std::string id;          // "structure/arc-symmetry"
  LintPhase phase = LintPhase::kStructure;
  Severity severity = Severity::kError;
  std::string summary;     // one line, for --list-rules and docs
  std::function<void(const LintContext&, RuleEmitter&)> check;
};

class LintRegistry {
 public:
  /// Register a rule. Ids must be unique; throws PlanError on duplicates.
  void add(LintRule rule);

  const std::vector<LintRule>& rules() const { return rules_; }

  /// Run every applicable rule over `ctx`, phases in order, with
  /// structure-error gating (see file comment). `max_phase` stops after
  /// the given phase (validate() runs structure only).
  LintReport run(const LintContext& ctx,
                 LintPhase max_phase = LintPhase::kSelection) const;

  /// The built-in rule set (constructed once, immutable).
  static const LintRegistry& builtin();

 private:
  std::vector<LintRule> rules_;
};

// Per-phase registration hooks, implemented in rules_*.cpp.
void register_structure_rules(LintRegistry& registry);
void register_annotation_rules(LintRegistry& registry);
void register_schema_rules(LintRegistry& registry);
void register_plan_rules(LintRegistry& registry);
void register_selection_rules(LintRegistry& registry);
void register_maintenance_rules(LintRegistry& registry);
void register_obs_rules(LintRegistry& registry);
void register_distributed_rules(LintRegistry& registry);
void register_serve_rules(LintRegistry& registry);

}  // namespace mvd
