// mvlint entry points and the debug-build hooks.
//
// Convenience wrappers assemble the right LintContext for the common
// cases; lint_stage_hook() is the library-internal checkpoint invoked
// after MVPP construction (`build`), annotation (`annotate`) and view
// selection (`selection`). Hooks are off unless a level is configured:
//
//   MVD_LINT_LEVEL=error|warn|info   (environment, checked per call)
//   -DMVD_LINT_LEVEL_DEFAULT=...     (CMake, used when the env is unset)
//   set_lint_hook_level(...)         (programmatic, wins over both)
//
// At level `error` a hook runs the registry and throws AssertionError
// when any error-severity diagnostic fires; `warn` and `info`
// additionally print lower-severity findings to stderr. The default
// (off) costs one getenv per hook and nothing else.
#pragma once

#include <optional>

#include "src/lint/registry.hpp"

namespace mvd {

/// Structure-phase rules only — the invariant set MvppGraph::validate()
/// enforces. Runs without closures/cost model/selections.
LintReport lint_structure(const MvppGraph& graph);

/// Structure + annotation + schema rules over one graph, with whatever
/// optional context is supplied.
LintReport lint_graph(const MvppGraph& graph,
                      const GraphClosures* closures = nullptr,
                      const CostModel* cost_model = nullptr);

/// Full pass including the selection rules for one result. Passing the
/// deploy-time `exec_stats` together with the warehouse `database`
/// additionally checks the recorded per-view row counts against the
/// stored views (selection/exec-rows-consistent).
LintReport lint_selection(const MvppEvaluator& evaluator,
                          const SelectionResult& selection,
                          std::optional<double> budget_blocks = std::nullopt,
                          const CostModel* cost_model = nullptr,
                          const ExecStats* exec_stats = nullptr,
                          const Database* database = nullptr);

// ---- Debug-build hooks ------------------------------------------------

enum class LintHookLevel { kOff, kError, kWarn, kInfo };

/// Effective hook level: programmatic override, else MVD_LINT_LEVEL,
/// else the compiled default, else off. Unknown env text means off.
LintHookLevel lint_hook_level();

/// Override the hook level for this process (tests); nullopt restores
/// env/compile-time resolution.
void set_lint_hook_level(std::optional<LintHookLevel> level);

/// Run the built-in registry over `ctx` when hooks are enabled. Throws
/// AssertionError naming `stage` when any error-severity diagnostic
/// fires; prints warn/info findings to stderr per the level. No-op when
/// hooks are off.
void lint_stage_hook(const char* stage, const LintContext& ctx);

}  // namespace mvd
