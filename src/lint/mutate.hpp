// Mutation catalog for the mvlint self-test.
//
// Each GraphMutation takes a clean, annotated MVPP, plants exactly one
// corruption (through the MvppGraphMutator backdoor or by abusing the
// public API), and names the rule that must catch it. The self-test in
// tests/lint_mutation_test.cpp — and `mvlint --selftest` — runs every
// mutation and asserts that precisely the expected rule fires, which
// keeps every shipped rule demonstrably non-vacuous.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/exec/executor.hpp"
#include "src/lint/registry.hpp"
#include "src/obs/metrics.hpp"
#include "src/mvpp/closures.hpp"
#include "src/mvpp/evaluation.hpp"
#include "src/mvpp/graph.hpp"
#include "src/mvpp/selection.hpp"
#include "src/storage/database.hpp"

namespace mvd {

/// Everything a mutation produces, with ownership so the LintContext's
/// raw pointers stay valid for the caller's lifetime. `graph` is always
/// set; `closures` only when the mutated graph is safe to traverse (a
/// cyclic graph is not); `evaluator`/`selection` only for the
/// selection-phase mutations; `exec_stats`/`database` only for the
/// executed-run mutation.
struct MutationOutcome {
  std::unique_ptr<MvppGraph> graph;
  std::unique_ptr<GraphClosures> closures;
  std::unique_ptr<MvppEvaluator> evaluator;
  std::unique_ptr<SelectionResult> selection;
  std::unique_ptr<ExecStats> exec_stats;
  std::unique_ptr<Database> database;
  std::unique_ptr<MetricsSnapshot> metrics;
  std::vector<ServeRewriteCheck> rewrites;
  std::optional<LintContext::WorkloadJournalCheck> workload;
  std::optional<double> budget_blocks;
  const CostModel* cost_model = nullptr;

  /// LintContext over the owned pieces. Valid while *this lives.
  LintContext context() const;
};

struct GraphMutation {
  std::string name;
  /// The single rule id expected to fire on the mutated artifacts.
  std::string expected_rule;
  /// Builds the corrupted copy. Throws PlanError when `clean` lacks the
  /// shape the recipe needs (the paper example satisfies all of them).
  std::function<MutationOutcome(const MvppGraph& clean,
                                const CostModel& cost_model)>
      apply;
};

/// One mutation per built-in rule (24 total). Requires `clean` to be
/// annotated, acyclic, with at least one query, one shared child, and
/// one select / project node — the Figure 3 MVPP qualifies.
const std::vector<GraphMutation>& builtin_mutations();

}  // namespace mvd
