#include "src/lint/mutate.hpp"

#include <algorithm>
#include <utility>

#include "src/algebra/expr.hpp"
#include "src/common/error.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/obs/workload.hpp"

namespace mvd {

LintContext MutationOutcome::context() const {
  LintContext ctx;
  ctx.graph = graph.get();
  ctx.closures = closures.get();
  ctx.cost_model = cost_model;
  if (evaluator != nullptr) {
    ctx.evaluator = evaluator.get();
    if (ctx.closures == nullptr) ctx.closures = &evaluator->closures();
  }
  if (selection != nullptr) {
    ctx.selections.push_back({selection.get(), budget_blocks});
  }
  ctx.exec_stats = exec_stats.get();
  ctx.database = database.get();
  ctx.metrics = metrics.get();
  ctx.rewrites = rewrites;
  ctx.workload = workload;
  return ctx;
}

namespace {

[[noreturn]] void unsuitable(const std::string& mutation,
                             const std::string& need) {
  throw PlanError("mutation '" + mutation + "' needs " + need +
                  " in the clean graph");
}

/// Base outcome: a private copy of the clean graph plus the cost model.
MutationOutcome copy_of(const MvppGraph& clean, const CostModel& cost_model) {
  MutationOutcome out;
  out.graph = std::make_unique<MvppGraph>(clean);
  out.cost_model = &cost_model;
  return out;
}

void with_closures(MutationOutcome& out) {
  out.closures = std::make_unique<GraphClosures>(*out.graph);
}

void erase_one(std::vector<NodeId>& ids, NodeId v) {
  auto it = std::find(ids.begin(), ids.end(), v);
  if (it != ids.end()) ids.erase(it);
}

NodeId first_op_of_kind(const MvppGraph& g, MvppNodeKind kind,
                        const std::string& mutation) {
  for (const MvppNode& n : g.nodes()) {
    if (n.kind == kind) return n.id;
  }
  unsuitable(mutation, "a " + to_string(kind) + " node");
}

Schema some_base_schema(const MvppGraph& g, const std::string& mutation) {
  for (NodeId b : g.base_ids()) {
    if (g.node(b).expr != nullptr) return g.node(b).expr->output_schema();
  }
  unsuitable(mutation, "an annotated base relation");
}

// ---- Structure-phase mutations ---------------------------------------

/// Rewire one child arc of an operation to one of its own operation
/// ancestors, keeping parent/child links symmetric so only the cycle is
/// wrong. The child slot must have another parent so nothing is
/// orphaned. No closures: a cyclic graph cannot be traversed safely.
MutationOutcome rewire_arc_to_ancestor(const MvppGraph& clean,
                                       const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  MvppGraph& g = *out.graph;
  MvppGraphMutator mut(g);
  for (NodeId v : g.operation_ids()) {
    NodeId shared_child = -1;
    for (NodeId c : g.node(v).children) {
      if (g.node(c).parents.size() >= 2) {
        shared_child = c;
        break;
      }
    }
    if (shared_child < 0) continue;
    for (NodeId a : g.ancestors(v)) {
      if (!g.node(a).is_operation()) continue;
      MvppNode& nv = mut.node(v);
      *std::find(nv.children.begin(), nv.children.end(), shared_child) = a;
      erase_one(mut.node(shared_child).parents, v);
      mut.node(a).parents.push_back(v);
      return out;
    }
  }
  unsuitable("rewire-arc-to-ancestor",
             "an operation with a shared child and an operation ancestor");
}

/// Remove the parent back-link of one arc, leaving the child link in
/// place: v still lists c as a child, c no longer lists v as a parent.
MutationOutcome drop_parent_backlink(const MvppGraph& clean,
                                     const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  MvppGraphMutator mut(*out.graph);
  for (NodeId v : out.graph->operation_ids()) {
    const MvppNode& n = out.graph->node(v);
    if (n.children.empty()) continue;
    erase_one(mut.node(n.children.front()).parents, v);
    return out;
  }
  unsuitable("drop-parent-backlink", "an operation with a child");
}

/// Copy one operation's structural signature onto another, violating the
/// common-subexpression merge guarantee.
MutationOutcome clone_signature(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  const std::vector<NodeId> ops = out.graph->operation_ids();
  if (ops.size() < 2) unsuitable("clone-signature", "two operation nodes");
  MvppGraphMutator mut(*out.graph);
  mut.node(ops[0]).sig = out.graph->node(ops[1]).sig;
  with_closures(out);
  return out;
}

/// Give a select node a second child (an unrelated base with a smaller
/// id, so acyclicity and link symmetry stay intact).
MutationOutcome extra_select_child(const MvppGraph& clean,
                                   const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  MvppGraph& g = *out.graph;
  MvppGraphMutator mut(g);
  for (const MvppNode& n : g.nodes()) {
    if (n.kind != MvppNodeKind::kSelect) continue;
    for (NodeId b : g.base_ids()) {
      if (b >= n.id) continue;
      if (std::find(n.children.begin(), n.children.end(), b) !=
          n.children.end()) {
        continue;
      }
      mut.node(n.id).children.push_back(b);
      mut.node(b).parents.push_back(n.id);
      return out;
    }
  }
  unsuitable("extra-select-child", "a select and a spare base below it");
}

/// Stamp a query/update frequency onto an operation node.
MutationOutcome op_frequency(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  const std::vector<NodeId> ops = out.graph->operation_ids();
  if (ops.empty()) unsuitable("op-frequency", "an operation node");
  MvppGraphMutator(*out.graph).node(ops.front()).frequency = 3;
  with_closures(out);
  return out;
}

/// Grow a select nobody consumes, via the public API (which resets the
/// annotated flag, so only the reachability warning applies).
MutationOutcome orphan_op(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  MvppGraph& g = *out.graph;
  for (NodeId b : g.base_ids()) {
    if (g.node(b).expr == nullptr) continue;
    const Schema& schema = g.node(b).expr->output_schema();
    if (schema.attributes().empty()) continue;
    g.add_select(b, eq(col(schema.at(0).qualified()), lit_i64(777)));
    with_closures(out);
    return out;
  }
  unsuitable("orphan-op", "an annotated base relation with a column");
}

/// Add a base relation no query reaches.
MutationOutcome unused_base(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  out.graph->add_base("LintUnusedBase",
                      some_base_schema(*out.graph, "unused-base"), 1.0);
  with_closures(out);
  return out;
}

/// Build closures, then grow the graph: the precomputed closures no
/// longer match a fresh traversal.
MutationOutcome stale_closures(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  const std::vector<NodeId> ops = out.graph->operation_ids();
  if (ops.empty()) unsuitable("stale-closures", "an operation node");
  with_closures(out);
  out.graph->add_query("__lint_extra_query", 1.0, ops.back());
  return out;
}

// ---- Annotation-phase mutations --------------------------------------

MutationOutcome negate_rows(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  const std::vector<NodeId> ops = out.graph->operation_ids();
  if (ops.empty()) unsuitable("negate-rows", "an operation node");
  MvppGraphMutator(*out.graph).node(ops.front()).rows = -5;
  with_closures(out);
  return out;
}

/// Shrink an op's cumulative cost below its own operator cost. Picking a
/// node whose children are all bases (Ca = 0) keeps the monotonicity
/// rule quiet, isolating the bound violation.
MutationOutcome shrink_full_cost(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  MvppGraph& g = *out.graph;
  for (NodeId v : g.operation_ids()) {
    const MvppNode& n = g.node(v);
    if (!(n.op_cost > 0)) continue;
    const bool bases_only =
        std::all_of(n.children.begin(), n.children.end(), [&](NodeId c) {
          return g.node(c).kind == MvppNodeKind::kBase;
        });
    if (!bases_only) continue;
    MvppGraphMutator(g).node(v).full_cost = n.op_cost / 2;
    with_closures(out);
    return out;
  }
  unsuitable("shrink-full-cost",
             "a positive-cost operation over base relations only");
}

/// Set Ca(v) below a child's Ca while keeping full_cost >= op_cost, so
/// only the monotonicity rule can object.
MutationOutcome break_monotone(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  MvppGraph& g = *out.graph;
  for (NodeId v : g.operation_ids()) {
    const MvppNode& n = g.node(v);
    for (NodeId c : n.children) {
      const MvppNode& child = g.node(c);
      if (!child.is_operation() || !(child.full_cost > n.op_cost)) continue;
      MvppGraphMutator(g).node(v).full_cost =
          std::max(n.op_cost, 0.9 * child.full_cost);
      with_closures(out);
      return out;
    }
  }
  unsuitable("break-monotone",
             "an operation whose child out-costs its own operator cost");
}

/// Double a cardinality estimate so it disagrees with the cost model.
MutationOutcome inflate_rows(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  for (NodeId v : out.graph->operation_ids()) {
    const MvppNode& n = out.graph->node(v);
    if (n.expr == nullptr) continue;
    MvppGraphMutator(*out.graph).node(v).rows = 2 * n.rows + 1;
    with_closures(out);
    return out;
  }
  unsuitable("inflate-rows", "an annotated operation node");
}

// ---- Schema-phase mutations ------------------------------------------

MutationOutcome bogus_predicate_column(const MvppGraph& clean,
                                       const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  const NodeId s =
      first_op_of_kind(*out.graph, MvppNodeKind::kSelect, "bogus-predicate");
  MvppGraphMutator(*out.graph).node(s).predicate =
      eq(col("mvlint_no_such_column"), lit_i64(1));
  with_closures(out);
  return out;
}

MutationOutcome bogus_project_column(const MvppGraph& clean,
                                     const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  const NodeId p =
      first_op_of_kind(*out.graph, MvppNodeKind::kProject, "bogus-project");
  MvppGraphMutator(*out.graph).node(p).columns.push_back(
      "mvlint_no_such_column");
  with_closures(out);
  return out;
}

MutationOutcome plan_references_dropped_column(const MvppGraph& clean,
                                               const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  for (const MvppNode& n : out.graph->nodes()) {
    if (n.expr == nullptr || n.expr->kind() != OpKind::kProject) continue;
    const auto& proj = static_cast<const ProjectOp&>(*n.expr);
    // Rebuild the plan node with one projection column replaced by a name
    // no child produces. The recorded output schema and the graph-side
    // n.columns stay untouched, so the annotation and schema/* rules see
    // nothing wrong — only the plan tree itself is dirty.
    std::vector<std::string> columns = proj.columns();
    if (columns.empty()) continue;
    columns.front() = "mvlint_ghost_column";
    MvppGraphMutator(*out.graph).node(n.id).expr =
        std::make_shared<ProjectOp>(proj.children()[0], proj.output_schema(),
                                    std::move(columns));
    with_closures(out);
    return out;
  }
  unsuitable("plan-references-dropped-column",
             "an annotated node whose plan is a projection");
}

// ---- Selection-phase mutations ---------------------------------------

/// Copy + evaluator + a genuinely clean selection result to corrupt.
MutationOutcome with_selection(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  out.evaluator = std::make_unique<MvppEvaluator>(*out.graph);
  out.selection = std::make_unique<SelectionResult>(
      select_all_query_results(*out.evaluator));
  return out;
}

MutationOutcome foreign_materialized_node(const MvppGraph& clean,
                                          const CostModel& cm) {
  MutationOutcome out = with_selection(clean, cm);
  const std::vector<NodeId> bases = out.graph->base_ids();
  if (bases.empty()) unsuitable("foreign-materialized-node", "a base leaf");
  out.selection->materialized.insert(bases.front());
  return out;
}

MutationOutcome perturb_reported_cost(const MvppGraph& clean,
                                      const CostModel& cm) {
  MutationOutcome out = with_selection(clean, cm);
  out.selection->costs.query_processing += 1234;
  return out;
}

MutationOutcome impossible_budget(const MvppGraph& clean,
                                  const CostModel& cm) {
  MutationOutcome out = with_selection(clean, cm);
  const double used =
      total_view_blocks(*out.graph, out.selection->materialized);
  if (!(used > 0)) unsuitable("impossible-budget", "a non-empty selection");
  out.budget_blocks = used / 2;
  return out;
}

/// Record a deploy-time row count that disagrees with the stored view:
/// the warehouse holds an empty table under a materialized node's name
/// while the stats claim one row came out of the deploy.
MutationOutcome drift_deployed_rows(const MvppGraph& clean,
                                    const CostModel& cm) {
  MutationOutcome out = with_selection(clean, cm);
  for (NodeId v : out.selection->materialized) {
    const MvppNode& n = out.graph->node(v);
    if (n.expr == nullptr) continue;
    out.database = std::make_unique<Database>();
    out.database->add_table(n.name, Table(n.expr->output_schema()));
    out.exec_stats = std::make_unique<ExecStats>();
    out.exec_stats->rows_out[n.name] = 1.0;
    return out;
  }
  unsuitable("drift-deployed-rows", "an annotated materialized node");
}

/// Per-shard counters that no longer partition the recorded total: the
/// stats claim three rows were deployed for a materialized view but the
/// two shard slices account for only two. The database stays unset so
/// selection/exec-rows-consistent skips and only the shard-sum
/// reconciliation can object.
MutationOutcome drift_shard_rows(const MvppGraph& clean, const CostModel& cm) {
  MutationOutcome out = with_selection(clean, cm);
  for (NodeId v : out.selection->materialized) {
    const MvppNode& n = out.graph->node(v);
    if (n.expr == nullptr) continue;
    out.exec_stats = std::make_unique<ExecStats>();
    out.exec_stats->rows_out[n.name] = 3.0;
    out.exec_stats->per_shard.resize(2);
    out.exec_stats->per_shard[0].rows_out[n.name] = 1.0;
    out.exec_stats->per_shard[1].rows_out[n.name] = 1.0;
    return out;
  }
  unsuitable("drift-shard-rows", "an annotated materialized node");
}

Value default_value(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return Value::int64(0);
    case ValueType::kDouble:
      return Value::real(0);
    case ValueType::kString:
      return Value::string("");
    case ValueType::kBool:
      return Value::boolean(false);
    case ValueType::kDate:
      return Value::date(0);
  }
  return Value();
}

/// Tamper with a stored view behind the refresh discipline's back: the
/// warehouse holds every base relation (empty) and, under one
/// materialized node's name, its recompute result plus one extra default
/// tuple. exec_stats stays unset so selection/exec-rows-consistent skips
/// and only the bag-level oracle comparison can object.
MutationOutcome tamper_refreshed_view(const MvppGraph& clean,
                                      const CostModel& cm) {
  MutationOutcome out = with_selection(clean, cm);
  for (NodeId v : out.selection->materialized) {
    const MvppNode& n = out.graph->node(v);
    if (n.expr == nullptr) continue;
    out.database = std::make_unique<Database>();
    for (NodeId b : out.graph->bases_under(v)) {
      const MvppNode& base = out.graph->node(b);
      if (base.expr == nullptr) continue;
      out.database->add_table(base.name, Table(base.expr->output_schema()));
    }
    const Executor exec(*out.database, ExecMode::kRow, 1);
    Table stored = exec.run(refresh_plan(*out.graph, v, {}));
    Tuple extra;
    for (const Attribute& a : stored.schema().attributes()) {
      extra.push_back(default_value(a.type));
    }
    stored.append(std::move(extra));
    out.database->add_table(n.name, std::move(stored));
    return out;
  }
  unsuitable("tamper-refreshed-view", "an annotated materialized node");
}

/// A registry snapshot whose cost-ledger gauges disagree with the
/// attached (clean) selection: the maintenance gauge is faithful but the
/// query-processing gauge was nudged, as if the ledger were published
/// for a different design or edited after export.
MutationOutcome tamper_metrics_ledger(const MvppGraph& clean,
                                      const CostModel& cm) {
  MutationOutcome out = with_selection(clean, cm);
  auto snap = std::make_unique<MetricsSnapshot>();
  MetricValue qp;
  qp.kind = MetricKind::kGauge;
  qp.value = out.selection->costs.query_processing + 1234;
  snap->metrics["selection/ledger/query_blocks"] = std::move(qp);
  MetricValue maint;
  maint.kind = MetricKind::kGauge;
  maint.value = out.selection->costs.maintenance;
  snap->metrics["selection/ledger/maintenance_blocks"] = std::move(maint);
  out.metrics = std::move(snap);
  return out;
}

/// A rewrite record whose containment proof does not hold: as if the
/// serving matcher answered `quantity > 50` from a view that only
/// stored `quantity > 100` (or the log was edited after the fact). The
/// graph itself stays clean, so only the evidence re-check can object.
MutationOutcome tamper_rewrite_evidence(const MvppGraph& clean,
                                        const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  with_closures(out);
  ServeRewriteCheck r;
  r.query = "Qtampered";
  r.view = "tmp7";
  r.joint = Schema({Attribute{"quantity", ValueType::kInt64, "Order"}});
  r.query_pred = gt(col("Order.quantity"), lit_i64(50));
  r.view_pred = gt(col("Order.quantity"), lit_i64(100));
  out.rewrites.push_back(std::move(r));
  return out;
}

/// A live observatory's gauges next to a journal in which one serve
/// event's latency was nudged after the fact — the replay's latency sums
/// and histogram no longer agree with the live side. The graph stays
/// clean; only the replay certificate can object.
MutationOutcome tamper_journal_event(const MvppGraph& clean,
                                     const CostModel& cm) {
  MutationOutcome out = copy_of(clean, cm);
  with_closures(out);

  WorkloadObservatory live(64);
  live.attach_journal(std::make_shared<EventJournal>(64, std::string()));
  live.declare_query("Q1", 10);
  live.declare_update("Order", 2);
  for (int i = 0; i < 3; ++i) {
    JournalEvent serve;
    serve.kind = EventKind::kServe;
    serve.query = "Q1";
    serve.fingerprint = "R[Order] J[] S[] P[Order.quantity]";
    serve.rewritten = i % 2 == 0;
    serve.view = serve.rewritten ? "tmp7" : "";
    serve.engine = "row";
    serve.latency_ms = 0.25 * (i + 1);
    live.record(std::move(serve));
  }

  LintContext::WorkloadJournalCheck check;
  check.live_gauges = live.stats().to_gauges();
  check.events = live.journal()->events();
  check.window = live.window();
  for (JournalEvent& e : check.events) {
    if (e.kind == EventKind::kServe) {
      e.latency_ms += 1.0;
      break;
    }
  }
  out.workload = std::move(check);
  return out;
}

}  // namespace

const std::vector<GraphMutation>& builtin_mutations() {
  static const std::vector<GraphMutation> mutations = {
      {"rewire-arc-to-ancestor", "structure/acyclic", rewire_arc_to_ancestor},
      {"drop-parent-backlink", "structure/arc-symmetry", drop_parent_backlink},
      {"clone-signature", "structure/signature-dedup", clone_signature},
      {"extra-select-child", "structure/arity", extra_select_child},
      {"op-frequency", "structure/frequency-placement", op_frequency},
      {"orphan-op", "structure/orphan-op", orphan_op},
      {"unused-base", "structure/unused-base", unused_base},
      {"stale-closures", "structure/closure-sync", stale_closures},
      {"negate-rows", "annotation/non-negative", negate_rows},
      {"shrink-full-cost", "annotation/full-cost-bound", shrink_full_cost},
      {"break-monotone", "annotation/ca-monotone", break_monotone},
      {"inflate-rows", "annotation/estimate-consistent", inflate_rows},
      {"bogus-predicate-column", "schema/predicate-columns",
       bogus_predicate_column},
      {"bogus-project-column", "schema/projection-columns",
       bogus_project_column},
      {"plan-references-dropped-column", "plan/check-clean",
       plan_references_dropped_column},
      {"foreign-materialized-node", "selection/materialized-set",
       foreign_materialized_node},
      {"perturb-reported-cost", "selection/cost-reproducible",
       perturb_reported_cost},
      {"impossible-budget", "selection/within-budget", impossible_budget},
      {"drift-deployed-rows", "selection/exec-rows-consistent",
       drift_deployed_rows},
      {"drift-shard-rows", "distributed/shard-stats-consistent",
       drift_shard_rows},
      {"tamper-refreshed-view", "maintenance/refresh-consistent",
       tamper_refreshed_view},
      {"tamper-metrics-ledger", "obs/metrics-consistent",
       tamper_metrics_ledger},
      {"tamper-rewrite-evidence", "serve/rewrite-consistent",
       tamper_rewrite_evidence},
      {"tamper-journal-event", "obs/journal-consistent",
       tamper_journal_event},
  };
  return mutations;
}

}  // namespace mvd
