// Observability rules: when a metrics-registry snapshot rides along in
// the context, the cost-ledger gauges the design published
// ("selection/ledger/query_blocks" / "maintenance_blocks") must
// reconcile with the costs reported by an attached selection result.
// publish_selection_ledger computes its gauges through the same
// MvppEvaluator entry points that produced SelectionResult::costs, so a
// mismatch means the registry and the design drifted apart — stale
// metrics from an earlier design, a tampered export, or a publisher bug.
#include <cmath>
#include <memory>

#include "src/common/strings.hpp"
#include "src/common/units.hpp"
#include "src/lint/registry.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/workload.hpp"

namespace mvd {

namespace {

bool close_enough(double a, double b) {
  // The publisher and the selection use the same evaluator entry points,
  // so agreement is expected bit-for-bit; the epsilon only forgives
  // text-format round-trips of an exported snapshot.
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= 1e-9 * scale;
}

void check_metrics_consistent(const LintContext& ctx, RuleEmitter& out) {
  if (ctx.metrics == nullptr || ctx.selections.empty()) return;
  const MetricsSnapshot& snap = *ctx.metrics;
  const std::optional<double> qp =
      snap.value_of("selection/ledger/query_blocks");
  const std::optional<double> maint =
      snap.value_of("selection/ledger/maintenance_blocks");
  if (!qp.has_value() && !maint.has_value()) return;  // ledger not published

  // The gauges describe one chosen design; they reconcile when at least
  // one attached selection reports exactly those costs.
  for (const LintContext::SelectionCheck& check : ctx.selections) {
    const SelectionResult& r = *check.result;
    const bool qp_ok =
        !qp.has_value() || close_enough(*qp, r.costs.query_processing);
    const bool maint_ok =
        !maint.has_value() || close_enough(*maint, r.costs.maintenance);
    if (qp_ok && maint_ok) return;
  }
  const SelectionResult& r = *ctx.selections.front().result;
  out.emit_selection(
      r,
      str_cat("registry cost ledger (query ",
              qp.has_value() ? format_blocks(*qp) : std::string("absent"),
              ", maintenance ",
              maint.has_value() ? format_blocks(*maint)
                                : std::string("absent"),
              ") does not reconcile with any attached selection (this one "
              "reports query ",
              format_blocks(r.costs.query_processing), ", maintenance ",
              format_blocks(r.costs.maintenance), ")"),
      "republish the ledger after (re)running the design — "
      "publish_selection_ledger and SelectionResult::costs must come from "
      "the same evaluator and materialized set");
}

// Certify the observatory's replay contract: re-recording the attached
// journal through a fresh observatory must reproduce the live gauges
// *exactly* (double equality, not epsilon — both sides run the same
// floating-point operations in the same order). The caller attaches a
// complete journal (the ring must not have dropped events); a deleted,
// reordered or edited line changes seq assignments or tallies and fails
// the diff.
void check_journal_consistent(const LintContext& ctx, RuleEmitter& out) {
  if (!ctx.workload.has_value()) return;
  const LintContext::WorkloadJournalCheck& check = *ctx.workload;
  const std::unique_ptr<WorkloadObservatory> replayed =
      replay_journal(check.events, check.window);
  const std::map<std::string, double> gauges = replayed->stats().to_gauges();
  if (gauges == check.live_gauges) return;

  // Name the first divergence: a key on one side only, or the first
  // value mismatch.
  for (const auto& [name, live] : check.live_gauges) {
    const auto it = gauges.find(name);
    if (it == gauges.end()) {
      out.emit_graph(
          str_cat("journal replay lost gauge '", name, "' (live ", live, ")"),
          "the attached journal is incomplete or events were deleted");
      return;
    }
    if (it->second != live) {
      out.emit_graph(
          str_cat("journal replay disagrees on '", name, "': live ", live,
                  ", replayed ", it->second),
          "an event was edited, reordered or dropped — the journal no "
          "longer reproduces the live observatory");
      return;
    }
  }
  for (const auto& [name, replay_value] : gauges) {
    if (check.live_gauges.count(name) == 0) {
      out.emit_graph(str_cat("journal replay invented gauge '", name,
                             "' (replayed ", replay_value, ")"),
                     "the journal contains events the live observatory "
                     "never recorded");
      return;
    }
  }
}

}  // namespace

void register_obs_rules(LintRegistry& registry) {
  registry.add({"obs/metrics-consistent", LintPhase::kSelection,
                Severity::kError,
                "registry cost-ledger gauges reconcile with selection costs",
                check_metrics_consistent});
  registry.add({"obs/journal-consistent", LintPhase::kSelection,
                Severity::kError,
                "journal replay reproduces live observatory gauges exactly",
                check_journal_consistent});
}

}  // namespace mvd
