// Maintenance-discipline rules: stored views in the warehouse must stay
// consistent with what from-scratch recomputation of their MVPP node
// produces. Whatever refresh path put them there — deploy, recompute
// refresh, or the incremental delta driver — the stored bag is only
// correct if it equals the recompute oracle.
#include "src/common/strings.hpp"
#include "src/exec/executor.hpp"
#include "src/lint/registry.hpp"
#include "src/mvpp/rewrite.hpp"
#include "src/storage/database.hpp"

namespace mvd {

namespace {

bool valid_materialized_set(const MvppGraph& g, const MaterializedSet& m) {
  for (NodeId v : m) {
    if (v < 0 || static_cast<std::size_t>(v) >= g.size() ||
        !g.node(v).is_operation()) {
      return false;
    }
  }
  return true;
}

void check_refresh_consistent(const LintContext& ctx, RuleEmitter& out) {
  // Recompute each stored view from the base relations only (frontier
  // deliberately empty, so one clobbered view cannot vouch for another)
  // and demand bag equality with the warehouse contents. Skips silently
  // when the warehouse or any needed base relation is absent, and when
  // the node's plan cannot run against the database (those states are
  // other rules' business).
  if (ctx.database == nullptr) return;
  const MvppGraph& g = *ctx.graph;
  const Executor exec(*ctx.database, ExecMode::kRow, 1);
  for (const LintContext::SelectionCheck& check : ctx.selections) {
    const SelectionResult& r = *check.result;
    if (!valid_materialized_set(g, r.materialized)) continue;
    for (NodeId v : r.materialized) {
      const std::string& name = g.node(v).name;
      if (!ctx.database->has_table(name)) continue;
      bool bases_present = true;
      for (NodeId b : g.bases_under(v)) {
        if (!ctx.database->has_table(g.node(b).name)) {
          bases_present = false;
          break;
        }
      }
      if (!bases_present) continue;
      std::optional<Table> oracle;
      try {
        oracle = exec.run(refresh_plan(g, v, {}));
      } catch (const std::exception&) {
        continue;  // unrunnable plan: schema/binding rules own this
      }
      const Table& stored = ctx.database->table(name);
      if (!same_bag(stored, *oracle)) {
        out.emit_selection(
            r,
            str_cat("stored view '", name, "' holds ", stored.row_count(),
                    " rows that are not bag-identical to recomputation (",
                    oracle->row_count(), " rows)"),
            "refresh the view (recompute or incremental) after base-table "
            "updates instead of editing stored tables directly");
      }
    }
  }
}

}  // namespace

void register_maintenance_rules(LintRegistry& registry) {
  registry.add({"maintenance/refresh-consistent", LintPhase::kSelection,
                Severity::kError,
                "stored views are bag-identical to from-scratch recomputation",
                check_refresh_consistent});
}

}  // namespace mvd
