#include "src/algebra/logical_plan.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mvd {

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kScan: return "scan";
    case OpKind::kSelect: return "select";
    case OpKind::kProject: return "project";
    case OpKind::kJoin: return "join";
    case OpKind::kAggregate: return "aggregate";
  }
  MVD_ASSERT(false);
  return {};
}

ExprPtr bind_expr(const ExprPtr& expr, const Schema& schema) {
  MVD_ASSERT(expr != nullptr);
  return rewrite_columns(expr, [&schema](const std::string& name) {
    return schema.at(schema.index_of(name)).qualified();
  });
}

SelectOp::SelectOp(PlanPtr child, ExprPtr predicate)
    : LogicalOp(OpKind::kSelect, child->output_schema(), {child}),
      predicate_(std::move(predicate)) {
  MVD_ASSERT(predicate_ != nullptr);
}

std::string ProjectOp::label() const {
  return "project[" + join(columns_, ", ") + "]";
}

JoinOp::JoinOp(PlanPtr left, PlanPtr right, ExprPtr predicate)
    : LogicalOp(OpKind::kJoin,
                Schema::concat(left->output_schema(), right->output_schema()),
                {left, right}),
      predicate_(std::move(predicate)) {
  MVD_ASSERT(predicate_ != nullptr);
}

PlanPtr make_scan(const Catalog& catalog, const std::string& relation) {
  const Schema& base = catalog.schema(relation);
  // Qualify attribute sources so downstream schemas keep provenance.
  std::vector<Attribute> attrs;
  attrs.reserve(base.size());
  for (Attribute a : base.attributes()) {
    if (a.source.empty()) a.source = relation;
    attrs.push_back(std::move(a));
  }
  return std::make_shared<ScanOp>(relation, Schema(std::move(attrs)));
}

PlanPtr make_named_scan(const std::string& relation, Schema schema) {
  return std::make_shared<ScanOp>(relation, std::move(schema));
}

PlanPtr make_select(PlanPtr child, const ExprPtr& predicate) {
  MVD_ASSERT(child != nullptr);
  ExprPtr bound = bind_expr(predicate, child->output_schema());
  return std::make_shared<SelectOp>(std::move(child), std::move(bound));
}

PlanPtr make_project(PlanPtr child, const std::vector<std::string>& columns) {
  MVD_ASSERT(child != nullptr);
  if (columns.empty()) throw PlanError("projection list must not be empty");
  const Schema& in = child->output_schema();
  std::vector<Attribute> attrs;
  std::vector<std::string> qualified;
  attrs.reserve(columns.size());
  qualified.reserve(columns.size());
  for (const std::string& c : columns) {
    const Attribute& a = in.at(in.index_of(c));
    if (std::find(qualified.begin(), qualified.end(), a.qualified()) !=
        qualified.end()) {
      throw PlanError("duplicate projection column '" + a.qualified() + "'");
    }
    attrs.push_back(a);
    qualified.push_back(a.qualified());
  }
  return std::make_shared<ProjectOp>(std::move(child),
                                     Schema(std::move(attrs)),
                                     std::move(qualified));
}

PlanPtr make_join(PlanPtr left, PlanPtr right, const ExprPtr& predicate) {
  MVD_ASSERT(left != nullptr && right != nullptr);
  const Schema joint =
      Schema::concat(left->output_schema(), right->output_schema());
  ExprPtr bound = bind_expr(predicate, joint);
  return std::make_shared<JoinOp>(std::move(left), std::move(right),
                                  std::move(bound));
}

std::set<std::string> base_relations(const PlanPtr& plan) {
  std::set<std::string> out;
  if (plan == nullptr) return out;
  if (plan->kind() == OpKind::kScan) {
    out.insert(static_cast<const ScanOp&>(*plan).relation());
  }
  for (const PlanPtr& c : plan->children()) {
    auto sub = base_relations(c);
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

namespace {
void render_tree(const PlanPtr& plan, int depth, std::ostringstream& os) {
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << plan->label()
     << '\n';
  for (const PlanPtr& c : plan->children()) render_tree(c, depth + 1, os);
}
}  // namespace

std::string plan_tree_string(const PlanPtr& plan) {
  MVD_ASSERT(plan != nullptr);
  std::ostringstream os;
  render_tree(plan, 0, os);
  return os.str();
}

std::string signature(const PlanPtr& plan) {
  MVD_ASSERT(plan != nullptr);
  switch (plan->kind()) {
    case OpKind::kScan:
      return "scan(" + static_cast<const ScanOp&>(*plan).relation() + ")";
    case OpKind::kSelect: {
      const auto& s = static_cast<const SelectOp&>(*plan);
      return "select[" + normalize(s.predicate())->to_string() + "](" +
             signature(plan->children()[0]) + ")";
    }
    case OpKind::kProject: {
      const auto& p = static_cast<const ProjectOp&>(*plan);
      // Projection identity is order-insensitive: sort columns.
      std::vector<std::string> cols = p.columns();
      std::sort(cols.begin(), cols.end());
      return "project[" + join(cols, ",") + "](" +
             signature(plan->children()[0]) + ")";
    }
    case OpKind::kJoin: {
      const auto& j = static_cast<const JoinOp&>(*plan);
      std::string l = signature(j.left());
      std::string r = signature(j.right());
      if (r < l) std::swap(l, r);  // joins are commutative
      return "join[" + normalize(j.predicate())->to_string() + "]{" + l +
             "," + r + "}";
    }
    case OpKind::kAggregate:
      // Aggregate identity comes from the node's own label (sorted group
      // columns + aggregate specs) over the child.
      return plan->label() + "(" + signature(plan->children()[0]) + ")";
  }
  MVD_ASSERT(false);
  return {};
}

}  // namespace mvd
