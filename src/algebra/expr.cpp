#include "src/algebra/expr.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"

namespace mvd {

std::string to_string(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  MVD_ASSERT(false);
  return {};
}

CompareOp flip(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return CompareOp::kEq;
    case CompareOp::kNe: return CompareOp::kNe;
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
  }
  MVD_ASSERT(false);
  return op;
}

CompareOp negate(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return CompareOp::kNe;
    case CompareOp::kNe: return CompareOp::kEq;
    case CompareOp::kLt: return CompareOp::kGe;
    case CompareOp::kLe: return CompareOp::kGt;
    case CompareOp::kGt: return CompareOp::kLe;
    case CompareOp::kGe: return CompareOp::kLt;
  }
  MVD_ASSERT(false);
  return op;
}

ComparisonExpr::ComparisonExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
    : Expr(ExprKind::kComparison), op_(op), lhs_(std::move(lhs)),
      rhs_(std::move(rhs)) {
  MVD_ASSERT(lhs_ != nullptr && rhs_ != nullptr);
}

std::string ComparisonExpr::to_string() const {
  return "(" + lhs_->to_string() + " " + mvd::to_string(op_) + " " +
         rhs_->to_string() + ")";
}

BoolExpr::BoolExpr(ExprKind kind, std::vector<ExprPtr> operands)
    : Expr(kind), operands_(std::move(operands)) {
  MVD_ASSERT(kind == ExprKind::kAnd || kind == ExprKind::kOr);
  MVD_ASSERT_MSG(operands_.size() >= 2, "BoolExpr needs >= 2 operands");
  for (const auto& op : operands_) MVD_ASSERT(op != nullptr);
}

std::string BoolExpr::to_string() const {
  const char* word = kind() == ExprKind::kAnd ? " AND " : " OR ";
  std::string out = "(";
  for (std::size_t i = 0; i < operands_.size(); ++i) {
    if (i != 0) out += word;
    out += operands_[i]->to_string();
  }
  out += ")";
  return out;
}

NotExpr::NotExpr(ExprPtr operand)
    : Expr(ExprKind::kNot), operand_(std::move(operand)) {
  MVD_ASSERT(operand_ != nullptr);
}

std::string NotExpr::to_string() const {
  return "(NOT " + operand_->to_string() + ")";
}

ExprPtr col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprPtr lit(Value value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}
ExprPtr lit_i64(std::int64_t v) { return lit(Value::int64(v)); }
ExprPtr lit_str(std::string v) { return lit(Value::string(std::move(v))); }
ExprPtr lit_real(double v) { return lit(Value::real(v)); }

ExprPtr cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ComparisonExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr eq(ExprPtr lhs, ExprPtr rhs) {
  return cmp(CompareOp::kEq, std::move(lhs), std::move(rhs));
}
ExprPtr lt(ExprPtr lhs, ExprPtr rhs) {
  return cmp(CompareOp::kLt, std::move(lhs), std::move(rhs));
}
ExprPtr gt(ExprPtr lhs, ExprPtr rhs) {
  return cmp(CompareOp::kGt, std::move(lhs), std::move(rhs));
}

ExprPtr conj(std::vector<ExprPtr> operands) {
  if (operands.empty()) return nullptr;
  if (operands.size() == 1) return operands.front();
  return std::make_shared<BoolExpr>(ExprKind::kAnd, std::move(operands));
}

ExprPtr disj(std::vector<ExprPtr> operands) {
  if (operands.empty()) return nullptr;
  if (operands.size() == 1) return operands.front();
  return std::make_shared<BoolExpr>(ExprKind::kOr, std::move(operands));
}

ExprPtr neg(ExprPtr operand) {
  return std::make_shared<NotExpr>(std::move(operand));
}

namespace {

void collect_columns(const ExprPtr& expr, std::set<std::string>& out) {
  switch (expr->kind()) {
    case ExprKind::kColumn:
      out.insert(static_cast<const ColumnExpr&>(*expr).name());
      return;
    case ExprKind::kLiteral:
      return;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*expr);
      collect_columns(c.lhs(), out);
      collect_columns(c.rhs(), out);
      return;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const auto& op : static_cast<const BoolExpr&>(*expr).operands()) {
        collect_columns(op, out);
      }
      return;
    case ExprKind::kNot:
      collect_columns(static_cast<const NotExpr&>(*expr).operand(), out);
      return;
  }
  MVD_ASSERT(false);
}

// Flatten same-kind BoolExprs into `out`.
void flatten(ExprKind kind, const ExprPtr& expr, std::vector<ExprPtr>& out) {
  if (expr->kind() == kind) {
    for (const auto& op : static_cast<const BoolExpr&>(*expr).operands()) {
      flatten(kind, op, out);
    }
  } else {
    out.push_back(expr);
  }
}

}  // namespace

std::set<std::string> columns_of(const ExprPtr& expr) {
  std::set<std::string> out;
  if (expr != nullptr) collect_columns(expr, out);
  return out;
}

std::vector<ExprPtr> conjuncts_of(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr != nullptr) flatten(ExprKind::kAnd, expr, out);
  return out;
}

ExprPtr normalize(const ExprPtr& expr) {
  if (expr == nullptr) return nullptr;
  switch (expr->kind()) {
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*expr);
      ExprPtr l = normalize(c.lhs());
      ExprPtr r = normalize(c.rhs());
      CompareOp op = c.op();
      // Orient: literal-vs-column becomes column-vs-literal; two columns
      // are ordered lexicographically.
      const bool swap_lit =
          l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumn;
      const bool swap_cols = l->kind() == ExprKind::kColumn &&
                             r->kind() == ExprKind::kColumn &&
                             r->to_string() < l->to_string();
      if (swap_lit || swap_cols) {
        std::swap(l, r);
        op = flip(op);
      }
      return cmp(op, std::move(l), std::move(r));
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<ExprPtr> flat;
      flatten(expr->kind(), expr, flat);
      std::vector<ExprPtr> norm;
      norm.reserve(flat.size());
      for (const auto& e : flat) {
        ExprPtr n = normalize(e);
        // Normalizing children can re-expose same-kind nesting; reflatten.
        if (n->kind() == expr->kind()) {
          for (const auto& inner :
               static_cast<const BoolExpr&>(*n).operands()) {
            norm.push_back(inner);
          }
        } else {
          norm.push_back(std::move(n));
        }
      }
      std::sort(norm.begin(), norm.end(), [](const ExprPtr& a, const ExprPtr& b) {
        return a->to_string() < b->to_string();
      });
      norm.erase(std::unique(norm.begin(), norm.end(),
                             [](const ExprPtr& a, const ExprPtr& b) {
                               return a->to_string() == b->to_string();
                             }),
                 norm.end());
      return expr->kind() == ExprKind::kAnd ? conj(std::move(norm))
                                            : disj(std::move(norm));
    }
    case ExprKind::kNot: {
      const auto& n = static_cast<const NotExpr&>(*expr);
      ExprPtr inner = normalize(n.operand());
      if (inner->kind() == ExprKind::kComparison) {
        const auto& c = static_cast<const ComparisonExpr&>(*inner);
        return cmp(negate(c.op()), c.lhs(), c.rhs());
      }
      if (inner->kind() == ExprKind::kNot) {
        return static_cast<const NotExpr&>(*inner).operand();
      }
      return neg(std::move(inner));
    }
  }
  MVD_ASSERT(false);
  return nullptr;
}

bool expr_equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == nullptr || b == nullptr) return a == b;
  return normalize(a)->to_string() == normalize(b)->to_string();
}

std::optional<ColumnPair> as_column_equality(const ExprPtr& expr) {
  if (expr == nullptr || expr->kind() != ExprKind::kComparison) {
    return std::nullopt;
  }
  const auto& c = static_cast<const ComparisonExpr&>(*expr);
  if (c.op() != CompareOp::kEq) return std::nullopt;
  if (c.lhs()->kind() != ExprKind::kColumn ||
      c.rhs()->kind() != ExprKind::kColumn) {
    return std::nullopt;
  }
  return ColumnPair{static_cast<const ColumnExpr&>(*c.lhs()).name(),
                    static_cast<const ColumnExpr&>(*c.rhs()).name()};
}

ExprPtr rewrite_columns(
    const ExprPtr& expr,
    const std::function<std::string(const std::string&)>& rename) {
  if (expr == nullptr) return nullptr;
  switch (expr->kind()) {
    case ExprKind::kColumn:
      return col(rename(static_cast<const ColumnExpr&>(*expr).name()));
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*expr);
      return cmp(c.op(), rewrite_columns(c.lhs(), rename),
                 rewrite_columns(c.rhs(), rename));
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& b = static_cast<const BoolExpr&>(*expr);
      std::vector<ExprPtr> ops;
      ops.reserve(b.operands().size());
      for (const auto& op : b.operands()) {
        ops.push_back(rewrite_columns(op, rename));
      }
      return expr->kind() == ExprKind::kAnd ? conj(std::move(ops))
                                            : disj(std::move(ops));
    }
    case ExprKind::kNot:
      return neg(rewrite_columns(static_cast<const NotExpr&>(*expr).operand(),
                                 rename));
  }
  MVD_ASSERT(false);
  return nullptr;
}

}  // namespace mvd
