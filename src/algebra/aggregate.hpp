// Grouped aggregation — the paper's first listed piece of future work
// ("we are working on materialized view design for more complicated
// queries such as query with aggregation functions").
//
// An AggregateOp groups its input on a set of columns and computes
// COUNT / SUM / MIN / MAX / AVG aggregates. Aggregate views are first-class
// MVPP nodes: they can be materialized, maintained and answered from like
// any select/project/join node.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/algebra/logical_plan.hpp"

namespace mvd {

enum class AggFn {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  /// Integer-preserving sum: SUM over an int64 column that yields int64
  /// instead of double. Used by serve-side compensation plans to roll a
  /// stored COUNT column up to a coarser grouping without changing its
  /// type (SUM of counts must still *be* a count).
  kSumInt,
};

std::string to_string(AggFn fn);

/// One aggregate in the SELECT list, e.g. SUM(quantity) AS total.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  /// Qualified input column; empty for COUNT(*).
  std::string column;
  /// Output attribute name. Defaults (applied by the binder) look like
  /// "sum_quantity" / "count_all".
  std::string alias;

  /// Output value type: COUNT -> int64, SUM/AVG -> double, MIN/MAX -> the
  /// input column's type (`input` resolves it).
  ValueType output_type(const Schema& input) const;

  /// "sum(Order.quantity) AS total"
  std::string to_string() const;

  friend bool operator==(const AggSpec&, const AggSpec&) = default;
};

class AggregateOp final : public LogicalOp {
 public:
  AggregateOp(PlanPtr child, Schema schema, std::vector<std::string> group_by,
              std::vector<AggSpec> aggregates)
      : LogicalOp(OpKind::kAggregate, std::move(schema), {std::move(child)}),
        group_by_(std::move(group_by)), aggregates_(std::move(aggregates)) {}

  /// Qualified grouping columns, in output order.
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }
  std::string label() const override;

 private:
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggregates_;
};

/// Build an aggregation over `child`. Group columns (possibly bare) are
/// resolved against the child schema; aggregate input columns likewise;
/// empty aliases receive defaults; duplicate output names throw
/// PlanError. The output schema lists group columns first (keeping their
/// sources), then one attribute per aggregate (source-less, named by
/// alias). `group_by` may be empty (global aggregation, one output row).
PlanPtr make_aggregate(PlanPtr child, const std::vector<std::string>& group_by,
                       std::vector<AggSpec> aggregates);

}  // namespace mvd
