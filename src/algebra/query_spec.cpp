#include "src/algebra/query_spec.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mvd {

namespace {

std::string relation_of_column(const std::string& qualified) {
  const std::size_t dot = qualified.find('.');
  MVD_ASSERT_MSG(dot != std::string::npos,
                 "expected qualified column, got '" << qualified << "'");
  return qualified.substr(0, dot);
}

/// The canonical identity string behind QuerySpec::fingerprint().
/// Sorted pieces make it stable under FROM/WHERE reordering; the output
/// shape stays in declaration order because a permuted projection is a
/// different result.
std::string compute_fingerprint(const QuerySpec& query) {
  std::vector<std::string> relations = query.relations();
  std::sort(relations.begin(), relations.end());
  std::vector<std::string> joins;
  for (const JoinPredicate& j : query.joins()) joins.push_back(j.canonical());
  std::sort(joins.begin(), joins.end());
  std::vector<std::string> selections;
  for (const ExprPtr& s : query.selections()) {
    selections.push_back(s->to_string());
  }
  std::sort(selections.begin(), selections.end());

  std::string fp = "R[";
  fp += join(relations, ",");
  fp += "] J[";
  fp += join(joins, ",");
  fp += "] S[";
  fp += join(selections, ",");
  fp += "] P[";
  fp += join(query.projection(), ",");
  fp += "]";
  if (query.has_aggregation()) {
    fp += " G[";
    fp += join(query.group_by(), ",");
    fp += "] A[";
    std::vector<std::string> aggs;
    for (const AggSpec& a : query.aggregates()) aggs.push_back(a.to_string());
    fp += join(aggs, ",");
    fp += "]";
  }
  return fp;
}

}  // namespace

std::string JoinPredicate::left_relation() const {
  return relation_of_column(left_column);
}

std::string JoinPredicate::right_relation() const {
  return relation_of_column(right_column);
}

std::string JoinPredicate::canonical() const {
  return left_column <= right_column
             ? left_column + " = " + right_column
             : right_column + " = " + left_column;
}

std::vector<ExprPtr> QuerySpec::selections_on(
    const std::string& relation) const {
  std::vector<ExprPtr> out;
  for (const ExprPtr& s : selections_) {
    const auto rels = relations_of_expr(s);
    if (rels.size() == 1 && *rels.begin() == relation) out.push_back(s);
  }
  return out;
}

std::vector<ExprPtr> QuerySpec::multi_relation_selections() const {
  std::vector<ExprPtr> out;
  for (const ExprPtr& s : selections_) {
    if (relations_of_expr(s).size() > 1) out.push_back(s);
  }
  return out;
}

std::set<std::string> QuerySpec::relations_of_expr(const ExprPtr& expr) {
  std::set<std::string> rels;
  for (const std::string& c : columns_of(expr)) {
    rels.insert(relation_of_column(c));
  }
  return rels;
}

std::set<std::string> QuerySpec::used_columns(
    const std::string& relation) const {
  std::set<std::string> cols;
  auto take = [&](const std::string& qualified) {
    if (relation_of_column(qualified) == relation) cols.insert(qualified);
  };
  for (const std::string& p : projection_) take(p);
  for (const ExprPtr& s : selections_) {
    for (const std::string& c : columns_of(s)) take(c);
  }
  for (const JoinPredicate& j : joins_) {
    take(j.left_column);
    take(j.right_column);
  }
  return cols;
}

std::vector<JoinPredicate> QuerySpec::joins_between(
    const std::string& a, const std::string& b) const {
  std::vector<JoinPredicate> out;
  for (const JoinPredicate& j : joins_) {
    const std::string lr = j.left_relation();
    const std::string rr = j.right_relation();
    if ((lr == a && rr == b) || (lr == b && rr == a)) out.push_back(j);
  }
  return out;
}

bool QuerySpec::join_graph_connected() const {
  if (relations_.size() <= 1) return true;
  std::set<std::string> reached = {relations_.front()};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const JoinPredicate& j : joins_) {
      const bool l = reached.contains(j.left_relation());
      const bool r = reached.contains(j.right_relation());
      if (l != r) {
        reached.insert(l ? j.right_relation() : j.left_relation());
        grew = true;
      }
    }
  }
  return reached.size() == relations_.size();
}

std::string QuerySpec::to_string() const {
  std::ostringstream os;
  os << name_ << " (fq=" << frequency_ << "): SELECT ";
  if (has_aggregation()) {
    std::vector<std::string> items = group_by_;
    for (const AggSpec& a : aggregates_) items.push_back(a.to_string());
    os << join(items, ", ");
  } else {
    os << join(projection_, ", ");
  }
  os << " FROM " << join(relations_, ", ");
  std::vector<std::string> preds;
  for (const JoinPredicate& j : joins_) preds.push_back(j.canonical());
  for (const ExprPtr& s : selections_) preds.push_back(s->to_string());
  if (!preds.empty()) os << " WHERE " << join(preds, " AND ");
  if (!group_by_.empty()) os << " GROUP BY " << join(group_by_, ", ");
  return os.str();
}

namespace {

// Render an expression as parseable SQL (DATE literals prefixed, infix
// AND/OR, NOT prefix).
std::string expr_sql(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kColumn:
      return static_cast<const ColumnExpr&>(*e).name();
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(*e).value();
      if (v.type() == ValueType::kDate) return "DATE '" + v.to_string() + "'";
      if (v.type() == ValueType::kBool) return v.as_bool() ? "TRUE" : "FALSE";
      return v.to_string();
    }
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*e);
      return "(" + expr_sql(c.lhs()) + " " + to_string(c.op()) + " " +
             expr_sql(c.rhs()) + ")";
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& b = static_cast<const BoolExpr&>(*e);
      std::vector<std::string> parts;
      for (const ExprPtr& op : b.operands()) parts.push_back(expr_sql(op));
      return "(" + join(parts, e->kind() == ExprKind::kAnd ? " AND " : " OR ") +
             ")";
    }
    case ExprKind::kNot:
      return "(NOT " + expr_sql(static_cast<const NotExpr&>(*e).operand()) +
             ")";
  }
  MVD_ASSERT(false);
  return {};
}

}  // namespace

std::string QuerySpec::to_sql() const {
  std::ostringstream os;
  os << "SELECT ";
  if (has_aggregation()) {
    std::vector<std::string> items = group_by_;
    for (const AggSpec& a : aggregates_) {
      items.push_back(mvd::to_string(a.fn) + "(" +
                      (a.column.empty() ? "*" : a.column) + ") AS " + a.alias);
    }
    os << join(items, ", ");
  } else {
    os << join(projection_, ", ");
  }
  os << " FROM " << join(relations_, ", ");
  std::vector<std::string> preds;
  for (const JoinPredicate& j : joins_) {
    preds.push_back("(" + j.left_column + " = " + j.right_column + ")");
  }
  for (const ExprPtr& s : selections_) preds.push_back(expr_sql(s));
  if (!preds.empty()) os << " WHERE " << join(preds, " AND ");
  if (!group_by_.empty()) os << " GROUP BY " << join(group_by_, ", ");
  return os.str();
}

QuerySpec QuerySpec::bind(const Catalog& catalog, std::string name,
                          double frequency,
                          std::vector<std::string> relations,
                          const ExprPtr& where,
                          std::vector<std::string> select_list,
                          std::vector<std::string> group_by,
                          std::vector<AggSpec> aggregates) {
  if (relations.empty()) throw BindError("query needs at least one relation");
  if (!(frequency >= 0)) throw BindError("negative query frequency");
  for (std::size_t i = 0; i < relations.size(); ++i) {
    if (!catalog.has_relation(relations[i])) {
      throw CatalogError("unknown relation '" + relations[i] + "'");
    }
    for (std::size_t j = i + 1; j < relations.size(); ++j) {
      if (relations[i] == relations[j]) {
        throw BindError("relation '" + relations[i] +
                        "' listed twice (self-joins are not supported)");
      }
    }
  }

  // The joint schema over all FROM relations, with qualified sources.
  Schema joint;
  for (const std::string& r : relations) {
    joint = Schema::concat(joint, make_scan(catalog, r)->output_schema());
  }

  QuerySpec spec;
  spec.name_ = std::move(name);
  spec.frequency_ = frequency;
  spec.relations_ = std::move(relations);

  if (where != nullptr) {
    const ExprPtr bound = bind_expr(where, joint);
    for (const ExprPtr& conjunct : conjuncts_of(bound)) {
      if (auto pair = as_column_equality(conjunct);
          pair.has_value() && relation_of_column(pair->left) !=
                                  relation_of_column(pair->right)) {
        spec.joins_.push_back(JoinPredicate{pair->left, pair->right});
      } else {
        if (relations_of_expr(conjunct).empty()) {
          throw BindError("constant predicate '" + conjunct->to_string() +
                          "' is not supported");
        }
        spec.selections_.push_back(conjunct);
      }
    }
  }

  if (aggregates.empty()) {
    if (!group_by.empty()) {
      throw BindError("GROUP BY without aggregate functions is not supported");
    }
    if (select_list.empty()) throw BindError("empty SELECT list");
    for (const std::string& c : select_list) {
      const Attribute& a = joint.at(joint.index_of(c));
      const std::string q = a.qualified();
      if (std::find(spec.projection_.begin(), spec.projection_.end(), q) !=
          spec.projection_.end()) {
        throw BindError("duplicate SELECT column '" + q + "'");
      }
      spec.projection_.push_back(q);
    }
    spec.fingerprint_ = compute_fingerprint(spec);
    return spec;
  }

  // Aggregation query: qualify group columns, check the SELECT list's
  // plain columns are exactly the grouping columns, resolve aggregate
  // inputs and aliases.
  for (const std::string& g : group_by) {
    const std::string q = joint.at(joint.index_of(g)).qualified();
    if (std::find(spec.group_by_.begin(), spec.group_by_.end(), q) !=
        spec.group_by_.end()) {
      throw BindError("duplicate GROUP BY column '" + q + "'");
    }
    spec.group_by_.push_back(q);
  }
  for (const std::string& c : select_list) {
    const std::string q = joint.at(joint.index_of(c)).qualified();
    if (std::find(spec.group_by_.begin(), spec.group_by_.end(), q) ==
        spec.group_by_.end()) {
      throw BindError("SELECT column '" + q +
                      "' must appear in GROUP BY alongside aggregates");
    }
  }
  for (AggSpec& agg : aggregates) {
    if (!agg.column.empty()) {
      agg.column = joint.at(joint.index_of(agg.column)).qualified();
    }
    if (agg.alias.empty()) {
      // Same defaulting rule make_aggregate applies, fixed here so the
      // spec is self-describing (to_sql round-trips).
      const std::string base =
          agg.column.empty() ? "all"
                             : agg.column.substr(agg.column.find('.') + 1);
      agg.alias = mvd::to_string(agg.fn) + "_" + base;
    }
  }
  spec.aggregates_ = std::move(aggregates);

  // The attributes that must survive up to the aggregate operator.
  spec.projection_ = spec.group_by_;
  for (const AggSpec& agg : spec.aggregates_) {
    if (agg.column.empty()) continue;
    if (std::find(spec.projection_.begin(), spec.projection_.end(),
                  agg.column) == spec.projection_.end()) {
      spec.projection_.push_back(agg.column);
    }
  }
  if (spec.projection_.empty()) {
    // Global COUNT(*)-style query: keep one arbitrary column so the
    // intermediate plans have a non-empty schema.
    spec.projection_.push_back(joint.at(0).qualified());
  }
  spec.fingerprint_ = compute_fingerprint(spec);
  return spec;
}

PlanPtr apply_query_output(PlanPtr input, const QuerySpec& spec) {
  if (spec.has_aggregation()) {
    return make_aggregate(std::move(input), spec.group_by(),
                          spec.aggregates());
  }
  return make_project(std::move(input), spec.projection());
}

PlanPtr canonical_plan(const Catalog& catalog, const QuerySpec& spec) {
  std::vector<JoinPredicate> remaining = spec.joins();
  std::set<std::string> placed;

  PlanPtr plan = make_scan(catalog, spec.relations().front());
  placed.insert(spec.relations().front());

  for (std::size_t i = 1; i < spec.relations().size(); ++i) {
    const std::string& rel = spec.relations()[i];
    PlanPtr right = make_scan(catalog, rel);
    // Collect every not-yet-applied join conjunct linking `rel` to the
    // relations already in the plan.
    std::vector<ExprPtr> applicable;
    for (auto it = remaining.begin(); it != remaining.end();) {
      const bool connects =
          (placed.contains(it->left_relation()) && it->right_relation() == rel) ||
          (placed.contains(it->right_relation()) && it->left_relation() == rel);
      if (connects) {
        applicable.push_back(it->expr());
        it = remaining.erase(it);
      } else {
        ++it;
      }
    }
    // Cross join (TRUE predicate) when nothing connects yet.
    ExprPtr pred = applicable.empty() ? lit(Value::boolean(true))
                                      : conj(std::move(applicable));
    plan = make_join(std::move(plan), std::move(right), pred);
    placed.insert(rel);
  }
  // Join conjuncts that could not attach while building (both sides placed
  // late) are applied as selections.
  std::vector<ExprPtr> post;
  for (const JoinPredicate& j : remaining) post.push_back(j.expr());
  for (const ExprPtr& s : spec.selections()) post.push_back(s);
  if (!post.empty()) plan = make_select(std::move(plan), conj(std::move(post)));
  return apply_query_output(std::move(plan), spec);
}

}  // namespace mvd
