// Expression evaluation over tuples.
//
// CompiledExpr binds an Expr tree against a Schema once (resolving column
// names to tuple indices, with a BindError on unknown/ambiguous names) so
// that per-tuple evaluation does no string lookups.
#pragma once

#include <memory>

#include "src/algebra/expr.hpp"
#include "src/catalog/schema.hpp"
#include "src/storage/table.hpp"

namespace mvd {

class CompiledExpr {
 public:
  /// Bind `expr` against `schema`. Throws BindError on resolution failure.
  CompiledExpr(const ExprPtr& expr, const Schema& schema);

  /// Evaluate over one tuple of the bound schema.
  Value evaluate(const Tuple& tuple) const;

  /// evaluate() coerced to a predicate result; throws ExecError when the
  /// expression does not produce a bool.
  bool matches(const Tuple& tuple) const { return evaluate(tuple).as_bool(); }

 private:
  struct Node;
  std::shared_ptr<const Node> root_;

  static std::shared_ptr<const Node> compile(const ExprPtr& expr,
                                             const Schema& schema);
  static Value eval_node(const Node& node, const Tuple& tuple);
};

}  // namespace mvd
