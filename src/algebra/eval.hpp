// Expression evaluation over tuples.
//
// CompiledExpr binds an Expr tree against a Schema once (resolving column
// names to tuple indices, with a BindError on unknown/ambiguous names) so
// that per-tuple evaluation does no string lookups.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/algebra/expr.hpp"
#include "src/catalog/schema.hpp"
#include "src/storage/table.hpp"

namespace mvd {

class ColumnTable;

class CompiledExpr {
 public:
  /// Bind `expr` against `schema`. Throws BindError on resolution failure.
  CompiledExpr(const ExprPtr& expr, const Schema& schema);

  /// Evaluate over one tuple of the bound schema.
  Value evaluate(const Tuple& tuple) const;

  /// evaluate() coerced to a predicate result; throws ExecError when the
  /// expression does not produce a bool.
  bool matches(const Tuple& tuple) const { return evaluate(tuple).as_bool(); }

  /// Column-batch entry point: filter `sel` (physical row ids into `data`)
  /// in place, keeping the rows that satisfy the predicate and preserving
  /// their order. `col_map` translates bound-schema column indices to
  /// physical columns of `data`. Top-level conjunctions run conjunct by
  /// conjunct over the shrinking selection; column-vs-literal and
  /// column-vs-column comparisons run as typed loops, everything else
  /// falls back to per-row evaluation.
  void filter_batch(const ColumnTable& data,
                    const std::vector<std::size_t>& col_map,
                    std::vector<std::uint32_t>& sel) const;

  /// Evaluate over one physical row of a ColumnTable (the generic
  /// fallback used by batch operators without a typed kernel).
  Value evaluate_at(const ColumnTable& data,
                    const std::vector<std::size_t>& col_map,
                    std::size_t row) const;

 private:
  struct Node;
  std::shared_ptr<const Node> root_;

  static std::shared_ptr<const Node> compile(const ExprPtr& expr,
                                             const Schema& schema);
  static Value eval_node(const Node& node, const Tuple& tuple);
  static Value eval_node_at(const Node& node, const ColumnTable& data,
                            const std::vector<std::size_t>& col_map,
                            std::size_t row);
  static void filter_node(const Node& node, const ColumnTable& data,
                          const std::vector<std::size_t>& col_map,
                          std::vector<std::uint32_t>& sel);
};

}  // namespace mvd
