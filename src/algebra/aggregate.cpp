#include "src/algebra/aggregate.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mvd {

std::string to_string(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
    case AggFn::kSumInt: return "sum_int";
  }
  MVD_ASSERT(false);
  return {};
}

ValueType AggSpec::output_type(const Schema& input) const {
  switch (fn) {
    case AggFn::kCount:
    case AggFn::kSumInt:
      return ValueType::kInt64;
    case AggFn::kSum:
    case AggFn::kAvg:
      return ValueType::kDouble;
    case AggFn::kMin:
    case AggFn::kMax:
      return input.at(input.index_of(column)).type;
  }
  MVD_ASSERT(false);
  return ValueType::kInt64;
}

std::string AggSpec::to_string() const {
  std::string out = mvd::to_string(fn) + "(" + (column.empty() ? "*" : column) +
                    ")";
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string AggregateOp::label() const {
  std::vector<std::string> parts;
  for (const AggSpec& a : aggregates_) parts.push_back(a.to_string());
  return "aggregate[" + join(group_by_, ", ") +
         (group_by_.empty() ? "" : " | ") + join(parts, ", ") + "]";
}

PlanPtr make_aggregate(PlanPtr child, const std::vector<std::string>& group_by,
                       std::vector<AggSpec> aggregates) {
  MVD_ASSERT(child != nullptr);
  if (aggregates.empty()) {
    throw PlanError("aggregation needs at least one aggregate function");
  }
  const Schema& in = child->output_schema();

  std::vector<Attribute> attrs;
  std::vector<std::string> qualified_groups;
  for (const std::string& g : group_by) {
    const Attribute& a = in.at(in.index_of(g));
    if (std::find(qualified_groups.begin(), qualified_groups.end(),
                  a.qualified()) != qualified_groups.end()) {
      throw PlanError("duplicate group-by column '" + a.qualified() + "'");
    }
    qualified_groups.push_back(a.qualified());
    attrs.push_back(a);
  }

  for (AggSpec& agg : aggregates) {
    if (agg.fn != AggFn::kCount || !agg.column.empty()) {
      // Resolve and qualify the input column.
      const Attribute& a = in.at(in.index_of(agg.column));
      agg.column = a.qualified();
      if (agg.fn != AggFn::kCount && !is_numeric(a.type) &&
          (agg.fn == AggFn::kSum || agg.fn == AggFn::kAvg ||
           agg.fn == AggFn::kSumInt)) {
        throw PlanError("cannot " + to_string(agg.fn) + " non-numeric column '" +
                        a.qualified() + "'");
      }
      if (agg.fn == AggFn::kSumInt && a.type != ValueType::kInt64) {
        // The whole point of kSumInt is an exact integer total; summing a
        // double column into an int64 would silently round.
        throw PlanError("sum_int requires an int64 column, got " +
                        to_string(a.type) + " '" + a.qualified() + "'");
      }
    }
    if (agg.alias.empty()) {
      std::string base = agg.column.empty()
                             ? "all"
                             : agg.column.substr(agg.column.find('.') + 1);
      agg.alias = to_string(agg.fn) + "_" + base;
    }
  }

  for (const AggSpec& agg : aggregates) {
    const bool dup_alias =
        std::count_if(aggregates.begin(), aggregates.end(),
                      [&](const AggSpec& other) {
                        return other.alias == agg.alias;
                      }) > 1 ||
        std::any_of(attrs.begin(), attrs.end(), [&](const Attribute& a) {
          return a.qualified() == agg.alias;
        });
    if (dup_alias) {
      throw PlanError("duplicate aggregate output name '" + agg.alias + "'");
    }
    attrs.push_back(Attribute{agg.alias, agg.output_type(in), ""});
  }

  return std::make_shared<AggregateOp>(std::move(child), Schema(std::move(attrs)),
                                       std::move(qualified_groups),
                                       std::move(aggregates));
}

}  // namespace mvd
