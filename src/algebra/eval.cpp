#include "src/algebra/eval.hpp"

#include <vector>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"

namespace mvd {

struct CompiledExpr::Node {
  ExprKind kind = ExprKind::kLiteral;
  // kColumn
  std::size_t column_index = 0;
  // kLiteral
  Value literal;
  // kComparison
  CompareOp op = CompareOp::kEq;
  // children: lhs/rhs for comparison, operand(s) for bool/not
  std::vector<std::shared_ptr<const Node>> children;
};

CompiledExpr::CompiledExpr(const ExprPtr& expr, const Schema& schema) {
  MVD_ASSERT_MSG(expr != nullptr, "cannot compile null expression");
  root_ = compile(expr, schema);
}

std::shared_ptr<const CompiledExpr::Node> CompiledExpr::compile(
    const ExprPtr& expr, const Schema& schema) {
  auto node = std::make_shared<Node>();
  node->kind = expr->kind();
  switch (expr->kind()) {
    case ExprKind::kColumn:
      node->column_index =
          schema.index_of(static_cast<const ColumnExpr&>(*expr).name());
      break;
    case ExprKind::kLiteral:
      node->literal = static_cast<const LiteralExpr&>(*expr).value();
      break;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*expr);
      node->op = c.op();
      node->children.push_back(compile(c.lhs(), schema));
      node->children.push_back(compile(c.rhs(), schema));
      break;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const auto& op : static_cast<const BoolExpr&>(*expr).operands()) {
        node->children.push_back(compile(op, schema));
      }
      break;
    case ExprKind::kNot:
      node->children.push_back(
          compile(static_cast<const NotExpr&>(*expr).operand(), schema));
      break;
  }
  return node;
}

Value CompiledExpr::eval_node(const Node& node, const Tuple& tuple) {
  switch (node.kind) {
    case ExprKind::kColumn:
      MVD_ASSERT(node.column_index < tuple.size());
      return tuple[node.column_index];
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kComparison: {
      const Value l = eval_node(*node.children[0], tuple);
      const Value r = eval_node(*node.children[1], tuple);
      const std::strong_ordering ord = l.compare(r);
      switch (node.op) {
        case CompareOp::kEq: return Value::boolean(ord == 0);
        case CompareOp::kNe: return Value::boolean(ord != 0);
        case CompareOp::kLt: return Value::boolean(ord < 0);
        case CompareOp::kLe: return Value::boolean(ord <= 0);
        case CompareOp::kGt: return Value::boolean(ord > 0);
        case CompareOp::kGe: return Value::boolean(ord >= 0);
      }
      MVD_ASSERT(false);
      return Value::boolean(false);
    }
    case ExprKind::kAnd: {
      for (const auto& c : node.children) {
        if (!eval_node(*c, tuple).as_bool()) return Value::boolean(false);
      }
      return Value::boolean(true);
    }
    case ExprKind::kOr: {
      for (const auto& c : node.children) {
        if (eval_node(*c, tuple).as_bool()) return Value::boolean(true);
      }
      return Value::boolean(false);
    }
    case ExprKind::kNot:
      return Value::boolean(!eval_node(*node.children[0], tuple).as_bool());
  }
  MVD_ASSERT(false);
  return Value::boolean(false);
}

Value CompiledExpr::evaluate(const Tuple& tuple) const {
  return eval_node(*root_, tuple);
}

}  // namespace mvd
