#include "src/algebra/eval.hpp"

#include <vector>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/storage/column_table.hpp"

namespace mvd {

struct CompiledExpr::Node {
  ExprKind kind = ExprKind::kLiteral;
  // kColumn
  std::size_t column_index = 0;
  // kLiteral
  Value literal;
  // kComparison
  CompareOp op = CompareOp::kEq;
  // children: lhs/rhs for comparison, operand(s) for bool/not
  std::vector<std::shared_ptr<const Node>> children;
};

CompiledExpr::CompiledExpr(const ExprPtr& expr, const Schema& schema) {
  MVD_ASSERT_MSG(expr != nullptr, "cannot compile null expression");
  root_ = compile(expr, schema);
}

std::shared_ptr<const CompiledExpr::Node> CompiledExpr::compile(
    const ExprPtr& expr, const Schema& schema) {
  auto node = std::make_shared<Node>();
  node->kind = expr->kind();
  switch (expr->kind()) {
    case ExprKind::kColumn:
      node->column_index =
          schema.index_of(static_cast<const ColumnExpr&>(*expr).name());
      break;
    case ExprKind::kLiteral:
      node->literal = static_cast<const LiteralExpr&>(*expr).value();
      break;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*expr);
      node->op = c.op();
      node->children.push_back(compile(c.lhs(), schema));
      node->children.push_back(compile(c.rhs(), schema));
      break;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const auto& op : static_cast<const BoolExpr&>(*expr).operands()) {
        node->children.push_back(compile(op, schema));
      }
      break;
    case ExprKind::kNot:
      node->children.push_back(
          compile(static_cast<const NotExpr&>(*expr).operand(), schema));
      break;
  }
  return node;
}

Value CompiledExpr::eval_node(const Node& node, const Tuple& tuple) {
  switch (node.kind) {
    case ExprKind::kColumn:
      MVD_ASSERT(node.column_index < tuple.size());
      return tuple[node.column_index];
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kComparison: {
      const Value l = eval_node(*node.children[0], tuple);
      const Value r = eval_node(*node.children[1], tuple);
      const std::strong_ordering ord = l.compare(r);
      switch (node.op) {
        case CompareOp::kEq: return Value::boolean(ord == 0);
        case CompareOp::kNe: return Value::boolean(ord != 0);
        case CompareOp::kLt: return Value::boolean(ord < 0);
        case CompareOp::kLe: return Value::boolean(ord <= 0);
        case CompareOp::kGt: return Value::boolean(ord > 0);
        case CompareOp::kGe: return Value::boolean(ord >= 0);
      }
      MVD_ASSERT(false);
      return Value::boolean(false);
    }
    case ExprKind::kAnd: {
      for (const auto& c : node.children) {
        if (!eval_node(*c, tuple).as_bool()) return Value::boolean(false);
      }
      return Value::boolean(true);
    }
    case ExprKind::kOr: {
      for (const auto& c : node.children) {
        if (eval_node(*c, tuple).as_bool()) return Value::boolean(true);
      }
      return Value::boolean(false);
    }
    case ExprKind::kNot:
      return Value::boolean(!eval_node(*node.children[0], tuple).as_bool());
  }
  MVD_ASSERT(false);
  return Value::boolean(false);
}

Value CompiledExpr::evaluate(const Tuple& tuple) const {
  return eval_node(*root_, tuple);
}

Value CompiledExpr::eval_node_at(const Node& node, const ColumnTable& data,
                                 const std::vector<std::size_t>& col_map,
                                 std::size_t row) {
  switch (node.kind) {
    case ExprKind::kColumn:
      MVD_ASSERT(node.column_index < col_map.size());
      return data.value_at(row, col_map[node.column_index]);
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kComparison: {
      const Value l = eval_node_at(*node.children[0], data, col_map, row);
      const Value r = eval_node_at(*node.children[1], data, col_map, row);
      const std::strong_ordering ord = l.compare(r);
      switch (node.op) {
        case CompareOp::kEq: return Value::boolean(ord == 0);
        case CompareOp::kNe: return Value::boolean(ord != 0);
        case CompareOp::kLt: return Value::boolean(ord < 0);
        case CompareOp::kLe: return Value::boolean(ord <= 0);
        case CompareOp::kGt: return Value::boolean(ord > 0);
        case CompareOp::kGe: return Value::boolean(ord >= 0);
      }
      MVD_ASSERT(false);
      return Value::boolean(false);
    }
    case ExprKind::kAnd: {
      for (const auto& c : node.children) {
        if (!eval_node_at(*c, data, col_map, row).as_bool()) {
          return Value::boolean(false);
        }
      }
      return Value::boolean(true);
    }
    case ExprKind::kOr: {
      for (const auto& c : node.children) {
        if (eval_node_at(*c, data, col_map, row).as_bool()) {
          return Value::boolean(true);
        }
      }
      return Value::boolean(false);
    }
    case ExprKind::kNot:
      return Value::boolean(
          !eval_node_at(*node.children[0], data, col_map, row).as_bool());
  }
  MVD_ASSERT(false);
  return Value::boolean(false);
}

Value CompiledExpr::evaluate_at(const ColumnTable& data,
                                const std::vector<std::size_t>& col_map,
                                std::size_t row) const {
  return eval_node_at(*root_, data, col_map, row);
}

namespace {

/// Run the comparison loop with both sides inlined; the selection shrinks
/// in place, order preserved. The unconditional-store form (write the
/// row, bump the cursor by the predicate result) keeps the loop free of
/// data-dependent branches, so it autovectorizes.
template <typename GetL, typename GetR>
void filter_compare(CompareOp op, const GetL& lhs, const GetR& rhs,
                    std::vector<std::uint32_t>& sel) {
  auto keep = [&](auto pred) {
    std::size_t out = 0;
    for (const std::uint32_t r : sel) {
      sel[out] = r;
      out += pred(lhs(r), rhs(r)) ? 1 : 0;
    }
    sel.resize(out);
  };
  switch (op) {
    case CompareOp::kEq:
      keep([](const auto& a, const auto& b) { return a == b; });
      return;
    case CompareOp::kNe:
      keep([](const auto& a, const auto& b) { return a != b; });
      return;
    case CompareOp::kLt:
      keep([](const auto& a, const auto& b) { return a < b; });
      return;
    case CompareOp::kLe:
      keep([](const auto& a, const auto& b) { return a <= b; });
      return;
    case CompareOp::kGt:
      keep([](const auto& a, const auto& b) { return a > b; });
      return;
    case CompareOp::kGe:
      keep([](const auto& a, const auto& b) { return a >= b; });
      return;
  }
  MVD_ASSERT(false);
}

}  // namespace

void CompiledExpr::filter_node(const Node& node, const ColumnTable& data,
                               const std::vector<std::size_t>& col_map,
                               std::vector<std::uint32_t>& sel) {
  // Hand `fn` a row -> double accessor when `side` is a numeric column or
  // literal. Numerics evaluate through double, matching Value::compare.
  auto with_numeric = [&](const Node& side, auto&& fn) -> bool {
    if (side.kind == ExprKind::kLiteral) {
      if (!is_numeric(side.literal.type())) return false;
      const double v = side.literal.as_double();
      fn([v](std::uint32_t) { return v; });
      return true;
    }
    if (side.kind == ExprKind::kColumn) {
      const std::size_t c = col_map[side.column_index];
      switch (data.kind(c)) {
        case ColumnKind::kInt64Col: {
          const std::int64_t* p = data.i64(c).data();
          fn([p](std::uint32_t r) { return static_cast<double>(p[r]); });
          return true;
        }
        case ColumnKind::kDoubleCol: {
          const double* p = data.f64(c).data();
          fn([p](std::uint32_t r) { return p[r]; });
          return true;
        }
        default:
          return false;
      }
    }
    return false;
  };
  // Same, for string columns/literals (accessor returns const string&).
  auto with_string = [&](const Node& side, auto&& fn) -> bool {
    if (side.kind == ExprKind::kLiteral) {
      if (side.literal.type() != ValueType::kString) return false;
      const std::string* v = &side.literal.as_string();
      fn([v](std::uint32_t) -> const std::string& { return *v; });
      return true;
    }
    if (side.kind == ExprKind::kColumn) {
      const std::size_t c = col_map[side.column_index];
      if (data.kind(c) != ColumnKind::kStringCol) return false;
      const std::string* p = data.str(c).data();
      fn([p](std::uint32_t r) -> const std::string& { return p[r]; });
      return true;
    }
    return false;
  };

  switch (node.kind) {
    case ExprKind::kAnd:
      // Conjunct by conjunct over the shrinking selection — the batch
      // analogue of the row engine's short-circuit evaluation.
      for (const auto& c : node.children) {
        if (sel.empty()) return;
        filter_node(*c, data, col_map, sel);
      }
      return;
    case ExprKind::kComparison: {
      const Node& l = *node.children[0];
      const Node& r = *node.children[1];
      bool handled = false;
      with_numeric(l, [&](auto la) {
        with_numeric(r, [&](auto ra) {
          filter_compare(node.op, la, ra, sel);
          handled = true;
        });
      });
      if (handled) return;
      with_string(l, [&](auto la) {
        with_string(r, [&](auto ra) {
          filter_compare(node.op, la, ra, sel);
          handled = true;
        });
      });
      if (handled) return;
      break;  // mixed/bool comparison: generic fallback below
    }
    default:
      break;
  }
  // Generic fallback: per-row evaluation of the whole node.
  std::size_t out = 0;
  for (const std::uint32_t r : sel) {
    if (eval_node_at(node, data, col_map, r).as_bool()) sel[out++] = r;
  }
  sel.resize(out);
}

void CompiledExpr::filter_batch(const ColumnTable& data,
                                const std::vector<std::size_t>& col_map,
                                std::vector<std::uint32_t>& sel) const {
  filter_node(*root_, data, col_map, sel);
}

}  // namespace mvd
