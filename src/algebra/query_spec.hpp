// QuerySpec: the bound select-project-join normal form of a warehouse query.
//
// The paper's framework (and its Figure 4 algorithm) reasons about queries
// as join patterns over base relations with selections and projections that
// can be pushed up or down freely. QuerySpec is exactly that
// representation: FROM relations, equi-join conjuncts, non-join selection
// conjuncts, and an output projection — all with fully-qualified column
// names. Plan trees are *generated from* a QuerySpec (by the optimizer, or
// canonically for ground-truth execution), never the other way round.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/algebra/aggregate.hpp"
#include "src/algebra/expr.hpp"
#include "src/algebra/logical_plan.hpp"
#include "src/catalog/catalog.hpp"

namespace mvd {

/// One equi-join conjunct between two base relations, e.g.
/// Product.Did = Division.Did.
struct JoinPredicate {
  std::string left_column;   // qualified
  std::string right_column;  // qualified

  std::string left_relation() const;
  std::string right_relation() const;

  /// Rebuild the expression form.
  ExprPtr expr() const { return eq(col(left_column), col(right_column)); }

  /// Canonical text with the two sides ordered, for set comparisons.
  std::string canonical() const;

  friend bool operator==(const JoinPredicate&, const JoinPredicate&) = default;
};

class QuerySpec {
 public:
  QuerySpec() = default;

  const std::string& name() const { return name_; }
  double frequency() const { return frequency_; }
  void set_frequency(double fq) { frequency_ = fq; }

  /// Base relations in FROM order (no duplicates; self-joins unsupported).
  const std::vector<std::string>& relations() const { return relations_; }

  /// Non-join selection conjuncts (each references >= 1 relation).
  const std::vector<ExprPtr>& selections() const { return selections_; }

  /// Equi-join conjuncts.
  const std::vector<JoinPredicate>& joins() const { return joins_; }

  /// Qualified output columns in SELECT order. For aggregation queries
  /// this holds the grouping columns plus every aggregate input column —
  /// the attributes that must survive up to the aggregation operator.
  const std::vector<std::string>& projection() const { return projection_; }

  /// Aggregation (empty for plain SPJ queries). When present, the query's
  /// result is aggregate(group_by | aggregates) applied above joins and
  /// selections; its output lists group columns first, then aggregates.
  bool has_aggregation() const { return !aggregates_.empty(); }
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }

  /// Selection conjuncts that reference only `relation`.
  std::vector<ExprPtr> selections_on(const std::string& relation) const;

  /// Selection conjuncts that reference more than one relation (must be
  /// applied above the joins).
  std::vector<ExprPtr> multi_relation_selections() const;

  /// Base relations referenced by a bound expression.
  static std::set<std::string> relations_of_expr(const ExprPtr& expr);

  /// Columns of `relation` this query needs anywhere (projection,
  /// selections, joins) — the projection-pushdown set of the paper's
  /// step 6, join attributes included.
  std::set<std::string> used_columns(const std::string& relation) const;

  /// Join predicates linking `a` and `b` (either orientation).
  std::vector<JoinPredicate> joins_between(const std::string& a,
                                           const std::string& b) const;

  /// True when the join graph over relations() is connected (no cross
  /// products needed).
  bool join_graph_connected() const;

  /// Canonical identity for frequency accounting: relations, join edges
  /// and selection conjuncts in sorted order plus the output shape —
  /// stable under FROM/WHERE reordering, insensitive to name() and
  /// frequency(). Computed once at bind time (empty only on a
  /// default-constructed spec) so per-serve telemetry does not pay for
  /// re-canonicalization.
  const std::string& fingerprint() const { return fingerprint_; }

  std::string to_string() const;

  /// Emit the query back as parseable SQL text (the parser's own
  /// subset; dates rendered as DATE 'YYYY-MM-DD'). parse_and_bind() of
  /// the result reproduces this spec — round-trip fidelity is tested.
  std::string to_sql() const;

  /// Bind a query. `where` may be null (no predicate). Splits WHERE
  /// conjuncts into equi-joins and selections, qualifies every column
  /// name, and validates the projection. When `aggregates` is non-empty,
  /// `select_list` must equal the grouping columns (modulo
  /// qualification); aggregate columns/aliases are resolved and
  /// defaulted. Throws BindError/CatalogError.
  static QuerySpec bind(const Catalog& catalog, std::string name,
                        double frequency,
                        std::vector<std::string> relations,
                        const ExprPtr& where,
                        std::vector<std::string> select_list,
                        std::vector<std::string> group_by = {},
                        std::vector<AggSpec> aggregates = {});

 private:
  std::string name_;
  double frequency_ = 1.0;
  std::vector<std::string> relations_;
  std::vector<ExprPtr> selections_;
  std::vector<JoinPredicate> joins_;
  std::vector<std::string> projection_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggregates_;
  std::string fingerprint_;
};

/// The final operator of a query: the aggregate for aggregation queries,
/// the output projection otherwise. Shared by every plan-construction
/// site (canonical plans, the optimizer, the MVPP builder).
PlanPtr apply_query_output(PlanPtr input, const QuerySpec& spec);

/// The canonical (unoptimized) plan: scans in FROM order joined
/// left-deep with their join conjuncts (cross join when none applies),
/// multi/single-relation selections on top, projection last. Used as the
/// semantics reference for executor tests; the optimizer produces better
/// trees with the same meaning.
PlanPtr canonical_plan(const Catalog& catalog, const QuerySpec& spec);

}  // namespace mvd
