// Scalar expression trees for predicates and (future) computed columns.
//
// Expressions are immutable and shared (ExprPtr = shared_ptr<const Expr>).
// Structural identity — the backbone of common-subexpression detection in
// the MVPP — is defined on *normalized* expressions: conjunctions and
// disjunctions are flattened, deduplicated and sorted; comparisons are
// oriented column-first; column references are fully qualified by the
// binder before normalization.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/storage/value.hpp"

namespace mvd {

enum class ExprKind { kColumn, kLiteral, kComparison, kAnd, kOr, kNot };

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// "=", "<>", "<", "<=", ">", ">=".
std::string to_string(CompareOp op);
/// Mirror of a comparison: a < b  <=>  b > a.
CompareOp flip(CompareOp op);
/// Logical negation: NOT (a < b) == a >= b.
CompareOp negate(CompareOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  virtual ~Expr() = default;
  ExprKind kind() const { return kind_; }

  /// Canonical text form, e.g. (Division.city = 'LA'). Two normalized
  /// expressions are structurally equal iff their to_string()s match.
  virtual std::string to_string() const = 0;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

class ColumnExpr final : public Expr {
 public:
  explicit ColumnExpr(std::string name)
      : Expr(ExprKind::kColumn), name_(std::move(name)) {}
  /// Possibly-qualified column name; the binder rewrites to qualified.
  const std::string& name() const { return name_; }
  std::string to_string() const override { return name_; }

 private:
  std::string name_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}
  const Value& value() const { return value_; }
  std::string to_string() const override { return value_.to_string(); }

 private:
  Value value_;
};

class ComparisonExpr final : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  CompareOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  std::string to_string() const override;

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// N-ary AND / OR. Normalization flattens nesting and sorts operands.
class BoolExpr final : public Expr {
 public:
  BoolExpr(ExprKind kind, std::vector<ExprPtr> operands);
  const std::vector<ExprPtr>& operands() const { return operands_; }
  std::string to_string() const override;

 private:
  std::vector<ExprPtr> operands_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr operand);
  const ExprPtr& operand() const { return operand_; }
  std::string to_string() const override;

 private:
  ExprPtr operand_;
};

// ---- Factories -----------------------------------------------------------

ExprPtr col(std::string name);
ExprPtr lit(Value value);
ExprPtr lit_i64(std::int64_t v);
ExprPtr lit_str(std::string v);
ExprPtr lit_real(double v);
ExprPtr cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr gt(ExprPtr lhs, ExprPtr rhs);
/// AND of `operands`; returns nullptr for empty input, the sole operand for
/// a single-element input.
ExprPtr conj(std::vector<ExprPtr> operands);
/// OR of `operands`, same edge-case handling as conj().
ExprPtr disj(std::vector<ExprPtr> operands);
ExprPtr neg(ExprPtr operand);

// ---- Analysis ------------------------------------------------------------

/// All column names referenced by `expr` (as written; qualify first if you
/// need canonical names).
std::set<std::string> columns_of(const ExprPtr& expr);

/// The top-level conjuncts of `expr`: AND is unfolded, anything else is a
/// single conjunct. conj(conjuncts_of(e)) is equivalent to e.
std::vector<ExprPtr> conjuncts_of(const ExprPtr& expr);

/// Flatten nested AND/OR, dedupe + sort operands, orient comparisons
/// column-first, and push NOT into comparisons. Idempotent.
ExprPtr normalize(const ExprPtr& expr);

/// Structural equality of normalized forms.
bool expr_equal(const ExprPtr& a, const ExprPtr& b);

/// If `expr` is `column op column`, returns {left name, right name}.
struct ColumnPair {
  std::string left;
  std::string right;
};
std::optional<ColumnPair> as_column_equality(const ExprPtr& expr);

/// Rewrite every column reference through `rename`; used by the binder to
/// qualify names and by plan surgery to retarget columns.
ExprPtr rewrite_columns(
    const ExprPtr& expr,
    const std::function<std::string(const std::string&)>& rename);

}  // namespace mvd
