// Bound logical operator trees (select / project / join / scan).
//
// Plans are immutable shared DAG fragments. Every node carries its output
// schema, computed at construction; predicates and projection lists are
// stored with fully-qualified column names. Structural signatures (see
// signature()) define common-subexpression identity for MVPP merging:
// two nodes compute the same relation iff they have the same signature
// (joins compare children unordered, predicates compare normalized).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/expr.hpp"
#include "src/catalog/catalog.hpp"
#include "src/catalog/schema.hpp"

namespace mvd {

enum class OpKind { kScan, kSelect, kProject, kJoin, kAggregate };

std::string to_string(OpKind kind);

class LogicalOp;
using PlanPtr = std::shared_ptr<const LogicalOp>;

class LogicalOp {
 public:
  virtual ~LogicalOp() = default;

  OpKind kind() const { return kind_; }
  const Schema& output_schema() const { return schema_; }
  const std::vector<PlanPtr>& children() const { return children_; }

  /// One-line description of this node alone ("select[(x = 1)]").
  virtual std::string label() const = 0;

 protected:
  LogicalOp(OpKind kind, Schema schema, std::vector<PlanPtr> children)
      : kind_(kind), schema_(std::move(schema)),
        children_(std::move(children)) {}

 private:
  OpKind kind_;
  Schema schema_;
  std::vector<PlanPtr> children_;
};

class ScanOp final : public LogicalOp {
 public:
  ScanOp(std::string relation, Schema schema)
      : LogicalOp(OpKind::kScan, std::move(schema), {}),
        relation_(std::move(relation)) {}
  const std::string& relation() const { return relation_; }
  std::string label() const override { return "scan(" + relation_ + ")"; }

 private:
  std::string relation_;
};

class SelectOp final : public LogicalOp {
 public:
  SelectOp(PlanPtr child, ExprPtr predicate);
  const ExprPtr& predicate() const { return predicate_; }
  std::string label() const override {
    return "select[" + predicate_->to_string() + "]";
  }

 private:
  ExprPtr predicate_;
};

class ProjectOp final : public LogicalOp {
 public:
  ProjectOp(PlanPtr child, Schema schema, std::vector<std::string> columns)
      : LogicalOp(OpKind::kProject, std::move(schema), {std::move(child)}),
        columns_(std::move(columns)) {}
  /// Qualified column names, in output order.
  const std::vector<std::string>& columns() const { return columns_; }
  std::string label() const override;

 private:
  std::vector<std::string> columns_;
};

class JoinOp final : public LogicalOp {
 public:
  JoinOp(PlanPtr left, PlanPtr right, ExprPtr predicate);
  const ExprPtr& predicate() const { return predicate_; }
  const PlanPtr& left() const { return children()[0]; }
  const PlanPtr& right() const { return children()[1]; }
  std::string label() const override {
    return "join[" + predicate_->to_string() + "]";
  }

 private:
  ExprPtr predicate_;
};

// ---- Constructors (bind + schema inference) --------------------------------

/// Scan of a catalog base relation; attributes are qualified with the
/// relation name. Throws CatalogError when the relation is unknown.
PlanPtr make_scan(const Catalog& catalog, const std::string& relation);

/// Scan of an arbitrary relation with a known schema (used for reading
/// materialized views, whose schemas are MVPP node schemas).
PlanPtr make_named_scan(const std::string& relation, Schema schema);

/// Selection; `predicate` is bound against the child schema and rewritten
/// to qualified column names. Throws BindError on unknown columns.
PlanPtr make_select(PlanPtr child, const ExprPtr& predicate);

/// Projection onto `columns` (bare or qualified); output order follows
/// `columns`. Throws BindError on unknown columns.
PlanPtr make_project(PlanPtr child, const std::vector<std::string>& columns);

/// Inner join. `predicate` is bound against the concatenated schema.
PlanPtr make_join(PlanPtr left, PlanPtr right, const ExprPtr& predicate);

// ---- Analysis --------------------------------------------------------------

/// Names of all base relations scanned beneath `plan`.
std::set<std::string> base_relations(const PlanPtr& plan);

/// Multi-line indented tree rendering.
std::string plan_tree_string(const PlanPtr& plan);

/// Canonical structural signature. Equal signatures <=> same computed
/// relation (up to join commutativity and predicate normalization).
std::string signature(const PlanPtr& plan);

/// Qualify `expr`'s column references against `schema` (resolving bare
/// names); throws BindError on unknown/ambiguous columns.
ExprPtr bind_expr(const ExprPtr& expr, const Schema& schema);

}  // namespace mvd
