// Span tracer — Chrome trace-event output for chrome://tracing and
// Perfetto.
//
// Spans are recorded into per-thread buffers (one relaxed-atomic guard,
// no cross-thread contention on the hot path) against a process-wide
// monotonic clock, so timestamps ascend per thread and RAII scoping
// guarantees strict nesting. to_chrome_json() gathers every thread's
// buffer into one trace-event document ("X" complete events with
// process/thread metadata, "C" counter-track events) that loads directly
// in chrome://tracing or ui.perfetto.dev.
//
// Usage — RAII for scopes, explicit begin/end where scopes don't align:
//
//   void deploy(...) {
//     MVD_TRACE_SPAN("warehouse", "deploy");          // whole function
//     ...
//     TraceSpan span("exec", "scan");                 // args wanted
//     span.arg("rows", rows);
//   }                                                 // ends at scope exit
//
//   Tracer::global().begin("maintenance", view_name);
//   ...
//   Tracer::global().end();
//
//   Tracer::global().counter("exec/vec/morsels", count);  // counter track
//
// Everything is a no-op unless spans_enabled() (MVD_TRACE=spans); the
// RAII constructor costs one relaxed load + branch when off. Compiling
// with -DMVD_OBS_DISABLED removes the MVD_TRACE_SPAN macro bodies
// entirely for zero-instruction builds.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/json.hpp"
#include "src/obs/metrics.hpp"

namespace mvd {

/// One recorded event (complete span or counter sample).
struct TraceEvent {
  char phase = 'X';         // 'X' complete span, 'C' counter
  std::string name;
  std::string category;
  double ts_us = 0;         // monotonic, process-start relative
  double dur_us = 0;        // 'X' only
  // Span arguments, kept split by type so no Json is built on record.
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

class Tracer {
 public:
  static Tracer& global();

  /// Microseconds on the process-wide monotonic clock.
  static double now_us();

  /// Open a span on this thread (strictly nested: end() closes the most
  /// recent open one). No-op when spans are off.
  void begin(std::string category, std::string name);
  /// Close the innermost open span, attaching `num_args` to it.
  void end(std::vector<std::pair<std::string, double>> num_args = {},
           std::vector<std::pair<std::string, std::string>> str_args = {});

  /// Record one fully-formed complete event (the RAII span's path).
  void complete(TraceEvent event);

  /// Sample a counter track ("C" event on this thread's lane).
  void counter(std::string name, double value);

  /// Events recorded so far across all threads (cheap; used by the
  /// overhead bench to count instrumentation sites exercised).
  std::size_t event_count() const;

  /// Gather every thread's buffer into one Chrome trace-event document:
  /// {"traceEvents": [...], "displayTimeUnit": "ms"} with process_name /
  /// thread_name metadata. Does not clear.
  Json to_chrome_json() const;

  /// Drop all recorded events (thread registrations persist).
  void clear();

 private:
  struct ThreadBuffer;
  ThreadBuffer& local();

  mutable std::mutex mutex_;  // guards buffers_ registration + gather
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint32_t> next_tid_{0};
};

/// RAII span: records a complete event covering its lifetime when spans
/// are enabled at construction. arg() attaches numbers/strings shown in
/// the trace viewer's detail pane.
class TraceSpan {
 public:
  TraceSpan(std::string category, std::string name)
      : active_(spans_enabled()) {
    if (!active_) return;
    event_.category = std::move(category);
    event_.name = std::move(name);
    event_.ts_us = Tracer::now_us();
  }
  /// Literal overload: no string is built unless spans are on — this is
  /// the form hot paths (and MVD_TRACE_SPAN) should use.
  TraceSpan(const char* category, const char* name)
      : active_(spans_enabled()) {
    if (!active_) return;
    event_.category = category;
    event_.name = name;
    event_.ts_us = Tracer::now_us();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (!active_) return;
    event_.dur_us = Tracer::now_us() - event_.ts_us;
    Tracer::global().complete(std::move(event_));
  }

  bool active() const { return active_; }
  void arg(std::string key, double value) {
    if (active_) event_.num_args.emplace_back(std::move(key), value);
  }
  void arg(std::string key, std::string value) {
    if (active_) event_.str_args.emplace_back(std::move(key), std::move(value));
  }

 private:
  bool active_;
  TraceEvent event_;
};

#define MVD_OBS_CONCAT_INNER(a, b) a##b
#define MVD_OBS_CONCAT(a, b) MVD_OBS_CONCAT_INNER(a, b)

#ifdef MVD_OBS_DISABLED
#define MVD_TRACE_SPAN(category, name) ((void)0)
#else
/// Anonymous RAII span covering the rest of the enclosing scope.
#define MVD_TRACE_SPAN(category, name) \
  ::mvd::TraceSpan MVD_OBS_CONCAT(mvd_trace_span_, __COUNTER__)(category, name)
#endif

}  // namespace mvd
