// MetricsRegistry — named counters, gauges and fixed-bucket histograms
// shared by every layer (naming scheme "layer/subsystem/metric", e.g.
// "exec/row/blocks_read", "selection/fast_eval/probes").
//
// Activation is process-wide and three-valued:
//
//   MVD_TRACE=off        nothing is recorded (the default)
//   MVD_TRACE=counters   registry counters/gauges/histograms record
//   MVD_TRACE=spans      counters plus the span tracer (src/obs/trace.hpp)
//
// plus set_trace_level() as the programmatic override (tests, mvprof).
// The level is resolved once from the environment and cached in an
// atomic, so the hot-path guards counters_enabled()/spans_enabled() cost
// one relaxed load and a compare — instrumented code left in release
// builds is effectively free when tracing is off (bench Ext-K pins the
// overhead under 1%). Defining MVD_OBS_DISABLED at compile time removes
// the span macros entirely (src/obs/trace.hpp).
//
// Metric handles returned by counter()/gauge()/histogram() are stable for
// the registry's lifetime and individually thread-safe (atomics), so hot
// loops should look a handle up once and hammer it, or tally locally and
// add() once at the end — the lookup itself takes the registry mutex.
//
// A MetricsSnapshot is an immutable copy of every metric. Snapshots form
// a diff algebra: diff(earlier) subtracts counters and histogram buckets
// (what happened *between* the two snapshots) while gauges keep the later
// value (their latest-wins semantics). Snapshots render as a text table
// or as JSON (src/common/json, stable key order for diffing runs).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/json.hpp"

namespace mvd {

enum class TraceLevel { kOff, kCounters, kSpans };

/// Effective level: programmatic override, else MVD_TRACE, else off.
/// Resolved once and cached; unknown env text means off.
TraceLevel trace_level();

/// Override the level for this process; nullopt restores env resolution.
void set_trace_level(std::optional<TraceLevel> level);

namespace obs_internal {
// -1 = unresolved; otherwise static_cast<int>(TraceLevel).
extern std::atomic<int> g_trace_level;
int resolve_trace_level();
inline int trace_level_int() {
  int level = g_trace_level.load(std::memory_order_relaxed);
  if (level < 0) level = resolve_trace_level();
  return level;
}
}  // namespace obs_internal

/// True at MVD_TRACE=counters or spans: registry publishing is on.
inline bool counters_enabled() {
  return obs_internal::trace_level_int() >=
         static_cast<int>(TraceLevel::kCounters);
}

/// True at MVD_TRACE=spans: the span tracer records too.
inline bool spans_enabled() {
  return obs_internal::trace_level_int() ==
         static_cast<int>(TraceLevel::kSpans);
}

enum class MetricKind { kCounter, kGauge, kHistogram };

std::string to_string(MetricKind kind);

/// Monotonically increasing sum. add() is lock-free and thread-safe.
class Counter {
 public:
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void increment() { add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latest-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges;
/// an implicit overflow bucket catches everything above the last bound.
/// observe(v) lands in the first bucket with v <= bound. Thread-safe.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  /// Bulk merge of pre-tallied bucket counts (same length as
  /// bucket_count()) — the local-tally-then-flush pattern for hot loops.
  void observe_bucketed(const std::vector<std::uint64_t>& counts, double sum);

  const std::vector<double>& bounds() const { return bounds_; }
  std::size_t bucket_count() const { return counts_.size(); }  // bounds+1
  std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Bucket index for one value (shared with local tallies).
  std::size_t bucket_index(double value) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Percentile estimate from fixed-bucket tallies: find the bucket holding
/// the q-th observation (q in [0,1]) and interpolate linearly inside it
/// (bucket i spans (bounds[i-1], bounds[i]], the first starts at 0, the
/// overflow bucket reports the last bound — the estimate saturates
/// there). 0 when no observations.
double histogram_percentile(const std::vector<double>& bounds,
                            const std::vector<std::uint64_t>& counts,
                            std::uint64_t count, double q);

/// One metric's frozen state inside a snapshot.
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  // counter sum or gauge value; histogram: sum
  // Histogram only:
  std::vector<double> bucket_bounds;
  std::vector<std::uint64_t> bucket_counts;  // bounds + overflow
  std::uint64_t count = 0;

  /// Histogram percentile estimate (see histogram_percentile); 0 for
  /// counters and gauges.
  double percentile(double q) const;
};

struct MetricsSnapshot {
  /// Name -> value, ordered (stable rendering and diffing).
  std::map<std::string, MetricValue> metrics;

  bool contains(const std::string& name) const {
    return metrics.count(name) != 0;
  }
  /// Counter/gauge value (histogram: sum); nullopt when absent.
  std::optional<double> value_of(const std::string& name) const;

  /// What happened between `earlier` and *this: counters and histogram
  /// buckets subtract, gauges keep this snapshot's value. Metrics absent
  /// from `earlier` pass through unchanged.
  MetricsSnapshot diff(const MetricsSnapshot& earlier) const;

  /// Aligned text table (name, kind, value, count for histograms).
  std::string render_text() const;
  /// {"metrics": {name: {kind, value, ...}}} with stable key order.
  Json to_json() const;
};

/// Thread-safe registry of named metrics. Metrics are created on first
/// use and never removed; handles stay valid for the registry's
/// lifetime. Re-requesting a name returns the same handle (a histogram
/// re-request ignores the new bounds). Requesting an existing name as a
/// different kind throws PlanError — names are global, collisions are
/// bugs.
class MetricsRegistry {
 public:
  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

  /// Drop every registered metric (tests and tool runs that want a clean
  /// slate). Outstanding handles become dangling — only call between
  /// measurement runs, never concurrently with recording.
  void reset();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(const std::string& name, MetricKind kind,
               std::vector<double> bounds = {});

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace mvd
