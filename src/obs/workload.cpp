#include "src/obs/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "src/algebra/query_spec.hpp"
#include "src/common/hash.hpp"
#include "src/common/strings.hpp"
#include "src/obs/metrics.hpp"
#include "src/optimizer/view_rewrite.hpp"

namespace mvd {

std::string query_fingerprint(const QuerySpec& query) {
  // Canonicalized once at bind time (QuerySpec::bind) so the serve path
  // pays a string copy, not a re-canonicalization.
  return query.fingerprint();
}

std::string fingerprint_id(const std::string& fingerprint) {
  static const char* kHex = "0123456789abcdef";
  std::uint64_t h = fnv1a(fingerprint);
  std::string id = "q";
  for (int shift = 60; shift >= 0; shift -= 4) {
    id += kHex[(h >> shift) & 0xF];
  }
  return id;
}

std::size_t default_obs_window() {
  const char* env = std::getenv("MVD_OBS_WINDOW");
  if (env == nullptr) return 512;
  char* end = nullptr;
  const unsigned long n = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || n == 0) return 512;
  return static_cast<std::size_t>(n);
}

const std::vector<double>& serve_latency_bounds() {
  static const std::vector<double> bounds = {0.05, 0.1, 0.25, 0.5, 1,  2.5,
                                             5,    10,  25,   50,  100, 500};
  return bounds;
}

double windowed_now(double windowed, std::uint64_t windowed_at,
                    std::uint64_t clock, std::size_t window) {
  if (clock <= windowed_at || window == 0) return windowed;
  const double alpha = 1.0 - 1.0 / static_cast<double>(window);
  return windowed *
         std::pow(alpha, static_cast<double>(clock - windowed_at));
}

namespace {

/// w ← w·α^Δ + 1 at clock `now` (the occurrence itself included).
void bump_window(double& windowed, std::uint64_t& windowed_at,
                 std::uint64_t now, std::size_t window) {
  windowed = windowed_now(windowed, windowed_at, now, window) + 1.0;
  windowed_at = now;
}

}  // namespace

// ---- WorkloadStats ----------------------------------------------------

std::map<std::string, double> WorkloadStats::to_gauges() const {
  std::map<std::string, double> g;
  g["workload/window"] = static_cast<double>(window);
  g["workload/events"] = static_cast<double>(events);
  g["workload/serves"] = static_cast<double>(serves);
  g["workload/ingests"] = static_cast<double>(ingests);
  g["workload/refreshes"] = static_cast<double>(refreshes);
  g["workload/fingerprints"] = static_cast<double>(queries.size());
  for (const auto& [name, fq] : declared_fq) {
    g[str_cat("workload/declared/fq/", name)] = fq;
  }
  for (const auto& [name, fu] : declared_fu) {
    g[str_cat("workload/declared/fu/", name)] = fu;
  }
  for (const auto& [fp, q] : queries) {
    const std::string base = str_cat("workload/query/", fingerprint_id(fp));
    g[base + "/count"] = static_cast<double>(q.count);
    g[base + "/hits"] = static_cast<double>(q.hits);
    g[base + "/misses"] = static_cast<double>(q.misses);
    g[base + "/latency_ms_sum"] = q.latency_ms_sum;
    g[base + "/windowed"] = q.windowed;
    g[base + "/windowed_at"] = static_cast<double>(q.windowed_at);
    g[base + "/first_seq"] = static_cast<double>(q.first_seq);
    g[base + "/last_seq"] = static_cast<double>(q.last_seq);
  }
  for (const auto& [name, v] : views) {
    const std::string base = str_cat("workload/view/", name);
    g[base + "/hits"] = static_cast<double>(v.hits);
    g[base + "/refusals"] = static_cast<double>(v.refusals);
    for (const auto& [code, n] : v.refusal_reasons) {
      g[str_cat(base, "/refusal/", code)] = static_cast<double>(n);
    }
    g[base + "/stale_serves"] = static_cast<double>(v.stale_serves);
    g[base + "/stale_serves_total"] =
        static_cast<double>(v.stale_serves_total);
    g[base + "/pending_delta_rows"] = v.pending_delta_rows;
    g[base + "/refreshes"] = static_cast<double>(v.refreshes);
    g[base + "/stale"] = v.stale_since_seq.has_value() ? 1.0 : 0.0;
    g[base + "/staleness_age"] =
        v.stale_since_seq.has_value()
            ? static_cast<double>(events - *v.stale_since_seq)
            : 0.0;
  }
  for (const auto& [name, r] : relations) {
    const std::string base = str_cat("workload/relation/", name);
    g[base + "/ingests"] = static_cast<double>(r.ingests);
    g[base + "/delta_rows"] = r.delta_rows;
    g[base + "/windowed"] = r.windowed;
    g[base + "/windowed_at"] = static_cast<double>(r.windowed_at);
    g[base + "/last_seq"] = static_cast<double>(r.last_seq);
  }
  g["workload/latency/count"] = static_cast<double>(latency_count);
  g["workload/latency/sum_ms"] = latency_ms_sum;
  for (std::size_t i = 0; i < latency_counts.size(); ++i) {
    g[str_cat("workload/latency/bucket/", i < 10 ? "0" : "",
              std::to_string(i))] = static_cast<double>(latency_counts[i]);
  }
  const DriftReport drift = compute_drift(*this);
  g["workload/drift/fq"] = drift.fq_distance;
  g["workload/drift/fu"] = drift.fu_distance;
  g["workload/drift/unmatched_serves"] = drift.unmatched_serve_share;
  return g;
}

Json WorkloadStats::to_json() const {
  Json doc = Json::object();
  doc.set("window", Json::number(window));
  doc.set("events", Json::number(static_cast<double>(events)));
  doc.set("serves", Json::number(static_cast<double>(serves)));
  doc.set("ingests", Json::number(static_cast<double>(ingests)));
  doc.set("refreshes", Json::number(static_cast<double>(refreshes)));

  Json queries_arr = Json::array();
  for (const auto& [fp, q] : queries) {
    Json one = Json::object();
    one.set("id", Json::string(fingerprint_id(fp)));
    one.set("query", Json::string(q.query));
    one.set("fingerprint", Json::string(fp));
    one.set("count", Json::number(static_cast<double>(q.count)));
    one.set("hits", Json::number(static_cast<double>(q.hits)));
    one.set("misses", Json::number(static_cast<double>(q.misses)));
    one.set("latency_ms_sum", Json::number(q.latency_ms_sum));
    one.set("windowed",
            Json::number(windowed_now(q.windowed, q.windowed_at, serves,
                                      window)));
    one.set("first_seq", Json::number(static_cast<double>(q.first_seq)));
    one.set("last_seq", Json::number(static_cast<double>(q.last_seq)));
    queries_arr.push_back(std::move(one));
  }
  doc.set("queries", std::move(queries_arr));

  Json views_obj = Json::object();
  for (const auto& [name, v] : views) {
    Json one = Json::object();
    one.set("hits", Json::number(static_cast<double>(v.hits)));
    one.set("refusals", Json::number(static_cast<double>(v.refusals)));
    Json reasons = Json::object();
    for (const auto& [code, n] : v.refusal_reasons) {
      reasons.set(code, Json::number(static_cast<double>(n)));
    }
    one.set("refusal_reasons", std::move(reasons));
    one.set("stale_serves", Json::number(static_cast<double>(v.stale_serves)));
    one.set("stale_serves_total",
            Json::number(static_cast<double>(v.stale_serves_total)));
    one.set("pending_delta_rows", Json::number(v.pending_delta_rows));
    one.set("refreshes", Json::number(static_cast<double>(v.refreshes)));
    one.set("stale", Json::boolean(v.stale_since_seq.has_value()));
    one.set("staleness_age",
            Json::number(v.stale_since_seq.has_value()
                             ? static_cast<double>(events - *v.stale_since_seq)
                             : 0.0));
    views_obj.set(name, std::move(one));
  }
  doc.set("views", std::move(views_obj));

  Json rels_obj = Json::object();
  for (const auto& [name, r] : relations) {
    Json one = Json::object();
    one.set("ingests", Json::number(static_cast<double>(r.ingests)));
    one.set("delta_rows", Json::number(r.delta_rows));
    one.set("windowed",
            Json::number(windowed_now(r.windowed, r.windowed_at, ingests,
                                      window)));
    rels_obj.set(name, std::move(one));
  }
  doc.set("relations", std::move(rels_obj));

  Json declared = Json::object();
  Json fq = Json::object();
  for (const auto& [name, f] : declared_fq) fq.set(name, Json::number(f));
  declared.set("fq", std::move(fq));
  Json fu = Json::object();
  for (const auto& [name, f] : declared_fu) fu.set(name, Json::number(f));
  declared.set("fu", std::move(fu));
  doc.set("declared", std::move(declared));

  Json latency = Json::object();
  latency.set("count", Json::number(static_cast<double>(latency_count)));
  latency.set("sum_ms", Json::number(latency_ms_sum));
  Json bounds = Json::array();
  for (double b : serve_latency_bounds()) bounds.push_back(Json::number(b));
  latency.set("bucket_bounds", std::move(bounds));
  Json counts = Json::array();
  for (std::uint64_t c : latency_counts) {
    counts.push_back(Json::number(static_cast<double>(c)));
  }
  latency.set("bucket_counts", std::move(counts));
  doc.set("latency", std::move(latency));
  return doc;
}

// ---- Drift ------------------------------------------------------------

Json DriftReport::to_json() const {
  Json doc = Json::object();
  doc.set("fq_distance", Json::number(fq_distance));
  doc.set("fu_distance", Json::number(fu_distance));
  doc.set("unmatched_serve_share", Json::number(unmatched_serve_share));
  const auto entries_to_json = [](const std::vector<DriftEntry>& entries) {
    Json arr = Json::array();
    for (const DriftEntry& e : entries) {
      Json one = Json::object();
      one.set("name", Json::string(e.name));
      one.set("declared_share", Json::number(e.declared_share));
      one.set("observed_share", Json::number(e.observed_share));
      arr.push_back(std::move(one));
    }
    return arr;
  };
  doc.set("queries", entries_to_json(queries));
  doc.set("relations", entries_to_json(relations));
  return doc;
}

DriftReport compute_drift(const WorkloadStats& stats) {
  DriftReport out;

  // fq: observed serve counts grouped by display name vs the declared
  // query frequencies. Serves whose name matches no declared query form
  // an extra observed-only bucket.
  double declared_total = 0;
  for (const auto& [name, fq] : stats.declared_fq) declared_total += fq;
  std::map<std::string, double> observed_by_name;
  double observed_total = 0;
  for (const auto& [fp, q] : stats.queries) {
    observed_by_name[q.query] += static_cast<double>(q.count);
    observed_total += static_cast<double>(q.count);
  }
  double l1 = 0;
  double matched = 0;
  for (const auto& [name, fq] : stats.declared_fq) {
    DriftEntry e;
    e.name = name;
    e.declared_share = declared_total > 0 ? fq / declared_total : 0;
    const auto it = observed_by_name.find(name);
    const double count = it != observed_by_name.end() ? it->second : 0;
    matched += count;
    e.observed_share = observed_total > 0 ? count / observed_total : 0;
    l1 += std::abs(e.declared_share - e.observed_share);
    out.queries.push_back(std::move(e));
  }
  const double unmatched =
      observed_total > 0 ? (observed_total - matched) / observed_total : 0;
  out.unmatched_serve_share = unmatched;
  out.fq_distance =
      observed_total > 0 && declared_total > 0 ? (l1 + unmatched) / 2 : 0;

  // fu: observed ingest counts per relation vs declared update
  // frequencies. Every ingest names a declared relation, so there is no
  // unmatched bucket unless the catalog was never declared.
  double declared_fu_total = 0;
  for (const auto& [name, fu] : stats.declared_fu) declared_fu_total += fu;
  double ingest_total = 0;
  for (const auto& [name, r] : stats.relations) {
    ingest_total += static_cast<double>(r.ingests);
  }
  double fu_l1 = 0;
  double fu_matched = 0;
  for (const auto& [name, fu] : stats.declared_fu) {
    DriftEntry e;
    e.name = name;
    e.declared_share = declared_fu_total > 0 ? fu / declared_fu_total : 0;
    const auto it = stats.relations.find(name);
    const double count =
        it != stats.relations.end() ? static_cast<double>(it->second.ingests)
                                    : 0;
    fu_matched += count;
    e.observed_share = ingest_total > 0 ? count / ingest_total : 0;
    fu_l1 += std::abs(e.declared_share - e.observed_share);
    out.relations.push_back(std::move(e));
  }
  const double fu_unmatched =
      ingest_total > 0 ? (ingest_total - fu_matched) / ingest_total : 0;
  out.fu_distance = ingest_total > 0 && declared_fu_total > 0
                        ? (fu_l1 + fu_unmatched) / 2
                        : 0;
  return out;
}

// ---- WorkloadObservatory ----------------------------------------------

WorkloadObservatory::WorkloadObservatory(std::size_t window)
    : window_(window == 0 ? default_obs_window() : window) {
  state_.window = window_;
  state_.latency_counts.assign(serve_latency_bounds().size() + 1, 0);
}

void WorkloadObservatory::attach_journal(
    std::shared_ptr<EventJournal> journal) {
  journal_ = std::move(journal);
  JournalEvent open;
  open.kind = EventKind::kOpen;
  open.window = window_;
  record(std::move(open));
}

void WorkloadObservatory::declare_query(const std::string& name, double fq) {
  JournalEvent e;
  e.kind = EventKind::kDeclareQuery;
  e.query = name;
  e.frequency = fq;
  record(std::move(e));
}

void WorkloadObservatory::declare_update(const std::string& relation,
                                         double fu) {
  JournalEvent e;
  e.kind = EventKind::kDeclareUpdate;
  e.relation = relation;
  e.frequency = fu;
  record(std::move(e));
}

std::uint64_t WorkloadObservatory::record(JournalEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.seq = ++state_.events;
  apply_locked(event);
  const std::uint64_t seq = event.seq;
  // Appending under the state lock pins the journal order to the apply
  // order — the replay contract's total order.
  if (journal_ != nullptr) journal_->append(std::move(event));
  return seq;
}

void WorkloadObservatory::apply_locked(const JournalEvent& e) {
  switch (e.kind) {
    case EventKind::kOpen:
      break;  // the window is constructor state; the event documents it
    case EventKind::kDeclareQuery:
      state_.declared_fq[e.query] = e.frequency;
      break;
    case EventKind::kDeclareUpdate:
      state_.declared_fu[e.relation] = e.frequency;
      break;
    case EventKind::kServe: {
      ++state_.serves;
      QueryObservation& q = state_.queries[e.fingerprint];
      if (q.count == 0) {
        q.query = e.query;
        q.first_seq = e.seq;
      }
      ++q.count;
      if (e.rewritten) {
        ++q.hits;
      } else {
        ++q.misses;
      }
      q.latency_ms_sum += e.latency_ms;
      bump_window(q.windowed, q.windowed_at, state_.serves, window_);
      q.last_seq = e.seq;

      const std::vector<double>& bounds = serve_latency_bounds();
      const auto it =
          std::lower_bound(bounds.begin(), bounds.end(), e.latency_ms);
      ++state_.latency_counts[static_cast<std::size_t>(it - bounds.begin())];
      state_.latency_ms_sum += e.latency_ms;
      ++state_.latency_count;

      if (e.rewritten) {
        ++state_.views[e.view].hits;
      } else {
        for (const ServeRefusal& r : e.refusals) {
          ViewObservation& v = state_.views[r.view];
          ++v.refusals;
          ++v.refusal_reasons[refusal_code(r.reason)];
        }
      }
      for (const std::string& name : e.stale_views) {
        ViewObservation& v = state_.views[name];
        ++v.stale_serves;
        ++v.stale_serves_total;
      }
      break;
    }
    case EventKind::kIngest: {
      ++state_.ingests;
      RelationObservation& r = state_.relations[e.relation];
      ++r.ingests;
      r.delta_rows += e.delta_rows;
      bump_window(r.windowed, r.windowed_at, state_.ingests, window_);
      r.last_seq = e.seq;
      for (const std::string& name : e.marked_stale) {
        ViewObservation& v = state_.views[name];
        v.pending_delta_rows += e.delta_rows;
        if (!v.stale_since_seq.has_value()) v.stale_since_seq = e.seq;
      }
      break;
    }
    case EventKind::kRefresh: {
      ++state_.refreshes;
      for (const std::string& name : e.refreshed) {
        ViewObservation& v = state_.views[name];
        ++v.refreshes;
        v.pending_delta_rows = 0;
        v.stale_serves = 0;
        v.stale_since_seq.reset();
      }
      break;
    }
  }
}

WorkloadStats WorkloadObservatory::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void WorkloadObservatory::publish_gauges() const {
  if (!counters_enabled()) return;
  MetricsRegistry& reg = MetricsRegistry::global();
  for (const auto& [name, value] : stats().to_gauges()) {
    reg.gauge(name).set(value);
  }
}

std::unique_ptr<WorkloadObservatory> replay_journal(
    const std::vector<JournalEvent>& events, std::size_t window) {
  if (window == 0) {
    for (const JournalEvent& e : events) {
      if (e.kind == EventKind::kOpen && e.window != 0) {
        window = static_cast<std::size_t>(e.window);
        break;
      }
    }
  }
  auto obs = std::make_unique<WorkloadObservatory>(
      window == 0 ? default_obs_window() : window);
  for (const JournalEvent& e : events) obs->record(e);
  return obs;
}

}  // namespace mvd
