// Bridges from the repo's per-module stat structs into the global
// MetricsRegistry. ExecStats, RefreshReport and the selection cost
// ledger keep their existing types and call sites; these helpers are the
// one place that maps them onto registry names, so metric naming stays
// consistent across engines and tools.
//
// All publishers are no-ops unless counters_enabled() (MVD_TRACE set):
// the cost when tracing is off is one relaxed atomic load.
#pragma once

#include <string>
#include <vector>

#include "src/exec/executor.hpp"
#include "src/maintenance/refresh.hpp"
#include "src/mvpp/evaluation.hpp"
#include "src/obs/journal.hpp"

namespace mvd {

/// Publish one run's ExecStats under "exec/<engine>/..." plus the
/// engine-agnostic "exec/total/..." counters. `engine` is "row" or
/// "vec".
void publish_exec_stats(const ExecStats& stats, const std::string& engine);

/// Publish one refresh round under "maintenance/refresh/..." — per-path
/// view counts, delta rows, block work.
void publish_refresh_report(const RefreshReport& report);

/// Publish the paper's cost ledger for a chosen materialized set as
/// gauges:
///
///   selection/ledger/query_blocks        Σ fq(qi) · C(M→qi)
///   selection/ledger/maintenance_blocks  Σ fu-factor(vj) · C(L→vj)
///   selection/ledger/total_blocks        their sum
///   selection/ledger/query/<name>        one gauge per query term
///   selection/ledger/view/<name>         one gauge per maintained view
///
/// The totals are computed by the same MvppEvaluator entry points the
/// selection algorithms report (identical summation order), so the
/// gauges equal SelectionResult::costs bit-for-bit — mvlint rule
/// obs/metrics-consistent checks exactly this.
void publish_selection_ledger(const MvppEvaluator& eval,
                              const MaterializedSet& m);

/// Publish one mvserve answer under "serve/...": total query count,
/// rewritten vs fallback split, per-view hit counters
/// ("serve/view/<name>/hits"), an answer-latency histogram
/// ("serve/latency_ms"), a per-engine query count
/// ("serve/engine/<engine>/queries"), and — on a fallback — one
/// "serve/view/<name>/refusals" counter per refusing view plus
/// "serve/refusal/<code>" reason tallies (view_rewrite's refusal_code),
/// so a miss is explainable per-view instead of a bare rewritten=false.
void publish_serve_result(bool rewritten, const std::string& view,
                          double latency_ms, const std::string& engine = "",
                          const std::vector<ServeRefusal>& refusals = {});

}  // namespace mvd
