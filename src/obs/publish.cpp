#include "src/obs/publish.hpp"

#include "src/common/strings.hpp"
#include "src/obs/metrics.hpp"
#include "src/optimizer/view_rewrite.hpp"

namespace mvd {

void publish_exec_stats(const ExecStats& stats, const std::string& engine) {
  if (!counters_enabled()) return;
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter(str_cat("exec/", engine, "/runs")).increment();
  reg.counter(str_cat("exec/", engine, "/blocks_read")).add(stats.blocks_read);
  reg.counter(str_cat("exec/", engine, "/rows_scanned"))
      .add(stats.rows_scanned);
  reg.counter(str_cat("exec/", engine, "/batches")).add(stats.batches);
  reg.counter("exec/total/runs").increment();
  reg.counter("exec/total/blocks_read").add(stats.blocks_read);
  reg.counter("exec/total/rows_scanned").add(stats.rows_scanned);
}

void publish_refresh_report(const RefreshReport& report) {
  if (!counters_enabled()) return;
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("maintenance/refresh/rounds").increment();
  reg.counter("maintenance/refresh/views_skipped")
      .add(static_cast<double>(report.count(RefreshPath::kSkipped)));
  reg.counter("maintenance/refresh/views_applied")
      .add(static_cast<double>(report.count(RefreshPath::kApplied)));
  reg.counter("maintenance/refresh/views_group_applied")
      .add(static_cast<double>(report.count(RefreshPath::kGroupApplied)));
  reg.counter("maintenance/refresh/views_recomputed")
      .add(static_cast<double>(report.count(RefreshPath::kRecomputed)));
  reg.counter("maintenance/refresh/delta_rows")
      .add(report.total_delta_rows());
  reg.counter("maintenance/refresh/blocks_read")
      .add(report.total_blocks_read());
}

void publish_selection_ledger(const MvppEvaluator& eval,
                              const MaterializedSet& m) {
  if (!counters_enabled()) return;
  MetricsRegistry& reg = MetricsRegistry::global();
  const MvppGraph& g = eval.graph();

  // Same entry points (and therefore the same floating-point summation
  // order) as SelectionResult::costs — the gauges must reconcile with
  // the reported ledger exactly, not approximately.
  const double qp = eval.query_processing_cost(m);
  const double maint = eval.total_maintenance_cost(m);
  reg.gauge("selection/ledger/query_blocks").set(qp);
  reg.gauge("selection/ledger/maintenance_blocks").set(maint);
  reg.gauge("selection/ledger/total_blocks").set(qp + maint);

  for (NodeId q : eval.closures().query_ids()) {
    const MvppNode& n = g.node(q);
    reg.gauge(str_cat("selection/ledger/query/", n.name))
        .set(n.frequency * eval.answer_cost(q, m));
  }
  for (NodeId v : m) {
    reg.gauge(str_cat("selection/ledger/view/", g.node(v).name))
        .set(eval.maintenance_cost(v, m));
  }
}

void publish_serve_result(bool rewritten, const std::string& view,
                          double latency_ms, const std::string& engine,
                          const std::vector<ServeRefusal>& refusals) {
  if (!counters_enabled()) return;
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("serve/queries").increment();
  if (rewritten) {
    reg.counter("serve/rewritten").increment();
    reg.counter(str_cat("serve/view/", view, "/hits")).increment();
  } else {
    reg.counter("serve/fallback").increment();
    for (const ServeRefusal& r : refusals) {
      reg.counter(str_cat("serve/view/", r.view, "/refusals")).increment();
      reg.counter(str_cat("serve/refusal/", refusal_code(r.reason)))
          .increment();
    }
  }
  if (!engine.empty()) {
    reg.counter(str_cat("serve/engine/", engine, "/queries")).increment();
  }
  reg.histogram("serve/latency_ms",
                {0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 500})
      .observe(latency_ms);
}

}  // namespace mvd
