// The serve/refresh event journal — durable, replayable workload
// evidence.
//
// Every observable action of the serving warehouse (a served query, an
// ingested update batch, a refresh round, plus the declared-workload
// annotations seeded at startup) is one JournalEvent. Events are plain
// data: they serialize to one JSON line each (JSONL) and parse back
// exactly — numbers round-trip through src/common/json's shortest-form
// formatting, so a journal written to disk reproduces the in-memory
// events bit-for-bit.
//
// EventJournal keeps the most recent `capacity` events in a bounded ring
// (old events are dropped, not reallocated into unbounded memory) and,
// when MVD_JOURNAL=<path> is set (or a sink path is passed explicitly),
// appends every event to that file as it happens — line-buffered JSONL a
// tail -f or an offline mvstat --journal run can consume.
//
// The replay contract: feeding a complete journal back through
// WorkloadObservatory (src/obs/workload.hpp, replay_journal) reconstructs
// the exact live observatory state — every gauge bit-for-bit — because
// recording serializes events into a total order and replay applies the
// same order through the same code path. mvlint rule
// obs/journal-consistent certifies exactly this. The ring is a bounded
// tail: the certificate needs the file sink (complete history) or a run
// short enough that nothing was dropped.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/json.hpp"

namespace mvd {

/// One VALID view's reason for refusing to answer a served query (the
/// matcher's short explanation; view_rewrite's refusal_code() buckets the
/// free text into stable categories for tallying).
struct ServeRefusal {
  std::string view;
  std::string reason;

  friend bool operator==(const ServeRefusal&, const ServeRefusal&) = default;
};

enum class EventKind {
  kOpen,          // journal/observatory opened; carries the decay window
  kDeclareQuery,  // catalog annotation: declared fq(q) for one query
  kDeclareUpdate, // catalog annotation: declared fu(r) for one relation
  kServe,         // one answered query (hit or fallback)
  kIngest,        // one applied update batch
  kRefresh,       // one refresh round publishing views VALID
};

std::string to_string(EventKind kind);

/// One observed action. A flat struct: each kind uses its own subset of
/// the fields (the rest stay defaulted and are omitted from the JSON).
struct JournalEvent {
  /// Position in the observatory's total event order (assigned by
  /// WorkloadObservatory::record, 1-based). Replay reassigns it, which is
  /// how a deleted or reordered line is caught by the bit-for-bit check.
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kServe;
  /// ServeSnapshot epoch the action observed/produced (0 outside a
  /// server, e.g. the designer's refresh path).
  std::uint64_t epoch = 0;

  // kOpen
  std::uint64_t window = 0;

  // kDeclareQuery / kDeclareUpdate
  double frequency = 0;

  // kServe
  std::string query;        // display name (QuerySpec name)
  std::string fingerprint;  // canonical identity (query_fingerprint)
  bool rewritten = false;
  std::string view;    // the hit view when rewritten
  std::string engine;  // "row" | "vec" | "fused"
  double latency_ms = 0;
  std::vector<ServeRefusal> refusals;  // per-VALID-view reasons on a miss
  /// Deployed-but-unavailable coverage on a fallback: non-VALID
  /// matchable views over exactly the query's relation set (the matcher
  /// would at least have consulted them had they been fresh) — the
  /// "serve while stale" evidence.
  std::vector<std::string> stale_views;

  // kIngest (also kDeclareUpdate's subject)
  std::string relation;
  double delta_rows = 0;
  std::vector<std::string> marked_stale;

  // kRefresh
  std::vector<std::string> refreshed;
  std::string mode;  // to_string(RefreshMode)

  Json to_json() const;
  /// Throws ParseError on a structurally wrong document (unknown kind,
  /// missing subject fields).
  static JournalEvent from_json(const Json& doc);

  friend bool operator==(const JournalEvent&, const JournalEvent&) = default;
};

/// MVD_JOURNAL resolution: the file-sink path, empty when unset.
std::string default_journal_path();

/// Thread-safe bounded event ring with an optional JSONL file sink.
class EventJournal {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// `sink_path` empty means ring-only. Opens the sink for appending and
  /// throws Error when the path cannot be opened.
  explicit EventJournal(std::size_t capacity = kDefaultCapacity,
                        std::string sink_path = default_journal_path());

  /// Append one event (ring + sink, one flushed JSONL line).
  void append(JournalEvent event);

  /// Ring contents, oldest first (the most recent `capacity` appends).
  std::vector<JournalEvent> events() const;

  std::size_t capacity() const { return capacity_; }
  /// Total events ever appended; `appended() - events().size()` were
  /// dropped from the ring (the sink, when configured, kept them).
  std::uint64_t appended() const;
  const std::string& sink_path() const { return sink_path_; }

  // ---- JSONL (de)serialization, shared by the sink and offline tools --

  static std::string to_jsonl(const std::vector<JournalEvent>& events);

  /// Parse JSONL text. Malformed lines — torn writes, truncation mid-
  /// line, hand edits — are skipped and counted into `*corrupt_lines`
  /// (when given) instead of aborting the load: a damaged journal yields
  /// every intact event.
  static std::vector<JournalEvent> parse_jsonl(
      const std::string& text, std::size_t* corrupt_lines = nullptr);

  /// Load a journal file. Throws Error when unreadable; corrupt lines
  /// recover as in parse_jsonl.
  static std::vector<JournalEvent> load(const std::string& path,
                                        std::size_t* corrupt_lines = nullptr);

 private:
  std::size_t capacity_;
  std::string sink_path_;

  mutable std::mutex mutex_;
  std::deque<JournalEvent> ring_;
  std::uint64_t appended_ = 0;
  std::ofstream sink_;
};

}  // namespace mvd
