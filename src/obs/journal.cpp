#include "src/obs/journal.hpp"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/common/error.hpp"

namespace mvd {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kOpen:
      return "open";
    case EventKind::kDeclareQuery:
      return "declare-query";
    case EventKind::kDeclareUpdate:
      return "declare-update";
    case EventKind::kServe:
      return "serve";
    case EventKind::kIngest:
      return "ingest";
    case EventKind::kRefresh:
      return "refresh";
  }
  return "?";
}

namespace {

EventKind kind_from_string(const std::string& text) {
  if (text == "open") return EventKind::kOpen;
  if (text == "declare-query") return EventKind::kDeclareQuery;
  if (text == "declare-update") return EventKind::kDeclareUpdate;
  if (text == "serve") return EventKind::kServe;
  if (text == "ingest") return EventKind::kIngest;
  if (text == "refresh") return EventKind::kRefresh;
  throw ParseError("unknown journal event kind '" + text + "'");
}

Json names_to_json(const std::vector<std::string>& names) {
  Json arr = Json::array();
  for (const std::string& n : names) arr.push_back(Json::string(n));
  return arr;
}

std::vector<std::string> names_from_json(const Json& arr) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    out.push_back(arr.at(i).as_string());
  }
  return out;
}

double number_or(const Json& doc, const std::string& key, double fallback) {
  return doc.contains(key) ? doc.at(key).as_number() : fallback;
}

std::string string_or(const Json& doc, const std::string& key) {
  return doc.contains(key) ? doc.at(key).as_string() : std::string();
}

}  // namespace

Json JournalEvent::to_json() const {
  Json doc = Json::object();
  doc.set("seq", Json::number(static_cast<double>(seq)));
  doc.set("kind", Json::string(to_string(kind)));
  if (epoch != 0) doc.set("epoch", Json::number(static_cast<double>(epoch)));
  switch (kind) {
    case EventKind::kOpen:
      doc.set("window", Json::number(static_cast<double>(window)));
      break;
    case EventKind::kDeclareQuery:
      doc.set("query", Json::string(query));
      doc.set("frequency", Json::number(frequency));
      break;
    case EventKind::kDeclareUpdate:
      doc.set("relation", Json::string(relation));
      doc.set("frequency", Json::number(frequency));
      break;
    case EventKind::kServe: {
      doc.set("query", Json::string(query));
      doc.set("fingerprint", Json::string(fingerprint));
      doc.set("rewritten", Json::boolean(rewritten));
      if (rewritten) doc.set("view", Json::string(view));
      doc.set("engine", Json::string(engine));
      doc.set("latency_ms", Json::number(latency_ms));
      if (!refusals.empty()) {
        Json arr = Json::array();
        for (const ServeRefusal& r : refusals) {
          Json one = Json::object();
          one.set("view", Json::string(r.view));
          one.set("reason", Json::string(r.reason));
          arr.push_back(std::move(one));
        }
        doc.set("refusals", std::move(arr));
      }
      if (!stale_views.empty()) {
        doc.set("stale_views", names_to_json(stale_views));
      }
      break;
    }
    case EventKind::kIngest:
      doc.set("relation", Json::string(relation));
      doc.set("delta_rows", Json::number(delta_rows));
      if (!marked_stale.empty()) {
        doc.set("marked_stale", names_to_json(marked_stale));
      }
      break;
    case EventKind::kRefresh:
      doc.set("refreshed", names_to_json(refreshed));
      doc.set("mode", Json::string(mode));
      break;
  }
  return doc;
}

JournalEvent JournalEvent::from_json(const Json& doc) {
  if (doc.kind() != Json::Kind::kObject) {
    throw ParseError("journal event is not an object");
  }
  JournalEvent e;
  e.seq = static_cast<std::uint64_t>(number_or(doc, "seq", 0));
  e.kind = kind_from_string(doc.at("kind").as_string());
  e.epoch = static_cast<std::uint64_t>(number_or(doc, "epoch", 0));
  switch (e.kind) {
    case EventKind::kOpen:
      e.window = static_cast<std::uint64_t>(number_or(doc, "window", 0));
      break;
    case EventKind::kDeclareQuery:
      e.query = doc.at("query").as_string();
      e.frequency = doc.at("frequency").as_number();
      break;
    case EventKind::kDeclareUpdate:
      e.relation = doc.at("relation").as_string();
      e.frequency = doc.at("frequency").as_number();
      break;
    case EventKind::kServe:
      e.query = string_or(doc, "query");
      e.fingerprint = doc.at("fingerprint").as_string();
      e.rewritten = doc.at("rewritten").as_bool();
      e.view = string_or(doc, "view");
      e.engine = string_or(doc, "engine");
      e.latency_ms = number_or(doc, "latency_ms", 0);
      if (doc.contains("refusals")) {
        const Json& arr = doc.at("refusals");
        for (std::size_t i = 0; i < arr.size(); ++i) {
          const Json& one = arr.at(i);
          e.refusals.push_back(
              {one.at("view").as_string(), one.at("reason").as_string()});
        }
      }
      if (doc.contains("stale_views")) {
        e.stale_views = names_from_json(doc.at("stale_views"));
      }
      break;
    case EventKind::kIngest:
      e.relation = doc.at("relation").as_string();
      e.delta_rows = doc.at("delta_rows").as_number();
      if (doc.contains("marked_stale")) {
        e.marked_stale = names_from_json(doc.at("marked_stale"));
      }
      break;
    case EventKind::kRefresh:
      e.refreshed = names_from_json(doc.at("refreshed"));
      e.mode = string_or(doc, "mode");
      break;
  }
  return e;
}

std::string default_journal_path() {
  const char* env = std::getenv("MVD_JOURNAL");
  return env == nullptr ? std::string() : std::string(env);
}

EventJournal::EventJournal(std::size_t capacity, std::string sink_path)
    : capacity_(capacity == 0 ? 1 : capacity),
      sink_path_(std::move(sink_path)) {
  if (!sink_path_.empty()) {
    sink_.open(sink_path_, std::ios::app);
    if (!sink_) throw Error("cannot open journal sink '" + sink_path_ + "'");
  }
}

void EventJournal::append(JournalEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++appended_;
  if (sink_.is_open()) {
    sink_ << event.to_json().dump() << '\n';
    sink_.flush();
  }
  ring_.push_back(std::move(event));
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<JournalEvent> EventJournal::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<JournalEvent>(ring_.begin(), ring_.end());
}

std::uint64_t EventJournal::appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::string EventJournal::to_jsonl(const std::vector<JournalEvent>& events) {
  std::string out;
  for (const JournalEvent& e : events) {
    out += e.to_json().dump();
    out += '\n';
  }
  return out;
}

std::vector<JournalEvent> EventJournal::parse_jsonl(
    const std::string& text, std::size_t* corrupt_lines) {
  std::vector<JournalEvent> out;
  std::size_t corrupt = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      out.push_back(JournalEvent::from_json(Json::parse(line)));
    } catch (const Error&) {
      // Torn write, truncated tail or hand edit: skip the line, keep
      // every event that survived.
      ++corrupt;
    }
  }
  if (corrupt_lines != nullptr) *corrupt_lines = corrupt;
  return out;
}

std::vector<JournalEvent> EventJournal::load(const std::string& path,
                                             std::size_t* corrupt_lines) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open journal '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_jsonl(buffer.str(), corrupt_lines);
}

}  // namespace mvd
