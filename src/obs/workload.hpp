// WorkloadObservatory — observed-frequency telemetry for the serving
// warehouse.
//
// The paper's selection framework is parameterized by *declared* query
// frequencies fq(qi) and update frequencies fu(rj). This observatory
// turns live serve/ingest/refresh traffic into *observed* versions of
// the same numbers, the substrate the adaptive-selection roadmap item
// feeds back into the catalog:
//
//   * per-query-fingerprint frequency tracking — cumulative counts plus
//     an exponentially-decayed sliding-window count (window W serves,
//     decay factor 1 − 1/W per serve), so a drifted workload's recent
//     shape is visible next to its lifetime shape;
//   * per-deployed-view serving tallies — hits, refusals bucketed by
//     matcher reason (view_rewrite's refusal_code), and serves-while-
//     stale since the view's last refresh;
//   * per-view staleness — pending ingested delta rows and a staleness
//     age in events since the ingest that staled the view;
//   * per-relation observed update frequencies (cumulative + decayed);
//   * a drift report comparing observed fq/fu against the declared
//     catalog annotations by total-variation distance (normalized L1).
//
// Determinism contract: all state lives behind one mutex; record()
// assigns each event a sequence number and applies it under that lock,
// and the attached journal (src/obs/journal.hpp) receives events in the
// same order. Replaying the journal through replay_journal() therefore
// reproduces every gauge bit-for-bit — including the decayed windows,
// whose floating-point work depends only on the event order — no matter
// how many threads produced the live traffic. mvlint rule
// obs/journal-consistent enforces this equality.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/obs/journal.hpp"

namespace mvd {

class QuerySpec;

/// Canonical identity of a query for frequency accounting: relations,
/// join edges and selection conjuncts in sorted order, plus the output
/// shape. Stable under FROM/WHERE reordering; insensitive to the query's
/// display name.
std::string query_fingerprint(const QuerySpec& query);

/// Short stable id for a fingerprint ("q" + 16 hex digits of FNV-1a) —
/// the key observed-frequency gauges are published under.
std::string fingerprint_id(const std::string& fingerprint);

/// Decay window from MVD_OBS_WINDOW (events); 512 when unset or
/// unparsable.
std::size_t default_obs_window();

struct QueryObservation {
  std::string query;  // display name at first sighting
  std::uint64_t count = 0;
  std::uint64_t hits = 0;    // answered from a view
  std::uint64_t misses = 0;  // base-table fallback
  double latency_ms_sum = 0;
  /// Decayed sliding-window count, valid as of serve clock
  /// `windowed_at`: w ← w·(1−1/W)^(Δserves) + 1 on each occurrence.
  double windowed = 0;
  std::uint64_t windowed_at = 0;
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;

  friend bool operator==(const QueryObservation&,
                         const QueryObservation&) = default;
};

struct ViewObservation {
  std::uint64_t hits = 0;
  std::uint64_t refusals = 0;
  /// refusal_code(reason) -> count.
  std::map<std::string, std::uint64_t> refusal_reasons;
  /// Fallback serves that could have used this view had it been fresh,
  /// since its last refresh / in total.
  std::uint64_t stale_serves = 0;
  std::uint64_t stale_serves_total = 0;
  /// Ingested delta rows not yet folded in by a refresh.
  double pending_delta_rows = 0;
  std::uint64_t refreshes = 0;
  /// Event seq of the ingest that staled the view; empty when fresh.
  std::optional<std::uint64_t> stale_since_seq;

  friend bool operator==(const ViewObservation&,
                         const ViewObservation&) = default;
};

struct RelationObservation {
  std::uint64_t ingests = 0;
  double delta_rows = 0;
  /// Decayed window over the ingest clock (same recurrence as queries).
  double windowed = 0;
  std::uint64_t windowed_at = 0;
  std::uint64_t last_seq = 0;

  friend bool operator==(const RelationObservation&,
                         const RelationObservation&) = default;
};

/// Fixed latency buckets shared with the "serve/latency_ms" registry
/// histogram (upper edges in ms; one implicit overflow bucket).
const std::vector<double>& serve_latency_bounds();

/// An immutable copy of the observatory's whole state. to_gauges() is
/// the flattened, exactly-comparable form the journal-consistency
/// certificate diffs.
struct WorkloadStats {
  std::size_t window = 0;
  std::uint64_t events = 0;  // total recorded (== last assigned seq)
  std::uint64_t serves = 0;
  std::uint64_t ingests = 0;
  std::uint64_t refreshes = 0;

  /// Declared catalog annotations (seeded through declare_*, themselves
  /// journaled so replay reconstructs them too).
  std::map<std::string, double> declared_fq;
  std::map<std::string, double> declared_fu;

  std::map<std::string, QueryObservation> queries;  // by fingerprint
  std::map<std::string, ViewObservation> views;
  std::map<std::string, RelationObservation> relations;

  /// Serve-latency histogram (bounds serve_latency_bounds(), counts
  /// bounds+1 with the overflow bucket last).
  std::vector<std::uint64_t> latency_counts;
  double latency_ms_sum = 0;
  std::uint64_t latency_count = 0;

  /// Every number this snapshot holds, flattened under "workload/..."
  /// names (fingerprints keyed by fingerprint_id). Two observatories
  /// agree bit-for-bit iff these maps are equal.
  std::map<std::string, double> to_gauges() const;
  Json to_json() const;
};

/// One declared name's observed-vs-declared share.
struct DriftEntry {
  std::string name;
  double declared_share = 0;
  double observed_share = 0;
};

/// Observed workload distribution vs the declared catalog annotations.
/// Distances are total variation (half the L1 distance between the two
/// normalized distributions, observed traffic that matches no declared
/// name counted as an extra bucket with declared share 0): 0 = the
/// observed traffic has exactly the declared shape, 1 = disjoint. Zero
/// traffic observed means zero evidence of drift, reported as 0.
struct DriftReport {
  double fq_distance = 0;
  double fu_distance = 0;
  /// Fraction of serves whose display name matches no declared query.
  double unmatched_serve_share = 0;
  std::vector<DriftEntry> queries;    // declared queries, declared order
  std::vector<DriftEntry> relations;  // declared relations

  Json to_json() const;
};

/// Drift of `stats` against its own declared annotations.
DriftReport compute_drift(const WorkloadStats& stats);

/// Bring a decayed window value forward to the current clock (apply the
/// remaining decay without adding an occurrence) — what reports should
/// display, while to_gauges keeps the raw (value, clock) pair exact.
double windowed_now(double windowed, std::uint64_t windowed_at,
                    std::uint64_t clock, std::size_t window);

class WorkloadObservatory {
 public:
  explicit WorkloadObservatory(std::size_t window = default_obs_window());

  /// Attach the journal every subsequent event is appended to, and
  /// record a kOpen event carrying the window so a journal replays
  /// self-contained. Call once, before traffic.
  void attach_journal(std::shared_ptr<EventJournal> journal);
  const std::shared_ptr<EventJournal>& journal() const { return journal_; }

  std::size_t window() const { return window_; }

  /// Seed the declared workload the drift report compares against.
  /// Journaled like any other event.
  void declare_query(const std::string& name, double fq);
  void declare_update(const std::string& relation, double fu);

  /// Record one event: assign the next sequence number, fold the event
  /// into the state and append it to the journal, all under one lock (the
  /// total order both sides share). Returns the assigned seq.
  std::uint64_t record(JournalEvent event);

  WorkloadStats stats() const;
  DriftReport drift() const { return compute_drift(stats()); }

  /// Write every gauge of stats().to_gauges() into the global
  /// MetricsRegistry (no-op unless counters_enabled()).
  void publish_gauges() const;

 private:
  void apply_locked(const JournalEvent& event);

  const std::size_t window_;
  std::shared_ptr<EventJournal> journal_;

  mutable std::mutex mutex_;
  WorkloadStats state_;
};

/// Reconstruct an observatory by re-recording `events` in order.
/// `window` 0 takes the first kOpen event's window (default_obs_window()
/// when the journal has none). The result's stats() match the producing
/// observatory's bit-for-bit when the journal is complete.
std::unique_ptr<WorkloadObservatory> replay_journal(
    const std::vector<JournalEvent>& events, std::size_t window = 0);

}  // namespace mvd
