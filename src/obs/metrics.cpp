#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/common/text_table.hpp"

namespace mvd {

namespace obs_internal {

std::atomic<int> g_trace_level{-1};

namespace {
std::mutex& level_mutex() {
  static std::mutex m;
  return m;
}
std::optional<TraceLevel>& level_override() {
  static std::optional<TraceLevel> value;
  return value;
}
}  // namespace

int resolve_trace_level() {
  std::lock_guard<std::mutex> lock(level_mutex());
  int level = static_cast<int>(TraceLevel::kOff);
  if (level_override().has_value()) {
    level = static_cast<int>(*level_override());
  } else if (const char* env = std::getenv("MVD_TRACE"); env != nullptr) {
    const std::string text(env);
    if (text == "counters") level = static_cast<int>(TraceLevel::kCounters);
    if (text == "spans") level = static_cast<int>(TraceLevel::kSpans);
  }
  g_trace_level.store(level, std::memory_order_relaxed);
  return level;
}

}  // namespace obs_internal

TraceLevel trace_level() {
  return static_cast<TraceLevel>(obs_internal::trace_level_int());
}

void set_trace_level(std::optional<TraceLevel> level) {
  std::lock_guard<std::mutex> lock(obs_internal::level_mutex());
  obs_internal::level_override() = level;
  obs_internal::g_trace_level.store(
      level.has_value() ? static_cast<int>(*level) : -1,
      std::memory_order_relaxed);
}

std::string to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

// ---- Histogram --------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  MVD_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()));
}

std::size_t Histogram::bucket_index(double value) const {
  // First bucket whose inclusive upper edge admits the value; everything
  // above the last edge lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double value) {
  counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::observe_bucketed(const std::vector<std::uint64_t>& counts,
                                 double sum) {
  MVD_ASSERT(counts.size() == counts_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    counts_[i].fetch_add(counts[i], std::memory_order_relaxed);
    total += counts[i];
  }
  count_.fetch_add(total, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + sum,
                                     std::memory_order_relaxed)) {
  }
}

// ---- Snapshot ---------------------------------------------------------

double histogram_percentile(const std::vector<double>& bounds,
                            const std::vector<std::uint64_t>& counts,
                            std::uint64_t count, double q) {
  if (count == 0 || counts.empty()) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation, 1-based; q=0 means the first.
  const double rank = q * static_cast<double>(count);
  double seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      if (i >= bounds.size()) return bounds.empty() ? 0 : bounds.back();
      const double lo = i == 0 ? 0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = (rank - seen) / in_bucket;
      return lo + (hi - lo) * (frac < 0 ? 0 : frac);
    }
    seen += in_bucket;
  }
  return bounds.empty() ? 0 : bounds.back();
}

double MetricValue::percentile(double q) const {
  if (kind != MetricKind::kHistogram) return 0;
  return histogram_percentile(bucket_bounds, bucket_counts, count, q);
}

std::optional<double> MetricsSnapshot::value_of(const std::string& name) const {
  const auto it = metrics.find(name);
  if (it == metrics.end()) return std::nullopt;
  return it->second.value;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, later] : metrics) {
    MetricValue d = later;
    const auto it = earlier.metrics.find(name);
    if (it != earlier.metrics.end() && it->second.kind == later.kind) {
      switch (later.kind) {
        case MetricKind::kCounter:
          d.value = later.value - it->second.value;
          break;
        case MetricKind::kGauge:
          break;  // latest wins
        case MetricKind::kHistogram: {
          d.value = later.value - it->second.value;
          d.count = later.count - it->second.count;
          if (it->second.bucket_counts.size() == later.bucket_counts.size()) {
            for (std::size_t i = 0; i < d.bucket_counts.size(); ++i) {
              d.bucket_counts[i] =
                  later.bucket_counts[i] - it->second.bucket_counts[i];
            }
          }
          break;
        }
      }
    }
    out.metrics.emplace(name, std::move(d));
  }
  return out;
}

std::string MetricsSnapshot::render_text() const {
  TextTable table({"metric", "kind", "value", "count"},
                  {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight});
  for (const auto& [name, m] : metrics) {
    table.add_row({name, to_string(m.kind), format_fixed(m.value, 3),
                   m.kind == MetricKind::kHistogram
                       ? std::to_string(m.count)
                       : std::string("-")});
  }
  return table.render();
}

Json MetricsSnapshot::to_json() const {
  Json doc = Json::object();
  Json body = Json::object();
  for (const auto& [name, m] : metrics) {
    Json j = Json::object();
    j.set("kind", Json::string(to_string(m.kind)));
    j.set("value", Json::number(m.value));
    if (m.kind == MetricKind::kHistogram) {
      j.set("count", Json::number(static_cast<double>(m.count)));
      Json bounds = Json::array();
      for (double b : m.bucket_bounds) bounds.push_back(Json::number(b));
      j.set("bucket_bounds", std::move(bounds));
      Json counts = Json::array();
      for (std::uint64_t c : m.bucket_counts) {
        counts.push_back(Json::number(static_cast<double>(c)));
      }
      j.set("bucket_counts", std::move(counts));
    }
    body.set(name, std::move(j));
  }
  doc.set("metrics", std::move(body));
  return doc;
}

// ---- Registry ---------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               MetricKind kind,
                                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind) {
      throw PlanError(str_cat("metric '", name, "' is a ",
                              to_string(it->second.kind), ", requested as ",
                              to_string(kind)));
    }
    return it->second;
  }
  Entry e;
  e.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e.histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  return metrics_.emplace(name, std::move(e)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *entry(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *entry(name, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  return *entry(name, MetricKind::kHistogram, std::move(bounds)).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, e] : metrics_) {
    MetricValue m;
    m.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        m.value = e.counter->value();
        break;
      case MetricKind::kGauge:
        m.value = e.gauge->value();
        break;
      case MetricKind::kHistogram: {
        m.value = e.histogram->sum();
        m.count = e.histogram->count();
        m.bucket_bounds = e.histogram->bounds();
        m.bucket_counts.resize(e.histogram->bucket_count());
        for (std::size_t i = 0; i < m.bucket_counts.size(); ++i) {
          m.bucket_counts[i] = e.histogram->bucket(i);
        }
        break;
      }
    }
    snap.metrics.emplace(name, std::move(m));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.clear();
}

}  // namespace mvd
