#include "src/obs/trace.hpp"

#include <chrono>

namespace mvd {

namespace {

std::chrono::steady_clock::time_point process_start() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

// Touch the clock origin at static-init time so the first traced event
// does not define it mid-run.
const auto g_clock_anchor = process_start();

}  // namespace

/// Per-thread event buffer. The owning thread appends under the buffer's
/// own mutex (uncontended in steady state — the gather path only locks
/// when exporting), so to_chrome_json() from another thread is race-free.
struct Tracer::ThreadBuffer {
  std::uint32_t tid = 0;
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::vector<std::size_t> open;  // indices of open begin() spans
};

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

double Tracer::now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - process_start())
      .count();
}

Tracer::ThreadBuffer& Tracer::local() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (buffer == nullptr) {
    buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mutex_);
    buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::begin(std::string category, std::string name) {
  if (!spans_enabled()) return;
  TraceEvent e;
  e.category = std::move(category);
  e.name = std::move(name);
  e.ts_us = now_us();
  ThreadBuffer& buf = local();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.open.push_back(buf.events.size());
  buf.events.push_back(std::move(e));
}

void Tracer::end(std::vector<std::pair<std::string, double>> num_args,
                 std::vector<std::pair<std::string, std::string>> str_args) {
  if (!spans_enabled()) return;
  const double now = now_us();
  ThreadBuffer& buf = local();
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.open.empty()) return;  // unbalanced end(): drop, don't corrupt
  TraceEvent& e = buf.events[buf.open.back()];
  buf.open.pop_back();
  e.dur_us = now - e.ts_us;
  e.num_args = std::move(num_args);
  e.str_args = std::move(str_args);
}

void Tracer::complete(TraceEvent event) {
  ThreadBuffer& buf = local();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(std::move(event));
}

void Tracer::counter(std::string name, double value) {
  if (!spans_enabled()) return;
  TraceEvent e;
  e.phase = 'C';
  e.name = std::move(name);
  e.ts_us = now_us();
  e.num_args.emplace_back("value", value);
  complete(std::move(e));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    total += buf->events.size();
  }
  return total;
}

Json Tracer::to_chrome_json() const {
  Json events = Json::array();
  {
    Json meta = Json::object();
    meta.set("ph", Json::string("M"));
    meta.set("pid", Json::number(1));
    meta.set("tid", Json::number(0));
    meta.set("name", Json::string("process_name"));
    Json args = Json::object();
    args.set("name", Json::string("mvdesign"));
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    {
      Json meta = Json::object();
      meta.set("ph", Json::string("M"));
      meta.set("pid", Json::number(1));
      meta.set("tid", Json::number(static_cast<double>(buf->tid)));
      meta.set("name", Json::string("thread_name"));
      Json args = Json::object();
      args.set("name", Json::string(buf->tid == 0
                                        ? std::string("main")
                                        : "worker-" + std::to_string(buf->tid)));
      meta.set("args", std::move(args));
      events.push_back(std::move(meta));
    }
    for (const TraceEvent& e : buf->events) {
      Json j = Json::object();
      j.set("ph", Json::string(std::string(1, e.phase)));
      j.set("pid", Json::number(1));
      j.set("tid", Json::number(static_cast<double>(buf->tid)));
      j.set("ts", Json::number(e.ts_us));
      if (e.phase == 'X') {
        j.set("dur", Json::number(e.dur_us));
        j.set("cat", Json::string(e.category.empty() ? "mvd" : e.category));
      }
      j.set("name", Json::string(e.name));
      if (!e.num_args.empty() || !e.str_args.empty()) {
        Json args = Json::object();
        for (const auto& [k, v] : e.num_args) args.set(k, Json::number(v));
        for (const auto& [k, v] : e.str_args) args.set(k, Json::string(v));
        j.set("args", std::move(args));
      }
      events.push_back(std::move(j));
    }
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", Json::string("ms"));
  return doc;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
    buf->open.clear();
  }
}

}  // namespace mvd
