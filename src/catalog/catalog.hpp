// The catalog: the warehouse's view of its member-database relations.
//
// Registers base relations with schemas, statistics and update frequencies
// (the fu(v) annotations on MVPP leaves), plus optional join-cardinality
// overrides so a user can pin the intermediate sizes the paper's Table 1
// states explicitly instead of relying on the uniformity estimator.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/catalog/schema.hpp"
#include "src/catalog/statistics.hpp"

namespace mvd {

/// Explicitly pinned size of a join over a set of base relations.
struct JoinSizeOverride {
  double rows = 0;
  std::optional<double> blocks;  // derived from blocking factor when unset
};

class Catalog {
 public:
  /// `blocking_factor` = tuples per disk block, the paper uses 10
  /// (30k records == 3k blocks).
  explicit Catalog(double blocking_factor = 10.0);

  /// Register a base relation. `update_frequency` is the fu() annotation:
  /// how many times the relation is updated per unit period. Throws
  /// CatalogError on duplicates or invalid stats.
  void add_relation(const std::string& name, Schema schema,
                    RelationStats stats, double update_frequency = 1.0);

  bool has_relation(const std::string& name) const;
  const Schema& schema(const std::string& name) const;
  const RelationStats& stats(const std::string& name) const;
  double update_frequency(const std::string& name) const;
  void set_update_frequency(const std::string& name, double fu);

  /// Registered relation names in registration order.
  const std::vector<std::string>& relation_names() const { return order_; }

  double blocking_factor() const { return blocking_factor_; }

  /// Blocks for `rows` tuples at the catalog blocking factor (>= 1 for any
  /// non-empty relation).
  double blocks_for_rows(double rows) const;

  /// Pin the size of the join over exactly `relations` (bare base-relation
  /// names, any order). Estimation consults overrides before falling back
  /// to distinct-value arithmetic.
  void add_join_size_override(const std::set<std::string>& relations,
                              JoinSizeOverride size);
  const JoinSizeOverride* join_size_override(
      const std::set<std::string>& relations) const;

 private:
  struct Entry {
    Schema schema;
    RelationStats stats;
    double update_frequency = 1.0;
  };

  const Entry& entry(const std::string& name) const;

  double blocking_factor_;
  std::map<std::string, Entry> relations_;
  std::vector<std::string> order_;
  std::map<std::set<std::string>, JoinSizeOverride> join_overrides_;
};

}  // namespace mvd
