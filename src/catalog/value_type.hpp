// Attribute value types supported by the relational layer.
//
// The paper's queries need strings (names, cities), integers (ids,
// quantities) and dates; doubles and bools round the set out for generated
// workloads. Dates are stored as days-since-epoch int64s but kept as a
// distinct type so schemas stay self-describing.
#pragma once

#include <string>

namespace mvd {

enum class ValueType {
  kInt64,
  kDouble,
  kString,
  kBool,
  kDate,
};

/// Human-readable type name ("int64", "string", ...).
std::string to_string(ValueType type);

/// True for kInt64, kDouble and kDate — types with a meaningful order on a
/// numeric axis (used by range-selectivity estimation).
bool is_numeric(ValueType type);

}  // namespace mvd
