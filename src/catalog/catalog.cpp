#include "src/catalog/catalog.hpp"

#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mvd {

Catalog::Catalog(double blocking_factor) : blocking_factor_(blocking_factor) {
  if (!(blocking_factor > 0)) {
    throw CatalogError("blocking factor must be positive");
  }
}

void Catalog::add_relation(const std::string& name, Schema schema,
                           RelationStats stats, double update_frequency) {
  if (name.empty()) throw CatalogError("relation name must not be empty");
  if (relations_.contains(name)) {
    throw CatalogError("duplicate relation '" + name + "'");
  }
  if (!(stats.rows >= 0)) {
    throw CatalogError("relation '" + name + "' has negative row count");
  }
  if (stats.blocks.has_value() && !(*stats.blocks >= 0)) {
    throw CatalogError("relation '" + name + "' has negative block count");
  }
  if (!(update_frequency >= 0)) {
    throw CatalogError("relation '" + name + "' has negative update frequency");
  }
  for (const auto& [col, cs] : stats.columns) {
    if (!schema.contains(col)) {
      throw CatalogError("stats for unknown column '" + col +
                         "' of relation '" + name + "'");
    }
    if (cs.distinct.has_value() && !(*cs.distinct > 0)) {
      throw CatalogError("non-positive distinct count for '" + name + "." +
                         col + "'");
    }
  }
  relations_.emplace(name,
                     Entry{std::move(schema), std::move(stats), update_frequency});
  order_.push_back(name);
}

bool Catalog::has_relation(const std::string& name) const {
  return relations_.contains(name);
}

const Catalog::Entry& Catalog::entry(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    throw CatalogError("unknown relation '" + name + "'");
  }
  return it->second;
}

const Schema& Catalog::schema(const std::string& name) const {
  return entry(name).schema;
}

const RelationStats& Catalog::stats(const std::string& name) const {
  return entry(name).stats;
}

double Catalog::update_frequency(const std::string& name) const {
  return entry(name).update_frequency;
}

void Catalog::set_update_frequency(const std::string& name, double fu) {
  if (!(fu >= 0)) throw CatalogError("negative update frequency");
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    throw CatalogError("unknown relation '" + name + "'");
  }
  it->second.update_frequency = fu;
}

double Catalog::blocks_for_rows(double rows) const {
  if (rows <= 0) return 0;
  return std::max(1.0, std::ceil(rows / blocking_factor_));
}

void Catalog::add_join_size_override(const std::set<std::string>& relations,
                                     JoinSizeOverride size) {
  if (relations.size() < 2) {
    throw CatalogError("join size override needs at least two relations");
  }
  for (const std::string& r : relations) {
    if (!has_relation(r)) {
      throw CatalogError("join size override references unknown relation '" +
                         r + "'");
    }
  }
  join_overrides_[relations] = size;
}

const JoinSizeOverride* Catalog::join_size_override(
    const std::set<std::string>& relations) const {
  auto it = join_overrides_.find(relations);
  return it == join_overrides_.end() ? nullptr : &it->second;
}

}  // namespace mvd
