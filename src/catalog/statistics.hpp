// Statistics attached to base relations and used by the cost model.
//
// Table 1 of the paper supplies exactly these inputs: row counts, block
// counts, selection selectivities (derivable from per-column distinct
// counts and value ranges) and join selectivities (derivable from distinct
// counts of join keys, with explicit overrides for the join sizes the
// paper pins down).
#pragma once

#include <map>
#include <optional>
#include <string>

namespace mvd {

/// Per-column statistics. All fields optional; the estimator falls back to
/// documented defaults when a field is missing.
struct ColumnStats {
  /// Number of distinct values; drives equality selectivity (1/distinct)
  /// and join selectivity (1/max(distinct_left, distinct_right)).
  std::optional<double> distinct;

  /// Value range for numeric columns; drives range selectivity by linear
  /// interpolation (uniformity assumption).
  std::optional<double> min_value;
  std::optional<double> max_value;
};

/// Statistics of one base relation.
struct RelationStats {
  /// Cardinality in tuples. Required (> 0 for a non-empty relation).
  double rows = 0;

  /// Size in disk blocks. When unset, derived as ceil(rows /
  /// blocking_factor) using the catalog-wide blocking factor.
  std::optional<double> blocks;

  /// Per-column statistics keyed by bare attribute name.
  std::map<std::string, ColumnStats> columns;

  const ColumnStats* column(const std::string& name) const {
    auto it = columns.find(name);
    return it == columns.end() ? nullptr : &it->second;
  }
};

}  // namespace mvd
