#include "src/catalog/schema.hpp"

#include <sstream>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mvd {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    for (std::size_t j = i + 1; j < attributes_.size(); ++j) {
      MVD_ASSERT_MSG(attributes_[i].qualified() != attributes_[j].qualified(),
                     "duplicate attribute " << attributes_[i].qualified());
    }
  }
}

const Attribute& Schema::at(std::size_t i) const {
  MVD_ASSERT_MSG(i < attributes_.size(),
                 "attribute index " << i << " out of range "
                                    << attributes_.size());
  return attributes_[i];
}

std::optional<std::size_t> Schema::find(const std::string& name) const {
  const std::size_t dot = name.find('.');
  if (dot != std::string::npos) {
    const std::string source = name.substr(0, dot);
    const std::string bare = name.substr(dot + 1);
    for (std::size_t i = 0; i < attributes_.size(); ++i) {
      if (attributes_[i].name == bare && attributes_[i].source == source) {
        return i;
      }
    }
    return std::nullopt;
  }
  std::optional<std::size_t> found;
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) {
      if (found.has_value()) {
        throw BindError("ambiguous attribute '" + name + "' (matches " +
                        attributes_[*found].qualified() + " and " +
                        attributes_[i].qualified() + ")");
      }
      found = i;
    }
  }
  return found;
}

std::size_t Schema::index_of(const std::string& name) const {
  auto idx = find(name);
  if (!idx.has_value()) {
    throw BindError("unknown attribute '" + name + "' in schema " +
                    to_string());
  }
  return *idx;
}

Schema Schema::concat(const Schema& left, const Schema& right) {
  std::vector<Attribute> attrs = left.attributes_;
  attrs.insert(attrs.end(), right.attributes_.begin(),
               right.attributes_.end());
  return Schema(std::move(attrs));
}

std::string Schema::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (i != 0) os << ", ";
    os << attributes_[i].qualified() << ' ' << mvd::to_string(attributes_[i].type);
  }
  os << ')';
  return os.str();
}

}  // namespace mvd
