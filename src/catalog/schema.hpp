// Relation schemas: ordered, typed, named attributes.
//
// A Schema describes either a base relation in the catalog or the output of
// a logical operator (intermediate schemas are derived during binding).
// Attribute names inside one schema are unique; cross-relation duplicates
// ("name" in both Product and Customer) are resolved with qualified
// references at bind time.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/catalog/value_type.hpp"

namespace mvd {

/// One typed column. `source` records the base relation the attribute
/// originally came from, so intermediate schemas keep qualified names
/// (e.g. "Product.name") even after several joins.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt64;
  std::string source;  // base relation name; empty for computed columns

  /// "source.name" when a source is known, otherwise just "name".
  std::string qualified() const {
    return source.empty() ? name : source + "." + name;
  }

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  const std::vector<Attribute>& attributes() const { return attributes_; }
  std::size_t size() const { return attributes_.size(); }
  const Attribute& at(std::size_t i) const;

  /// Index of the attribute matching `name`, which may be bare ("city") or
  /// qualified ("Division.city"). Returns nullopt when absent; throws
  /// BindError when a bare name is ambiguous.
  std::optional<std::size_t> find(const std::string& name) const;

  /// find() that throws BindError when the attribute is absent.
  std::size_t index_of(const std::string& name) const;

  bool contains(const std::string& name) const { return find(name).has_value(); }

  /// Concatenation, used for join output schemas.
  static Schema concat(const Schema& left, const Schema& right);

  /// "(Product.Pid int64, Product.name string, ...)"
  std::string to_string() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace mvd
