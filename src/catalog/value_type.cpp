#include "src/catalog/value_type.hpp"

#include "src/common/assert.hpp"

namespace mvd {

std::string to_string(ValueType type) {
  switch (type) {
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kBool: return "bool";
    case ValueType::kDate: return "date";
  }
  MVD_ASSERT_MSG(false, "unknown ValueType " << static_cast<int>(type));
  return {};
}

bool is_numeric(ValueType type) {
  return type == ValueType::kInt64 || type == ValueType::kDouble ||
         type == ValueType::kDate;
}

}  // namespace mvd
