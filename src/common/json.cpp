#include "src/common/json.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

#include "src/common/assert.hpp"
#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mvd {

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

void Json::push_back(Json value) {
  MVD_ASSERT(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
}

void Json::set(const std::string& key, Json value) {
  MVD_ASSERT(kind_ == Kind::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

bool Json::contains(const std::string& key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, _] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  MVD_ASSERT(kind_ == Kind::kObject);
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  MVD_ASSERT_MSG(false, "missing JSON key '" << key << "'");
  static const Json kNull;
  return kNull;
}

const Json& Json::at(std::size_t index) const {
  MVD_ASSERT(kind_ == Kind::kArray);
  MVD_ASSERT(index < array_.size());
  return array_[index];
}

double Json::as_number() const {
  MVD_ASSERT(kind_ == Kind::kNumber);
  return number_;
}

const std::string& Json::as_string() const {
  MVD_ASSERT(kind_ == Kind::kString);
  return string_;
}

bool Json::as_bool() const {
  MVD_ASSERT(kind_ == Kind::kBool);
  return bool_;
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string number_text(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  // Shortest representation that parses back to exactly `v`, so
  // dump/parse round-trips are lossless (precision-limited iostream
  // formatting is not).
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  MVD_ASSERT(ec == std::errc());
  return std::string(buf, end);
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          (static_cast<std::size_t>(depth) + 1),
                                      ' ')
                 : "";
  const std::string close_pad =
      indent > 0
          ? "\n" + std::string(
                       static_cast<std::size_t>(indent) *
                           static_cast<std::size_t>(depth),
                       ' ')
          : "";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += number_text(number_); break;
    case Kind::kString: out += json_quote(string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        out += pad;
        array_[i].write(out, indent, depth + 1);
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        out += pad;
        out += json_quote(object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over the document subset Json emits.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(str_cat("JSON: ", what, " at offset ", pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(str_cat("expected '", std::string(1, c), "'"));
    ++pos_;
  }

  bool accept_literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json::string(parse_string());
    if (accept_literal("null")) return Json::null();
    if (accept_literal("true")) return Json::boolean(true);
    if (accept_literal("false")) return Json::boolean(false);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("expected a JSON value");
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A') + 10;
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode (the writer only emits codes < 0x20, but accept
          // the full BMP for robustness).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double value = 0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || end != last) {
      pos_ = start;
      fail("malformed number");
    }
    return Json::number(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace mvd
