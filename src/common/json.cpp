#include "src/common/json.hpp"

#include <cmath>
#include <sstream>

#include "src/common/assert.hpp"

namespace mvd {

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

void Json::push_back(Json value) {
  MVD_ASSERT(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
}

void Json::set(const std::string& key, Json value) {
  MVD_ASSERT(kind_ == Kind::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

bool Json::contains(const std::string& key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, _] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  MVD_ASSERT(kind_ == Kind::kObject);
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  MVD_ASSERT_MSG(false, "missing JSON key '" << key << "'");
  static const Json kNull;
  return kNull;
}

const Json& Json::at(std::size_t index) const {
  MVD_ASSERT(kind_ == Kind::kArray);
  MVD_ASSERT(index < array_.size());
  return array_[index];
}

double Json::as_number() const {
  MVD_ASSERT(kind_ == Kind::kNumber);
  return number_;
}

const std::string& Json::as_string() const {
  MVD_ASSERT(kind_ == Kind::kString);
  return string_;
}

bool Json::as_bool() const {
  MVD_ASSERT(kind_ == Kind::kBool);
  return bool_;
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string number_text(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          (static_cast<std::size_t>(depth) + 1),
                                      ' ')
                 : "";
  const std::string close_pad =
      indent > 0
          ? "\n" + std::string(
                       static_cast<std::size_t>(indent) *
                           static_cast<std::size_t>(depth),
                       ' ')
          : "";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += number_text(number_); break;
    case Kind::kString: out += json_quote(string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        out += pad;
        array_[i].write(out, indent, depth + 1);
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        out += pad;
        out += json_quote(object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace mvd
