#include "src/common/assert.hpp"

namespace mvd::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw AssertionError(os.str());
}

}  // namespace mvd::detail
