// Exception hierarchy for user-facing errors.
//
// Everything a caller can trigger through the public API (bad SQL, unknown
// relation, inconsistent statistics, malformed plan requests) throws a
// subclass of mvd::Error. Internal invariant violations throw
// mvd::AssertionError instead (see assert.hpp).
#pragma once

#include <stdexcept>
#include <string>

namespace mvd {

/// Base class of all user-facing mvdesign errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed SQL text (lexing or grammar failure).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Name resolution failure: unknown relation, unknown/ambiguous column,
/// or a type mismatch discovered while binding an expression.
class BindError : public Error {
 public:
  explicit BindError(const std::string& what) : Error("bind error: " + what) {}
};

/// Catalog misuse: duplicate relation, missing statistics, bad frequency.
class CatalogError : public Error {
 public:
  explicit CatalogError(const std::string& what)
      : Error("catalog error: " + what) {}
};

/// A logical plan that cannot be costed/optimized/merged as requested.
class PlanError : public Error {
 public:
  explicit PlanError(const std::string& what) : Error("plan error: " + what) {}
};

/// Runtime failure while executing a physical plan.
class ExecError : public Error {
 public:
  explicit ExecError(const std::string& what) : Error("exec error: " + what) {}
};

}  // namespace mvd
