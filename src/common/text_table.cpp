#include "src/common/text_table.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/assert.hpp"

namespace mvd {

TextTable::TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  MVD_ASSERT(!headers_.empty());
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::kLeft);
  }
  MVD_ASSERT(aligns_.size() == headers_.size());
}

void TextTable::add_row(std::vector<std::string> cells) {
  MVD_ASSERT_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, table has "
                            << headers_.size() << " columns");
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::render(int indent) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto emit_cells = [&](std::ostringstream& os,
                        const std::vector<std::string>& cells) {
    os << pad;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      const std::size_t fill = widths[c] - cells[c].size();
      if (aligns_[c] == Align::kRight) os << std::string(fill, ' ');
      os << cells[c];
      if (aligns_[c] == Align::kLeft && c + 1 != cells.size()) {
        os << std::string(fill, ' ');
      }
    }
    os << '\n';
  };

  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }

  std::ostringstream os;
  emit_cells(os, headers_);
  os << pad << std::string(total, '-') << '\n';
  for (const Row& r : rows_) {
    if (r.separator) {
      os << pad << std::string(total, '-') << '\n';
    } else {
      emit_cells(os, r.cells);
    }
  }
  return os.str();
}

}  // namespace mvd
