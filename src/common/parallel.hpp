// Minimal deterministic fork-join helpers over std::thread.
//
// Used by the search drivers (exhaustive/budgeted mask sharding, k-MVPP
// candidate generation). Work is split into contiguous shards decided
// purely by (n, threads), results are written into caller-owned slots,
// and reductions happen on the calling thread — so the outcome never
// depends on scheduling. Exceptions thrown by workers are captured and
// the first one (lowest shard index) is rethrown after join, keeping
// error behavior deterministic too.
#pragma once

#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace mvd {

/// Worker count for `work` items: min(hardware threads, work), at least 1.
inline std::size_t recommended_threads(std::size_t work) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::size_t threads = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  if (work < threads) threads = work;
  return threads == 0 ? 1 : threads;
}

/// Run fn(shard, begin, end) over `threads` contiguous shards of [0, n).
/// threads == 1 (or n == 0) runs inline on the calling thread.
template <typename Fn>
void parallel_shards(std::size_t n, std::size_t threads, Fn&& fn) {
  if (threads == 0) threads = recommended_threads(n);
  if (threads > n) threads = n == 0 ? 1 : n;
  if (threads <= 1) {
    if (n > 0) fn(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  const std::size_t chunk = n / threads;
  const std::size_t extra = n % threads;
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::size_t begin = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t end = begin + chunk + (t < extra ? 1 : 0);
    workers.emplace_back([&, t, begin, end] {
      try {
        fn(t, begin, end);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
    begin = end;
  }
  for (std::thread& w : workers) w.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

/// Run fn(i) for every i in [0, n), sharded across threads.
template <typename Fn>
void parallel_for_each_index(std::size_t n, std::size_t threads, Fn&& fn) {
  parallel_shards(n, threads, [&](std::size_t, std::size_t begin,
                                  std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace mvd
