// A minimal JSON document builder, serializer and parser. Objects
// preserve insertion order so emitted reports are stable and diffable;
// parse(dump(j)) reproduces j exactly (numbers round-trip via
// shortest-representation formatting).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mvd {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json number(double v);
  static Json number(std::size_t v) { return number(static_cast<double>(v)); }
  static Json number(int v) { return number(static_cast<double>(v)); }
  static Json string(std::string v);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }

  /// Array append. Asserts kind == kArray.
  void push_back(Json value);
  /// Object insert-or-overwrite (insertion order kept). Asserts kObject.
  void set(const std::string& key, Json value);

  std::size_t size() const;
  bool contains(const std::string& key) const;
  const Json& at(const std::string& key) const;
  const Json& at(std::size_t index) const;

  double as_number() const;
  const std::string& as_string() const;
  bool as_bool() const;

  /// Serialize; `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Parse a JSON document (the subset this class emits: null, booleans,
  /// finite numbers, strings with \uXXXX escapes, arrays, objects).
  /// Throws ParseError with offset context on malformed input.
  static Json parse(const std::string& text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Escape a string for embedding in JSON (adds the quotes).
std::string json_quote(const std::string& text);

}  // namespace mvd
