// Internal invariant checking.
//
// MVD_ASSERT throws AssertionError instead of aborting so that unit tests
// can verify that invariants are enforced, and so a long-running design
// session is not torn down by a recoverable logic error in one request.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mvd {

/// Thrown when an internal invariant is violated. Indicates a bug in
/// mvdesign itself (or misuse of an API documented as unchecked), never a
/// problem with user input; user-input problems throw mvd::Error subclasses.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

}  // namespace mvd

/// Check an internal invariant; throws mvd::AssertionError on failure.
#define MVD_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mvd::detail::assert_fail(#expr, __FILE__, __LINE__, std::string{}); \
    }                                                                     \
  } while (false)

/// Like MVD_ASSERT but with a streamed message:
///   MVD_ASSERT_MSG(a < b, "a=" << a << " b=" << b);
#define MVD_ASSERT_MSG(expr, stream_expr)                                 \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream mvd_assert_os_;                                  \
      mvd_assert_os_ << stream_expr;                                      \
      ::mvd::detail::assert_fail(#expr, __FILE__, __LINE__,               \
                                 mvd_assert_os_.str());                   \
    }                                                                     \
  } while (false)
