// Small string utilities used across the library (no std::format on the
// target toolchain, so formatting goes through ostringstream helpers).
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mvd {

/// Concatenate any streamable arguments into a string.
template <typename... Args>
std::string str_cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Join the elements of `parts` with `sep` between them.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-case copy.
std::string to_lower(std::string_view text);

/// True if `text` begins with `prefix` (ASCII case-insensitive).
bool starts_with_icase(std::string_view text, std::string_view prefix);

/// Case-insensitive ASCII equality.
bool equals_icase(std::string_view a, std::string_view b);

/// Fixed-precision decimal rendering, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int digits);

}  // namespace mvd
