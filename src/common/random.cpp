#include "src/common/random.hpp"

#include <algorithm>
#include <cmath>

namespace mvd {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  MVD_ASSERT(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  MVD_ASSERT(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace mvd
