// Deterministic pseudo-random sources for workload generation and
// randomized search. We roll our own (SplitMix64 seeding a xoshiro256**)
// so that generated workloads are bit-identical across standard-library
// implementations — std::mt19937 distributions are not portable.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/assert.hpp"

namespace mvd {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator for simulation use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MVD_ASSERT(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Debiased modulo (Lemire-style rejection).
    std::uint64_t x = next_u64();
    std::uint64_t threshold = (0 - span) % span;
    while (x < threshold) x = next_u64();
    return lo + static_cast<std::int64_t>(x % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform01() < p; }

  /// Pick an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    MVD_ASSERT(n > 0);
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Zipf(s) sampler over ranks 1..n, used to assign skewed query frequencies.
/// Precomputes the CDF; sampling is a binary search.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [0, n).
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k (0-based).
  double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace mvd
