// Aligned plain-text table rendering, used by the bench harness to print
// paper-style tables (Table 1, Table 2, sweeps) to stdout.
#pragma once

#include <string>
#include <vector>

namespace mvd {

/// Column alignment within a TextTable.
enum class Align { kLeft, kRight };

/// Builds and renders a fixed-column ASCII table:
///
///   TextTable t({"strategy", "query cost", "total"});
///   t.add_row({"none", "95.671m", "95.671m"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns = {});

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator line at this position.
  void add_separator();

  /// Render with padded columns, a header underline, and `indent` leading
  /// spaces on every line.
  std::string render(int indent = 0) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace mvd
