#include "src/common/units.hpp"

#include <cmath>
#include <cstdlib>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mvd {

namespace {

// Trim trailing zeros (and a trailing '.') from a fixed-precision render, so
// 12.0650 prints as "12.065" and 35.2500 as "35.25".
std::string trim_zeros(std::string s) {
  if (s.find('.') == std::string::npos) return s;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

std::string format_blocks(double blocks) {
  const double mag = std::fabs(blocks);
  if (mag >= 1e9) return trim_zeros(format_fixed(blocks / 1e9, 3)) + "g";
  if (mag >= 1e6) return trim_zeros(format_fixed(blocks / 1e6, 3)) + "m";
  if (mag >= 1e3) return trim_zeros(format_fixed(blocks / 1e3, 3)) + "k";
  return trim_zeros(format_fixed(blocks, 2));
}

double parse_blocks(const std::string& text) {
  std::string t(trim(text));
  if (t.empty()) throw Error("parse_blocks: empty input");
  double scale = 1.0;
  switch (t.back()) {
    case 'k': case 'K': scale = 1e3; t.pop_back(); break;
    case 'm': case 'M': scale = 1e6; t.pop_back(); break;
    case 'g': case 'G': scale = 1e9; t.pop_back(); break;
    default: break;
  }
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end == t.c_str() || *end != '\0') {
    throw Error("parse_blocks: malformed number '" + text + "'");
  }
  return v * scale;
}

}  // namespace mvd
