// Hash helpers: combine hashes boost-style and hash common aggregates.
#pragma once

#include <cstddef>
#include <functional>
#include <string_view>

namespace mvd {

/// Mix `value`'s hash into `seed` (boost::hash_combine recipe).
template <typename T>
void hash_combine(std::size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
          (seed >> 2);
}

/// FNV-1a over raw bytes; used where a stable (cross-run) hash is needed.
inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace mvd
