#include "src/common/strings.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>

namespace mvd {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with_icase(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  return equals_icase(text.substr(0, prefix.size()), prefix);
}

bool equals_icase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace mvd
