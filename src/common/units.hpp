// Rendering of block-access counts in the paper's own notation:
// "35.25k", "12.065m", "0.25k". Costs in mvdesign are plain doubles whose
// unit is one disk-block access.
#pragma once

#include <string>

namespace mvd {

/// Format `blocks` like the paper: >= 1e6 as "N.NNNm", >= 1e3 as "N.NNk",
/// otherwise as a plain number. Examples: 35250 -> "35.25k",
/// 12065000 -> "12.065m", 42 -> "42".
std::string format_blocks(double blocks);

/// Parse the reverse direction ("35.25k" -> 35250). Accepts plain numbers,
/// and the suffixes k/K (1e3), m/M (1e6), g/G (1e9). Throws mvd::Error on
/// malformed input. Used by tests that cross-check paper figures.
double parse_blocks(const std::string& text);

}  // namespace mvd
