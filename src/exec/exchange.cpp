#include "src/exec/exchange.hpp"

#include "src/catalog/value_type.hpp"
#include "src/obs/metrics.hpp"
#include "src/storage/delta_table.hpp"
#include "src/storage/table.hpp"

namespace mvd {

namespace {

double approx_tuple_bytes(const Tuple& tuple) {
  double bytes = 0;
  for (const Value& v : tuple) {
    bytes += v.type() == ValueType::kString
                 ? static_cast<double>(v.as_string().size())
                 : 8.0;
  }
  return bytes;
}

double approx_rows_bytes(const std::vector<Tuple>& rows) {
  double bytes = 0;
  for (const Tuple& t : rows) bytes += approx_tuple_bytes(t);
  return bytes;
}

}  // namespace

void ExchangeCounters::add(const ExchangeCounters& other) {
  shuffle_rows += other.shuffle_rows;
  shuffle_blocks += other.shuffle_blocks;
  broadcast_rows += other.broadcast_rows;
  broadcast_blocks += other.broadcast_blocks;
  broadcast_bytes += other.broadcast_bytes;
  gather_rows += other.gather_rows;
  gather_blocks += other.gather_blocks;
}

double approx_table_bytes(const Table& table) {
  return approx_rows_bytes(table.rows());
}

double approx_delta_bytes(const DeltaTable& delta) {
  return approx_rows_bytes(delta.inserts().rows()) +
         approx_rows_bytes(delta.deletes().rows());
}

void record_shuffle(ExchangeCounters& log, double rows, double blocks) {
  log.shuffle_rows += rows;
  log.shuffle_blocks += blocks;
  if (counters_enabled()) {
    auto& reg = MetricsRegistry::global();
    reg.counter("exec/exchange/shuffle_rows").add(rows);
    reg.counter("exec/exchange/shuffle_blocks").add(blocks);
  }
}

void record_broadcast(ExchangeCounters& log, double rows, double blocks,
                      double bytes, std::size_t shards) {
  const double n = static_cast<double>(shards);
  log.broadcast_rows += rows * n;
  log.broadcast_blocks += blocks * n;
  log.broadcast_bytes += bytes * n;
  if (counters_enabled()) {
    auto& reg = MetricsRegistry::global();
    reg.counter("exec/exchange/broadcast_rows").add(rows * n);
    reg.counter("exec/exchange/broadcast_blocks").add(blocks * n);
    reg.counter("exec/exchange/broadcast_bytes").add(bytes * n);
  }
}

void record_gather(ExchangeCounters& log, double rows, double blocks) {
  log.gather_rows += rows;
  log.gather_blocks += blocks;
  if (counters_enabled()) {
    auto& reg = MetricsRegistry::global();
    reg.counter("exec/exchange/gather_rows").add(rows);
    reg.counter("exec/exchange/gather_blocks").add(blocks);
  }
}

}  // namespace mvd
