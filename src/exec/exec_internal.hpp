// Helpers shared by the row and vectorized engines: join-predicate
// splitting, key hashing, aggregate accumulators, and the packed group-key
// encoding used by hash aggregation.
//
// Group keys are packed bytes, not display strings: numerics contribute
// their double bit pattern (so an int64 1 and a double 1.0 — which
// compare equal — also key equal, mirroring Value::operator==), strings
// are length-prefixed, bools one byte. Unlike the former to_string()
// keys this is lossless for doubles and allocation-light.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/algebra/aggregate.hpp"
#include "src/algebra/logical_plan.hpp"
#include "src/common/assert.hpp"
#include "src/storage/table.hpp"

namespace mvd {

/// Rows per morsel in the vectorized engine. Fixed independently of the
/// thread count so morsel boundaries — and therefore merge order and
/// output — are identical at any parallelism.
inline constexpr std::size_t kMorselRows = 2048;

inline std::size_t morsel_count(std::size_t rows) {
  return rows == 0 ? 0 : (rows + kMorselRows - 1) / kMorselRows;
}

// ---- Observability ----------------------------------------------------

/// Operator names indexed by OpKind, shared by both engines' span names
/// and registry counters so row and vectorized runs publish under
/// identical "exec/op/<name>/..." keys (the stats-parity test compares
/// those keys between engines).
inline constexpr const char* kExecOpNames[] = {"scan", "select", "project",
                                               "join", "aggregate"};
inline constexpr std::size_t kExecOpKinds = 5;

/// Flush one run's per-operator block/row tallies (arrays indexed by
/// OpKind) to the global registry, under both the engine-agnostic
/// "exec/op/..." and the engine-tagged "exec/<engine>/op/..." names.
/// Defined in executor.cpp; callers gate on counters_enabled().
void publish_op_tallies(const char* engine, const double* blocks,
                        const double* rows);

/// The join predicate split into hashable equi conjuncts (left column ×
/// right column) and a residual predicate evaluated on joined tuples.
struct JoinSplit {
  std::vector<std::pair<std::size_t, std::size_t>> equi;  // left idx, right idx
  std::vector<ExprPtr> residual;
};

inline JoinSplit split_join_predicate(const JoinOp& op, const Schema& left,
                                      const Schema& right) {
  JoinSplit split;
  for (const ExprPtr& c : conjuncts_of(op.predicate())) {
    if (auto pair = as_column_equality(c); pair.has_value()) {
      const auto li = left.find(pair->left);
      const auto ri = right.find(pair->right);
      if (li.has_value() && ri.has_value()) {
        split.equi.emplace_back(*li, *ri);
        continue;
      }
      const auto li2 = left.find(pair->right);
      const auto ri2 = right.find(pair->left);
      if (li2.has_value() && ri2.has_value()) {
        split.equi.emplace_back(*li2, *ri2);
        continue;
      }
    }
    split.residual.push_back(c);
  }
  return split;
}

inline std::size_t tuple_hash_key(const Tuple& t,
                                  const std::vector<std::size_t>& indices) {
  std::size_t seed = 0x51ed5eedULL;
  for (std::size_t i : indices) {
    seed ^= t[i].hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

inline bool tuple_keys_equal(const Tuple& a, const std::vector<std::size_t>& ai,
                             const Tuple& b,
                             const std::vector<std::size_t>& bi) {
  for (std::size_t k = 0; k < ai.size(); ++k) {
    if (!(a[ai[k]] == b[bi[k]])) return false;
  }
  return true;
}

// ---- Packed group keys ------------------------------------------------

inline void append_packed_f64(std::string& key, double v) {
  char bits[sizeof(double)];
  std::memcpy(bits, &v, sizeof(double));
  key += 'n';
  key.append(bits, sizeof(double));
}

inline void append_packed_str(std::string& key, const std::string& v) {
  const auto len = static_cast<std::uint32_t>(v.size());
  char bits[sizeof(std::uint32_t)];
  std::memcpy(bits, &len, sizeof(len));
  key += 's';
  key.append(bits, sizeof(len));
  key += v;
}

inline void append_packed_bool(std::string& key, bool v) {
  key += 'b';
  key += v ? '\1' : '\0';
}

inline void append_packed_key(std::string& key, const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
    case ValueType::kDate:
    case ValueType::kDouble:
      append_packed_f64(key, v.as_double());
      return;
    case ValueType::kString:
      append_packed_str(key, v.as_string());
      return;
    case ValueType::kBool:
      append_packed_bool(key, v.as_bool());
      return;
  }
  MVD_ASSERT(false);
}

// ---- Aggregate accumulation -------------------------------------------

/// Running state of one aggregate within one group.
struct Accumulator {
  double count = 0;
  double sum = 0;
  std::optional<Value> min;
  std::optional<Value> max;

  void feed(const Value& v) {
    count += 1;
    if (is_numeric(v.type())) sum += v.as_double();
    if (!min.has_value() || v.compare(*min) < 0) min = v;
    if (!max.has_value() || v.compare(*max) > 0) max = v;
  }

  /// Fold another partial in. Order-sensitive only through `sum` for
  /// double inputs; callers merge partials in deterministic morsel order.
  void merge(const Accumulator& other) {
    count += other.count;
    sum += other.sum;
    if (other.min.has_value() &&
        (!min.has_value() || other.min->compare(*min) < 0)) {
      min = other.min;
    }
    if (other.max.has_value() &&
        (!max.has_value() || other.max->compare(*max) > 0)) {
      max = other.max;
    }
  }

  Value result(AggFn fn, ValueType output_type) const {
    switch (fn) {
      case AggFn::kCount:
        return Value::int64(static_cast<std::int64_t>(count));
      case AggFn::kSum:
        return Value::real(sum);
      case AggFn::kSumInt:
        // Inputs are int64 (enforced at plan build); the double running
        // sum is exact below 2^53, so the round-trip is lossless.
        return Value::int64(std::llround(sum));
      case AggFn::kAvg:
        return Value::real(count > 0 ? sum / count : 0.0);
      case AggFn::kMin:
      case AggFn::kMax: {
        const std::optional<Value>& v = fn == AggFn::kMin ? min : max;
        if (v.has_value()) return *v;
        // Empty global group: a typed zero placeholder (SQL would say
        // NULL; the engine has no nulls, documented limitation).
        return output_type == ValueType::kString ? Value::string("")
                                                 : Value::int64(0);
      }
    }
    MVD_ASSERT(false);
    return Value::int64(0);
  }
};

}  // namespace mvd
